#!/usr/bin/env python3
"""Asserts the documented tool exit codes (tools/ToolSupport.h).

  0  success / refines        1  refinement failure
  2  bad input                3  undefined behavior
  4  out of memory            5  step budget or watchdog

Usage: tool_exit_codes_test.py QCM_RUN QCM_CHECK
"""

import subprocess
import sys
import tempfile
import os

QCM_RUN, QCM_CHECK = sys.argv[1], sys.argv[2]

FAILURES = []


def write(directory, name, text):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        f.write(text)
    return path


def expect(exit_code, argv, label):
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != exit_code:
        FAILURES.append(
            f"{label}: expected exit {exit_code}, got {proc.returncode}\n"
            f"  argv: {' '.join(argv)}\n"
            f"  stdout: {proc.stdout[-300:]!r}\n"
            f"  stderr: {proc.stderr[-300:]!r}"
        )


def main():
    with tempfile.TemporaryDirectory() as tmp:
        ok = write(tmp, "ok.qcm", "main() {\n  output(1);\n}\n")
        ub = write(
            tmp,
            "ub.qcm",
            "main() {\n  var ptr p, int a;\n  p = malloc(2);\n"
            "  free(p);\n  a = *p;\n}\n",
        )
        oom = write(
            tmp,
            "oom.qcm",
            "main() {\n  var ptr p;\n  p = malloc(64);\n  output(1);\n}\n",
        )
        loop = write(
            tmp,
            "loop.qcm",
            "main() {\n  var int i;\n  i = 1;\n  while (i) {\n"
            "    i = i + 1;\n  }\n}\n",
        )
        parse_error = write(tmp, "bad.qcm", "main( {\n")
        src = write(
            tmp,
            "src.qcm",
            "main() {\n  var ptr p, int a;\n  p = malloc(1);\n"
            "  output(1);\n  a = (int) p;\n  output(2);\n}\n",
        )
        tgt_bad = write(
            tmp,
            "tgt_bad.qcm",
            "main() {\n  var ptr p, int a;\n  p = malloc(1);\n"
            "  a = (int) p;\n  output(1);\n  output(2);\n}\n",
        )

        # qcm-run: one exit code per fault class.
        expect(0, [QCM_RUN, ok], "run terminates")
        expect(2, [QCM_RUN], "run without arguments")
        expect(2, [QCM_RUN, os.path.join(tmp, "missing.qcm")], "run missing file")
        expect(2, [QCM_RUN, parse_error], "run parse error")
        expect(2, [QCM_RUN, "--steps=banana", ok], "run malformed option")
        expect(3, [QCM_RUN, ub], "run undefined behavior")
        expect(4, [QCM_RUN, "--model=concrete", "--words=8", oom], "run natural oom")
        expect(4, [QCM_RUN, "--inject=alloc:1", oom], "run injected oom")
        expect(4, [QCM_RUN, "--inject=cast:1", src], "run injected cast oom")
        expect(5, [QCM_RUN, "--steps=100", loop], "run step budget")
        expect(
            5,
            [QCM_RUN, "--timeout-ms=20", "--steps=4000000000", loop],
            "run watchdog",
        )

        # qcm-check: refines / fails / bad input.
        expect(0, [QCM_CHECK, src, src], "check identity refines")
        expect(0, [QCM_CHECK, src, tgt_bad], "check passes without sweep")
        expect(1, [QCM_CHECK, "--sweep", src, tgt_bad], "check sweep catches")
        expect(2, [QCM_CHECK, src], "check missing positional")
        expect(2, [QCM_CHECK, parse_error, src], "check parse error")
        expect(2, [QCM_CHECK, "--sweep-cap=x", src, src], "check malformed option")

    if FAILURES:
        print("\n\n".join(FAILURES))
        sys.exit(1)
    print("all exit-code assertions passed")


if __name__ == "__main__":
    main()
