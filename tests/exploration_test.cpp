//===- tests/exploration_test.cpp - Parallel exploration engine -----------===//
//
// The engine's three guarantees (refinement/Exploration.h): deterministic
// plan-order merging at any thread count, cooperative cancellation, and
// per-item confinement of mutable state. The checkRefinement determinism
// tests are the contract the benchmarks and CI TSan job rely on: reports
// must be byte-identical across --jobs levels.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "refinement/Contexts.h"
#include "refinement/RefinementChecker.h"
#include "refinement/Simulation.h"
#include "support/Progress.h"
#include "support/ThreadPool.h"
#include "tools/ToolSupport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

RunConfig modelConfig(ModelKind Model, uint64_t Words = 1u << 12) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = Words;
  return C;
}

ExplorationOptions jobs(unsigned N, bool FailFast = false) {
  ExplorationOptions E;
  E.Jobs = N;
  E.FailFast = FailFast;
  // These tests pin the behavior of the parallel path itself (worker
  // overlap, pool metrics, merge order under threads), so the small-grid
  // inlining heuristic must not quietly reroute them through the serial
  // path.
  E.InlineThreshold = 0;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> Sum{0};
  {
    ThreadPool Pool(4);
    for (int I = 1; I <= 100; ++I)
      Pool.submit([&Sum, I] { Sum += I; });
    Pool.wait();
    EXPECT_EQ(Sum.load(), 5050);
  }
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 50; ++I)
      Pool.submit([&Ran] { ++Ran; });
  }
  EXPECT_EQ(Ran.load(), 50);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

//===----------------------------------------------------------------------===//
// exploreIndexed: deterministic merge and cancellation
//===----------------------------------------------------------------------===//

TEST(ExploreIndexed, MergesInPlanOrderAtEveryJobCount) {
  for (unsigned Jobs : {1u, 2u, 8u}) {
    std::vector<int> Squares(64, 0);
    std::vector<size_t> MergeOrder;
    ExplorationSummary S = exploreIndexed(
        Squares.size(), jobs(Jobs),
        [&](size_t I) { Squares[I] = static_cast<int>(I * I); },
        [&](size_t I) {
          MergeOrder.push_back(I);
          EXPECT_EQ(Squares[I], static_cast<int>(I * I));
          return ExploreStep::Continue;
        });
    EXPECT_EQ(S.ItemsMerged, 64u);
    EXPECT_FALSE(S.Cancelled);
    std::vector<size_t> Expected(64);
    std::iota(Expected.begin(), Expected.end(), 0);
    EXPECT_EQ(MergeOrder, Expected) << "jobs=" << Jobs;
  }
}

TEST(ExploreIndexed, StopCancelsDeterministically) {
  for (unsigned Jobs : {1u, 2u, 8u}) {
    std::vector<size_t> Merged;
    ExplorationSummary S = exploreIndexed(
        1000, jobs(Jobs), [](size_t) {},
        [&](size_t I) {
          Merged.push_back(I);
          return I == 9 ? ExploreStep::Stop : ExploreStep::Continue;
        });
    // Exactly items 0..9 merge regardless of how many ran speculatively.
    EXPECT_EQ(S.ItemsMerged, 10u) << "jobs=" << Jobs;
    EXPECT_TRUE(S.Cancelled);
    EXPECT_EQ(Merged.size(), 10u);
    EXPECT_EQ(Merged.back(), 9u);
  }
}

TEST(ExploreIndexed, EmptyPlanIsANoop) {
  ExplorationSummary S = exploreIndexed(
      0, jobs(4), [](size_t) { FAIL() << "ran an item of an empty plan"; },
      [](size_t) {
        ADD_FAILURE() << "merged an item of an empty plan";
        return ExploreStep::Continue;
      });
  EXPECT_EQ(S.ItemsMerged, 0u);
  EXPECT_FALSE(S.Cancelled);
}

TEST(ExploreIndexed, RunsItemsConcurrently) {
  // Eight items sleeping 50ms each: serial execution needs >= 400ms, eight
  // workers overlap the sleeps and finish in roughly one. Sleeping (rather
  // than spinning) keeps this meaningful on single-core CI runners.
  const auto Start = std::chrono::steady_clock::now();
  ExplorationSummary S = exploreIndexed(
      8, jobs(8),
      [](size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      },
      [](size_t) { return ExploreStep::Continue; });
  const auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - Start);
  EXPECT_EQ(S.ItemsMerged, 8u);
  EXPECT_LT(Elapsed.count(), 300) << "items did not overlap in time";
}

TEST(ExploreIndexed, SmallGridsRunInlineByDefault) {
  // Below the default InlineThreshold a Jobs > 1 request runs on the
  // calling thread: same items, same merge order, but the pool metrics
  // record one serial worker. This is the fix for thread-pool overhead
  // dominating paper-scale grids.
  ExplorationOptions E;
  E.Jobs = 4;
  ASSERT_GT(E.InlineThreshold, 64u) << "default threshold unexpectedly low";
  const std::thread::id Caller = std::this_thread::get_id();
  std::vector<size_t> MergeOrder;
  ExplorationSummary S = exploreIndexed(
      64, E,
      [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), Caller); },
      [&](size_t I) {
        MergeOrder.push_back(I);
        return ExploreStep::Continue;
      });
  EXPECT_EQ(S.ItemsMerged, 64u);
  EXPECT_EQ(S.Pool.Jobs, 1u);
  std::vector<size_t> Expected(64);
  std::iota(Expected.begin(), Expected.end(), 0);
  EXPECT_EQ(MergeOrder, Expected);

  // At or above the threshold the parallel path engages as requested.
  E.InlineThreshold = 64;
  S = exploreIndexed(
      64, E, [](size_t) {},
      [](size_t) { return ExploreStep::Continue; });
  EXPECT_EQ(S.ItemsMerged, 64u);
  EXPECT_EQ(S.Pool.Jobs, 4u);
}

//===----------------------------------------------------------------------===//
// checkRefinement: byte-identical reports across --jobs
//===----------------------------------------------------------------------===//

namespace {

/// A job whose behavior set genuinely varies with oracle, tape, and
/// context: the realized address and the input both feed the output, and
/// the extern is instantiated by source contexts and a stateful host
/// handler.
RefinementJob explorationJob(const Program &Src, const Program &Tgt) {
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete, 1u << 8);
  Job.Oracles = sampledOracles(6);
  Job.InputTapes = {{1}, {2}, {3}, {5}};
  Job.Contexts.push_back(ContextVariant::empty());
  Job.Contexts.push_back(ContextVariant::fromSource(
      "marker", contexts::outputMarker("g", 5000)));
  ContextVariant Stateful;
  Stateful.Name = "stateful-handler";
  Stateful.MakeHandlers = [] {
    auto Count = std::make_shared<Word>(0);
    std::map<std::string, ExternalHandler> H;
    H["g"] = [Count](Machine &M,
                     const std::vector<Value> &) -> Outcome<Unit> {
      *Count += 1;
      M.emitOutput(*Count);
      return Outcome<Unit>::success(Unit{});
    };
    return H;
  };
  Job.Contexts.push_back(std::move(Stateful));
  return Job;
}

const char *ExplorationProbe = R"(
extern g();
main() {
  var ptr p, int a, int b;
  a = input();
  g();
  p = malloc(2);
  b = (int) p;
  output(b + a);
}
)";

} // namespace

TEST(RefinementExploration, ReportsAreIdenticalAcrossJobCounts) {
  Program P = compile(ExplorationProbe);
  RefinementJob Job = explorationJob(P, P);
  Job.Exec = jobs(1);
  RefinementReport Serial = checkRefinement(Job);
  EXPECT_TRUE(Serial.Refines) << Serial.toString();
  EXPECT_GT(Serial.RunsPerformed, 0u);
  for (unsigned Jobs : {2u, 8u}) {
    Job.Exec = jobs(Jobs);
    RefinementReport Parallel = checkRefinement(Job);
    EXPECT_EQ(Parallel.toString(), Serial.toString()) << "jobs=" << Jobs;
    EXPECT_EQ(Parallel.RunsPerformed, Serial.RunsPerformed);
  }
}

TEST(RefinementExploration, MetricsAggregateIsIdenticalAcrossJobCounts) {
  // The --metrics-out "aggregate" section (and the AggregateStats object it
  // embeds) must be byte-identical at every jobs level, sweep included —
  // only the separate "pool" section may vary with thread count.
  Program P = compile(ExplorationProbe);
  RefinementJob Job = explorationJob(P, P);
  Job.ExhaustionSweep = true;
  Job.Exec = jobs(1);
  RefinementReport Serial = checkRefinement(Job);
  const std::string SerialStats = Serial.AggregateStats.toJson();
  const std::string SerialAggregate = qcm_tools::metricsAggregateJson(Serial);
  EXPECT_GT(Serial.InjectedRuns, 0u);
  for (unsigned Jobs : {2u, 4u, 8u}) {
    Job.Exec = jobs(Jobs);
    RefinementReport Parallel = checkRefinement(Job);
    EXPECT_EQ(Parallel.AggregateStats.toJson(), SerialStats)
        << "jobs=" << Jobs;
    EXPECT_EQ(qcm_tools::metricsAggregateJson(Parallel), SerialAggregate)
        << "jobs=" << Jobs;
  }
}

TEST(RefinementExploration, ProgressSinkSeesEveryCellOnce) {
  // The sink is purely observational: its advance() total must equal the
  // announced phase totals, and the report must be unchanged by attaching
  // one. Counting sink; cells arrive on the merging thread in plan order.
  struct CountingSink final : ProgressSink {
    uint64_t Announced = 0;
    uint64_t Advanced = 0;
    uint64_t Phases = 0;
    bool Finished = false;
    void beginPhase(const std::string &, uint64_t TotalUnits) override {
      ++Phases;
      Announced += TotalUnits;
    }
    void advance(uint64_t Units, uint64_t, uint64_t, uint64_t) override {
      Advanced += Units;
    }
    void finish() override { Finished = true; }
  };

  Program P = compile(ExplorationProbe);
  RefinementJob Job = explorationJob(P, P);
  Job.ExhaustionSweep = true;
  Job.Exec = jobs(4);
  RefinementReport Plain = checkRefinement(Job);

  CountingSink Sink;
  Job.Progress = &Sink;
  RefinementReport Observed = checkRefinement(Job);
  EXPECT_EQ(Observed.toString(), Plain.toString());
  EXPECT_EQ(Sink.Phases, 2u); // grid, then sweep
  EXPECT_EQ(Sink.Advanced, Sink.Announced);
  EXPECT_TRUE(Sink.Finished);
}

TEST(RefinementExploration, PoolMetricsCoverTheGrid) {
  Program P = compile(ExplorationProbe);
  RefinementJob Job = explorationJob(P, P);
  Job.Exec = jobs(2);
  RefinementReport Report = checkRefinement(Job);
  EXPECT_EQ(Report.Pool.Jobs, 2u);
  uint64_t Items = 0;
  for (const WorkerMetrics &W : Report.Pool.Workers)
    Items += W.Items;
  EXPECT_EQ(Items, Report.RunsPerformed);
  std::string Json = Report.Pool.toJson();
  EXPECT_NE(Json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(Json.find("\"workers\":["), std::string::npos);
}

TEST(RefinementExploration, CounterexampleReportsAreIdenticalAcrossJobs) {
  Program Src = compile(ExplorationProbe);
  // The target adds an extra observable: refinement fails, and the first
  // counterexample (in plan order) must be the same at every job count.
  Program Tgt = compile(R"(
extern g();
main() {
  var ptr p, int a, int b;
  a = input();
  g();
  p = malloc(2);
  b = (int) p;
  output(b + a);
  output(77);
}
)");
  RefinementJob Job = explorationJob(Src, Tgt);
  Job.Exec = jobs(1);
  RefinementReport Serial = checkRefinement(Job);
  EXPECT_FALSE(Serial.Refines);
  for (unsigned Jobs : {2u, 8u}) {
    Job.Exec = jobs(Jobs);
    RefinementReport Parallel = checkRefinement(Job);
    EXPECT_EQ(Parallel.toString(), Serial.toString()) << "jobs=" << Jobs;
  }
}

TEST(RefinementExploration, StatefulHandlersAreFreshPerRun) {
  // The stateful-handler context increments a counter per call; were one
  // handler instance shared across grid points, later runs would observe
  // stale counts and the behavior set would depend on execution order.
  Program P = compile("extern g(); main() { g(); g(); output(1); }");
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  Job.Oracles = sampledOracles(4);
  ContextVariant Stateful;
  Stateful.Name = "stateful-handler";
  Stateful.MakeHandlers = [] {
    auto Count = std::make_shared<Word>(0);
    std::map<std::string, ExternalHandler> H;
    H["g"] = [Count](Machine &M,
                     const std::vector<Value> &) -> Outcome<Unit> {
      *Count += 1;
      M.emitOutput(*Count);
      return Outcome<Unit>::success(Unit{});
    };
    return H;
  };
  Job.Contexts.push_back(std::move(Stateful));
  for (unsigned Jobs : {1u, 4u}) {
    Job.Exec = jobs(Jobs);
    RefinementReport R = checkRefinement(Job);
    ASSERT_EQ(R.PerContext.size(), 1u);
    // Every run sees a fresh handler: out(1) out(2) out(1) — one behavior.
    EXPECT_EQ(R.PerContext[0].SrcBehaviors.size(), 1u)
        << R.PerContext[0].SrcBehaviors.toString();
    EXPECT_TRUE(R.Refines);
  }
}

TEST(RefinementExploration, FailFastStopsBeforeExhaustingAHugeTapeGrid) {
  Program Src = compile("main() { var int a; a = input(); output(1); }");
  Program Tgt = compile("main() { var int a; a = input(); output(2); }");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  Job.Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
  // A deliberately huge tape grid: 4000 tapes x 2 sides = 8000 runs.
  for (Word I = 0; I < 4000; ++I)
    Job.InputTapes.push_back({I});
  for (unsigned Jobs : {1u, 8u}) {
    Job.Exec = jobs(Jobs, /*FailFast=*/true);
    RefinementReport R = checkRefinement(Job);
    EXPECT_FALSE(R.Refines);
    // All 4000 source runs merge, then the very first target run is not
    // admitted and cancels the rest — deterministically, at any job count.
    EXPECT_EQ(R.RunsPerformed, 4001u) << "jobs=" << Jobs;
  }
}

TEST(RefinementExploration, FailFastStopsAtAContextInstantiationError) {
  Program P = compile("extern g(); main() { g(); output(1); }");
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  Job.Contexts.push_back(ContextVariant::empty());
  Job.Contexts.push_back(
      ContextVariant::fromSource("broken", "g() { this does not parse }"));
  Job.Contexts.push_back(ContextVariant::fromSource(
      "marker", contexts::outputMarker("g", 5000)));
  Job.Exec = jobs(1, /*FailFast=*/true);
  RefinementReport R = checkRefinement(Job);
  EXPECT_FALSE(R.Refines);
  // The empty context and the broken one are reported; the marker context
  // after the failure is never planned.
  ASSERT_EQ(R.PerContext.size(), 2u);
  EXPECT_FALSE(R.PerContext[1].InstantiationError.empty());
  // Without fail-fast every context is explored.
  Job.Exec = jobs(1);
  RefinementReport Full = checkRefinement(Job);
  EXPECT_EQ(Full.PerContext.size(), 3u);
}

//===----------------------------------------------------------------------===//
// enumeratedOracles: lazy decoding and the sanity cap
//===----------------------------------------------------------------------===//

TEST(EnumeratedOracles, DecodesSequencesLazilyInLexicographicOrder) {
  const uint64_t Words = 6; // bases 1..4
  const unsigned Decisions = 2;
  std::vector<OracleFactory> Oracles = enumeratedOracles(Words, Decisions);
  ASSERT_EQ(Oracles.size(), 16u);
  std::vector<FreeInterval> Free = {{1, Words - 1}};
  // Oracle k plays back the base-4 digits of k, offset into [1, Words-1),
  // first decision most significant.
  for (uint64_t K : {0u, 5u, 7u, 15u}) {
    std::unique_ptr<PlacementOracle> O = Oracles[K]();
    EXPECT_EQ(O->choose(1, Free), std::optional<Word>(1 + K / 4));
    EXPECT_EQ(O->choose(1, Free), std::optional<Word>(1 + K % 4));
    // The sequence is exhausted: the oracle declines.
    EXPECT_EQ(O->choose(1, Free), std::nullopt);
  }
}

TEST(EnumeratedOracles, RejectsGridsAboveTheSanityCap) {
  std::string Error;
  std::vector<OracleFactory> Oracles =
      enumeratedOracles(1u << 16, /*Decisions=*/8, &Error);
  EXPECT_TRUE(Oracles.empty());
  EXPECT_NE(Error.find("exceeds the cap"), std::string::npos) << Error;
  // Without the out-param the call still rejects (empty result) rather
  // than eagerly materializing ~2^128 sequences.
  EXPECT_TRUE(enumeratedOracles(1u << 16, 8).empty());
}

TEST(EnumeratedOracles, SmallGridsStillExploreEveryPlacement) {
  // End-to-end: exhaustive enumeration in a tiny space still drives the
  // checker to distinct realized addresses (same coverage as the old eager
  // enumeration).
  Program P = compile(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  output(a);
}
)");
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete, 6);
  Job.Oracles = enumeratedOracles(6, 1);
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines);
  // Bases 1..4 all host the block: four distinct outputs.
  EXPECT_EQ(R.PerContext[0].SrcBehaviors.size(), 4u)
      << R.PerContext[0].SrcBehaviors.toString();
}

//===----------------------------------------------------------------------===//
// Simulation option sweep
//===----------------------------------------------------------------------===//

namespace {

/// The Section 5.1 running-example proof as a reusable script.
std::optional<std::string> runningProof(SimulationChecker &Sim) {
  if (auto Err = Sim.begin(nullptr))
    return Err;
  if (auto Err = Sim.expectCall(
          "bar",
          [](MemoryInvariant &Inv, Machine &, Machine &)
              -> std::optional<std::string> {
            if (!Inv.Alpha.add(1, 1))
              return "could not relate the p blocks";
            return std::nullopt;
          },
          sim_actions::writeThroughFirstArg(7)))
    return Err;
  return Sim.expectReturn(nullptr);
}

} // namespace

TEST(SimulationSweep, OptionResultsAreIdenticalAcrossJobCounts) {
  Vm V;
  Program Src = compile(R"(
extern bar(ptr x);
main() {
  var ptr p, ptr q, int a;
  p = malloc(1);
  q = malloc(1);
  *q = 123;
  bar(p);
  a = *q;
  output(a);
}
)");
  Program Tgt = compile(R"(
extern bar(ptr x);
main() {
  var ptr p, ptr q, int a;
  p = malloc(1);
  q = malloc(1);
  bar(p);
  output(123);
}
)");
  SimulationSetup Base;
  Base.Src = &Src;
  Base.Tgt = &Tgt;
  Base.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Base.TgtConfig = modelConfig(ModelKind::QuasiConcrete);

  std::vector<SimulationOption> Options = oracleOptions(
      Base, {{"first-fit", [] { return std::make_unique<FirstFitOracle>(); }},
             {"last-fit", [] { return std::make_unique<LastFitOracle>(); }},
             {"random:1", [] { return std::make_unique<RandomOracle>(1); }},
             {"random:2", [] { return std::make_unique<RandomOracle>(2); }},
             {"random:3", [] { return std::make_unique<RandomOracle>(3); }}});

  SimulationSweepReport Serial =
      checkSimulationOptions(Options, runningProof, jobs(1));
  EXPECT_TRUE(Serial.AllHold) << Serial.toString();
  EXPECT_EQ(Serial.OptionsChecked, 5u);
  for (unsigned Jobs : {2u, 8u}) {
    SimulationSweepReport Parallel =
        checkSimulationOptions(Options, runningProof, jobs(Jobs));
    EXPECT_EQ(Parallel.toString(), Serial.toString()) << "jobs=" << Jobs;
  }
}

TEST(SimulationSweep, FailFastStopsAtTheFirstFailingOption) {
  Program Src = compile("extern g(); main() { g(); output(1); }");
  Program Tgt = compile("extern g(); main() { g(); output(1); }");
  SimulationSetup Base;
  Base.Src = &Src;
  Base.Tgt = &Tgt;
  Base.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Base.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  std::vector<SimulationOption> Options;
  for (int I = 0; I < 6; ++I) {
    SimulationOption O;
    O.Name = "opt" + std::to_string(I);
    O.Setup = Base;
    Options.push_back(std::move(O));
  }
  // The script expects the wrong callee, so every option fails; fail-fast
  // must stop after the first, at any job count.
  SimulationScript Wrong = [](SimulationChecker &Sim)
      -> std::optional<std::string> {
    if (auto Err = Sim.begin(nullptr))
      return Err;
    return Sim.expectCall("not_g", nullptr);
  };
  for (unsigned Jobs : {1u, 4u}) {
    SimulationSweepReport R =
        checkSimulationOptions(Options, Wrong, jobs(Jobs, /*FailFast=*/true));
    EXPECT_FALSE(R.AllHold);
    EXPECT_EQ(R.OptionsChecked, 1u) << "jobs=" << Jobs;
    ASSERT_EQ(R.PerOption.size(), 1u);
    EXPECT_FALSE(R.PerOption[0].Holds);
  }
}
