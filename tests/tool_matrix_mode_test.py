#!/usr/bin/env python3
"""qcm-check --models matrix mode: determinism, resume, and diagnostics.

The N x N cross-model matrix must be byte-identical no matter how the work
is scheduled: every --jobs level prints the same report with the same exit
code. A journaled matrix run truncated mid-way must resume to the same
bytes. --models must also reject unknown names with a did-you-mean at exit
2 and refuse to combine with --model/--tgt-model.

Usage: tool_matrix_mode_test.py QCM_CHECK SRC_QCM
"""

import os
import subprocess
import sys
import tempfile

QCM_CHECK, SRC = sys.argv[1], sys.argv[2]


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True)


def main():
    failures = []

    # Self-check of one program under every registered model pair; serial
    # run is the reference.
    base = [QCM_CHECK, "--models=all", SRC, SRC]
    ref = run(base + ["--jobs=1"])
    if ref.returncode not in (0, 1):
        print(f"matrix run failed unexpectedly: {ref.stderr}")
        sys.exit(1)
    if "cross-model refinement matrix" not in ref.stdout:
        failures.append(f"missing matrix header:\n{ref.stdout}")

    for jobs in ("2", "4", "8", "auto"):
        got = run(base + [f"--jobs={jobs}"])
        if got.returncode != ref.returncode:
            failures.append(
                f"--jobs={jobs}: exit {got.returncode} != {ref.returncode}"
            )
        if got.stdout != ref.stdout:
            failures.append(
                f"--jobs={jobs}: report differs from serial run\n"
                f"--- serial ---\n{ref.stdout}\n"
                f"--- jobs={jobs} ---\n{got.stdout}"
            )

    # A subset selection must also be deterministic and mention exactly the
    # chosen models in the header.
    subset = run([QCM_CHECK, "--models=quasi,concrete", "--jobs=4", SRC, SRC])
    if "(2 models, 4 cells)" not in subset.stdout:
        failures.append(f"subset header wrong:\n{subset.stdout}")

    # Kill-and-resume: truncate a complete matrix journal after half the
    # lines and resume; the report must be byte-identical.
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "matrix.jsonl")
        full = run(base + ["--jobs=1", f"--journal={journal}"])
        if full.stdout != ref.stdout:
            failures.append("journaled matrix run differs from plain run")
        with open(journal, "rb") as f:
            journal_bytes = f.read()
        lines = journal_bytes.splitlines(keepends=True)
        if len(lines) < 3:
            failures.append("matrix journal suspiciously short")
        resumed_path = os.path.join(tmp, "resume.jsonl")
        with open(resumed_path, "wb") as f:
            f.write(b"".join(lines[: 1 + (len(lines) - 1) // 2]))
        resumed = run(base + ["--jobs=1", f"--resume={resumed_path}"])
        if resumed.stdout != full.stdout:
            failures.append(
                "resumed matrix report differs\n"
                f"--- full ---\n{full.stdout}\n"
                f"--- resumed ---\n{resumed.stdout}"
            )
        with open(resumed_path, "rb") as f:
            if f.read() != journal_bytes:
                failures.append("completed matrix journal differs")

    # Unknown model names get a did-you-mean at the documented exit 2.
    bad = run([QCM_CHECK, "--models=quasi,twophse", SRC, SRC])
    if bad.returncode != 2:
        failures.append(f"unknown model: expected exit 2, got {bad.returncode}")
    if "did you mean" not in bad.stderr:
        failures.append(f"unknown model: no suggestion: {bad.stderr!r}")

    # The matrix drives both sides itself; single-pair model flags would be
    # silently ignored, so they are refused instead.
    mixed = run([QCM_CHECK, "--models=all", "--model=quasi", SRC, SRC])
    if mixed.returncode != 2:
        failures.append(
            f"--models + --model: expected exit 2, got {mixed.returncode}"
        )
    if "exclusive" not in mixed.stderr:
        failures.append(f"--models + --model: weak diagnostic: {mixed.stderr!r}")

    if failures:
        print("\n\n".join(failures))
        sys.exit(1)
    print("matrix-mode assertions passed")


if __name__ == "__main__":
    main()
