//===- tests/quasi_memory_test.cpp - Quasi-concrete model tests -----------===//
//
// The paper's model (Sections 3-4): logical blocks realized to concrete
// addresses at pointer-to-integer cast time.
//
//===----------------------------------------------------------------------===//

#include "memory/QuasiConcreteMemory.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny(uint64_t Words) {
  MemoryConfig C;
  C.AddressWords = Words;
  return C;
}

} // namespace

TEST(QuasiMemory, BlocksAreBornLogical) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(2).value();
  ASSERT_TRUE(P.isPtr());
  EXPECT_FALSE(M.isRealized(P.ptr().Block));
  EXPECT_EQ(M.numRealizedBlocks(), 0u);
}

TEST(QuasiMemory, CastRealizesTheBlock) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(2).value();
  Outcome<Value> I = M.castPtrToInt(P);
  ASSERT_TRUE(I.ok());
  ASSERT_TRUE(I.value().isInt());
  EXPECT_TRUE(M.isRealized(P.ptr().Block));
  EXPECT_GE(I.value().intValue(), 1u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(QuasiMemory, CastIsIdempotentOnTheAddress) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(2).value();
  Word First = M.castPtrToInt(P).value().intValue();
  Word Second = M.castPtrToInt(P).value().intValue();
  EXPECT_EQ(First, Second);
}

TEST(QuasiMemory, OffsetReifiesAsBasePlusOffset) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(4).value();
  Word Base = M.castPtrToInt(P).value().intValue();
  Value Mid = Value::makePtr(P.ptr().Block, 3);
  EXPECT_EQ(M.castPtrToInt(Mid).value().intValue(), Base + 3);
}

TEST(QuasiMemory, CastRoundTripsThroughIntegers) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(4).value();
  Word Addr = M.castPtrToInt(Value::makePtr(P.ptr().Block, 2))
                  .value()
                  .intValue();
  Outcome<Value> Back = M.castIntToPtr(Value::makeInt(Addr));
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back.value(), Value::makePtr(P.ptr().Block, 2));
}

TEST(QuasiMemory, CastNullYieldsZeroAndBack) {
  QuasiConcreteMemory M(tiny(64));
  // (int) NULL == 0 falls out of the pre-realized NULL block (Section 4).
  EXPECT_EQ(M.castPtrToInt(Value::null()).value().intValue(), 0u);
  EXPECT_EQ(M.castIntToPtr(Value::makeInt(0)).value(), Value::null());
}

TEST(QuasiMemory, CastOfUnmappedIntegerIsUndefined) {
  QuasiConcreteMemory M(tiny(64));
  Outcome<Value> R = M.castIntToPtr(Value::makeInt(5));
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.fault().isUndefined());
}

TEST(QuasiMemory, CastOfOutOfRangeOffsetIsUndefined) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(2).value();
  // valid_m requires 0 <= i < n; one-past-the-end is not valid in the
  // paper's model.
  EXPECT_FALSE(M.castPtrToInt(Value::makePtr(P.ptr().Block, 2)).ok());
}

TEST(QuasiMemory, CastOfFreedBlockIsUndefined) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(1).value();
  ASSERT_TRUE(M.deallocate(P).ok());
  Outcome<Value> R = M.castPtrToInt(P);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.fault().isUndefined());
}

TEST(QuasiMemory, DanglingAddressDoesNotReify) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(1).value();
  Word Addr = M.castPtrToInt(P).value().intValue();
  ASSERT_TRUE(M.deallocate(P).ok());
  // The integer no longer reifies any valid address.
  EXPECT_FALSE(M.castIntToPtr(Value::makeInt(Addr)).ok());
}

TEST(QuasiMemory, RealizationFailureIsOutOfMemory) {
  // Usable space [1, 3) = 2 words.
  QuasiConcreteMemory M(tiny(4));
  Value P1 = M.allocate(2).value();
  Value P2 = M.allocate(1).value();
  ASSERT_TRUE(M.castPtrToInt(P1).ok());
  Outcome<Value> R = M.castPtrToInt(P2);
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.fault().isOutOfMemory());
  // Allocation itself never fails: memory is logical until cast
  // (Section 3.4).
  EXPECT_TRUE(M.allocate(100).ok());
}

TEST(QuasiMemory, FreedConcreteSpaceIsReusable) {
  QuasiConcreteMemory M(tiny(4));
  Value P1 = M.allocate(2).value();
  ASSERT_TRUE(M.castPtrToInt(P1).ok());
  ASSERT_TRUE(M.deallocate(P1).ok());
  Value P2 = M.allocate(2).value();
  Outcome<Value> R = M.castPtrToInt(P2);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value().intValue(), 1u);
}

TEST(QuasiMemory, ExplicitRealizeIsIdempotent) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(1).value();
  ASSERT_TRUE(M.realize(P.ptr().Block).ok());
  Word Addr = M.castPtrToInt(P).value().intValue();
  ASSERT_TRUE(M.realize(P.ptr().Block).ok());
  EXPECT_EQ(M.castPtrToInt(P).value().intValue(), Addr);
}

TEST(QuasiMemory, RealizedBlocksAreDisjoint) {
  QuasiConcreteMemory M(tiny(32));
  std::vector<Value> Ps;
  for (int I = 0; I < 5; ++I) {
    Ps.push_back(M.allocate(3).value());
    ASSERT_TRUE(M.castPtrToInt(Ps.back()).ok());
  }
  EXPECT_EQ(M.numRealizedBlocks(), 5u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(QuasiMemory, ContentsSurviveRealization) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(2).value();
  ASSERT_TRUE(M.store(P, Value::makeInt(42)).ok());
  ASSERT_TRUE(M.castPtrToInt(P).ok());
  EXPECT_EQ(M.load(P).value().intValue(), 42u);
}

TEST(QuasiMemory, LoadsStoresWorkOnLogicalAndConcreteBlocksAlike) {
  QuasiConcreteMemory M(tiny(64));
  Value L = M.allocate(1).value(); // stays logical
  Value C = M.allocate(1).value(); // will be realized
  ASSERT_TRUE(M.castPtrToInt(C).ok());
  ASSERT_TRUE(M.store(L, Value::makeInt(1)).ok());
  ASSERT_TRUE(M.store(C, Value::makeInt(2)).ok());
  EXPECT_EQ(M.load(L).value().intValue(), 1u);
  EXPECT_EQ(M.load(C).value().intValue(), 2u);
}

TEST(QuasiMemory, CloneKeepsRealizationState) {
  QuasiConcreteMemory M(tiny(64));
  Value P = M.allocate(1).value();
  Word Addr = M.castPtrToInt(P).value().intValue();
  auto Copy = M.clone();
  EXPECT_EQ(Copy->castPtrToInt(P).value().intValue(), Addr);
}

/// Property sweep across seeds: random churn of allocate / cast / free
/// keeps realized ranges disjoint, round trips exact, and the model
/// consistent.
class QuasiChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuasiChurnProperty, InvariantsHoldUnderChurn) {
  Rng Gen(GetParam());
  QuasiConcreteMemory M(tiny(256),
                        std::make_unique<RandomOracle>(GetParam() * 7 + 1));
  std::vector<Value> Live;
  for (int I = 0; I < 400; ++I) {
    switch (Gen.nextBelow(4)) {
    case 0: {
      Word Size = static_cast<Word>(1 + Gen.nextBelow(6));
      Live.push_back(M.allocate(Size).value());
      break;
    }
    case 1: {
      if (Live.empty())
        break;
      Value P = Live[Gen.nextBelow(Live.size())];
      Outcome<Value> R = M.castPtrToInt(P);
      if (R.ok()) {
        // cast2ptr inverts cast2int exactly.
        Outcome<Value> Back = M.castIntToPtr(R.value());
        ASSERT_TRUE(Back.ok());
        EXPECT_EQ(Back.value(), P);
      } else {
        EXPECT_TRUE(R.fault().isOutOfMemory());
      }
      break;
    }
    case 2: {
      if (Live.empty())
        break;
      size_t Pick = Gen.nextBelow(Live.size());
      EXPECT_TRUE(M.deallocate(Live[Pick]).ok());
      Live.erase(Live.begin() + Pick);
      break;
    }
    case 3: {
      if (Live.empty())
        break;
      Value P = Live[Gen.nextBelow(Live.size())];
      ASSERT_TRUE(
          M.store(P, Value::makeInt(static_cast<Word>(Gen.next()))).ok());
      break;
    }
    }
    ASSERT_EQ(M.checkConsistency(), std::nullopt) << "iteration " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuasiChurnProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));
