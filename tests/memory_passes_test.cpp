//===- tests/memory_passes_test.cpp - DSE and RLE ------------------------===//
//
// Unit tests for the liveness-driven memory passes: dead store elimination
// (backward liveness over memory events, with the owned-block trailing-
// store and free-derived rules) and redundant load elimination (forward
// availability with store-to-load and load-to-load forwarding). Each
// pass's sharper mode is exercised against its conservative one, and spot
// checks confirm the transformations validate as refinements under the
// models they claim.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/DeadStoreElim.h"
#include "opt/MemoryLiveness.h"
#include "opt/RedundantLoadElim.h"
#include "refinement/Validate.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

std::string afterPass(FunctionPass &&Pass, const std::string &Source) {
  Program P = compile(Source);
  for (FunctionDecl &F : P.Functions)
    if (!F.isExtern())
      Pass.runOnFunction(F, P);
  return printProgram(P);
}

std::string afterDse(const std::string &Source, DseOptions Options = {}) {
  return afterPass(DeadStoreElimPass(Options), Source);
}

std::string afterRle(const std::string &Source, RleOptions Options = {}) {
  return afterPass(RedundantLoadElimPass(Options), Source);
}

DseOptions localDse() {
  DseOptions O;
  O.OwnedBlocks = false;
  return O;
}

RleOptions ownRle() {
  RleOptions O;
  O.AcrossCalls = true;
  return O;
}

/// Validates Pass(Source) as a refinement of Source under \p Models.
ValidationReport validatePass(FunctionPass &&Pass, const std::string &Source,
                              const std::vector<ModelKind> &Models) {
  Program Before = compile(Source);
  Program After = Before.clone();
  bool Changed = false;
  for (FunctionDecl &F : After.Functions)
    if (!F.isExtern())
      Changed |= Pass.runOnFunction(F, After);
  EXPECT_TRUE(Changed) << "pass did not fire on:\n" << Source;
  return validateTransformation(Before, After, Models);
}

const std::vector<ModelKind> AllModels = {
    ModelKind::Concrete, ModelKind::Logical, ModelKind::QuasiConcrete,
    ModelKind::EagerQuasi};
const std::vector<ModelKind> LogicalFamily = {
    ModelKind::Logical, ModelKind::QuasiConcrete, ModelKind::EagerQuasi};

} // namespace

//===----------------------------------------------------------------------===//
// AddrKey / aliasing
//===----------------------------------------------------------------------===//

TEST(MemoryLiveness, OwnedPointersAreMallocedAndNeverEscape) {
  Program P = compile(R"(
extern sink(ptr x);

main() {
  var ptr p, ptr q, ptr r, int a;
  p = malloc(1);
  q = malloc(1);
  r = malloc(1);
  *p = 1;
  sink(q);
  a = (int) r;
  output(a);
}
)");
  const FunctionDecl *Main = P.findFunction("main");
  ASSERT_NE(Main, nullptr);
  std::set<std::string> Owned = ownedMallocPointers(*Main);
  EXPECT_EQ(Owned.count("p"), 1u); // only used as a store address
  EXPECT_EQ(Owned.count("q"), 0u); // escapes into sink()
  EXPECT_EQ(Owned.count("r"), 0u); // its address is observed by a cast
}

//===----------------------------------------------------------------------===//
// Dead store elimination
//===----------------------------------------------------------------------===//

TEST(DeadStoreElim, RemovesShadowedStores) {
  std::string Out = afterDse(R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  *p = 2;
  r = *p;
  output(r);
}
)",
                             localDse());
  EXPECT_EQ(Out.find("*p = 1;"), std::string::npos);
  EXPECT_NE(Out.find("*p = 2;"), std::string::npos);
}

TEST(DeadStoreElim, KeepsStoresThatAreReadFirst) {
  std::string Out = afterDse(R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  r = *p;
  *p = 2;
  output(r);
}
)");
  EXPECT_NE(Out.find("*p = 1;"), std::string::npos);
}

TEST(DeadStoreElim, RemovesStoresBeforeFree) {
  // Valid under every model: after free(p) any access through p faults in
  // both programs, so the stored value is unobservable.
  std::string Out = afterDse(R"(
main() {
  var ptr p;
  p = malloc(1);
  *p = 7;
  free(p);
  output(1);
}
)",
                             localDse());
  EXPECT_EQ(Out.find("*p = 7;"), std::string::npos);
  EXPECT_NE(Out.find("free(p);"), std::string::npos);
}

TEST(DeadStoreElim, RemovesTrailingStoresToOwnedBlocksOnly) {
  const std::string Source = R"(
main() {
  var ptr p;
  p = malloc(1);
  *p = 5;
  output(3);
}
)";
  // Owned mode: nothing can read the block after the function ends — the
  // pointer never escaped.
  EXPECT_EQ(afterDse(Source).find("*p = 5;"), std::string::npos);
  // The conservative mode keeps it.
  EXPECT_NE(afterDse(Source, localDse()).find("*p = 5;"), std::string::npos);
}

TEST(DeadStoreElim, KeepsTrailingStoresToEscapedBlocks) {
  std::string Out = afterDse(R"(
extern sink(ptr x);

main() {
  var ptr p;
  p = malloc(1);
  sink(p);
  *p = 5;
  output(3);
}
)");
  EXPECT_NE(Out.find("*p = 5;"), std::string::npos);
}

TEST(DeadStoreElim, OwnedStoresStayDeadAcrossCalls) {
  // The paper's ownership argument: the context cannot reach p's block, so
  // the first store is dead even across bar(). Only the owned mode may use
  // that argument.
  const std::string Source = R"(
extern bar();

main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  bar();
  *p = 2;
  r = *p;
  output(r);
}
)";
  EXPECT_EQ(afterDse(Source).find("*p = 1;"), std::string::npos);
  EXPECT_NE(afterDse(Source, localDse()).find("*p = 1;"), std::string::npos);
}

TEST(DeadStoreElim, CallsBlockUnownedDeadness) {
  std::string Out = afterDse(R"(
extern sink(ptr x);
extern bar();

main() {
  var ptr p;
  p = malloc(1);
  sink(p);
  *p = 1;
  bar();
  *p = 2;
  output(9);
}
)");
  // p escaped, so bar() may read it: the first store is live.
  EXPECT_NE(Out.find("*p = 1;"), std::string::npos);
}

TEST(DeadStoreElim, BranchesIntersectDeadness) {
  std::string Out = afterDse(R"(
main() {
  var ptr p, int c, int r;
  p = malloc(1);
  c = input();
  *p = 1;
  if (c) {
    r = *p;
    output(r);
  } else {
    output(0);
  }
  *p = 2;
  free(p);
}
)",
                             localDse());
  // Dead on the else path only — must stay.
  EXPECT_NE(Out.find("*p = 1;"), std::string::npos);
}

TEST(DeadStoreElim, ValidatesUnderClaimedModels) {
  const std::string Shadowed = R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  *p = 2;
  r = *p;
  output(r);
}
)";
  EXPECT_TRUE(
      validatePass(DeadStoreElimPass(localDse()), Shadowed, AllModels)
          .AllValid);

  const std::string AcrossCall = R"(
extern bar();

main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  bar();
  *p = 2;
  r = *p;
  output(r);
}
)";
  EXPECT_TRUE(validatePass(DeadStoreElimPass(), AcrossCall, LogicalFamily)
                  .AllValid);
}

//===----------------------------------------------------------------------===//
// Redundant load elimination
//===----------------------------------------------------------------------===//

TEST(RedundantLoadElim, ForwardsStoredConstants) {
  std::string Out = afterRle(R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 5;
  r = *p;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = 5;"), std::string::npos);
  EXPECT_EQ(Out.find("r = *p;"), std::string::npos);
}

TEST(RedundantLoadElim, ForwardsBetweenLoads) {
  // The stored value is compound, so no store-to-load fact is recorded;
  // the first load itself becomes the availability fact for the second.
  std::string Out = afterRle(R"(
main() {
  var ptr p, int a, int b;
  p = malloc(1);
  a = input();
  *p = a + 1;
  a = *p;
  b = *p;
  output(b);
}
)");
  EXPECT_NE(Out.find("a = *p;"), std::string::npos);
  EXPECT_NE(Out.find("b = a;"), std::string::npos);
}

TEST(RedundantLoadElim, OwnedBlocksDoNotAliasEachOther) {
  std::string Out = afterRle(R"(
main() {
  var ptr p, ptr q, int r;
  p = malloc(1);
  q = malloc(1);
  *p = 5;
  *q = 9;
  r = *p;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = 5;"), std::string::npos);
}

TEST(RedundantLoadElim, GlobalOffsetsAreDistinctLocations) {
  std::string Out = afterRle(R"(
global g[2];

main() {
  var int r;
  *g = 5;
  *(g + 1) = 9;
  r = *g;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = 5;"), std::string::npos);
}

TEST(RedundantLoadElim, CallsClearFactsByDefault) {
  const std::string Source = R"(
extern bar();

main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 5;
  bar();
  r = *p;
  output(r);
}
)";
  // Default mode: bar() may have overwritten anything reachable.
  EXPECT_NE(afterRle(Source).find("r = *p;"), std::string::npos);
  // Owned mode: the context cannot reach p's block (Figure 3).
  EXPECT_NE(afterRle(Source, ownRle()).find("r = 5;"), std::string::npos);
}

TEST(RedundantLoadElim, EscapedBlocksLoseFactsAcrossCalls) {
  std::string Out = afterRle(R"(
extern sink(ptr x);

main() {
  var ptr p, int r;
  p = malloc(1);
  sink(p);
  *p = 5;
  sink(p);
  r = *p;
  output(r);
}
)",
                             ownRle());
  EXPECT_NE(Out.find("r = *p;"), std::string::npos);
}

TEST(RedundantLoadElim, LoopBodiesStartWithoutFacts) {
  std::string Out = afterRle(R"(
main() {
  var ptr p, int i, int r;
  p = malloc(1);
  *p = 5;
  i = 2;
  while (i) {
    r = *p;
    output(r);
    *p = r + 1;
    i = i - 1;
  }
  output(0);
}
)");
  // The back edge may bring a different memory state: the load stays.
  EXPECT_NE(Out.find("r = *p;"), std::string::npos);
}

TEST(RedundantLoadElim, ValidatesUnderClaimedModels) {
  const std::string Local = R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 5;
  r = *p;
  output(r);
}
)";
  EXPECT_TRUE(
      validatePass(RedundantLoadElimPass(), Local, AllModels).AllValid);

  const std::string AcrossCall = R"(
extern bar();

main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 5;
  bar();
  r = *p;
  output(r);
}
)";
  EXPECT_TRUE(
      validatePass(RedundantLoadElimPass(ownRle()), AcrossCall, LogicalFamily)
          .AllValid);
}
