#!/usr/bin/env python3
"""Bad-input hardening: every corpus file under tests/bad_input/ must make
every tool print a diagnostic and exit 2 (bad input) — never crash, never
exit 0. Malformed option values (tapes, counts, fault plans) get the same
treatment.

Usage: tool_bad_input_test.py QCM_RUN QCM_OPT QCM_CHECK CORPUS_DIR GOOD_QCM
"""

import glob
import os
import subprocess
import sys

QCM_RUN, QCM_OPT, QCM_CHECK, CORPUS, GOOD = sys.argv[1:6]

FAILURES = []


def expect_bad_input(argv, label):
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode < 0:
        FAILURES.append(f"{label}: crashed with signal {-proc.returncode}")
        return
    if proc.returncode != 2:
        FAILURES.append(f"{label}: expected exit 2, got {proc.returncode}")
    if not proc.stderr.strip():
        FAILURES.append(f"{label}: no diagnostic on stderr")


def main():
    corpus = sorted(glob.glob(os.path.join(CORPUS, "*.qcm")))
    if len(corpus) < 5:
        print(f"corpus looks wrong: only {len(corpus)} files in {CORPUS}")
        sys.exit(1)

    for path in corpus:
        name = os.path.basename(path)
        expect_bad_input([QCM_RUN, path], f"qcm-run {name}")
        expect_bad_input([QCM_OPT, path], f"qcm-opt {name}")
        expect_bad_input([QCM_CHECK, path, GOOD], f"qcm-check src {name}")
        expect_bad_input([QCM_CHECK, GOOD, path], f"qcm-check tgt {name}")

    # Malformed option values on a well-formed program.
    for opt in [
        "--input=1,,2",
        "--input=1,2,",
        "--input=abc",
        "--input=99999999999999999999999999",
        "--steps=",
        "--steps=-4",
        "--words=2",
        "--words=many",
        "--timeout-ms=soon",
        "--oracle=psychic",
        "--inject=bogus:1",
        "--inject=alloc:0",
        "--inject=alloc:1+alloc:2",
        "--model=imaginary",
    ]:
        expect_bad_input([QCM_RUN, opt, GOOD], f"qcm-run {opt}")
    expect_bad_input([QCM_OPT, "--iterations=ten", GOOD], "qcm-opt bad count")
    expect_bad_input([QCM_OPT, "--passes=teleport", GOOD], "qcm-opt bad pass")
    expect_bad_input(
        [QCM_CHECK, "--jobs=some", GOOD, GOOD], "qcm-check bad jobs"
    )
    expect_bad_input(
        [QCM_CHECK, "--sweep-cap=lots", GOOD, GOOD], "qcm-check bad cap"
    )
    expect_bad_input(
        [QCM_CHECK, "--journal=a", "--resume=b", GOOD, GOOD],
        "qcm-check journal+resume",
    )
    expect_bad_input(
        [QCM_CHECK, "--context=/nonexistent/ctx.qcm", GOOD, GOOD],
        "qcm-check missing context",
    )

    if FAILURES:
        print("\n".join(FAILURES))
        sys.exit(1)
    print(f"bad-input assertions passed ({len(corpus)} corpus files)")


if __name__ == "__main__":
    main()
