//===- tests/fault_injection_test.cpp - FaultPlan / decorator tests -------===//
//
// The deterministic exhaustion-injection layer (memory/FaultInjection.h):
// plan spec round trips and parse diagnostics, the decorator's trigger
// semantics and bookkeeping, the rewind/reuse protocol, and the
// zero-overhead wrapping contract.
//
//===----------------------------------------------------------------------===//

#include "memory/FaultInjection.h"

#include "memory/ConcreteMemory.h"
#include "memory/QuasiConcreteMemory.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny(uint64_t Words) {
  MemoryConfig C;
  C.AddressWords = Words;
  return C;
}

FaultInjectingMemory wrapConcrete(uint64_t Words, FaultPlan Plan) {
  return FaultInjectingMemory(std::make_unique<ConcreteMemory>(tiny(Words)),
                              std::move(Plan));
}

} // namespace

//===----------------------------------------------------------------------===//
// FaultPlan spec syntax
//===----------------------------------------------------------------------===//

TEST(FaultPlan, ToStringParseRoundTrips) {
  std::string Error;
  for (const char *Spec :
       {"none", "alloc:3", "cast:1", "op:17", "words:64", "alloc:2+cast:3",
        "alloc:1+cast:2+op:9+words:16", "cast:5+words:0"}) {
    std::optional<FaultPlan> P = FaultPlan::parse(Spec, Error);
    ASSERT_TRUE(P) << Spec << ": " << Error;
    EXPECT_EQ(P->toString(), Spec);
    std::optional<FaultPlan> Again = FaultPlan::parse(P->toString(), Error);
    ASSERT_TRUE(Again);
    EXPECT_TRUE(*P == *Again);
  }
}

TEST(FaultPlan, EmptySpecIsTheEmptyPlan) {
  std::string Error;
  std::optional<FaultPlan> P = FaultPlan::parse("", Error);
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->empty());
  EXPECT_FALSE(P->needsDecorator());
  EXPECT_EQ(P->toString(), "none");
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  std::string Error;
  for (const char *Bad :
       {"bogus:1", "alloc:x", "alloc:", "alloc", ":3", "alloc:1+alloc:2",
        "alloc:0", "op:0", "alloc:99999999999999999999999", "alloc:1++cast:2",
        "alloc:1+"}) {
    Error.clear();
    EXPECT_FALSE(FaultPlan::parse(Bad, Error)) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(FaultPlan, WordsMayBeZeroButOrdinalsMayNot) {
  // words:K is a size, not a 1-based ordinal; the ordinal keys reject 0.
  std::string Error;
  EXPECT_TRUE(FaultPlan::parse("words:0", Error));
  EXPECT_FALSE(FaultPlan::parse("cast:0", Error));
}

TEST(FaultPlan, WordsAloneNeedsNoDecorator) {
  FaultPlan P;
  P.ShrinkAddressWords = 16;
  EXPECT_FALSE(P.empty());
  EXPECT_FALSE(P.needsDecorator());
  EXPECT_TRUE(FaultPlan::failAllocation(1).needsDecorator());
  EXPECT_TRUE(FaultPlan::failCast(1).needsDecorator());
  EXPECT_TRUE(FaultPlan::failOperation(1).needsDecorator());
}

//===----------------------------------------------------------------------===//
// FaultInjectingMemory
//===----------------------------------------------------------------------===//

TEST(FaultInjectingMemory, FailsExactlyTheNthAllocation) {
  FaultInjectingMemory M = wrapConcrete(256, FaultPlan::failAllocation(2));
  ASSERT_TRUE(M.allocate(4).ok());
  EXPECT_FALSE(M.fired());

  Outcome<Value> Second = M.allocate(4);
  ASSERT_FALSE(Second.ok());
  EXPECT_TRUE(Second.fault().isOutOfMemory());
  EXPECT_EQ(Second.fault().Reason, "injected exhaustion: allocation #2");
  EXPECT_TRUE(M.fired());

  // The schedule names one operation; later allocations go through again.
  EXPECT_TRUE(M.allocate(4).ok());
  EXPECT_EQ(M.allocationsSeen(), 3u);
}

TEST(FaultInjectingMemory, InjectedAllocationCountsAsAFailureInStats) {
  FaultInjectingMemory M = wrapConcrete(256, FaultPlan::failAllocation(1));
  ASSERT_FALSE(M.allocate(4).ok());
  EXPECT_EQ(M.trace().stats().AllocationFailures, 1u);
  EXPECT_EQ(M.trace().stats().Allocations, 0u);
}

TEST(FaultInjectingMemory, FailsExactlyTheNthCast) {
  FaultInjectingMemory M(
      std::make_unique<QuasiConcreteMemory>(tiny(256)),
      FaultPlan::failCast(2));
  Outcome<Value> P = M.allocate(4);
  ASSERT_TRUE(P.ok());
  ASSERT_TRUE(M.castPtrToInt(P.value()).ok());

  Outcome<Value> Second = M.castPtrToInt(P.value());
  ASSERT_FALSE(Second.ok());
  EXPECT_TRUE(Second.fault().isOutOfMemory());
  EXPECT_EQ(Second.fault().Reason,
            "injected exhaustion: pointer-to-integer cast #2");
  // The block was realized by the first, successful cast; the injected one
  // never reached the model.
  EXPECT_EQ(M.trace().stats().Realizations, 1u);
}

TEST(FaultInjectingMemory, FailOperationCountsEveryOperationKind) {
  FaultInjectingMemory M = wrapConcrete(256, FaultPlan::failOperation(4));
  Outcome<Value> P = M.allocate(4); // op 1
  ASSERT_TRUE(P.ok());
  Value Addr = P.value();
  ASSERT_TRUE(M.store(Addr, Value::makeInt(7)).ok()); // op 2
  ASSERT_TRUE(M.load(Addr).ok());                     // op 3
  Outcome<Value> Fourth = M.load(Addr);               // op 4: injected
  ASSERT_FALSE(Fourth.ok());
  EXPECT_TRUE(Fourth.fault().isOutOfMemory());
  EXPECT_EQ(Fourth.fault().Reason, "injected exhaustion: operation #4");
  EXPECT_EQ(M.operationsSeen(), 4u);
}

TEST(FaultInjectingMemory, RewindReplaysTheSameSchedule) {
  FaultInjectingMemory M = wrapConcrete(256, FaultPlan::failAllocation(2));
  ASSERT_TRUE(M.allocate(4).ok());
  ASSERT_FALSE(M.allocate(4).ok());
  ASSERT_TRUE(M.fired());

  M.rewind();
  static_cast<ConcreteMemory *>(M.underlying())->reset();
  EXPECT_FALSE(M.fired());
  EXPECT_EQ(M.allocationsSeen(), 0u);
  ASSERT_TRUE(M.allocate(4).ok());
  Outcome<Value> Second = M.allocate(4);
  ASSERT_FALSE(Second.ok());
  EXPECT_EQ(Second.fault().Reason, "injected exhaustion: allocation #2");
}

TEST(FaultInjectingMemory, CloneCarriesCountersForward) {
  FaultInjectingMemory M = wrapConcrete(256, FaultPlan::failAllocation(2));
  ASSERT_TRUE(M.allocate(4).ok());
  std::unique_ptr<Memory> Copy = M.clone();
  // The copy is one allocation in, so its next allocation is the failing
  // second one.
  EXPECT_FALSE(Copy->allocate(4).ok());
  // ... independently of the original.
  EXPECT_FALSE(M.allocate(4).ok());
}

TEST(FaultInjectingMemory, IsTransparentToTheInnerModel) {
  FaultInjectingMemory M = wrapConcrete(256, FaultPlan::failAllocation(99));
  EXPECT_EQ(M.kind(), ModelKind::Concrete);
  Outcome<Value> P = M.allocate(3);
  ASSERT_TRUE(P.ok());
  ASSERT_TRUE(M.store(P.value(), Value::makeInt(11)).ok());
  EXPECT_EQ(M.load(P.value()).value().intValue(), 11u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
  EXPECT_FALSE(M.snapshot().empty());
}

//===----------------------------------------------------------------------===//
// wrapWithFaultInjection
//===----------------------------------------------------------------------===//

TEST(WrapWithFaultInjection, EmptyPlanIsTheIdentity) {
  auto Inner = std::make_unique<ConcreteMemory>(tiny(64));
  Memory *Raw = Inner.get();
  std::unique_ptr<Memory> Wrapped =
      wrapWithFaultInjection(std::move(Inner), FaultPlan{});
  EXPECT_EQ(Wrapped.get(), Raw);
  EXPECT_EQ(Wrapped->underlying(), Wrapped.get());
}

TEST(WrapWithFaultInjection, WordsOnlyPlanIsTheIdentity) {
  // ShrinkAddressWords is makeMemory's job; no decorator is needed.
  FaultPlan P;
  P.ShrinkAddressWords = 16;
  auto Inner = std::make_unique<ConcreteMemory>(tiny(64));
  Memory *Raw = Inner.get();
  EXPECT_EQ(wrapWithFaultInjection(std::move(Inner), P).get(), Raw);
}

TEST(WrapWithFaultInjection, TriggeringPlanDecoratesAndIsDetectable) {
  std::unique_ptr<Memory> Wrapped = wrapWithFaultInjection(
      std::make_unique<ConcreteMemory>(tiny(64)), FaultPlan::failCast(1));
#if QCM_FAULT_INJECTION_ENABLED
  // The decorator is recognizable without RTTI: underlying() is the
  // identity on every plain model and the inner model on the wrapper.
  EXPECT_NE(Wrapped->underlying(), Wrapped.get());
  EXPECT_EQ(Wrapped->kind(), ModelKind::Concrete);
#else
  EXPECT_EQ(Wrapped->underlying(), Wrapped.get());
#endif
}
