//===- tests/opt_passes_test.cpp - ConstProp / DCE / purity tests ---------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/Analysis.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

std::string afterConstProp(const std::string &Source) {
  Program P = compile(Source);
  ConstPropPass Pass;
  for (FunctionDecl &F : P.Functions)
    if (!F.isExtern())
      Pass.runOnFunction(F, P);
  return printProgram(P);
}

std::string afterDce(const std::string &Source, DceOptions Options = {}) {
  Program P = compile(Source);
  PassManager PM;
  PM.add(std::make_unique<DeadCodeElimPass>(Options));
  PM.run(P);
  return printProgram(P);
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant propagation
//===----------------------------------------------------------------------===//

TEST(ConstProp, PropagatesThroughAssignments) {
  std::string Out = afterConstProp(R"(
main() {
  var int a, int b;
  a = 5;
  b = a + 2;
  output(b);
}
)");
  EXPECT_NE(Out.find("b = 7;"), std::string::npos);
  EXPECT_NE(Out.find("output(7);"), std::string::npos);
}

TEST(ConstProp, SurvivesCallsBecauseVariablesAreRegisters) {
  std::string Out = afterConstProp(R"(
extern g();
main() {
  var int a;
  a = 41;
  g();
  output(a + 1);
}
)");
  EXPECT_NE(Out.find("output(42);"), std::string::npos);
}

TEST(ConstProp, LoadsAndCastsAndInputsKill) {
  std::string Out = afterConstProp(R"(
main(ptr p) {
  var int a;
  a = 1;
  a = *p;
  output(a);
  a = 2;
  a = input();
  output(a);
}
)");
  // Both outputs must still read the variable.
  EXPECT_NE(Out.find("output(a);"), std::string::npos);
  EXPECT_EQ(Out.find("output(1);"), std::string::npos);
  EXPECT_EQ(Out.find("output(2);"), std::string::npos);
}

TEST(ConstProp, FoldsBranches) {
  std::string Out = afterConstProp(R"(
main() {
  var int a;
  a = 1;
  if (a) {
    output(10);
  } else {
    output(20);
  }
}
)");
  EXPECT_NE(Out.find("output(10);"), std::string::npos);
  EXPECT_EQ(Out.find("output(20);"), std::string::npos);
  EXPECT_EQ(Out.find("if"), std::string::npos);
}

TEST(ConstProp, RemovesNeverExecutedLoops) {
  std::string Out = afterConstProp(R"(
main() {
  var int a;
  a = 0;
  while (a) {
    output(1);
  }
  output(2);
}
)");
  EXPECT_EQ(Out.find("while"), std::string::npos);
  EXPECT_NE(Out.find("output(2);"), std::string::npos);
}

TEST(ConstProp, LoopBodiesAreAnalyzedConservatively) {
  std::string Out = afterConstProp(R"(
main() {
  var int a, int b;
  a = 3;
  b = 9;
  while (a) {
    a = a - 1;
    output(b);
  }
}
)");
  // a changes in the loop: not foldable; b does not: foldable.
  EXPECT_NE(Out.find("while (a)"), std::string::npos);
  EXPECT_NE(Out.find("output(9);"), std::string::npos);
}

TEST(ConstProp, MergesBranchesByIntersection) {
  std::string Out = afterConstProp(R"(
main() {
  var int a, int b, int c;
  a = input();
  if (a) {
    b = 5;
    c = 1;
  } else {
    b = 5;
    c = 2;
  }
  output(b);
  output(c);
}
)");
  EXPECT_NE(Out.find("output(5);"), std::string::npos);
  EXPECT_NE(Out.find("output(c);"), std::string::npos);
}

TEST(ConstProp, InitialZeroOfLocalsIsKnown) {
  std::string Out = afterConstProp(R"(
main() {
  var int a;
  output(a);
}
)");
  EXPECT_NE(Out.find("output(0);"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Purity analysis
//===----------------------------------------------------------------------===//

TEST(Purity, ReadOnlyFunctionsAreRecognized) {
  Program P = compile(R"(
extern unknown();
pureArith(int a) { var int b; b = a & 123; }
reader(ptr p) { var int a; a = *p; }
storer(ptr p) { *p = 1; }
allocator() { var ptr q; q = malloc(1); }
caster(ptr p) { var int a; a = (int) p; }
emitter() { output(1); }
callsPure(int a) { pureArith(a); }
callsImpure(ptr p) { storer(p); }
callsUnknown() { unknown(); }
recursive(int a) { if (a) { recursive(a - 1); } }
)");
  EXPECT_TRUE(isReadOnlyFunction(P, "pureArith"));
  EXPECT_TRUE(isReadOnlyFunction(P, "reader"));
  EXPECT_FALSE(isReadOnlyFunction(P, "storer"));
  EXPECT_FALSE(isReadOnlyFunction(P, "allocator"));
  EXPECT_FALSE(isReadOnlyFunction(P, "caster"));
  EXPECT_FALSE(isReadOnlyFunction(P, "emitter"));
  EXPECT_TRUE(isReadOnlyFunction(P, "callsPure"));
  EXPECT_FALSE(isReadOnlyFunction(P, "callsImpure"));
  EXPECT_FALSE(isReadOnlyFunction(P, "callsUnknown"));
  EXPECT_TRUE(isReadOnlyFunction(P, "recursive"));
  EXPECT_FALSE(isReadOnlyFunction(P, "unknown"));
  EXPECT_FALSE(isReadOnlyFunction(P, "nonexistent"));
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

TEST(Dce, RemovesDeadPureAssignments) {
  std::string Out = afterDce(R"(
main() {
  var int a, int b;
  a = 5;
  b = a + 1;
  output(a);
}
)");
  EXPECT_EQ(Out.find("b ="), std::string::npos);
  EXPECT_NE(Out.find("a = 5;"), std::string::npos);
}

TEST(Dce, KeepsObservableAndMemoryEffects) {
  std::string Out = afterDce(R"(
main(ptr p) {
  var int a;
  a = input();
  *p = 1;
  output(2);
}
)");
  EXPECT_NE(Out.find("input()"), std::string::npos);
  EXPECT_NE(Out.find("*p = 1;"), std::string::npos);
  EXPECT_NE(Out.find("output(2);"), std::string::npos);
}

TEST(Dce, Figure2ReadOnlyCallRemoval) {
  std::string Out = afterDce(R"(
extern bar();
foo(int a) { var int b; b = a & 123; }
main(ptr p) {
  var int a;
  a = (int) p;
  foo(a);
  bar();
}
)");
  // The call to foo is gone; the call to (unknown) bar stays.
  EXPECT_EQ(Out.find("foo(a);"), std::string::npos);
  EXPECT_NE(Out.find("bar();"), std::string::npos);
  // The cast is NOT removed by default (effectful in the quasi model).
  EXPECT_NE(Out.find("(int) p"), std::string::npos);
}

TEST(Dce, DeadCastsOnlyWithTheLoweringGate) {
  const std::string Source = R"(
main(ptr p) {
  var int a;
  a = (int) p;
  output(1);
}
)";
  EXPECT_NE(afterDce(Source).find("(int) p"), std::string::npos);
  DceOptions Lowering;
  Lowering.RemoveDeadCasts = true;
  EXPECT_EQ(afterDce(Source, Lowering).find("(int) p"), std::string::npos);
}

TEST(Dce, DeadAllocsOnlyWithTheGate) {
  const std::string Source = R"(
main() {
  var ptr q;
  q = malloc(4);
  output(1);
}
)";
  EXPECT_NE(afterDce(Source).find("malloc"), std::string::npos);
  DceOptions Dae;
  Dae.RemoveDeadAllocs = true;
  EXPECT_EQ(afterDce(Source, Dae).find("malloc"), std::string::npos);
}

TEST(Dce, LivenessFlowsThroughBranchesAndLoops) {
  std::string Out = afterDce(R"(
main() {
  var int a, int b, int c;
  a = input();
  b = 1;
  c = 2;
  if (a) {
    output(b);
  } else {
    output(a);
  }
  while (a) {
    a = a - 1;
    output(c);
  }
}
)");
  EXPECT_NE(Out.find("b = 1;"), std::string::npos);
  EXPECT_NE(Out.find("c = 2;"), std::string::npos);
}

TEST(Dce, CascadingRemovalReachesFixedPoint) {
  std::string Out = afterDce(R"(
main() {
  var int a, int b, int c;
  a = 1;
  b = a + 1;
  c = b + 1;
  output(7);
}
)");
  EXPECT_EQ(Out.find("a = 1;"), std::string::npos);
  EXPECT_EQ(Out.find("b ="), std::string::npos);
  EXPECT_EQ(Out.find("c ="), std::string::npos);
}

TEST(Dce, DeadLoadsAreRemoved) {
  std::string Out = afterDce(R"(
main(ptr p) {
  var int a;
  a = *p;
  output(1);
}
)");
  EXPECT_EQ(Out.find("*p"), std::string::npos);
}
