//===- tests/oom_paths_test.cpp - Natural out-of-memory paths -------------===//
//
// The paper's real exhaustion transitions, reached without injection by
// shrinking the address space: allocation failure in the concrete model
// (Section 2.1), realization failure at cast time in the quasi-concrete
// model (Section 3.4), and the eager variant's allocation-time failure for
// concrete-kinded blocks. Each path must classify as OutOfMemory — the
// paper's "no behavior" — with the bookkeeping (ModelStats, trace events)
// recording the failure.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "memory/ConcreteMemory.h"
#include "memory/EagerQuasiMemory.h"
#include "memory/QuasiConcreteMemory.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny(uint64_t Words) {
  MemoryConfig C;
  C.AddressWords = Words;
  return C;
}

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  EXPECT_TRUE(P) << V.lastDiagnostics();
  return P ? std::move(*P) : Program{};
}

} // namespace

//===----------------------------------------------------------------------===//
// Model-level paths
//===----------------------------------------------------------------------===//

TEST(OomPaths, ConcreteAllocationFailsWhenTheSpaceIsFull) {
  ConcreteMemory M(tiny(16));
  ASSERT_TRUE(M.allocate(8).ok());
  Outcome<Value> P = M.allocate(32);
  ASSERT_FALSE(P.ok());
  EXPECT_TRUE(P.fault().isOutOfMemory());
  EXPECT_FALSE(P.fault().Reason.empty());
  EXPECT_EQ(M.trace().stats().AllocationFailures, 1u);
  EXPECT_EQ(M.trace().stats().Allocations, 1u);
  // The model stays consistent and usable after the failed allocation.
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
  EXPECT_TRUE(M.allocate(2).ok());
}

TEST(OomPaths, QuasiAllocationNeverFailsButRealizationCan) {
  QuasiConcreteMemory M(tiny(8));
  // Logical until cast: a block far larger than the space allocates fine.
  Outcome<Value> P = M.allocate(64);
  ASSERT_TRUE(P.ok());
  ASSERT_TRUE(M.store(P.value(), Value::makeInt(5)).ok());

  // The cast must realize the block in 8 words — impossible.
  Outcome<Value> I = M.castPtrToInt(P.value());
  ASSERT_FALSE(I.ok());
  EXPECT_TRUE(I.fault().isOutOfMemory());
  EXPECT_EQ(M.trace().stats().RealizationFailures, 1u);
  EXPECT_EQ(M.trace().stats().Realizations, 0u);
  // The failed realization is no-behavior, not undefined.
  EXPECT_EQ(M.trace().stats().UndefinedFaults, 0u);
  // The block itself is still intact and loadable.
  EXPECT_EQ(M.load(P.value()).value().intValue(), 5u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(OomPaths, EagerQuasiConcreteBlocksFailAtAllocationTime) {
  // Section 3.4: the eager variant pays for concreteness up front, so a
  // concrete-kinded allocation can exhaust the space with no cast in sight.
  EagerQuasiMemory M(tiny(8), std::make_unique<ConstantKindOracle>(true));
  Outcome<Value> P = M.allocate(64);
  ASSERT_FALSE(P.ok());
  EXPECT_TRUE(P.fault().isOutOfMemory());
  EXPECT_EQ(M.trace().stats().AllocationFailures, 1u);
}

TEST(OomPaths, EagerQuasiLogicalBlocksFailAtCastTime) {
  // A logical-kinded block allocates fine; the cast then has nothing to
  // realize it into.
  EagerQuasiMemory M(tiny(8), std::make_unique<ConstantKindOracle>(false));
  Outcome<Value> P = M.allocate(64);
  ASSERT_TRUE(P.ok());
  Outcome<Value> I = M.castPtrToInt(P.value());
  ASSERT_FALSE(I.ok());
  EXPECT_TRUE(I.fault().isOutOfMemory());
}

//===----------------------------------------------------------------------===//
// Runner-level classification
//===----------------------------------------------------------------------===//

TEST(OomPaths, ConcreteRunClassifiesAsOutOfMemory) {
  Program P = compile("main() {\n"
                      "  var ptr p;\n"
                      "  p = malloc(64);\n"
                      "  output(1);\n"
                      "}\n");
  RunConfig C;
  C.Model = ModelKind::Concrete;
  C.MemConfig.AddressWords = 8;
  RunResult R = runProgram(P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::OutOfMemory);
  // OOM is "no behavior": the events stop before the output.
  EXPECT_TRUE(R.Behav.Events.empty());
  EXPECT_EQ(R.ConsistencyError, std::nullopt);
}

TEST(OomPaths, QuasiRunFailsOnlyAtTheCast) {
  Program P = compile("main() {\n"
                      "  var ptr p, int a;\n"
                      "  p = malloc(64);\n"
                      "  output(1);\n"
                      "  a = (int) p;\n"
                      "  output(2);\n"
                      "}\n");
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.MemConfig.AddressWords = 8;
  RunResult R = runProgram(P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::OutOfMemory);
  // The allocation succeeded (logical), so the first output is observed;
  // the realization at the cast is what exhausts the space.
  ASSERT_EQ(R.Behav.Events.size(), 1u);
  EXPECT_EQ(R.Stats.RealizationFailures, 1u);
}

TEST(OomPaths, ShrinkingTheSpaceViaFaultPlanMatchesAConfiguredRun) {
  // words:K in a fault plan must behave exactly like configuring the
  // address space to K words directly.
  Program P = compile("main() {\n"
                      "  var ptr p;\n"
                      "  p = malloc(64);\n"
                      "  output(1);\n"
                      "}\n");
  RunConfig Direct;
  Direct.Model = ModelKind::Concrete;
  Direct.MemConfig.AddressWords = 8;
  RunResult A = runProgram(P, Direct);

  RunConfig Injected;
  Injected.Model = ModelKind::Concrete;
  Injected.Inject.ShrinkAddressWords = 8;
  RunResult B = runProgram(P, Injected);

  EXPECT_EQ(A.Behav, B.Behav);
  EXPECT_EQ(A.Behav.Reason, B.Behav.Reason);
  EXPECT_EQ(A.Steps, B.Steps);
}
