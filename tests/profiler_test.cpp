//===- tests/profiler_test.cpp - Span profiler and metrics document -------===//
//
// Covers the span profiler (support/Profiler.h): the off-by-default
// contract, span recording with args, category summaries and histograms,
// process-wide counters, thread attribution through ThreadPool workers, the
// Chrome trace-event export, and the unified metrics document built by
// qcm_tools. Every test also compiles (and the export/document tests still
// run meaningfully) under -DQCM_PROFILE_ENABLED=0, where recording is an
// empty stub and the exports produce a valid empty trace.
//
//===----------------------------------------------------------------------===//

#include "refinement/RefinementChecker.h"
#include "support/Profiler.h"
#include "support/ThreadPool.h"
#include "tools/ToolSupport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace qcm;

namespace {

/// RAII guard: every test leaves the process-global profiler disabled and
/// empty, so tests compose in any order.
struct ProfilerScope {
  ProfilerScope() {
    prof::reset();
    prof::setEnabled(true);
  }
  ~ProfilerScope() {
    prof::setEnabled(false);
    prof::reset();
  }
};

} // namespace

TEST(Profiler, PeakRssIsKnownOnLinux) {
  // Always available, independent of the compile switch; a process running
  // a test binary certainly has a nonzero high-water mark.
  EXPECT_GT(prof::peakRssBytes(), 0u);
}

TEST(Profiler, DisabledByDefaultRecordsNothing) {
  prof::reset();
  ASSERT_FALSE(prof::enabled());
  {
    prof::Span Span("ignored", "test");
    Span.arg("key", std::string("value"));
  }
  prof::counterAdd("ignored.counter", 7);
  EXPECT_EQ(prof::spanCount(), 0u);
  EXPECT_TRUE(prof::counters().empty());
}

#if QCM_PROFILE_ENABLED

TEST(Profiler, RecordsSpansWithArgs) {
  ProfilerScope Scope;
  {
    prof::Span Span("work", "test");
    Span.arg("items", uint64_t{3});
    Span.arg("label", std::string("alpha"));
    Span.argBool("cached", true);
  }
  { prof::Span Span("other", "test"); }
  EXPECT_EQ(prof::spanCount(), 2u);

  std::string Trace = prof::renderChromeTrace();
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"work\""), std::string::npos);
  EXPECT_NE(Trace.find("\"items\":3"), std::string::npos);
  EXPECT_NE(Trace.find("\"label\":\"alpha\""), std::string::npos);
  EXPECT_NE(Trace.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(Trace.find("thread_name"), std::string::npos);
}

TEST(Profiler, CategorySummariesAggregate) {
  ProfilerScope Scope;
  for (int I = 0; I < 5; ++I)
    prof::Span Span("tick", "cat-a");
  { prof::Span Span("tock", "cat-b"); }

  std::vector<prof::CategorySummary> Summaries = prof::categorySummaries();
  ASSERT_EQ(Summaries.size(), 2u);
  EXPECT_EQ(Summaries[0].Category, "cat-a");
  EXPECT_EQ(Summaries[0].Spans, 5u);
  EXPECT_EQ(Summaries[1].Category, "cat-b");
  EXPECT_EQ(Summaries[1].Spans, 1u);
  EXPECT_GE(Summaries[0].MaxNs, Summaries[0].MinNs);
  EXPECT_GE(Summaries[0].TotalNs, Summaries[0].MaxNs);

  // Every span lands in exactly one histogram bucket.
  uint64_t Bucketed = 0;
  for (uint64_t B : Summaries[0].Buckets)
    Bucketed += B;
  EXPECT_EQ(Bucketed, 5u);

  std::string Json = Summaries[0].toJson();
  EXPECT_NE(Json.find("\"category\":\"cat-a\""), std::string::npos);
  EXPECT_NE(Json.find("\"hist_log2_us\""), std::string::npos);
}

TEST(Profiler, CountersAccumulateAndSort) {
  ProfilerScope Scope;
  prof::counterAdd("b.second", 2);
  prof::counterAdd("a.first", 1);
  prof::counterAdd("a.first", 4);
  std::vector<std::pair<std::string, uint64_t>> Counters = prof::counters();
  ASSERT_EQ(Counters.size(), 2u);
  EXPECT_EQ(Counters[0].first, "a.first");
  EXPECT_EQ(Counters[0].second, 5u);
  EXPECT_EQ(Counters[1].first, "b.second");
  EXPECT_EQ(Counters[1].second, 2u);
}

TEST(Profiler, PoolWorkersGetNamedTracks) {
  ProfilerScope Scope;
  {
    ThreadPool Pool(3, "prof-worker");
    for (int I = 0; I < 12; ++I)
      Pool.submit([] {
        prof::Span Span("task", "test");
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      });
    Pool.wait();
  }
  EXPECT_EQ(prof::spanCount(), 12u);

  std::string Trace = prof::renderChromeTrace();
  // Workers register their named track at startup (profiling was on when
  // the pool spun up), so all three appear regardless of which worker ran
  // which task.
  EXPECT_NE(Trace.find("prof-worker-0"), std::string::npos);
  EXPECT_NE(Trace.find("prof-worker-1"), std::string::npos);
  EXPECT_NE(Trace.find("prof-worker-2"), std::string::npos);
}

TEST(Profiler, SpansSurviveThreadExit) {
  ProfilerScope Scope;
  std::thread Worker([] {
    prof::setThreadName("ephemeral");
    prof::Span Span("from-dead-thread", "test");
  });
  Worker.join();
  EXPECT_EQ(prof::spanCount(), 1u);
  std::string Trace = prof::renderChromeTrace();
  EXPECT_NE(Trace.find("ephemeral"), std::string::npos);
  EXPECT_NE(Trace.find("from-dead-thread"), std::string::npos);
}

TEST(Profiler, ResetDropsEverything) {
  ProfilerScope Scope;
  { prof::Span Span("gone", "test"); }
  prof::counterAdd("gone.counter", 1);
  prof::reset();
  EXPECT_EQ(prof::spanCount(), 0u);
  EXPECT_TRUE(prof::counters().empty());
  EXPECT_TRUE(prof::categorySummaries().empty());
}

#endif // QCM_PROFILE_ENABLED

TEST(Profiler, WriteChromeTraceProducesParseableFile) {
  // Meaningful in both build flavors: compiled out, the file still carries
  // a valid empty trace so scripted pipelines need no conditionals.
  prof::reset();
  prof::setEnabled(true);
  { prof::Span Span("filed", "test"); }
  std::string Path = ::testing::TempDir() + "profiler_test_trace.json";
  std::string Error;
  ASSERT_TRUE(prof::writeChromeTrace(Path, Error)) << Error;
  prof::setEnabled(false);
  prof::reset();

  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Trace = Buffer.str();
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(Trace.find("\"peak_rss_bytes\""), std::string::npos);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The unified metrics document (qcm_tools)
//===----------------------------------------------------------------------===//

TEST(MetricsDocument, CarriesEverySection) {
  RefinementReport Report;
  Report.RunsPerformed = 9;
  Report.InjectedRuns = 2;
  Report.SweepRan = true;
  Report.AggregateStats.Allocations = 13;
  Report.AggregateDispatch.BlocksTranslated = 7;
  Report.Pool.Jobs = 4;

  std::string Doc = qcm_tools::renderMetricsDocument(Report, "unit-test");
  EXPECT_NE(Doc.find("\"schema\":\"qcm-metrics-1\""), std::string::npos);
  EXPECT_NE(Doc.find("\"tool\":\"unit-test\""), std::string::npos);
  EXPECT_NE(Doc.find("\"aggregate\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"runs_performed\":9"), std::string::npos);
  EXPECT_NE(Doc.find("\"injected_runs\":2"), std::string::npos);
  EXPECT_NE(Doc.find("\"allocations\":13"), std::string::npos);
  EXPECT_NE(Doc.find("\"dispatch\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"blocks_translated\":7"), std::string::npos);
  EXPECT_NE(Doc.find("\"pool\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"jobs\":4"), std::string::npos);
  EXPECT_NE(Doc.find("\"process\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"peak_rss_bytes\""), std::string::npos);
  EXPECT_NE(Doc.find("\"profile\":{"), std::string::npos);
}

TEST(MetricsDocument, AggregateHalfIsDeterministic) {
  // The aggregate fragment must not depend on profiler, pool, or dispatch
  // state: two reports with equal deterministic fields render identical
  // JSON even when their nondeterministic pool timings and dispatch-cache
  // counters differ (both vary with --jobs via worker-slot machine reuse).
  RefinementReport A;
  A.RunsPerformed = 3;
  A.Pool.WallUs = 111;
  A.AggregateDispatch.BlockCacheHits = 5;
  RefinementReport B;
  B.RunsPerformed = 3;
  B.Pool.WallUs = 999999;
  B.AggregateDispatch.BlockCacheHits = 700;
  EXPECT_EQ(qcm_tools::metricsAggregateJson(A),
            qcm_tools::metricsAggregateJson(B));
}

TEST(MetricsDocument, WriteMetricsJsonRoundTrips) {
  RefinementReport Report;
  std::string Path = ::testing::TempDir() + "profiler_test_metrics.json";
  std::string Error;
  ASSERT_TRUE(qcm_tools::writeMetricsJson(Path, Report, "unit-test", Error))
      << Error;
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_NE(Buffer.str().find("\"qcm-metrics-1\""), std::string::npos);
  std::remove(Path.c_str());
}
