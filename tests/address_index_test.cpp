//===- tests/address_index_test.cpp - Data-layout unit tests --------------===//
//
// Unit tests for the hot-path data layout: the packed 8-byte Value, the
// sorted base->block AddressIndex, the Block::containsAddress one-compare
// containment check, and the ValueSlab span arena.
//
//===----------------------------------------------------------------------===//

#include "memory/AddressIndex.h"
#include "memory/Block.h"
#include "memory/QuasiConcreteMemory.h"
#include "memory/Value.h"
#include "memory/ValueSlab.h"

#include <gtest/gtest.h>

using namespace qcm;

//===----------------------------------------------------------------------===//
// Packed Value representation
//===----------------------------------------------------------------------===//

TEST(PackedValue, IsOneEightByteWord) {
  static_assert(sizeof(Value) == 8,
                "Value must stay a single 8-byte tagged word");
  EXPECT_EQ(sizeof(Value), 8u);
}

TEST(PackedValue, IntRoundTripIncludingExtremes) {
  for (Word W : {Word(0), Word(1), Word(42), Word(0x7fffffff),
                 Word(0x80000000), Word(0xffffffff)}) {
    Value V = Value::makeInt(W);
    ASSERT_TRUE(V.isInt());
    EXPECT_FALSE(V.isPtr());
    EXPECT_EQ(V.intValue(), W);
  }
}

TEST(PackedValue, PtrRoundTripIncludingExtremes) {
  // Block ids up to the 31-bit field limit, offsets across the full word.
  const BlockId MaxBlock = (BlockId(1) << 31) - 1;
  for (BlockId B : {BlockId(0), BlockId(1), BlockId(7777), MaxBlock}) {
    for (Word Off : {Word(0), Word(5), Word(0xffffffff)}) {
      Value V = Value::makePtr(B, Off);
      ASSERT_TRUE(V.isPtr());
      EXPECT_FALSE(V.isInt());
      EXPECT_EQ(V.ptr().Block, B);
      EXPECT_EQ(V.ptr().Offset, Off);
    }
  }
}

TEST(PackedValue, DefaultIsIntegerZero) {
  EXPECT_EQ(Value(), Value::makeInt(0));
  EXPECT_TRUE(Value().isInt());
}

TEST(PackedValue, NullPointerIsNotIntegerZero) {
  // (0, 0) the logical NULL address and 0 the integer are distinct values
  // (the paper's Val sums int32 and logical addresses); the tag bit keeps
  // them distinct under the bitwise equality of the packed form.
  EXPECT_TRUE(Value::null().isPtr());
  EXPECT_NE(Value::null(), Value::makeInt(0));
  EXPECT_EQ(Value::null(), Value::makePtr(0, 0));
}

TEST(PackedValue, EqualityIsStructural) {
  EXPECT_EQ(Value::makeInt(9), Value::makeInt(9));
  EXPECT_NE(Value::makeInt(9), Value::makeInt(10));
  EXPECT_EQ(Value::makePtr(3, 4), Value::makePtr(3, 4));
  EXPECT_NE(Value::makePtr(3, 4), Value::makePtr(3, 5));
  EXPECT_NE(Value::makePtr(3, 4), Value::makePtr(4, 4));
  // An integer that happens to equal a pointer's offset is not that
  // pointer.
  EXPECT_NE(Value::makeInt(4), Value::makePtr(0, 4));
}

//===----------------------------------------------------------------------===//
// AddressIndex
//===----------------------------------------------------------------------===//

TEST(AddressIndex, FindHitsAndMisses) {
  AddressIndex Index;
  Index.insert(/*Base=*/100, /*Size=*/10, /*Id=*/1);
  Index.insert(/*Base=*/300, /*Size=*/1, /*Id=*/2);

  ASSERT_NE(Index.find(100), nullptr);
  EXPECT_EQ(Index.find(100)->Id, 1u);
  ASSERT_NE(Index.find(109), nullptr);
  EXPECT_EQ(Index.find(109)->Id, 1u);
  EXPECT_EQ(Index.find(110), nullptr); // one past the end
  EXPECT_EQ(Index.find(99), nullptr);  // one before the base
  ASSERT_NE(Index.find(300), nullptr);
  EXPECT_EQ(Index.find(300)->Id, 2u);
  EXPECT_EQ(Index.find(301), nullptr);
}

TEST(AddressIndex, AdjacentBlocksResolveToTheRightOwner) {
  // [10, 14) and [14, 18) share the boundary address 14; the index must
  // attribute it to the upper block only.
  AddressIndex Index;
  Index.insert(14, 4, 2);
  Index.insert(10, 4, 1);

  EXPECT_EQ(Index.find(13)->Id, 1u);
  EXPECT_EQ(Index.find(14)->Id, 2u);
  EXPECT_EQ(Index.find(17)->Id, 2u);
  EXPECT_EQ(Index.find(18), nullptr);
  // Out-of-order insertion still yields a base-sorted entry list.
  ASSERT_EQ(Index.entries().size(), 2u);
  EXPECT_EQ(Index.entries()[0].Base, 10u);
  EXPECT_EQ(Index.entries()[1].Base, 14u);
}

TEST(AddressIndex, EraseRemovesOnlyTheFreedBlock) {
  AddressIndex Index;
  Index.insert(10, 4, 1);
  Index.insert(14, 4, 2);
  Index.insert(30, 2, 3);

  Index.erase(14); // the freed block's range becomes unmapped
  EXPECT_EQ(Index.find(14), nullptr);
  EXPECT_EQ(Index.find(15), nullptr);
  EXPECT_EQ(Index.find(13)->Id, 1u);
  EXPECT_EQ(Index.find(30)->Id, 3u);
  EXPECT_EQ(Index.size(), 2u);

  Index.erase(999); // erasing an absent base is a no-op
  EXPECT_EQ(Index.size(), 2u);
}

TEST(AddressIndex, AddressZeroIsNeverMapped) {
  // The NULL block's range [0, 1) is never indexed (callers special-case
  // address 0), so 0 misses even with a block based at 1.
  AddressIndex Index;
  EXPECT_EQ(Index.find(0), nullptr);
  Index.insert(1, 8, 1);
  EXPECT_EQ(Index.find(0), nullptr);
  EXPECT_EQ(Index.find(1)->Id, 1u);
}

TEST(AddressIndex, TopOfAddressSpaceDoesNotOverflow) {
  // A range ending exactly at 2^32: Base + Size wraps to 0 in Word width.
  // The one-compare containment must still answer correctly on both sides.
  AddressIndex Index;
  const Word Base = 0xfffffff0u;
  Index.insert(Base, 0x10, 1);
  EXPECT_EQ(Index.find(Base)->Id, 1u);
  EXPECT_EQ(Index.find(0xffffffffu)->Id, 1u);
  EXPECT_EQ(Index.find(Base - 1), nullptr);
  EXPECT_EQ(Index.find(0), nullptr);
}

TEST(AddressIndex, FreeIntervalsMatchTheMapBasedComputation) {
  // Usable space of [1, 31) with blocks [4, 8) and [8, 10): the free
  // intervals are [1, 4) and [10, 31), identical to what
  // computeFreeIntervals produced from an occupied-range map.
  AddressIndex Index;
  Index.insert(4, 4, 1);
  Index.insert(8, 2, 2);
  std::vector<FreeInterval> Free = Index.freeIntervals(/*AddressWords=*/32);
  ASSERT_EQ(Free.size(), 2u);
  EXPECT_EQ(Free[0], (FreeInterval{1, 4}));
  EXPECT_EQ(Free[1], (FreeInterval{10, 31}));
}

TEST(AddressIndex, QuasiModelFreedBlockLeavesTheIndex) {
  // End-to-end: realizing inserts, freeing erases, and the freed range is
  // immediately reusable for the next realization.
  QuasiConcreteMemory M(MemoryConfig{.AddressWords = 16});
  Value P = M.allocate(4).value();
  ASSERT_TRUE(M.castPtrToInt(P).ok());
  EXPECT_EQ(M.numRealizedBlocks(), 1u);

  ASSERT_TRUE(M.deallocate(P).ok());
  EXPECT_EQ(M.numRealizedBlocks(), 0u);

  // The whole usable space is free again: an allocation of the full
  // usable width must realize successfully.
  Value Q = M.allocate(14).value();
  ASSERT_TRUE(M.castPtrToInt(Q).ok());
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Block::containsAddress
//===----------------------------------------------------------------------===//

TEST(BlockContainsAddress, TopOfAddressSpace) {
  // A block ending exactly at 2^32. The old int64 formulation was fine
  // here, but the Word-width compare must not regress it — and must not
  // wrap into claiming low addresses.
  Block B;
  B.Valid = true;
  B.Base = 0xfffffff0u;
  B.Size = 0x10;
  EXPECT_TRUE(B.containsAddress(0xfffffff0u));
  EXPECT_TRUE(B.containsAddress(0xffffffffu));
  EXPECT_FALSE(B.containsAddress(0xffffffefu));
  EXPECT_FALSE(B.containsAddress(0));
  EXPECT_FALSE(B.containsAddress(1));
}

TEST(BlockContainsAddress, UnrealizedBlockContainsNothing) {
  Block B;
  B.Valid = true;
  B.Size = 8;
  ASSERT_FALSE(B.Base.has_value());
  EXPECT_FALSE(B.containsAddress(0));
  EXPECT_FALSE(B.containsAddress(4));
}

//===----------------------------------------------------------------------===//
// ValueSlab
//===----------------------------------------------------------------------===//

TEST(ValueSlab, SpansAreDisjointAndStable) {
  ValueSlab Slab;
  Value *A = Slab.allocate(4);
  Value *B = Slab.allocate(4);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B >= A + 4 || A >= B + 4);
  A[0] = Value::makeInt(1);
  B[0] = Value::makeInt(2);
  EXPECT_EQ(A[0].intValue(), 1u);
  EXPECT_EQ(B[0].intValue(), 2u);
}

TEST(ValueSlab, RecycleReissuesSameSizeSpans) {
  ValueSlab Slab;
  Value *A = Slab.allocate(8);
  Slab.recycle(A, 8);
  EXPECT_EQ(Slab.recycledWords(), 8u);
  // Same size comes back from the free list; a different size does not.
  EXPECT_EQ(Slab.allocate(8), A);
  EXPECT_EQ(Slab.recycledWords(), 0u);
}

TEST(ValueSlab, ChurnDoesNotGrowTheArena) {
  ValueSlab Slab;
  Value *First = Slab.allocate(16);
  Slab.recycle(First, 16);
  for (int I = 0; I < 10000; ++I) {
    Value *S = Slab.allocate(16);
    EXPECT_EQ(S, First);
    Slab.recycle(S, 16);
  }
  EXPECT_EQ(Slab.numChunks(), 1u);
}

TEST(ValueSlab, ResetRewindsKeepingChunks) {
  ValueSlab Slab;
  (void)Slab.allocate(100);
  (void)Slab.allocate(200);
  size_t ChunksBefore = Slab.numChunks();
  Slab.reset();
  EXPECT_EQ(Slab.numChunks(), ChunksBefore);
  EXPECT_EQ(Slab.recycledWords(), 0u);
  // Rewound: the next allocation reuses the first chunk's storage.
  Value *S = Slab.allocate(100);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(Slab.numChunks(), ChunksBefore);
}

TEST(ValueSlab, ZeroWordAllocationIsNull) {
  ValueSlab Slab;
  EXPECT_EQ(Slab.allocate(0), nullptr);
  EXPECT_EQ(Slab.numChunks(), 0u);
}
