//===- tests/eager_quasi_test.cpp - The rejected Section 3.4 design -------===//
//
// Ablation tests for the alternative the paper rejects: allocation-time
// nondeterministic concretization. Verifies the model's own semantics and
// the paper's two arguments against it — unintuitive cast failures, and the
// loss of ownership-transfer optimizations (Figure 3).
//
//===----------------------------------------------------------------------===//

#include "core/PaperExamples.h"
#include "core/Vm.h"
#include "memory/EagerQuasiMemory.h"
#include "refinement/Contexts.h"
#include "refinement/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny(uint64_t Words) {
  MemoryConfig C;
  C.AddressWords = Words;
  return C;
}

} // namespace

TEST(EagerQuasi, ConcreteBirthPlacesImmediately) {
  EagerQuasiMemory M(tiny(64), std::make_unique<ConstantKindOracle>(true));
  Value P = M.allocate(2).value();
  Outcome<Value> I = M.castPtrToInt(P);
  ASSERT_TRUE(I.ok());
  EXPECT_GE(I.value().intValue(), 1u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(EagerQuasi, LogicalBirthMakesCastsNoBehavior) {
  EagerQuasiMemory M(tiny(64), std::make_unique<ConstantKindOracle>(false));
  Value P = M.allocate(2).value();
  Outcome<Value> I = M.castPtrToInt(P);
  ASSERT_FALSE(I.ok());
  // The paper's "unintuitive failure": out-of-memory-type behavior even
  // though plenty of concrete space is available.
  EXPECT_TRUE(I.fault().isOutOfMemory());
}

TEST(EagerQuasi, ConcreteAllocationCanExhaustEagerly) {
  EagerQuasiMemory M(tiny(4), std::make_unique<ConstantKindOracle>(true));
  ASSERT_TRUE(M.allocate(2).ok());
  Outcome<Value> P = M.allocate(1);
  ASSERT_FALSE(P.ok());
  EXPECT_TRUE(P.fault().isOutOfMemory());
}

TEST(EagerQuasi, FixedKindSequencesMixBlockNatures) {
  EagerQuasiMemory M(tiny(64),
                     std::make_unique<FixedKindOracle>(
                         std::vector<bool>{true, false, true}));
  Value A = M.allocate(1).value();
  Value B = M.allocate(1).value();
  Value C = M.allocate(1).value();
  EXPECT_TRUE(M.castPtrToInt(A).ok());
  EXPECT_FALSE(M.castPtrToInt(B).ok());
  EXPECT_TRUE(M.castPtrToInt(C).ok());
}

TEST(EagerQuasi, CastRoundTripOnConcreteBlocks) {
  EagerQuasiMemory M(tiny(64), std::make_unique<ConstantKindOracle>(true));
  Value P = M.allocate(4).value();
  Word Addr =
      M.castPtrToInt(Value::makePtr(P.ptr().Block, 3)).value().intValue();
  Outcome<Value> Back = M.castIntToPtr(Value::makeInt(Addr));
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back.value(), Value::makePtr(P.ptr().Block, 3));
}

TEST(EagerQuasi, RunsThroughTheInterpreter) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  *p = 7;
  a = (int) p;
  output(a == a);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::EagerQuasi;
  C.MemConfig.AddressWords = 64;
  // All-concrete world: the cast succeeds.
  C.Kinds = [] { return std::make_unique<ConstantKindOracle>(true); };
  EXPECT_EQ(runProgram(*P, C).Behav.BehaviorKind,
            Behavior::Kind::Terminated);
  // All-logical world: the cast dies with no behavior.
  C.Kinds = [] { return std::make_unique<ConstantKindOracle>(false); };
  EXPECT_EQ(runProgram(*P, C).Behav.BehaviorKind,
            Behavior::Kind::OutOfMemory);
}

//===----------------------------------------------------------------------===//
// The paper's Section 3.4 argument: Figure 3's ownership transfer is valid
// under realize-at-cast but NOT under eager concretization.
//===----------------------------------------------------------------------===//

TEST(EagerQuasi, Figure3FailsUnderEagerConcretization) {
  const PaperExample &Ex = getPaperExample("fig3");
  Vm V;
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);

  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::EagerQuasi;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 12;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 12;
  // The all-concrete instance of the nondeterministic allocator: p's block
  // has a concrete, guessable address from birth (h is block 1; with the
  // all-concrete oracle h occupies [1,9) and p lands at 9).
  Job.BaseSrc.Kinds = Job.BaseTgt.Kinds = [] {
    return std::make_unique<ConstantKindOracle>(true);
  };
  Job.Oracles = {[] { return std::make_unique<FirstFitOracle>(); }};
  Job.Contexts = {ContextVariant::fromSource(
      "guess-write", contexts::addressGuesserWriter("bar", 9, 77))};
  RefinementReport Report = checkRefinement(Job);
  EXPECT_FALSE(Report.Refines) << Report.toString();
}

TEST(EagerQuasi, Figure3RefinesUnderRealizeAtCast) {
  // Control: the identical job under the paper's model refines — the
  // guesser's forged cast is undefined in both programs because nothing is
  // realized before hash_put.
  const PaperExample &Ex = getPaperExample("fig3");
  Vm V;
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);

  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 12;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 12;
  Job.Oracles = {[] { return std::make_unique<FirstFitOracle>(); }};
  Job.Contexts = {ContextVariant::fromSource(
      "guess-write", contexts::addressGuesserWriter("bar", 9, 77))};
  RefinementReport Report = checkRefinement(Job);
  EXPECT_TRUE(Report.Refines) << Report.toString();
}

TEST(EagerQuasi, MixedWorldsLoseOwnershipTransferToo) {
  // Even comparing a logical-birth source against a concrete-birth target
  // fails in the other direction: the source's hash_put cast has no
  // behavior where the target's succeeds and emits output(123).
  const PaperExample &Ex = getPaperExample("fig3");
  Vm V;
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);

  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::EagerQuasi;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 12;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 12;
  Job.BaseSrc.Kinds = [] {
    return std::make_unique<ConstantKindOracle>(false);
  };
  Job.BaseTgt.Kinds = [] {
    return std::make_unique<ConstantKindOracle>(true);
  };
  RefinementReport Report = checkRefinement(Job);
  EXPECT_FALSE(Report.Refines) << Report.toString();
}
