//===- tests/validate_test.cpp - Translation validation -------------------===//
//
// Covers refinement/Validate.h and the tools-layer glue (ValidatedOpt):
// identity transformations validate, observably-wrong ones are refuted
// with a context and counterexample, model filtering skips checks a pass
// never claimed, and the deliberately-buggy bug-dse canary is caught with
// pass-attributed provenance and a delta-minimized reproducer.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "refinement/Validate.h"
#include "tools/ValidatedOpt.h"

#include <gtest/gtest.h>

using namespace qcm;
using namespace qcm_tools;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

const std::vector<ModelKind> AllModels = {
    ModelKind::Concrete, ModelKind::Logical, ModelKind::QuasiConcrete,
    ModelKind::EagerQuasi};

const char *StoreToOutput = R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 42;
  r = *p;
  output(r);
}
)";

} // namespace

TEST(ModelNames, ShortNamesRoundTrip) {
  for (ModelKind M : AllModels) {
    std::optional<ModelKind> Back = modelFromShortName(shortModelName(M));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, M);
  }
  EXPECT_EQ(modelFromShortName("quasi-concrete"), ModelKind::QuasiConcrete);
  EXPECT_FALSE(modelFromShortName("bogus").has_value());
}

TEST(StandardAdversaries, CoverParameterlessExterns) {
  Program P = compile(R"(
extern bar();
extern sink(ptr x);

main() {
  bar();
  output(1);
}
)");
  std::vector<ContextVariant> Contexts = standardAdversaryContexts(P);
  // Three adversaries for bar(); sink takes a parameter and is skipped.
  ASSERT_EQ(Contexts.size(), 3u);
  EXPECT_EQ(Contexts[0].Name, "bar:marker");
  EXPECT_EQ(Contexts[1].Name, "bar:guess-write");
  EXPECT_EQ(Contexts[2].Name, "bar:exhaust");
}

TEST(ValidateTransformation, IdentityIsValidEverywhere) {
  Program P = compile(StoreToOutput);
  ValidationReport R = validateTransformation(P, P, AllModels);
  EXPECT_TRUE(R.AllValid);
  ASSERT_EQ(R.PerModel.size(), 4u);
  EXPECT_GT(R.TotalRuns, 0u);
  EXPECT_EQ(R.failedModels(), "");
  EXPECT_NE(R.toString().find("verdict: valid"), std::string::npos);
}

TEST(ValidateTransformation, RefutesObservablyWrongTransforms) {
  Program Src = compile("main() {\n  output(1);\n}\n");
  Program Tgt = compile("main() {\n  output(2);\n}\n");
  ValidationReport R =
      validateTransformation(Src, Tgt, {ModelKind::QuasiConcrete});
  EXPECT_FALSE(R.AllValid);
  ASSERT_EQ(R.PerModel.size(), 1u);
  EXPECT_FALSE(R.PerModel[0].Valid);
  EXPECT_EQ(R.PerModel[0].ContextName, "empty");
  EXPECT_NE(R.PerModel[0].Detail.find("not admitted"), std::string::npos);
  EXPECT_EQ(R.failedModels(), "quasi");
}

TEST(ValidateTransformation, AdversariesRefuteContextDependentTransforms) {
  // Moving an observable output across a context call commutes in the
  // empty context but not under the marker adversary.
  Program Src = compile(R"(
extern bar();

main() {
  output(1);
  bar();
}
)");
  Program Tgt = compile(R"(
extern bar();

main() {
  bar();
  output(1);
}
)");
  ValidationReport R =
      validateTransformation(Src, Tgt, {ModelKind::QuasiConcrete});
  EXPECT_FALSE(R.AllValid);
  EXPECT_EQ(R.PerModel[0].ContextName, "bar:marker");

  ValidationBudget NoAdversaries;
  NoAdversaries.Adversaries = false;
  ValidationReport R2 = validateTransformation(
      Src, Tgt, {ModelKind::QuasiConcrete}, NoAdversaries);
  EXPECT_TRUE(R2.AllValid);
}

//===----------------------------------------------------------------------===//
// ValidatedOpt glue
//===----------------------------------------------------------------------===//

TEST(ValidatedOpt, CleanPipelineValidatesAndSkipsUnclaimedModels) {
  Program P = compile(StoreToOutput);
  ValidatedOptOptions Opts;
  std::string Error;
  std::optional<PipelineSpec> Spec =
      PipelineSpec::parse("ownership,constprop,fix(arith,dce)", Error);
  ASSERT_TRUE(Spec.has_value()) << Error;
  Opts.Spec = std::move(*Spec);
  Opts.Models = AllModels;

  std::optional<ValidatedOptResult> R = runValidatedPipeline(P, Opts, Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_FALSE(R->Pipeline.Failed.has_value());
  EXPECT_TRUE(R->Pipeline.Changed);
  EXPECT_GT(R->ValidatedApplications, 0u);
  EXPECT_GT(R->ValidationRuns, 0u);
  // ownership claims the logical family only, so its application under
  // --validate=all skips the concrete check instead of failing it.
  EXPECT_GT(R->SkippedModelChecks, 0u);
  EXPECT_NE(printProgram(P).find("output(42);"), std::string::npos);
}

TEST(ValidatedOpt, UnknownPassIsABuildError) {
  Program P = compile(StoreToOutput);
  ValidatedOptOptions Opts;
  std::string Error;
  Opts.Spec = *PipelineSpec::parse("dse,nonesuch", Error);
  EXPECT_FALSE(runValidatedPipeline(P, Opts, Error).has_value());
  EXPECT_NE(Error.find("unknown pass 'nonesuch'"), std::string::npos);
}

TEST(ValidatedOpt, CatchesTheBuggyDseCanary) {
  Program P = compile(StoreToOutput);
  const std::string Before = printProgram(P);
  ValidatedOptOptions Opts;
  std::string Error;
  Opts.Spec = *PipelineSpec::parse("bug-dse", Error);
  Opts.Models = {ModelKind::QuasiConcrete};

  std::optional<ValidatedOptResult> R = runValidatedPipeline(P, Opts, Error);
  ASSERT_TRUE(R.has_value()) << Error;
  ASSERT_TRUE(R->Pipeline.Failed.has_value());
  EXPECT_EQ(R->Pipeline.Failed->Pass, "bug-dse");
  EXPECT_EQ(R->FailedModels, "quasi");
  EXPECT_NE(R->Pipeline.FailureDetail.find("context"), std::string::npos);
  // The program was rolled back, the failing input captured, and the
  // reproducer minimized to something that still trips the pass.
  EXPECT_EQ(printProgram(P), Before);
  EXPECT_FALSE(R->FailingInput.empty());
  ASSERT_FALSE(R->MinimizedInput.empty());
  EXPECT_NE(R->MinimizedInput.find("*p = 42;"), std::string::npos);
  EXPECT_LE(R->MinimizedInput.size(), R->FailingInput.size());
}

TEST(ValidatedOpt, MetricsDocumentCarriesPipelineAndValidationSections) {
  Program P = compile(StoreToOutput);
  ValidatedOptOptions Opts;
  std::string Error;
  Opts.Spec = *PipelineSpec::parse("fix(constprop,arith,dce)", Error);
  Opts.Models = {ModelKind::QuasiConcrete, ModelKind::Logical};

  std::optional<ValidatedOptResult> R = runValidatedPipeline(P, Opts, Error);
  ASSERT_TRUE(R.has_value()) << Error;
  std::string Doc = renderOptMetricsDocument(*R, Opts);
  EXPECT_NE(Doc.find("\"schema\":\"qcm-metrics-1\""), std::string::npos);
  EXPECT_NE(Doc.find("\"tool\":\"qcm-opt\""), std::string::npos);
  EXPECT_NE(Doc.find("\"spec\":\"fix(constprop,arith,dce)\""),
            std::string::npos);
  EXPECT_NE(Doc.find("\"validated_applications\""), std::string::npos);
  EXPECT_NE(Doc.find("\"requested\""), std::string::npos);
  EXPECT_NE(Doc.find("\"verdict\":\"ok\""), std::string::npos);
  EXPECT_NE(Doc.find("\"pass\":\"constprop\""), std::string::npos);
  EXPECT_NE(Doc.find("\"process\""), std::string::npos);
  EXPECT_NE(Doc.find("\"profile\""), std::string::npos);
}

TEST(ValidatedOpt, FailedRunsRenderAFailVerdict) {
  Program P = compile(StoreToOutput);
  ValidatedOptOptions Opts;
  std::string Error;
  Opts.Spec = *PipelineSpec::parse("bug-dse", Error);
  Opts.Models = {ModelKind::QuasiConcrete};
  Opts.Minimize = false;

  std::optional<ValidatedOptResult> R = runValidatedPipeline(P, Opts, Error);
  ASSERT_TRUE(R.has_value()) << Error;
  ASSERT_TRUE(R->Pipeline.Failed.has_value());
  EXPECT_TRUE(R->MinimizedInput.empty());
  std::string Doc = renderOptMetricsDocument(*R, Opts);
  EXPECT_NE(Doc.find("\"verdict\":\"fail\""), std::string::npos);
  EXPECT_NE(Doc.find("\"failed_pass\":\"bug-dse\""), std::string::npos);
  EXPECT_NE(Doc.find("\"failed_models\":\"quasi\""), std::string::npos);
}
