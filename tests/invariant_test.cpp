//===- tests/invariant_test.cpp - Memory invariant tests (Fig. 7) ---------===//
//
// The Section 5.2 machinery: value equivalence, the public concrete/logical
// case matrix of Figure 7, private-section rules, and the future-invariant
// relation of Section 5.3.
//
//===----------------------------------------------------------------------===//

#include "memory/QuasiConcreteMemory.h"
#include "memory/ConcreteMemory.h"
#include "refinement/Invariant.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny() {
  MemoryConfig C;
  C.AddressWords = 64;
  return C;
}

/// A source/target pair of quasi-concrete memories with one related block
/// each.
struct Pair {
  QuasiConcreteMemory Src{tiny()};
  QuasiConcreteMemory Tgt{tiny()};
  Value SrcP, TgtP;

  Pair() {
    SrcP = Src.allocate(2).value();
    TgtP = Tgt.allocate(2).value();
  }

  MemoryInvariant related() {
    MemoryInvariant Inv;
    EXPECT_TRUE(Inv.Alpha.add(SrcP.ptr().Block, TgtP.ptr().Block));
    return Inv;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Bijection
//===----------------------------------------------------------------------===//

TEST(Bijection, RelatesNullBlocksByDefault) {
  Bijection A;
  EXPECT_EQ(A.toTarget(0), std::optional<BlockId>(0));
  EXPECT_EQ(A.toSource(0), std::optional<BlockId>(0));
}

TEST(Bijection, RejectsConflictingPairs) {
  Bijection A;
  EXPECT_TRUE(A.add(1, 2));
  EXPECT_TRUE(A.add(1, 2)); // Idempotent.
  EXPECT_FALSE(A.add(1, 3));
  EXPECT_FALSE(A.add(4, 2));
  EXPECT_TRUE(A.add(4, 5));
  EXPECT_EQ(A.size(), 3u); // (0,0), (1,2), (4,5)
}

TEST(Bijection, InclusionIsAPartialOrder) {
  Bijection Small, Big;
  (void)Small.add(1, 2);
  (void)Big.add(1, 2);
  (void)Big.add(3, 4);
  EXPECT_TRUE(Big.includes(Small));
  EXPECT_FALSE(Small.includes(Big));
  EXPECT_TRUE(Small.includes(Small));
}

//===----------------------------------------------------------------------===//
// Value equivalence
//===----------------------------------------------------------------------===//

TEST(ValueEquiv, IntegersByEquality) {
  Bijection A;
  EXPECT_TRUE(valuesEquivalent(A, Value::makeInt(5), Value::makeInt(5),
                               nullptr));
  EXPECT_FALSE(valuesEquivalent(A, Value::makeInt(5), Value::makeInt(6),
                                nullptr));
}

TEST(ValueEquiv, PointersThroughAlphaAtSameOffset) {
  Bijection A;
  (void)A.add(1, 7);
  EXPECT_TRUE(valuesEquivalent(A, Value::makePtr(1, 3), Value::makePtr(7, 3),
                               nullptr));
  EXPECT_FALSE(valuesEquivalent(A, Value::makePtr(1, 3),
                                Value::makePtr(7, 4), nullptr));
  EXPECT_FALSE(valuesEquivalent(A, Value::makePtr(2, 3),
                                Value::makePtr(7, 3), nullptr));
  // NULL relates to NULL.
  EXPECT_TRUE(valuesEquivalent(A, Value::null(), Value::null(), nullptr));
}

TEST(ValueEquiv, MixedKindsAreInequivalentWithinOneModel) {
  Bijection A;
  (void)A.add(1, 7);
  EXPECT_FALSE(valuesEquivalent(A, Value::makePtr(1, 0), Value::makeInt(1),
                                nullptr));
  EXPECT_FALSE(valuesEquivalent(A, Value::makeInt(1), Value::makePtr(7, 0),
                                nullptr));
}

TEST(ValueEquiv, CrossModelPointerMatchesItsReification) {
  // Section 6.5: a source logical address is equivalent to the target
  // integer it reifies to.
  ConcreteMemory Tgt(tiny());
  Word Base = Tgt.allocate(4).value().intValue();
  BlockView TgtView(Tgt);
  Bijection A;
  (void)A.add(3, 1); // source block 3 ~ target allocation id 1
  EXPECT_TRUE(valuesEquivalent(A, Value::makePtr(3, 2),
                               Value::makeInt(Base + 2), &TgtView));
  EXPECT_FALSE(valuesEquivalent(A, Value::makePtr(3, 2),
                                Value::makeInt(Base + 1), &TgtView));
  EXPECT_FALSE(valuesEquivalent(A, Value::makePtr(9, 2),
                                Value::makeInt(Base + 2), &TgtView));
}

//===----------------------------------------------------------------------===//
// The Figure 7 public case matrix
//===----------------------------------------------------------------------===//

TEST(Fig7Public, LogicalLogicalIsAllowed) {
  Pair P;
  MemoryInvariant Inv = P.related();
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

TEST(Fig7Public, ConcreteConcreteNeedsCoincidingAddresses) {
  Pair P;
  ASSERT_TRUE(P.Src.castPtrToInt(P.SrcP).ok());
  ASSERT_TRUE(P.Tgt.castPtrToInt(P.TgtP).ok());
  MemoryInvariant Inv = P.related();
  // Both realized first-fit at the same address: allowed.
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

TEST(Fig7Public, ConcreteConcreteDifferentAddressesRejected) {
  QuasiConcreteMemory Src(tiny());
  QuasiConcreteMemory Tgt(tiny(), std::make_unique<LastFitOracle>());
  Value SrcP = Src.allocate(2).value();
  Value TgtP = Tgt.allocate(2).value();
  ASSERT_TRUE(Src.castPtrToInt(SrcP).ok());  // realized low
  ASSERT_TRUE(Tgt.castPtrToInt(TgtP).ok());  // realized high
  MemoryInvariant Inv;
  ASSERT_TRUE(Inv.Alpha.add(SrcP.ptr().Block, TgtP.ptr().Block));
  auto Err = Inv.holdsOn(Src, Tgt);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("concrete addresses differ"), std::string::npos);
}

TEST(Fig7Public, SourceConcreteTargetLogicalRejected) {
  // The source must never have more concrete blocks than the target: an
  // arbitrary concrete access could succeed in the source but fail in the
  // target (Section 5.2).
  Pair P;
  ASSERT_TRUE(P.Src.castPtrToInt(P.SrcP).ok());
  MemoryInvariant Inv = P.related();
  auto Err = Inv.holdsOn(P.Src, P.Tgt);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("source is concrete but target is logical"),
            std::string::npos);
}

TEST(Fig7Public, SourceLogicalTargetConcreteAllowed) {
  Pair P;
  ASSERT_TRUE(P.Tgt.castPtrToInt(P.TgtP).ok());
  MemoryInvariant Inv = P.related();
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

TEST(Fig7Public, ContentsMustBeEquivalent) {
  Pair P;
  ASSERT_TRUE(P.Src.store(P.SrcP, Value::makeInt(5)).ok());
  ASSERT_TRUE(P.Tgt.store(P.TgtP, Value::makeInt(6)).ok());
  MemoryInvariant Inv = P.related();
  auto Err = Inv.holdsOn(P.Src, P.Tgt);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("contents differ"), std::string::npos);
}

TEST(Fig7Public, SizeAndValidityMustAgree) {
  QuasiConcreteMemory Src(tiny()), Tgt(tiny());
  Value SrcP = Src.allocate(2).value();
  Value TgtP = Tgt.allocate(3).value();
  MemoryInvariant Inv;
  ASSERT_TRUE(Inv.Alpha.add(SrcP.ptr().Block, TgtP.ptr().Block));
  EXPECT_NE(Inv.holdsOn(Src, Tgt), std::nullopt);

  Pair P;
  ASSERT_TRUE(P.Src.deallocate(P.SrcP).ok());
  MemoryInvariant Inv2 = P.related();
  EXPECT_NE(Inv2.holdsOn(P.Src, P.Tgt), std::nullopt);
  // Freed on both sides: fine (and contents are ignored).
  ASSERT_TRUE(P.Tgt.deallocate(P.TgtP).ok());
  EXPECT_EQ(Inv2.holdsOn(P.Src, P.Tgt), std::nullopt);
}

TEST(Fig7Public, PointerContentsRelateThroughAlpha) {
  Pair P;
  Value SrcQ = P.Src.allocate(1).value();
  Value TgtQ = P.Tgt.allocate(1).value();
  ASSERT_TRUE(P.Src.store(P.SrcP, SrcQ).ok());
  ASSERT_TRUE(P.Tgt.store(P.TgtP, TgtQ).ok());
  MemoryInvariant Inv = P.related();
  // Without relating q-blocks the contents are inequivalent.
  EXPECT_NE(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
  ASSERT_TRUE(Inv.Alpha.add(SrcQ.ptr().Block, TgtQ.ptr().Block));
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

//===----------------------------------------------------------------------===//
// The Figure 7 private rules
//===----------------------------------------------------------------------===//

TEST(Fig7Private, LogicalSourcePrivateAllowed) {
  Pair P;
  Value Priv = P.Src.allocate(1).value();
  MemoryInvariant Inv = P.related();
  EXPECT_EQ(Inv.addPrivateSrc(Priv.ptr().Block, P.Src), std::nullopt);
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

TEST(Fig7Private, ConcreteSourcePrivateRejected) {
  Pair P;
  Value Priv = P.Src.allocate(1).value();
  ASSERT_TRUE(P.Src.castPtrToInt(Priv).ok());
  MemoryInvariant Inv = P.related();
  auto Err = Inv.addPrivateSrc(Priv.ptr().Block, P.Src);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("must be logical"), std::string::npos);
}

TEST(Fig7Private, ConcreteTargetPrivateAllowed) {
  Pair P;
  Value Priv = P.Tgt.allocate(1).value();
  ASSERT_TRUE(P.Tgt.castPtrToInt(Priv).ok());
  MemoryInvariant Inv = P.related();
  EXPECT_EQ(Inv.addPrivateTgt(Priv.ptr().Block, P.Tgt), std::nullopt);
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

TEST(Fig7Private, PrivateBlocksMustStayUntouched) {
  Pair P;
  Value Priv = P.Src.allocate(1).value();
  ASSERT_TRUE(P.Src.store(Priv, Value::makeInt(123)).ok());
  MemoryInvariant Inv = P.related();
  ASSERT_EQ(Inv.addPrivateSrc(Priv.ptr().Block, P.Src), std::nullopt);
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
  // A (hypothetical) context write to the private block is detected.
  ASSERT_TRUE(P.Src.store(Priv, Value::makeInt(66)).ok());
  auto Err = Inv.holdsOn(P.Src, P.Tgt);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("was modified"), std::string::npos);
}

TEST(Fig7Private, PrivateAndPublicAreDisjoint) {
  Pair P;
  MemoryInvariant Inv = P.related();
  auto Err = Inv.addPrivateSrc(P.SrcP.ptr().Block, P.Src);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("already public"), std::string::npos);
}

TEST(Fig7Private, PrivateSectionsCanDifferBetweenSides) {
  Pair P;
  Value SrcOnly = P.Src.allocate(4).value();
  ASSERT_TRUE(P.Src.store(SrcOnly, Value::makeInt(1)).ok());
  MemoryInvariant Inv = P.related();
  ASSERT_EQ(Inv.addPrivateSrc(SrcOnly.ptr().Block, P.Src), std::nullopt);
  // No corresponding target block at all — that is the point of private
  // memory (DSE/DAE change the target's shape).
  EXPECT_EQ(Inv.holdsOn(P.Src, P.Tgt), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Future invariants and =prv (Section 5.3)
//===----------------------------------------------------------------------===//

TEST(FutureInvariant, AllowsGrowthAndRealization) {
  Pair P;
  MemoryInvariant Inv = P.related();
  InvariantCheckpoint Before(Inv, P.Src, P.Tgt);
  // Realize on both sides (logical -> concrete is legal evolution) and
  // extend alpha with a new pair.
  ASSERT_TRUE(P.Src.castPtrToInt(P.SrcP).ok());
  ASSERT_TRUE(P.Tgt.castPtrToInt(P.TgtP).ok());
  Value SrcQ = P.Src.allocate(1).value();
  Value TgtQ = P.Tgt.allocate(1).value();
  MemoryInvariant Inv2 = Inv;
  ASSERT_TRUE(Inv2.Alpha.add(SrcQ.ptr().Block, TgtQ.ptr().Block));
  InvariantCheckpoint After(Inv2, P.Src, P.Tgt);
  EXPECT_EQ(checkFutureInvariant(Before, After), std::nullopt);
}

TEST(FutureInvariant, RejectsShrinkingBijection) {
  Pair P;
  MemoryInvariant Inv = P.related();
  InvariantCheckpoint Before(Inv, P.Src, P.Tgt);
  MemoryInvariant Fresh; // Lost the pair.
  InvariantCheckpoint After(Fresh, P.Src, P.Tgt);
  auto Err = checkFutureInvariant(Before, After);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("bijection shrank"), std::string::npos);
}

TEST(FutureInvariant, RejectsResurrection) {
  Pair P;
  ASSERT_TRUE(P.Src.deallocate(P.SrcP).ok());
  ASSERT_TRUE(P.Tgt.deallocate(P.TgtP).ok());
  MemoryInvariant Inv = P.related();
  InvariantCheckpoint Before(Inv, P.Src, P.Tgt);
  // Hand-craft a "resurrected" snapshot by building fresh memories where
  // the related blocks are valid again.
  Pair Fresh;
  MemoryInvariant Inv2 = Fresh.related();
  InvariantCheckpoint After(Inv2, Fresh.Src, Fresh.Tgt);
  // Note: block ids coincide across Pair instances by construction.
  auto Err = checkFutureInvariant(Before, After);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("became valid again"), std::string::npos);
}

TEST(FutureInvariant, RejectsConcreteToLogical) {
  Pair P;
  ASSERT_TRUE(P.Src.castPtrToInt(P.SrcP).ok());
  ASSERT_TRUE(P.Tgt.castPtrToInt(P.TgtP).ok());
  MemoryInvariant Inv = P.related();
  InvariantCheckpoint Before(Inv, P.Src, P.Tgt);
  Pair Fresh; // Blocks logical again.
  InvariantCheckpoint After(Fresh.related(), Fresh.Src, Fresh.Tgt);
  auto Err = checkFutureInvariant(Before, After);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("concrete block became logical"), std::string::npos);
}

TEST(SamePrivate, ComparesSectionsExactly) {
  Pair P;
  Value Priv = P.Src.allocate(1).value();
  MemoryInvariant A = P.related();
  ASSERT_EQ(A.addPrivateSrc(Priv.ptr().Block, P.Src), std::nullopt);
  MemoryInvariant B = A;
  EXPECT_TRUE(A.samePrivateAs(B));
  B.dropPrivateSrc(Priv.ptr().Block);
  EXPECT_FALSE(A.samePrivateAs(B));
}
