//===- tests/section6_proofs_test.cpp - The remaining Section 6 proofs ----===//
//
// Mechanized analogues of the Section 6 verification examples not covered
// in simulation_test.cpp: arithmetic optimizations I and II (6.1, 6.4),
// dead code elimination (6.2), the freshness example (Section 7), and a
// sweep showing the whole optimizer pipeline simulates on every catalog
// example valid under the quasi-concrete model.
//
//===----------------------------------------------------------------------===//

#include "core/Experiments.h"
#include "core/Vm.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/OwnershipOpt.h"
#include "refinement/Simulation.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

RunConfig quasi() {
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.MemConfig.AddressWords = 1u << 12;
  return C;
}

/// Runs a call-free (or synchronized-by-update) simulation: begin, then a
/// sequence of expectCall("bar", relate-all-blocks) while calls remain,
/// then expectReturn. Relating block K to block K works for all catalog
/// examples because allocation orders coincide.
std::optional<std::string>
simulateWithUniformRelations(const Program &Src, const Program &Tgt,
                             unsigned ExternCalls,
                             const std::string &Callee = "bar") {
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = quasi();
  Setup.TgtConfig = quasi();
  SimulationChecker Sim(Setup);
  if (auto Err = Sim.begin([](MemoryInvariant &Inv, Machine &SrcM,
                              Machine &TgtM) -> std::optional<std::string> {
        // Relate the globals, which exist on both sides before main runs.
        size_t N = std::min(BlockView(SrcM.memory()).blocks().size(),
                            BlockView(TgtM.memory()).blocks().size());
        for (BlockId Id = 1; Id < N; ++Id)
          if (!Inv.Alpha.add(Id, Id))
            return "could not relate global block " + std::to_string(Id);
        return std::nullopt;
      }))
    return Err;
  for (unsigned I = 0; I < ExternCalls && !Sim.discharged(); ++I) {
    if (auto Err = Sim.expectCall(
            Callee,
            [](MemoryInvariant &Inv, Machine &SrcM, Machine &TgtM)
                -> std::optional<std::string> {
              // Publish every block pair that exists on both sides and is
              // not already related or private.
              size_t N = std::min(BlockView(SrcM.memory()).blocks().size(),
                                  BlockView(TgtM.memory()).blocks().size());
              for (BlockId Id = 1; Id < N; ++Id) {
                if (Inv.PrivateSrc.count(Id) || Inv.PrivateTgt.count(Id))
                  continue;
                if (!Inv.Alpha.add(Id, Id))
                  return "conflicting relation for block " +
                         std::to_string(Id);
              }
              return std::nullopt;
            },
            nullptr))
      return Err;
  }
  if (Sim.discharged())
    return std::nullopt;
  return Sim.expectReturn([](MemoryInvariant &Inv, Machine &SrcM,
                             Machine &TgtM) -> std::optional<std::string> {
    size_t N = std::min(BlockView(SrcM.memory()).blocks().size(),
                        BlockView(TgtM.memory()).blocks().size());
    for (BlockId Id = 1; Id < N; ++Id) {
      if (Inv.PrivateSrc.count(Id) || Inv.PrivateTgt.count(Id))
        continue;
      if (!Inv.Alpha.add(Id, Id))
        return "conflicting relation for block " + std::to_string(Id);
    }
    return std::nullopt;
  });
}

} // namespace

TEST(Section6, ArithmeticOptimizationI) {
  // Section 6.1: Figure 1 is "trivially correct" once integer variables
  // provably contain integers; the simulation has no sync points.
  const PaperExample &Ex = getPaperExample("fig1");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);
  EXPECT_EQ(simulateWithUniformRelations(Src, Tgt, 0), std::nullopt);
}

TEST(Section6, DeadCodeElimination) {
  // Section 6.2: Figure 2; the checker steps into the known foo on the
  // source side and synchronizes at bar().
  const PaperExample &Ex = getPaperExample("fig2");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);
  EXPECT_EQ(simulateWithUniformRelations(Src, Tgt, 1), std::nullopt);
}

TEST(Section6, ArithmeticOptimizationII) {
  // Section 6.4: Figure 4 under the typed discipline.
  const PaperExample &Ex = getPaperExample("fig4");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);
  EXPECT_EQ(simulateWithUniformRelations(Src, Tgt, 0), std::nullopt);
}

TEST(Section6, FreshnessAliasExample) {
  // Section 7's constant propagation example.
  const PaperExample &Ex = getPaperExample("alias_fresh");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);
  EXPECT_EQ(simulateWithUniformRelations(Src, Tgt, 0), std::nullopt);
}

TEST(Section6, LateCastVariantSimulates) {
  // Section 3.7's "becomes valid if the cast is moved after the call".
  const PaperExample &Ex = getPaperExample("drawbacks_b_late");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);
  EXPECT_EQ(simulateWithUniformRelations(Src, Tgt, 1), std::nullopt);
}

//===----------------------------------------------------------------------===//
// The optimizer pipeline simulates on every quasi-valid catalog example.
//===----------------------------------------------------------------------===//

namespace {

Program optimizePipeline(const Program &P) {
  Program Copy = P.clone();
  DceOptions Dce;
  Dce.RemoveDeadAllocs = true;
  PassManager PM;
  PM.add(std::make_unique<OwnershipOptPass>());
  PM.add(std::make_unique<ConstPropPass>());
  PM.add(std::make_unique<ArithSimplifyPass>());
  PM.add(std::make_unique<DeadCodeElimPass>(Dce));
  PM.run(Copy, 8);
  return Copy;
}

} // namespace

class PipelineRefinesCatalog
    : public ::testing::TestWithParam<const PaperExample *> {};

TEST_P(PipelineRefinesCatalog, UnderTheQuasiConcreteModel) {
  const PaperExample &Ex = *GetParam();
  Program Src = compile(Ex.SrcSource);
  Program Opt = optimizePipeline(Src);
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Opt;
  Job.BaseSrc = Job.BaseTgt = quasi();
  Job.BaseSrc.Entry = Job.BaseTgt.Entry = Ex.Entry;
  Job.BaseSrc.Args = Job.BaseTgt.Args = Ex.Args;
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines) << R.toString();
}

namespace {

std::vector<const PaperExample *> catalogPointers() {
  std::vector<const PaperExample *> Ptrs;
  for (const PaperExample &Ex : paperExamples())
    Ptrs.push_back(&Ex);
  return Ptrs;
}

std::string exampleName(
    const ::testing::TestParamInfo<const PaperExample *> &Info) {
  return Info.param->Id;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Catalog, PipelineRefinesCatalog,
                         ::testing::ValuesIn(catalogPointers()),
                         exampleName);
