//===- tests/typecheck_test.cpp - Static type discipline tests ------------===//
//
// Section 3.5: types ensure integer variables contain only integer values.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

bool checks(const std::string &Source, std::string *Errors = nullptr) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Diags);
  if (!P) {
    if (Errors)
      *Errors = "parse: " + Diags.toString();
    return false;
  }
  bool Ok = typeCheck(*P, Diags);
  if (Errors)
    *Errors = Diags.toString();
  return Ok;
}

} // namespace

//===----------------------------------------------------------------------===//
// The Section 4 binary operation typing matrix, as a parameterized sweep.
//===----------------------------------------------------------------------===//

struct BinopCase {
  BinaryOp Op;
  Type L, R;
  std::optional<Type> Expected;
};

class BinopTypingMatrix : public ::testing::TestWithParam<BinopCase> {};

TEST_P(BinopTypingMatrix, MatchesSection4) {
  const BinopCase &C = GetParam();
  EXPECT_EQ(binaryResultType(C.Op, C.L, C.R), C.Expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, BinopTypingMatrix,
    ::testing::Values(
        // int op int -> int, for every operator.
        BinopCase{BinaryOp::Add, Type::Int, Type::Int, Type::Int},
        BinopCase{BinaryOp::Sub, Type::Int, Type::Int, Type::Int},
        BinopCase{BinaryOp::Mul, Type::Int, Type::Int, Type::Int},
        BinopCase{BinaryOp::And, Type::Int, Type::Int, Type::Int},
        BinopCase{BinaryOp::Eq, Type::Int, Type::Int, Type::Int},
        // p + a, a + p -> ptr; p + p ill-typed.
        BinopCase{BinaryOp::Add, Type::Ptr, Type::Int, Type::Ptr},
        BinopCase{BinaryOp::Add, Type::Int, Type::Ptr, Type::Ptr},
        BinopCase{BinaryOp::Add, Type::Ptr, Type::Ptr, std::nullopt},
        // p - a -> ptr; p1 - p2 -> int; a - p ill-typed.
        BinopCase{BinaryOp::Sub, Type::Ptr, Type::Int, Type::Ptr},
        BinopCase{BinaryOp::Sub, Type::Ptr, Type::Ptr, Type::Int},
        BinopCase{BinaryOp::Sub, Type::Int, Type::Ptr, std::nullopt},
        // Mul/And never accept pointers.
        BinopCase{BinaryOp::Mul, Type::Ptr, Type::Int, std::nullopt},
        BinopCase{BinaryOp::Mul, Type::Int, Type::Ptr, std::nullopt},
        BinopCase{BinaryOp::Mul, Type::Ptr, Type::Ptr, std::nullopt},
        BinopCase{BinaryOp::And, Type::Ptr, Type::Int, std::nullopt},
        BinopCase{BinaryOp::And, Type::Ptr, Type::Ptr, std::nullopt},
        // Equality requires same-kind operands.
        BinopCase{BinaryOp::Eq, Type::Ptr, Type::Ptr, Type::Int},
        BinopCase{BinaryOp::Eq, Type::Ptr, Type::Int, std::nullopt},
        BinopCase{BinaryOp::Eq, Type::Int, Type::Ptr, std::nullopt}));

//===----------------------------------------------------------------------===//
// Whole-program checking
//===----------------------------------------------------------------------===//

TEST(TypeCheck, AcceptsWellTypedProgram) {
  std::string Errors;
  EXPECT_TRUE(checks(R"(
global h[4];
extern bar(ptr x);
main() {
  var ptr p, ptr q, int a, int d;
  p = malloc(2);
  q = p + 1;
  d = q - p;
  a = (int) p;
  q = (ptr) a;
  *q = d;
  a = *q;
  if (p == q) { output(1); }
  bar(h);
}
)",
                     &Errors))
      << Errors;
}

TEST(TypeCheck, RejectsPointerArithmeticViolations) {
  EXPECT_FALSE(checks("f(ptr p, ptr q) { var ptr r; r = p + q; }"));
  EXPECT_FALSE(checks("f(ptr p, int a) { var ptr r; r = a - p; }"));
  EXPECT_FALSE(checks("f(ptr p, int a) { var int r; r = p * a; }"));
  EXPECT_FALSE(checks("f(ptr p, int a) { var int r; r = p & a; }"));
  EXPECT_FALSE(checks("f(ptr p, int a) { var int r; r = p == a; }"));
}

TEST(TypeCheck, RejectsAssignmentMismatches) {
  EXPECT_FALSE(checks("f(ptr p) { var int a; a = p; }"));
  EXPECT_FALSE(checks("f(int a) { var ptr p; p = a; }"));
  EXPECT_FALSE(checks("f(int a) { var int b; b = malloc(a); }"));
  EXPECT_FALSE(checks("f(ptr p) { var ptr q; q = (int) p; }"));
}

TEST(TypeCheck, RejectsWrongCastDirections) {
  EXPECT_FALSE(checks("f(int a) { var int b; b = (int) a; }"));
  EXPECT_FALSE(checks("f(ptr p) { var ptr q; q = (ptr) p; }"));
}

TEST(TypeCheck, RejectsBadEffectPositions) {
  EXPECT_FALSE(checks("f(int a) { free(a); }"));
  EXPECT_FALSE(checks("f(ptr p) { output(p); }"));
  EXPECT_FALSE(checks("f(int a) { var int b; b = output(a); }"));
  EXPECT_FALSE(checks("f(ptr p) { var ptr q; q = free(p); }"));
}

TEST(TypeCheck, RejectsBadControlFlowAndCalls) {
  EXPECT_FALSE(checks("f(ptr p) { if (p) { } }"));
  EXPECT_FALSE(checks("f(ptr p) { while (p) { } }"));
  EXPECT_FALSE(checks("extern g(int a); f(ptr p) { g(p); }"));
  EXPECT_FALSE(checks("extern g(int a); f(int a) { g(a, a); }"));
  EXPECT_FALSE(checks("f(int a) { g(a); }")); // undeclared callee
}

TEST(TypeCheck, RejectsNameErrors) {
  EXPECT_FALSE(checks("f() { var int a; a = b; }"));
  EXPECT_FALSE(checks("f(int a, int a) { var int b; b = a; }"));
  EXPECT_FALSE(checks("f(int a) { var int a; a = 1; }"));
  EXPECT_FALSE(checks("global g; global g;"));
  EXPECT_FALSE(checks("f() { var int x; x = 0; } f() { var int x; x = 0; }"));
  EXPECT_FALSE(checks("global g[0];"));
}

TEST(TypeCheck, ResolvesGlobalsToPointerType) {
  DiagnosticEngine Diags;
  std::optional<Program> P =
      parseProgram("global g; main() { var int a; *g = 5; a = *g; }", Diags);
  ASSERT_TRUE(P.has_value());
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.toString();
  const Instr &Store = *P->Functions[0].Body->Stmts[0];
  EXPECT_EQ(Store.Addr->ExpKind, Exp::Kind::Global);
  EXPECT_EQ(Store.Addr->StaticType, Type::Ptr);
}

TEST(TypeCheck, LocalShadowsNothingButGlobalsAreVisible) {
  // A local named like a global hides the global (resolved as Var).
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(
      "global g; main() { var int g; g = 1; output(g); }", Diags);
  ASSERT_TRUE(P.has_value());
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.toString();
  EXPECT_EQ(P->Functions[0].Body->Stmts[0].get()->InstrKind,
            Instr::Kind::Assign);
}

TEST(TypeCheck, LoadsIntoEitherVariableKindAreStaticallyFine) {
  // The kind of the loaded value is checked dynamically (Section 6.1).
  EXPECT_TRUE(checks("f(ptr p) { var int a; a = *p; }"));
  EXPECT_TRUE(checks("f(ptr p) { var ptr q; q = *p; }"));
  EXPECT_TRUE(checks("f(ptr p, ptr v) { *p = v; }"));
  EXPECT_TRUE(checks("f(ptr p, int v) { *p = v; }"));
}

TEST(TypeCheck, AnnotatesStaticTypes) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(
      "f(ptr p, int a) { var ptr q, int d; q = p + a; d = q - p; }", Diags);
  ASSERT_TRUE(P.has_value());
  ASSERT_TRUE(typeCheck(*P, Diags));
  const auto &Stmts = P->Functions[0].Body->Stmts;
  EXPECT_EQ(Stmts[0]->Rhs->Arg->StaticType, Type::Ptr);
  EXPECT_EQ(Stmts[1]->Rhs->Arg->StaticType, Type::Int);
}
