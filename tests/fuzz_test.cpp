//===- tests/fuzz_test.cpp - Random-program property tests ----------------===//
//
// Properties checked on generated programs (tests/ProgramGenerator.h):
//
// * the generator only emits programs the front end accepts;
// * parse/print round trips are stable;
// * every execution, under every model and several oracles, terminates in
//   one of the four behavior classes and leaves the memory model's internal
//   invariants intact;
// * runs are deterministic given the oracle;
// * every program refines itself;
// * the optimizer pipeline's output refines its input under the
//   quasi-concrete model (end-to-end soundness fuzzing);
// * chaos: under a random deterministic fault plan, injected exhaustion is
//   never observed as a new behavior — the run either matches the clean run
//   exactly (the plan never fired) or is an out-of-memory partial whose
//   events are a prefix of the clean run's (Section 2.3, item 4);
// * the QIR engine and the AST walker agree under injection too — and the
//   QIR engine agrees with itself across dispatch modes: the three-way
//   oracle (AST walker, switch loop, direct-threaded loop) holds on every
//   model, with and without random fault plans;
// * failing chaos cases print a self-contained repro line and a
//   delta-minimized program (tests/ProgramGenerator.h).
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/OwnershipOpt.h"
#include "refinement/RefinementChecker.h"
#include "semantics/AstInterp.h"

#include <gtest/gtest.h>

using namespace qcm;
using qcm_test::ProgramGenerator;

namespace {

Program compileOrFail(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << "generated program rejected:\n"
                  << V.lastDiagnostics() << "\n--- source ---\n"
                  << Source;
    return Program{};
  }
  return std::move(*P);
}

Program optimizePipeline(const Program &P) {
  Program Copy = P.clone();
  DceOptions Dce;
  Dce.RemoveDeadAllocs = true;
  PassManager PM;
  PM.add(std::make_unique<OwnershipOptPass>());
  PM.add(std::make_unique<ConstPropPass>());
  PM.add(std::make_unique<ArithSimplifyPass>());
  PM.add(std::make_unique<DeadCodeElimPass>(Dce));
  PM.run(Copy, 8);
  return Copy;
}

} // namespace

class FuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzProperty, GeneratedProgramsCompile) {
  ProgramGenerator Generator(GetParam());
  std::string Source = Generator.generate();
  Program P = compileOrFail(Source);
  EXPECT_FALSE(P.Functions.empty());
}

TEST_P(FuzzProperty, ParsePrintRoundTripIsStable) {
  ProgramGenerator Generator(GetParam() ^ 0x111);
  Program P = compileOrFail(Generator.generate());
  std::string Printed = printProgram(P);
  Program P2 = compileOrFail(Printed);
  EXPECT_EQ(Printed, printProgram(P2));
}

TEST_P(FuzzProperty, AllModelsClassifyAndStayConsistent) {
  ProgramGenerator Generator(GetParam() ^ 0x222);
  Program P = compileOrFail(Generator.generate());
  for (ModelKind Model :
       {ModelKind::Concrete, ModelKind::Logical, ModelKind::QuasiConcrete,
        ModelKind::EagerQuasi, ModelKind::TwoPhase}) {
    for (uint64_t OracleSeed : {0u, 1u}) {
      RunConfig C;
      C.Model = Model;
      C.MemConfig.AddressWords = 1u << 10;
      C.Interp.StepLimit = 200'000;
      C.Oracle = [OracleSeed]() -> std::unique_ptr<PlacementOracle> {
        if (OracleSeed == 0)
          return std::make_unique<FirstFitOracle>();
        return std::make_unique<LastFitOracle>();
      };
      C.Kinds = [] {
        return std::make_unique<FixedKindOracle>(
            std::vector<bool>{true, false, true, true, false});
      };
      RunResult R = runProgram(P, C);
      // Any behavior class is fine; internal consistency is not optional.
      EXPECT_EQ(R.ConsistencyError, std::nullopt)
          << modelKindName(Model) << " oracle " << OracleSeed;
    }
  }
}

TEST_P(FuzzProperty, RunsAreDeterministicGivenTheOracle) {
  ProgramGenerator Generator(GetParam() ^ 0x333);
  Program P = compileOrFail(Generator.generate());
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.MemConfig.AddressWords = 1u << 10;
  C.Interp.StepLimit = 200'000;
  C.Oracle = [] { return std::make_unique<RandomOracle>(77); };
  RunResult R1 = runProgram(P, C);
  RunResult R2 = runProgram(P, C);
  EXPECT_EQ(R1.Behav, R2.Behav);
  EXPECT_EQ(R1.Steps, R2.Steps);
}

TEST_P(FuzzProperty, EveryProgramRefinesItself) {
  ProgramGenerator Generator(GetParam() ^ 0x444);
  Program P = compileOrFail(Generator.generate());
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 10;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 10;
  Job.BaseSrc.Interp.StepLimit = 200'000;
  Job.BaseTgt.Interp.StepLimit = 200'000;
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines) << R.toString();
}

TEST_P(FuzzProperty, OptimizerOutputRefinesItsInput) {
  ProgramGenerator Generator(GetParam() ^ 0x555);
  Program P = compileOrFail(Generator.generate());
  Program Optimized = optimizePipeline(P);
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &Optimized;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 10;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 10;
  Job.BaseSrc.Interp.StepLimit = 200'000;
  Job.BaseTgt.Interp.StepLimit = 200'000;
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines) << R.toString() << "\n--- original ---\n"
                         << printProgram(P) << "--- optimized ---\n"
                         << printProgram(Optimized);
}

TEST_P(FuzzProperty, ThreeWayEnginesAgree) {
  // Differential property, three ways: the direct-threaded QIR engine, the
  // switch-dispatch QIR engine, and the reference AST walker observe the
  // same behavior (including the diagnostic reason) and the same step
  // count, under every model, both type disciplines, and two deterministic
  // oracles. In switch-only builds the first two coincide and the test
  // degenerates to the classic two-way check.
  ProgramGenerator Generator(GetParam() ^ 0x666);
  Program P = compileOrFail(Generator.generate());
  for (ModelKind Model :
       {ModelKind::Concrete, ModelKind::Logical, ModelKind::QuasiConcrete,
        ModelKind::EagerQuasi, ModelKind::TwoPhase}) {
    for (TypeDiscipline Discipline :
         {TypeDiscipline::Static, TypeDiscipline::Loose}) {
      for (uint64_t OracleSeed : {0u, 1u}) {
        RunConfig C;
        C.Model = Model;
        C.MemConfig.AddressWords = 1u << 10;
        C.Interp.StepLimit = 200'000;
        C.Interp.Discipline = Discipline;
        C.Oracle = [OracleSeed]() -> std::unique_ptr<PlacementOracle> {
          if (OracleSeed == 0)
            return std::make_unique<FirstFitOracle>();
          return std::make_unique<LastFitOracle>();
        };
        RunResult Threaded = runProgram(P, C);
        RunConfig SwitchC = C;
        SwitchC.Interp.Dispatch = DispatchMode::Switch;
        RunResult Switch = runProgram(P, SwitchC);
        RunResult Ast = runAstProgram(P, C);
        std::string Where = std::string(modelKindName(Model)) + " oracle " +
                            std::to_string(OracleSeed);
        EXPECT_EQ(Threaded.Behav, Ast.Behav)
            << Where << "\nqir: " << Threaded.Behav.toString()
            << "ast: " << Ast.Behav.toString();
        EXPECT_EQ(Threaded.Behav.Reason, Ast.Behav.Reason) << Where;
        EXPECT_EQ(Threaded.Steps, Ast.Steps) << Where;
        EXPECT_EQ(Switch.Behav, Threaded.Behav)
            << Where << "\nswitch:   " << Switch.Behav.toString()
            << "threaded: " << Threaded.Behav.toString();
        EXPECT_EQ(Switch.Behav.Reason, Threaded.Behav.Reason) << Where;
        EXPECT_EQ(Switch.Steps, Threaded.Steps) << Where;
        EXPECT_TRUE(Switch.Dispatch.empty()) << Where;
      }
    }
  }
}

namespace {

RunConfig chaosConfig(ModelKind Model) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = 1u << 10;
  C.Interp.StepLimit = 200'000;
  return C;
}

/// A random decorator-level fault plan: Nth allocation, Nth cast, or Nth
/// memory operation. words:K is deliberately excluded here — shrinking the
/// space changes concrete addresses (and so cast results) from the start of
/// the run, which voids the prefix property this fuzzer checks.
FaultPlan randomPlan(Rng &R) {
  switch (R.nextBelow(3)) {
  case 0:
    return FaultPlan::failAllocation(1 + R.nextBelow(8));
  case 1:
    return FaultPlan::failCast(1 + R.nextBelow(6));
  default:
    return FaultPlan::failOperation(1 + R.nextBelow(40));
  }
}

/// Empty if the chaos invariant holds for \p P under \p Model / \p Plan;
/// otherwise a description of the violation. Shared by the test assertion
/// and the delta-reduction predicate.
std::string chaosViolation(const Program &P, ModelKind Model,
                           const FaultPlan &Plan) {
  RunConfig C = chaosConfig(Model);
  RunResult Clean = runProgram(P, C);
  C.Inject = Plan;
  RunResult Faulty = runProgram(P, C);
  if (Faulty.ConsistencyError)
    return "consistency violation under injection: " + *Faulty.ConsistencyError;
  bool FiredInjection =
      Faulty.Behav.BehaviorKind == Behavior::Kind::OutOfMemory &&
      Faulty.Behav.Reason.rfind("injected", 0) == 0;
  if (FiredInjection) {
    if (!isEventPrefix(Faulty.Behav.Events, Clean.Behav.Events))
      return "injected events are not a prefix of the clean run's\n"
             "clean:  " +
             Clean.Behav.toString() + "faulty: " + Faulty.Behav.toString();
    if (Faulty.Steps > Clean.Steps)
      return "injection made the run longer than the clean run";
  } else {
    if (!(Faulty.Behav == Clean.Behav) ||
        Faulty.Behav.Reason != Clean.Behav.Reason ||
        Faulty.Steps != Clean.Steps)
      return "the plan never fired yet the run changed\n"
             "clean:  " +
             Clean.Behav.toString() + "faulty: " + Faulty.Behav.toString();
  }
  return "";
}

/// Failure diagnosis: self-contained repro line plus the delta-minimized
/// program still violating the invariant.
std::string diagnoseChaos(uint64_t Seed, ModelKind Model, const FaultPlan &Plan,
                          const std::string &Source) {
  auto Violates = [&](const std::string &Text) {
    Vm V;
    std::optional<Program> P = V.compile(Text);
    return P && !chaosViolation(*P, Model, Plan).empty();
  };
  std::string Minimal =
      Violates(Source) ? qcm_test::minimizeSource(Source, Violates, 400)
                       : Source;
  return qcm_test::reproLine(Seed, modelKindName(Model), Plan.toString()) +
         "\n--- minimized program ---\n" + Minimal;
}

} // namespace

TEST_P(FuzzProperty, ChaosInjectionIsNeverANewBehavior) {
  uint64_t Seed = GetParam() ^ 0x777;
  ProgramGenerator Generator(Seed);
  std::string Source = Generator.generate();
  Program P = compileOrFail(Source);
  Rng PlanRng(Seed * 0x9e3779b97f4a7c15ull + 1);
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::QuasiConcrete,
                          ModelKind::EagerQuasi, ModelKind::TwoPhase}) {
    for (int Round = 0; Round < 3; ++Round) {
      FaultPlan Plan = randomPlan(PlanRng);
      std::string Violation = chaosViolation(P, Model, Plan);
      EXPECT_EQ(Violation, "")
          << diagnoseChaos(Seed, Model, Plan, Source);
    }
  }
}

TEST_P(FuzzProperty, ChaosThreeWayEnginesAgreeUnderInjection) {
  // Differential chaos, three ways: under a random fault plan the threaded
  // engine (which deoptimizes to the switch loop when it sees the
  // injection decorator), the explicitly switch-dispatched engine, and the
  // reference walker must all truncate at the same injected operation with
  // the same diagnosis. The Auto run's empty dispatch telemetry is the
  // deopt contract made visible.
  uint64_t Seed = GetParam() ^ 0x888;
  ProgramGenerator Generator(Seed);
  Program P = compileOrFail(Generator.generate());
  Rng PlanRng(Seed * 0x9e3779b97f4a7c15ull + 2);
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::QuasiConcrete,
                          ModelKind::EagerQuasi, ModelKind::TwoPhase}) {
    FaultPlan Plan = randomPlan(PlanRng);
    RunConfig C = chaosConfig(Model);
    C.Inject = Plan;
    RunResult Auto = runProgram(P, C);
    RunConfig SwitchC = C;
    SwitchC.Interp.Dispatch = DispatchMode::Switch;
    RunResult Switch = runProgram(P, SwitchC);
    RunResult Ast = runAstProgram(P, C);
    std::string Repro =
        qcm_test::reproLine(Seed, modelKindName(Model), Plan.toString());
    EXPECT_EQ(Auto.Behav, Ast.Behav) << Repro;
    EXPECT_EQ(Auto.Behav.Reason, Ast.Behav.Reason) << Repro;
    EXPECT_EQ(Auto.Steps, Ast.Steps) << Repro;
    EXPECT_EQ(Switch.Behav, Auto.Behav) << Repro;
    EXPECT_EQ(Switch.Steps, Auto.Steps) << Repro;
    EXPECT_TRUE(Auto.Dispatch.empty())
        << Repro << " — fault injection must deoptimize to the switch loop";
  }
}

TEST(DeltaReduction, ShrinksAFailingProgramToItsCore) {
  // A known-bad program buried in noise: the load through a freed pointer
  // is undefined under every model; everything else is removable.
  std::string Source = "main() {\n"
                       "  var ptr p, int a, int b;\n"
                       "  a = 1;\n"
                       "  b = a + 2;\n"
                       "  output(b);\n"
                       "  p = malloc(2);\n"
                       "  *p = 5;\n"
                       "  a = *p;\n"
                       "  free(p);\n"
                       "  b = *p;\n"
                       "  output(41);\n"
                       "  output(42);\n"
                       "}\n";
  auto StillUndefined = [](const std::string &Text) {
    Vm V;
    std::optional<Program> P = V.compile(Text);
    if (!P)
      return false;
    RunConfig C = chaosConfig(ModelKind::QuasiConcrete);
    return runProgram(*P, C).Behav.BehaviorKind == Behavior::Kind::Undefined;
  };
  ASSERT_TRUE(StillUndefined(Source));
  std::string Minimal = qcm_test::minimizeSource(Source, StillUndefined);
  EXPECT_TRUE(StillUndefined(Minimal)) << Minimal;
  EXPECT_LT(Minimal.size(), Source.size());
  // The noise must be gone; the fault line must survive.
  EXPECT_EQ(Minimal.find("output"), std::string::npos) << Minimal;
  EXPECT_NE(Minimal.find("b = *p;"), std::string::npos) << Minimal;
}

TEST(DeltaReduction, KeepsTheSourceWhenNothingCanGo) {
  auto Always = [](const std::string &) { return false; };
  std::string Source = "main() {\n  output(1);\n}\n";
  EXPECT_EQ(qcm_test::minimizeSource(Source, Always), Source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Range<uint64_t>(1000, 1024));
