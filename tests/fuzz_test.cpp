//===- tests/fuzz_test.cpp - Random-program property tests ----------------===//
//
// Properties checked on generated programs (tests/ProgramGenerator.h):
//
// * the generator only emits programs the front end accepts;
// * parse/print round trips are stable;
// * every execution, under every model and several oracles, terminates in
//   one of the four behavior classes and leaves the memory model's internal
//   invariants intact;
// * runs are deterministic given the oracle;
// * every program refines itself;
// * the optimizer pipeline's output refines its input under the
//   quasi-concrete model (end-to-end soundness fuzzing).
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/OwnershipOpt.h"
#include "refinement/RefinementChecker.h"
#include "semantics/AstInterp.h"

#include <gtest/gtest.h>

using namespace qcm;
using qcm_test::ProgramGenerator;

namespace {

Program compileOrFail(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << "generated program rejected:\n"
                  << V.lastDiagnostics() << "\n--- source ---\n"
                  << Source;
    return Program{};
  }
  return std::move(*P);
}

Program optimizePipeline(const Program &P) {
  Program Copy = P.clone();
  DceOptions Dce;
  Dce.RemoveDeadAllocs = true;
  PassManager PM;
  PM.add(std::make_unique<OwnershipOptPass>());
  PM.add(std::make_unique<ConstPropPass>());
  PM.add(std::make_unique<ArithSimplifyPass>());
  PM.add(std::make_unique<DeadCodeElimPass>(Dce));
  PM.run(Copy, 8);
  return Copy;
}

} // namespace

class FuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzProperty, GeneratedProgramsCompile) {
  ProgramGenerator Generator(GetParam());
  std::string Source = Generator.generate();
  Program P = compileOrFail(Source);
  EXPECT_FALSE(P.Functions.empty());
}

TEST_P(FuzzProperty, ParsePrintRoundTripIsStable) {
  ProgramGenerator Generator(GetParam() ^ 0x111);
  Program P = compileOrFail(Generator.generate());
  std::string Printed = printProgram(P);
  Program P2 = compileOrFail(Printed);
  EXPECT_EQ(Printed, printProgram(P2));
}

TEST_P(FuzzProperty, AllModelsClassifyAndStayConsistent) {
  ProgramGenerator Generator(GetParam() ^ 0x222);
  Program P = compileOrFail(Generator.generate());
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::Logical,
                          ModelKind::QuasiConcrete, ModelKind::EagerQuasi}) {
    for (uint64_t OracleSeed : {0u, 1u}) {
      RunConfig C;
      C.Model = Model;
      C.MemConfig.AddressWords = 1u << 10;
      C.Interp.StepLimit = 200'000;
      C.Oracle = [OracleSeed]() -> std::unique_ptr<PlacementOracle> {
        if (OracleSeed == 0)
          return std::make_unique<FirstFitOracle>();
        return std::make_unique<LastFitOracle>();
      };
      C.Kinds = [] {
        return std::make_unique<FixedKindOracle>(
            std::vector<bool>{true, false, true, true, false});
      };
      RunResult R = runProgram(P, C);
      // Any behavior class is fine; internal consistency is not optional.
      EXPECT_EQ(R.ConsistencyError, std::nullopt)
          << modelKindName(Model) << " oracle " << OracleSeed;
    }
  }
}

TEST_P(FuzzProperty, RunsAreDeterministicGivenTheOracle) {
  ProgramGenerator Generator(GetParam() ^ 0x333);
  Program P = compileOrFail(Generator.generate());
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.MemConfig.AddressWords = 1u << 10;
  C.Interp.StepLimit = 200'000;
  C.Oracle = [] { return std::make_unique<RandomOracle>(77); };
  RunResult R1 = runProgram(P, C);
  RunResult R2 = runProgram(P, C);
  EXPECT_EQ(R1.Behav, R2.Behav);
  EXPECT_EQ(R1.Steps, R2.Steps);
}

TEST_P(FuzzProperty, EveryProgramRefinesItself) {
  ProgramGenerator Generator(GetParam() ^ 0x444);
  Program P = compileOrFail(Generator.generate());
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 10;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 10;
  Job.BaseSrc.Interp.StepLimit = 200'000;
  Job.BaseTgt.Interp.StepLimit = 200'000;
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines) << R.toString();
}

TEST_P(FuzzProperty, OptimizerOutputRefinesItsInput) {
  ProgramGenerator Generator(GetParam() ^ 0x555);
  Program P = compileOrFail(Generator.generate());
  Program Optimized = optimizePipeline(P);
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &Optimized;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 10;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 10;
  Job.BaseSrc.Interp.StepLimit = 200'000;
  Job.BaseTgt.Interp.StepLimit = 200'000;
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines) << R.toString() << "\n--- original ---\n"
                         << printProgram(P) << "--- optimized ---\n"
                         << printProgram(Optimized);
}

TEST_P(FuzzProperty, QirEngineMatchesTheAstWalker) {
  // Differential property: the compiled QIR engine and the reference AST
  // walker observe the same behavior (including the diagnostic reason) and
  // the same step count, under every model, both type disciplines, and two
  // deterministic oracles.
  ProgramGenerator Generator(GetParam() ^ 0x666);
  Program P = compileOrFail(Generator.generate());
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::Logical,
                          ModelKind::QuasiConcrete, ModelKind::EagerQuasi}) {
    for (TypeDiscipline Discipline :
         {TypeDiscipline::Static, TypeDiscipline::Loose}) {
      for (uint64_t OracleSeed : {0u, 1u}) {
        RunConfig C;
        C.Model = Model;
        C.MemConfig.AddressWords = 1u << 10;
        C.Interp.StepLimit = 200'000;
        C.Interp.Discipline = Discipline;
        C.Oracle = [OracleSeed]() -> std::unique_ptr<PlacementOracle> {
          if (OracleSeed == 0)
            return std::make_unique<FirstFitOracle>();
          return std::make_unique<LastFitOracle>();
        };
        RunResult Qir = runProgram(P, C);
        RunResult Ast = runAstProgram(P, C);
        EXPECT_EQ(Qir.Behav, Ast.Behav)
            << modelKindName(Model) << " oracle " << OracleSeed
            << "\nqir: " << Qir.Behav.toString()
            << "ast: " << Ast.Behav.toString();
        EXPECT_EQ(Qir.Behav.Reason, Ast.Behav.Reason)
            << modelKindName(Model) << " oracle " << OracleSeed;
        EXPECT_EQ(Qir.Steps, Ast.Steps)
            << modelKindName(Model) << " oracle " << OracleSeed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Range<uint64_t>(1000, 1024));
