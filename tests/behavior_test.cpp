//===- tests/behavior_test.cpp - Behavior lattice tests (Section 2.3) -----===//

#include "refinement/BehaviorSet.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

std::vector<Event> evs(std::initializer_list<Word> Values) {
  std::vector<Event> Events;
  for (Word V : Values)
    Events.push_back(Event::output(V));
  return Events;
}

BehaviorSet setOf(std::initializer_list<Behavior> Behaviors) {
  BehaviorSet S;
  for (const Behavior &B : Behaviors)
    S.insert(B);
  return S;
}

} // namespace

TEST(Events, PrefixRelation) {
  EXPECT_TRUE(isEventPrefix(evs({}), evs({1, 2})));
  EXPECT_TRUE(isEventPrefix(evs({1}), evs({1, 2})));
  EXPECT_TRUE(isEventPrefix(evs({1, 2}), evs({1, 2})));
  EXPECT_FALSE(isEventPrefix(evs({2}), evs({1, 2})));
  EXPECT_FALSE(isEventPrefix(evs({1, 2, 3}), evs({1, 2})));
  // Input and output events with equal payloads are distinct.
  std::vector<Event> In = {Event::input(1)};
  std::vector<Event> Out = {Event::output(1)};
  EXPECT_FALSE(isEventPrefix(In, Out));
}

TEST(BehaviorSet, DeduplicatesAndIgnoresReasonInEquality) {
  BehaviorSet S;
  S.insert(Behavior::undefined(evs({1}), "reason one"));
  S.insert(Behavior::undefined(evs({1}), "another reason"));
  EXPECT_EQ(S.size(), 1u);
  S.insert(Behavior::terminated(evs({1})));
  EXPECT_EQ(S.size(), 2u);
}

TEST(Admission, TerminationNeedsExactMatch) {
  BehaviorSet Src = setOf({Behavior::terminated(evs({1, 2}))});
  EXPECT_TRUE(behaviorAdmitted(Behavior::terminated(evs({1, 2})), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({1})), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({1, 2, 3})), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({9})), Src));
}

TEST(Admission, SourceUndefinedAdmitsEverythingExtendingItsPrefix) {
  // Undefined behavior is the set of all behaviors (C11 reading).
  BehaviorSet Src = setOf({Behavior::undefined(evs({1}), "ub")});
  EXPECT_TRUE(behaviorAdmitted(Behavior::terminated(evs({1, 2, 3})), Src));
  EXPECT_TRUE(behaviorAdmitted(Behavior::undefined(evs({1, 9}), "x"), Src));
  EXPECT_TRUE(behaviorAdmitted(Behavior::outOfMemory(evs({1}), "x"), Src));
  EXPECT_TRUE(behaviorAdmitted(Behavior::stepLimit(evs({1})), Src));
  // ... but not behaviors that diverge before the UB point.
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({2})), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({})), Src));
}

TEST(Admission, PartialBehaviorsNeedASourceExtension) {
  // Out of memory: the target performed a prefix of events the source
  // could have performed (CompCertTSO-style).
  BehaviorSet Src = setOf({Behavior::terminated(evs({1, 2, 3}))});
  EXPECT_TRUE(behaviorAdmitted(Behavior::outOfMemory(evs({}), "oom"), Src));
  EXPECT_TRUE(behaviorAdmitted(Behavior::outOfMemory(evs({1}), "oom"), Src));
  EXPECT_TRUE(
      behaviorAdmitted(Behavior::outOfMemory(evs({1, 2, 3}), "oom"), Src));
  EXPECT_FALSE(
      behaviorAdmitted(Behavior::outOfMemory(evs({2}), "oom"), Src));
  EXPECT_FALSE(
      behaviorAdmitted(Behavior::outOfMemory(evs({1, 2, 3, 4}), "o"), Src));
}

TEST(Admission, TargetUndefinedRequiresSourceUndefined) {
  BehaviorSet Src = setOf({Behavior::terminated(evs({1})),
                           Behavior::outOfMemory(evs({1}), "oom")});
  EXPECT_FALSE(behaviorAdmitted(Behavior::undefined(evs({1}), "ub"), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::undefined(evs({}), "ub"), Src));
}

TEST(Admission, SourcePartialAdmitsOnlyShorterPartials) {
  BehaviorSet Src = setOf({Behavior::outOfMemory(evs({1}), "oom")});
  EXPECT_TRUE(behaviorAdmitted(Behavior::outOfMemory(evs({}), "o"), Src));
  EXPECT_TRUE(behaviorAdmitted(Behavior::outOfMemory(evs({1}), "o"), Src));
  // The source never got past out(1): a terminating target did something
  // the source cannot do.
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({1})), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::terminated(evs({})), Src));
}

TEST(Admission, StepLimitIsTreatedAsPartial) {
  BehaviorSet Src = setOf({Behavior::terminated(evs({1, 2}))});
  EXPECT_TRUE(behaviorAdmitted(Behavior::stepLimit(evs({1})), Src));
  EXPECT_FALSE(behaviorAdmitted(Behavior::stepLimit(evs({3})), Src));
}

TEST(Inclusion, ReportsFirstCounterexample) {
  BehaviorSet Src = setOf({Behavior::terminated(evs({1}))});
  BehaviorSet Tgt = setOf({Behavior::terminated(evs({1})),
                           Behavior::terminated(evs({2}))});
  InclusionResult R = behaviorsIncluded(Tgt, Src);
  ASSERT_FALSE(R.Included);
  EXPECT_EQ(R.Counterexample, Behavior::terminated(evs({2})));
  EXPECT_TRUE(behaviorsIncluded(Src, Tgt).Included);
}

TEST(Inclusion, EmptyTargetSetIsAlwaysIncluded) {
  BehaviorSet Src;
  BehaviorSet Tgt;
  EXPECT_TRUE(behaviorsIncluded(Tgt, Src).Included);
}

TEST(Inclusion, ReflexiveOnArbitrarySets) {
  BehaviorSet S = setOf({Behavior::terminated(evs({1})),
                         Behavior::undefined(evs({2}), "u"),
                         Behavior::outOfMemory(evs({}), "o"),
                         Behavior::stepLimit(evs({1, 1}))});
  // Step-limit self-admission holds because the terminated behavior
  // extends it; reflexivity of the whole set follows.
  EXPECT_TRUE(behaviorsIncluded(S, S).Included);
}
