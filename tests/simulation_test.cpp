//===- tests/simulation_test.cpp - Local simulation proofs (Sections 5-6) -===//
//
// Each test is a mechanized analogue of one of the paper's Coq proofs: a
// proof script stating the invariant at every sync point, whose obligations
// the SimulationChecker discharges against the actual machine states.
//
//===----------------------------------------------------------------------===//

#include "core/PaperExamples.h"
#include "core/Vm.h"
#include "refinement/Simulation.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

RunConfig modelConfig(ModelKind Model, uint64_t Words = 1u << 12) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = Words;
  return C;
}

#define SIM_OK(Expr)                                                         \
  do {                                                                       \
    auto SimError = (Expr);                                                  \
    EXPECT_EQ(SimError, std::nullopt);                                       \
    if (SimError)                                                            \
      return;                                                                \
  } while (0)

} // namespace

//===----------------------------------------------------------------------===//
// Section 5.1 running example: CP + DLE + DSE + DAE through bar(p).
// The four Figure 6 invariant states appear as the proof's checkpoints.
//===----------------------------------------------------------------------===//

TEST(Simulation, RunningExampleProof) {
  const PaperExample &Ex = getPaperExample("running");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.SrcConfig.Entry = Setup.TgtConfig.Entry = "main";

  SimulationChecker Sim(Setup);
  // Figure 6 (a): equivalent (empty) public memories, no privates.
  SIM_OK(Sim.begin(nullptr));

  // Figure 6 (b), at the call to bar: p's block is public and related;
  // the freshly allocated q (source block 2, holding 123) is private to
  // the source.
  SIM_OK(Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "could not relate the p blocks";
        return std::nullopt;
      },
      // Instantiate bar with a context that writes through its argument —
      // public memories evolve equivalently (Figure 6 (c)); q must survive
      // untouched.
      sim_actions::writeThroughFirstArg(7)));
  // Private q is added after alpha so the disjointness check sees it; do
  // it as part of the same call obligation via a second checkpoint: the
  // checker validated the public part; now extend privately and re-verify.

  // Figure 6 (d): at return, q is dropped (never used again), restoring
  // the entry private sections (=prv).
  SIM_OK(Sim.expectReturn(
      [](MemoryInvariant &, Machine &, Machine &)
          -> std::optional<std::string> { return std::nullopt; }));
  EXPECT_FALSE(Sim.discharged());
}

TEST(Simulation, RunningExampleProofWithExplicitPrivateQ) {
  const PaperExample &Ex = getPaperExample("running");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);

  SimulationChecker Sim(Setup);
  SIM_OK(Sim.begin(nullptr));
  SIM_OK(Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "could not relate the p blocks";
        // Source block 2 is foo's fresh q, holding 123: exclusively owned.
        if (auto Err = Inv.addPrivateSrc(2, SrcM.memory()))
          return Err;
        return std::nullopt;
      },
      sim_actions::writeThroughFirstArg(7)));
  SIM_OK(Sim.expectReturn(
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        // "We can ignore the block l because it is not going to be used
        // any more" — restoring =prv with the entry invariant.
        Inv.dropPrivateSrc(2);
        return std::nullopt;
      }));
  EXPECT_FALSE(Sim.discharged());
}

TEST(Simulation, RunningExampleRejectsAContextThatBreaksEquivalence) {
  // If the instantiated bar writes *different* values on the two sides,
  // the after-call obligation (equivalent public memories) must fail.
  const PaperExample &Ex = getPaperExample("running");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);

  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "could not relate the p blocks";
        return std::nullopt;
      },
      [](Machine &SrcM, const std::vector<Value> &SrcArgs, Machine &TgtM,
         const std::vector<Value> &TgtArgs) -> std::optional<std::string> {
        (void)SrcM.memory().store(SrcArgs[0], Value::makeInt(1));
        (void)TgtM.memory().store(TgtArgs[0], Value::makeInt(2));
        return std::nullopt;
      });
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("invariant violated by the unknown call"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Section 6.3: ownership transfer (Figure 3). The p blocks are private on
// each side until hash_put publishes them; ownership moves to the public
// section at the end, extending the bijection.
//===----------------------------------------------------------------------===//

TEST(Simulation, OwnershipTransferProof) {
  const PaperExample &Ex = getPaperExample("fig3");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);

  SimulationChecker Sim(Setup);
  // Globals: block 1 is the hash table h on both sides; relate it.
  SIM_OK(Sim.begin([](MemoryInvariant &Inv, Machine &, Machine &)
                       -> std::optional<std::string> {
    if (!Inv.Alpha.add(1, 1))
      return "could not relate the global h blocks";
    return std::nullopt;
  }));

  // At bar(): block 2 (p, holding 123) is private on *both* sides — the
  // second invariant of Section 6.3.
  SIM_OK(Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &SrcM, Machine &TgtM)
          -> std::optional<std::string> {
        if (auto Err = Inv.addPrivateSrc(2, SrcM.memory()))
          return Err;
        if (auto Err = Inv.addPrivateTgt(2, TgtM.memory()))
          return Err;
        return std::nullopt;
      },
      /*Action=*/nullptr));

  // hash_put is a known function: the checker steps into it on both sides.
  // Its cast realizes the p blocks; at return they are public (fourth
  // invariant of Section 6.3): move them out of the private sections and
  // extend the bijection.
  SIM_OK(Sim.expectReturn(
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        Inv.dropPrivateSrc(2);
        Inv.dropPrivateTgt(2);
        if (!Inv.Alpha.add(2, 2))
          return "could not publish the p blocks";
        return std::nullopt;
      }));
  EXPECT_FALSE(Sim.discharged());
}

TEST(Simulation, EarlyCastBlocksPrivatization) {
  // Section 3.7 (second drawback): with the cast before bar(), p's block
  // is already concrete at the call — it can no longer be taken private,
  // which is exactly why the optimization is invalid in the model.
  const PaperExample &Ex = getPaperExample("drawbacks_b_early");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);

  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin([](MemoryInvariant &Inv, Machine &, Machine &)
                          -> std::optional<std::string> {
    if (!Inv.Alpha.add(1, 1))
      return "could not relate h";
    return std::nullopt;
  }),
            std::nullopt);

  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
          -> std::optional<std::string> {
        // Attempt the same privatization as in the Figure 3 proof.
        if (auto Err = Inv.addPrivateSrc(2, SrcM.memory()))
          return Err;
        return std::nullopt;
      },
      nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("must be logical"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Section 6.5: dead cast + dead allocation elimination is valid when the
// source uses the quasi-concrete model and the target the concrete model.
//===----------------------------------------------------------------------===//

TEST(Simulation, Fig5CrossModelProof) {
  const PaperExample &Ex = getPaperExample("fig5");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete, 64);
  Setup.TgtConfig = modelConfig(ModelKind::Concrete, 64);

  SimulationChecker Sim(Setup);
  SIM_OK(Sim.begin(nullptr));

  // At bar(): source block 1 (p) was realized by the cast inside foo at
  // the same first-fit address the concrete target gave it at allocation;
  // source block 2 (foo's dead q) stays logical and private, then is
  // dropped — "we simply drop the block l's from the source private
  // section" (Section 6.5).
  SIM_OK(Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "could not relate the p blocks";
        if (auto Err = Inv.addPrivateSrc(2, SrcM.memory()))
          return Err;
        return std::nullopt;
      },
      nullptr));
  SIM_OK(Sim.expectReturn(
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        Inv.dropPrivateSrc(2);
        return std::nullopt;
      }));
  EXPECT_FALSE(Sim.discharged());
}

TEST(Simulation, Fig5QuasiToQuasiProofFails) {
  // The same proof attempt with a quasi-concrete target produces the
  // invalid invariant the paper describes: source concrete, target
  // logical.
  const PaperExample &Ex = getPaperExample("fig5");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource);

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete, 64);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete, 64);

  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "could not relate the p blocks";
        if (auto E = Inv.addPrivateSrc(2, SrcM.memory()))
          return E;
        return std::nullopt;
      },
      nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("source is concrete but target is logical"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Section 6.6: the identity compiler and the lowering compiler simulate.
//===----------------------------------------------------------------------===//

TEST(Simulation, IdentityCompilerSimulates) {
  const PaperExample &Ex = getPaperExample("running");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = Src.clone(); // identity compilation

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);

  SimulationChecker Sim(Setup);
  SIM_OK(Sim.begin(nullptr));
  SIM_OK(Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1) || !Inv.Alpha.add(2, 2))
          return "could not relate blocks";
        return std::nullopt;
      },
      sim_actions::writeThroughFirstArg(9)));
  SIM_OK(Sim.expectReturn(nullptr));
  EXPECT_FALSE(Sim.discharged());
}

TEST(Simulation, DeadCastLoweringSimulates) {
  const PaperExample &Ex = getPaperExample("deadcast");
  Program Src = compile(Ex.SrcSource);
  Program Tgt = compile(Ex.TgtSource); // dead cast removed

  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete, 64);
  Setup.TgtConfig = modelConfig(ModelKind::Concrete, 64);

  SimulationChecker Sim(Setup);
  SIM_OK(Sim.begin(nullptr));
  SIM_OK(Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "could not relate the p blocks";
        return std::nullopt;
      },
      nullptr));
  SIM_OK(Sim.expectReturn(nullptr));
  EXPECT_FALSE(Sim.discharged());
}

//===----------------------------------------------------------------------===//
// Discharge paths
//===----------------------------------------------------------------------===//

TEST(Simulation, SourceUndefinedBehaviorDischargesTheProof) {
  Program Src = compile(R"(
extern bar();
main() {
  var ptr p, int a;
  p = (ptr) 0;
  a = *p;
  bar();
}
)");
  Program Tgt = compile("extern bar(); main() { output(9); bar(); }");
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  SimulationChecker Sim(Setup);
  SIM_OK(Sim.begin(nullptr));
  SIM_OK(Sim.expectCall("bar", nullptr, nullptr));
  EXPECT_TRUE(Sim.discharged());
  // Subsequent steps are vacuous.
  SIM_OK(Sim.expectReturn(nullptr));
}

TEST(Simulation, TargetOutOfMemoryDischargesTheProof) {
  Program Src = compile("extern bar(); main() { bar(); }");
  Program Tgt = compile(R"(
extern bar();
main() {
  var ptr hog, int a;
  hog = malloc(100);
  a = (int) hog;
  bar();
}
)");
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete, 8);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete, 8);
  SimulationChecker Sim(Setup);
  SIM_OK(Sim.begin(nullptr));
  SIM_OK(Sim.expectCall("bar", nullptr, nullptr));
  EXPECT_TRUE(Sim.discharged());
}

TEST(Simulation, TargetUndefinedBehaviorFailsTheProof) {
  Program Src = compile("extern bar(); main() { bar(); }");
  Program Tgt = compile(R"(
extern bar();
main() {
  var ptr p, int a;
  p = (ptr) 0;
  a = *p;
  bar();
}
)");
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall("bar", nullptr, nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("target exhibits a fault"), std::string::npos);
}

TEST(Simulation, DesynchronizedEventsFailTheProof) {
  Program Src = compile("extern bar(); main() { output(1); bar(); }");
  Program Tgt = compile("extern bar(); main() { output(2); bar(); }");
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall("bar", nullptr, nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("desynchronized"), std::string::npos);
}

TEST(Simulation, MissedCallSynchronizationFailsTheProof) {
  Program Src = compile("extern bar(); main() { bar(); }");
  Program Tgt = compile("extern bar(); main() { var int x; x = 0; }");
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  EXPECT_NE(Sim.expectCall("bar", nullptr, nullptr), std::nullopt);
}
