//===- tests/ownership_opt_test.cpp - Ownership optimization tests --------===//
//
// Load forwarding and dead store elimination justified by exclusive block
// ownership (Figures 3 and 5, Sections 5.1 and 7).
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/OwnershipOpt.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

std::string afterOwnershipOpt(const std::string &Source,
                              OwnershipOptions Options = {}) {
  Program P = compile(Source);
  PassManager PM;
  PM.add(std::make_unique<OwnershipOptPass>(Options));
  PM.run(P);
  return printProgram(P);
}

} // namespace

TEST(OwnershipOpt, ForwardsStoredConstantThroughUnknownCall) {
  // Figure 3's essence: the fresh block's contents survive bar().
  std::string Out = afterOwnershipOpt(R"(
extern bar();
main() {
  var ptr p, int a;
  p = malloc(1);
  *p = 123;
  bar();
  a = *p;
  output(a);
}
)");
  EXPECT_NE(Out.find("a = 123;"), std::string::npos);
}

TEST(OwnershipOpt, FreshBlocksReadAsZero) {
  std::string Out = afterOwnershipOpt(R"(
main() {
  var ptr p, int a;
  p = malloc(2);
  a = *(p + 1);
  output(a);
}
)");
  EXPECT_NE(Out.find("a = 0;"), std::string::npos);
}

TEST(OwnershipOpt, CastEndsOwnership) {
  // Section 3.7: after (int) p, the block is public; no forwarding across
  // the later unknown call.
  std::string Out = afterOwnershipOpt(R"(
extern bar();
main() {
  var ptr p, int a, int b;
  p = malloc(1);
  *p = 123;
  b = (int) p;
  bar();
  a = *p;
  output(a);
}
)");
  EXPECT_NE(Out.find("a = *p;"), std::string::npos);
}

TEST(OwnershipOpt, CallEndsOwnershipOfEscapedPointer) {
  std::string Out = afterOwnershipOpt(R"(
extern bar(ptr x);
main() {
  var ptr p, int a;
  p = malloc(1);
  *p = 123;
  bar(p);
  a = *p;
  output(a);
}
)");
  EXPECT_NE(Out.find("a = *p;"), std::string::npos);
}

TEST(OwnershipOpt, StoringThePointerEndsOwnership) {
  // cell escapes into bar, so *cell = p publishes p: no forwarding.
  std::string Out = afterOwnershipOpt(R"(
extern bar(ptr x);
main() {
  var ptr p, ptr cell, int a;
  p = malloc(1);
  cell = malloc(1);
  *p = 123;
  *cell = p;
  bar(cell);
  a = *p;
  output(a);
}
)");
  EXPECT_NE(Out.find("a = *p;"), std::string::npos);
  EXPECT_NE(Out.find("*cell = p;"), std::string::npos);
}

TEST(OwnershipOpt, PointerStoredIntoADeadBlockCascades) {
  // Storing p into a block that itself never escapes does not really
  // publish p: once the dead store is eliminated, a later pass iteration
  // finds p unescaped and forwards through it. The cascade is sound —
  // no context can reach p through an unreachable block.
  std::string Out = afterOwnershipOpt(R"(
extern bar();
main() {
  var ptr p, ptr cell, int a;
  p = malloc(1);
  cell = malloc(1);
  *p = 123;
  *cell = p;
  bar();
  a = *p;
  output(a);
}
)");
  EXPECT_NE(Out.find("a = 123;"), std::string::npos);
  EXPECT_EQ(Out.find("*cell"), std::string::npos);
}

TEST(OwnershipOpt, FreshnessBasedAliasAnalysis) {
  // Section 7: a store through fresh q cannot affect *p — the load of *p
  // forwards to the earlier loaded value b even though q was realized.
  std::string Out = afterOwnershipOpt(R"(
foo(ptr p) {
  var ptr q, int b, int r;
  q = malloc(1);
  b = *p;
  *q = 123;
  r = *p;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = b;"), std::string::npos);
}

TEST(OwnershipOpt, PublicStoreKillsPublicLoadKnowledge) {
  std::string Out = afterOwnershipOpt(R"(
foo(ptr p, ptr s) {
  var int b, int r;
  b = *p;
  *s = 9;
  r = *p;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = *p;"), std::string::npos);
}

TEST(OwnershipOpt, CallKillsPublicLoadKnowledge) {
  std::string Out = afterOwnershipOpt(R"(
extern bar();
foo(ptr p) {
  var int b, int r;
  b = *p;
  bar();
  r = *p;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = *p;"), std::string::npos);
}

TEST(OwnershipOpt, DeadStoreEliminatedWhenBlockNeverEscapes) {
  std::string Out = afterOwnershipOpt(R"(
extern bar();
main() {
  var ptr q;
  q = malloc(1);
  *q = 123;
  bar();
}
)");
  EXPECT_EQ(Out.find("*q = 123;"), std::string::npos);
  EXPECT_NE(Out.find("malloc"), std::string::npos); // DAE is not this pass.
}

TEST(OwnershipOpt, OverwrittenStoreIsDead) {
  std::string Out = afterOwnershipOpt(R"(
main() {
  var ptr q, int r;
  q = malloc(1);
  *q = 1;
  *q = 2;
  r = *q;
  output(r);
}
)");
  EXPECT_EQ(Out.find("*q = 1;"), std::string::npos);
}

TEST(OwnershipOpt, StoreBeforeEscapeIsKept) {
  std::string Out = afterOwnershipOpt(R"(
extern bar(ptr x);
main() {
  var ptr q;
  q = malloc(1);
  *q = 123;
  bar(q);
}
)");
  EXPECT_NE(Out.find("*q = 123;"), std::string::npos);
}

TEST(OwnershipOpt, StoreBeforeFreeIsDead) {
  std::string Out = afterOwnershipOpt(R"(
main() {
  var ptr q;
  q = malloc(1);
  *q = 123;
  free(q);
  output(1);
}
)");
  EXPECT_EQ(Out.find("*q = 123;"), std::string::npos);
  EXPECT_NE(Out.find("free(q);"), std::string::npos);
}

TEST(OwnershipOpt, ControlFlowClearsKnowledge) {
  std::string Out = afterOwnershipOpt(R"(
main() {
  var ptr q, int a, int r;
  q = malloc(1);
  *q = 5;
  a = input();
  if (a) {
    *q = 6;
  }
  r = *q;
  output(r);
}
)");
  EXPECT_NE(Out.find("r = *q;"), std::string::npos);
  EXPECT_NE(Out.find("*q = 5;"), std::string::npos);
}

TEST(OwnershipOpt, GatesDisableTheTransformations) {
  const std::string Source = R"(
extern bar();
main() {
  var ptr q, int a;
  q = malloc(1);
  *q = 123;
  bar();
  a = *q;
  output(a);
}
)";
  OwnershipOptions NoForward;
  NoForward.ForwardLoads = false;
  NoForward.EliminateDeadStores = false;
  std::string Out = afterOwnershipOpt(Source, NoForward);
  EXPECT_NE(Out.find("a = *q;"), std::string::npos);
  EXPECT_NE(Out.find("*q = 123;"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The full clang-like pipeline regenerates the paper's target programs.
//===----------------------------------------------------------------------===//

namespace {

/// The "clang -O2"-like pipeline used for the paper's examples: ownership
/// optimization, register constant propagation, then DCE, to fixpoint.
Program optimizePipeline(const std::string &Source, bool Dae = true) {
  Program P = compile(Source);
  DceOptions Dce;
  Dce.RemoveDeadAllocs = Dae;
  PassManager PM;
  PM.add(std::make_unique<OwnershipOptPass>());
  PM.add(std::make_unique<ConstPropPass>());
  PM.add(std::make_unique<DeadCodeElimPass>(Dce));
  PM.run(P, 8);
  return P;
}

} // namespace

TEST(Pipeline, RunningExampleReachesThePaperTarget) {
  // Section 5.1: CP + DLE + DSE + DAE in one pipeline.
  Program P = optimizePipeline(R"(
extern bar(ptr x);
foo(ptr p) {
  var ptr q, int a;
  q = malloc(1);
  *q = 123;
  bar(p);
  a = *q;
  *p = a;
}
)");
  std::string Out = printFunction(*P.findFunction("foo"));
  EXPECT_EQ(Out.find("malloc"), std::string::npos) << Out;   // DAE
  EXPECT_EQ(Out.find("*q"), std::string::npos) << Out;       // DSE + DLE
  EXPECT_NE(Out.find("bar(p);"), std::string::npos) << Out;
  EXPECT_NE(Out.find("*p = 123;"), std::string::npos) << Out; // CP
}

TEST(Pipeline, Figure3ReachesThePaperTarget) {
  Program P = optimizePipeline(R"(
global h[8];
extern bar();
hash_put(ptr t, ptr key, int v) {
  var int k, int slot;
  k = (int) key;
  slot = k & 7;
  *(t + slot) = v;
}
main() {
  var ptr p, int a;
  p = malloc(1);
  *p = 123;
  bar();
  a = *p;
  hash_put(h, p, a);
}
)",
                              /*Dae=*/false);
  std::string Out = printFunction(*P.findFunction("main"));
  EXPECT_NE(Out.find("hash_put(h, p, 123);"), std::string::npos) << Out;
}

TEST(Pipeline, PreservesBehaviorOnTheQuasiModel) {
  // Property check: pipeline output is behaviorally identical on concrete
  // runs of the running example with an instantiated context.
  const std::string Source = R"(
bar(ptr x) {
  var int v;
  v = *x;
  output(v);
  *x = 55;
}
foo(ptr p) {
  var ptr q, int a;
  q = malloc(1);
  *q = 123;
  bar(p);
  a = *q;
  *p = a;
}
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 44;
  foo(p);
  r = *p;
  output(r);
}
)";
  Program Before = compile(Source);
  Program After = optimizePipeline(Source);
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.MemConfig.AddressWords = 1u << 12;
  RunResult R1 = runProgram(Before, C);
  RunResult R2 = runProgram(After, C);
  EXPECT_EQ(R1.Behav, R2.Behav);
  EXPECT_EQ(R1.Behav.BehaviorKind, Behavior::Kind::Terminated);
}
