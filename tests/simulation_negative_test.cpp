//===- tests/simulation_negative_test.cpp - Obligation failure modes ------===//
//
// The simulation checker must reject every way a proof can go wrong; each
// test manufactures one specific violated obligation and asserts the
// checker names it.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "refinement/Simulation.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

SimulationSetup setupFor(const Program &Src, const Program &Tgt) {
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig.Model = ModelKind::QuasiConcrete;
  Setup.TgtConfig.Model = ModelKind::QuasiConcrete;
  Setup.SrcConfig.MemConfig.AddressWords = 1u << 12;
  Setup.TgtConfig.MemConfig.AddressWords = 1u << 12;
  return Setup;
}

} // namespace

TEST(SimulationNegative, InequivalentCallArgumentsAreRejected) {
  // Source passes p, target passes q: without relating the right blocks
  // the argument-equivalence obligation fails.
  Program Src = compile(R"(
extern bar(ptr x);
main() {
  var ptr p, ptr q;
  p = malloc(1);
  q = malloc(1);
  bar(p);
}
)");
  Program Tgt = compile(R"(
extern bar(ptr x);
main() {
  var ptr p, ptr q;
  p = malloc(1);
  q = malloc(1);
  bar(q);
}
)");
  SimulationSetup Setup = setupFor(Src, Tgt);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        // Relate 1~1 and 2~2: then source arg (1,0) vs target arg (2,0)
        // cannot be equivalent.
        if (!Inv.Alpha.add(1, 1) || !Inv.Alpha.add(2, 2))
          return "alpha";
        return std::nullopt;
      },
      nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("not equivalent"), std::string::npos);
}

TEST(SimulationNegative, InequivalentPublicContentsAreRejected) {
  Program Src = compile(R"(
extern bar();
main() {
  var ptr p;
  p = malloc(1);
  *p = 1;
  bar();
}
)");
  Program Tgt = compile(R"(
extern bar();
main() {
  var ptr p;
  p = malloc(1);
  *p = 2;
  bar();
}
)");
  SimulationSetup Setup = setupFor(Src, Tgt);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "alpha";
        return std::nullopt;
      },
      nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("contents differ"), std::string::npos);
}

TEST(SimulationNegative, ReturnWithChangedPrivateMemoryIsRejected) {
  // The function writes its private block after the call; dropping it is
  // fine, but claiming it still private with stale contents is not.
  Program Src = compile(R"(
extern bar();
main() {
  var ptr q;
  q = malloc(1);
  *q = 1;
  bar();
  *q = 2;
}
)");
  Program Tgt = compile(R"(
extern bar();
main() {
  var ptr q;
  q = malloc(1);
  *q = 1;
  bar();
  *q = 2;
}
)");
  SimulationSetup Setup = setupFor(Src, Tgt);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  ASSERT_EQ(Sim.expectCall(
                "bar",
                [](MemoryInvariant &Inv, Machine &SrcM, Machine &TgtM)
                    -> std::optional<std::string> {
                  if (auto E = Inv.addPrivateSrc(1, SrcM.memory()))
                    return E;
                  return Inv.addPrivateTgt(1, TgtM.memory());
                },
                nullptr),
            std::nullopt);
  // Keep the stale private sections: the post-call stores changed them.
  auto Err = Sim.expectReturn(nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("was modified"), std::string::npos);
}

TEST(SimulationNegative, DroppingPrivateBlocksAtReturnViolatesPrvEquality) {
  // =prv compares against the *entry* invariant: blocks privatized
  // mid-proof must be dropped by the end, but blocks private at entry must
  // not be.
  Program P = compile(R"(
extern bar();
main() {
  var ptr q;
  q = malloc(1);
  bar();
}
)");
  SimulationSetup Setup = setupFor(P, P);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  ASSERT_EQ(Sim.expectCall(
                "bar",
                [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
                    -> std::optional<std::string> {
                  return Inv.addPrivateSrc(1, SrcM.memory());
                },
                nullptr),
            std::nullopt);
  // Forget to drop the private block before returning.
  auto Err = Sim.expectReturn(nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("private memories at return"), std::string::npos);
}

TEST(SimulationNegative, RelatingBlocksOfDifferentSizesIsRejected) {
  Program Src = compile(R"(
extern bar();
main() {
  var ptr p;
  p = malloc(1);
  bar();
}
)");
  Program Tgt = compile(R"(
extern bar();
main() {
  var ptr p;
  p = malloc(2);
  bar();
}
)");
  SimulationSetup Setup = setupFor(Src, Tgt);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "alpha";
        return std::nullopt;
      },
      nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("size differs"), std::string::npos);
}

TEST(SimulationNegative, ValidityMismatchIsRejected) {
  Program Src = compile(R"(
extern bar();
main() {
  var ptr p;
  p = malloc(1);
  free(p);
  bar();
}
)");
  Program Tgt = compile(R"(
extern bar();
main() {
  var ptr p;
  p = malloc(1);
  bar();
}
)");
  SimulationSetup Setup = setupFor(Src, Tgt);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "alpha";
        return std::nullopt;
      },
      nullptr);
  ASSERT_NE(Err, std::nullopt);
  EXPECT_NE(Err->find("validity differs"), std::string::npos);
}

TEST(SimulationNegative, ConflictingAlphaExtensionIsAnAuthorError) {
  Program P = compile(R"(
extern bar();
main() {
  var ptr p, ptr q;
  p = malloc(1);
  q = malloc(1);
  bar();
}
)");
  SimulationSetup Setup = setupFor(P, P);
  SimulationChecker Sim(Setup);
  ASSERT_EQ(Sim.begin(nullptr), std::nullopt);
  auto Err = Sim.expectCall(
      "bar",
      [](MemoryInvariant &Inv, Machine &, Machine &)
          -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "alpha";
        if (Inv.Alpha.add(1, 2))
          return "conflicting pair accepted";
        return std::nullopt;
      },
      nullptr);
  EXPECT_EQ(Err, std::nullopt);
}
