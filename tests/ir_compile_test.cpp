//===- tests/ir_compile_test.cpp - AST->QIR compiler tests ----------------===//
//
// Structure of compiled modules (flat code, dense slots, valid blocks),
// behavior parity between the QIR engine and the reference AST walker, and
// the compile-once discipline: runProgram compiles once per call, and the
// refinement/simulation checkers compile exactly once per (program,
// instantiated context) pair no matter how many oracles and tapes they
// explore.
//
//===----------------------------------------------------------------------===//

#include "ir/Compile.h"

#include "core/Vm.h"
#include "refinement/Contexts.h"
#include "refinement/RefinementChecker.h"
#include "refinement/Simulation.h"
#include "semantics/AstInterp.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compileSource(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  EXPECT_TRUE(P.has_value()) << V.lastDiagnostics();
  return P ? std::move(*P) : Program{};
}

const char *LoopySource = R"(
global cell[2];

helper(ptr out, int n) {
  var int acc;
  acc = 0;
  while (n) {
    acc = acc + n;
    n = n - 1;
  }
  *out = acc;
}

main() {
  var ptr p, int i, int r;
  p = malloc(3);
  helper(p, 4);
  r = *p;
  if (r == 10) {
    output(r);
  } else {
    output(0);
  }
  i = (int) p;
  p = (ptr) i;
  free(p);
}
)";

/// Wraps a single hand-built function `main` around \p Body.
Program singleFunction(std::unique_ptr<Instr> Body,
                       std::vector<VarDecl> Locals = {}) {
  Program P;
  FunctionDecl F;
  F.Name = "main";
  F.Locals = std::move(Locals);
  F.Body = std::move(Body);
  P.Functions.push_back(std::move(F));
  return P;
}

} // namespace

TEST(IrCompileTest, CompiledModulesAreValid) {
  Program P = compileSource(LoopySource);
  auto M = qir::compileProgram(P);
  EXPECT_EQ(qir::validateModule(*M), "");
  ASSERT_EQ(M->Functions.size(), P.Functions.size());
  EXPECT_EQ(M->Source, &P);
}

TEST(IrCompileTest, ControlFlowIsFlattenedIntoBlocks) {
  Program P = compileSource(LoopySource);
  auto M = qir::compileProgram(P);
  const qir::QFunction *Helper = M->findFunction("helper");
  ASSERT_NE(Helper, nullptr);
  // The while loop became a conditional jump plus a back edge; no
  // instruction nests another.
  std::string Text = M->toString();
  EXPECT_NE(Text.find("jump.ifz"), std::string::npos) << Text;
  EXPECT_NE(Text.find("enter.seq"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ret"), std::string::npos) << Text;
  // Entry opens a block and all BlockStarts are sorted positions in code.
  ASSERT_FALSE(Helper->BlockStarts.empty());
  EXPECT_EQ(Helper->BlockStarts.front(), 0u);
  EXPECT_TRUE(std::is_sorted(Helper->BlockStarts.begin(),
                             Helper->BlockStarts.end()));
  EXPECT_LT(Helper->BlockStarts.back(), Helper->Code.size());
}

TEST(IrCompileTest, SlotIndicesAreFrameDense) {
  Program P = compileSource(LoopySource);
  auto M = qir::compileProgram(P);
  const qir::QFunction *Helper = M->findFunction("helper");
  ASSERT_NE(Helper, nullptr);
  // Parameters first, then locals; every slot named, no gaps.
  EXPECT_EQ(Helper->NumParams, 2u);
  EXPECT_EQ(Helper->NumDeclaredSlots, 3u);
  EXPECT_EQ(Helper->NumSlots, 3u);
  ASSERT_EQ(Helper->SlotNames.size(), Helper->NumSlots);
  EXPECT_EQ(Helper->SlotNames[0], "out");
  EXPECT_EQ(Helper->SlotNames[1], "n");
  EXPECT_EQ(Helper->SlotNames[2], "acc");
  ASSERT_EQ(Helper->ParamSlots.size(), 2u);
  EXPECT_EQ(Helper->ParamSlots[0], 0u);
  EXPECT_EQ(Helper->ParamSlots[1], 1u);
}

TEST(IrCompileTest, ConstantsArePredecodedAndDeduplicated) {
  Program P = compileSource(
      "main() { var int a, int b; a = 7; b = 7 + 7; output(b); }");
  auto M = qir::compileProgram(P);
  unsigned Sevens = 0;
  for (const Value &V : M->ConstPool)
    if (V.isInt() && V.intValue() == 7)
      ++Sevens;
  EXPECT_EQ(Sevens, 1u);
}

TEST(IrCompileTest, ExternCalleesKeepTheirNames) {
  Program P = compileSource("extern foo(ptr p);\nmain() { var ptr q; "
                            "q = malloc(2); foo(q); }");
  auto M = qir::compileProgram(P);
  EXPECT_EQ(qir::validateModule(*M), "");
  std::string Text = M->toString();
  EXPECT_NE(Text.find("call.extern foo/1"), std::string::npos) << Text;
}

TEST(IrCompileTest, UndeclaredAssignmentTargetsBecomeHiddenSlots) {
  // x is never declared: the walker's Env creates it on first assignment.
  std::vector<std::unique_ptr<Instr>> Stmts;
  Stmts.push_back(Instr::makeAssign(
      "x", RExp::makePure(Exp::makeIntLit(5))));
  Stmts.push_back(Instr::makeEffect(
      RExp::makeOutput(Exp::makeVar("x"))));
  Program P = singleFunction(Instr::makeSeq(std::move(Stmts)));

  auto M = qir::compileProgram(P);
  EXPECT_EQ(qir::validateModule(*M), "");
  const qir::QFunction *Main = M->findFunction("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->NumDeclaredSlots, 0u);
  EXPECT_EQ(Main->NumSlots, 1u);

  RunConfig C;
  RunResult R = runProgram(P, C);
  ASSERT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  ASSERT_EQ(R.Behav.Events.size(), 1u);
}

TEST(IrCompileTest, ReadingAnUnwrittenHiddenSlotFaultsLikeTheWalker) {
  std::vector<std::unique_ptr<Instr>> Stmts;
  Stmts.push_back(Instr::makeEffect(
      RExp::makeOutput(Exp::makeVar("ghost"))));
  Program P = singleFunction(Instr::makeSeq(std::move(Stmts)));

  RunConfig C;
  RunResult Qir = runProgram(P, C);
  RunResult Ast = runAstProgram(P, C);
  EXPECT_EQ(Qir.Behav.BehaviorKind, Behavior::Kind::Undefined);
  EXPECT_EQ(Qir.Behav.Reason, "read of undeclared variable 'ghost'");
  EXPECT_EQ(Ast.Behav.Reason, Qir.Behav.Reason);
  EXPECT_EQ(Ast.Steps, Qir.Steps);
}

TEST(IrCompileTest, UndeclaredGlobalsAndCalleesLowerToTraps) {
  std::vector<std::unique_ptr<Instr>> Stmts;
  Stmts.push_back(Instr::makeAssign(
      "x", RExp::makePure(Exp::makeGlobal("nosuch"))));
  Program P1 = singleFunction(Instr::makeSeq(std::move(Stmts)));
  auto M1 = qir::compileProgram(P1);
  EXPECT_NE(M1->toString().find(
                "trap \"read of undeclared global 'nosuch'\""),
            std::string::npos)
      << M1->toString();
  RunResult R1 = runProgram(P1, RunConfig{});
  EXPECT_EQ(R1.Behav.Reason, "read of undeclared global 'nosuch'");

  std::vector<std::unique_ptr<Instr>> Calls;
  Calls.push_back(Instr::makeCall("nowhere", {}));
  Program P2 = singleFunction(Instr::makeSeq(std::move(Calls)));
  RunResult R2 = runProgram(P2, RunConfig{});
  EXPECT_EQ(R2.Behav.Reason, "call to undeclared function 'nowhere'");
  RunResult A2 = runAstProgram(P2, RunConfig{});
  EXPECT_EQ(A2.Behav.Reason, R2.Behav.Reason);
  EXPECT_EQ(A2.Steps, R2.Steps);
}

TEST(IrCompileTest, ValidatorRejectsCorruptedModules) {
  Program P = compileSource(LoopySource);
  auto Shared = qir::compileProgram(P);
  // Break a jump target.
  qir::QirModule M = *Shared;
  for (qir::QFunction &F : M.Functions) {
    for (qir::QInstr &I : F.Code) {
      if (I.Opcode == qir::Op::Jump || I.Opcode == qir::Op::JumpIfZero) {
        I.A = static_cast<uint32_t>(F.Code.size()) + 17;
        EXPECT_NE(qir::validateModule(M), "");
        return;
      }
    }
  }
  FAIL() << "expected at least one jump in the compiled module";
}

TEST(IrCompileTest, EngineParityAcrossModelsOnTheSameModule) {
  Program P = compileSource(LoopySource);
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::Logical,
                          ModelKind::QuasiConcrete, ModelKind::EagerQuasi}) {
    RunConfig C;
    C.Model = Model;
    RunResult Qir = runProgram(P, C);
    RunResult Ast = runAstProgram(P, C);
    EXPECT_EQ(Qir.Behav, Ast.Behav)
        << modelKindName(Model) << "\nqir: " << Qir.Behav.toString()
        << "ast: " << Ast.Behav.toString();
    EXPECT_EQ(Qir.Behav.Reason, Ast.Behav.Reason) << modelKindName(Model);
    EXPECT_EQ(Qir.Steps, Ast.Steps) << modelKindName(Model);
  }
}

//===----------------------------------------------------------------------===//
// Compile-once discipline
//===----------------------------------------------------------------------===//

TEST(CompileOnceTest, RunProgramCompilesExactlyOncePerCall) {
  Program P = compileSource(LoopySource);
  uint64_t Before = qir::compilationsPerformed();
  runProgram(P, RunConfig{});
  EXPECT_EQ(qir::compilationsPerformed() - Before, 1u);
}

TEST(CompileOnceTest, MachinesShareACompiledModuleWithoutRecompiling) {
  Program P = compileSource(LoopySource);
  uint64_t Before = qir::compilationsPerformed();
  auto M = qir::compileProgram(P);
  RunConfig C;
  for (int Round = 0; Round < 5; ++Round) {
    RunResult R = runCompiled(M, C);
    EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  }
  EXPECT_EQ(qir::compilationsPerformed() - Before, 1u);
}

TEST(CompileOnceTest, RefinementCompilesOncePerProgramAndContext) {
  Program P = compileSource(LoopySource);
  Program Q = P.clone();
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &Q;
  // Two contexts, and a grid of oracles x tapes that forces many runs.
  Job.Contexts.push_back(ContextVariant::empty());
  Job.Contexts.push_back(ContextVariant::empty());
  Job.InputTapes = {{}, {1, 2}, {3}};
  uint64_t Before = qir::compilationsPerformed();
  RefinementReport R = checkRefinement(Job);
  // 2 contexts x 2 programs = 4 compilations; runs = 2 contexts x 2
  // programs x 2 default oracles x 3 tapes = 24.
  EXPECT_EQ(qir::compilationsPerformed() - Before, 4u);
  EXPECT_EQ(R.RunsPerformed, 24u);
  EXPECT_TRUE(R.Refines) << R.toString();
}

TEST(CompileOnceTest, SimulationCompilesOncePerSide) {
  Program P = compileSource(LoopySource);
  Program Q = P.clone();
  SimulationSetup Setup;
  Setup.Src = &P;
  Setup.Tgt = &Q;
  uint64_t Before = qir::compilationsPerformed();
  SimulationChecker Checker(Setup);
  EXPECT_EQ(qir::compilationsPerformed() - Before, 2u);
}
