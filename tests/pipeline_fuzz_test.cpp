//===- tests/pipeline_fuzz_test.cpp - Validated-pipeline fuzzing ----------===//
//
// End-to-end soundness fuzzing of the translation-validated optimizer:
// random well-typed programs (tests/ProgramGenerator.h) are pushed through
// random pipeline specs (PipelineSpec::random) with every application
// validated under all four memory models. Shipped passes must never be
// rejected, and the optimized program must still agree between the QIR
// engine and the reference AST walker (behavior, diagnostic reason, and
// step count) under every model.
//
// The trial count of the aggregate sweep scales with the environment:
// QCM_PIPELINE_FUZZ_TRIALS=1000 is the CI acceptance setting; the default
// keeps a local ctest run quick.
//
// The deliberately-buggy bug-dse canary is the negative control: on every
// program whose final store is observable, validation must reject it.
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "semantics/AstInterp.h"
#include "tools/ValidatedOpt.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace qcm;
using namespace qcm_tools;
using qcm_test::ProgramGenerator;

namespace {

Program compileOrFail(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << "generated program rejected:\n"
                  << V.lastDiagnostics() << "\n--- source ---\n"
                  << Source;
    return Program{};
  }
  return std::move(*P);
}

const std::vector<ModelKind> AllModels = {
    ModelKind::Concrete, ModelKind::Logical, ModelKind::QuasiConcrete,
    ModelKind::EagerQuasi};

/// Generated programs never call input() and declare no externs, so one
/// empty tape suffices and the adversary battery is vacuous; one random
/// oracle on top of first/last-fit keeps a trial in the milliseconds.
ValidationBudget fuzzBudget() {
  ValidationBudget B;
  B.RandomOracles = 1;
  B.InputTapes = {{}};
  return B;
}

/// QIR engine vs AST walker on \p P under every model. Returns "" or a
/// description of the first divergence.
std::string parityError(const Program &P) {
  for (ModelKind Model : AllModels) {
    RunConfig C;
    C.Model = Model;
    C.MemConfig.AddressWords = 1u << 10;
    C.Interp.StepLimit = 200'000;
    RunResult Qir = runProgram(P, C);
    RunResult Ast = runAstProgram(P, C);
    if (!(Qir.Behav == Ast.Behav) || Qir.Behav.Reason != Ast.Behav.Reason ||
        Qir.Steps != Ast.Steps)
      return "QIR/AST divergence under " + std::string(modelKindName(Model)) +
             "\n  qir: " + Qir.Behav.toString() +
             "  ast: " + Ast.Behav.toString();
  }
  return "";
}

/// Aggregate evidence that the sweep exercises the validator rather than
/// vacuously passing on pipelines that never change anything.
struct TrialStats {
  uint64_t ValidatedApplications = 0;
  uint64_t ValidationRuns = 0;
};

/// One fuzz trial: random program + random validated pipeline. Returns ""
/// on success, otherwise a self-contained failure description.
std::string runOneTrial(uint64_t Seed, TrialStats *Stats = nullptr) {
  ProgramGenerator Generator(Seed);
  std::string Source = Generator.generate();
  Program P = compileOrFail(Source);
  if (P.Functions.empty())
    return "seed " + std::to_string(Seed) + ": program did not compile";

  ValidatedOptOptions Opts;
  Opts.Spec = PipelineSpec::random(Seed);
  Opts.Models = AllModels;
  Opts.Budget = fuzzBudget();
  Opts.Minimize = true;

  std::string Error;
  std::optional<ValidatedOptResult> R = runValidatedPipeline(P, Opts, Error);
  if (!R)
    return "seed " + std::to_string(Seed) + ": pipeline '" +
           Opts.Spec.toString() + "' failed to build: " + Error;
  if (Stats) {
    Stats->ValidatedApplications += R->ValidatedApplications;
    Stats->ValidationRuns += R->ValidationRuns;
  }
  if (R->Pipeline.Failed)
    return "seed " + std::to_string(Seed) + ": shipped pass rejected by " +
           "validation!\n  pipeline: " + Opts.Spec.toString() +
           "\n  " + R->Pipeline.Failed->toString() +
           "\n  " + R->Pipeline.FailureDetail +
           "\n--- failing input ---\n" + R->FailingInput +
           "--- minimized ---\n" + R->MinimizedInput;

  std::string Parity = parityError(P);
  if (!Parity.empty())
    return "seed " + std::to_string(Seed) + ": pipeline '" +
           Opts.Spec.toString() + "' optimized program loses parity: " +
           Parity + "\n--- optimized ---\n" + printProgram(P);
  return "";
}

} // namespace

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, RandomValidatedPipelinesAreSound) {
  EXPECT_EQ(runOneTrial(GetParam()), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(3000, 3024));

// The aggregate sweep behind the acceptance criterion: with
// QCM_PIPELINE_FUZZ_TRIALS=1000 every shipped pass survives a thousand
// randomized validated pipelines.
TEST(PipelineFuzzSweep, ShippedPassesSurviveManyTrials) {
  unsigned Trials = 40;
  if (const char *Env = std::getenv("QCM_PIPELINE_FUZZ_TRIALS"))
    if (unsigned long Parsed = std::strtoul(Env, nullptr, 10))
      Trials = static_cast<unsigned>(Parsed);
  TrialStats Stats;
  for (unsigned I = 0; I < Trials; ++I) {
    uint64_t Seed = 9'000'000 + I;
    std::string Failure = runOneTrial(Seed, &Stats);
    ASSERT_EQ(Failure, "") << "trial " << I << " of " << Trials;
    if (I && I % 100 == 0)
      std::printf("  ... %u/%u trials clean\n", I, Trials);
  }
  // The sweep must have actually validated work, not skated through on
  // pipelines that never fired.
  EXPECT_GT(Stats.ValidatedApplications, Trials / 4);
  EXPECT_GT(Stats.ValidationRuns, Stats.ValidatedApplications);
  std::printf("  %u trials: %llu validated applications, %llu runs\n", Trials,
              (unsigned long long)Stats.ValidatedApplications,
              (unsigned long long)Stats.ValidationRuns);
}

// Negative control: the hidden bug-dse canary (drops the last top-level
// store of each function) must be rejected whenever that store feeds the
// observable trace — on every shape, not just the running example.
TEST(PipelineFuzzSweep, BuggyCanaryIsCaughtOnObservableStores) {
  const char *Shapes[] = {
      // The running example: stored constant flows straight to output.
      R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 42;
  r = *p;
  output(r);
}
)",
      // The observable store is the second of two to the same cell.
      R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  r = *p;
  *p = 2;
  r = *p;
  output(r);
}
)",
      // The store goes to a global that a later function reads.
      R"(
global cell;

helper() {
  var int v;
  v = *cell;
  output(v);
}

main() {
  *cell = 9;
  helper();
}
)",
  };
  for (const char *Source : Shapes) {
    Program P = compileOrFail(Source);
    ValidatedOptOptions Opts;
    std::string Error;
    std::optional<PipelineSpec> Spec = PipelineSpec::parse("bug-dse", Error);
    ASSERT_TRUE(Spec.has_value()) << Error;
    Opts.Spec = std::move(*Spec);
    Opts.Models = {ModelKind::QuasiConcrete};

    std::optional<ValidatedOptResult> R = runValidatedPipeline(P, Opts, Error);
    ASSERT_TRUE(R.has_value()) << Error;
    ASSERT_TRUE(R->Pipeline.Failed.has_value())
        << "canary escaped validation on:\n" << Source;
    EXPECT_EQ(R->Pipeline.Failed->Pass, "bug-dse");
    EXPECT_FALSE(R->MinimizedInput.empty());
  }
}
