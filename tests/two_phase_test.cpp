//===- tests/two_phase_test.cpp - Two-phase infinite/finite model ---------===//
//
// Unit tests for the Beck et al. (arXiv 2404.16143) two-phase model:
// infinite logical phase 1, the all-at-once concretization at the first
// pointer-to-integer cast, concretely-at-birth phase 2, and the places the
// two models genuinely disagree (a never-cast block acquiring a concrete
// footprint; exhaustion being unreachable before the transition).
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "memory/TwoPhaseMemory.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny(uint64_t Words) {
  MemoryConfig C;
  C.AddressWords = Words;
  return C;
}

} // namespace

TEST(TwoPhase, StartsInPhaseOneWithLogicalBlocks) {
  TwoPhaseMemory M(tiny(64));
  EXPECT_FALSE(M.inFinitePhase());
  Value P = M.allocate(3).value();
  EXPECT_FALSE(M.inFinitePhase());
  EXPECT_EQ(M.numConcreteBlocks(), 0u);
  std::optional<Block> B = M.getBlock(P.ptr().Block);
  ASSERT_TRUE(B.has_value());
  EXPECT_FALSE(B->Base.has_value());
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(TwoPhase, PhaseOneAllocationNeverFails) {
  // A 4-word space could hold at most 3 usable words, yet phase 1 happily
  // allocates far more than that: memory is infinite until the transition.
  TwoPhaseMemory M(tiny(4));
  for (int I = 0; I < 32; ++I)
    ASSERT_TRUE(M.allocate(8).ok());
  EXPECT_FALSE(M.inFinitePhase());
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(TwoPhase, FirstCastConcretizesEverything) {
  TwoPhaseMemory M(tiny(64));
  Value A = M.allocate(2).value();
  Value B = M.allocate(3).value();
  Value C = M.allocate(1).value();
  // Cast only B; the transition must concretize A and C as well.
  Outcome<Value> I = M.castPtrToInt(B);
  ASSERT_TRUE(I.ok());
  EXPECT_TRUE(M.inFinitePhase());
  EXPECT_EQ(M.numConcreteBlocks(), 3u);
  for (Value P : {A, B, C}) {
    std::optional<Block> Blk = M.getBlock(P.ptr().Block);
    ASSERT_TRUE(Blk.has_value());
    EXPECT_TRUE(Blk->Base.has_value());
  }
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(TwoPhase, TransitionConcretizesInAllocationOrder) {
  // First-fit placement in allocation order is deterministic: block 1 at
  // base 1, block 2 right after it.
  TwoPhaseMemory M(tiny(64));
  Value A = M.allocate(4).value();
  Value B = M.allocate(2).value();
  Word AddrB = M.castPtrToInt(B).value().intValue();
  Word AddrA = M.castPtrToInt(A).value().intValue();
  EXPECT_EQ(AddrA, 1u);
  EXPECT_EQ(AddrB, 5u);
}

TEST(TwoPhase, PhaseTwoAllocatesConcretelyAtBirth) {
  TwoPhaseMemory M(tiny(64));
  Value A = M.allocate(2).value();
  ASSERT_TRUE(M.castPtrToInt(A).ok());
  Value B = M.allocate(2).value();
  std::optional<Block> Blk = M.getBlock(B.ptr().Block);
  ASSERT_TRUE(Blk.has_value());
  EXPECT_TRUE(Blk->Base.has_value());
  EXPECT_EQ(M.numConcreteBlocks(), 2u);
}

TEST(TwoPhase, OutOfMemoryIsUnreachableInPhaseOne) {
  // The same allocation sizes that exhaust a 8-word space in phase 2
  // succeed freely in phase 1.
  TwoPhaseMemory M(tiny(8));
  ASSERT_TRUE(M.allocate(5).ok());
  ASSERT_TRUE(M.allocate(5).ok());
  EXPECT_FALSE(M.inFinitePhase());
}

TEST(TwoPhase, TransitionItselfCanExhaust) {
  // Two 5-word blocks cannot both be placed in an 8-word space: the first
  // cast — not any allocation — reports out-of-memory.
  TwoPhaseMemory M(tiny(8));
  Value A = M.allocate(5).value();
  ASSERT_TRUE(M.allocate(5).ok());
  Outcome<Value> I = M.castPtrToInt(A);
  ASSERT_FALSE(I.ok());
  EXPECT_TRUE(I.fault().isOutOfMemory());
}

TEST(TwoPhase, PhaseTwoAllocationCanExhaust) {
  TwoPhaseMemory M(tiny(8));
  Value A = M.allocate(5).value();
  ASSERT_TRUE(M.castPtrToInt(A).ok());
  Outcome<Value> B = M.allocate(5);
  ASSERT_FALSE(B.ok());
  EXPECT_TRUE(B.fault().isOutOfMemory());
}

TEST(TwoPhase, FreedBlocksAreNotConcretized) {
  TwoPhaseMemory M(tiny(8));
  Value A = M.allocate(5).value();
  Value B = M.allocate(2).value();
  ASSERT_TRUE(M.deallocate(A).ok());
  // A's 5 words are gone from the live set, so the transition fits B into
  // the tiny space without them.
  ASSERT_TRUE(M.castPtrToInt(B).ok());
  EXPECT_EQ(M.numConcreteBlocks(), 1u);
}

TEST(TwoPhase, NullCastDoesNotTransition) {
  // (int) NULL is 0 in phase 1 — and must NOT concretize the world.
  TwoPhaseMemory M(tiny(64));
  ASSERT_TRUE(M.allocate(2).ok());
  Outcome<Value> Zero = M.castPtrToInt(Value::makePtr(0, 0));
  ASSERT_TRUE(Zero.ok());
  EXPECT_EQ(Zero.value().intValue(), 0u);
  EXPECT_FALSE(M.inFinitePhase());
  EXPECT_EQ(M.numConcreteBlocks(), 0u);
}

TEST(TwoPhase, PhaseOneIntToPtrOfNonzeroIsUndefined) {
  TwoPhaseMemory M(tiny(64));
  ASSERT_TRUE(M.allocate(2).ok());
  Outcome<Value> P = M.castIntToPtr(Value::makeInt(5));
  ASSERT_FALSE(P.ok());
  EXPECT_TRUE(P.fault().isUndefined());
  EXPECT_FALSE(M.inFinitePhase());
}

TEST(TwoPhase, CastRoundTripsAfterTheTransition) {
  TwoPhaseMemory M(tiny(64));
  Value P = M.allocate(4).value();
  Word Addr =
      M.castPtrToInt(Value::makePtr(P.ptr().Block, 3)).value().intValue();
  Outcome<Value> Back = M.castIntToPtr(Value::makeInt(Addr));
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back.value(), Value::makePtr(P.ptr().Block, 3));
}

TEST(TwoPhase, CastOfFreedPointerIsUndefinedAndDoesNotTransition) {
  TwoPhaseMemory M(tiny(64));
  Value P = M.allocate(2).value();
  ASSERT_TRUE(M.deallocate(P).ok());
  Outcome<Value> I = M.castPtrToInt(P);
  ASSERT_FALSE(I.ok());
  EXPECT_TRUE(I.fault().isUndefined());
  EXPECT_FALSE(M.inFinitePhase());
}

TEST(TwoPhase, CloneCopiesThePhase) {
  TwoPhaseMemory M(tiny(64));
  Value P = M.allocate(2).value();
  ASSERT_TRUE(M.castPtrToInt(P).ok());
  std::unique_ptr<Memory> Copy = M.clone();
  auto *C = static_cast<TwoPhaseMemory *>(Copy.get());
  EXPECT_TRUE(C->inFinitePhase());
  EXPECT_EQ(C->numConcreteBlocks(), 1u);
  EXPECT_EQ(C->checkConsistency(), std::nullopt);
  // Phase-2 allocation in the clone stays concrete-at-birth.
  Value Q = C->allocate(1).value();
  std::optional<Block> B = C->getBlock(Q.ptr().Block);
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(B->Base.has_value());
}

TEST(TwoPhase, ResetReturnsToPhaseOne) {
  TwoPhaseMemory M(tiny(64));
  Value P = M.allocate(2).value();
  ASSERT_TRUE(M.castPtrToInt(P).ok());
  ASSERT_TRUE(M.inFinitePhase());
  M.reset();
  EXPECT_FALSE(M.inFinitePhase());
  EXPECT_EQ(M.numConcreteBlocks(), 0u);
  Value Q = M.allocate(2).value();
  std::optional<Block> B = M.getBlock(Q.ptr().Block);
  ASSERT_TRUE(B.has_value());
  EXPECT_FALSE(B->Base.has_value());
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(TwoPhase, OracleControlsTransitionPlacement) {
  TwoPhaseMemory M(tiny(16), std::make_unique<LastFitOracle>());
  Value P = M.allocate(4).value();
  Word Addr = M.castPtrToInt(P).value().intValue();
  // Last-fit pushes the block to the top of the usable space [1, 15).
  EXPECT_EQ(Addr, 11u);
}

TEST(TwoPhase, RunsThroughTheInterpreter) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var ptr p, ptr q, int a, int b;
  p = malloc(1);
  q = malloc(1);
  *p = 7;
  a = (int) q;
  b = *p;
  output(b);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::TwoPhase;
  C.MemConfig.AddressWords = 64;
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  EXPECT_EQ(R.Behav.Events, std::vector<Event>{Event::output(7)});
  EXPECT_FALSE(R.ConsistencyError.has_value());
}

TEST(TwoPhase, InterpreterSeesOomOnlyAtOrAfterTheCast) {
  // 300 words allocated in a 16-word space: fine until the cast, which
  // exhausts; the same program never reaches out() so the behavior is the
  // empty-prefix no-behavior.
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var ptr p, int i, int a;
  i = 30;
  while (i) {
    p = malloc(10);
    i = i - 1;
  }
  a = (int) p;
  output(a);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::TwoPhase;
  C.MemConfig.AddressWords = 16;
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::OutOfMemory);
  EXPECT_TRUE(R.Behav.Events.empty());
}
