//===- tests/interp_test.cpp - Interpreter / operational semantics tests --===//

#include "core/Vm.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  EXPECT_TRUE(P.has_value()) << V.lastDiagnostics();
  return std::move(*P);
}

RunConfig quasiConfig() {
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.MemConfig.AddressWords = 1u << 16;
  return C;
}

Behavior runQuasi(const std::string &Source,
                  std::vector<Word> Inputs = {}) {
  Program P = compile(Source);
  RunConfig C = quasiConfig();
  C.Interp.InputTape = std::move(Inputs);
  return runProgram(P, C).Behav;
}

std::vector<Event> outs(std::initializer_list<Word> Values) {
  std::vector<Event> Events;
  for (Word V : Values)
    Events.push_back(Event::output(V));
  return Events;
}

} // namespace

TEST(Interp, ArithmeticAndOutput) {
  Behavior B = runQuasi("main() { var int a; a = 2 + 3 * 4; output(a); }");
  EXPECT_EQ(B, Behavior::terminated(outs({14})));
}

TEST(Interp, WrapAroundArithmetic) {
  Behavior B = runQuasi(
      "main() { var int a; a = 0 - 1; output(a & 4294967295); }");
  EXPECT_EQ(B, Behavior::terminated(outs({0xffffffffu})));
}

TEST(Interp, InputProducesEventsAndValues) {
  Behavior B = runQuasi(
      "main() { var int a, int b; a = input(); b = input(); output(a + b); }",
      {3, 4});
  std::vector<Event> Expected = {Event::input(3), Event::input(4),
                                 Event::output(7)};
  EXPECT_EQ(B, Behavior::terminated(Expected));
}

TEST(Interp, ExhaustedInputTapeYieldsZero) {
  Behavior B = runQuasi("main() { var int a; a = input(); output(a); }");
  std::vector<Event> Expected = {Event::input(0), Event::output(0)};
  EXPECT_EQ(B, Behavior::terminated(Expected));
}

TEST(Interp, IfTakesCorrectBranch) {
  Behavior B = runQuasi(R"(
main() {
  var int a;
  a = input();
  if (a == 7) { output(1); } else { output(2); }
  if (a) { output(3); }
}
)",
                        {7});
  std::vector<Event> Expected = {Event::input(7), Event::output(1),
                                 Event::output(3)};
  EXPECT_EQ(B, Behavior::terminated(Expected));
}

TEST(Interp, WhileLoopComputes) {
  Behavior B = runQuasi(R"(
main() {
  var int n, int acc;
  n = 5;
  acc = 0;
  while (n) {
    acc = acc + n;
    n = n - 1;
  }
  output(acc);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({15})));
}

TEST(Interp, InfiniteLoopHitsStepLimit) {
  Program P = compile("main() { var int x; x = 1; while (x) { x = 1; } }");
  RunConfig C = quasiConfig();
  C.Interp.StepLimit = 10'000;
  Behavior B = runProgram(P, C).Behav;
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::StepLimit);
}

TEST(Interp, FunctionCallsPassByValue) {
  Behavior B = runQuasi(R"(
helper(int a) {
  var int b;
  b = a * 2;
  output(b);
}
main() {
  var int a;
  a = 10;
  helper(a);
  output(a);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({20, 10})));
}

TEST(Interp, ReturnValuesViaPointerArguments) {
  // The paper's convention: results flow back through pointer parameters.
  Behavior B = runQuasi(R"(
addTo(ptr dst, int v) {
  var int cur;
  cur = *dst;
  *dst = cur + v;
}
main() {
  var ptr cell, int r;
  cell = malloc(1);
  *cell = 5;
  addTo(cell, 37);
  r = *cell;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({42})));
}

TEST(Interp, RecursionWorks) {
  Behavior B = runQuasi(R"(
fact(ptr acc, int n) {
  var int cur;
  if (n) {
    cur = *acc;
    *acc = cur * n;
    fact(acc, n - 1);
  }
}
main() {
  var ptr acc, int r;
  acc = malloc(1);
  *acc = 1;
  fact(acc, 5);
  r = *acc;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({120})));
}

TEST(Interp, NullDereferenceIsUndefined) {
  Behavior B = runQuasi(
      "main() { var ptr p, int a; p = (ptr) 0; a = *p; output(a); }");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
  EXPECT_TRUE(B.Events.empty());
}

TEST(Interp, FreeNullIsAllowed) {
  Behavior B =
      runQuasi("main() { var ptr p; p = (ptr) 0; free(p); output(1); }");
  EXPECT_EQ(B, Behavior::terminated(outs({1})));
}

TEST(Interp, UseAfterFreeIsUndefined) {
  Behavior B = runQuasi(
      "main() { var ptr p, int a; p = malloc(1); free(p); a = *p; }");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Interp, EventsBeforeUndefinedBehaviorAreKept) {
  Behavior B = runQuasi(R"(
main() {
  var ptr p, int a;
  output(1);
  output(2);
  p = (ptr) 0;
  a = *p;
  output(3);
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
  EXPECT_EQ(B.Events, outs({1, 2}));
}

TEST(Interp, GlobalsAreSharedAcrossFunctions) {
  Behavior B = runQuasi(R"(
global counter;
bump() {
  var int c;
  c = *counter;
  *counter = c + 1;
}
main() {
  var int r;
  bump();
  bump();
  bump();
  r = *counter;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({3})));
}

TEST(Interp, PointerArithmeticIndexesBlocks) {
  Behavior B = runQuasi(R"(
main() {
  var ptr base, ptr q, int r;
  base = malloc(4);
  *(base + 2) = 7;
  q = base + 3;
  *q = 9;
  r = *(base + 2);
  output(r);
  r = *(base + 3);
  output(r);
  output(q - base);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({7, 9, 3})));
}

TEST(Interp, PointerEqualitySemantics) {
  Behavior B = runQuasi(R"(
main() {
  var ptr p, ptr q;
  p = malloc(1);
  q = malloc(1);
  output(p == p);
  output(p == q);
  output(p == (p + 0));
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({1, 0, 1})));
}

TEST(Interp, SubtractionAcrossBlocksIsUndefined) {
  Behavior B = runQuasi(R"(
main() {
  var ptr p, ptr q, int d;
  p = malloc(1);
  q = malloc(1);
  d = q - p;
  output(d);
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Interp, DanglingPointerEqualityIsUndefinedAcrossBlocks) {
  // p == q across blocks requires both addresses valid (Section 4).
  Behavior B = runQuasi(R"(
main() {
  var ptr p, ptr q, int r;
  p = malloc(1);
  q = malloc(1);
  free(p);
  r = p == q;
  output(r);
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Interp, SameBlockEqualityOfDanglingPointersIsDefined) {
  // Same-block comparison has no validity requirement: p == p holds even
  // for a pointer to a freed block — a refinement of ISO C (Section 4).
  Behavior B = runQuasi(R"(
main() {
  var ptr p, int r;
  p = malloc(1);
  free(p);
  r = p == p;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({1})));
}

//===----------------------------------------------------------------------===//
// Dynamic type checking (Section 6.1)
//===----------------------------------------------------------------------===//

TEST(Interp, LoadingPointerIntoIntVariableIsUndefined) {
  Behavior B = runQuasi(R"(
main() {
  var ptr cell, ptr q, int a;
  cell = malloc(1);
  q = malloc(1);
  *cell = q;
  a = *cell;
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Interp, LoadingIntegerIntoPtrVariableIsUndefined) {
  Behavior B = runQuasi(R"(
main() {
  var ptr cell, ptr q;
  cell = malloc(1);
  *cell = 5;
  q = *cell;
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Interp, LoadingMatchingKindsIsFine) {
  Behavior B = runQuasi(R"(
main() {
  var ptr cell, ptr q, ptr r, int a;
  cell = malloc(1);
  q = malloc(1);
  *q = 11;
  *cell = q;
  r = *cell;
  a = *r;
  output(a);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({11})));
}

//===----------------------------------------------------------------------===//
// Integer-pointer casts through the language
//===----------------------------------------------------------------------===//

TEST(Interp, CastRoundTripPreservesAccess) {
  Behavior B = runQuasi(R"(
main() {
  var ptr p, ptr q, int a, int r;
  p = malloc(2);
  *(p + 1) = 33;
  a = (int) p;
  q = (ptr) (a + 1);
  r = *q;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({33})));
}

TEST(Interp, CastGuessIsUndefinedWhenNothingRealized) {
  Behavior B = runQuasi(R"(
main() {
  var ptr p, ptr forged;
  p = malloc(1);
  forged = (ptr) 1;
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Interp, CastArithmeticOnAddresses) {
  // Arbitrary arithmetic on a cast pointer is fully defined — the headline
  // capability of the quasi-concrete model. A pointer survives an
  // encode/decode detour through unrelated arithmetic.
  Behavior B = runQuasi(R"(
main() {
  var ptr p, ptr q, int a, int b, int back, int r;
  p = malloc(1);
  q = malloc(1);
  *p = 5;
  a = (int) p;
  b = (int) q;
  back = (a + b) - b;
  q = (ptr) back;
  r = *q;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({5})));
}

TEST(Interp, StepCountsAreReported) {
  Program P = compile("main() { var int x; x = 1 + 1; }");
  RunConfig C = quasiConfig();
  RunResult R = runProgram(P, C);
  EXPECT_GT(R.Steps, 0u);
  EXPECT_EQ(R.ConsistencyError, std::nullopt);
}

//===----------------------------------------------------------------------===//
// The same programs under all three models
//===----------------------------------------------------------------------===//

class AllModels : public ::testing::TestWithParam<ModelKind> {};

TEST_P(AllModels, PureComputationAgrees) {
  Program P = compile(R"(
main() {
  var int n, int acc;
  n = input();
  acc = 1;
  while (n) {
    acc = acc * n;
    n = n - 1;
  }
  output(acc);
}
)");
  RunConfig C;
  C.Model = GetParam();
  C.MemConfig.AddressWords = 1u << 16;
  C.Interp.InputTape = {6};
  Behavior B = runProgram(P, C).Behav;
  std::vector<Event> Expected = {Event::input(6), Event::output(720)};
  EXPECT_EQ(B, Behavior::terminated(Expected));
}

TEST_P(AllModels, HeapReadWriteAgrees) {
  Program P = compile(R"(
main() {
  var ptr p, int r;
  p = malloc(3);
  *(p + 1) = 21;
  r = *(p + 1);
  output(r * 2);
  free(p);
}
)");
  RunConfig C;
  C.Model = GetParam();
  C.MemConfig.AddressWords = 1u << 16;
  Behavior B = runProgram(P, C).Behav;
  EXPECT_EQ(B, Behavior::terminated(outs({42})));
}

TEST_P(AllModels, NullDereferenceFaults) {
  Program P = compile("main() { var ptr p, int a; p = (ptr) 0; a = *p; }");
  RunConfig C;
  C.Model = GetParam();
  C.MemConfig.AddressWords = 1u << 16;
  Behavior B = runProgram(P, C).Behav;
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(ModelKind::Concrete,
                                           ModelKind::Logical,
                                           ModelKind::QuasiConcrete));

//===----------------------------------------------------------------------===//
// External handlers (host-level contexts)
//===----------------------------------------------------------------------===//

TEST(Interp, ExternalHandlerRunsAndMutatesMemory) {
  Program P = compile(R"(
extern poke(ptr x);
main() {
  var ptr p, int r;
  p = malloc(1);
  *p = 1;
  poke(p);
  r = *p;
  output(r);
}
)");
  RunConfig C = quasiConfig();
  C.Handlers["poke"] = [](Machine &M,
                          const std::vector<Value> &Args) -> Outcome<Unit> {
    return M.memory().store(Args[0], Value::makeInt(99));
  };
  Behavior B = runProgram(P, C).Behav;
  EXPECT_EQ(B, Behavior::terminated(outs({99})));
}

TEST(Interp, UnhandledExternIsANoOp) {
  Program P = compile(R"(
extern mystery();
main() {
  mystery();
  output(5);
}
)");
  Behavior B = runProgram(P, quasiConfig()).Behav;
  EXPECT_EQ(B, Behavior::terminated(outs({5})));
}
