//===- tests/support_test.cpp - Support library tests ---------------------===//

#include "support/Diagnostics.h"
#include "support/Fault.h"
#include "support/Ints.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace qcm;

TEST(Ints, WrapAroundArithmetic) {
  EXPECT_EQ(wrapAdd(0xffffffffu, 1), 0u);
  EXPECT_EQ(wrapSub(0, 1), 0xffffffffu);
  EXPECT_EQ(wrapMul(0x80000000u, 2), 0u);
  EXPECT_EQ(wrapAdd(3, 4), 7u);
  EXPECT_EQ(wrapSub(10, 3), 7u);
  EXPECT_EQ(wrapMul(6, 7), 42u);
}

TEST(Ints, SignedReinterpretation) {
  EXPECT_EQ(asSigned(0xffffffffu), -1);
  EXPECT_EQ(asSigned(0x7fffffffu), 0x7fffffff);
}

TEST(Rng, DeterministicStreams) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
    (void)C.next();
  }
  Rng D(42), E(43);
  bool Diverged = false;
  for (int I = 0; I < 10; ++I)
    Diverged |= D.next() != E.next();
  EXPECT_TRUE(Diverged);
}

TEST(Rng, NextBelowIsInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Outcome, SuccessAndFaults) {
  Outcome<int> Ok(5);
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(Ok.value(), 5);

  Outcome<int> Undef = Outcome<int>::undefined("bad");
  ASSERT_FALSE(Undef.ok());
  EXPECT_TRUE(Undef.fault().isUndefined());
  EXPECT_EQ(Undef.fault().Reason, "bad");

  Outcome<int> Oom = Outcome<int>::outOfMemory("full");
  ASSERT_FALSE(Oom.ok());
  EXPECT_TRUE(Oom.fault().isOutOfMemory());

  Outcome<Unit> Propagated = Oom.propagate<Unit>();
  ASSERT_FALSE(Propagated.ok());
  EXPECT_TRUE(Propagated.fault().isOutOfMemory());
}

TEST(Diagnostics, CollectsAndFormats) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc{3, 7}, "unexpected thing");
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_NE(Diags.toString().find("3:7"), std::string::npos);
  EXPECT_NE(Diags.toString().find("unexpected thing"), std::string::npos);
}

TEST(Diagnostics, InvalidLocRendersAsUnknown) {
  Diagnostic D{SourceLoc{}, "boom"};
  EXPECT_NE(D.toString().find("<unknown>"), std::string::npos);
}
