#!/usr/bin/env python3
"""End-to-end observability pipeline checks for the qcm tools.

Drives the acceptance pipeline of the span profiler work:

* qcm-check --sweep --jobs=N --profile=FILE --metrics-out=FILE --progress
  produces a schema-valid Chrome trace and metrics document (validated by
  tools/check_trace_schema.py) and paints progress lines for both phases;
* the metrics "aggregate" section is identical at every --jobs level (the
  pool section is the only thread-count-dependent part);
* with profiling compiled in, grid spans land on named worker tracks; with
  it compiled out (-DQCM_PROFILE_ENABLED=0), the trace is empty but still
  valid and the flags still succeed;
* qcm-run --inject + --trace=FILE tags the forced fault and the mirrored
  allocation-failure event with "injected":true, and an uninjected run
  emits no such field (regression: injected exhaustion must be separable
  from organic exhaustion in exported traces).

Usage: tool_profile_test.py QCM_CHECK QCM_RUN SCHEMA_PY SRC_QCM TGT_QCM
"""

import json
import os
import subprocess
import sys
import tempfile

QCM_CHECK, QCM_RUN, SCHEMA_PY = sys.argv[1], sys.argv[2], sys.argv[3]
SRC, TGT = sys.argv[4], sys.argv[5]
CHECK_OPTIONS = ["--sweep", "--words=6", "--timeout-ms=10000"]


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True)


def main():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        # -- The full pipeline at --jobs=8 ------------------------------
        trace_path = os.path.join(tmp, "profile.json")
        metrics_path = os.path.join(tmp, "metrics.json")
        full = run([QCM_CHECK, *CHECK_OPTIONS, "--jobs=8",
                    f"--profile={trace_path}",
                    f"--metrics-out={metrics_path}", "--progress",
                    SRC, TGT])
        if full.returncode not in (0, 1):
            print(f"profiled run failed unexpectedly: {full.stderr}")
            sys.exit(1)
        for phase in ("[grid]", "[sweep]"):
            if phase not in full.stderr:
                failures.append(
                    f"--progress painted no {phase} line: {full.stderr!r}")

        schema = run([sys.executable, SCHEMA_PY, trace_path, metrics_path])
        if schema.returncode != 0:
            failures.append(f"schema validation failed:\n{schema.stderr}")

        with open(metrics_path) as f:
            metrics = json.load(f)
        trace = json.load(open(trace_path))
        if metrics["profile"]["enabled"]:
            # Compiled-in: the grid must have recorded spans, and with 8
            # workers over a multi-cell grid at least one span must sit on
            # a named worker track.
            if metrics["profile"]["spans"] == 0:
                failures.append("profiling enabled but zero spans recorded")
            names = {e["args"]["name"] for e in trace["traceEvents"]
                     if e["ph"] == "M"}
            if not any(n.startswith("worker-") for n in names):
                failures.append(f"no worker tracks in trace: {names}")
            span_tids = {e["tid"] for e in trace["traceEvents"]
                         if e["ph"] == "X"}
            worker_tids = {e["tid"] for e in trace["traceEvents"]
                           if e["ph"] == "M"
                           and e["args"]["name"].startswith("worker-")}
            if not (span_tids & worker_tids):
                failures.append("no spans landed on any worker thread")
        else:
            # Compiled out: the flags still work, the trace is just empty.
            if trace["traceEvents"]:
                failures.append("compiled-out build recorded trace events")

        # -- Aggregate identity across --jobs ---------------------------
        aggregates = {}
        for jobs in (1, 2, 4, 8):
            path = os.path.join(tmp, f"metrics-j{jobs}.json")
            r = run([QCM_CHECK, *CHECK_OPTIONS, f"--jobs={jobs}",
                     f"--metrics-out={path}", SRC, TGT])
            if r.returncode != full.returncode:
                failures.append(f"--jobs={jobs}: exit {r.returncode} "
                                f"!= {full.returncode}")
            if r.stdout != full.stdout:
                failures.append(f"--jobs={jobs}: report differs")
            with open(path) as f:
                aggregates[jobs] = json.load(f)["aggregate"]
        for jobs, aggregate in aggregates.items():
            if aggregate != aggregates[1]:
                failures.append(
                    f"--jobs={jobs} aggregate differs from --jobs=1:\n"
                    f"{aggregates[1]}\nvs\n{aggregate}")

        # -- --inject + --trace tag injected events ---------------------
        jsonl = os.path.join(tmp, "injected.jsonl")
        injected = run([QCM_RUN, "--model=quasi", "--inject=cast:1",
                        f"--trace={jsonl}", SRC])
        if injected.returncode != 4:
            failures.append(
                f"injected run: expected exit 4, got {injected.returncode}")
        events = [json.loads(line) for line in open(jsonl)]
        tagged = [e for e in events if e.get("injected") is True]
        if not any(e["kind"] == "fault" for e in tagged):
            failures.append(f"no injected fault event in trace: {events}")
        untagged_faults = [e for e in events
                           if e["kind"] == "fault" and "injected" not in e]
        if untagged_faults:
            failures.append(
                f"fault events missing the injected tag: {untagged_faults}")

        # Alloc injection also mirrors the model's allocation-failure
        # bookkeeping; the mirrored event must carry the tag too.
        alloc = run([QCM_RUN, "--model=quasi", "--inject=alloc:1",
                     f"--trace={jsonl}", SRC])
        if alloc.returncode != 4:
            failures.append(
                f"alloc injection: expected exit 4, got {alloc.returncode}")
        events = [json.loads(line) for line in open(jsonl)]
        if not any(e["kind"] == "alloc" and e.get("injected") is True
                   for e in events):
            failures.append(
                f"no injected alloc-failure event in trace: {events}")

        organic = run([QCM_RUN, "--model=quasi",
                       f"--trace={jsonl}", SRC])
        if organic.returncode != 0:
            failures.append(
                f"organic run: expected exit 0, got {organic.returncode}")
        events = [json.loads(line) for line in open(jsonl)]
        if any("injected" in e for e in events):
            failures.append("organic run emitted an 'injected' field "
                            "(must only appear on injected events)")

    if failures:
        print("\n\n".join(failures))
        sys.exit(1)
    print("observability pipeline assertions passed")


if __name__ == "__main__":
    main()
