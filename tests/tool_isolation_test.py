#!/usr/bin/env python3
"""End-to-end tests for qcm-check's --isolate=process backend.

Covers the contracts docs/ISOLATION.md promises at the tool level:

* crash-free grids produce byte-identical reports under --isolate=thread
  and --isolate=process at every --jobs level, with and without --sweep;
* a worker crash (the QCM_CRASH_AT canary) quarantines the cell: the run
  completes, the report carries the QUARANTINED banner, the exit code is
  6, the journal records the quarantine, and a later --resume replays it
  without re-executing the known-crashing cell;
* an externally kill -9'd worker is restarted and the run still completes;
* a SIGKILLed supervisor leaves a resumable journal whose resumed report
  is byte-identical to an uninterrupted run;
* the new flags validate their inputs (exit 2).

Canary scenarios are skipped (with a note) against a binary compiled
without testing hooks (Release without -DQCM_TESTING_HOOKS=ON).

Usage: tool_isolation_test.py QCM_CHECK SRC_QCM TGT_QCM
"""

import os
import signal
import subprocess
import sys
import tempfile
import time

QCM_CHECK, SRC, TGT = sys.argv[1], sys.argv[2], sys.argv[3]

# Sized so one grid cell runs ~0.5s: long enough for the worker-killer to
# land a SIGKILL mid-cell, short enough to keep the suite quick.
SLOW_PROGRAM = """\
main() {
  var int i, int x;
  i = 20000000;
  x = 0;
  while (i) {
    x = x + i;
    i = i - 1;
  }
  output(x);
}
"""

failures = []


def check(cond, message):
    if not cond:
        failures.append(message)


def run(argv, env_extra=None):
    env = dict(os.environ)
    env.pop("QCM_CRASH_AT", None)
    env.pop("QCM_CRASH_KIND", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(argv, capture_output=True, text=True, env=env)


def hooks_armed():
    """Probe whether the binary was compiled with testing hooks: a canary
    on cell 0 must quarantine something under the process backend."""
    probe = run(
        [QCM_CHECK, "--isolate=process", "--no-adversaries", SRC, TGT],
        env_extra={"QCM_CRASH_AT": "0"},
    )
    return "QUARANTINED" in probe.stdout


def worker_pids(supervisor_pid):
    """Direct children of the supervisor running in --worker mode."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as f:
                stat = f.read().split()
            if int(stat[3]) != supervisor_pid:
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as f:
                cmdline = f.read()
            if b"--worker" in cmdline:
                pids.append(int(entry))
        except (OSError, ValueError, IndexError):
            continue
    return pids


def test_backend_identity():
    variants = [[], ["--sweep"]]
    for extra in variants:
        baseline = None
        for jobs in (1, 2, 4, 8):
            args = [f"--jobs={jobs}", *extra, SRC, TGT]
            thread = run([QCM_CHECK, "--isolate=thread", *args])
            process = run([QCM_CHECK, "--isolate=process", *args])
            label = f"jobs={jobs} extra={extra}"
            check(
                thread.returncode == process.returncode,
                f"{label}: exit {thread.returncode} != {process.returncode}",
            )
            check(
                thread.stdout == process.stdout,
                f"{label}: thread and process reports differ\n"
                f"--- thread ---\n{thread.stdout}\n"
                f"--- process ---\n{process.stdout}",
            )
            if baseline is None:
                baseline = thread.stdout
            check(
                thread.stdout == baseline,
                f"{label}: report differs across --jobs levels",
            )


def test_flag_validation():
    bad = run([QCM_CHECK, "--isolate=fiber", SRC, TGT])
    check(bad.returncode == 2, f"--isolate=fiber: exit {bad.returncode}")
    check("invalid --isolate" in bad.stderr,
          f"--isolate=fiber: missing diagnostic: {bad.stderr!r}")
    bad = run([QCM_CHECK, "--isolate-retries=1", SRC, TGT])
    check(bad.returncode == 2,
          f"--isolate-retries without process: exit {bad.returncode}")
    bad = run([QCM_CHECK, "--journal-sync", SRC, TGT])
    check(bad.returncode == 2,
          f"--journal-sync without journal: exit {bad.returncode}")


def test_canary_quarantine(tmp):
    journal = os.path.join(tmp, "quarantine.jsonl")
    crashed = run(
        [QCM_CHECK, "--isolate=process", f"--journal={journal}", SRC, TGT],
        env_extra={"QCM_CRASH_AT": "1"},
    )
    check(crashed.returncode == 6,
          f"canary run: expected exit 6, got {crashed.returncode}\n"
          f"{crashed.stdout}{crashed.stderr}")
    check("QUARANTINED" in crashed.stdout,
          f"canary run: missing QUARANTINED banner:\n{crashed.stdout}")
    with open(journal, "r", encoding="utf-8") as f:
        journal_text = f.read()
    check('"quarantined":true' in journal_text,
          f"canary run: journal lacks a quarantine record:\n{journal_text}")

    # Resume WITHOUT the canary: the quarantined cell must be replayed
    # from the journal, not re-executed (re-execution would succeed and
    # change the report).
    resumed = run(
        [QCM_CHECK, "--isolate=process", f"--resume={journal}", SRC, TGT]
    )
    check(resumed.returncode == 6,
          f"resume after quarantine: exit {resumed.returncode}")
    check(resumed.stdout == crashed.stdout,
          "resume after quarantine: report differs (quarantined cell was "
          f"re-executed?)\n--- crashed ---\n{crashed.stdout}\n"
          f"--- resumed ---\n{resumed.stdout}")

    # The thread backend replays the same journal identically: quarantine
    # records are backend-portable.
    thread_resumed = run([QCM_CHECK, f"--resume={journal}", SRC, TGT])
    check(thread_resumed.stdout == crashed.stdout,
          "thread-backend resume of a quarantine journal differs")

    # --journal-sync is report-neutral.
    sync_journal = os.path.join(tmp, "sync.jsonl")
    synced = run([QCM_CHECK, "--isolate=process", "--journal-sync",
                  f"--journal={sync_journal}", SRC, TGT])
    plain = run([QCM_CHECK, "--isolate=process", SRC, TGT])
    check(synced.stdout == plain.stdout,
          "--journal-sync changed the report")


def test_worker_kill(tmp):
    slow = os.path.join(tmp, "slow.qcm")
    with open(slow, "w", encoding="utf-8") as f:
        f.write(SLOW_PROGRAM)
    env = dict(os.environ)
    env.pop("QCM_CRASH_AT", None)
    proc = subprocess.Popen(
        [QCM_CHECK, "--isolate=process", "--steps=200000000", slow, slow],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    killed = False
    deadline = time.monotonic() + 30
    while proc.poll() is None and time.monotonic() < deadline:
        victims = worker_pids(proc.pid)
        if victims and not killed:
            os.kill(victims[0], signal.SIGKILL)
            killed = True
        time.sleep(0.02)
    try:
        out, err = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        failures.append("worker-kill: run did not finish after the kill")
        return
    check(killed, "worker-kill: never saw a --worker child to kill")
    # The killed cell is retried on a restarted worker; with default
    # retries the run must still complete and (the cell being healthy on
    # retry) report a positive verdict — exit 0, or 6 if the scheduler
    # managed to kill the same cell's retries repeatedly.
    check(proc.returncode in (0, 6),
          f"worker-kill: exit {proc.returncode}\n{out}{err}")
    check(out.startswith("REFINES"),
          f"worker-kill: unexpected report after kill:\n{out}")


def test_supervisor_kill_then_resume(tmp):
    slow = os.path.join(tmp, "slow2.qcm")
    with open(slow, "w", encoding="utf-8") as f:
        f.write(SLOW_PROGRAM)
    args = ["--steps=200000000", slow, slow]
    full = run([QCM_CHECK, "--isolate=process", *args])
    check(full.returncode == 0,
          f"uninterrupted slow run failed: {full.stderr}")

    journal = os.path.join(tmp, "interrupted.jsonl")
    env = dict(os.environ)
    env.pop("QCM_CRASH_AT", None)
    proc = subprocess.Popen(
        [QCM_CHECK, "--isolate=process", f"--journal={journal}", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    time.sleep(0.7)  # mid-grid for a multi-second run
    interrupted = proc.poll() is None
    if interrupted:
        os.kill(proc.pid, signal.SIGKILL)
    proc.communicate()
    # Orphaned workers must not linger once the supervisor is gone and
    # their stdin pipes have collapsed.
    deadline = time.monotonic() + 10
    while worker_pids(proc.pid) and time.monotonic() < deadline:
        time.sleep(0.05)

    resumed = run(
        [QCM_CHECK, "--isolate=process", f"--resume={journal}", *args]
    )
    check(resumed.returncode == 0,
          f"resume after supervisor SIGKILL: exit {resumed.returncode}\n"
          f"{resumed.stderr}")
    check(resumed.stdout == full.stdout,
          "resume after supervisor SIGKILL: report differs\n"
          f"--- full ---\n{full.stdout}\n--- resumed ---\n{resumed.stdout}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        test_backend_identity()
        test_flag_validation()
        if hooks_armed():
            test_canary_quarantine(tmp)
        else:
            print("note: testing hooks not compiled in; "
                  "skipping canary quarantine scenarios")
        test_worker_kill(tmp)
        test_supervisor_kill_then_resume(tmp)

    if failures:
        print("\n\n".join(failures))
        sys.exit(1)
    print("isolation assertions passed")


if __name__ == "__main__":
    main()
