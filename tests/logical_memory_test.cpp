//===- tests/logical_memory_test.cpp - Logical model tests ----------------===//
//
// The Section 2.2 model: CompCert-style infinite logical blocks.
//
//===----------------------------------------------------------------------===//

#include "memory/LogicalMemory.h"

#include <gtest/gtest.h>

using namespace qcm;

TEST(LogicalMemory, AllocateReturnsFreshLogicalBlocks) {
  LogicalMemory M(MemoryConfig{});
  Value P1 = M.allocate(2).value();
  Value P2 = M.allocate(2).value();
  ASSERT_TRUE(P1.isPtr());
  ASSERT_TRUE(P2.isPtr());
  EXPECT_NE(P1.ptr().Block, P2.ptr().Block);
  EXPECT_EQ(P1.ptr().Offset, 0u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(LogicalMemory, BlockZeroIsTheNullBlock) {
  LogicalMemory M(MemoryConfig{});
  // The NULL address is valid per valid_m (block 0 is a valid size-1
  // block), but loads/stores through it are undefined behavior.
  EXPECT_TRUE(M.isValidAddress(Ptr{0, 0}));
  EXPECT_FALSE(M.load(Value::null()).ok());
  EXPECT_FALSE(M.store(Value::null(), Value::makeInt(1)).ok());
  EXPECT_TRUE(M.deallocate(Value::null()).ok()); // free(NULL) is a no-op.
}

TEST(LogicalMemory, LoadStoreRoundTrip) {
  LogicalMemory M(MemoryConfig{});
  Value P = M.allocate(3).value();
  Value Slot = Value::makePtr(P.ptr().Block, 2);
  ASSERT_TRUE(M.store(Slot, Value::makeInt(5)).ok());
  EXPECT_EQ(M.load(Slot).value().intValue(), 5u);
}

TEST(LogicalMemory, MemoryCellsHoldPointers) {
  LogicalMemory M(MemoryConfig{});
  Value P = M.allocate(1).value();
  Value Q = M.allocate(1).value();
  ASSERT_TRUE(M.store(P, Q).ok());
  EXPECT_EQ(M.load(P).value(), Q);
}

TEST(LogicalMemory, OutOfRangeOffsetIsUndefined) {
  LogicalMemory M(MemoryConfig{});
  Value P = M.allocate(2).value();
  EXPECT_FALSE(M.load(Value::makePtr(P.ptr().Block, 2)).ok());
  EXPECT_FALSE(M.isValidAddress(Ptr{P.ptr().Block, 2}));
  EXPECT_TRUE(M.isValidAddress(Ptr{P.ptr().Block, 1}));
}

TEST(LogicalMemory, FreeInvalidatesButDoesNotRemove) {
  LogicalMemory M(MemoryConfig{});
  Value P = M.allocate(1).value();
  ASSERT_TRUE(M.deallocate(P).ok());
  EXPECT_FALSE(M.load(P).ok());
  EXPECT_FALSE(M.isValidAddress(P.ptr()));
  // The block still exists (invalid) — blocks become invalid rather than
  // removed (Section 5.3).
  ASSERT_TRUE(M.getBlock(P.ptr().Block).has_value());
  EXPECT_FALSE(M.getBlock(P.ptr().Block)->Valid);
}

TEST(LogicalMemory, DoubleFreeAndMidPointerFreeAreUndefined) {
  LogicalMemory M(MemoryConfig{});
  Value P = M.allocate(2).value();
  EXPECT_FALSE(M.deallocate(Value::makePtr(P.ptr().Block, 1)).ok());
  ASSERT_TRUE(M.deallocate(P).ok());
  EXPECT_FALSE(M.deallocate(P).ok());
}

TEST(LogicalMemory, StrictCastsAreUndefined) {
  LogicalMemory M(MemoryConfig{}, LogicalMemory::CastBehavior::Error);
  Value P = M.allocate(1).value();
  EXPECT_FALSE(M.castPtrToInt(P).ok());
  EXPECT_FALSE(M.castIntToPtr(Value::makeInt(123)).ok());
}

TEST(LogicalMemory, TransparentCastsPreserveValues) {
  // CompCert-style: the cast is the identity and the logical address flows
  // into integer-typed positions (Section 2.2).
  LogicalMemory M(MemoryConfig{},
                  LogicalMemory::CastBehavior::TransparentNop);
  Value P = M.allocate(1).value();
  Outcome<Value> AsInt = M.castPtrToInt(P);
  ASSERT_TRUE(AsInt.ok());
  EXPECT_EQ(AsInt.value(), P);
  Outcome<Value> Back = M.castIntToPtr(AsInt.value());
  ASSERT_TRUE(Back.ok());
  EXPECT_EQ(Back.value(), P);
}

TEST(LogicalMemory, EffectivelyInfinite) {
  LogicalMemory M(MemoryConfig{.AddressWords = 8});
  // Allocation never consumes concrete space: far more blocks than the
  // concrete address space could hold.
  for (int I = 0; I < 100; ++I)
    ASSERT_TRUE(M.allocate(4).ok());
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(LogicalMemory, CloneIsIndependent) {
  LogicalMemory M(MemoryConfig{});
  Value P = M.allocate(1).value();
  auto Copy = M.clone();
  ASSERT_TRUE(M.store(P, Value::makeInt(9)).ok());
  EXPECT_EQ(Copy->load(P).value().intValue(), 0u);
  EXPECT_EQ(Copy->kind(), ModelKind::Logical);
}

TEST(LogicalMemory, SnapshotListsAllBlocks) {
  LogicalMemory M(MemoryConfig{});
  (void)M.allocate(1);
  (void)M.allocate(2);
  auto Snap = M.snapshot();
  ASSERT_EQ(Snap.size(), 3u); // NULL block + two allocations.
  EXPECT_EQ(Snap[0].first, 0u);
  EXPECT_EQ(Snap[2].second.Size, 2u);
  EXPECT_FALSE(Snap[1].second.Base.has_value());
}
