//===- tests/concrete_memory_test.cpp - Concrete model tests --------------===//
//
// The Section 2.1 model: flat finite array, pointers are integers.
//
//===----------------------------------------------------------------------===//

#include "memory/ConcreteMemory.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

MemoryConfig tiny(uint64_t Words) {
  MemoryConfig C;
  C.AddressWords = Words;
  return C;
}

} // namespace

TEST(ConcreteMemory, AllocateLoadStoreRoundTrip) {
  ConcreteMemory M(tiny(64));
  Outcome<Value> P = M.allocate(4);
  ASSERT_TRUE(P.ok());
  ASSERT_TRUE(P.value().isInt());
  Word Base = P.value().intValue();
  EXPECT_GE(Base, 1u);

  ASSERT_TRUE(M.store(Value::makeInt(Base + 2), Value::makeInt(77)).ok());
  Outcome<Value> V = M.load(Value::makeInt(Base + 2));
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(V.value().intValue(), 77u);
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(ConcreteMemory, FreshMemoryReadsAsZero) {
  ConcreteMemory M(tiny(64));
  Word Base = M.allocate(3).value().intValue();
  for (Word I = 0; I < 3; ++I)
    EXPECT_EQ(M.load(Value::makeInt(Base + I)).value().intValue(), 0u);
}

TEST(ConcreteMemory, LoadOutsideAllocationIsUndefined) {
  ConcreteMemory M(tiny(64));
  Word Base = M.allocate(2).value().intValue();
  Outcome<Value> V = M.load(Value::makeInt(Base + 2));
  ASSERT_FALSE(V.ok());
  EXPECT_TRUE(V.fault().isUndefined());
  EXPECT_FALSE(M.load(Value::makeInt(0)).ok());
}

TEST(ConcreteMemory, MallocZeroIsUndefined) {
  ConcreteMemory M(tiny(64));
  Outcome<Value> P = M.allocate(0);
  ASSERT_FALSE(P.ok());
  EXPECT_TRUE(P.fault().isUndefined());
}

TEST(ConcreteMemory, ExhaustionIsOutOfMemory) {
  // Usable space [1, 7) = 6 words.
  ConcreteMemory M(tiny(8));
  ASSERT_TRUE(M.allocate(6).ok());
  Outcome<Value> P = M.allocate(1);
  ASSERT_FALSE(P.ok());
  EXPECT_TRUE(P.fault().isOutOfMemory());
}

TEST(ConcreteMemory, AllocationNeverUsesZeroOrMaxAddress) {
  ConcreteMemory M(tiny(8));
  Word Base = M.allocate(6).value().intValue();
  EXPECT_EQ(Base, 1u); // First fit on [1, 7).
  EXPECT_EQ(M.checkConsistency(), std::nullopt);
}

TEST(ConcreteMemory, FreeNullIsNoOp) {
  ConcreteMemory M(tiny(64));
  EXPECT_TRUE(M.deallocate(Value::makeInt(0)).ok());
}

TEST(ConcreteMemory, FreeMidBlockIsUndefined) {
  ConcreteMemory M(tiny(64));
  Word Base = M.allocate(4).value().intValue();
  Outcome<Unit> R = M.deallocate(Value::makeInt(Base + 1));
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(R.fault().isUndefined());
}

TEST(ConcreteMemory, DoubleFreeIsUndefined) {
  ConcreteMemory M(tiny(64));
  Word Base = M.allocate(4).value().intValue();
  ASSERT_TRUE(M.deallocate(Value::makeInt(Base)).ok());
  EXPECT_FALSE(M.deallocate(Value::makeInt(Base)).ok());
}

TEST(ConcreteMemory, UseAfterFreeIsUndefined) {
  ConcreteMemory M(tiny(64));
  Word Base = M.allocate(2).value().intValue();
  ASSERT_TRUE(M.store(Value::makeInt(Base), Value::makeInt(5)).ok());
  ASSERT_TRUE(M.deallocate(Value::makeInt(Base)).ok());
  EXPECT_FALSE(M.load(Value::makeInt(Base)).ok());
  EXPECT_FALSE(M.store(Value::makeInt(Base), Value::makeInt(1)).ok());
}

TEST(ConcreteMemory, ReusedMemoryIsZeroedNotStale) {
  ConcreteMemory M(tiny(8));
  Word Base = M.allocate(3).value().intValue();
  ASSERT_TRUE(M.store(Value::makeInt(Base + 1), Value::makeInt(99)).ok());
  ASSERT_TRUE(M.deallocate(Value::makeInt(Base)).ok());
  Word Base2 = M.allocate(3).value().intValue();
  EXPECT_EQ(Base, Base2); // First fit reuses the gap.
  EXPECT_EQ(M.load(Value::makeInt(Base2 + 1)).value().intValue(), 0u);
}

TEST(ConcreteMemory, CastsAreNoOps) {
  ConcreteMemory M(tiny(64));
  Value V = Value::makeInt(12345);
  EXPECT_EQ(M.castPtrToInt(V).value(), V);
  EXPECT_EQ(M.castIntToPtr(V).value(), V);
}

TEST(ConcreteMemory, LogicalAddressesAreRejected) {
  ConcreteMemory M(tiny(64));
  Value P = Value::makePtr(1, 0);
  EXPECT_FALSE(M.load(P).ok());
  EXPECT_FALSE(M.store(P, Value::makeInt(0)).ok());
  EXPECT_FALSE(M.deallocate(P).ok());
  EXPECT_FALSE(M.castPtrToInt(P).ok());
  EXPECT_FALSE(M.isValidAddress(P.ptr()));
}

TEST(ConcreteMemory, SnapshotReflectsLiveAndRetiredBlocks) {
  ConcreteMemory M(tiny(64));
  Word B1 = M.allocate(2).value().intValue();
  Word B2 = M.allocate(1).value().intValue();
  ASSERT_TRUE(M.store(Value::makeInt(B1), Value::makeInt(7)).ok());
  ASSERT_TRUE(M.deallocate(Value::makeInt(B2)).ok());
  auto Snap = M.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_TRUE(Snap[0].second.Valid);
  EXPECT_EQ(Snap[0].second.Contents[0].intValue(), 7u);
  EXPECT_FALSE(Snap[1].second.Valid);
}

TEST(ConcreteMemory, CloneIsIndependent) {
  ConcreteMemory M(tiny(64));
  Word Base = M.allocate(1).value().intValue();
  auto Copy = M.clone();
  ASSERT_TRUE(M.store(Value::makeInt(Base), Value::makeInt(1)).ok());
  EXPECT_EQ(Copy->load(Value::makeInt(Base)).value().intValue(), 0u);
}

TEST(ConcreteMemory, LastFitPlacesHigh) {
  ConcreteMemory M(tiny(16), std::make_unique<LastFitOracle>());
  Word Base = M.allocate(2).value().intValue();
  EXPECT_EQ(Base, 13u); // [13, 15) is the top of the usable space [1, 15).
}

/// Property sweep: random allocate/free churn keeps the model consistent.
class ConcreteChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcreteChurnProperty, StaysConsistent) {
  Rng Gen(GetParam());
  ConcreteMemory M(tiny(128), std::make_unique<RandomOracle>(GetParam()));
  std::vector<Word> Live;
  for (int I = 0; I < 300; ++I) {
    if (Live.empty() || Gen.nextBelow(2) == 0) {
      Word Size = static_cast<Word>(1 + Gen.nextBelow(9));
      Outcome<Value> P = M.allocate(Size);
      if (P.ok())
        Live.push_back(P.value().intValue());
      else
        EXPECT_TRUE(P.fault().isOutOfMemory());
    } else {
      size_t Pick = Gen.nextBelow(Live.size());
      EXPECT_TRUE(M.deallocate(Value::makeInt(Live[Pick])).ok());
      Live.erase(Live.begin() + Pick);
    }
    ASSERT_EQ(M.checkConsistency(), std::nullopt) << "iteration " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcreteChurnProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
