//===- tests/model_registry_test.cpp - The model-identity table -----------===//
//
// Exercises the registry that every layer's model dispatch now routes
// through: descriptor completeness, name round-trips (short names, aliases,
// prose names), the did-you-mean suggestions, the capability flags the
// interpreter and refinement checker branch on, and that each descriptor's
// factory actually builds (and resets) a model of its own kind.
//
//===----------------------------------------------------------------------===//

#include "memory/ModelRegistry.h"

#include <gtest/gtest.h>

#include <set>

using namespace qcm;

TEST(ModelRegistry, EveryKindHasADescriptorAtItsIndex) {
  const auto &Table = modelRegistry();
  ASSERT_EQ(Table.size(), NumModelKinds);
  for (size_t I = 0; I < Table.size(); ++I)
    EXPECT_EQ(static_cast<size_t>(Table[I].Kind), I);
}

TEST(ModelRegistry, DescriptorsAreComplete) {
  for (const ModelDescriptor &D : modelRegistry()) {
    EXPECT_STRNE(D.ProseName, "") << modelKindName(D.Kind);
    EXPECT_STRNE(D.ShortName, "") << modelKindName(D.Kind);
    EXPECT_NE(D.Make, nullptr) << modelKindName(D.Kind);
    EXPECT_NE(D.Reset, nullptr) << modelKindName(D.Kind);
  }
}

TEST(ModelRegistry, NamesAreUnique) {
  std::set<std::string> Seen;
  for (const ModelDescriptor &D : modelRegistry()) {
    EXPECT_TRUE(Seen.insert(D.ShortName).second) << D.ShortName;
    if (D.Alias)
      EXPECT_TRUE(Seen.insert(D.Alias).second) << D.Alias;
  }
}

TEST(ModelRegistry, ShortNamesRoundTrip) {
  for (const ModelDescriptor &D : modelRegistry()) {
    std::optional<ModelKind> Parsed = parseModelName(D.ShortName);
    ASSERT_TRUE(Parsed.has_value()) << D.ShortName;
    EXPECT_EQ(*Parsed, D.Kind);
  }
}

TEST(ModelRegistry, AliasesRoundTrip) {
  for (const ModelDescriptor &D : modelRegistry()) {
    if (!D.Alias)
      continue;
    std::optional<ModelKind> Parsed = parseModelName(D.Alias);
    ASSERT_TRUE(Parsed.has_value()) << D.Alias;
    EXPECT_EQ(*Parsed, D.Kind);
  }
}

TEST(ModelRegistry, UnknownNamesDoNotParse) {
  EXPECT_FALSE(parseModelName("").has_value());
  EXPECT_FALSE(parseModelName("symbolic").has_value());
  EXPECT_FALSE(parseModelName("QUASI").has_value());
}

TEST(ModelRegistry, ProseNameIsModelKindName) {
  for (const ModelDescriptor &D : modelRegistry())
    EXPECT_EQ(modelKindName(D.Kind), D.ProseName);
}

TEST(ModelRegistry, AllModelKindsCoversTheTable) {
  const auto &Kinds = allModelKinds();
  ASSERT_EQ(Kinds.size(), NumModelKinds);
  for (size_t I = 0; I < Kinds.size(); ++I)
    EXPECT_EQ(static_cast<size_t>(Kinds[I]), I);
}

TEST(ModelRegistry, SuggestionsCatchTypos) {
  std::vector<std::string> S = suggestModelNames("quas");
  ASSERT_FALSE(S.empty());
  EXPECT_EQ(S.front(), "quasi");

  S = suggestModelNames("twophse");
  ASSERT_FALSE(S.empty());
  EXPECT_EQ(S.front(), "twophase");

  // Nothing within distance 2 of gibberish.
  EXPECT_TRUE(suggestModelNames("xxxxxxxxxx").empty());
}

TEST(ModelRegistry, AllShortNamesEnumeratesEveryModel) {
  std::string Names = allModelShortNames();
  for (const ModelDescriptor &D : modelRegistry())
    EXPECT_NE(Names.find(D.ShortName), std::string::npos) << D.ShortName;
}

TEST(ModelRegistry, FactoriesBuildTheirOwnKind) {
  for (const ModelDescriptor &D : modelRegistry()) {
    ModelMakeConfig C;
    C.MemCfg.AddressWords = 64;
    std::unique_ptr<Memory> M = D.Make(std::move(C));
    ASSERT_NE(M, nullptr) << modelKindName(D.Kind);
    EXPECT_EQ(M->kind(), D.Kind);
    EXPECT_EQ(M->checkConsistency(), std::nullopt);

    // Reset-and-reuse keeps the kind and restores a consistent fresh state.
    ASSERT_TRUE(M->allocate(2).ok());
    ModelMakeConfig R;
    R.MemCfg.AddressWords = 64;
    D.Reset(*M, std::move(R));
    EXPECT_EQ(M->kind(), D.Kind);
    EXPECT_EQ(M->checkConsistency(), std::nullopt);
  }
}

TEST(ModelRegistry, CapabilityFlagsMatchThePaperSemantics) {
  const ModelDescriptor &Concrete = modelDescriptor(ModelKind::Concrete);
  EXPECT_TRUE(Concrete.ValuesFullyConcrete);
  EXPECT_TRUE(Concrete.FiniteSpace);
  EXPECT_TRUE(Concrete.InjectAllocation);
  EXPECT_FALSE(Concrete.InjectCast);
  EXPECT_FALSE(Concrete.HasRealization);

  const ModelDescriptor &Logical = modelDescriptor(ModelKind::Logical);
  EXPECT_FALSE(Logical.FiniteSpace);
  EXPECT_FALSE(Logical.InjectAllocation);
  EXPECT_FALSE(Logical.InjectCast);
  EXPECT_TRUE(Logical.UncastAllocationsStayLogical);

  const ModelDescriptor &Quasi = modelDescriptor(ModelKind::QuasiConcrete);
  EXPECT_TRUE(Quasi.HasRealization);
  EXPECT_TRUE(Quasi.FiniteSpace);
  EXPECT_FALSE(Quasi.InjectAllocation);
  EXPECT_TRUE(Quasi.InjectCast);
  EXPECT_TRUE(Quasi.UncastAllocationsStayLogical);

  const ModelDescriptor &Eager = modelDescriptor(ModelKind::EagerQuasi);
  EXPECT_TRUE(Eager.FiniteSpace);
  EXPECT_TRUE(Eager.InjectAllocation);
  EXPECT_TRUE(Eager.InjectCast);
  EXPECT_TRUE(Eager.UncastAllocationsStayLogical);

  // The two-phase transition concretizes even never-cast blocks, so it is
  // deliberately NOT in the "uncast allocations stay logical" family.
  const ModelDescriptor &TwoPhase = modelDescriptor(ModelKind::TwoPhase);
  EXPECT_TRUE(TwoPhase.HasRealization);
  EXPECT_TRUE(TwoPhase.FiniteSpace);
  EXPECT_TRUE(TwoPhase.InjectAllocation);
  EXPECT_TRUE(TwoPhase.InjectCast);
  EXPECT_FALSE(TwoPhase.UncastAllocationsStayLogical);
}
