//===- tests/refinement_test.cpp - Refinement checker tests ---------------===//

#include "core/Vm.h"
#include "refinement/Contexts.h"
#include "refinement/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

RunConfig modelConfig(ModelKind Model, uint64_t Words = 1u << 12) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = Words;
  return C;
}

} // namespace

TEST(Refinement, IdentityRefinesItself) {
  Program P = compile(R"(
main() {
  var int a;
  a = input();
  output(a * 2);
}
)");
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  Job.InputTapes = {{1}, {2}, {3}};
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines) << R.toString();
  EXPECT_GT(R.RunsPerformed, 0u);
}

TEST(Refinement, ChangedOutputIsDetected) {
  Program Src = compile("main() { output(1); }");
  Program Tgt = compile("main() { output(2); }");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  RefinementReport R = checkRefinement(Job);
  ASSERT_FALSE(R.Refines);
  EXPECT_EQ(R.PerContext[0].Counterexample.Events[0], Event::output(2));
}

TEST(Refinement, UndefinedSourceAdmitsAnything) {
  Program Src =
      compile("main() { var ptr p, int a; p = (ptr) 0; a = *p; }");
  Program Tgt = compile("main() { output(123); output(456); }");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  EXPECT_TRUE(checkRefinement(Job).Refines);
}

TEST(Refinement, TargetMayRunOutOfMemoryWhenSourceDoesNot) {
  // Register allocation may increase memory pressure (Section 2.3); here
  // the target simply allocates-and-casts more.
  Program Src = compile("main() { output(1); }");
  Program Tgt = compile(R"(
main() {
  var ptr hog, int a;
  hog = malloc(100);
  a = (int) hog;
  output(1);
}
)");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  // Tiny memory: the target's cast cannot find space and dies with a
  // partial behavior before out(1) — admissible.
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete, 8);
  EXPECT_TRUE(checkRefinement(Job).Refines);
}

TEST(Refinement, SourceOutOfMemoryDoesNotAdmitTermination) {
  Program Src = compile(R"(
main() {
  var ptr hog, int a;
  hog = malloc(100);
  a = (int) hog;
  output(1);
}
)");
  Program Tgt = compile("main() { output(1); }");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete, 8);
  // The source can only produce the empty partial behavior; the target
  // terminates with out(1). Not a refinement. (This is why dead
  // allocation + cast elimination is NOT valid quasi-to-quasi.)
  EXPECT_FALSE(checkRefinement(Job).Refines);
}

TEST(Refinement, PerContextVerdictsAreIndependent) {
  Program Src = compile(R"(
extern g();
main() {
  g();
  output(1);
}
)");
  Program Tgt = compile(R"(
extern g();
main() {
  g();
  output(2);
}
)");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  Job.Contexts.push_back(ContextVariant::fromSource(
      "noop", contexts::noop("g")));
  Job.Contexts.push_back(ContextVariant::fromSource(
      "marker", contexts::outputMarker("g", 77)));
  RefinementReport R = checkRefinement(Job);
  EXPECT_FALSE(R.Refines);
  ASSERT_EQ(R.PerContext.size(), 2u);
  EXPECT_FALSE(R.PerContext[0].Refines);
  EXPECT_FALSE(R.PerContext[1].Refines);
  // The marker context's events appear in the traces.
  bool SawMarker = false;
  for (const Behavior &B : R.PerContext[1].SrcBehaviors.behaviors())
    for (const Event &E : B.Events)
      SawMarker |= E == Event::output(77);
  EXPECT_TRUE(SawMarker);
}

TEST(Refinement, ContextInstantiationErrorsAreReported) {
  Program Src = compile("extern g(); main() { g(); }");
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Src;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete);
  // Parameter list mismatch: the context defines g(int x).
  Job.Contexts.push_back(ContextVariant::fromSource(
      "bad", "g(int x) { var int unused_zero; unused_zero = 0; }"));
  RefinementReport R = checkRefinement(Job);
  ASSERT_FALSE(R.Refines);
  EXPECT_FALSE(R.PerContext[0].InstantiationError.empty());
}

TEST(Refinement, OracleVariationEnlargesBehaviorSets) {
  // A program that outputs a realized address: first-fit and last-fit see
  // different addresses, so the behavior set has two elements.
  Program P = compile(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  output(a);
}
)");
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete, 64);
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines);
  EXPECT_EQ(R.PerContext[0].SrcBehaviors.size(), 2u);
}

TEST(Refinement, EnumeratedOraclesCoverEveryPlacement) {
  std::vector<OracleFactory> Oracles = enumeratedOracles(8, 1);
  EXPECT_EQ(Oracles.size(), 6u); // bases 1..6
  Program P = compile(R"(
main() {
  var ptr p, int a;
  p = malloc(2);
  a = (int) p;
  output(a);
}
)");
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc = Job.BaseTgt = modelConfig(ModelKind::QuasiConcrete, 8);
  Job.Oracles = Oracles;
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines);
  // Bases 1..5 fit a 2-word block in [1,7); base 6 does not (OOM).
  EXPECT_EQ(R.PerContext[0].SrcBehaviors.size(), 6u);
}

TEST(Refinement, SampledOraclesIncludeDeterministicEndpoints) {
  std::vector<OracleFactory> Oracles = sampledOracles(3);
  EXPECT_EQ(Oracles.size(), 5u);
  for (const OracleFactory &F : Oracles)
    EXPECT_NE(F(), nullptr);
}

TEST(Contexts, InstantiationSplicesBodiesAndGlobals) {
  Program Base = compile("extern g(); main() { g(); output(1); }");
  DiagnosticEngine Diags;
  std::optional<Program> Inst = instantiateContext(
      Base, "global ctx_cell; g() { *ctx_cell = 5; output(9); }", Diags);
  ASSERT_TRUE(Inst.has_value()) << Diags.toString();
  EXPECT_FALSE(Inst->findFunction("g")->isExtern());
  EXPECT_NE(Inst->findGlobal("ctx_cell"), nullptr);

  RunConfig C = modelConfig(ModelKind::QuasiConcrete);
  RunResult R = runProgram(*Inst, C);
  std::vector<Event> Expected = {Event::output(9), Event::output(1)};
  EXPECT_EQ(R.Behav, Behavior::terminated(Expected));
}

TEST(Contexts, GuesserWriterFaultsInQuasiWhenNothingIsRealized) {
  Program Base = compile(R"(
extern g();
main() {
  var ptr a, int r;
  a = malloc(1);
  *a = 0;
  g();
  r = *a;
  output(r);
}
)");
  DiagnosticEngine Diags;
  std::optional<Program> Inst = instantiateContext(
      Base, contexts::addressGuesserWriter("g", 1, 77), Diags);
  ASSERT_TRUE(Inst.has_value()) << Diags.toString();
  RunConfig C = modelConfig(ModelKind::QuasiConcrete, 64);
  EXPECT_EQ(runProgram(*Inst, C).Behav.BehaviorKind,
            Behavior::Kind::Undefined);
  // In the concrete model the same context succeeds at corrupting the
  // private cell: the guess hits the first-fit allocation.
  RunConfig CC = modelConfig(ModelKind::Concrete, 64);
  Behavior B = runProgram(*Inst, CC).Behav;
  std::vector<Event> Expected = {Event::output(77)};
  EXPECT_EQ(B, Behavior::terminated(Expected));
}

TEST(Contexts, ExhausterConsumesConcreteSpace) {
  Program Base = compile("extern g(); main() { g(); output(1); }");
  DiagnosticEngine Diags;
  std::optional<Program> Inst = instantiateContext(
      Base, contexts::memoryExhauster("g", 10), Diags);
  ASSERT_TRUE(Inst.has_value()) << Diags.toString();
  // 10 one-word realized blocks cannot fit in 6 usable words.
  RunConfig C = modelConfig(ModelKind::QuasiConcrete, 8);
  Behavior B = runProgram(*Inst, C).Behav;
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::OutOfMemory);
}

TEST(Contexts, ReadArgAndCastArgObserve) {
  Program Base = compile(R"(
extern probe(ptr x);
main() {
  var ptr p;
  p = malloc(1);
  *p = 55;
  probe(p);
}
)");
  DiagnosticEngine Diags;
  std::optional<Program> Reader =
      instantiateContext(Base, contexts::readArgAndOutput("probe"), Diags);
  ASSERT_TRUE(Reader.has_value()) << Diags.toString();
  RunConfig C = modelConfig(ModelKind::QuasiConcrete, 64);
  std::vector<Event> Expected = {Event::output(55)};
  EXPECT_EQ(runProgram(*Reader, C).Behav, Behavior::terminated(Expected));

  std::optional<Program> Caster =
      instantiateContext(Base, contexts::castArgAndOutput("probe"), Diags);
  ASSERT_TRUE(Caster.has_value()) << Diags.toString();
  Behavior B = runProgram(*Caster, C).Behav;
  ASSERT_EQ(B.BehaviorKind, Behavior::Kind::Terminated);
  EXPECT_GE(B.Events[0].Value, 1u); // some realized address
}
