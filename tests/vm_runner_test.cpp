//===- tests/vm_runner_test.cpp - Facade and runner edge cases ------------===//

#include "core/Vm.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

TEST(Vm, CompileReportsParseErrors) {
  Vm V;
  EXPECT_FALSE(V.compile("main( {").has_value());
  EXPECT_FALSE(V.lastDiagnostics().empty());
}

TEST(Vm, CompileReportsTypeErrors) {
  Vm V;
  EXPECT_FALSE(V.compile("main() { var int a; a = b; }").has_value());
  EXPECT_NE(V.lastDiagnostics().find("undeclared"), std::string::npos);
}

TEST(Vm, DiagnosticsResetBetweenCompiles) {
  Vm V;
  EXPECT_FALSE(V.compile("main( {").has_value());
  EXPECT_TRUE(V.compile("main() { output(1); }").has_value());
  EXPECT_TRUE(V.lastDiagnostics().empty());
}

TEST(Vm, CompileAndRunConvenience) {
  Vm V;
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  std::optional<RunResult> R =
      V.compileAndRun("main() { output(11); }", C);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Behav, Behavior::terminated({Event::output(11)}));
  EXPECT_FALSE(V.compileAndRun("main( {", C).has_value());
}

TEST(Runner, FreshBlockArgumentsAreMaterialized) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main(ptr p, int n) {
  var int a, int b;
  a = *p;
  b = *(p + 1);
  output(a + b + n);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::QuasiConcrete;
  C.Args = {ArgSpec::freshBlock(2, {10, 20}), ArgSpec::intArg(12)};
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav, Behavior::terminated({Event::output(42)}));
}

TEST(Runner, FreshBlockArgumentsWorkInTheConcreteModel) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main(ptr p) {
  var int a;
  a = *p;
  output(a);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::Concrete;
  C.MemConfig.AddressWords = 64;
  C.Args = {ArgSpec::freshBlock(1, {5})};
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav, Behavior::terminated({Event::output(5)}));
}

TEST(Runner, GlobalSetupCanRunOutOfConcreteMemory) {
  Vm V;
  std::optional<Program> P =
      V.compile("global big[100]; main() { output(1); }");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::Concrete;
  C.MemConfig.AddressWords = 8;
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::OutOfMemory);
  // The logical-family models allocate globals logically: no failure.
  C.Model = ModelKind::QuasiConcrete;
  EXPECT_EQ(runProgram(*P, C).Behav.BehaviorKind,
            Behavior::Kind::Terminated);
}

TEST(Runner, MissingEntryIsUndefined) {
  Vm V;
  std::optional<Program> P = V.compile("helper() { output(1); }");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Entry = "main";
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Undefined);
  C.Entry = "helper";
  EXPECT_EQ(runProgram(*P, C).Behav.BehaviorKind,
            Behavior::Kind::Terminated);
}

TEST(Runner, ExternEntryIsUndefined) {
  Vm V;
  std::optional<Program> P = V.compile("extern main();");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Runner, WrongArgumentCountIsUndefined) {
  Vm V;
  std::optional<Program> P = V.compile("main(int a) { output(a); }");
  ASSERT_TRUE(P.has_value());
  RunConfig C; // no args supplied
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(Runner, TracerObservesExecution) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
helper(int x) { output(x); }
main() {
  var int a;
  a = 2;
  helper(a);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  unsigned Count = 0;
  unsigned MaxDepth = 0;
  C.Interp.OnInstr = [&](const Instr &, unsigned Depth) {
    ++Count;
    MaxDepth = std::max(MaxDepth, Depth);
  };
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  EXPECT_EQ(Count, 3u); // a = 2; helper(a); output(x);
  EXPECT_EQ(MaxDepth, 2u);
}

TEST(Runner, StepLimitIsHonoredExactly) {
  Vm V;
  std::optional<Program> P =
      V.compile("main() { var int x; x = 1; while (x) { x = 1; } }");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Interp.StepLimit = 100;
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::StepLimit);
  EXPECT_EQ(R.Steps, 100u);
}

TEST(Runner, HandlersAndLanguageFunctionsCompose) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
extern host(ptr x);
wrap(ptr p) { host(p); }
main() {
  var ptr p, int r;
  p = malloc(1);
  wrap(p);
  r = *p;
  output(r);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Handlers["host"] = [](Machine &M,
                          const std::vector<Value> &Args) -> Outcome<Unit> {
    M.emitOutput(1000);
    return M.memory().store(Args[0], Value::makeInt(31));
  };
  RunResult R = runProgram(*P, C);
  std::vector<Event> Expected = {Event::output(1000), Event::output(31)};
  EXPECT_EQ(R.Behav, Behavior::terminated(Expected));
}

TEST(Runner, FaultingHandlerFaultsTheRun) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
extern host();
main() { host(); output(1); }
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Handlers["host"] = [](Machine &,
                          const std::vector<Value> &) -> Outcome<Unit> {
    return Outcome<Unit>::outOfMemory("host says no");
  };
  RunResult R = runProgram(*P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::OutOfMemory);
}
