//===- tests/arith_simplify_test.cpp - Arithmetic simplification tests ----===//

#include "core/Vm.h"
#include "lang/Parser.h"
#include "lang/PrettyPrint.h"
#include "lang/TypeCheck.h"
#include "opt/ArithSimplify.h"
#include "semantics/Runner.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

/// Parses an expression over int variables a, b, c, d and ptr variable p,
/// type checks it in a synthetic function frame, and returns it.
std::unique_ptr<Exp> parseTyped(const std::string &Text) {
  std::string Source =
      "f(int a, int b, int c, int d, ptr p) { var int r; r = " + Text +
      "; }";
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Diags);
  if (!P) {
    ADD_FAILURE() << "parse: " << Diags.toString();
    return nullptr;
  }
  if (!typeCheck(*P, Diags)) {
    ADD_FAILURE() << "typecheck: " << Diags.toString();
    return nullptr;
  }
  return P->Functions[0].Body->Stmts[0]->Rhs->Arg->clone();
}

std::string simplified(const std::string &Text) {
  std::unique_ptr<Exp> E = parseTyped(Text);
  if (!E)
    return "<error>";
  return printExp(*simplifyExp(std::move(E)));
}

} // namespace

TEST(ArithSimplify, FoldsConstants) {
  EXPECT_EQ(simplified("1 + 2 * 3"), "7");
  EXPECT_EQ(simplified("10 - 4 - 3"), "3");
  EXPECT_EQ(simplified("6 & 3"), "2");
  EXPECT_EQ(simplified("5 == 5"), "1");
  EXPECT_EQ(simplified("5 == 6"), "0");
}

TEST(ArithSimplify, Figure1Identity) {
  // The paper's Figure 1: (a - b) + (2*b - b) == a.
  EXPECT_EQ(simplified("(a - b) + (2 * b - b)"), "a");
}

TEST(ArithSimplify, CancellationAndIdentities) {
  EXPECT_EQ(simplified("a - a"), "0");
  EXPECT_EQ(simplified("a + 0"), "a");
  EXPECT_EQ(simplified("0 + a"), "a");
  EXPECT_EQ(simplified("a * 1"), "a");
  EXPECT_EQ(simplified("1 * a"), "a");
  EXPECT_EQ(simplified("a * 0"), "0");
  EXPECT_EQ(simplified("a + b - b + c - a"), "c");
}

TEST(ArithSimplify, CollectsCoefficients) {
  EXPECT_EQ(simplified("a + a + a"), "3 * a");
  EXPECT_EQ(simplified("2 * a + 3 * a"), "5 * a");
  EXPECT_EQ(simplified("a * 2 - a"), "a");
}

TEST(ArithSimplify, WrapAroundIsRespected) {
  // -1 * a is canonicalized with the two's-complement coefficient.
  EXPECT_EQ(simplified("0 - a"), "0 - a");
  EXPECT_EQ(simplified("b - a - b"), "0 - a");
}

TEST(ArithSimplify, NonLinearAtomsAreOpaqueButCombined) {
  EXPECT_EQ(simplified("a * b - a * b"), "0");
  EXPECT_EQ(simplified("(a & b) - (a & b)"), "0");
  EXPECT_EQ(simplified("a * b + a * b"), "2 * (a * b)");
}

TEST(ArithSimplify, PointerExpressionsAreLeftStructurallyAlone) {
  EXPECT_EQ(simplified("(p - p) + 1"), "p - p + 1");
  // But ptr +/- 0 folds.
  std::unique_ptr<Exp> E = parseTyped("p - p");
  ASSERT_TRUE(E);
  // Whole-ptr-typed expressions keep their shape.
  std::string Source = "f(ptr p) { var ptr q; q = p + 0; }";
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Diags);
  ASSERT_TRUE(P && typeCheck(*P, Diags));
  auto Simplified = simplifyExp(P->Functions[0].Body->Stmts[0]->Rhs->Arg->clone());
  EXPECT_EQ(printExp(*Simplified), "p");
}

TEST(ArithSimplify, PassRewritesWholeFunctions) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
f(int a, int b) {
  var ptr q;
  a = (a - b) + (2 * b - b);
  q = (ptr) a;
  *q = 123;
}
)");
  ASSERT_TRUE(P.has_value());
  ArithSimplifyPass Pass;
  EXPECT_TRUE(Pass.runOnFunction(P->Functions[0], *P));
  EXPECT_NE(printFunction(P->Functions[0]).find("a = a;"),
            std::string::npos);
  // Idempotent.
  EXPECT_FALSE(Pass.runOnFunction(P->Functions[0], *P));
}

//===----------------------------------------------------------------------===//
// Property: simplification preserves evaluation on random int environments.
//===----------------------------------------------------------------------===//

namespace {

/// Evaluates an int expression over given variable values with wrap
/// semantics (mirror of the interpreter's integer fragment).
Word evalInt(const Exp &E, Word A, Word B, Word C, Word D) {
  switch (E.ExpKind) {
  case Exp::Kind::IntLit:
    return E.IntValue;
  case Exp::Kind::Var:
    if (E.Name == "a")
      return A;
    if (E.Name == "b")
      return B;
    if (E.Name == "c")
      return C;
    return D;
  case Exp::Kind::Global:
    return 0;
  case Exp::Kind::Binary: {
    Word L = evalInt(*E.Lhs, A, B, C, D);
    Word R = evalInt(*E.Rhs, A, B, C, D);
    switch (E.Op) {
    case BinaryOp::Add:
      return wrapAdd(L, R);
    case BinaryOp::Sub:
      return wrapSub(L, R);
    case BinaryOp::Mul:
      return wrapMul(L, R);
    case BinaryOp::And:
      return L & R;
    case BinaryOp::Eq:
      return L == R ? 1 : 0;
    }
  }
  }
  return 0;
}

/// Builds a random int expression tree over a..d.
std::unique_ptr<Exp> randomExp(Rng &Gen, unsigned Depth) {
  if (Depth == 0 || Gen.nextBelow(3) == 0) {
    if (Gen.nextBelow(2) == 0) {
      auto Lit =
          Exp::makeIntLit(static_cast<Word>(Gen.nextBelow(100)));
      Lit->StaticType = Type::Int;
      return Lit;
    }
    const char *Names[4] = {"a", "b", "c", "d"};
    auto Var = Exp::makeVar(Names[Gen.nextBelow(4)]);
    Var->StaticType = Type::Int;
    return Var;
  }
  BinaryOp Ops[5] = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul,
                     BinaryOp::And, BinaryOp::Eq};
  auto E = Exp::makeBinary(Ops[Gen.nextBelow(5)], randomExp(Gen, Depth - 1),
                           randomExp(Gen, Depth - 1));
  E->StaticType = Type::Int;
  return E;
}

} // namespace

class SimplifyPreservesEvaluation
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyPreservesEvaluation, OnRandomExpressionsAndInputs) {
  Rng Gen(GetParam());
  for (int Trial = 0; Trial < 60; ++Trial) {
    std::unique_ptr<Exp> E = randomExp(Gen, 4);
    std::unique_ptr<Exp> Original = E->clone();
    std::unique_ptr<Exp> Simple = simplifyExp(std::move(E));
    for (int Env = 0; Env < 10; ++Env) {
      Word A = static_cast<Word>(Gen.next());
      Word B = static_cast<Word>(Gen.next());
      Word C = static_cast<Word>(Gen.next());
      Word D = static_cast<Word>(Gen.next());
      ASSERT_EQ(evalInt(*Original, A, B, C, D),
                evalInt(*Simple, A, B, C, D))
          << "original: " << printExp(*Original)
          << "\nsimplified: " << printExp(*Simple);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPreservesEvaluation,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49, 56));
