#!/usr/bin/env python3
"""End-to-end checks for the translation-validated qcm-opt CLI.

Drives the acceptance pipeline of the validated-optimizer work:

* --help exits 0 and documents the pipeline/validation flags;
* --list-passes names every shipped pass with its per-model validity and
  keeps the bug-dse canary hidden;
* an unknown pass name exits 2 with a did-you-mean suggestion;
* the legacy --passes=a,b,c spelling is equivalent to --pipeline=fix(a,b,c)
  (byte-identical optimized output);
* --pipeline + --validate=all accepts every shipped pass and optimizes the
  running example down to its observable effect;
* --pipeline=bug-dse --validate=quasi exits 1, names the rejected pass,
  and prints a minimized reproducer;
* --metrics-out produces a schema-valid qcm-opt metrics document in both
  the accepting and rejecting runs (validated by tools/check_trace_schema.py).

Usage: tool_opt_pipeline_test.py QCM_OPT SCHEMA_PY STORE_QCM
"""

import json
import os
import subprocess
import sys
import tempfile

QCM_OPT, SCHEMA_PY, STORE = sys.argv[1], sys.argv[2], sys.argv[3]


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True)


def main():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        # -- --help ------------------------------------------------------
        help_run = run([QCM_OPT, "--help"])
        if help_run.returncode != 0:
            failures.append(f"--help: expected exit 0, got "
                            f"{help_run.returncode}")
        for flag in ("--pipeline=SPEC", "--validate=MODELS",
                     "--validate-budget=N", "--metrics-out=FILE",
                     "--list-passes", "--random-pipeline=SEED"):
            if flag not in help_run.stdout:
                failures.append(f"--help does not document {flag}")

        # Misuse goes to stderr with exit 2.
        misuse = run([QCM_OPT, "--no-such-flag", STORE])
        if misuse.returncode != 2:
            failures.append(f"unknown flag: expected exit 2, got "
                            f"{misuse.returncode}")

        # -- --list-passes ----------------------------------------------
        listing = run([QCM_OPT, "--list-passes"])
        if listing.returncode != 0:
            failures.append(f"--list-passes: exit {listing.returncode}")
        for name in ("ownership", "constprop", "arith", "dce", "dae",
                     "dse", "dse-local", "rle", "rle-own"):
            if name not in listing.stdout:
                failures.append(f"--list-passes does not list '{name}'")
        if "bug-dse" in listing.stdout:
            failures.append("--list-passes leaks the hidden bug-dse canary")

        # -- unknown pass: exit 2 with a suggestion ---------------------
        unknown = run([QCM_OPT, "--pipeline=dse,rl", STORE])
        if unknown.returncode != 2:
            failures.append(f"unknown pass: expected exit 2, got "
                            f"{unknown.returncode}")
        if "did you mean 'rle'" not in unknown.stderr:
            failures.append(f"no did-you-mean for 'rl': {unknown.stderr!r}")

        # -- legacy --passes equivalence --------------------------------
        legacy = run([QCM_OPT, "--passes=constprop,arith,dce", STORE])
        spec = run([QCM_OPT, "--pipeline=fix(constprop,arith,dce)", STORE])
        if legacy.returncode != 0 or spec.returncode != 0:
            failures.append("legacy/spec runs failed: "
                            f"{legacy.returncode}/{spec.returncode}")
        if legacy.stdout != spec.stdout:
            failures.append("--passes=a,b,c differs from "
                            f"--pipeline=fix(a,b,c):\n{legacy.stdout}\nvs\n"
                            f"{spec.stdout}")

        # -- validated clean pipeline + metrics document ----------------
        ok_metrics = os.path.join(tmp, "ok.json")
        ok_profile = os.path.join(tmp, "ok-profile.json")
        ok = run([QCM_OPT, "--pipeline=ownership,constprop,fix(arith,dce)",
                  "--validate=all", f"--metrics-out={ok_metrics}",
                  f"--profile={ok_profile}", STORE])
        if ok.returncode != 0:
            failures.append(f"validated run: exit {ok.returncode}: "
                            f"{ok.stderr}")
        if "output(42);" not in ok.stdout:
            failures.append(f"optimized output wrong:\n{ok.stdout}")
        schema = run([sys.executable, SCHEMA_PY, ok_profile, ok_metrics])
        if schema.returncode != 0:
            failures.append(f"ok metrics schema:\n{schema.stderr}")
        with open(ok_metrics) as f:
            doc = json.load(f)
        if doc.get("tool") != "qcm-opt":
            failures.append(f"metrics tool field: {doc.get('tool')!r}")
        if doc["validation"]["verdict"] != "ok":
            failures.append(f"validation verdict: {doc['validation']}")
        if doc["pipeline"]["validated_applications"] == 0:
            failures.append("no applications were validated")

        # -- the bug-dse canary is rejected -----------------------------
        bad_metrics = os.path.join(tmp, "bad.json")
        bad_profile = os.path.join(tmp, "bad-profile.json")
        bad = run([QCM_OPT, "--pipeline=bug-dse", "--validate=quasi",
                   f"--metrics-out={bad_metrics}",
                   f"--profile={bad_profile}", STORE])
        if bad.returncode != 1:
            failures.append(f"bug-dse: expected exit 1, got "
                            f"{bad.returncode}")
        if "bug-dse" not in bad.stderr:
            failures.append(f"rejection does not name the pass: "
                            f"{bad.stderr!r}")
        if "minimized reproducer" not in bad.stderr:
            failures.append(f"no minimized reproducer: {bad.stderr!r}")
        if "*p = 42;" not in bad.stderr:
            failures.append("reproducer lost the observable store")
        schema = run([sys.executable, SCHEMA_PY, bad_profile, bad_metrics])
        if schema.returncode != 0:
            failures.append(f"fail metrics schema:\n{schema.stderr}")
        with open(bad_metrics) as f:
            doc = json.load(f)
        if doc["validation"]["verdict"] != "fail":
            failures.append(f"fail verdict missing: {doc['validation']}")
        if doc["pipeline"].get("failed_pass") != "bug-dse":
            failures.append(f"failed_pass wrong: {doc['pipeline']}")

    if failures:
        print("\n\n".join(failures))
        sys.exit(1)
    print("qcm-opt pipeline assertions passed")


if __name__ == "__main__":
    main()
