//===- tests/telemetry_test.cpp - Tracing, stats, and event helpers -------===//
//
// Covers the observability layer: ModelStats counters across the memory
// models, trace sinks (collecting, JSONL, null), the JSON helpers in
// support/Telemetry.h, per-pass optimizer metrics, and edge cases of the
// Event.h sequence helpers.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "memory/EagerQuasiMemory.h"
#include "memory/QuasiConcreteMemory.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/Pass.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace qcm;

namespace {

// A program exercising every traced operation class: alloc, store, a
// pointer-to-int cast (realizing under quasi), an int-to-pointer cast,
// a load through the recovered pointer, and a free.
const char *CastProgram = R"(
main() {
  var ptr p, ptr q, int a, int r;
  p = malloc(2);
  *(p + 1) = 42;
  a = (int) p;
  q = (ptr) (a + 1);
  r = *q;
  output(r);
  free(p);
}
)";

RunResult runUnder(ModelKind Model, MemTraceSink *Sink = nullptr,
                   bool Loose = false) {
  Vm V;
  std::optional<Program> P = V.compile(CastProgram);
  EXPECT_TRUE(P.has_value());
  RunConfig C;
  C.Model = Model;
  C.TraceSink = Sink;
  if (Loose) {
    C.Interp.Discipline = TypeDiscipline::Loose;
    C.LogicalCasts = LogicalMemory::CastBehavior::TransparentNop;
  }
  return runProgram(*P, C);
}

} // namespace

//===----------------------------------------------------------------------===//
// ModelStats across the models
//===----------------------------------------------------------------------===//

TEST(ModelStats, QuasiModelCountsCastsAndRealizations) {
  RunResult R = runUnder(ModelKind::QuasiConcrete);
  EXPECT_EQ(R.Behav, Behavior::terminated({Event::output(42)}));
  EXPECT_EQ(R.Stats.CastsToInt, 1u);
  EXPECT_EQ(R.Stats.CastsToPtr, 1u);
  EXPECT_EQ(R.Stats.Realizations, 1u);
  EXPECT_EQ(R.Stats.RealizationFailures, 0u);
  EXPECT_GE(R.Stats.Allocations, 1u);
  EXPECT_GE(R.Stats.Frees, 1u);
  EXPECT_GE(R.Stats.Loads, 1u);
  EXPECT_GE(R.Stats.Stores, 1u);
  EXPECT_GT(R.Stats.totalOperations(), 0u);
}

TEST(ModelStats, StrictLogicalModelNeverRealizes) {
  RunResult R = runUnder(ModelKind::Logical);
  // The strict logical model faults at the first cast...
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Undefined);
  // ...and never gives any block a concrete address.
  EXPECT_EQ(R.Stats.Realizations, 0u);
  EXPECT_EQ(R.Stats.UndefinedFaults, 1u);
}

TEST(ModelStats, LooseLogicalModelCountsCastsButNeverRealizes) {
  RunResult R = runUnder(ModelKind::Logical, nullptr, /*Loose=*/true);
  EXPECT_GE(R.Stats.CastsToInt, 1u);
  EXPECT_EQ(R.Stats.Realizations, 0u);
}

TEST(ModelStats, EagerModelRealizesConcreteBirthsAtAllocation) {
  // The Section 3.4 alternative decides each block's nature at allocation:
  // a concretely-born block counts as realized immediately, a logical one
  // never does (its casts fault instead).
  EagerQuasiMemory Concrete{MemoryConfig{},
                            std::make_unique<ConstantKindOracle>(true)};
  ASSERT_TRUE(Concrete.allocate(2).ok());
  EXPECT_EQ(Concrete.trace().stats().Realizations, 1u);

  EagerQuasiMemory Logical{MemoryConfig{},
                           std::make_unique<ConstantKindOracle>(false)};
  Value P = Logical.allocate(2).value();
  EXPECT_EQ(Logical.trace().stats().Realizations, 0u);
  EXPECT_FALSE(Logical.castPtrToInt(P).ok());
  EXPECT_EQ(Logical.trace().stats().CastsToInt, 0u);
}

TEST(ModelStats, ConcreteModelRealizesAtAllocation) {
  RunResult R = runUnder(ModelKind::Concrete);
  EXPECT_EQ(R.Behav, Behavior::terminated({Event::output(42)}));
  EXPECT_EQ(R.Stats.Realizations, R.Stats.Allocations);
  EXPECT_EQ(R.Stats.CastsToInt, 1u);
}

TEST(ModelStats, LiveBlockAndRealizedByteAccounting) {
  QuasiConcreteMemory M{MemoryConfig{}};
  Value P1 = M.allocate(4).value();
  Value P2 = M.allocate(8).value();
  EXPECT_EQ(M.trace().stats().LiveBlocks, 2u);
  EXPECT_EQ(M.trace().stats().PeakLiveBlocks, 2u);
  EXPECT_EQ(M.trace().stats().RealizedBytes, 0u);
  ASSERT_TRUE(M.castPtrToInt(P1).ok());
  EXPECT_EQ(M.trace().stats().RealizedBytes, 4u * sizeof(Word));
  ASSERT_TRUE(M.deallocate(P1).ok());
  ASSERT_TRUE(M.deallocate(P2).ok());
  EXPECT_EQ(M.trace().stats().LiveBlocks, 0u);
  EXPECT_EQ(M.trace().stats().PeakLiveBlocks, 2u);
  EXPECT_EQ(M.trace().stats().RealizedBytes, 0u);
  EXPECT_EQ(M.trace().stats().PeakRealizedBytes, 4u * sizeof(Word));
}

TEST(ModelStats, AccumulateSumsCountersAndMaxesPeaks) {
  ModelStats A;
  A.Loads = 3;
  A.PeakLiveBlocks = 7;
  ModelStats B;
  B.Loads = 4;
  B.PeakLiveBlocks = 5;
  A.accumulate(B);
  EXPECT_EQ(A.Loads, 7u);
  EXPECT_EQ(A.PeakLiveBlocks, 7u);
}

TEST(ModelStats, RenderersNameEveryHeadlineCounter) {
  ModelStats S;
  S.Realizations = 9;
  EXPECT_NE(S.toString().find("realizations:"), std::string::npos);
  EXPECT_NE(S.toJson().find("\"realizations\":9"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Trace sinks
//===----------------------------------------------------------------------===//

TEST(TraceSink, CollectingSinkSeesEveryOperationClass) {
  CollectingTraceSink Sink;
  RunResult R = runUnder(ModelKind::QuasiConcrete, &Sink);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  ASSERT_FALSE(Sink.events().empty());

  auto countKind = [&](MemEventKind K) {
    size_t N = 0;
    for (const MemEvent &E : Sink.events())
      N += E.Kind == K;
    return N;
  };
  EXPECT_GE(countKind(MemEventKind::Alloc), 1u);
  EXPECT_GE(countKind(MemEventKind::Store), 1u);
  EXPECT_GE(countKind(MemEventKind::Load), 1u);
  EXPECT_EQ(countKind(MemEventKind::CastToInt), 1u);
  EXPECT_EQ(countKind(MemEventKind::CastToPtr), 1u);
  EXPECT_EQ(countKind(MemEventKind::Realize), 1u);
  EXPECT_GE(countKind(MemEventKind::Free), 1u);

  // Step counters are threaded from the interpreter: non-decreasing.
  uint64_t Last = 0;
  for (const MemEvent &E : Sink.events()) {
    EXPECT_GE(E.Step, Last);
    Last = E.Step;
  }

  // The realizing cast is flagged and carries the concrete address.
  for (const MemEvent &E : Sink.events())
    if (E.Kind == MemEventKind::CastToInt) {
      EXPECT_TRUE(E.RealizedNow);
      EXPECT_TRUE(E.ConcreteAddr.has_value());
    }
}

TEST(TraceSink, RunsWithoutSinkStillMaintainStats) {
  RunResult R = runUnder(ModelKind::QuasiConcrete, /*Sink=*/nullptr);
  EXPECT_EQ(R.Stats.Realizations, 1u);
}

TEST(TraceSink, NullSinkDiscardsEventsButStatsSurvive) {
  NullTraceSink Sink;
  RunResult R = runUnder(ModelKind::QuasiConcrete, &Sink);
  EXPECT_EQ(R.Stats.Realizations, 1u);
}

TEST(TraceSink, ClearEmptiesTheLog) {
  CollectingTraceSink Sink;
  (void)runUnder(ModelKind::QuasiConcrete, &Sink);
  ASSERT_FALSE(Sink.events().empty());
  Sink.clear();
  EXPECT_TRUE(Sink.events().empty());
}

TEST(TraceSink, JsonlSinkWritesOneObjectPerLine) {
  CollectingTraceSink Collector;
  (void)runUnder(ModelKind::QuasiConcrete, &Collector);
  std::ostringstream Out;
  JsonlTraceSink Jsonl(Out);
  for (const MemEvent &E : Collector.events())
    Jsonl.onEvent(E);

  std::istringstream In(Out.str());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    ASSERT_FALSE(Line.empty());
    EXPECT_EQ(Line.front(), '{');
    EXPECT_EQ(Line.back(), '}');
    EXPECT_NE(Line.find("\"step\":"), std::string::npos);
    EXPECT_NE(Line.find("\"kind\":\""), std::string::npos);
  }
  EXPECT_EQ(Lines, Collector.events().size());
}

TEST(TraceSink, ClonedMemoriesDoNotPolluteTheParentTrace) {
  CollectingTraceSink Sink;
  QuasiConcreteMemory M{MemoryConfig{}};
  M.trace().setSink(&Sink);
  (void)M.allocate(2);
  size_t Before = Sink.events().size();
  std::unique_ptr<Memory> Clone = M.clone();
  (void)Clone->allocate(2); // lands in the clone's fresh, sink-less trace
  EXPECT_EQ(Sink.events().size(), Before);
  EXPECT_EQ(M.trace().stats().Allocations, 1u);
}

//===----------------------------------------------------------------------===//
// MemEvent rendering and JSON helpers
//===----------------------------------------------------------------------===//

TEST(MemEvent, JsonCarriesAllTaggedFields) {
  MemEvent E;
  E.Kind = MemEventKind::CastToInt;
  E.Step = 12;
  E.Block = 3;
  E.Offset = 1;
  E.ConcreteAddr = 2048;
  E.RealizedNow = true;
  std::string J = E.toJson();
  EXPECT_NE(J.find("\"step\":12"), std::string::npos);
  EXPECT_NE(J.find("\"kind\":\"cast2int\""), std::string::npos);
  EXPECT_NE(J.find("\"block\":3"), std::string::npos);
  EXPECT_NE(J.find("\"offset\":1"), std::string::npos);
  EXPECT_NE(J.find("\"addr\":2048"), std::string::npos);
  EXPECT_NE(J.find("\"realized\":true"), std::string::npos);
}

TEST(MemEvent, FaultEventsNameTheirClass) {
  MemEvent E;
  E.Kind = MemEventKind::Fault;
  E.FaultClass = Fault::Kind::OutOfMemory;
  EXPECT_NE(E.toJson().find("\"class\":\"no-behavior\""), std::string::npos);
  E.FaultClass = Fault::Kind::Undefined;
  EXPECT_NE(E.toJson().find("\"class\":\"undefined\""), std::string::npos);
}

TEST(Telemetry, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(Telemetry, JsonObjectBuildsCommaSeparatedFields) {
  JsonObject O;
  O.field("a", static_cast<uint64_t>(1)).field("b", "x").fieldBool("c", true);
  EXPECT_EQ(O.str(), "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

//===----------------------------------------------------------------------===//
// Pass metrics
//===----------------------------------------------------------------------===//

TEST(PassMetrics, ManagerRecordsPerPassCounters) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var int a, int b;
  a = 2 + 3;
  b = a * 1;
  output(b);
}
)");
  ASSERT_TRUE(P.has_value());
  PassManager PM;
  PM.add(std::make_unique<ConstPropPass>());
  PM.add(std::make_unique<ArithSimplifyPass>());
  EXPECT_TRUE(PM.run(*P, 8));
  ASSERT_EQ(PM.metrics().size(), 2u);
  for (const PassMetrics &M : PM.metrics()) {
    EXPECT_FALSE(M.PassName.empty());
    EXPECT_GE(M.Invocations, 1u);
    EXPECT_GT(M.InstrsBefore, 0u);
    EXPECT_NE(M.toString().find("invocations="), std::string::npos);
    EXPECT_NE(M.toJson().find("\"pass\":\""), std::string::npos);
  }
  EXPECT_GE(PM.metrics()[0].Rewrites, 1u); // constprop folds 2 + 3
}

TEST(PassMetrics, CountInstructionsWalksNestedBodies) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var int i;
  i = 2;
  while (i) {
    if (i) { i = i - 1; } else { i = 0; }
  }
  output(i);
}
)");
  ASSERT_TRUE(P.has_value());
  // i=2; while; if; i=i-1; i=0; output  ->  6 non-Seq instructions.
  EXPECT_EQ(countInstructions(P->Functions.front()), 6u);
}

//===----------------------------------------------------------------------===//
// Event.h sequence helpers: edge cases
//===----------------------------------------------------------------------===//

TEST(EventHelpers, EmptySequenceRendersPlaceholder) {
  EXPECT_EQ(eventsToString({}), "<no events>");
}

TEST(EventHelpers, SingleAndMultiEventRendering) {
  EXPECT_EQ(eventsToString({Event::output(1)}), "out(1)");
  EXPECT_EQ(eventsToString({Event::input(2), Event::output(3)}),
            "in(2).out(3)");
}

TEST(EventHelpers, EmptyPrefixMatchesAnything) {
  EXPECT_TRUE(isEventPrefix({}, {}));
  EXPECT_TRUE(isEventPrefix({}, {Event::output(1)}));
}

TEST(EventHelpers, PrefixEqualToFullSequenceMatches) {
  std::vector<Event> Seq = {Event::input(1), Event::output(2)};
  EXPECT_TRUE(isEventPrefix(Seq, Seq));
}

TEST(EventHelpers, LongerPrefixNeverMatches) {
  EXPECT_FALSE(isEventPrefix({Event::output(1)}, {}));
  EXPECT_FALSE(isEventPrefix({Event::output(1), Event::output(2)},
                             {Event::output(1)}));
}

TEST(EventHelpers, MismatchedKindOrValueRejected) {
  // Same value, different kind.
  EXPECT_FALSE(isEventPrefix({Event::input(1)}, {Event::output(1)}));
  // Same kind, different value.
  EXPECT_FALSE(isEventPrefix({Event::output(1)}, {Event::output(2)}));
  // Mismatch mid-sequence.
  EXPECT_FALSE(isEventPrefix({Event::output(1), Event::input(2)},
                             {Event::output(1), Event::output(2)}));
}
