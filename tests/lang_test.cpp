//===- tests/lang_test.cpp - Lexer, parser, pretty printer tests ----------===//

#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/PrettyPrint.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Diags);
  if (!P) {
    ADD_FAILURE() << "parse failed:\n" << Diags.toString();
    return Program{};
  }
  return std::move(*P);
}

} // namespace

TEST(Lexer, TokenizesKeywordsAndPunctuation) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("main() { var int x; x = 1 + 2; }", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].TokenKind, Token::Kind::Identifier);
  EXPECT_EQ(Tokens[0].Spelling, "main");
  EXPECT_EQ(Tokens.back().TokenKind, Token::Kind::Eof);
}

TEST(Lexer, DistinguishesAssignFromEquality) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("= == =", Diags);
  EXPECT_EQ(Tokens[0].TokenKind, Token::Kind::Assign);
  EXPECT_EQ(Tokens[1].TokenKind, Token::Kind::EqualEq);
  EXPECT_EQ(Tokens[2].TokenKind, Token::Kind::Assign);
}

TEST(Lexer, AcceptsBothAmpSpellings) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("a & b && c", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Tokens[1].TokenKind, Token::Kind::Amp);
  EXPECT_EQ(Tokens[3].TokenKind, Token::Kind::Amp);
}

TEST(Lexer, SkipsComments) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("x // line\n /* block\n comment */ y", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 3u); // x, y, EOF
  EXPECT_EQ(Tokens[1].Spelling, "y");
}

TEST(Lexer, ReportsBadCharactersAndOverflow) {
  DiagnosticEngine Diags;
  (void)tokenize("x $ y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  (void)tokenize("99999999999999999999", Diags2);
  EXPECT_TRUE(Diags2.hasErrors());
}

TEST(Lexer, TracksLocations) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize("a\n  b", Diags);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(Parser, ParsesFunctionWithLocals) {
  Program P = parseOk("foo(ptr p, int n) { var ptr q, int a; q = malloc(n); "
                      "a = (int) p; *q = 123; }");
  ASSERT_EQ(P.Functions.size(), 1u);
  const FunctionDecl &F = P.Functions[0];
  EXPECT_EQ(F.Name, "foo");
  ASSERT_EQ(F.Params.size(), 2u);
  EXPECT_EQ(F.Params[0].Ty, Type::Ptr);
  EXPECT_EQ(F.Params[1].Ty, Type::Int);
  ASSERT_EQ(F.Locals.size(), 2u);
  ASSERT_EQ(F.Body->Stmts.size(), 3u);
  EXPECT_EQ(F.Body->Stmts[0]->InstrKind, Instr::Kind::Assign);
  EXPECT_EQ(F.Body->Stmts[0]->Rhs->RExpKind, RExp::Kind::Malloc);
  EXPECT_EQ(F.Body->Stmts[1]->Rhs->RExpKind, RExp::Kind::Cast);
  EXPECT_EQ(F.Body->Stmts[2]->InstrKind, Instr::Kind::Store);
}

TEST(Parser, ParsesGlobalsAndExterns) {
  Program P = parseOk("global g; global tab[16]; extern bar(ptr p);");
  ASSERT_EQ(P.Globals.size(), 2u);
  EXPECT_EQ(P.Globals[0].SizeWords, 1u);
  EXPECT_EQ(P.Globals[1].SizeWords, 16u);
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_TRUE(P.Functions[0].isExtern());
}

TEST(Parser, DistinguishesCastFromParenthesizedExp) {
  Program P = parseOk("f(ptr p, int a, int b) { var int x, ptr q; "
                      "x = (a + b); q = (ptr) a; x = (int) p; }");
  const auto &Stmts = P.Functions[0].Body->Stmts;
  EXPECT_EQ(Stmts[0]->Rhs->RExpKind, RExp::Kind::Pure);
  EXPECT_EQ(Stmts[1]->Rhs->RExpKind, RExp::Kind::Cast);
  EXPECT_EQ(Stmts[1]->Rhs->CastTo, Type::Ptr);
  EXPECT_EQ(Stmts[2]->Rhs->CastTo, Type::Int);
}

TEST(Parser, PrecedenceIsEqThenAndThenAddThenMul) {
  DiagnosticEngine Diags;
  auto E = parseExpression("1 + 2 * 3 == 7 & 1", Diags);
  ASSERT_TRUE(E) << Diags.toString();
  // Parsed as (1 + (2*3)) == (7 & 1)? No: '&' binds tighter than '=='
  // but looser than '+'; so ((1 + 2*3) == ... wait — check shape:
  // eq( add(1, mul(2,3)), and(7, 1) ) is wrong: & is below == in our
  // grammar: eq is lowest. "1 + 2*3 == 7 & 1" => eq(1+2*3, 7&1)?
  // Grammar: eq := and ('==' and)*, and := add ('&' add)*.
  // LHS and-exp: 1 + 2*3 (no &); RHS and-exp: 7 & 1.
  ASSERT_EQ(E->Op, BinaryOp::Eq);
  EXPECT_EQ(E->Lhs->Op, BinaryOp::Add);
  EXPECT_EQ(E->Lhs->Rhs->Op, BinaryOp::Mul);
  EXPECT_EQ(E->Rhs->Op, BinaryOp::And);
}

TEST(Parser, IfElseWhileAndCalls) {
  Program P = parseOk(R"(
extern bar(int x);
main() {
  var int a;
  a = input();
  if (a == 0) { output(1); } else { output(2); }
  while (a) { a = a - 1; }
  bar(a);
}
)");
  const auto &Stmts = P.Functions[1].Body->Stmts;
  ASSERT_EQ(Stmts.size(), 4u);
  EXPECT_EQ(Stmts[1]->InstrKind, Instr::Kind::If);
  EXPECT_EQ(Stmts[2]->InstrKind, Instr::Kind::While);
  EXPECT_EQ(Stmts[3]->InstrKind, Instr::Kind::Call);
}

TEST(Parser, RejectsSyntaxErrors) {
  for (const char *Bad : {
           "main() { x = ; }",
           "main() { if a { } }",
           "main( { }",
           "global ;",
           "main() { *; }",
           "main() { x 5; }",
       }) {
    DiagnosticEngine Diags;
    EXPECT_FALSE(parseProgram(Bad, Diags).has_value()) << Bad;
    EXPECT_TRUE(Diags.hasErrors()) << Bad;
  }
}

TEST(Parser, FreeAsExpressionStatement) {
  Program P = parseOk("main(ptr p) { free(p); output(1); }");
  const auto &Stmts = P.Functions[0].Body->Stmts;
  EXPECT_EQ(Stmts[0]->InstrKind, Instr::Kind::Assign);
  EXPECT_TRUE(Stmts[0]->Var.empty());
  EXPECT_EQ(Stmts[0]->Rhs->RExpKind, RExp::Kind::Free);
}

TEST(PrettyPrint, RoundTripsThroughTheParser) {
  const std::string Source = R"(global h[8];

extern bar(ptr x);

foo(ptr p, int n) {
  var ptr q, int a;
  q = malloc(n);
  a = (int) p;
  *q = a + 1;
  a = *q;
  if (a == 0) {
    output(a);
  } else {
    while (a) {
      a = a - 1;
    }
  }
  bar(q);
  free(q);
}
)";
  Program P1 = parseOk(Source);
  std::string Printed1 = printProgram(P1);
  Program P2 = parseOk(Printed1);
  std::string Printed2 = printProgram(P2);
  EXPECT_EQ(Printed1, Printed2);
}

TEST(PrettyPrint, MinimalParenthesization) {
  DiagnosticEngine Diags;
  auto E = parseExpression("(a + b) * c - d", Diags);
  ASSERT_TRUE(E);
  EXPECT_EQ(printExp(*E), "(a + b) * c - d");
  auto E2 = parseExpression("a + b * c", Diags);
  EXPECT_EQ(printExp(*E2), "a + b * c");
}

TEST(Ast, CloneIsDeepAndStructurallyEqual) {
  Program P = parseOk("main() { var int a; a = 1 + 2 * 3; output(a); }");
  Program Q = P.clone();
  EXPECT_EQ(printProgram(P), printProgram(Q));
  // Mutating the clone leaves the original untouched.
  Q.Functions[0].Body->Stmts.clear();
  EXPECT_NE(printProgram(P), printProgram(Q));
}

TEST(Ast, StructuralEquality) {
  DiagnosticEngine Diags;
  auto A = parseExpression("a + b * 2", Diags);
  auto B = parseExpression("a + b * 2", Diags);
  auto C = parseExpression("a + b * 3", Diags);
  EXPECT_TRUE(Exp::structurallyEqual(*A, *B));
  EXPECT_FALSE(Exp::structurallyEqual(*A, *C));
}
