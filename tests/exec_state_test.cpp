//===- tests/exec_state_test.cpp - Reset-and-reuse differential tests -----===//
//
// The reset-and-reuse protocol (Machine::reset, the models' typed reset(),
// ExecState) is a pure storage optimization: a reused execution must be
// observationally identical to a fresh one — same behavior string, step
// count, statistics, and consistency verdict — under every model. These
// tests pin that equivalence, both on hand-written programs with golden
// behavior strings and on randomized programs, and pin the refinement
// report's byte-identity across --jobs levels now that workers reuse
// per-slot state.
//
//===----------------------------------------------------------------------===//

#include "ProgramGenerator.h"

#include "core/Vm.h"
#include "ir/Compile.h"
#include "memory/ConcreteMemory.h"
#include "refinement/RefinementChecker.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;
using qcm_test::ProgramGenerator;

namespace {

Program compileOrFail(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << "program rejected:\n" << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

/// A program that exercises allocation, stores, loads, casts, free, and
/// output — every memory operation the models implement.
const char *CastHeavySource = R"(
main() {
  var ptr p, ptr q, int a, int v;
  p = malloc(4);
  *p = 7;
  *(p + 1) = 8;
  a = (int) p;
  a = a + 1;
  q = (ptr) a;
  v = *q;
  a = *p;
  output(v + a);
  free(p);
}
)";

RunConfig configFor(ModelKind Model) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = 1u << 10;
  C.Interp.StepLimit = 200'000;
  if (Model == ModelKind::Logical) {
    // CompCert-style: transparent casts need the Loose discipline so the
    // logical address may inhabit the integer variable (Section 2.2).
    C.LogicalCasts = LogicalMemory::CastBehavior::TransparentNop;
    C.Interp.Discipline = TypeDiscipline::Loose;
  }
  C.Kinds = [] {
    return std::make_unique<FixedKindOracle>(
        std::vector<bool>{true, false, true});
  };
  return C;
}

void expectSameResult(const RunResult &Fresh, const RunResult &Reused,
                      const std::string &Label) {
  EXPECT_EQ(Fresh.Behav, Reused.Behav)
      << Label << ": fresh " << Fresh.Behav.toString() << " vs reused "
      << Reused.Behav.toString();
  EXPECT_EQ(Fresh.Steps, Reused.Steps) << Label;
  EXPECT_EQ(Fresh.ConsistencyError, Reused.ConsistencyError) << Label;
}

} // namespace

TEST(ExecState, ReuseMatchesFreshAcrossAllModels) {
  Program P = compileOrFail(CastHeavySource);
  auto Module = qir::compileProgram(P);
  // Golden behavior strings per model: the cast-heavy program terminates
  // under every model except strict-cast logical (covered separately), and
  // reuse must reproduce them exactly.
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::Logical,
                          ModelKind::QuasiConcrete, ModelKind::EagerQuasi}) {
    RunConfig C = configFor(Model);
    ExecState State;
    RunResult First = State.run(Module, C);
    EXPECT_EQ(First.Behav.toString(), "out(15), term")
        << modelKindName(Model);
    // Three more runs through the same state: each must match a fresh run
    // bit for bit, and the state must not accumulate anything observable.
    for (int Round = 0; Round < 3; ++Round) {
      RunResult Fresh = runCompiled(Module, C);
      RunResult Reused = State.run(Module, C);
      expectSameResult(Fresh, Reused,
                       std::string(modelKindName(Model)) + " round " +
                           std::to_string(Round));
      EXPECT_EQ(Reused.Behav.toString(), "out(15), term");
    }
  }
}

TEST(ExecState, ReuseMatchesFreshOnFaultingRuns) {
  // Strict-cast logical faults at the first cast; a reused state must
  // report the identical fault and then be cleanly reusable for a
  // successful run of a different program.
  Program Faulting = compileOrFail(CastHeavySource);
  Program Clean = compileOrFail("main() { var int a; a = 3; output(a); }");
  auto FaultingModule = qir::compileProgram(Faulting);
  auto CleanModule = qir::compileProgram(Clean);

  RunConfig C = configFor(ModelKind::Logical);
  C.LogicalCasts = LogicalMemory::CastBehavior::Error;

  ExecState State;
  RunResult Fresh = runCompiled(FaultingModule, C);
  RunResult Reused = State.run(FaultingModule, C);
  expectSameResult(Fresh, Reused, "faulting logical");
  EXPECT_TRUE(Fresh.Behav.toString().find("undef") != std::string::npos)
      << Fresh.Behav.toString();

  RunResult After = State.run(CleanModule, C);
  EXPECT_EQ(After.Behav.toString(), "out(3), term");
}

TEST(ExecState, SwitchingModelsRebuildsCleanly) {
  Program P = compileOrFail(CastHeavySource);
  auto Module = qir::compileProgram(P);
  ExecState State;
  // Interleave all four models through one state: every switch rebuilds,
  // every repeat reuses, and both paths must match fresh execution.
  for (int Round = 0; Round < 2; ++Round)
    for (ModelKind Model : {ModelKind::QuasiConcrete, ModelKind::Concrete,
                            ModelKind::EagerQuasi, ModelKind::Logical}) {
      RunConfig C = configFor(Model);
      expectSameResult(runCompiled(Module, C), State.run(Module, C),
                       modelKindName(Model));
    }
}

TEST(ExecState, ReuseAppliesTheNewOracleAndTape) {
  // Reuse must not leak the previous run's oracle decisions or input
  // cursor: a last-fit rerun sees different concrete addresses, a new tape
  // yields new outputs.
  Program P = compileOrFail(R"(
main() {
  var ptr p, int a;
  p = malloc(2);
  a = (int) p;
  output(a);
  a = input();
  output(a);
}
)");
  auto Module = qir::compileProgram(P);
  RunConfig FirstFit = configFor(ModelKind::QuasiConcrete);
  FirstFit.Oracle = [] { return std::make_unique<FirstFitOracle>(); };
  FirstFit.Interp.InputTape = {11};
  RunConfig LastFit = FirstFit;
  LastFit.Oracle = [] { return std::make_unique<LastFitOracle>(); };
  LastFit.Interp.InputTape = {22};

  ExecState State;
  RunResult A1 = State.run(Module, FirstFit);
  RunResult B1 = State.run(Module, LastFit);
  RunResult A2 = State.run(Module, FirstFit);
  expectSameResult(runCompiled(Module, FirstFit), A1, "first-fit");
  expectSameResult(runCompiled(Module, LastFit), B1, "last-fit");
  expectSameResult(A1, A2, "first-fit repeat");
  EXPECT_NE(A1.Behav.toString(), B1.Behav.toString());
}

TEST(ExecState, StatsAreScopedToOneRun) {
  Program P = compileOrFail(CastHeavySource);
  auto Module = qir::compileProgram(P);
  RunConfig C = configFor(ModelKind::QuasiConcrete);
  ExecState State;
  RunResult First = State.run(Module, C);
  RunResult Second = State.run(Module, C);
  // Statistics must restart from zero on reuse, not accumulate.
  EXPECT_EQ(First.Stats.Allocations, Second.Stats.Allocations);
  EXPECT_EQ(First.Stats.Loads, Second.Stats.Loads);
  EXPECT_EQ(First.Stats.CastsToInt, Second.Stats.CastsToInt);
}

//===----------------------------------------------------------------------===//
// Randomized differential property
//===----------------------------------------------------------------------===//

class ExecStateFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecStateFuzz, ReusedStateMatchesFreshRunsOnRandomPrograms) {
  // One long-lived state per model executes a stream of random programs;
  // every result must equal a fresh runCompiled of the same program. This
  // is the property the exploration engine relies on when it funnels a
  // whole grid through per-worker slots.
  ProgramGenerator Generator(GetParam() ^ 0x777);
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::Logical,
                          ModelKind::QuasiConcrete, ModelKind::EagerQuasi}) {
    ExecState State;
    for (int Round = 0; Round < 3; ++Round) {
      Program P = compileOrFail(Generator.generate());
      auto Module = qir::compileProgram(P);
      RunConfig C = configFor(Model);
      C.Oracle = [] { return std::make_unique<RandomOracle>(5); };
      RunResult Fresh = runCompiled(Module, C);
      RunResult Reused = State.run(Module, C);
      expectSameResult(Fresh, Reused,
                       std::string(modelKindName(Model)) + " round " +
                           std::to_string(Round));
      EXPECT_EQ(Fresh.Stats.Allocations, Reused.Stats.Allocations);
      EXPECT_EQ(Fresh.Stats.Stores, Reused.Stats.Stores);
    }
  }
}

TEST_P(ExecStateFuzz, RefinementReportsAreIdenticalAtEveryJobsLevel) {
  // The whole point of plan-order merging plus per-slot reuse: the
  // refinement report is byte-identical whether the grid runs serially,
  // with reused slots, or across many workers.
  ProgramGenerator Generator(GetParam() ^ 0x888);
  Program P = compileOrFail(Generator.generate());
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 10;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 10;
  Job.BaseSrc.Interp.StepLimit = 200'000;
  Job.BaseTgt.Interp.StepLimit = 200'000;

  Job.Exec.Jobs = 1;
  std::string Serial = checkRefinement(Job).toString();
  for (unsigned Jobs : {2u, 4u, 8u}) {
    Job.Exec.Jobs = Jobs;
    EXPECT_EQ(checkRefinement(Job).toString(), Serial)
        << "report differs at jobs=" << Jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecStateFuzz,
                         ::testing::Range<uint64_t>(2000, 2012));

//===----------------------------------------------------------------------===//
// ConcreteMemory snapshot regression
//===----------------------------------------------------------------------===//

TEST(ConcreteSnapshot, OrderedTraversalMatchesPerCellSemantics) {
  // Regression for the snapshot rewrite (one ordered traversal over
  // contiguous spans instead of a per-cell map lookup): contents, bases,
  // sizes, and id order must be exactly what the per-cell version
  // produced, including retired (freed) blocks with empty contents.
  ConcreteMemory M(MemoryConfig{.AddressWords = 64});
  Value P1 = M.allocate(3).value();
  Value P2 = M.allocate(2).value();
  Value P3 = M.allocate(4).value();
  for (Word I = 0; I < 3; ++I)
    ASSERT_TRUE(
        M.store(Value::makeInt(P1.intValue() + I), Value::makeInt(10 + I))
            .ok());
  ASSERT_TRUE(M.store(P2, Value::makeInt(99)).ok());
  ASSERT_TRUE(M.deallocate(P2).ok());

  auto Snap = M.snapshot();
  ASSERT_EQ(Snap.size(), 3u);
  // Ids ascend in allocation order regardless of address order.
  EXPECT_EQ(Snap[0].first, 1u);
  EXPECT_EQ(Snap[1].first, 2u);
  EXPECT_EQ(Snap[2].first, 3u);

  const Block &B1 = Snap[0].second;
  EXPECT_TRUE(B1.Valid);
  EXPECT_EQ(B1.Base, std::optional<Word>(P1.intValue()));
  ASSERT_EQ(B1.Contents.size(), 3u);
  EXPECT_EQ(B1.Contents[0], Value::makeInt(10));
  EXPECT_EQ(B1.Contents[2], Value::makeInt(12));

  const Block &B2 = Snap[1].second;
  EXPECT_FALSE(B2.Valid);
  EXPECT_EQ(B2.Size, 2u);
  EXPECT_TRUE(B2.Contents.empty()); // freed contents are unobservable

  const Block &B3 = Snap[2].second;
  EXPECT_TRUE(B3.Valid);
  ASSERT_EQ(B3.Contents.size(), 4u);
  EXPECT_EQ(B3.Contents[1], Value::makeInt(0)); // fresh memory reads 0
}

TEST(ConcreteSnapshot, SnapshotsAgreeWithClones) {
  // snapshot() of a memory and of its clone() must be equal element-wise —
  // the clone re-allocates every span in its own slab, so this catches any
  // span-copy mistake in either path.
  ConcreteMemory M(MemoryConfig{.AddressWords = 128});
  std::vector<Value> Ptrs;
  for (Word N : {Word(2), Word(5), Word(1), Word(7)})
    Ptrs.push_back(M.allocate(N).value());
  for (size_t I = 0; I < Ptrs.size(); ++I)
    ASSERT_TRUE(
        M.store(Ptrs[I], Value::makeInt(static_cast<Word>(100 + I))).ok());
  ASSERT_TRUE(M.deallocate(Ptrs[1]).ok());

  auto Copy = M.clone();
  auto A = M.snapshot();
  auto B = Copy->snapshot();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].first, B[I].first);
    EXPECT_EQ(A[I].second, B[I].second);
  }
}
