//===- tests/lowering_test.cpp - Section 6.6 compiler tests ---------------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/Lowering.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

} // namespace

TEST(Lowering, IdentityCompilerPreservesSyntax) {
  Program P = compile(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  output(a == a);
}
)");
  Program Compiled = identityCompile(P);
  EXPECT_EQ(printProgram(P), printProgram(Compiled));
}

TEST(Lowering, RemovesDeadCasts) {
  Program P = compile(R"(
extern bar();
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  bar();
  output(7);
}
)");
  Program Lowered = lowerToConcrete(P);
  std::string Out = printProgram(Lowered);
  EXPECT_EQ(Out.find("(int) p"), std::string::npos);
  // The allocation stays unless the dead-alloc gate is on.
  EXPECT_NE(Out.find("malloc"), std::string::npos);
}

TEST(Lowering, KeepsLiveCasts) {
  Program P = compile(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  output(a == a);
}
)");
  Program Lowered = lowerToConcrete(P);
  EXPECT_NE(printProgram(Lowered).find("(int) p"), std::string::npos);
}

TEST(Lowering, CombinedCastAndAllocRemoval) {
  // Section 3.6: dead casts combined with dead blocks are removed during
  // the translation to the concrete model (the Figure 5 situation).
  Program P = compile(R"(
extern bar();
main() {
  var ptr q, int a, int r;
  q = malloc(1);
  a = (int) q;
  r = a * 123;
  bar();
}
)");
  LoweringOptions Options;
  Options.EliminateDeadAllocs = true;
  Program Lowered = lowerToConcrete(P, Options);
  std::string Out = printProgram(Lowered);
  EXPECT_EQ(Out.find("(int) q"), std::string::npos);
  EXPECT_EQ(Out.find("malloc"), std::string::npos);
  EXPECT_NE(Out.find("bar();"), std::string::npos);
}

TEST(Lowering, LoweredProgramRunsOnTheConcreteModel) {
  Program P = compile(R"(
main() {
  var ptr p, ptr q, int a, int r;
  p = malloc(2);
  *(p + 1) = 9;
  a = (int) p;
  q = (ptr) (a + 1);
  r = *q;
  output(r);
}
)");
  Program Lowered = lowerToConcrete(P);
  RunConfig C;
  C.Model = ModelKind::Concrete;
  C.MemConfig.AddressWords = 1u << 12;
  RunResult R = runProgram(Lowered, C);
  ASSERT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  ASSERT_EQ(R.Behav.Events.size(), 1u);
  EXPECT_EQ(R.Behav.Events[0], Event::output(9));
}

TEST(Lowering, QuasiAndConcreteAgreeOnCastHeavyPrograms) {
  // The identity compilation quasi -> concrete preserves behavior on a
  // program exercising casts, arithmetic on addresses, and round trips.
  Program P = compile(R"(
main() {
  var ptr p, ptr q, int a, int b, int i, int r;
  p = malloc(4);
  i = 0;
  while (i == 4) { i = 0; }
  a = (int) p;
  b = a + 3;
  q = (ptr) b;
  *q = 77;
  r = *(p + 3);
  output(r);
  output(b - a);
}
)");
  RunConfig Quasi;
  Quasi.Model = ModelKind::QuasiConcrete;
  Quasi.MemConfig.AddressWords = 1u << 12;
  RunConfig Concrete = Quasi;
  Concrete.Model = ModelKind::Concrete;
  RunResult R1 = runProgram(P, Quasi);
  RunResult R2 = runProgram(P, Concrete);
  EXPECT_EQ(R1.Behav, R2.Behav);
  EXPECT_EQ(R1.Behav.BehaviorKind, Behavior::Kind::Terminated);
}
