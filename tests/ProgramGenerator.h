//===- tests/ProgramGenerator.h - Random well-typed programs ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random, statically well-typed programs in the Section 2
/// language for property testing: interpreter robustness, memory-model
/// consistency under arbitrary operation interleavings, self-refinement,
/// optimizer soundness, and parser round trips.
///
/// Generated programs always terminate (loops are bounded counters and the
/// call graph is acyclic) but freely perform casts, frees, and pointer
/// arithmetic — undefined behavior and out-of-memory are legitimate,
/// classified outcomes, not generator bugs.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_TESTS_PROGRAMGENERATOR_H
#define QCM_TESTS_PROGRAMGENERATOR_H

#include "support/DeltaReduce.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace qcm_test {

struct GeneratorConfig {
  unsigned NumFunctions = 3;
  unsigned StatementsPerFunction = 10;
  unsigned MaxExprDepth = 3;
  /// Loop bodies run at most this many iterations (counter loops).
  unsigned MaxLoopTrips = 4;
};

/// Generates the source text of a random program with entry `main`.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed, GeneratorConfig Config = {})
      : Gen(Seed), Config(Config) {}

  std::string generate() {
    std::string Source = "global gcell[4];\n\n";
    // Functions f1..fN; fK may call only fJ with J > K, so the call graph
    // is acyclic. main is f0 conceptually.
    for (unsigned F = Config.NumFunctions; F >= 1; --F)
      Source += makeFunction("f" + std::to_string(F), F);
    Source += makeFunction("main", 0);
    return Source;
  }

private:
  qcm::Rng Gen;
  GeneratorConfig Config;
  unsigned LoopCounter = 0;

  uint64_t pick(uint64_t Bound) { return Gen.nextBelow(Bound); }

  std::string intVar(unsigned I) { return "i" + std::to_string(I); }
  std::string ptrVar(unsigned I) { return "p" + std::to_string(I); }

  std::string literal() { return std::to_string(pick(40)); }

  std::string intExp(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0)
      return pick(2) == 0 ? literal() : intVar(pick(3));
    const char *Ops[5] = {"+", "-", "*", "&", "=="};
    return "(" + intExp(Depth - 1) + " " + Ops[pick(5)] + " " +
           intExp(Depth - 1) + ")";
  }

  std::string ptrExp() {
    // A pointer variable, possibly displaced by a small constant kept
    // within the smallest allocation the generator makes (3 words), so
    // that in-bounds accesses dominate; out-of-bounds UB still arises via
    // frees and stale pointers, just not overwhelmingly.
    std::string P = pick(4) == 0 ? std::string("gcell") : ptrVar(pick(2));
    if (pick(3) == 0)
      return "(" + P + " + " + std::to_string(pick(3)) + ")";
    return P;
  }

  std::string statement(unsigned Indent, unsigned Budget, unsigned Fn) {
    std::string Pad(Indent * 2, ' ');
    switch (pick(11)) {
    case 0: // int assignment
      return Pad + intVar(pick(3)) + " = " +
             intExp(Config.MaxExprDepth) + ";\n";
    case 1: // allocation (at least 3 words: see ptrExp)
      return Pad + ptrVar(pick(2)) + " = malloc(" +
             std::to_string(3 + pick(4)) + ");\n";
    case 2: // store
      return Pad + "*" + ptrExp() + " = " + intExp(1) + ";\n";
    case 3: // load
      return Pad + intVar(pick(3)) + " = *" + ptrExp() + ";\n";
    case 4: // cast to integer (realization point)
      return Pad + intVar(pick(3)) + " = (int) " + ptrVar(pick(2)) + ";\n";
    case 5: { // safe cast round trip: i = (int) p; q = (ptr) i;
      std::string I = intVar(pick(3));
      return Pad + I + " = (int) " + ptrVar(pick(2)) + ";\n" + Pad +
             ptrVar(pick(2)) + " = (ptr) " + I + ";\n";
    }
    case 6: // output
      return Pad + "output(" + intExp(1) + ");\n";
    case 7: // free (kept rare: mostly becomes an int assignment)
      if (pick(4) == 0)
        return Pad + "free(" + ptrVar(pick(2)) + ");\n";
      return Pad + intVar(pick(3)) + " = " + intExp(1) + ";\n";
    case 8: { // bounded conditional
      if (Budget == 0)
        return Pad + "output(7);\n";
      std::string S = Pad + "if (" + intExp(1) + ") {\n";
      S += statement(Indent + 1, Budget - 1, Fn);
      S += Pad + "} else {\n";
      S += statement(Indent + 1, Budget - 1, Fn);
      S += Pad + "}\n";
      return S;
    }
    case 9: { // bounded counter loop
      if (Budget == 0)
        return Pad + "output(8);\n";
      std::string Counter = "loop" + std::to_string(LoopCounter++);
      ExtraLocals.push_back(Counter);
      std::string S = Pad + Counter + " = " +
                      std::to_string(1 + pick(Config.MaxLoopTrips)) + ";\n";
      S += Pad + "while (" + Counter + ") {\n";
      S += statement(Indent + 1, Budget - 1, Fn);
      S += std::string(Indent * 2 + 2, ' ') + Counter + " = " + Counter +
           " - 1;\n";
      S += Pad + "}\n";
      return S;
    }
    default: { // call a later function (acyclic)
      if (Fn + 1 > Config.NumFunctions)
        return Pad + "output(9);\n";
      unsigned Callee = Fn + 1 + pick(Config.NumFunctions - Fn);
      if (Callee > Config.NumFunctions)
        Callee = Config.NumFunctions;
      return Pad + "f" + std::to_string(Callee) + "(" + ptrVar(pick(2)) +
             ", " + intExp(1) + ");\n";
    }
    }
  }

  std::string makeFunction(const std::string &Name, unsigned Fn) {
    ExtraLocals.clear();
    std::string Body;
    // Seed the pointer variables so loads/stores have somewhere to go.
    Body += "  p0 = malloc(4);\n";
    Body += "  p1 = malloc(3);\n";
    for (unsigned S = 0; S < Config.StatementsPerFunction; ++S)
      Body += statement(1, 2, Fn);

    std::string Header =
        Name == "main" ? Name + "()" : Name + "(ptr parg, int iarg)";
    std::string Locals =
        "  var ptr p0, ptr p1, int i0, int i1, int i2";
    for (const std::string &L : ExtraLocals)
      Locals += ", int " + L;
    Locals += ";\n";
    std::string Init = Name == "main"
                           ? "  i0 = 1;\n"
                           : "  i0 = iarg;\n  p0 = parg;\n";
    // Note p0 is immediately overwritten by the seeding malloc for main;
    // for callees the seeding mallocs come after so p0 gets fresh blocks
    // anyway — both are fine, the generator only needs well-typedness.
    return Header + " {\n" + Locals + Init + Body + "}\n\n";
  }

  std::vector<std::string> ExtraLocals;
};

/// A self-contained reproduction line for a failing chaos case. The seed
/// rebuilds the exact program (`ProgramGenerator(seed).generate()`), and the
/// fault plan plus model replay the exact execution once the program is in a
/// file: `qcm-run --model=<m> --inject=<plan> prog.qcm`.
inline std::string reproLine(uint64_t Seed, const std::string &ModelName,
                             const std::string &PlanSpec) {
  return "repro: ProgramGenerator(" + std::to_string(Seed) +
         ").generate() > prog.qcm && qcm-run --model=" + ModelName +
         " --inject=" + PlanSpec + " prog.qcm";
}

/// Line-granular delta reduction (greedy ddmin). The implementation moved
/// to support/DeltaReduce.h so the translation-validation pipeline can
/// minimize failing inputs too; this alias keeps the historical test-side
/// name.
inline std::string
minimizeSource(std::string Source,
               const std::function<bool(const std::string &)> &StillFails,
               unsigned MaxChecks = 2000) {
  return qcm::minimizeLines(std::move(Source), StillFails, MaxChecks);
}

} // namespace qcm_test

#endif // QCM_TESTS_PROGRAMGENERATOR_H
