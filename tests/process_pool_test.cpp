//===- tests/process_pool_test.cpp - Crash-quarantining pool tests --------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Exercises the --isolate=process machinery below the tool layer: the
// length-prefixed frame codec (support/Subprocess.h) and the supervising
// ProcessPool (restart with backoff, retry-then-quarantine, hang
// detection, spawn degradation). The test binary doubles as its own
// worker: when invoked with --qcm-child=MODE it speaks the pool protocol
// over stdin/stdout instead of running gtest — which is why this file has
// a custom main and is linked without gtest_main.
//
//===----------------------------------------------------------------------===//

#include "refinement/ProcessPool.h"
#include "support/Subprocess.h"
#include "tools/ToolSupport.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace qcm;

namespace {

std::string selfPath() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "process_pool_test";
  Buf[N] = '\0';
  return Buf;
}

/// The worker side. Every mode performs the handshake (read init frame,
/// reply ready) and then echoes request frames back with the protocol's
/// "done" marker; the mode decides how to misbehave when a request payload
/// contains "boom".
int runChild(const std::string &Mode) {
  std::string Init;
  bool Eof = false;
  if (!readFrameFd(0, Init, Eof))
    return 2;
  if (Mode == "noready")
    return 3; // die before the handshake, every time
  if (!writeFrameFd(1, "{\"ready\":1}"))
    return 0;
  std::string Req;
  while (readFrameFd(0, Req, Eof)) {
    const bool Boom = Req.find("boom") != std::string::npos;
    if (Boom && Mode == "crash")
      std::raise(SIGSEGV);
    if (Boom && Mode == "abort")
      std::abort();
    if (Boom && Mode == "hang") {
      // Produce no frame; the supervisor's watchdog must SIGKILL us.
      ::sleep(60);
      return 0;
    }
    if (Req.find("multi") != std::string::npos) {
      // Sweep-shaped item: progress frames before the done frame. Each
      // arrival refreshes the supervisor's hang deadline.
      if (!writeFrameFd(1, "{\"part\":1}") ||
          !writeFrameFd(1, "{\"part\":2}"))
        return 0;
    }
    if (!writeFrameFd(1, "{\"echo\":\"" + Req + "\",\"done\":true}"))
      return 0;
  }
  return Eof ? 0 : 2;
}

ProcessPool::Config childConfig(const std::string &Mode, unsigned Workers) {
  ProcessPool::Config C;
  C.WorkerArgv = {selfPath(), "--qcm-child=" + Mode};
  C.InitFrame = "{\"qcm-worker\":1}";
  C.Workers = Workers;
  C.BackoffBaseMs = 1; // keep restart-heavy tests fast
  C.BackoffMaxMs = 8;
  return C;
}

std::string itemPayload(size_t I) { return "item-" + std::to_string(I); }

TEST(Framing, RoundTripsPayloads) {
  int Fds[2];
  ASSERT_EQ(0, ::pipe(Fds));
  // Must fit the default 64 KiB pipe buffer with the other frames — this
  // side writes everything before reading anything back.
  std::string Big(32 << 10, 'x');
  Big[7] = '\0'; // payloads are opaque bytes, not C strings
  Big[8] = '\x1f';
  const std::vector<std::string> Payloads = {"", "hello", "{\"a\":1}", Big};
  for (const std::string &P : Payloads)
    ASSERT_TRUE(writeFrameFd(Fds[1], P));
  ::close(Fds[1]);
  std::string Got;
  bool Eof = false;
  for (const std::string &P : Payloads) {
    ASSERT_TRUE(readFrameFd(Fds[0], Got, Eof));
    EXPECT_EQ(P, Got);
  }
  // The close above lands exactly on a frame boundary: clean EOF.
  EXPECT_FALSE(readFrameFd(Fds[0], Got, Eof));
  EXPECT_TRUE(Eof);
  ::close(Fds[0]);
}

TEST(Framing, TruncatedFrameIsNotEof) {
  int Fds[2];
  ASSERT_EQ(0, ::pipe(Fds));
  const unsigned char Prefix[4] = {16, 0, 0, 0}; // promises 16 bytes...
  ASSERT_EQ(4, ::write(Fds[1], Prefix, 4));
  ASSERT_EQ(3, ::write(Fds[1], "abc", 3)); // ...delivers 3
  ::close(Fds[1]);
  std::string Got;
  bool Eof = false;
  EXPECT_FALSE(readFrameFd(Fds[0], Got, Eof));
  EXPECT_FALSE(Eof);
  ::close(Fds[0]);
}

TEST(Framing, OversizedPrefixIsRejected) {
  int Fds[2];
  ASSERT_EQ(0, ::pipe(Fds));
  const uint32_t Huge = MaxFramePayload + 1;
  ASSERT_EQ(4, ::write(Fds[1], &Huge, 4));
  ::close(Fds[1]);
  std::string Got;
  bool Eof = false;
  EXPECT_FALSE(readFrameFd(Fds[0], Got, Eof));
  EXPECT_FALSE(Eof);
  ::close(Fds[0]);
}

TEST(ProcessPool, EchoesItemsInOrder) {
  ProcessPool Pool(childConfig("echo", 3));
  const size_t Count = 24;
  std::vector<size_t> MergedOrder;
  ExplorationSummary Sum = Pool.explore(
      Count, [](size_t I) { return itemPayload(I); },
      [&](size_t I, RemoteOutcome &Out) {
        MergedOrder.push_back(I);
        EXPECT_FALSE(Out.Cached);
        EXPECT_FALSE(Out.Quarantined);
        EXPECT_EQ(0u, Out.WorkerCrashes);
        EXPECT_FALSE(Out.Frames.empty());
        EXPECT_NE(std::string::npos,
                  Out.Frames.back().find("\"" + itemPayload(I) + "\""));
        return ExploreStep::Continue;
      });
  EXPECT_EQ(Count, Sum.ItemsMerged);
  EXPECT_FALSE(Sum.Cancelled);
  ASSERT_EQ(Count, MergedOrder.size());
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(I, MergedOrder[I]); // strictly in item order
  const IsolationStats &S = Pool.stats();
  EXPECT_TRUE(S.ProcessBackend);
  EXPECT_EQ(3u, S.WorkersSpawned);
  EXPECT_EQ(0u, S.WorkerCrashes);
  EXPECT_EQ(0u, S.QuarantinedCells);
}

TEST(ProcessPool, MultiFrameItemsDeliverEveryFrame) {
  ProcessPool Pool(childConfig("echo", 2));
  ExplorationSummary Sum = Pool.explore(
      4, [](size_t I) { return "multi-" + std::to_string(I); },
      [&](size_t, RemoteOutcome &Out) {
        EXPECT_EQ(3u, Out.Frames.size());
        EXPECT_NE(std::string::npos, Out.Frames[0].find("\"part\":1"));
        EXPECT_NE(std::string::npos, Out.Frames[1].find("\"part\":2"));
        EXPECT_NE(std::string::npos, Out.Frames[2].find("\"done\":true"));
        return ExploreStep::Continue;
      });
  EXPECT_EQ(4u, Sum.ItemsMerged);
}

TEST(ProcessPool, CachedItemsSkipWorkers) {
  ProcessPool Pool(childConfig("echo", 2));
  size_t Remote = 0, Cached = 0;
  Pool.explore(
      10,
      [](size_t I) -> std::optional<std::string> {
        if (I % 2 == 0)
          return std::nullopt; // journal replay path
        return itemPayload(I);
      },
      [&](size_t, RemoteOutcome &Out) {
        if (Out.Cached) {
          ++Cached;
          EXPECT_TRUE(Out.Frames.empty());
        } else {
          ++Remote;
        }
        return ExploreStep::Continue;
      });
  EXPECT_EQ(5u, Cached);
  EXPECT_EQ(5u, Remote);
}

TEST(ProcessPool, StopCancelsRemainingItems) {
  ProcessPool Pool(childConfig("echo", 2));
  ExplorationSummary Sum = Pool.explore(
      50, [](size_t I) { return itemPayload(I); },
      [&](size_t I, RemoteOutcome &) {
        return I == 4 ? ExploreStep::Stop : ExploreStep::Continue;
      });
  EXPECT_TRUE(Sum.Cancelled);
  EXPECT_EQ(5u, Sum.ItemsMerged);
}

TEST(ProcessPool, RetriesThenQuarantinesCrashingItem) {
  ProcessPool::Config C = childConfig("crash", 2);
  C.MaxRetries = 2;
  ProcessPool Pool(std::move(C));
  const size_t Count = 8, BoomItem = 3;
  size_t Quarantined = 0, Healthy = 0;
  ExplorationSummary Sum = Pool.explore(
      Count,
      [&](size_t I) {
        return I == BoomItem ? std::string("boom") : itemPayload(I);
      },
      [&](size_t I, RemoteOutcome &Out) {
        if (I == BoomItem) {
          ++Quarantined;
          EXPECT_TRUE(Out.Quarantined);
          EXPECT_TRUE(Out.Frames.empty());
          // One initial dispatch + MaxRetries redispatches, all fatal.
          EXPECT_EQ(3u, Out.WorkerCrashes);
          EXPECT_NE(std::string::npos, Out.CrashReason.find("signal"));
        } else {
          ++Healthy;
          EXPECT_FALSE(Out.Quarantined);
        }
        return ExploreStep::Continue;
      });
  EXPECT_EQ(Count, Sum.ItemsMerged); // the run completes regardless
  EXPECT_EQ(1u, Quarantined);
  EXPECT_EQ(Count - 1, Healthy);
  const IsolationStats &S = Pool.stats();
  EXPECT_EQ(3u, S.WorkerCrashes);
  EXPECT_EQ(2u, S.CellRetries);
  EXPECT_EQ(1u, S.QuarantinedCells);
  EXPECT_GE(S.WorkerRestarts, 1u); // dead workers came back with backoff
}

TEST(ProcessPool, ClassifiesAbortDeaths) {
  ProcessPool::Config C = childConfig("abort", 1);
  C.MaxRetries = 0;
  ProcessPool Pool(std::move(C));
  Pool.explore(
      1, [](size_t) { return std::string("boom"); },
      [&](size_t, RemoteOutcome &Out) {
        EXPECT_TRUE(Out.Quarantined);
        EXPECT_NE(std::string::npos, Out.CrashReason.find("signal 6"));
        return ExploreStep::Continue;
      });
  EXPECT_EQ(1u, Pool.stats().QuarantinedCells);
}

TEST(ProcessPool, HangingWorkerIsKilledAndItemQuarantined) {
  ProcessPool::Config C = childConfig("hang", 1);
  C.MaxRetries = 0;
  C.ItemTimeoutMs = 150;
  ProcessPool Pool(std::move(C));
  size_t Merged = 0;
  ExplorationSummary Sum = Pool.explore(
      3,
      [](size_t I) {
        return I == 1 ? std::string("boom") : itemPayload(I);
      },
      [&](size_t I, RemoteOutcome &Out) {
        ++Merged;
        EXPECT_EQ(I == 1, Out.Quarantined);
        return ExploreStep::Continue;
      });
  EXPECT_EQ(3u, Sum.ItemsMerged);
  EXPECT_EQ(3u, Merged);
  const IsolationStats &S = Pool.stats();
  EXPECT_GE(S.WorkerHangs, 1u);
  EXPECT_EQ(1u, S.QuarantinedCells);
}

TEST(ProcessPool, DegradesToLocalFallbackWhenWorkersNeverComeUp) {
  ProcessPool Pool(childConfig("noready", 2));
  const size_t Count = 6;
  size_t Local = 0;
  ExplorationSummary Sum = Pool.explore(
      Count, [](size_t I) { return itemPayload(I); },
      [&](size_t I, RemoteOutcome &Out) {
        if (Out.LocalFallback) {
          ++Local;
          EXPECT_FALSE(Out.Quarantined);
          EXPECT_NE(std::string::npos,
                    Out.Frames.back().find(itemPayload(I)));
        }
        return ExploreStep::Continue;
      },
      [](size_t I) {
        return std::vector<std::string>{
            "{\"echo\":\"" + itemPayload(I) + "\",\"done\":true}"};
      });
  EXPECT_EQ(Count, Sum.ItemsMerged);
  EXPECT_GT(Local, 0u); // degradation engaged; no item was lost
  const IsolationStats &S = Pool.stats();
  EXPECT_EQ(Local, S.LocalFallbackCells);
  EXPECT_EQ(0u, S.QuarantinedCells);
}

TEST(ProcessPool, StatsDeltaSlicesPerExploration) {
  ProcessPool Pool(childConfig("echo", 1));
  Pool.explore(
      4, [](size_t I) { return itemPayload(I); },
      [](size_t, RemoteOutcome &) { return ExploreStep::Continue; });
  IsolationStats First = Pool.takeStatsDelta();
  EXPECT_TRUE(First.ProcessBackend);
  EXPECT_EQ(1u, First.WorkersSpawned);
  // Same pool, second exploration: the delta must not re-count the spawn.
  Pool.explore(
      4, [](size_t I) { return itemPayload(I); },
      [](size_t, RemoteOutcome &) { return ExploreStep::Continue; });
  IsolationStats Second = Pool.takeStatsDelta();
  EXPECT_TRUE(Second.ProcessBackend);
  EXPECT_EQ(0u, Second.WorkersSpawned);
  EXPECT_EQ(0u, Second.WorkerCrashes);
}

TEST(ProcessPool, WorkersPersistAcrossExplorations) {
  ProcessPool Pool(childConfig("echo", 2));
  for (int Round = 0; Round < 3; ++Round)
    Pool.explore(
        8, [](size_t I) { return itemPayload(I); },
        [](size_t, RemoteOutcome &) { return ExploreStep::Continue; });
  // Three explorations, still only the initial spawns: compile-once pays
  // off across grid, sweep, and matrix cells.
  EXPECT_EQ(2u, Pool.stats().WorkersSpawned);
  EXPECT_EQ(0u, Pool.stats().WorkerRestarts);
}

} // namespace

int main(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("--qcm-child=", 0) == 0)
      return runChild(Arg.substr(12));
  }
  qcm_tools::installSignalHygiene();
  ::testing::InitGoogleTest(&Argc, Argv);
  return RUN_ALL_TESTS();
}
