//===- tests/placement_test.cpp - Placement oracle tests ------------------===//

#include "memory/Placement.h"

#include <gtest/gtest.h>

using namespace qcm;

TEST(FreeIntervals, EmptyMemoryIsOneUsableInterval) {
  std::map<Word, Word> Occupied;
  auto Free = computeFreeIntervals(Occupied, 16);
  // Usable space is [1, 15).
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_EQ(Free[0], (FreeInterval{1, 15}));
}

TEST(FreeIntervals, ExcludesZeroAndMaxAddress) {
  std::map<Word, Word> Occupied;
  auto Free = computeFreeIntervals(Occupied, 8);
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_EQ(Free[0].Begin, 1u);
  EXPECT_EQ(Free[0].End, 7u);
}

TEST(FreeIntervals, SplitsAroundOccupiedRanges) {
  std::map<Word, Word> Occupied{{3, 2}, {8, 1}};
  auto Free = computeFreeIntervals(Occupied, 16);
  ASSERT_EQ(Free.size(), 3u);
  EXPECT_EQ(Free[0], (FreeInterval{1, 3}));
  EXPECT_EQ(Free[1], (FreeInterval{5, 8}));
  EXPECT_EQ(Free[2], (FreeInterval{9, 15}));
}

TEST(FreeIntervals, FullyOccupied) {
  std::map<Word, Word> Occupied{{1, 14}};
  auto Free = computeFreeIntervals(Occupied, 16);
  EXPECT_TRUE(Free.empty());
}

TEST(FreeIntervals, ZeroLengthIntervalBehavior) {
  // An occupied range ending flush against the next one (and against the
  // usable-space bounds) must not produce zero-length intervals.
  std::map<Word, Word> Occupied{{1, 4}, {5, 3}, {10, 5}};
  auto Free = computeFreeIntervals(Occupied, 16);
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_EQ(Free[0], (FreeInterval{8, 10}));
  for (const FreeInterval &F : Free)
    EXPECT_GT(F.length(), 0u);

  // A zero-length interval itself hosts nothing and has length 0.
  FreeInterval Empty{7, 7};
  EXPECT_EQ(Empty.length(), 0u);
  EXPECT_EQ(countPlacements({Empty}, 1), 0u);
  FirstFitOracle First;
  LastFitOracle Last;
  EXPECT_EQ(First.choose(1, {Empty}), std::nullopt);
  EXPECT_EQ(Last.choose(1, {Empty}), std::nullopt);
}

TEST(FreeIntervals, AllocationExactlyFillingTheUsableSpace) {
  // The whole usable space [1, AddressWords - 1) is one placement for a
  // block of exactly AddressWords - 2 words.
  const uint64_t AddressWords = 16;
  auto Free = computeFreeIntervals({}, AddressWords);
  const Word FullSize = static_cast<Word>(AddressWords - 2);
  EXPECT_EQ(countPlacements(Free, FullSize), 1u);
  EXPECT_EQ(countPlacements(Free, FullSize + 1), 0u);

  FirstFitOracle First;
  LastFitOracle Last;
  EXPECT_EQ(First.choose(FullSize, Free), std::optional<Word>(1));
  EXPECT_EQ(Last.choose(FullSize, Free), std::optional<Word>(1));

  // Once placed, nothing is free and every further request declines.
  std::map<Word, Word> Occupied{{1, FullSize}};
  auto None = computeFreeIntervals(Occupied, AddressWords);
  EXPECT_TRUE(None.empty());
  EXPECT_EQ(First.choose(1, None), std::nullopt);
}

TEST(CountPlacements, CountsSlidingPositions) {
  std::vector<FreeInterval> Free = {{1, 5}, {7, 8}};
  EXPECT_EQ(countPlacements(Free, 1), 5u); // 4 in [1,5) + 1 in [7,8)
  EXPECT_EQ(countPlacements(Free, 2), 3u); // bases 1,2,3
  EXPECT_EQ(countPlacements(Free, 4), 1u); // base 1
  EXPECT_EQ(countPlacements(Free, 5), 0u);
  EXPECT_EQ(countPlacements(Free, 0), 0u);
}

TEST(FirstFit, PicksLowestBase) {
  FirstFitOracle O;
  std::vector<FreeInterval> Free = {{2, 4}, {6, 10}};
  EXPECT_EQ(O.choose(1, Free), std::optional<Word>(2));
  EXPECT_EQ(O.choose(3, Free), std::optional<Word>(6));
  EXPECT_EQ(O.choose(5, Free), std::nullopt);
}

TEST(LastFit, PicksHighestBase) {
  LastFitOracle O;
  std::vector<FreeInterval> Free = {{2, 4}, {6, 10}};
  EXPECT_EQ(O.choose(1, Free), std::optional<Word>(9));
  EXPECT_EQ(O.choose(3, Free), std::optional<Word>(7));
  EXPECT_EQ(O.choose(2, Free), std::optional<Word>(8));
  EXPECT_EQ(O.choose(5, Free), std::nullopt);
}

TEST(FixedSequence, PlaysBackAndDeclinesOnMisfit) {
  FixedSequenceOracle O({3, 3, 9});
  std::vector<FreeInterval> Free = {{1, 8}};
  EXPECT_EQ(O.choose(2, Free), std::optional<Word>(3));
  EXPECT_EQ(O.choose(5, Free), std::optional<Word>(3));
  // 9 does not fit inside [1, 8).
  EXPECT_EQ(O.choose(1, Free), std::nullopt);
  // Sequence exhausted.
  EXPECT_EQ(O.choose(1, Free), std::nullopt);
}

TEST(FixedSequence, ExhaustionOrderAndDecisionCount) {
  // Decisions are consumed strictly in sequence order, one per choose()
  // call — a declined (misfitting) base still burns its slot — and
  // exhaustion declines forever without advancing further.
  FixedSequenceOracle O({5, 1, 2});
  std::vector<FreeInterval> Free = {{1, 8}};
  EXPECT_EQ(O.decisionsUsed(), 0u);
  EXPECT_EQ(O.choose(2, Free), std::optional<Word>(5));
  EXPECT_EQ(O.decisionsUsed(), 1u);
  // Base 1 does not fit a 8-word block inside [1, 8); the slot is spent.
  EXPECT_EQ(O.choose(8, Free), std::nullopt);
  EXPECT_EQ(O.decisionsUsed(), 2u);
  EXPECT_EQ(O.choose(2, Free), std::optional<Word>(2));
  EXPECT_EQ(O.decisionsUsed(), 3u);
  for (int I = 0; I < 3; ++I) {
    EXPECT_EQ(O.choose(1, Free), std::nullopt);
    EXPECT_EQ(O.decisionsUsed(), 3u);
  }

  // A clone made mid-sequence resumes at the same position.
  FixedSequenceOracle Source({7, 3});
  (void)Source.choose(1, Free);
  auto Resumed = Source.clone();
  EXPECT_EQ(Resumed->choose(1, Free), std::optional<Word>(3));
  EXPECT_EQ(Source.choose(1, Free), std::optional<Word>(3));
}

TEST(ExhaustedOracle, AlwaysDeclines) {
  ExhaustedOracle O;
  std::vector<FreeInterval> Free = {{1, 100}};
  EXPECT_EQ(O.choose(1, Free), std::nullopt);
}

TEST(RandomOracle, CloneContinuesIdenticalStream) {
  RandomOracle A(99);
  std::vector<FreeInterval> Free = {{1, 1000}};
  (void)A.choose(3, Free);
  auto B = A.clone();
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(A.choose(2, Free),
              static_cast<RandomOracle *>(B.get())->choose(2, Free));
}

/// Property sweep: every oracle only ever returns placements that fit.
class OracleFitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleFitProperty, ChoicesAlwaysFit) {
  uint64_t Seed = GetParam();
  RandomOracle Random(Seed);
  FirstFitOracle First;
  LastFitOracle Last;
  Rng SizeGen(Seed ^ 0xabcdef);
  std::vector<FreeInterval> Free = {{1, 7}, {9, 12}, {20, 31}};
  for (int I = 0; I < 200; ++I) {
    Word Size = static_cast<Word>(1 + SizeGen.nextBelow(12));
    for (PlacementOracle *O :
         {static_cast<PlacementOracle *>(&Random),
          static_cast<PlacementOracle *>(&First),
          static_cast<PlacementOracle *>(&Last)}) {
      std::optional<Word> Base = O->choose(Size, Free);
      if (!Base)
        continue;
      bool Fits = false;
      for (const FreeInterval &F : Free)
        Fits |= *Base >= F.Begin &&
                static_cast<uint64_t>(*Base) + Size <= F.End;
      EXPECT_TRUE(Fits) << "size " << Size << " at base " << *Base;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleFitProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
