//===- tests/dispatch_test.cpp - Dispatch-engine parity tests -------------===//
//
// The direct-threaded engine (semantics/InterpThreaded.cpp) must be
// observationally indistinguishable from the switch loop: same behaviors,
// same event prefixes, and — the part superinstruction fusion could
// silently break — the same step accounting. These tests pin the budget
// cutoffs to exact step indices across both dispatch modes and check the
// deoptimization contract (observers force the switch loop) and the
// translation-cache telemetry.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "ir/Compile.h"
#include "memory/ModelRegistry.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  EXPECT_TRUE(P.has_value()) << V.lastDiagnostics();
  return std::move(*P);
}

RunConfig config(ModelKind Model, DispatchMode Dispatch) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = 1u << 16;
  C.Interp.Dispatch = Dispatch;
  return C;
}

/// A program whose inner loop exercises every fusion kind the translator
/// forms — slot+binop, const+binop, cmp+branch, const+store, push-arg+call,
/// and the quad ALU-statement form — and emits an output per iteration, so
/// a budget cutoff's exact step index is visible in the event prefix.
const char *FusedLoopSource = R"(
bump(int x) {
  var int y;
  y = x + 1;
  output(y + x);
  output(y + 1);
}
main() {
  var int i, int n, ptr p;
  p = malloc(2);
  i = 100000;
  n = 0;
  while (i) {
    i = i - 1;
    n = n + i;
    *p = n;
    n = *p;
    bump(i);
    output(i);
  }
}
)";

} // namespace

TEST(Dispatch, CompiledInFlagIsAStableBuildFact) {
  // Whatever the build, the answer may not change between calls (tests and
  // tools branch on it once).
  EXPECT_EQ(threadedDispatchCompiledIn(), threadedDispatchCompiledIn());
}

TEST(Dispatch, AutoUsesTheThreadedEngineOnPlainRuns) {
  if (!threadedDispatchCompiledIn())
    GTEST_SKIP() << "switch-only build";
  Program P = compile("main() { var int i; i = 1 + 2; output(i); }");
  RunConfig C = config(ModelKind::QuasiConcrete, DispatchMode::Auto);
  RunResult R = runProgram(P, C);
  EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::Terminated);
  EXPECT_GT(R.Dispatch.BlocksTranslated, 0u);
  EXPECT_GT(R.Dispatch.InstrsTranslated, 0u);
}

TEST(Dispatch, SwitchModeNeverTranslates) {
  Program P = compile(FusedLoopSource);
  RunConfig C = config(ModelKind::QuasiConcrete, DispatchMode::Switch);
  C.Interp.StepLimit = 50'000;
  RunResult R = runProgram(P, C);
  EXPECT_TRUE(R.Dispatch.empty());
  EXPECT_EQ(R.Dispatch.fusedTotal(), 0u);
}

TEST(Dispatch, FusionKindsAllFireOnTheFusedLoop) {
  if (!threadedDispatchCompiledIn())
    GTEST_SKIP() << "switch-only build";
  Program P = compile(FusedLoopSource);
  RunConfig C = config(ModelKind::QuasiConcrete, DispatchMode::Auto);
  C.Interp.StepLimit = 50'000;
  RunResult R = runProgram(P, C);
  EXPECT_GT(R.Dispatch.FusedLoadBinop, 0u);
  EXPECT_GT(R.Dispatch.FusedConstBinop, 0u);
  EXPECT_GT(R.Dispatch.FusedCmpBranch, 0u);
  EXPECT_GT(R.Dispatch.FusedConstStore, 0u);
  EXPECT_GT(R.Dispatch.FusedPushArgCall, 0u);
  EXPECT_GT(R.Dispatch.FusedAluStore, 0u);
}

TEST(Dispatch, BudgetExhaustionTripsAtTheSameStepIndex) {
  // The heart of the deopt/fusion contract: for a band of fuel limits
  // around the threaded engine's own gates (limits below the engine's
  // entry margin deopt to the switch loop and are parity-trivial; these
  // are all above it), both engines must cut the run at the same step
  // index with the same observable event prefix. An off-by-one in the
  // fused pairs' step accounting fails this immediately.
  Program P = compile(FusedLoopSource);
  for (ModelKind Model : allModelKinds()) {
    for (uint64_t Limit : {8192u, 8193u, 8201u, 12288u, 16384u}) {
      RunConfig Switch = config(Model, DispatchMode::Switch);
      Switch.Interp.StepLimit = Limit;
      RunResult SwitchR = runProgram(P, Switch);

      RunConfig Auto = config(Model, DispatchMode::Auto);
      Auto.Interp.StepLimit = Limit;
      RunResult AutoR = runProgram(P, Auto);

      ASSERT_EQ(SwitchR.Behav.BehaviorKind, Behavior::Kind::StepLimit);
      EXPECT_EQ(AutoR.Behav, SwitchR.Behav)
          << modelKindName(Model) << " limit=" << Limit;
      EXPECT_EQ(AutoR.Steps, SwitchR.Steps)
          << modelKindName(Model) << " limit=" << Limit;
      EXPECT_EQ(SwitchR.Steps, Limit);
      if (threadedDispatchCompiledIn()) {
        EXPECT_GT(AutoR.Dispatch.BlocksTranslated, 0u)
            << "expected the threaded engine at limit " << Limit;
      }
    }
  }
}

TEST(Dispatch, SubMarginBudgetsDeoptimizeAndStillAgree) {
  // Limits below the threaded engine's entry margin run on the switch loop
  // by design; the observable cutoff must be the same either way.
  Program P = compile(FusedLoopSource);
  for (uint64_t Limit : {1u, 7u, 100u, 4095u}) {
    RunConfig Switch = config(ModelKind::Concrete, DispatchMode::Switch);
    Switch.Interp.StepLimit = Limit;
    RunResult SwitchR = runProgram(P, Switch);

    RunConfig Auto = config(ModelKind::Concrete, DispatchMode::Auto);
    Auto.Interp.StepLimit = Limit;
    RunResult AutoR = runProgram(P, Auto);

    EXPECT_EQ(AutoR.Behav, SwitchR.Behav) << "limit=" << Limit;
    EXPECT_EQ(AutoR.Steps, SwitchR.Steps) << "limit=" << Limit;
    EXPECT_TRUE(AutoR.Dispatch.empty()) << "limit=" << Limit;
  }
}

TEST(Dispatch, CompletedRunsAgreeExactlyAcrossModesAndModels) {
  const char *Source = R"(
main() {
  var int i, int t, int sum, ptr p;
  p = malloc(4);
  i = 0;
  sum = 0;
  while (i - 50) {
    *(p + (i & 3)) = i;
    t = *(p + (i & 3));
    sum = sum + t;
    i = i + 1;
  }
  output(sum);
  free(p);
}
)";
  Program P = compile(Source);
  for (ModelKind Model : allModelKinds()) {
    RunResult SwitchR =
        runProgram(P, config(Model, DispatchMode::Switch));
    RunResult AutoR = runProgram(P, config(Model, DispatchMode::Auto));
    EXPECT_EQ(AutoR.Behav, SwitchR.Behav) << modelKindName(Model);
    EXPECT_EQ(AutoR.Steps, SwitchR.Steps) << modelKindName(Model);
    EXPECT_EQ(AutoR.Stats.toJson(), SwitchR.Stats.toJson())
        << modelKindName(Model);
  }
}

TEST(Dispatch, WallClockWatchdogTripsInBothModes) {
  // The wall-clock cutoff is inherently nondeterministic in *where* it
  // lands, so this pins the observable contract instead: both engines
  // surface it as a StepLimit behavior with TimedOut set, and both poll on
  // the same stride (a hang here would mean the threaded gates lost the
  // watchdog entirely).
  Program P = compile("main() { var int i; i = 1; while (i) { i = i + 1; } }");
  for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Auto}) {
    RunConfig C = config(ModelKind::Concrete, Mode);
    C.Interp.StepLimit = 1'000'000'000;
    C.Interp.WallTimeoutMs = 20;
    RunResult R = runProgram(P, C);
    EXPECT_EQ(R.Behav.BehaviorKind, Behavior::Kind::StepLimit);
    EXPECT_TRUE(R.TimedOut);
    // The watchdog polls every 4096 steps in both loops; a trip therefore
    // always lands on a poll boundary.
    EXPECT_EQ(R.Steps % 4096, 0u);
  }
}

TEST(Dispatch, ObserversForceTheSwitchLoop) {
  // Deopt contract: an OnInstr observer must see every statement exactly
  // as it always has, so Auto routes observed runs to the switch loop.
  Program P = compile(FusedLoopSource);
  uint64_t Observed = 0;
  RunConfig C = config(ModelKind::QuasiConcrete, DispatchMode::Auto);
  C.Interp.StepLimit = 20'000;
  C.Interp.OnInstr = [&](const Instr &, unsigned) { ++Observed; };
  RunResult R = runProgram(P, C);
  EXPECT_TRUE(R.Dispatch.empty());
  EXPECT_GT(Observed, 0u);

  // And the observed run's behavior matches the unobserved threaded one.
  RunConfig Plain = config(ModelKind::QuasiConcrete, DispatchMode::Auto);
  Plain.Interp.StepLimit = 20'000;
  RunResult PlainR = runProgram(P, Plain);
  EXPECT_EQ(R.Behav, PlainR.Behav);
  EXPECT_EQ(R.Steps, PlainR.Steps);
}

TEST(Dispatch, TranslationCacheSurvivesExecStateReuse) {
  if (!threadedDispatchCompiledIn())
    GTEST_SKIP() << "switch-only build";
  Program P = compile(FusedLoopSource);
  std::shared_ptr<const qir::QirModule> Module = qir::compileProgram(P);
  RunConfig C = config(ModelKind::QuasiConcrete, DispatchMode::Auto);
  C.Interp.StepLimit = 20'000;
  ExecState State;
  RunResult First = State.run(Module, C);
  EXPECT_GT(First.Dispatch.BlocksTranslated, 0u);
  RunResult Second = State.run(Module, C);
  // The reused machine kept its decoded blocks: the second run re-enters
  // them all through the cache and translates nothing.
  EXPECT_EQ(Second.Dispatch.BlocksTranslated, 0u);
  EXPECT_GT(Second.Dispatch.BlockCacheHits, 0u);
  EXPECT_EQ(Second.Behav, First.Behav);
  EXPECT_EQ(Second.Steps, First.Steps);
}
