//===- tests/pipeline_spec_test.cpp - Pipeline specs and executor ---------===//
//
// Covers the declarative pipeline layer: spec parse/print round trips,
// registry lookups with did-you-mean suggestions, seeded random pipelines,
// and the PassPipeline executor's fixpoint semantics — iteration bounds
// actually bound, metrics accumulate across iterations, an always-changing
// pass terminates with the bound reported, and a validator rejection rolls
// the program back to the pre-application snapshot.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/ConstProp.h"
#include "opt/PipelineSpec.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Program{};
  }
  return std::move(*P);
}

std::string roundTrip(const std::string &Text) {
  std::string Error;
  std::optional<PipelineSpec> Spec = PipelineSpec::parse(Text, Error);
  if (!Spec) {
    ADD_FAILURE() << "parse failed: " << Error;
    return "";
  }
  return Spec->toString();
}

std::string parseError(const std::string &Text) {
  std::string Error;
  if (PipelineSpec::parse(Text, Error))
    ADD_FAILURE() << "expected parse of '" << Text << "' to fail";
  return Error;
}

/// A pass that always reports a change: the executor's worst case.
class AlwaysChangingPass : public FunctionPass {
public:
  unsigned Calls = 0;
  std::string name() const override { return "always"; }
  bool runOnFunction(FunctionDecl &, const Program &) override {
    ++Calls;
    return true;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

TEST(PipelineSpecGrammar, RoundTripsPlainSequences) {
  EXPECT_EQ(roundTrip("ownership"), "ownership");
  EXPECT_EQ(roundTrip("ownership,constprop,dce"), "ownership,constprop,dce");
}

TEST(PipelineSpecGrammar, RoundTripsFixGroups) {
  EXPECT_EQ(roundTrip("ownership,fix(arith,dce)"), "ownership,fix(arith,dce)");
  EXPECT_EQ(roundTrip("fix:4(arith,dce)"), "fix:4(arith,dce)");
  EXPECT_EQ(roundTrip("fix(arith,fix:2(dce,constprop))"),
            "fix(arith,fix:2(dce,constprop))");
}

TEST(PipelineSpecGrammar, NormalizesWhitespace) {
  EXPECT_EQ(roundTrip("  ownership ,  fix( arith , dce ) "),
            "ownership,fix(arith,dce)");
}

TEST(PipelineSpecGrammar, RejectsMalformedSpecs) {
  EXPECT_NE(parseError("").find("empty pipeline spec"), std::string::npos);
  EXPECT_NE(parseError("fix(").find("expected a pass name"),
            std::string::npos);
  EXPECT_NE(parseError("fix(dce").find("unterminated"), std::string::npos);
  EXPECT_NE(parseError("a,,b").find("expected a pass name"),
            std::string::npos);
  EXPECT_NE(parseError("dce)").find("unexpected ')'"), std::string::npos);
  EXPECT_NE(parseError("fix:x(dce)").find("iteration count"),
            std::string::npos);
  EXPECT_NE(parseError("fix:0(dce)").find("fix:0"), std::string::npos);
  EXPECT_NE(parseError("a b").find("expected ','"), std::string::npos);
}

TEST(PipelineSpecGrammar, DefaultSpecIsTheLegacyPipeline) {
  EXPECT_EQ(PipelineSpec::defaultSpec().toString(),
            "fix(ownership,constprop,arith,dce)");
}

TEST(PipelineSpecGrammar, RandomSpecsAreDeterministicAndBuildable) {
  for (uint64_t Seed : {1u, 2u, 17u, 999u}) {
    PipelineSpec A = PipelineSpec::random(Seed);
    PipelineSpec B = PipelineSpec::random(Seed);
    EXPECT_EQ(A.toString(), B.toString());
    EXPECT_FALSE(A.empty());
    // Round-trippable and free of hidden/unknown passes.
    EXPECT_EQ(roundTrip(A.toString()), A.toString());
    std::string Error;
    PassFactoryOptions Opts;
    EXPECT_TRUE(buildPipeline(A, Opts, Error).has_value())
        << A.toString() << ": " << Error;
    EXPECT_EQ(A.toString().find("bug-dse"), std::string::npos);
  }
  EXPECT_NE(PipelineSpec::random(1).toString(),
            PipelineSpec::random(2).toString());
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(PassRegistry, FindsKnownPassesAndHidesTheCanary) {
  EXPECT_NE(findPass("dse"), nullptr);
  EXPECT_NE(findPass("rle"), nullptr);
  EXPECT_EQ(findPass("nonesuch"), nullptr);
  const PassInfo *Bug = findPass("bug-dse");
  ASSERT_NE(Bug, nullptr);
  EXPECT_TRUE(Bug->Hidden);
}

TEST(PassRegistry, SuggestsNearbyNames) {
  std::vector<std::string> S = suggestPassNames("constrop");
  ASSERT_FALSE(S.empty());
  EXPECT_EQ(S.front(), "constprop");
  // Hidden passes are never suggested.
  for (const std::string &Name : suggestPassNames("bug-dse"))
    EXPECT_NE(Name, "bug-dse");
}

TEST(PassRegistry, ValidityClaimsFollowThePaper) {
  PassFactoryOptions Plain;
  PassFactoryOptions Dae;
  Dae.Dae = true;
  // Section 1: dead allocation elimination is invalid under the concrete
  // model, valid under the logical family.
  EXPECT_FALSE(passClaimsValidity("dae", ModelKind::Concrete, Plain));
  EXPECT_TRUE(passClaimsValidity("dae", ModelKind::Logical, Plain));
  // Plain dce claims every model; --dae narrows it.
  EXPECT_TRUE(passClaimsValidity("dce", ModelKind::Concrete, Plain));
  EXPECT_FALSE(passClaimsValidity("dce", ModelKind::Concrete, Dae));
  // The memory passes: owned-block modes are logical-family, the local
  // modes claim everything.
  EXPECT_FALSE(passClaimsValidity("dse", ModelKind::Concrete, Plain));
  EXPECT_TRUE(passClaimsValidity("dse-local", ModelKind::Concrete, Plain));
  EXPECT_TRUE(passClaimsValidity("rle", ModelKind::Concrete, Plain));
  EXPECT_FALSE(passClaimsValidity("rle-own", ModelKind::Concrete, Plain));
}

TEST(PassRegistry, BuildPipelineReportsUnknownNamesWithSuggestions) {
  std::string Error;
  std::optional<PipelineSpec> Spec = PipelineSpec::parse("dse,rl", Error);
  ASSERT_TRUE(Spec.has_value());
  PassFactoryOptions Opts;
  EXPECT_FALSE(buildPipeline(*Spec, Opts, Error).has_value());
  EXPECT_NE(Error.find("unknown pass 'rl'"), std::string::npos);
  EXPECT_NE(Error.find("did you mean"), std::string::npos);
  EXPECT_NE(Error.find("'rle'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Executor fixpoint semantics
//===----------------------------------------------------------------------===//

TEST(PipelineExecutor, IterationBoundActuallyBounds) {
  Program P = compile("main() {\n  output(1);\n}\n");
  PassPipeline Pipeline;
  FunctionPass *Always = Pipeline.own(std::make_unique<AlwaysChangingPass>());
  Pipeline.Elements.push_back(
      PassPipeline::fix({PassPipeline::leaf(Always)}, 3));
  PipelineResult R = Pipeline.run(P);
  // Terminates despite never quiescing, reports the bound, and ran the
  // pass exactly bound-many times.
  EXPECT_TRUE(R.HitIterationBound);
  EXPECT_TRUE(R.Changed);
  EXPECT_EQ(R.Applications.size(), 3u);
  EXPECT_EQ(R.lastIterations(), 3u);
  ASSERT_EQ(R.Metrics.size(), 1u);
  EXPECT_EQ(R.Metrics[0].Invocations, 3u); // one defined function
}

TEST(PipelineExecutor, PassManagerReportsTheBoundToo) {
  Program P = compile("main() {\n  output(1);\n}\n");
  PassManager PM;
  PM.add(std::make_unique<AlwaysChangingPass>());
  EXPECT_TRUE(PM.run(P, 5));
  EXPECT_TRUE(PM.hitIterationBound());
  EXPECT_EQ(PM.lastIterations(), 5u);
  ASSERT_EQ(PM.metrics().size(), 1u);
  EXPECT_EQ(PM.metrics()[0].Invocations, 5u);
}

TEST(PipelineExecutor, MetricsAccumulateAcrossIterationsInOrder) {
  Program P = compile(R"(
main() {
  var int a, int b;
  a = 2 + 3;
  b = a * 1;
  output(b);
}
)");
  std::string Error;
  std::optional<PipelineSpec> Spec =
      PipelineSpec::parse("fix(constprop,arith)", Error);
  ASSERT_TRUE(Spec.has_value());
  PassFactoryOptions Opts;
  std::optional<PassPipeline> Pipeline = buildPipeline(*Spec, Opts, Error);
  ASSERT_TRUE(Pipeline.has_value()) << Error;
  PipelineResult R = Pipeline->run(P);
  EXPECT_TRUE(R.Changed);
  EXPECT_FALSE(R.HitIterationBound);
  // One metrics row per token, in spec order; the fixpoint needed at least
  // two sweeps (the quiescent one included), so invocations exceed one.
  ASSERT_EQ(R.Metrics.size(), 2u);
  EXPECT_EQ(R.Metrics[0].PassName, "constprop");
  EXPECT_EQ(R.Metrics[1].PassName, "arith");
  EXPECT_GE(R.Metrics[0].Invocations, 2u);
  EXPECT_GE(R.lastIterations(), 2u);
  EXPECT_GE(R.Metrics[0].Rewrites, 1u);
}

TEST(PipelineExecutor, SharedTokensShareOneMetricsRow) {
  Program P = compile(R"(
main() {
  var int a;
  a = 2 + 3;
  output(a);
}
)");
  std::string Error;
  std::optional<PipelineSpec> Spec =
      PipelineSpec::parse("constprop,dce,constprop", Error);
  ASSERT_TRUE(Spec.has_value());
  PassFactoryOptions Opts;
  std::optional<PassPipeline> Pipeline = buildPipeline(*Spec, Opts, Error);
  ASSERT_TRUE(Pipeline.has_value()) << Error;
  PipelineResult R = Pipeline->run(P);
  ASSERT_EQ(R.Metrics.size(), 2u);
  EXPECT_EQ(R.Metrics[0].PassName, "constprop");
  EXPECT_EQ(R.Metrics[0].Invocations, 2u);
  // Provenance still distinguishes the two elements.
  ASSERT_EQ(R.Applications.size(), 3u);
  EXPECT_EQ(R.Applications[0].Element, 0u);
  EXPECT_EQ(R.Applications[2].Element, 2u);
}

TEST(PipelineExecutor, ValidatorRejectionRollsTheProgramBack) {
  Program P = compile(R"(
main() {
  var int a;
  a = 2 + 3;
  output(a);
}
)");
  const std::string Before = printProgram(P);
  std::string Error;
  PassFactoryOptions Opts;
  std::optional<PassPipeline> Pipeline =
      buildPipeline(*PipelineSpec::parse("constprop,arith", Error), Opts,
                    Error);
  ASSERT_TRUE(Pipeline.has_value()) << Error;

  unsigned Calls = 0;
  PipelineResult R = Pipeline->run(
      P, [&](const Program &Snap, const Program &After,
             const PassApplication &App) -> std::optional<std::string> {
        ++Calls;
        EXPECT_EQ(printProgram(Snap), Before);
        EXPECT_NE(printProgram(After), Before);
        EXPECT_EQ(App.Pass, "constprop");
        return "rejected on purpose";
      });
  EXPECT_EQ(Calls, 1u);
  ASSERT_TRUE(R.Failed.has_value());
  EXPECT_EQ(R.Failed->Pass, "constprop");
  EXPECT_EQ(R.FailureDetail, "rejected on purpose");
  // The program is back to its pre-application state, and the pipeline
  // stopped: arith never ran.
  EXPECT_EQ(printProgram(P), Before);
  ASSERT_EQ(R.Metrics.size(), 2u);
  EXPECT_EQ(R.Metrics[1].Invocations, 0u);
  EXPECT_EQ(R.Failed->toString(),
            "pass 'constprop' (element 0, iteration 0)");
}

TEST(PipelineExecutor, AcceptingValidatorLeavesResultsIntact) {
  Program P = compile(R"(
main() {
  var int a;
  a = 2 + 3;
  output(a);
}
)");
  std::string Error;
  PassFactoryOptions Opts;
  std::optional<PassPipeline> Pipeline = buildPipeline(
      *PipelineSpec::parse("fix(constprop,arith,dce)", Error), Opts, Error);
  ASSERT_TRUE(Pipeline.has_value()) << Error;
  unsigned Checked = 0;
  PipelineResult R = Pipeline->run(
      P, [&](const Program &, const Program &,
             const PassApplication &) -> std::optional<std::string> {
        ++Checked;
        return std::nullopt;
      });
  EXPECT_FALSE(R.Failed.has_value());
  EXPECT_TRUE(R.Changed);
  EXPECT_GE(Checked, 1u);
  EXPECT_NE(printProgram(P).find("output(5);"), std::string::npos);
}
