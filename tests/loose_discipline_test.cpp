//===- tests/loose_discipline_test.cpp - CompCert-comparison semantics ----===//
//
// The Loose discipline + transparent-cast logical model reproduces the
// CompCert treatment the paper compares against (Sections 2.2 and 3.5):
// cast pointers keep their logical identity inside integer variables, with
// only the special-case arithmetic defined.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "semantics/Runner.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Behavior runLoose(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    ADD_FAILURE() << V.lastDiagnostics();
    return Behavior{};
  }
  RunConfig C;
  C.Model = ModelKind::Logical;
  C.LogicalCasts = LogicalMemory::CastBehavior::TransparentNop;
  C.Interp.Discipline = TypeDiscipline::Loose;
  C.MemConfig.AddressWords = 1u << 12;
  return runProgram(*P, C).Behav;
}

std::vector<Event> outs(std::initializer_list<Word> Values) {
  std::vector<Event> Events;
  for (Word V : Values)
    Events.push_back(Event::output(V));
  return Events;
}

} // namespace

TEST(LooseDiscipline, CastPointerRoundTripsAsIdentity) {
  // (ptr)(int)p is p; the address never became an integer.
  Behavior B = runLoose(R"(
main() {
  var ptr p, ptr q, int a, int r;
  p = malloc(1);
  *p = 9;
  a = (int) p;
  q = (ptr) a;
  r = *q;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({9})));
}

TEST(LooseDiscipline, PointerPlusIntegerOffsetInIntVariables) {
  // CompCert's low-level languages define addition of an integer to a cast
  // pointer: the offset moves.
  Behavior B = runLoose(R"(
main() {
  var ptr p, ptr q, int a, int b, int r;
  p = malloc(2);
  *(p + 1) = 7;
  a = (int) p;
  b = a + 1;
  q = (ptr) b;
  r = *q;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({7})));
}

TEST(LooseDiscipline, SameBlockSubtractionOfCastPointers) {
  Behavior B = runLoose(R"(
main() {
  var ptr p, int a, int b, int r;
  p = malloc(4);
  a = (int) (p + 3);
  b = (int) p;
  r = a - b;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({3})));
}

TEST(LooseDiscipline, AddingTwoCastPointersIsUndefined) {
  // The Figure 4 killer: ptr + ptr has no meaning without real integers.
  Behavior B = runLoose(R"(
main() {
  var ptr p, int a, int b, int t;
  p = malloc(1);
  a = (int) p;
  b = (int) p;
  t = a + b;
  output(0);
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(LooseDiscipline, MultiplyAndMaskOnCastPointersAreUndefined) {
  for (const char *Op : {"*", "&"}) {
    std::string Source = std::string(R"(
main() {
  var ptr p, int a, int r;
  p = malloc(1);
  a = (int) p;
  r = a )") + Op + R"( 3;
  output(r);
}
)";
    Behavior B = runLoose(Source);
    EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined) << Op;
  }
}

TEST(LooseDiscipline, EqualityWithZeroIsNullComparison) {
  // addr == 0 is the defined NULL test for valid addresses.
  Behavior B = runLoose(R"(
main() {
  var ptr p, int a, int r;
  p = malloc(1);
  a = (int) p;
  r = a == 0;
  output(r);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({0})));
}

TEST(LooseDiscipline, EqualityWithNonzeroIntegerIsUndefined) {
  Behavior B = runLoose(R"(
main() {
  var ptr p, int a, int r;
  p = malloc(1);
  a = (int) p;
  r = a == 5;
  output(r);
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(LooseDiscipline, BranchingOnACastPointerIsUndefined) {
  Behavior B = runLoose(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  if (a) { output(1); }
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(LooseDiscipline, OutputOfACastPointerIsUndefined) {
  // A logical address has no observable integer representation.
  Behavior B = runLoose(R"(
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  output(a);
}
)");
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}

TEST(LooseDiscipline, DynamicLoadChecksAreOffInLooseMode) {
  // Loading an integer into a pointer variable is CompCert-legal; it only
  // faults if actually dereferenced.
  Behavior B = runLoose(R"(
main() {
  var ptr cell, ptr q;
  cell = malloc(1);
  *cell = 5;
  q = *cell;
  output(1);
}
)");
  EXPECT_EQ(B, Behavior::terminated(outs({1})));
}

TEST(LooseDiscipline, StaticModeStillRejectsAtLoads) {
  // Control: the same program under the paper's Static discipline is UB at
  // the load (Section 6.1).
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var ptr cell, ptr q;
  cell = malloc(1);
  *cell = 5;
  q = *cell;
  output(1);
}
)");
  ASSERT_TRUE(P.has_value());
  RunConfig C;
  C.Model = ModelKind::Logical;
  C.LogicalCasts = LogicalMemory::CastBehavior::TransparentNop;
  C.Interp.Discipline = TypeDiscipline::Static;
  Behavior B = runProgram(*P, C).Behav;
  EXPECT_EQ(B.BehaviorKind, Behavior::Kind::Undefined);
}
