#!/usr/bin/env python3
"""Crash-resilience of qcm-check's --journal/--resume checkpointing.

Simulates a killed run by truncating a complete journal at several points
(including mid-line, as a crash between write and flush would leave it) and
asserts the resumed report is byte-identical to the uninterrupted one. Also
asserts the journal refuses to resume a different job.

Usage: tool_resume_equivalence_test.py QCM_CHECK SRC_QCM TGT_QCM
"""

import subprocess
import sys
import tempfile
import os

QCM_CHECK, SRC, TGT = sys.argv[1], sys.argv[2], sys.argv[3]
OPTIONS = ["--sweep", "--timeout-ms=10000"]


def run(argv):
    return subprocess.run(argv, capture_output=True, text=True)


def main():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "full.jsonl")
        full = run([QCM_CHECK, *OPTIONS, f"--journal={journal}", SRC, TGT])
        if full.returncode not in (0, 1):
            print(f"journaled run failed unexpectedly: {full.stderr}")
            sys.exit(1)
        with open(journal, "rb") as f:
            journal_bytes = f.read()
        if journal_bytes.count(b"\n") < 2:
            print("journal suspiciously short; nothing to truncate")
            sys.exit(1)

        # Truncation points: after the header only, after half the lines,
        # and mid-line (a torn final write).
        lines = journal_bytes.splitlines(keepends=True)
        cuts = {
            "header only": b"".join(lines[:1]),
            "half the cells": b"".join(lines[: 1 + (len(lines) - 1) // 2]),
            "torn final line": journal_bytes[: len(journal_bytes) - 7],
        }
        for label, prefix in cuts.items():
            resumed_path = os.path.join(tmp, "resume.jsonl")
            with open(resumed_path, "wb") as f:
                f.write(prefix)
            resumed = run(
                [QCM_CHECK, *OPTIONS, f"--resume={resumed_path}", SRC, TGT]
            )
            if resumed.returncode != full.returncode:
                failures.append(
                    f"{label}: exit {resumed.returncode} != {full.returncode}"
                )
            if resumed.stdout != full.stdout:
                failures.append(
                    f"{label}: resumed report differs from the full run\n"
                    f"--- full ---\n{full.stdout}\n"
                    f"--- resumed ---\n{resumed.stdout}"
                )
            # The replayed-and-completed journal must match the original.
            with open(resumed_path, "rb") as f:
                if f.read() != journal_bytes:
                    failures.append(f"{label}: completed journal differs")

        # Resuming under different grid-shaping options must be refused.
        mismatch = run(
            [QCM_CHECK, "--model=concrete", f"--resume={journal}", SRC, TGT]
        )
        if mismatch.returncode != 2:
            failures.append(
                f"job-key mismatch: expected exit 2, got {mismatch.returncode}"
            )
        if "different job" not in mismatch.stderr:
            failures.append(
                f"job-key mismatch: missing diagnostic: {mismatch.stderr!r}"
            )

        # A missing resume file is an empty checkpoint, not an error.
        fresh = run(
            [
                QCM_CHECK,
                *OPTIONS,
                f"--resume={os.path.join(tmp, 'nonexistent.jsonl')}",
                SRC,
                TGT,
            ]
        )
        if fresh.stdout != full.stdout:
            failures.append("missing-file resume: report differs")

    if failures:
        print("\n\n".join(failures))
        sys.exit(1)
    print("resume-equivalence assertions passed")


if __name__ == "__main__":
    main()
