//===- tests/exhaustion_sweep_test.cpp - Exhaustion-sweep checking --------===//
//
// The RefinementChecker's exhaustion sweep (RefinementJob::ExhaustionSweep):
// out-of-memory is forced at every reachable injection point of every grid
// cell, and the truncated target prefixes are checked against the source
// under the *strict* Section 2.3 partial-behavior rule. The headline
// property: a transformation that reorders an observable event across an
// injection point passes the plain grid (where exhaustion never fires under
// the default space) but is caught by the sweep.
//
//===----------------------------------------------------------------------===//

#include "refinement/RefinementChecker.h"

#include "core/Vm.h"

#include <gtest/gtest.h>

using namespace qcm;

namespace {

Program compile(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  EXPECT_TRUE(P) << V.lastDiagnostics();
  return P ? std::move(*P) : Program{};
}

RefinementJob makeJob(const Program &Src, const Program &Tgt,
                      ModelKind Model = ModelKind::QuasiConcrete) {
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc.Model = Job.BaseTgt.Model = Model;
  Job.ExhaustionSweep = true;
  return Job;
}

// The source observes output(1) before its cast; the "optimized" target
// hoists the cast above the output. With exhaustion injected at the cast,
// the source still shows out(1) while the target shows nothing — a
// truncated prefix the source set cannot admit strictly.
const char *MovedOutputSrc = "main() {\n"
                             "  var ptr p, int a;\n"
                             "  p = malloc(1);\n"
                             "  output(1);\n"
                             "  a = (int) p;\n"
                             "  output(2);\n"
                             "}\n";
const char *MovedOutputTgt = "main() {\n"
                             "  var ptr p, int a;\n"
                             "  p = malloc(1);\n"
                             "  a = (int) p;\n"
                             "  output(1);\n"
                             "  output(2);\n"
                             "}\n";

} // namespace

//===----------------------------------------------------------------------===//
// partialAdmittedStrict
//===----------------------------------------------------------------------===//

TEST(PartialAdmittedStrict, RequiresAnIdenticalOomPartialInTheSource) {
  std::vector<Event> One{Event{Event::Kind::Output, 1}};
  std::vector<Event> Two{Event{Event::Kind::Output, 1},
                         Event{Event::Kind::Output, 2}};
  Behavior TgtPartial = Behavior::outOfMemory(One, "injected");

  BehaviorSet Src;
  Src.insert(Behavior::terminated(Two));
  // The relaxed rule admits the partial (a source behavior extends it);
  // the strict rule does not — the source has no OOM element.
  EXPECT_TRUE(behaviorAdmitted(TgtPartial, Src));
  EXPECT_FALSE(partialAdmittedStrict(TgtPartial, Src));

  Src.insert(Behavior::outOfMemory(One, "same prefix"));
  EXPECT_TRUE(partialAdmittedStrict(TgtPartial, Src));
}

TEST(PartialAdmittedStrict, OomEventsMustMatchExactlyNotByPrefix) {
  std::vector<Event> One{Event{Event::Kind::Output, 1}};
  BehaviorSet Src;
  Src.insert(Behavior::outOfMemory(One, ""));
  EXPECT_FALSE(
      partialAdmittedStrict(Behavior::outOfMemory({}, ""), Src));
  EXPECT_TRUE(partialAdmittedStrict(Behavior::outOfMemory(One, ""), Src));
}

TEST(PartialAdmittedStrict, SourceUndefinednessAdmitsAnyExtension) {
  std::vector<Event> One{Event{Event::Kind::Output, 1}};
  std::vector<Event> Two{Event{Event::Kind::Output, 1},
                         Event{Event::Kind::Output, 2}};
  BehaviorSet Src;
  Src.insert(Behavior::undefined(One, "ub"));
  EXPECT_TRUE(partialAdmittedStrict(Behavior::outOfMemory(Two, ""), Src));
  EXPECT_FALSE(partialAdmittedStrict(Behavior::outOfMemory({}, ""), Src));
}

//===----------------------------------------------------------------------===//
// The sweep
//===----------------------------------------------------------------------===//

TEST(ExhaustionSweep, CatchesAnOutputMovedAcrossACastOnlyUnderInjection) {
  Program Src = compile(MovedOutputSrc);
  Program Tgt = compile(MovedOutputTgt);

  // Plain grid: exhaustion never fires under the default space, so the
  // reordering is invisible and the check passes.
  RefinementJob Plain = makeJob(Src, Tgt);
  Plain.ExhaustionSweep = false;
  EXPECT_TRUE(checkRefinement(Plain).Refines);

  // Sweep: injection at the cast truncates the target to an empty prefix
  // the source's injected set (out(1), partial) cannot admit.
  RefinementJob Sweep = makeJob(Src, Tgt);
  RefinementReport R = checkRefinement(Sweep);
  EXPECT_FALSE(R.Refines);
  EXPECT_TRUE(R.SweepRan);
  EXPECT_GT(R.InjectedRuns, 0u);
  ASSERT_FALSE(R.PerContext.empty());
  const ContextReport &CR = R.PerContext.front();
  EXPECT_TRUE(CR.Refines) << "the main grid must still pass";
  EXPECT_FALSE(CR.SweepRefines);
  EXPECT_EQ(CR.SweepCounterexample.BehaviorKind, Behavior::Kind::OutOfMemory);
  EXPECT_NE(R.toString().find("REFINEMENT FAILS UNDER INJECTION"),
            std::string::npos);
}

TEST(ExhaustionSweep, IdentityRefinesUnderInjection) {
  Program Src = compile(MovedOutputSrc);
  Program Tgt = compile(MovedOutputSrc);
  RefinementReport R = checkRefinement(makeJob(Src, Tgt));
  EXPECT_TRUE(R.Refines) << R.toString();
  EXPECT_TRUE(R.SweepRan);
  EXPECT_GT(R.InjectedRuns, 0u);
  for (const ContextReport &CR : R.PerContext) {
    EXPECT_TRUE(CR.SweepRefines);
    // Both sides saw the same injection points, so the partial sets match.
    EXPECT_EQ(CR.SrcInjectedPartials.toString(),
              CR.TgtInjectedPartials.toString());
  }
}

TEST(ExhaustionSweep, LogicalModelHasNoInjectionPoints) {
  // The logical model has no finite resource (Section 2.2): nothing to
  // inject, so the sweep runs vacuously with zero probes.
  Program Src = compile("main() {\n"
                        "  var ptr p, int a;\n"
                        "  p = malloc(2);\n"
                        "  *p = 7;\n"
                        "  a = *p;\n"
                        "  output(a);\n"
                        "}\n");
  RefinementReport R =
      checkRefinement(makeJob(Src, Src, ModelKind::Logical));
  EXPECT_TRUE(R.Refines);
  EXPECT_TRUE(R.SweepRan);
  EXPECT_EQ(R.InjectedRuns, 0u);
}

TEST(ExhaustionSweep, EagerModelProbesBothAllocationsAndCasts) {
  Program Src = compile(MovedOutputSrc);
  RefinementReport Quasi =
      checkRefinement(makeJob(Src, Src, ModelKind::QuasiConcrete));
  RefinementReport Eager =
      checkRefinement(makeJob(Src, Src, ModelKind::EagerQuasi));
  EXPECT_TRUE(Eager.Refines) << Eager.toString();
  // Same program, but the eager model additionally probes every
  // allocation, so it performs strictly more injected runs.
  EXPECT_GT(Eager.InjectedRuns, Quasi.InjectedRuns);
}

TEST(ExhaustionSweep, CapTruncatesAndFlagsTheCell) {
  Program Src = compile(MovedOutputSrc);
  RefinementJob Job = makeJob(Src, Src);
  Job.SweepMaxPointsPerCell = 0; // below the one reachable cast
  RefinementReport R = checkRefinement(Job);
  EXPECT_TRUE(R.Refines);
  ASSERT_FALSE(R.PerContext.empty());
  EXPECT_TRUE(R.PerContext.front().SweepCapped);
  EXPECT_NE(R.toString().find("cap"), std::string::npos);
}

TEST(ExhaustionSweep, ReportIsIdenticalAcrossJobCounts) {
  Program Src = compile(MovedOutputSrc);
  Program Tgt = compile(MovedOutputTgt);
  RefinementJob Serial = makeJob(Src, Tgt);
  RefinementJob Pooled = makeJob(Src, Tgt);
  Pooled.Exec.Jobs = 4;
  EXPECT_EQ(checkRefinement(Serial).toString(),
            checkRefinement(Pooled).toString());
}

TEST(ExhaustionSweep, PlainReportsDoNotMentionTheSweep) {
  // Reports without --sweep must render byte-identically to the pre-sweep
  // format (downstream tooling parses them).
  Program Src = compile(MovedOutputSrc);
  RefinementJob Job = makeJob(Src, Src);
  Job.ExhaustionSweep = false;
  std::string Text = checkRefinement(Job).toString();
  EXPECT_EQ(Text.find("sweep"), std::string::npos);
  EXPECT_EQ(Text.find("injected"), std::string::npos);
}
