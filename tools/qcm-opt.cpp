//===- tools/qcm-opt.cpp - Optimize a program file -------------------------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Usage:
//   qcm-opt [options] file.qcm
//
// Options:
//   --passes=ownership,constprop,arith,dce   pipeline (default shown)
//   --dae                                    let dce remove dead allocations
//   --lower                                  apply the Section 6.6 lowering
//                                            compiler (dead cast removal)
//   --iterations=<n>                         fixpoint bound (default 8)
//   --metrics                                print per-pass metrics to stderr
//                                            (invocations, rewrites,
//                                            instruction counts, wall time)
//   --profile=FILE                           Chrome trace-event profile
//                                            (parse, typecheck, each pass)
//
// Prints the optimized program to stdout.
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "tools/ToolSupport.h"

#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

int main(int Argc, char **Argv) {
  CommandLine Cmd;
  std::string Error;
  if (!Cmd.parse(Argc, Argv, Error) || Cmd.Positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: qcm-opt [--passes=ownership,constprop,arith,dce] "
                 "[--dae] [--lower] [--iterations=N] [--metrics] "
                 "[--profile=FILE] file.qcm\n");
    return 2;
  }
  applyProfileOption(Cmd);

  std::string Source;
  if (!readFile(Cmd.Positional[0], Source, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return 2;
  }

  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "%s", Compiler.lastDiagnostics().c_str());
    return ExitBadInput;
  }

  DceOptions Dce;
  Dce.RemoveDeadAllocs = Cmd.has("dae");

  PassManager PM;
  std::string Passes = Cmd.get("passes", "ownership,constprop,arith,dce");
  std::string Current;
  for (char C : Passes + ",") {
    if (C != ',') {
      Current += C;
      continue;
    }
    if (Current == "ownership") {
      PM.add(std::make_unique<OwnershipOptPass>());
    } else if (Current == "constprop") {
      PM.add(std::make_unique<ConstPropPass>());
    } else if (Current == "arith") {
      PM.add(std::make_unique<ArithSimplifyPass>());
    } else if (Current == "dce") {
      PM.add(std::make_unique<DeadCodeElimPass>(Dce));
    } else if (!Current.empty()) {
      std::fprintf(stderr, "qcm-opt: unknown pass '%s'\n", Current.c_str());
      return 2;
    }
    Current.clear();
  }

  uint64_t Iterations = 0;
  if (!parseUint(Cmd.get("iterations", "8"), Iterations)) {
    std::fprintf(stderr, "qcm-opt: invalid --iterations value '%s'\n",
                 Cmd.get("iterations").c_str());
    return ExitBadInput;
  }
  PM.run(*Prog, static_cast<unsigned>(Iterations));

  if (Cmd.has("metrics")) {
    std::fprintf(stderr, "--- pass metrics ---\n");
    for (const PassMetrics &M : PM.metrics())
      std::fprintf(stderr, "%s\n", M.toString().c_str());
  }

  if (Cmd.has("lower")) {
    LoweringOptions Lowering;
    Lowering.EliminateDeadAllocs = Cmd.has("dae");
    *Prog = lowerToConcrete(*Prog, Lowering);
  }

  std::printf("%s", printProgram(*Prog).c_str());
  if (!finishProfile(Cmd, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitBadInput;
  }
  return 0;
}
