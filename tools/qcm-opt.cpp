//===- tools/qcm-opt.cpp - Translation-validated optimizer ----------------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Usage:
//   qcm-opt [options] file.qcm
//
// Runs a declarative pass pipeline over a program and prints the optimized
// program to stdout. With --validate, every pass application is translation
// validated: checked as a behavioral refinement under the requested memory
// models, with the pipeline rolled back and the run rejected on the first
// counterexample. See docs/OPTIMIZER.md.
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "memory/ModelRegistry.h"
#include "support/Profiler.h"
#include "tools/ToolSupport.h"
#include "tools/ValidatedOpt.h"

#include <algorithm>
#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

namespace {

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: qcm-opt [options] file.qcm\n"
      "\n"
      "Optimizes a program with a declarative pass pipeline and prints the\n"
      "result to stdout. With --validate every pass application is checked\n"
      "as a behavioral refinement (translation validation): a rejected\n"
      "application rolls the program back, reports the offending pass with\n"
      "a counterexample and a minimized reproducer, and exits 1.\n"
      "\n"
      "pipeline options:\n"
      "  --pipeline=SPEC        pipeline spec; grammar:\n"
      "                           spec := elem (',' elem)*\n"
      "                           elem := NAME | 'fix' [':' N] '(' spec ')'\n"
      "                         e.g. ownership,constprop,fix:4(arith,dce).\n"
      "                         Default: fix(ownership,constprop,arith,dce)\n"
      "  --passes=a,b,c         legacy alias: the passes as one fix(...)\n"
      "                         group (exclusive with --pipeline)\n"
      "  --random-pipeline=SEED seeded random pipeline over the visible\n"
      "                         passes (exclusive with the two above)\n"
      "  --list-passes          list registered passes with the models each\n"
      "                         claims validity under, then exit\n"
      "  --iterations=N         bound for plain fix(...) groups (default 8)\n"
      "  --dae                  let dce remove dead allocations (narrows its\n"
      "                         claimed validity to the logical family)\n"
      "  --lower                apply the Section 6.6 lowering compiler\n"
      "                         after the pipeline (dead cast removal)\n"
      "\n"
      "validation options (see docs/OPTIMIZER.md):\n"
      "  --validate=MODELS      comma-separated model short names (see\n"
      "                         --list-passes for the registry) or 'all';\n"
      "                         each changing application is\n"
      "                         checked under the requested models the pass\n"
      "                         claims validity for (others are counted as\n"
      "                         skipped, not failed)\n"
      "  --validate-budget=N    random placement oracles per check, on top\n"
      "                         of first-fit/last-fit (default 2)\n"
      "  --no-minimize          skip delta-reducing a failing application's\n"
      "                         input to a minimal reproducer\n"
      "  --jobs=N               worker threads per validation grid\n"
      "\n"
      "observability options (see docs/OBSERVABILITY.md):\n"
      "  --metrics              print per-pass metrics to stderr\n"
      "  --metrics-out=FILE     write one JSON metrics document (pipeline,\n"
      "                         per-pass rows, validation tallies, peak RSS,\n"
      "                         span/counter summary)\n"
      "  --profile=FILE         Chrome trace-event profile (parse,\n"
      "                         typecheck, each pass, each validation)\n"
      "\n"
      "exit codes: 0 success, 1 validation rejected an application,\n"
      "            2 bad input\n");
}

void printPassList() {
  std::printf("registered passes (--pipeline tokens):\n");
  PassFactoryOptions Plain;
  for (const PassInfo &Info : passRegistry()) {
    if (Info.Hidden)
      continue;
    std::string Models;
    for (ModelKind M : allModelKinds()) {
      if (!passClaimsValidity(Info.Name, M, Plain))
        continue;
      if (!Models.empty())
        Models += ",";
      Models += shortModelName(M);
    }
    std::printf("  %-10s valid under: %-28s %s\n", Info.Name.c_str(),
                Models.c_str(), Info.Summary.c_str());
  }
}

bool parseModels(const std::string &Text, std::vector<ModelKind> &Out,
                 std::string &Error) {
  std::string Current;
  for (char C : Text + ",") {
    if (C != ',') {
      Current += C;
      continue;
    }
    if (Current.empty())
      continue;
    if (Current == "all") {
      const auto &Kinds = allModelKinds();
      Out.assign(Kinds.begin(), Kinds.end());
      Current.clear();
      continue;
    }
    std::optional<ModelKind> M = parseModelName(Current);
    if (!M) {
      Error = unknownModelDiagnostic(Current);
      return false;
    }
    if (std::find(Out.begin(), Out.end(), *M) == Out.end())
      Out.push_back(*M);
    Current.clear();
  }
  if (Out.empty()) {
    Error = "--validate needs at least one model";
    return false;
  }
  return true;
}

/// Every option qcm-opt understands. The shared CommandLine accepts any
/// --key silently; qcm-opt opts into strictness so a typo ("--validte")
/// cannot silently skip validation.
bool rejectUnknownOptions(const CommandLine &Cmd) {
  static const char *Known[] = {
      "help",       "list-passes",   "pipeline",        "passes",
      "random-pipeline", "iterations", "dae",           "lower",
      "validate",   "validate-budget", "no-minimize",   "jobs",
      "metrics",    "metrics-out",   "profile"};
  bool Ok = true;
  for (const auto &[Key, Value] : Cmd.Options) {
    bool Found = false;
    for (const char *K : Known)
      Found |= Key == K;
    if (!Found) {
      std::fprintf(stderr, "qcm-opt: unknown option '--%s' (try --help)\n",
                   Key.c_str());
      Ok = false;
    }
  }
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  installSignalHygiene();
  CommandLine Cmd;
  std::string Error;
  if (!Cmd.parse(Argc, Argv, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    printUsage(stderr);
    return ExitBadInput;
  }
  if (!rejectUnknownOptions(Cmd))
    return ExitBadInput;
  if (Cmd.has("help")) {
    printUsage(stdout);
    return ExitSuccess;
  }
  if (Cmd.has("list-passes")) {
    printPassList();
    return ExitSuccess;
  }
  if (Cmd.Positional.size() != 1) {
    printUsage(stderr);
    return ExitBadInput;
  }
  applyProfileOption(Cmd);

  // Resolve the pipeline spec: exactly one of --pipeline / --passes /
  // --random-pipeline, defaulting to the standard fixpoint pipeline.
  int SpecFlags = static_cast<int>(Cmd.has("pipeline")) +
                  static_cast<int>(Cmd.has("passes")) +
                  static_cast<int>(Cmd.has("random-pipeline"));
  if (SpecFlags > 1) {
    std::fprintf(stderr, "qcm-opt: --pipeline, --passes, and "
                         "--random-pipeline are exclusive\n");
    return ExitBadInput;
  }

  ValidatedOptOptions Opts;
  Opts.Factory.Dae = Cmd.has("dae");
  if (Cmd.has("pipeline") || Cmd.has("passes")) {
    // --passes is the pre-spec flat form: iterate the listed passes to a
    // fixpoint, exactly what the old PassManager did.
    std::string Text = Cmd.has("pipeline")
                           ? Cmd.get("pipeline")
                           : "fix(" + Cmd.get("passes") + ")";
    std::optional<PipelineSpec> Spec = PipelineSpec::parse(Text, Error);
    if (!Spec) {
      std::fprintf(stderr, "qcm-opt: invalid pipeline spec: %s\n",
                   Error.c_str());
      return ExitBadInput;
    }
    Opts.Spec = std::move(*Spec);
  } else if (Cmd.has("random-pipeline")) {
    uint64_t Seed = 0;
    if (!parseUint(Cmd.get("random-pipeline"), Seed)) {
      std::fprintf(stderr, "qcm-opt: invalid --random-pipeline seed '%s'\n",
                   Cmd.get("random-pipeline").c_str());
      return ExitBadInput;
    }
    Opts.Spec = PipelineSpec::random(Seed);
    std::fprintf(stderr, "qcm-opt: random pipeline: %s\n",
                 Opts.Spec.toString().c_str());
  } else {
    Opts.Spec = PipelineSpec::defaultSpec();
  }

  uint64_t Iterations = 0;
  if (!parseUint(Cmd.get("iterations", "8"), Iterations) || Iterations == 0) {
    std::fprintf(stderr, "qcm-opt: invalid --iterations value '%s'\n",
                 Cmd.get("iterations").c_str());
    return ExitBadInput;
  }
  Opts.DefaultFixIterations = static_cast<unsigned>(Iterations);

  if (Cmd.has("validate") &&
      !parseModels(Cmd.get("validate"), Opts.Models, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitBadInput;
  }
  if (Cmd.has("validate-budget")) {
    uint64_t Budget = 0;
    if (!parseUint(Cmd.get("validate-budget"), Budget)) {
      std::fprintf(stderr, "qcm-opt: invalid --validate-budget value '%s'\n",
                   Cmd.get("validate-budget").c_str());
      return ExitBadInput;
    }
    Opts.Budget.RandomOracles = static_cast<unsigned>(Budget);
  }
  if (Cmd.has("jobs")) {
    ExplorationOptions Exec;
    if (!Cmd.applyExplorationOptions(Exec, Error)) {
      std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
      return ExitBadInput;
    }
    Opts.Budget.Jobs = Exec.Jobs;
  }
  Opts.Minimize = !Cmd.has("no-minimize");

  std::string Source;
  if (!readFile(Cmd.Positional[0], Source, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitBadInput;
  }

  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "%s", Compiler.lastDiagnostics().c_str());
    return ExitBadInput;
  }

  std::optional<ValidatedOptResult> Result =
      runValidatedPipeline(*Prog, Opts, Error);
  if (!Result) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitBadInput;
  }

  if (Cmd.has("metrics")) {
    std::fprintf(stderr, "--- pass metrics ---\n");
    for (const PassMetrics &M : Result->Pipeline.Metrics)
      std::fprintf(stderr, "%s\n", M.toString().c_str());
    if (!Opts.Models.empty())
      std::fprintf(stderr,
                   "--- validation ---\napplications=%llu runs=%llu "
                   "skipped_model_checks=%llu\n",
                   static_cast<unsigned long long>(
                       Result->ValidatedApplications),
                   static_cast<unsigned long long>(Result->ValidationRuns),
                   static_cast<unsigned long long>(
                       Result->SkippedModelChecks));
  }

  if (Cmd.has("metrics-out") &&
      !writeOptMetricsJson(Cmd.get("metrics-out"), *Result, Opts, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitBadInput;
  }

  if (Result->Pipeline.Failed) {
    const PassApplication &App = *Result->Pipeline.Failed;
    std::fprintf(stderr,
                 "qcm-opt: validation REJECTED %s\n"
                 "  detail: %s\n",
                 App.toString().c_str(),
                 Result->Pipeline.FailureDetail.c_str());
    if (!App.ChangedFunctions.empty()) {
      std::string Fns;
      for (const std::string &F : App.ChangedFunctions)
        Fns += (Fns.empty() ? "" : ", ") + F;
      std::fprintf(stderr, "  functions: %s\n", Fns.c_str());
    }
    if (!Result->MinimizedInput.empty())
      std::fprintf(stderr,
                   "  minimized reproducer (pass '%s' still invalid under "
                   "%s):\n%s",
                   App.Pass.c_str(), Result->FailedModels.c_str(),
                   Result->MinimizedInput.c_str());
    if (!finishProfile(Cmd, Error))
      std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitCheckFailed;
  }

  if (Cmd.has("lower")) {
    LoweringOptions Lowering;
    Lowering.EliminateDeadAllocs = Cmd.has("dae");
    *Prog = lowerToConcrete(*Prog, Lowering);
  }

  std::printf("%s", printProgram(*Prog).c_str());
  if (!finishProfile(Cmd, Error)) {
    std::fprintf(stderr, "qcm-opt: %s\n", Error.c_str());
    return ExitBadInput;
  }
  return ExitSuccess;
}
