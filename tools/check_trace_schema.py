#!/usr/bin/env python3
"""Schema validator for qcm observability artifacts.

Validates a Chrome trace-event profile (qcm-* --profile=FILE) and,
optionally, a unified metrics document (qcm-check or qcm-opt
--metrics-out=FILE; the "tool" field selects the expected sections)
against the shapes documented in docs/OBSERVABILITY.md and
docs/OPTIMIZER.md. Used as a CTest and by CI to keep the artifact formats
from bit-rotting; also handy interactively before loading a trace into
Perfetto.

A trace from a -DQCM_PROFILE_ENABLED=0 build is valid: traceEvents may be
empty, but the envelope (displayTimeUnit, otherData with peak_rss_bytes)
must still be present.

Usage: check_trace_schema.py TRACE_JSON [METRICS_JSON]
Exit:  0 valid, 1 schema violation, 2 unreadable/unparseable input.
"""

import json
import sys

TRACE_EVENT_PHASES = {"X", "M"}
METRICS_SCHEMA = "qcm-metrics-1"


def fail(errors):
    for err in errors:
        print(f"schema: {err}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"schema: cannot load {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def expect(cond, errors, message):
    if not cond:
        errors.append(message)


def check_category_summary(summary, where, errors):
    for key in ("category", "spans", "total_us", "min_us", "max_us",
                "hist_log2_us"):
        expect(key in summary, errors, f"{where}: missing '{key}'")
    hist = summary.get("hist_log2_us", [])
    expect(isinstance(hist, list) and all(
        isinstance(b, int) and b >= 0 for b in hist), errors,
        f"{where}: hist_log2_us must be a list of non-negative ints")
    if isinstance(summary.get("spans"), int) and hist:
        expect(sum(hist) == summary["spans"], errors,
               f"{where}: histogram sums to {sum(hist)}, "
               f"expected spans={summary['spans']}")


def check_trace(doc, errors):
    expect(isinstance(doc, dict), errors, "trace: document must be an object")
    if not isinstance(doc, dict):
        return
    expect(doc.get("displayTimeUnit") == "ms", errors,
           "trace: displayTimeUnit must be 'ms'")
    events = doc.get("traceEvents")
    expect(isinstance(events, list), errors,
           "trace: traceEvents must be a list")
    threads_named = set()
    threads_used = set()
    for i, event in enumerate(events or []):
        where = f"trace: traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: must be an object")
            continue
        phase = event.get("ph")
        expect(phase in TRACE_EVENT_PHASES, errors,
               f"{where}: ph must be one of {sorted(TRACE_EVENT_PHASES)}")
        expect(event.get("pid") == 1, errors, f"{where}: pid must be 1")
        expect(isinstance(event.get("tid"), int), errors,
               f"{where}: tid must be an int")
        if phase == "M":
            expect(event.get("name") == "thread_name", errors,
                   f"{where}: metadata event must be thread_name")
            name = event.get("args", {}).get("name")
            expect(isinstance(name, str) and name, errors,
                   f"{where}: thread_name args.name must be a string")
            threads_named.add(event.get("tid"))
        elif phase == "X":
            for key in ("name", "cat", "ts", "dur"):
                expect(key in event, errors, f"{where}: missing '{key}'")
            expect(isinstance(event.get("ts"), int)
                   and isinstance(event.get("dur"), int), errors,
                   f"{where}: ts/dur must be microsecond ints")
            threads_used.add(event.get("tid"))
    orphans = threads_used - threads_named
    expect(not orphans, errors,
           f"trace: spans on unnamed thread tracks: {sorted(orphans)}")

    other = doc.get("otherData")
    expect(isinstance(other, dict), errors,
           "trace: otherData must be an object")
    if isinstance(other, dict):
        expect(isinstance(other.get("peak_rss_bytes"), int), errors,
               "trace: otherData.peak_rss_bytes must be an int")
        cats = other.get("categories")
        expect(isinstance(cats, list), errors,
               "trace: otherData.categories must be a list")
        for j, summary in enumerate(cats or []):
            check_category_summary(summary, f"trace: categories[{j}]",
                                   errors)
        expect(isinstance(other.get("counters"), dict), errors,
               "trace: otherData.counters must be an object")


def check_check_metrics(doc, errors):
    """The qcm-check sections: refinement aggregate and worker pool."""
    aggregate = doc.get("aggregate")
    expect(isinstance(aggregate, dict), errors,
           "metrics: aggregate must be an object")
    if isinstance(aggregate, dict):
        for key in ("refines", "contexts", "runs_performed",
                    "timed_out_runs", "sweep_ran", "injected_runs",
                    "crashed_runs", "quarantined_cells"):
            expect(key in aggregate, errors,
                   f"metrics: aggregate missing '{key}'")
        stats = aggregate.get("stats")
        expect(isinstance(stats, dict), errors,
               "metrics: aggregate.stats must be an object")
        if isinstance(stats, dict):
            for key in ("allocations", "loads", "stores", "casts_to_int",
                        "realizations", "no_behavior_faults"):
                expect(key in stats, errors,
                       f"metrics: aggregate.stats missing '{key}'")

    # Dispatch-engine telemetry is nondeterministic across --jobs levels
    # (like pool), so it is a section of its own, not part of aggregate.
    dispatch = doc.get("dispatch")
    expect(isinstance(dispatch, dict), errors,
           "metrics: dispatch must be an object")
    if isinstance(dispatch, dict):
        for key in ("blocks_translated", "instrs_translated",
                    "block_cache_hits", "fused_load_binop",
                    "fused_const_binop", "fused_cmp_branch",
                    "fused_const_store", "fused_push_arg_call",
                    "fused_alu_store"):
            expect(key in dispatch, errors,
                   f"metrics: dispatch missing '{key}'")
            expect(isinstance(dispatch.get(key), int)
                   and dispatch.get(key, 0) >= 0, errors,
                   f"metrics: dispatch.{key} must be a non-negative int")

    pool = doc.get("pool")
    expect(isinstance(pool, dict), errors, "metrics: pool must be an object")
    if isinstance(pool, dict):
        for key in ("jobs", "wall_us", "merge_wait_us", "workers"):
            expect(key in pool, errors, f"metrics: pool missing '{key}'")
        workers = pool.get("workers", [])
        expect(isinstance(workers, list), errors,
               "metrics: pool.workers must be a list")
        for j, worker in enumerate(workers or []):
            expect(isinstance(worker, dict) and "busy_us" in worker
                   and "items" in worker, errors,
                   f"metrics: pool.workers[{j}] needs busy_us and items")

    # Isolation backend telemetry (docs/ISOLATION.md): which backend ran
    # the grid and the supervisor's lifecycle counters. Like pool, it is
    # nondeterministic (restart and retry counts depend on timing), so it
    # lives outside aggregate.
    isolation = doc.get("isolation")
    expect(isinstance(isolation, dict), errors,
           "metrics: isolation must be an object")
    if isinstance(isolation, dict):
        expect(isolation.get("backend") in ("thread", "process"), errors,
               "metrics: isolation.backend must be 'thread' or 'process'")
        for key in ("workers_spawned", "worker_restarts", "worker_crashes",
                    "worker_hangs", "cell_retries", "quarantined_cells",
                    "local_fallback_cells", "backoff_ms_total"):
            expect(isinstance(isolation.get(key), int)
                   and isolation.get(key, 0) >= 0, errors,
                   f"metrics: isolation.{key} must be a non-negative int")


def check_matrix_section(matrix, errors):
    """The optional matrix-mode section (qcm-check --models): the model
    list, one verdict row per (src, tgt) cell, and the overall verdict."""
    expect(isinstance(matrix, dict), errors,
           "metrics: matrix must be an object")
    if not isinstance(matrix, dict):
        return
    models = matrix.get("models")
    expect(isinstance(models, list) and models and all(
        isinstance(m, str) and m for m in models), errors,
        "metrics: matrix.models must be a non-empty list of strings")
    expect(isinstance(matrix.get("refines"), bool), errors,
           "metrics: matrix.refines must be a bool")
    cells = matrix.get("cells")
    expect(isinstance(cells, list), errors,
           "metrics: matrix.cells must be a list")
    if isinstance(models, list) and isinstance(cells, list):
        expect(len(cells) == len(models) ** 2, errors,
               f"metrics: matrix has {len(cells)} cells, expected "
               f"{len(models)}^2 = {len(models) ** 2}")
    for j, cell in enumerate(cells or []):
        where = f"metrics: matrix.cells[{j}]"
        if not isinstance(cell, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in ("src", "tgt", "ran", "refines", "runs_performed",
                    "timed_out_runs", "injected_runs", "sweep_ran",
                    "quarantined_cells"):
            expect(key in cell, errors, f"{where}: missing '{key}'")
        if isinstance(models, list):
            expect(cell.get("src") in models and cell.get("tgt") in models,
                   errors, f"{where}: src/tgt must name listed models")


def check_opt_metrics(doc, errors):
    """The qcm-opt sections: pipeline outcome, per-pass rows, validation."""
    pipeline = doc.get("pipeline")
    expect(isinstance(pipeline, dict), errors,
           "metrics: pipeline must be an object")
    if isinstance(pipeline, dict):
        for key in ("spec", "changed", "applications", "iteration_bound_hit",
                    "validated_applications", "skipped_model_checks",
                    "failed"):
            expect(key in pipeline, errors,
                   f"metrics: pipeline missing '{key}'")
        if pipeline.get("failed"):
            for key in ("failed_pass", "failed_element", "failed_iteration",
                        "failed_models"):
                expect(key in pipeline, errors,
                       f"metrics: failed pipeline missing '{key}'")

    passes = doc.get("passes")
    expect(isinstance(passes, list), errors,
           "metrics: passes must be a list")
    for j, row in enumerate(passes or []):
        where = f"metrics: passes[{j}]"
        if not isinstance(row, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in ("pass", "invocations", "rewrites", "instrs_before",
                    "instrs_after", "wall_us"):
            expect(key in row, errors, f"{where}: missing '{key}'")

    validation = doc.get("validation")
    expect(isinstance(validation, dict), errors,
           "metrics: validation must be an object")
    if isinstance(validation, dict):
        expect(isinstance(validation.get("requested"), list), errors,
               "metrics: validation.requested must be a list")
        expect(validation.get("verdict") in ("off", "ok", "fail"), errors,
               "metrics: validation.verdict must be off/ok/fail")
        expect(isinstance(validation.get("runs"), int), errors,
               "metrics: validation.runs must be an int")


def check_metrics(doc, errors):
    expect(isinstance(doc, dict), errors,
           "metrics: document must be an object")
    if not isinstance(doc, dict):
        return
    expect(doc.get("schema") == METRICS_SCHEMA, errors,
           f"metrics: schema must be '{METRICS_SCHEMA}'")
    tool = doc.get("tool")
    expect(isinstance(tool, str), errors, "metrics: tool must be a string")

    # Tool-specific sections; the process/profile envelope below is shared.
    if tool == "qcm-opt":
        check_opt_metrics(doc, errors)
    else:
        check_check_metrics(doc, errors)
        if "matrix" in doc:
            check_matrix_section(doc.get("matrix"), errors)

    process = doc.get("process")
    expect(isinstance(process, dict)
           and isinstance(process.get("peak_rss_bytes"), int), errors,
           "metrics: process.peak_rss_bytes must be an int")

    profile = doc.get("profile")
    expect(isinstance(profile, dict), errors,
           "metrics: profile must be an object")
    if isinstance(profile, dict):
        expect(isinstance(profile.get("enabled"), bool), errors,
               "metrics: profile.enabled must be a bool")
        expect(isinstance(profile.get("spans"), int), errors,
               "metrics: profile.spans must be an int")
        for j, summary in enumerate(profile.get("categories", []) or []):
            check_category_summary(summary, f"metrics: categories[{j}]",
                                   errors)
        expect(isinstance(profile.get("counters"), dict), errors,
               "metrics: profile.counters must be an object")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    errors = []
    check_trace(load(sys.argv[1]), errors)
    if len(sys.argv) == 3:
        check_metrics(load(sys.argv[2]), errors)
    if errors:
        fail(errors)
    print("schema: OK")


if __name__ == "__main__":
    main()
