//===- tools/qcm-run.cpp - Run a program file under a chosen model --------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Usage:
//   qcm-run [options] file.qcm
//
// Options:
//   --model=concrete|logical|quasi|eager   memory model (default: quasi)
//   --oracle=first|last|random:<seed>      placement oracle (default: first)
//   --entry=<name>                         entry function (default: main)
//   --input=v1,v2,...                      input() tape
//   --words=<n>                            address-space size in words
//   --steps=<n>                            step budget
//   --loose                                CompCert-style loose discipline
//   --trace                                print each executed instruction
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "tools/ToolSupport.h"

#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

int main(int Argc, char **Argv) {
  CommandLine Cmd;
  std::string Error;
  if (!Cmd.parse(Argc, Argv, Error) || Cmd.Positional.size() != 1) {
    if (!Error.empty())
      std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    std::fprintf(stderr,
                 "usage: qcm-run [--model=concrete|logical|quasi|eager] "
                 "[--oracle=first|last|random:SEED]\n"
                 "               [--entry=NAME] [--input=v1,v2,...] "
                 "[--words=N] [--steps=N] [--loose] [--trace] file.qcm\n");
    return 2;
  }

  std::string Source;
  if (!readFile(Cmd.Positional[0], Source, Error)) {
    std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    return 2;
  }

  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "%s", Compiler.lastDiagnostics().c_str());
    return 1;
  }

  RunConfig Config;
  if (!Cmd.applyRunOptions(Config, Error)) {
    std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    return 2;
  }
  if (Cmd.has("trace"))
    Config.Interp.OnInstr = [](const Instr &I, unsigned Depth) {
      std::string Line = printInstr(I, Depth);
      // Control-flow headers print their whole body; keep one line.
      size_t Newline = Line.find('\n');
      std::fprintf(stderr, "[trace] %s\n",
                   Line.substr(0, Newline).c_str());
    };

  RunResult Result = runProgram(*Prog, Config);
  std::printf("behavior: %s\n", Result.Behav.toString().c_str());
  std::printf("steps:    %llu\n",
              static_cast<unsigned long long>(Result.Steps));
  if (Result.ConsistencyError)
    std::printf("CONSISTENCY VIOLATION: %s\n",
                Result.ConsistencyError->c_str());
  return Result.Behav.BehaviorKind == Behavior::Kind::Undefined ? 3 : 0;
}
