//===- tools/qcm-run.cpp - Run a program file under a chosen model --------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Usage:
//   qcm-run [options] file.qcm
//
// Options:
//   --model=NAME                           memory model short name from the
//                                          registry: concrete, logical,
//                                          quasi, eager, or twophase
//                                          (default: quasi)
//   --oracle=first|last|random:<seed>      placement oracle (default: first)
//   --entry=<name>                         entry function (default: main)
//   --input=v1,v2,...                      input() tape
//   --words=<n>                            address-space size in words
//   --steps=<n>                            step budget
//   --loose                                CompCert-style loose discipline
//   --trace                                print each executed instruction
//   --trace=<file>                         export the memory-event trace as
//                                          JSONL (one event object per line)
//   --stats                                print aggregate memory statistics
//   --inject=PLAN                          deterministic exhaustion schedule
//                                          (alloc:N, cast:N, op:N, words:K,
//                                          '+'-joined; see
//                                          docs/FAULT_INJECTION.md)
//   --timeout-ms=N                         wall-clock watchdog per run
//   --profile=FILE                         Chrome trace-event profile of the
//                                          whole pipeline (parse, typecheck,
//                                          compile, execution)
//
// Exit codes (scriptable fault classes): 0 terminated, 2 bad input,
// 3 undefined behavior, 4 out of memory, 5 step budget or watchdog.
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "tools/ToolSupport.h"

#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

int main(int Argc, char **Argv) {
  installSignalHygiene();
  CommandLine Cmd;
  std::string Error;
  if (!Cmd.parse(Argc, Argv, Error) || Cmd.Positional.size() != 1) {
    if (!Error.empty())
      std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    std::fprintf(stderr,
                 "usage: qcm-run "
                 "[--model=concrete|logical|quasi|eager|twophase] "
                 "[--oracle=first|last|random:SEED]\n"
                 "               [--entry=NAME] [--input=v1,v2,...] "
                 "[--words=N] [--steps=N] [--loose]\n"
                 "               [--inject=PLAN] [--timeout-ms=N] "
                 "[--trace[=FILE]] [--stats]\n"
                 "               [--profile=FILE] file.qcm\n"
                 "exit codes: 0 terminated, 2 bad input, 3 undefined "
                 "behavior, 4 out of memory,\n"
                 "            5 step budget / watchdog\n");
    return ExitBadInput;
  }

  applyProfileOption(Cmd);

  std::string Source;
  if (!readFile(Cmd.Positional[0], Source, Error)) {
    std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    return ExitBadInput;
  }

  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "%s", Compiler.lastDiagnostics().c_str());
    return ExitBadInput;
  }

  RunConfig Config;
  if (!Cmd.applyRunOptions(Config, Error)) {
    std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    return ExitBadInput;
  }
  // Bare --trace keeps its original meaning (instruction trace to stderr);
  // --trace=FILE exports the memory-event trace as JSONL.
  std::string TraceFile = Cmd.get("trace");
  if (Cmd.has("trace") && TraceFile.empty())
    Config.Interp.OnInstr = [](const Instr &I, unsigned Depth) {
      std::string Line = printInstr(I, Depth);
      // Control-flow headers print their whole body; keep one line.
      size_t Newline = Line.find('\n');
      std::fprintf(stderr, "[trace] %s\n",
                   Line.substr(0, Newline).c_str());
    };

  CollectingTraceSink Collector;
  if (!TraceFile.empty())
    Config.TraceSink = &Collector;

  RunResult Result = runProgram(*Prog, Config);
  std::printf("behavior: %s\n", Result.Behav.toString().c_str());
  std::printf("steps:    %llu\n",
              static_cast<unsigned long long>(Result.Steps));
  if (Result.TimedOut)
    std::printf("timeout:  wall-clock watchdog (%llu ms) expired\n",
                static_cast<unsigned long long>(Config.Interp.WallTimeoutMs));
  if (Result.ConsistencyError)
    std::printf("CONSISTENCY VIOLATION: %s\n",
                Result.ConsistencyError->c_str());
  if (Cmd.has("stats"))
    std::fputs(
        renderStats(Result.Stats, modelKindName(Config.Model)).c_str(),
        stdout);
  if (!TraceFile.empty()) {
    if (!writeTraceJsonl(TraceFile, Collector.events(), Error)) {
      std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
      return ExitBadInput;
    }
    std::printf("trace:    %zu events -> %s\n", Collector.events().size(),
                TraceFile.c_str());
  }
  if (!finishProfile(Cmd, Error)) {
    std::fprintf(stderr, "qcm-run: %s\n", Error.c_str());
    return ExitBadInput;
  }
  return exitCodeForBehavior(Result.Behav);
}
