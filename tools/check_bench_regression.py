#!/usr/bin/env python3
"""Compare a bench_workloads/bench_models_perf JSON dump against a baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--threshold=0.25]

Both files hold the flat row-array schema emitted by the bench binaries'
--json flag:

    [{"scenario": ..., "engine": ..., "model": ..., "iterations": N,
      "wall_us": N, "steps": N, "mem_ops": N, ...}, ...]

Rows are keyed on (scenario, engine, model). A row regresses when its
per-iteration wall time exceeds the baseline's by more than the threshold
(default 25%). Comparing per-iteration time keeps the check meaningful if
the two dumps were captured with different --json-iters settings.

Rows present on only one side are reported but are not failures: the
baseline predates scenarios added later, and CI may run a subset.

Beyond the baseline comparison, the checker holds one absolute invariant
on the CURRENT dump: for every model with both rows present, the
call_repeat scenario's ast/qir per-iteration ratio must be at least
--min-call-ratio (default 10) — the direct-threaded engine's acceptance
floor. The ratio is machine-independent (both sides run on the same
host), so it is safe to assert even on slow shared runners. Pass
--min-call-ratio=0 to disable (e.g. for a QCM_THREADED_DISPATCH=0
build, where the qir engine is the switch loop). Dumps without
call_repeat rows (bench_workloads) skip the check.

Exit status: 0 when no row regresses and the ratio floor holds, 1 on
regression, ratio shortfall, or schema error.
"""

import json
import sys

REQUIRED_KEYS = {"scenario", "engine", "model", "iterations", "wall_us",
                 "steps", "mem_ops"}

# Per-iteration times below this are dominated by timer and harness noise;
# a ratio over such a row is meaningless, so it is reported but never fails.
NOISE_FLOOR_US_PER_ITER = 5.0


def load_rows(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"error: {path}: expected a non-empty JSON array of rows")
    table = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not REQUIRED_KEYS <= row.keys():
            missing = REQUIRED_KEYS - set(row) if isinstance(row, dict) else REQUIRED_KEYS
            sys.exit(f"error: {path}: row {i} is missing keys {sorted(missing)}: {row}")
        if not isinstance(row["iterations"], int) or row["iterations"] <= 0:
            sys.exit(f"error: {path}: row {i} has bad iterations: {row}")
        if not isinstance(row["wall_us"], (int, float)) or row["wall_us"] < 0:
            sys.exit(f"error: {path}: row {i} has bad wall_us: {row}")
        key = (row["scenario"], row["engine"], row["model"])
        if key in table:
            sys.exit(f"error: {path}: duplicate row for {key}")
        table[key] = row
    return table


def check_call_ratio(current, min_ratio):
    """The threaded-dispatch acceptance floor: ast/qir per-iteration ratio
    on call_repeat, per model. Returns failure lines (empty when green or
    when the dump has no call_repeat rows to judge)."""
    failures = []
    models = sorted({model for (scenario, engine, model) in current
                     if scenario == "call_repeat"})
    for model in models:
        qir = current.get(("call_repeat", "qir", model))
        ast = current.get(("call_repeat", "ast", model))
        if not qir or not ast:
            continue
        qir_per = qir["wall_us"] / qir["iterations"]
        ast_per = ast["wall_us"] / ast["iterations"]
        if qir_per <= 0:
            continue
        ratio = ast_per / qir_per
        line = (f"call_repeat/{model}: ast {ast_per:.1f} / qir {qir_per:.1f} "
                f"us/iter = {ratio:.2f}x (floor {min_ratio:g}x)")
        if ratio < min_ratio:
            failures.append(line)
            print(f"  TOO SLOW  {line}")
        else:
            print(f"  ratio ok  {line}")
    return failures


def main(argv):
    threshold = 0.25
    min_call_ratio = 10.0
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-call-ratio="):
            min_call_ratio = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit(__doc__)
    current, baseline = load_rows(paths[0]), load_rows(paths[1])

    regressions = []
    compared = 0
    for key in sorted(set(current) & set(baseline)):
        cur, base = current[key], baseline[key]
        cur_per = cur["wall_us"] / cur["iterations"]
        base_per = base["wall_us"] / base["iterations"]
        if base_per < NOISE_FLOOR_US_PER_ITER:
            print(f"  skip  {'/'.join(key)}: baseline {base_per:.2f} us/iter "
                  "is below the noise floor")
            continue
        compared += 1
        ratio = cur_per / base_per
        line = (f"{'/'.join(key)}: {base_per:.1f} -> {cur_per:.1f} us/iter "
                f"({ratio:.2f}x)")
        if ratio > 1.0 + threshold:
            regressions.append(line)
            print(f"  REGRESSED  {line}")
        else:
            print(f"  ok    {line}")

    for key in sorted(set(current) - set(baseline)):
        print(f"  new   {'/'.join(key)}: no baseline row")
    for key in sorted(set(baseline) - set(current)):
        print(f"  gone  {'/'.join(key)}: not in current run")

    ratio_failures = []
    if min_call_ratio > 0:
        ratio_failures = check_call_ratio(current, min_call_ratio)

    if compared == 0:
        sys.exit("error: no comparable rows between the two files")
    if regressions:
        print(f"\n{len(regressions)} of {compared} rows regressed by more "
              f"than {threshold:.0%}:")
        for line in regressions:
            print(f"  {line}")
    if ratio_failures:
        print(f"\n{len(ratio_failures)} model(s) below the "
              f"{min_call_ratio:g}x call_repeat ast/qir floor:")
        for line in ratio_failures:
            print(f"  {line}")
    if regressions or ratio_failures:
        return 1
    print(f"\nall {compared} comparable rows within {threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
