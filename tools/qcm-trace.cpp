//===- tools/qcm-trace.cpp - Trace a program's memory events --------------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Runs a .qcm program under a chosen memory model and prints the memory-
// event trace and aggregate statistics: every alloc, free, load, store,
// cast (with realization outcome), realization, and fault transition,
// tagged with the interpreter step counter. This is the observability
// companion to qcm-run: where qcm-run answers "what behavior?", qcm-trace
// answers "which memory operations, and why did the run end?".
//
// Usage:
//   qcm-trace [options] file.qcm
//
// Options (run options shared with qcm-run):
//   --model=NAME                           memory model short name from the
//                                          registry: concrete, logical,
//                                          quasi, eager, or twophase
//                                          (default: quasi)
//   --oracle=first|last|random:<seed>      placement oracle (default: first)
//   --entry=<name>                         entry function (default: main)
//   --input=v1,v2,...                      input() tape
//   --words=<n>                            address-space size in words
//   --steps=<n>                            step budget
//   --loose                                CompCert-style loose discipline
//
// Output selection:
//   --stats          print aggregate ModelStats counters
//   --json           print the stats as one JSON object instead of a table
//   --trace=<file>   export the event trace as JSONL (one object per line)
//   --quiet          suppress the per-event listing
//   --profile=<file> export a Chrome trace-event profile of the pipeline
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "tools/ToolSupport.h"

#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

int main(int Argc, char **Argv) {
  installSignalHygiene();
  CommandLine Cmd;
  std::string Error;
  if (!Cmd.parse(Argc, Argv, Error) || Cmd.Positional.size() != 1) {
    if (!Error.empty())
      std::fprintf(stderr, "qcm-trace: %s\n", Error.c_str());
    std::fprintf(stderr,
                 "usage: qcm-trace "
                 "[--model=concrete|logical|quasi|eager|twophase] "
                 "[--oracle=first|last|random:SEED]\n"
                 "                 [--entry=NAME] [--input=v1,v2,...] "
                 "[--words=N] [--steps=N] [--loose]\n"
                 "                 [--stats] [--json] [--trace=FILE] "
                 "[--quiet] [--profile=FILE] file.qcm\n");
    return 2;
  }
  applyProfileOption(Cmd);

  std::string Source;
  if (!readFile(Cmd.Positional[0], Source, Error)) {
    std::fprintf(stderr, "qcm-trace: %s\n", Error.c_str());
    return 2;
  }

  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "%s", Compiler.lastDiagnostics().c_str());
    return 1;
  }

  RunConfig Config;
  if (!Cmd.applyRunOptions(Config, Error)) {
    std::fprintf(stderr, "qcm-trace: %s\n", Error.c_str());
    return 2;
  }

  CollectingTraceSink Collector;
  Config.TraceSink = &Collector;

  RunResult Result = runProgram(*Prog, Config);

  std::printf("model:    %s\n", modelKindName(Config.Model).c_str());
  std::printf("behavior: %s\n", Result.Behav.toString().c_str());
  std::printf("steps:    %llu\n",
              static_cast<unsigned long long>(Result.Steps));
  if (Result.ConsistencyError)
    std::printf("CONSISTENCY VIOLATION: %s\n",
                Result.ConsistencyError->c_str());

  if (!Cmd.has("quiet")) {
    std::printf("--- memory events (%zu) ---\n", Collector.events().size());
    std::fputs(renderTrace(Collector.events()).c_str(), stdout);
  }

  if (Cmd.has("stats")) {
    if (Cmd.has("json"))
      std::printf("%s\n", Result.Stats.toJson().c_str());
    else
      std::fputs(
          renderStats(Result.Stats, modelKindName(Config.Model)).c_str(),
          stdout);
  }

  std::string TraceFile = Cmd.get("trace");
  if (!TraceFile.empty()) {
    if (!writeTraceJsonl(TraceFile, Collector.events(), Error)) {
      std::fprintf(stderr, "qcm-trace: %s\n", Error.c_str());
      return 2;
    }
    std::printf("trace:    %zu events -> %s\n", Collector.events().size(),
                TraceFile.c_str());
  }

  if (!finishProfile(Cmd, Error)) {
    std::fprintf(stderr, "qcm-trace: %s\n", Error.c_str());
    return 2;
  }

  return Result.Behav.BehaviorKind == Behavior::Kind::Undefined ? 3 : 0;
}
