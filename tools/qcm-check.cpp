//===- tools/qcm-check.cpp - Refinement-check two program files -----------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Usage:
//   qcm-check [options] source.qcm target.qcm
//
// Checks behavioral refinement (Section 2.3): every behavior of the target
// must be admitted by the source, per context. Contexts instantiate the
// programs' extern functions; by default the empty context plus the
// standard adversary battery for each extern taking no parameters.
//
// Options (shared run options apply to both programs):
//   --model=..., --tgt-model=...   models for source (and target if given)
//   --words=N, --steps=N, --input=..., --oracle=..., --loose
//   --context=FILE                 add a context from a source file
//   --no-adversaries               only the empty context
//   --jobs=N                       explore the oracle/tape/context grid on N
//                                  worker threads ("auto": one per core);
//                                  reports are identical at every N
//   --fail-fast                    stop at the first counterexample
//
// Exit code: 0 if the target refines the source, 1 otherwise.
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "tools/ToolSupport.h"

#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

namespace {

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: qcm-check [options] source.qcm target.qcm\n"
      "\n"
      "Checks behavioral refinement: every behavior of the target must be\n"
      "admitted by the source, per context (Kang et al., Section 2.3).\n"
      "\n"
      "run options (apply to both programs):\n"
      "  --model=concrete|logical|quasi|eager   memory model (default quasi)\n"
      "  --tgt-model=...        a different model for the target program\n"
      "  --words=N              address-space size in words\n"
      "  --steps=N              interpreter step budget per run\n"
      "  --input=a,b,c          input tape\n"
      "  --oracle=first|last|random:SEED        placement oracle\n"
      "  --loose                CompCert-style loose type discipline\n"
      "\n"
      "context options:\n"
      "  --context=FILE         add a context from a source file\n"
      "  --no-adversaries       only the empty context (skip the standard\n"
      "                         adversary battery for parameterless externs)\n"
      "\n"
      "exploration options:\n"
      "  --jobs=N               run the context/oracle/tape grid on N worker\n"
      "                         threads; \"auto\" picks one per hardware\n"
      "                         thread. The report is byte-identical at\n"
      "                         every N (results merge in grid order).\n"
      "  --fail-fast            stop exploring at the first counterexample\n"
      "                         or context error; in-flight runs are\n"
      "                         cancelled cooperatively\n");
}

} // namespace

int main(int Argc, char **Argv) {
  CommandLine Cmd;
  std::string Error;
  bool Parsed = Cmd.parse(Argc, Argv, Error);
  if (Parsed && Cmd.has("help")) {
    printUsage(stdout);
    return 0;
  }
  if (!Parsed || Cmd.Positional.size() != 2) {
    printUsage(stderr);
    return 2;
  }

  std::string SrcText, TgtText;
  if (!readFile(Cmd.Positional[0], SrcText, Error) ||
      !readFile(Cmd.Positional[1], TgtText, Error)) {
    std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return 2;
  }

  Vm Compiler;
  std::optional<Program> Src = Compiler.compile(SrcText);
  if (!Src) {
    std::fprintf(stderr, "source: %s", Compiler.lastDiagnostics().c_str());
    return 2;
  }
  std::optional<Program> Tgt = Compiler.compile(TgtText);
  if (!Tgt) {
    std::fprintf(stderr, "target: %s", Compiler.lastDiagnostics().c_str());
    return 2;
  }

  RefinementJob Job;
  Job.Src = &*Src;
  Job.Tgt = &*Tgt;
  if (!Cmd.applyRunOptions(Job.BaseSrc, Error)) {
    std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return 2;
  }
  if (!Cmd.applyExplorationOptions(Job.Exec, Error)) {
    std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return 2;
  }
  Job.BaseTgt = Job.BaseSrc;
  if (Cmd.has("tgt-model")) {
    std::string M = Cmd.get("tgt-model");
    if (M == "concrete")
      Job.BaseTgt.Model = ModelKind::Concrete;
    else if (M == "logical")
      Job.BaseTgt.Model = ModelKind::Logical;
    else if (M == "quasi")
      Job.BaseTgt.Model = ModelKind::QuasiConcrete;
    else if (M == "eager")
      Job.BaseTgt.Model = ModelKind::EagerQuasi;
    else {
      std::fprintf(stderr, "qcm-check: unknown target model '%s'\n",
                   M.c_str());
      return 2;
    }
  }

  // Contexts: explicit file, plus the standard adversaries for parameter-
  // less externs unless suppressed.
  Job.Contexts.push_back(ContextVariant::empty());
  if (Cmd.has("context")) {
    std::string CtxText;
    if (!readFile(Cmd.get("context"), CtxText, Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return 2;
    }
    Job.Contexts.push_back(
        ContextVariant::fromSource(Cmd.get("context"), CtxText));
  }
  if (!Cmd.has("no-adversaries")) {
    for (const FunctionDecl &F : Src->Functions) {
      if (!F.isExtern() || !F.Params.empty())
        continue;
      Job.Contexts.push_back(ContextVariant::fromSource(
          F.Name + ":marker", contexts::outputMarker(F.Name, 5000)));
      Job.Contexts.push_back(ContextVariant::fromSource(
          F.Name + ":guess-write",
          contexts::addressGuesserWriter(F.Name, 1, 77)));
      Job.Contexts.push_back(ContextVariant::fromSource(
          F.Name + ":exhaust",
          contexts::exhaustThenMark(F.Name, 4, 42)));
    }
  }

  RefinementReport Report = checkRefinement(Job);
  std::printf("%s", Report.toString().c_str());
  return Report.Refines ? 0 : 1;
}
