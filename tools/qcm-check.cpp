//===- tools/qcm-check.cpp - Refinement-check two program files -----------===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
// Usage:
//   qcm-check [options] source.qcm target.qcm
//
// Checks behavioral refinement (Section 2.3): every behavior of the target
// must be admitted by the source, per context. Contexts instantiate the
// programs' extern functions; by default the empty context plus the
// standard adversary battery for each extern taking no parameters.
//
// Options (shared run options apply to both programs):
//   --model=..., --tgt-model=...   models for source (and target if given)
//   --models=all|LIST              matrix mode: one refinement check per
//                                  ordered model pair, N x N verdict table
//   --words=N, --steps=N, --input=..., --oracle=..., --loose
//   --context=FILE                 add a context from a source file
//   --no-adversaries               only the empty context
//   --jobs=N                       explore the oracle/tape/context grid on N
//                                  worker threads ("auto": one per core);
//                                  reports are identical at every N
//   --fail-fast                    stop at the first counterexample
//   --sweep                        exhaustion sweep: re-run every cell with
//                                  OOM injected at each reachable injection
//                                  point, strict §2.3 partial admission
//   --sweep-cap=N                  injection points probed per cell (512)
//   --timeout-ms=N                 wall-clock watchdog per execution
//   --journal=FILE                 write a JSONL checkpoint of finished
//                                  grid cells
//   --resume=FILE                  replay a journal (then keep appending);
//                                  the resumed report is byte-identical
//   --journal-sync                 fsync the journal in small batches
//   --isolate=thread|process       exploration backend: in-process threads
//                                  (default) or supervised worker processes
//                                  that quarantine crashing cells
//   --isolate-retries=N            crashes tolerated per cell before it is
//                                  quarantined (process backend, default 2)
//   --progress                     live progress line on stderr
//   --profile=FILE                 Chrome trace-event profile of the run
//   --metrics-out=FILE             unified JSON metrics document
//
// Exit code: 0 if the target refines the source, 1 otherwise, 2 bad input,
// 6 if the verdict is positive but cells were quarantined after repeated
// worker crashes (the verdict covers the surviving cells only).
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"
#include "memory/ModelRegistry.h"
#include "refinement/ProcessPool.h"
#include "refinement/Validate.h"
#include "support/Profiler.h"
#include "support/Progress.h"
#include "tools/ToolSupport.h"
#include "tools/WorkerMode.h"

#include <algorithm>
#include <cstdio>

using namespace qcm;
using namespace qcm_tools;

namespace {

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: qcm-check [options] source.qcm target.qcm\n"
      "\n"
      "Checks behavioral refinement: every behavior of the target must be\n"
      "admitted by the source, per context (Kang et al., Section 2.3).\n"
      "\n"
      "run options (apply to both programs):\n"
      "  --model=NAME           memory model short name from the registry\n"
      "                         (concrete, logical, quasi, eager, twophase;\n"
      "                         default quasi)\n"
      "  --tgt-model=...        a different model for the target program\n"
      "  --models=all|LIST      cross-model matrix mode: run one refinement\n"
      "                         check per ordered (source model, target\n"
      "                         model) pair — 'all' or a comma-separated\n"
      "                         model list — and print the N x N verdict\n"
      "                         table. Exit 0 only when every cell refines.\n"
      "                         Exclusive with --model/--tgt-model; journal,\n"
      "                         resume, sweep, and metrics cover the whole\n"
      "                         matrix.\n"
      "  --words=N              address-space size in words\n"
      "  --steps=N              interpreter step budget per run\n"
      "  --input=a,b,c          input tape\n"
      "  --oracle=first|last|random:SEED        placement oracle\n"
      "  --loose                CompCert-style loose type discipline\n"
      "\n"
      "context options:\n"
      "  --context=FILE         add a context from a source file\n"
      "  --no-adversaries       only the empty context (skip the standard\n"
      "                         adversary battery for parameterless externs)\n"
      "\n"
      "exploration options:\n"
      "  --jobs=N               run the context/oracle/tape grid on N worker\n"
      "                         threads; \"auto\" picks one per hardware\n"
      "                         thread. The report is byte-identical at\n"
      "                         every N (results merge in grid order).\n"
      "  --fail-fast            stop exploring at the first counterexample\n"
      "                         or context error; in-flight runs are\n"
      "                         cancelled cooperatively\n"
      "\n"
      "robustness options:\n"
      "  --sweep                exhaustion sweep: after the main grid, force\n"
      "                         out-of-memory at every reachable injection\n"
      "                         point of each cell and check the truncated\n"
      "                         prefixes under the strict Section 2.3\n"
      "                         partial-behavior rule\n"
      "  --sweep-cap=N          injection points probed per sweep cell\n"
      "                         (default 512)\n"
      "  --timeout-ms=N         wall-clock watchdog per execution; cells\n"
      "                         that exceed it are reported timed-out\n"
      "                         instead of hanging the grid\n"
      "  --journal=FILE         checkpoint finished grid cells to FILE\n"
      "                         (JSONL, flushed per cell)\n"
      "  --resume=FILE          replay FILE's finished cells, run only the\n"
      "                         rest, keep appending; the final report is\n"
      "                         byte-identical to an uninterrupted run\n"
      "  --journal-sync         fsync the journal in small batches so\n"
      "                         checkpoints survive power loss, not just\n"
      "                         process death (needs --journal/--resume)\n"
      "  --isolate=MODE         exploration backend: 'thread' (default) runs\n"
      "                         cells on in-process worker threads;\n"
      "                         'process' shards them across supervised\n"
      "                         qcm-check worker processes — a crashing or\n"
      "                         hanging cell is retried and then\n"
      "                         quarantined instead of killing the run\n"
      "                         (docs/ISOLATION.md). Crash-free reports are\n"
      "                         byte-identical across both backends.\n"
      "  --isolate-retries=N    worker crashes tolerated per cell before it\n"
      "                         is quarantined (default 2; process backend\n"
      "                         only)\n"
      "\n"
      "observability options (see docs/OBSERVABILITY.md):\n"
      "  --progress             live stderr line while the grid explores:\n"
      "                         done/total, rate, ETA, fail/timeout/OOM\n"
      "  --profile=FILE         record spans across the whole pipeline and\n"
      "                         write a Chrome trace-event JSON profile\n"
      "                         (load in Perfetto or chrome://tracing)\n"
      "  --metrics-out=FILE     write one JSON document merging the report\n"
      "                         aggregates, pool timing, peak RSS, and the\n"
      "                         span/counter summary\n"
      "\n"
      "exit codes: 0 refines, 1 does not refine, 2 bad input, 6 refines\n"
      "but with quarantined cells (the verdict covers the surviving cells\n"
      "only)\n");
}

/// FNV-1a over the inputs that shape the grid and its results; the journal
/// refuses to resume when this changes.
uint64_t hashJobInputs(const std::string &SrcText, const std::string &TgtText,
                       const CommandLine &Cmd) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](const std::string &S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ull;
    }
    H ^= 0xff; // separator so concatenations don't collide
    H *= 1099511628211ull;
  };
  Mix(SrcText);
  Mix(TgtText);
  for (const auto &[Key, Value] : Cmd.Options) {
    // The journal path itself (and which of the two flags named it) must
    // not invalidate the journal, and --jobs never changes the report
    // (merge order is plan order); everything else may shape the report.
    // Observability flags are purely observational, so they must not
    // invalidate a journal either. The isolation backend is report-neutral
    // on crash-free grids by construction, and a journal written under one
    // backend must stay resumable under the other (that is how a crashing
    // run gets retried under --isolate=process).
    if (Key == "journal" || Key == "resume" || Key == "jobs" ||
        Key == "profile" || Key == "metrics-out" || Key == "progress" ||
        Key == "isolate" || Key == "isolate-retries" || Key == "journal-sync")
      continue;
    Mix(Key);
    Mix(Value);
  }
  return H;
}

/// Parses the --models list: "all" expands to the registry, otherwise each
/// comma-separated name resolves through parseModelName, duplicates
/// dropped while preserving order.
bool parseMatrixModels(const std::string &Text, std::vector<ModelKind> &Out,
                       std::string &Error) {
  std::string Current;
  for (char C : Text + ",") {
    if (C != ',') {
      Current += C;
      continue;
    }
    if (Current.empty())
      continue;
    if (Current == "all") {
      const auto &Kinds = allModelKinds();
      Out.assign(Kinds.begin(), Kinds.end());
      Current.clear();
      continue;
    }
    std::optional<ModelKind> M = parseModelName(Current);
    if (!M) {
      Error = unknownModelDiagnostic(Current);
      return false;
    }
    if (std::find(Out.begin(), Out.end(), *M) == Out.end())
      Out.push_back(*M);
    Current.clear();
  }
  if (Out.empty()) {
    Error = "--models needs at least one model (or 'all')";
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  installSignalHygiene();
  // Hidden worker mode (--isolate=process spawns these): serve cell requests
  // over stdin/stdout frames, bypassing normal argument handling entirely.
  if (Argc >= 2 && std::string(Argv[1]) == "--worker")
    return runCheckWorker(0, 1);

  CommandLine Cmd;
  std::string Error;
  bool Parsed = Cmd.parse(Argc, Argv, Error);
  if (Parsed && Cmd.has("help")) {
    printUsage(stdout);
    return 0;
  }
  if (!Parsed || Cmd.Positional.size() != 2) {
    printUsage(stderr);
    return ExitBadInput;
  }
  // Before any instrumented work (compilation already records spans).
  applyProfileOption(Cmd);

  CheckJobSetup Setup;
  Setup.Cmd = &Cmd;
  if (!readFile(Cmd.Positional[0], Setup.SrcText, Error) ||
      !readFile(Cmd.Positional[1], Setup.TgtText, Error)) {
    std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return ExitBadInput;
  }
  // Resolve the --context file to text up front: buildCheckJob (shared with
  // the worker's init-frame decoder) never touches the filesystem.
  if (Cmd.has("context")) {
    Setup.HaveContext = true;
    Setup.ContextName = Cmd.get("context");
    if (!readFile(Setup.ContextName, Setup.ContextText, Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return ExitBadInput;
    }
  }

  if (!buildCheckJob(Setup, Error)) {
    if (Setup.RawError)
      std::fprintf(stderr, "%s", Error.c_str());
    else
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return ExitBadInput;
  }
  RefinementJob &Job = Setup.Job;

  // Matrix mode: --models replaces the single (source, target) model pair
  // with every ordered pair over the listed models.
  std::vector<ModelKind> MatrixModels;
  if (Cmd.has("models")) {
    if (Cmd.has("model") || Cmd.has("tgt-model")) {
      std::fprintf(stderr, "qcm-check: --models is exclusive with --model "
                           "and --tgt-model (the matrix sets both per "
                           "cell)\n");
      return ExitBadInput;
    }
    if (!parseMatrixModels(Cmd.get("models"), MatrixModels, Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return ExitBadInput;
    }
  }

  // Isolation backend: the thread backend is the in-process default; the
  // process backend shards cells across supervised `qcm-check --worker`
  // children that persist across cells and are restarted (then quarantined)
  // on crash or hang.
  const std::string Isolate = Cmd.get("isolate", "thread");
  if (Isolate != "thread" && Isolate != "process") {
    std::fprintf(stderr, "qcm-check: invalid --isolate value '%s' (expected "
                         "'thread' or 'process')\n",
                 Isolate.c_str());
    return ExitBadInput;
  }
  if (Cmd.has("isolate-retries") && Isolate != "process") {
    std::fprintf(stderr, "qcm-check: --isolate-retries needs "
                         "--isolate=process\n");
    return ExitBadInput;
  }
  std::optional<ProcessPool> PoolStorage;
  if (Isolate == "process") {
    std::string InitFrame =
        buildWorkerInitFrame(Setup.SrcText, Setup.TgtText, Cmd,
                             Setup.HaveContext, Setup.ContextName,
                             Setup.ContextText);
    ProcessPool::Config PoolCfg;
    if (!configureProcessIsolation(Cmd, Argv[0], std::move(InitFrame),
                                   Job.Exec, PoolCfg, Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return ExitBadInput;
    }
    PoolStorage.emplace(std::move(PoolCfg));
    Job.Isolate = &*PoolStorage;
  }

  // Checkpoint/resume: journaled cells replay through the checker's cache
  // hook, fresh cells append as they merge.
  CheckpointJournal Journal;
  if (Cmd.has("journal") && Cmd.has("resume")) {
    std::fprintf(stderr, "qcm-check: --journal and --resume are exclusive "
                         "(--resume already appends)\n");
    return ExitBadInput;
  }
  if (Cmd.has("journal-sync") &&
      !(Cmd.has("journal") || Cmd.has("resume"))) {
    std::fprintf(stderr, "qcm-check: --journal-sync needs --journal or "
                         "--resume\n");
    return ExitBadInput;
  }
  if (Cmd.has("journal") || Cmd.has("resume")) {
    const bool Resume = Cmd.has("resume");
    const std::string Path = Resume ? Cmd.get("resume") : Cmd.get("journal");
    char Key[32];
    std::snprintf(Key, sizeof(Key), "%016llx",
                  static_cast<unsigned long long>(
                      hashJobInputs(Setup.SrcText, Setup.TgtText, Cmd)));
    Journal.setSync(Cmd.has("journal-sync"));
    if (!Journal.open(Path, Key, Resume, Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return ExitBadInput;
    }
    Job.CachedCell = [&Journal](size_t I) { return Journal.cached(I); };
    Job.OnCellMerged = [&Journal](size_t I, const qcm::RunResult &R) {
      Journal.record(I, R);
    };
  }

  StderrProgress Progress;
  if (Cmd.has("progress"))
    Job.Progress = &Progress;

  if (!MatrixModels.empty()) {
    MatrixReport Matrix = checkRefinementMatrix(Job, MatrixModels);
    std::printf("%s", Matrix.toString().c_str());
    if (!finishProfile(Cmd, Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return ExitBadInput;
    }
    if (Cmd.has("metrics-out") &&
        !writeMatrixMetricsJson(Cmd.get("metrics-out"), Matrix, "qcm-check",
                                Error)) {
      std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
      return ExitBadInput;
    }
    // A positive verdict earned while cells were quarantined is flagged
    // with its own exit code: the check passed, but only over the cells
    // that survived their workers.
    if (!Matrix.Refines)
      return ExitCheckFailed;
    return Matrix.QuarantinedCells ? ExitQuarantined : ExitSuccess;
  }

  RefinementReport Report = checkRefinement(Job);
  std::printf("%s", Report.toString().c_str());

  if (!finishProfile(Cmd, Error)) {
    std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return ExitBadInput;
  }
  if (Cmd.has("metrics-out") &&
      !writeMetricsJson(Cmd.get("metrics-out"), Report, "qcm-check", Error)) {
    std::fprintf(stderr, "qcm-check: %s\n", Error.c_str());
    return ExitBadInput;
  }
  if (!Report.Refines)
    return ExitCheckFailed;
  return Report.QuarantinedCells ? ExitQuarantined : ExitSuccess;
}
