//===- bench/bench_fig7_invariants.cpp - E10: the Figure 7 case matrix ----===//
//
// Regenerates Figure 7: which combinations of concrete/logical blocks are
// admissible in the public equivalence and the private sections of a memory
// invariant, and times invariant checking as memories grow.
//
//===----------------------------------------------------------------------===//

#include "memory/QuasiConcreteMemory.h"
#include "refinement/Invariant.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

MemoryConfig cfg() {
  MemoryConfig C;
  C.AddressWords = 1u << 20;
  return C;
}

/// Builds a src/tgt pair with one related block each, realized per flags.
struct Cell {
  QuasiConcreteMemory Src{cfg()};
  QuasiConcreteMemory Tgt{cfg()};
  bool Ok = false;

  Cell(bool SrcConcrete, bool TgtConcrete) {
    Value SP = Src.allocate(2).value();
    Value TP = Tgt.allocate(2).value();
    if (SrcConcrete)
      (void)Src.castPtrToInt(SP);
    if (TgtConcrete)
      (void)Tgt.castPtrToInt(TP);
    MemoryInvariant Inv;
    Inv.Alpha.add(SP.ptr().Block, TP.ptr().Block);
    Ok = !Inv.holdsOn(Src, Tgt).has_value();
  }
};

void printPublicMatrix() {
  std::printf("== E10 (Figure 7): memory invariant case matrix ==\n");
  std::printf("public blocks (source x target):\n");
  const char *Names[2] = {"logical ", "concrete"};
  // Paper: all allowed except source-concrete/target-logical.
  bool Expected[2][2] = {{true, true}, {false, true}};
  for (int S = 0; S < 2; ++S)
    for (int T = 0; T < 2; ++T) {
      Cell C(S == 1, T == 1);
      std::printf("  src=%s tgt=%s : %s  (paper: %s) %s\n", Names[S],
                  Names[T], C.Ok ? "allowed " : "rejected",
                  Expected[S][T] ? "allowed" : "rejected",
                  C.Ok == Expected[S][T] ? "[OK]" : "[MISMATCH]");
    }

  std::printf("private blocks:\n");
  // Source private must be logical; target private may be either.
  {
    QuasiConcreteMemory M(cfg());
    Value P = M.allocate(1).value();
    MemoryInvariant Inv;
    bool LogicalOk = !Inv.addPrivateSrc(P.ptr().Block, M).has_value();
    (void)M.castPtrToInt(P);
    MemoryInvariant Inv2;
    bool ConcreteOk = !Inv2.addPrivateSrc(P.ptr().Block, M).has_value();
    std::printf("  src private logical : %s (paper: allowed) %s\n",
                LogicalOk ? "allowed " : "rejected",
                LogicalOk ? "[OK]" : "[MISMATCH]");
    std::printf("  src private concrete: %s (paper: rejected) %s\n",
                ConcreteOk ? "allowed " : "rejected",
                !ConcreteOk ? "[OK]" : "[MISMATCH]");
  }
  {
    QuasiConcreteMemory M(cfg());
    Value P = M.allocate(1).value();
    MemoryInvariant Inv;
    bool LogicalOk = !Inv.addPrivateTgt(P.ptr().Block, M).has_value();
    (void)M.castPtrToInt(P);
    MemoryInvariant Inv2;
    bool ConcreteOk = !Inv2.addPrivateTgt(P.ptr().Block, M).has_value();
    std::printf("  tgt private logical : %s (paper: allowed) %s\n",
                LogicalOk ? "allowed " : "rejected",
                LogicalOk ? "[OK]" : "[MISMATCH]");
    std::printf("  tgt private concrete: %s (paper: allowed) %s\n",
                ConcreteOk ? "allowed " : "rejected",
                ConcreteOk ? "[OK]" : "[MISMATCH]");
  }
  std::printf("\n");
}

void BM_InvariantCheck(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  QuasiConcreteMemory Src(cfg()), Tgt(cfg());
  MemoryInvariant Inv;
  for (int I = 0; I < N; ++I) {
    Value SP = Src.allocate(4).value();
    Value TP = Tgt.allocate(4).value();
    (void)Src.store(SP, Value::makeInt(static_cast<Word>(I)));
    (void)Tgt.store(TP, Value::makeInt(static_cast<Word>(I)));
    Inv.Alpha.add(SP.ptr().Block, TP.ptr().Block);
  }
  for (auto _ : State) {
    auto Err = Inv.holdsOn(Src, Tgt);
    benchmark::DoNotOptimize(Err.has_value());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_InvariantCheck)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_FutureInvariantCheck(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  QuasiConcreteMemory Src(cfg()), Tgt(cfg());
  MemoryInvariant Inv;
  for (int I = 0; I < N; ++I) {
    Value SP = Src.allocate(4).value();
    Value TP = Tgt.allocate(4).value();
    Inv.Alpha.add(SP.ptr().Block, TP.ptr().Block);
  }
  InvariantCheckpoint Before(Inv, Src, Tgt);
  InvariantCheckpoint After(Inv, Src, Tgt);
  for (auto _ : State) {
    auto Err = checkFutureInvariant(Before, After);
    benchmark::DoNotOptimize(Err.has_value());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_FutureInvariantCheck)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Complexity();

} // namespace

int main(int Argc, char **Argv) {
  printPublicMatrix();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
