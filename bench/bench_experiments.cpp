//===- bench/bench_experiments.cpp - The complete verdict matrix ----------===//
//
// Regenerates the whole paper-vs-measured table in one run; the per-figure
// binaries slice the same matrix.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  std::vector<std::string> All;
  for (const qcm::ExperimentSpec &S : qcm::experimentMatrix()) {
    bool Seen = false;
    for (const std::string &Id : All)
      Seen |= Id == S.ExampleId;
    if (!Seen)
      All.push_back(S.ExampleId);
  }
  return qcm_bench::runExperimentBench(
      "Complete optimization-validity matrix (all paper examples)", All,
      Argc, Argv);
}
