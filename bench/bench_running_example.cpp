//===- bench/bench_running_example.cpp - E9: Section 5.1 -------------------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E9 (Section 5.1): running example CP+DLE+DSE+DAE", {"running"},
      Argc, Argv);
}
