//===- bench/bench_behaviors.cpp - E14: the Section 2.3 behavior lattice --===//
//
// Regenerates the behavior classification table — one program per behavior
// class (termination, undefined behavior, out-of-memory partiality,
// divergence approximation) — and times behavior-set inclusion checking.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "refinement/BehaviorSet.h"
#include "semantics/Runner.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

struct BehaviorCase {
  const char *Name;
  const char *Source;
  Behavior::Kind Expected;
};

const BehaviorCase Cases[] = {
    {"terminating",
     "main() { var int a; a = input(); output(a + 1); }",
     Behavior::Kind::Terminated},
    {"undefined-null-deref",
     "main() { var ptr p, int a; output(1); p = (ptr) 0; a = *p; }",
     Behavior::Kind::Undefined},
    {"out-of-memory-at-cast",
     "main() { var ptr hog, int a; output(1); hog = malloc(100); "
     "a = (int) hog; output(2); }",
     Behavior::Kind::OutOfMemory},
    {"divergence-approximation",
     "main() { var int x; x = 1; output(1); while (x) { x = 1; } }",
     Behavior::Kind::StepLimit},
};

void printTable() {
  std::printf("== E14 (Section 2.3): behavior classes ==\n");
  std::printf("%-28s%-24s%s\n", "program", "expected", "measured");
  Vm V;
  for (const BehaviorCase &C : Cases) {
    std::optional<Program> P = V.compile(C.Source);
    RunConfig Config;
    Config.Model = ModelKind::QuasiConcrete;
    Config.MemConfig.AddressWords = 8; // tiny: forces the OOM case
    Config.Interp.StepLimit = 10'000;
    Config.Interp.InputTape = {4};
    RunResult R = runProgram(*P, Config);
    std::printf("%-28s%-24s%s %s\n", C.Name,
                behaviorKindName(C.Expected).c_str(),
                behaviorKindName(R.Behav.BehaviorKind).c_str(),
                R.Behav.BehaviorKind == C.Expected ? "[OK]" : "[MISMATCH]");
  }
  std::printf("\n");
}

void BM_ClassifyBehavior(benchmark::State &State) {
  const BehaviorCase &C = Cases[State.range(0)];
  Vm V;
  std::optional<Program> P = V.compile(C.Source);
  RunConfig Config;
  Config.Model = ModelKind::QuasiConcrete;
  Config.MemConfig.AddressWords = 8;
  Config.Interp.StepLimit = 10'000;
  Config.Interp.InputTape = {4};
  for (auto _ : State) {
    RunResult R = runProgram(*P, Config);
    benchmark::DoNotOptimize(R.Behav.BehaviorKind);
  }
  State.SetLabel(C.Name);
}
BENCHMARK(BM_ClassifyBehavior)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_InclusionCheck(benchmark::State &State) {
  // Behavior-set inclusion over sets of the given size.
  const int N = static_cast<int>(State.range(0));
  BehaviorSet Src, Tgt;
  for (int I = 0; I < N; ++I) {
    std::vector<Event> Events;
    for (int J = 0; J <= I % 8; ++J)
      Events.push_back(Event::output(static_cast<Word>(I + J)));
    Src.insert(Behavior::terminated(Events));
    Tgt.insert(Behavior::terminated(std::move(Events)));
  }
  for (auto _ : State) {
    InclusionResult R = behaviorsIncluded(Tgt, Src);
    benchmark::DoNotOptimize(R.Included);
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_InclusionCheck)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Complexity();

} // namespace

int main(int Argc, char **Argv) {
  printTable();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
