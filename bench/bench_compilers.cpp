//===- bench/bench_compilers.cpp - E11: Section 6.6 compilers -------------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E11 (Section 6.6): dead cast elimination at lowering", {"deadcast"},
      Argc, Argv);
}
