//===- bench/bench_fig1.cpp - E2: Figure 1 arithmetic optimization I ------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E2 (Figure 1): a = (a - b) + (2*b - b) removal", {"fig1"}, Argc,
      Argv);
}
