//===- bench/bench_alias.cpp - E12: Section 7 alias analyses --------------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E12 (Section 7): freshness-based alias analysis", {"alias_fresh"},
      Argc, Argv);
}
