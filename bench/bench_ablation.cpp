//===- bench/bench_ablation.cpp - Design ablation: Section 3.4 ------------===//
//
// Regenerates the paper's design argument for realize-at-cast: Figure 3's
// ownership-transfer optimization is valid under the quasi-concrete model
// but invalid under the rejected alternative where blocks are
// nondeterministically concretized at allocation time.
//
//===----------------------------------------------------------------------===//

#include "core/PaperExamples.h"
#include "core/Vm.h"
#include "memory/EagerQuasiMemory.h"
#include "refinement/Contexts.h"
#include "refinement/RefinementChecker.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

RefinementJob makeJob(Program &Src, Program &Tgt, bool Eager) {
  RefinementJob Job;
  Job.Src = &Src;
  Job.Tgt = &Tgt;
  Job.BaseSrc.Model = Job.BaseTgt.Model =
      Eager ? ModelKind::EagerQuasi : ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 12;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 12;
  if (Eager)
    Job.BaseSrc.Kinds = Job.BaseTgt.Kinds = [] {
      return std::make_unique<ConstantKindOracle>(true);
    };
  Job.Oracles = {[] { return std::make_unique<FirstFitOracle>(); }};
  Job.Contexts = {
      ContextVariant::fromSource("noop", contexts::noop("bar")),
      ContextVariant::fromSource(
          "guess-write", contexts::addressGuesserWriter("bar", 9, 77))};
  return Job;
}

} // namespace

int main(int Argc, char **Argv) {
  std::printf("== Design ablation (Section 3.4): realization timing ==\n");
  std::printf("Figure 3 ownership transfer under two realization "
              "strategies:\n\n");

  Vm V;
  const PaperExample &Ex = getPaperExample("fig3");
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);

  {
    RefinementJob Job = makeJob(Src, Tgt, /*Eager=*/false);
    RefinementReport R = checkRefinement(Job);
    std::printf("  realize-at-cast (the paper's choice):      %s  "
                "(paper: refines) %s\n",
                R.Refines ? "refines" : "fails  ",
                R.Refines ? "[OK]" : "[MISMATCH]");
  }
  {
    RefinementJob Job = makeJob(Src, Tgt, /*Eager=*/true);
    RefinementReport R = checkRefinement(Job);
    std::printf("  concretize-at-allocation (rejected design): %s  "
                "(paper: fails)   %s\n\n",
                R.Refines ? "refines" : "fails  ",
                !R.Refines ? "[OK]" : "[MISMATCH]");
  }

  benchmark::RegisterBenchmark(
      "ablation/realize_at_cast", [&](benchmark::State &State) {
        for (auto _ : State) {
          RefinementJob Job = makeJob(Src, Tgt, false);
          benchmark::DoNotOptimize(checkRefinement(Job).Refines);
        }
      });
  benchmark::RegisterBenchmark(
      "ablation/eager_concretization", [&](benchmark::State &State) {
        for (auto _ : State) {
          RefinementJob Job = makeJob(Src, Tgt, true);
          benchmark::DoNotOptimize(checkRefinement(Job).Refines);
        }
      });

  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
