//===- bench/bench_fig5.cpp - E6: Figure 5 dead cast + allocation ---------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E6 (Figure 5): dead call elimination across the three model pairs",
      {"fig5"}, Argc, Argv);
}
