//===- bench/bench_fig2.cpp - E3: Figure 2 dead code elimination ----------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E3 (Figure 2): DCE of the read-only call foo(a)", {"fig2"}, Argc,
      Argv);
}
