//===- bench/bench_drawbacks.cpp - E7/E8: Section 3.7 limitations ---------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E7/E8 (Section 3.7): the model's accepted limitations",
      {"drawbacks_a", "drawbacks_b_early", "drawbacks_b_late"}, Argc, Argv);
}
