//===- bench/JsonBench.h - --json=FILE machine-readable mode ----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable reporting for the bench binaries. Passing --json=FILE
/// switches a supporting binary from the google-benchmark driver to a fixed
/// scenario sweep whose results are written as a JSON array (one object per
/// scenario, built with the support/Telemetry.h JsonObject helper):
///
///   {"scenario":"interp_repeat","engine":"qir","model":"concrete",
///    "iterations":300,"wall_us":8123,"steps":371700,"mem_ops":115800,
///    "casts":0,"realizations":1}
///
/// --json-iters=N overrides each scenario's iteration count; CI smoke runs
/// pass a tiny N so the flag cannot bit-rot without burning minutes.
/// --repeat=N repeats each timed section N times and reports the median
/// wall time, for stable numbers on noisy machines.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_BENCH_JSONBENCH_H
#define QCM_BENCH_JSONBENCH_H

#include "memory/MemTrace.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace qcm_bench {

/// Options parsed out of the command line by parseJsonOptions().
struct JsonOptions {
  std::string Path;
  /// 0 means "use each scenario's default iteration count".
  unsigned Iterations = 0;
  /// Timed sections run this many times; the median wall time is reported.
  unsigned Repeat = 1;

  unsigned itersOr(unsigned Default) const {
    return Iterations ? Iterations : Default;
  }
};

/// Scans argv for --json=FILE and --json-iters=N and strips them so that
/// benchmark::Initialize never sees unknown flags. Returns nullopt when
/// --json was not requested.
inline std::optional<JsonOptions> parseJsonOptions(int &Argc, char **Argv) {
  JsonOptions Options;
  bool Found = false;
  int Out = 1;
  for (int In = 1; In < Argc; ++In) {
    std::string Arg = Argv[In];
    if (Arg.rfind("--json=", 0) == 0) {
      Options.Path = Arg.substr(7);
      Found = true;
      continue;
    }
    if (Arg.rfind("--json-iters=", 0) == 0) {
      Options.Iterations =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 13, nullptr, 10));
      continue;
    }
    if (Arg.rfind("--repeat=", 0) == 0) {
      Options.Repeat =
          static_cast<unsigned>(std::strtoul(Arg.c_str() + 9, nullptr, 10));
      if (Options.Repeat == 0)
        Options.Repeat = 1;
      continue;
    }
    Argv[Out++] = Argv[In];
  }
  Argc = Out;
  return Found ? std::optional<JsonOptions>(Options) : std::nullopt;
}

/// Median of a non-empty sample vector (sorts in place).
inline double medianOf(std::vector<double> &Samples) {
  std::sort(Samples.begin(), Samples.end());
  return Samples[Samples.size() / 2];
}

/// Runs \p Body Repeat times and returns the *fastest* wall time in
/// seconds. For a deterministic body the minimum is the best estimate of
/// the true cost — every slower sample is the same work plus scheduler
/// noise — which matters on the small single-core hosts the perf gates run
/// on, where a single sample can be 50% preemption. The body is
/// responsible for resetting any state it accumulates, so every repeat
/// does identical work.
template <typename Fn> double bestSeconds(unsigned Repeat, Fn &&Body) {
  double Best = 0;
  for (unsigned R = 0; R < std::max(1u, Repeat); ++R) {
    qcm::Stopwatch Timer;
    Body();
    double S = Timer.seconds();
    if (R == 0 || S < Best)
      Best = S;
  }
  return Best;
}

/// Runs \p Body Repeat times and returns the median wall time in seconds.
/// The body is responsible for resetting any state it accumulates, so every
/// repeat does identical work and the median is meaningful.
template <typename Fn> double medianSeconds(unsigned Repeat, Fn &&Body) {
  std::vector<double> Times;
  Times.reserve(std::max(1u, Repeat));
  for (unsigned R = 0; R < std::max(1u, Repeat); ++R) {
    qcm::Stopwatch Timer;
    Body();
    Times.push_back(Timer.seconds());
  }
  return medianOf(Times);
}

/// Accumulates scenario rows and writes them as a JSON array.
class JsonReport {
public:
  void add(const std::string &Scenario, const std::string &Engine,
           const std::string &Model, double Seconds, uint64_t Iterations,
           uint64_t Steps, const qcm::ModelStats &Stats) {
    qcm::JsonObject Row;
    Row.field("scenario", Scenario)
        .field("engine", Engine)
        .field("model", Model)
        .field("iterations", Iterations)
        .field("wall_us", static_cast<uint64_t>(Seconds * 1e6))
        .field("steps", Steps)
        .field("mem_ops", Stats.totalOperations())
        .field("casts", Stats.CastsToInt + Stats.CastsToPtr)
        .field("realizations", Stats.Realizations);
    Rows.push_back(Row.str());
  }

  /// Writes the array to \p Path through the shared Telemetry array writer
  /// (the same one the profiler and metrics documents use); returns false
  /// (with a message on stderr) when the file cannot be written.
  bool write(const std::string &Path) const {
    std::string Error;
    if (!qcm::writeTextFile(Path, qcm::jsonArray(Rows) + "\n", Error)) {
      std::fprintf(stderr, "%s\n", Error.c_str());
      return false;
    }
    return true;
  }

private:
  std::vector<std::string> Rows;
};

} // namespace qcm_bench

#endif // QCM_BENCH_JSONBENCH_H
