//===- bench/bench_simulation.cpp - Simulation proof engine throughput ----===//
//
// Times the mechanized Section 5 proofs (the analogue of the Coq artifact's
// per-example verification): the running example, ownership transfer, and
// the cross-model Figure 5 proof.
//
//===----------------------------------------------------------------------===//

#include "core/PaperExamples.h"
#include "core/Vm.h"
#include "refinement/Simulation.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

RunConfig modelConfig(ModelKind Model) {
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = 1u << 12;
  return C;
}

bool proveRunningExample() {
  const PaperExample &Ex = getPaperExample("running");
  Vm V;
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  SimulationChecker Sim(Setup);
  if (Sim.begin(nullptr))
    return false;
  if (Sim.expectCall(
          "bar",
          [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
              -> std::optional<std::string> {
            if (!Inv.Alpha.add(1, 1))
              return "alpha";
            return Inv.addPrivateSrc(2, SrcM.memory());
          },
          sim_actions::writeThroughFirstArg(7)))
    return false;
  return !Sim.expectReturn([](MemoryInvariant &Inv, Machine &, Machine &)
                               -> std::optional<std::string> {
    Inv.dropPrivateSrc(2);
    return std::nullopt;
  });
}

bool proveOwnershipTransfer() {
  const PaperExample &Ex = getPaperExample("fig3");
  Vm V;
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::QuasiConcrete);
  SimulationChecker Sim(Setup);
  if (Sim.begin([](MemoryInvariant &Inv, Machine &, Machine &)
                    -> std::optional<std::string> {
        if (!Inv.Alpha.add(1, 1))
          return "alpha";
        return std::nullopt;
      }))
    return false;
  if (Sim.expectCall(
          "bar",
          [](MemoryInvariant &Inv, Machine &SrcM, Machine &TgtM)
              -> std::optional<std::string> {
            if (auto E = Inv.addPrivateSrc(2, SrcM.memory()))
              return E;
            return Inv.addPrivateTgt(2, TgtM.memory());
          },
          nullptr))
    return false;
  return !Sim.expectReturn([](MemoryInvariant &Inv, Machine &, Machine &)
                               -> std::optional<std::string> {
    Inv.dropPrivateSrc(2);
    Inv.dropPrivateTgt(2);
    if (!Inv.Alpha.add(2, 2))
      return "alpha";
    return std::nullopt;
  });
}

bool proveFig5CrossModel() {
  const PaperExample &Ex = getPaperExample("fig5");
  Vm V;
  Program Src = *V.compile(Ex.SrcSource);
  Program Tgt = *V.compile(Ex.TgtSource);
  SimulationSetup Setup;
  Setup.Src = &Src;
  Setup.Tgt = &Tgt;
  Setup.SrcConfig = modelConfig(ModelKind::QuasiConcrete);
  Setup.TgtConfig = modelConfig(ModelKind::Concrete);
  SimulationChecker Sim(Setup);
  if (Sim.begin(nullptr))
    return false;
  if (Sim.expectCall(
          "bar",
          [](MemoryInvariant &Inv, Machine &SrcM, Machine &)
              -> std::optional<std::string> {
            if (!Inv.Alpha.add(1, 1))
              return "alpha";
            return Inv.addPrivateSrc(2, SrcM.memory());
          },
          nullptr))
    return false;
  return !Sim.expectReturn([](MemoryInvariant &Inv, Machine &, Machine &)
                               -> std::optional<std::string> {
    Inv.dropPrivateSrc(2);
    return std::nullopt;
  });
}

void BM_ProveRunningExample(benchmark::State &State) {
  for (auto _ : State) {
    bool Ok = proveRunningExample();
    benchmark::DoNotOptimize(Ok);
    if (!Ok) {
      State.SkipWithError("proof failed");
      return;
    }
  }
}
BENCHMARK(BM_ProveRunningExample);

void BM_ProveOwnershipTransfer(benchmark::State &State) {
  for (auto _ : State) {
    bool Ok = proveOwnershipTransfer();
    benchmark::DoNotOptimize(Ok);
    if (!Ok) {
      State.SkipWithError("proof failed");
      return;
    }
  }
}
BENCHMARK(BM_ProveOwnershipTransfer);

void BM_ProveFig5CrossModel(benchmark::State &State) {
  for (auto _ : State) {
    bool Ok = proveFig5CrossModel();
    benchmark::DoNotOptimize(Ok);
    if (!Ok) {
      State.SkipWithError("proof failed");
      return;
    }
  }
}
BENCHMARK(BM_ProveFig5CrossModel);

} // namespace

int main(int Argc, char **Argv) {
  std::printf("== Section 5/6 simulation proofs (mechanized analogue of "
              "the Coq artifact) ==\n");
  std::printf("running example (5.1):  %s\n",
              proveRunningExample() ? "proved" : "FAILED");
  std::printf("ownership transfer (6.3): %s\n",
              proveOwnershipTransfer() ? "proved" : "FAILED");
  std::printf("fig5 quasi->concrete (6.5): %s\n\n",
              proveFig5CrossModel() ? "proved" : "FAILED");
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
