//===- bench/BenchCommon.h - Shared benchmark harness -----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bench binary that regenerates one of the paper's example tables
/// uses this harness: it prints the paper-vs-measured verdict rows for its
/// slice of the experiment matrix (core/Experiments.h) and registers one
/// google-benchmark timer per cell measuring the cost of the full
/// refinement check.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_BENCH_BENCHCOMMON_H
#define QCM_BENCH_BENCHCOMMON_H

#include "core/Experiments.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace qcm_bench {

/// Prints the verdict rows and registers benchmarks for all matrix cells
/// whose ExampleId is in \p ExampleIds, then hands control to the
/// google-benchmark driver. Returns the process exit code (nonzero if any
/// measured verdict disagrees with the paper).
inline int runExperimentBench(const char *Title,
                              const std::vector<std::string> &ExampleIds,
                              int Argc, char **Argv) {
  std::printf("== %s ==\n", Title);
  std::printf("%-20s%-20s%-16s%-19s%s\n", "example", "scenario", "paper",
              "measured", "agreement");
  bool AllMatch = true;
  std::vector<const qcm::ExperimentSpec *> Selected;
  for (const qcm::ExperimentSpec &Spec : qcm::experimentMatrix()) {
    bool Wanted = false;
    for (const std::string &Id : ExampleIds)
      Wanted |= Spec.ExampleId == Id;
    if (!Wanted)
      continue;
    Selected.push_back(&Spec);
    qcm::ExperimentOutcome Outcome = qcm::runExperiment(Spec);
    AllMatch &= Outcome.MatchesPaper;
    std::printf("%s\n", qcm::formatExperimentRow(Outcome).c_str());
    std::printf("    note: %s\n", Spec.PaperNote.c_str());
  }
  std::printf("\n");

  for (const qcm::ExperimentSpec *Spec : Selected) {
    std::string Name =
        "refinement_check/" + Spec->ExampleId + "/" + Spec->ScenarioName;
    benchmark::RegisterBenchmark(
        Name.c_str(), [Spec](benchmark::State &State) {
          uint64_t Runs = 0;
          qcm::ModelStats Stats;
          for (auto _ : State) {
            qcm::ExperimentOutcome Outcome = qcm::runExperiment(*Spec);
            benchmark::DoNotOptimize(Outcome.MeasuredRefines);
            Runs += Outcome.Report.RunsPerformed;
            Stats.accumulate(Outcome.Report.AggregateStats);
          }
          State.counters["program_runs"] =
              benchmark::Counter(static_cast<double>(Runs),
                                 benchmark::Counter::kIsRate);
          State.counters["mem_ops"] =
              benchmark::Counter(static_cast<double>(Stats.totalOperations()),
                                 benchmark::Counter::kIsRate);
          State.counters["realizations"] =
              benchmark::Counter(static_cast<double>(Stats.Realizations),
                                 benchmark::Counter::kIsRate);
        });
  }

  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return AllMatch ? 0 : 1;
}

} // namespace qcm_bench

#endif // QCM_BENCH_BENCHCOMMON_H
