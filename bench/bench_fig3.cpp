//===- bench/bench_fig3.cpp - E4: Figure 3 ownership transfer -------------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E4 (Figure 3): constant propagation before hash_put", {"fig3"},
      Argc, Argv);
}
