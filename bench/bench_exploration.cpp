//===- bench/bench_exploration.cpp - Behavior-set exploration scaling -----===//
//
// Our ablation of the checking methodology: the cost of behavior-set
// refinement checking as the oracle set grows — exhaustive placement
// enumeration in tiny address spaces versus sampled oracles in large ones —
// and how quickly the observed behavior set saturates.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "refinement/RefinementChecker.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

const char *ProbeSource = R"(
main() {
  var ptr p, ptr q, int a, int b;
  p = malloc(1);
  q = malloc(2);
  a = (int) p;
  b = (int) q;
  output(a);
  output(b);
}
)";

void BM_ExhaustiveEnumeration(benchmark::State &State) {
  // All placement sequences of length 2 in a 2^k-word space.
  const uint64_t Words = State.range(0);
  Vm V;
  Program P = *V.compile(ProbeSource);
  std::vector<OracleFactory> Oracles =
      enumeratedOracles(Words, /*Decisions=*/2);
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = Words;
  Job.BaseTgt.MemConfig.AddressWords = Words;
  Job.Oracles = Oracles;
  uint64_t Behaviors = 0;
  for (auto _ : State) {
    RefinementReport R = checkRefinement(Job);
    benchmark::DoNotOptimize(R.Refines);
    Behaviors = R.PerContext[0].SrcBehaviors.size();
  }
  State.counters["oracles"] = static_cast<double>(Oracles.size());
  State.counters["distinct_behaviors"] = static_cast<double>(Behaviors);
}
BENCHMARK(BM_ExhaustiveEnumeration)->Arg(6)->Arg(8)->Arg(12)->Arg(16);

void BM_SampledExploration(benchmark::State &State) {
  const unsigned RandomCount = static_cast<unsigned>(State.range(0));
  Vm V;
  Program P = *V.compile(ProbeSource);
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 16;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 16;
  Job.Oracles = sampledOracles(RandomCount);
  uint64_t Behaviors = 0;
  for (auto _ : State) {
    RefinementReport R = checkRefinement(Job);
    benchmark::DoNotOptimize(R.Refines);
    Behaviors = R.PerContext[0].SrcBehaviors.size();
  }
  State.counters["oracles"] = static_cast<double>(RandomCount + 2);
  State.counters["distinct_behaviors"] = static_cast<double>(Behaviors);
}
BENCHMARK(BM_SampledExploration)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_ParallelExploration(benchmark::State &State) {
  // The same oracle x tape grid at increasing --jobs; the engine merges in
  // plan order, so every arg produces the identical report and only the
  // wall clock varies.
  const unsigned Jobs = static_cast<unsigned>(State.range(0));
  Vm V;
  Program P = *V.compile(ProbeSource);
  RefinementJob Job;
  Job.Src = &P;
  Job.Tgt = &P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 16;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 16;
  Job.Oracles = sampledOracles(62);
  Job.InputTapes = {{}, {1}, {2}, {3}};
  Job.Exec.Jobs = Jobs;
  uint64_t Runs = 0;
  for (auto _ : State) {
    RefinementReport R = checkRefinement(Job);
    benchmark::DoNotOptimize(R.Refines);
    Runs = R.RunsPerformed;
  }
  State.counters["jobs"] = static_cast<double>(Jobs);
  State.counters["runs_per_check"] = static_cast<double>(Runs);
}
BENCHMARK(BM_ParallelExploration)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int main(int Argc, char **Argv) {
  std::printf("== Exploration methodology ablation: exhaustive vs sampled "
              "oracle sets ==\n\n");
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
