//===- bench/bench_workloads.cpp - Realistic workloads across models ------===//
//
// End-to-end interpreter workloads exercising the idioms the paper
// motivates — pointer-keyed hashing, linked structures over cast addresses,
// in-memory sorting — measured under each memory model. Complements the
// microbenchmarks in bench_models_perf with whole-program shapes.
//
//===----------------------------------------------------------------------===//

#include "JsonBench.h"

#include "core/Vm.h"
#include "ir/Compile.h"
#include "refinement/RefinementChecker.h"
#include "semantics/AstInterp.h"
#include "semantics/Runner.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

/// Insertion sort of N pseudo-random words in one block.
std::string sortProgram(unsigned N) {
  return R"(
main() {
  var ptr buf, int i, int j, int key, int cur, int seed, int n;
  n = )" + std::to_string(N) +
         R"(;
  buf = malloc(n);
  seed = 12345;
  i = 0;
  j = n;
  while (j) {
    seed = seed * 1103515245 + 12345;
    *(buf + i) = seed & 1023;
    i = i + 1;
    j = j - 1;
  }
  i = 1;
  while (n - i) {
    key = *(buf + i);
    j = i;
    cur = 1;
    while (cur) {
      if (j) {
        cur = *(buf + (j - 1));
        // key < cur via the sign bit of the difference (values < 2^31).
        if ((key - cur) & 2147483648) {
          *(buf + j) = cur;
          j = j - 1;
          cur = 1;
        } else {
          cur = 0;
        }
      } else {
        cur = 0;
      }
    }
    *(buf + j) = key;
    i = i + 1;
  }
  key = *(buf + 0);
  output(key);
  key = *(buf + (n - 1));
  output(key);
}
)";
}

/// Builds an N-node singly linked list through cast addresses (node[1]
/// holds the *integer* address of the next node) and sums the payloads.
std::string castListProgram(unsigned N) {
  return R"(
main() {
  var ptr node, ptr prev, int i, int addr, int sum, int v;
  prev = malloc(2);
  *prev = 0;
  *(prev + 1) = 0;
  i = )" + std::to_string(N) +
         R"(;
  while (i) {
    node = malloc(2);
    *node = i;
    addr = (int) prev;
    *(node + 1) = addr;
    prev = node;
    i = i - 1;
  }
  sum = 0;
  addr = (int) prev;
  while (addr) {
    node = (ptr) addr;
    v = *node;
    sum = sum + v;
    addr = *(node + 1);
  }
  output(sum);
}
)";
}

void runWorkload(benchmark::State &State, const std::string &Source,
                 ModelKind Model) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    State.SkipWithError("workload does not compile");
    return;
  }
  RunConfig C;
  C.Model = Model;
  C.MemConfig.AddressWords = 1u << 20;
  C.Interp.StepLimit = 100'000'000;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = runProgram(*P, C);
    if (R.Behav.BehaviorKind != Behavior::Kind::Terminated) {
      State.SkipWithError(
          ("workload did not terminate: " + R.Behav.toString()).c_str());
      return;
    }
    Steps += R.Steps;
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
  State.SetLabel(modelKindName(Model));
}

void BM_InsertionSort(benchmark::State &State) {
  runWorkload(State, sortProgram(64),
              static_cast<ModelKind>(State.range(0)));
}
BENCHMARK(BM_InsertionSort)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_CastLinkedList(benchmark::State &State) {
  // The logical model cannot run this one (casts); the casting models.
  runWorkload(State, castListProgram(128),
              static_cast<ModelKind>(State.range(0)));
}
BENCHMARK(BM_CastLinkedList)->Arg(0)->Arg(2)->Arg(4);

/// Oracle x tape exploration workload for the thread sweep: enough
/// per-run computation that the run, not the engine, dominates.
std::string explorationProbeProgram() {
  return R"(
main() {
  var ptr p, int a, int i, int acc;
  a = input();
  p = malloc(4);
  acc = (int) p;
  i = 400;
  while (i) {
    acc = acc * 33 + i + a;
    i = i - 1;
  }
  output(acc & 65535);
}
)";
}

/// Thread-sweep scenario: the same refinement check — an oracle x tape
/// grid over the probe above — at increasing --jobs. The engine guarantees
/// the reports are byte-identical across rows; only the wall clock moves.
int runThreadSweep(qcm_bench::JsonReport &Report, Vm &V, unsigned Iters,
                   unsigned Repeat) {
  std::optional<Program> P = V.compile(explorationProbeProgram());
  if (!P) {
    std::fprintf(stderr, "exploration probe does not compile:\n%s",
                 V.lastDiagnostics().c_str());
    return 1;
  }
  RefinementJob Job;
  Job.Src = &*P;
  Job.Tgt = &*P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 16;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 16;
  Job.Oracles = sampledOracles(30);
  for (Word I = 0; I < 8; ++I)
    Job.InputTapes.push_back({I});

  std::string Baseline;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    Job.Exec.Jobs = Jobs;
    uint64_t Runs = 0;
    ModelStats Stats;
    std::string Rendered;
    double Seconds = qcm_bench::medianSeconds(Repeat, [&] {
      Runs = 0;
      Stats = ModelStats();
      for (unsigned I = 0; I < Iters; ++I) {
        RefinementReport R = checkRefinement(Job);
        Runs += R.RunsPerformed;
        Stats.accumulate(R.AggregateStats);
        Rendered = R.toString();
      }
    });
    if (Jobs == 1)
      Baseline = Rendered;
    else if (Rendered != Baseline) {
      std::fprintf(stderr,
                   "thread sweep: report at jobs=%u differs from jobs=1\n",
                   Jobs);
      return 1;
    }
    Report.add("refinement_sweep", "jobs=" + std::to_string(Jobs),
               modelKindName(ModelKind::QuasiConcrete), Seconds, Iters, Runs,
               Stats);
  }
  return 0;
}

/// Per-grid-item state cost scenario: a tiny program over an oracle x tape
/// grid, so the Machine/Memory construction (or reset) per item dominates
/// the wall clock rather than the program's own execution.
std::string gridResetProgram() {
  return R"(
main() {
  var ptr p, int a, int v;
  a = input();
  p = malloc(4);
  *p = a;
  *(p + 1) = a + 1;
  v = *(p + 1);
  output(v);
}
)";
}

int runGridReset(qcm_bench::JsonReport &Report, Vm &V,
                 const qcm_bench::JsonOptions &Options) {
  std::optional<Program> P = V.compile(gridResetProgram());
  if (!P) {
    std::fprintf(stderr, "grid-reset probe does not compile:\n%s",
                 V.lastDiagnostics().c_str());
    return 1;
  }
  RefinementJob Job;
  Job.Src = &*P;
  Job.Tgt = &*P;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 16;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 16;
  Job.Oracles = sampledOracles(16);
  for (Word I = 0; I < 8; ++I)
    Job.InputTapes.push_back({I});
  Job.Exec.Jobs = 1;

  const unsigned Iters = Options.itersOr(20);
  uint64_t Runs = 0;
  ModelStats Stats;
  double Seconds = qcm_bench::medianSeconds(Options.Repeat, [&] {
    Runs = 0;
    Stats = ModelStats();
    for (unsigned I = 0; I < Iters; ++I) {
      RefinementReport R = checkRefinement(Job);
      Runs += R.RunsPerformed;
      Stats.accumulate(R.AggregateStats);
    }
  });
  Report.add("grid_reset", "jobs=1",
             modelKindName(ModelKind::QuasiConcrete), Seconds, Iters, Runs,
             Stats);
  return 0;
}

/// --json mode: each workload under each applicable model, on both engines
/// (the QIR machine reusing one compiled module, and the reference AST
/// walker), with wall time and the memory-event counters.
int runJsonScenarios(const qcm_bench::JsonOptions &Options) {
  struct Workload {
    const char *Name;
    std::string Source;
    std::vector<ModelKind> Models;
  };
  const std::vector<Workload> Workloads = {
      {"insertion_sort",
       sortProgram(64),
       {ModelKind::Concrete, ModelKind::Logical, ModelKind::QuasiConcrete,
        ModelKind::TwoPhase}},
      // The logical model cannot run the cast list (casts fault).
      {"cast_linked_list",
       castListProgram(128),
       {ModelKind::Concrete, ModelKind::QuasiConcrete,
        ModelKind::TwoPhase}},
  };
  const unsigned Iters = Options.itersOr(20);
  qcm_bench::JsonReport Report;
  Vm V;
  for (const Workload &W : Workloads) {
    std::optional<Program> P = V.compile(W.Source);
    if (!P) {
      std::fprintf(stderr, "workload %s does not compile:\n%s", W.Name,
                   V.lastDiagnostics().c_str());
      return 1;
    }
    std::shared_ptr<const qir::QirModule> Module = qir::compileProgram(*P);
    for (ModelKind Model : W.Models) {
      RunConfig C;
      C.Model = Model;
      C.MemConfig.AddressWords = 1u << 20;
      C.Interp.StepLimit = 100'000'000;

      uint64_t Steps = 0;
      ModelStats Stats;
      Stopwatch Timer;
      for (unsigned I = 0; I < Iters; ++I) {
        RunResult R = runCompiled(Module, C);
        Steps += R.Steps;
        Stats.accumulate(R.Stats);
      }
      Report.add(W.Name, "qir", modelKindName(Model), Timer.seconds(),
                 Iters, Steps, Stats);

      Steps = 0;
      Stats = ModelStats();
      Timer.reset();
      for (unsigned I = 0; I < Iters; ++I) {
        RunResult R = runAstProgram(*P, C);
        Steps += R.Steps;
        Stats.accumulate(R.Stats);
      }
      Report.add(W.Name, "ast", modelKindName(Model), Timer.seconds(),
                 Iters, Steps, Stats);
    }
  }
  if (int Err = runThreadSweep(Report, V, Options.itersOr(5),
                               Options.Repeat))
    return Err;
  if (int Err = runGridReset(Report, V, Options))
    return Err;
  return Report.write(Options.Path) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::optional<qcm_bench::JsonOptions> Json =
      qcm_bench::parseJsonOptions(Argc, Argv);
  if (Json)
    return runJsonScenarios(*Json);
  std::printf("== Whole-program workloads across the memory models ==\n");
  // Sanity: the cast-list result is the same under concrete and quasi.
  Vm V;
  std::optional<Program> P = V.compile(castListProgram(16));
  for (ModelKind Model : {ModelKind::Concrete, ModelKind::QuasiConcrete}) {
    RunConfig C;
    C.Model = Model;
    C.MemConfig.AddressWords = 1u << 20;
    RunResult R = runProgram(*P, C);
    std::printf("cast-list sum under %-24s %s\n",
                modelKindName(Model).c_str(), R.Behav.toString().c_str());
  }
  std::printf("\n");
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
