//===- bench/bench_models_perf.cpp - E15: model operation throughput ------===//
//
// Our own evaluation (the paper has no performance numbers): the cost of
// the primitive memory operations under each of the three models, plus
// whole-interpreter throughput. Shows what the quasi-concrete model costs
// over the logical one (realization bookkeeping) and over the concrete one
// (block table vs flat array).
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "memory/ConcreteMemory.h"
#include "memory/LogicalMemory.h"
#include "memory/QuasiConcreteMemory.h"
#include "semantics/Runner.h"

#include <benchmark/benchmark.h>

using namespace qcm;

namespace {

MemoryConfig bigConfig() {
  MemoryConfig C;
  C.AddressWords = 1ull << 32;
  return C;
}

std::unique_ptr<Memory> makeModel(int Kind) {
  switch (Kind) {
  case 0:
    return std::make_unique<ConcreteMemory>(bigConfig());
  case 1:
    return std::make_unique<LogicalMemory>(bigConfig());
  default:
    return std::make_unique<QuasiConcreteMemory>(bigConfig());
  }
}

const char *modelName(int Kind) {
  return Kind == 0 ? "concrete" : Kind == 1 ? "logical" : "quasi-concrete";
}

void BM_AllocateFree(benchmark::State &State) {
  std::unique_ptr<Memory> M = makeModel(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Outcome<Value> P = M->allocate(4);
    benchmark::DoNotOptimize(P.ok());
    (void)M->deallocate(P.value());
  }
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
BENCHMARK(BM_AllocateFree)->Arg(0)->Arg(1)->Arg(2);

void BM_LoadStore(benchmark::State &State) {
  std::unique_ptr<Memory> M = makeModel(static_cast<int>(State.range(0)));
  Value P = M->allocate(64).value();
  Word I = 0;
  for (auto _ : State) {
    Value Slot = P.isPtr() ? Value::makePtr(P.ptr().Block, I % 64)
                           : Value::makeInt(P.intValue() + I % 64);
    (void)M->store(Slot, Value::makeInt(I));
    Outcome<Value> V = M->load(Slot);
    benchmark::DoNotOptimize(V.value());
    ++I;
  }
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
BENCHMARK(BM_LoadStore)->Arg(0)->Arg(1)->Arg(2);

void BM_CastRoundTrip(benchmark::State &State) {
  std::unique_ptr<Memory> M = makeModel(static_cast<int>(State.range(0)));
  Value P = M->allocate(4).value();
  for (auto _ : State) {
    Outcome<Value> I = M->castPtrToInt(P);
    Outcome<Value> Back = M->castIntToPtr(I.value());
    benchmark::DoNotOptimize(Back.ok());
  }
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
// The logical model faults on casts; bench concrete and quasi only.
BENCHMARK(BM_CastRoundTrip)->Arg(0)->Arg(2);

void BM_FirstCastRealization(benchmark::State &State) {
  // The quasi-concrete model's distinctive cost: the first cast of each
  // block pays for placement search; later casts are lookups
  // (BM_CastRoundTrip measures those).
  for (auto _ : State) {
    QuasiConcreteMemory M(bigConfig());
    State.PauseTiming();
    std::vector<Value> Ps;
    for (int I = 0; I < 64; ++I)
      Ps.push_back(M.allocate(4).value());
    State.ResumeTiming();
    for (const Value &P : Ps)
      benchmark::DoNotOptimize(M.castPtrToInt(P).ok());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_FirstCastRealization);

void BM_InterpreterThroughput(benchmark::State &State) {
  Vm V;
  std::optional<Program> P = V.compile(R"(
main() {
  var ptr buf, int i, int acc, int tmp;
  buf = malloc(64);
  i = 0;
  while (i == 64) { i = 0; }
  i = 64;
  while (i) {
    i = i - 1;
    *(buf + i) = i * i;
  }
  acc = 0;
  i = 64;
  while (i) {
    i = i - 1;
    tmp = *(buf + i);
    acc = acc + tmp;
  }
  output(acc);
}
)");
  RunConfig C;
  C.Model = static_cast<ModelKind>(State.range(0));
  C.MemConfig.AddressWords = 1u << 20;
  uint64_t Steps = 0;
  ModelStats Stats;
  for (auto _ : State) {
    RunResult R = runProgram(*P, C);
    benchmark::DoNotOptimize(R.Behav.BehaviorKind);
    Steps += R.Steps;
    Stats.accumulate(R.Stats);
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
  State.counters["mem_ops"] = benchmark::Counter(
      static_cast<double>(Stats.totalOperations()),
      benchmark::Counter::kIsRate);
  State.counters["casts"] = benchmark::Counter(
      static_cast<double>(Stats.CastsToInt + Stats.CastsToPtr),
      benchmark::Counter::kIsRate);
  State.counters["realizations"] = benchmark::Counter(
      static_cast<double>(Stats.Realizations), benchmark::Counter::kIsRate);
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
BENCHMARK(BM_InterpreterThroughput)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
