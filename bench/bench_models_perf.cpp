//===- bench/bench_models_perf.cpp - E15: model operation throughput ------===//
//
// Our own evaluation (the paper has no performance numbers): the cost of
// the primitive memory operations under each of the three models, plus
// whole-interpreter throughput. Shows what the quasi-concrete model costs
// over the logical one (realization bookkeeping) and over the concrete one
// (block table vs flat array).
//
//===----------------------------------------------------------------------===//

#include "JsonBench.h"

#include "core/Vm.h"
#include "ir/Compile.h"
#include "memory/ModelRegistry.h"
#include "memory/QuasiConcreteMemory.h"
#include "memory/TwoPhaseMemory.h"
#include "semantics/AstInterp.h"
#include "semantics/Runner.h"

#include <benchmark/benchmark.h>

using namespace qcm;

namespace {

MemoryConfig bigConfig() {
  MemoryConfig C;
  C.AddressWords = 1ull << 32;
  return C;
}

/// \p Kind is a ModelKind index; construction goes through the registry so
/// the bench exercises the same factories the interpreter uses. The eager
/// variant (index 3) is a rejected design and is left out of the sweeps.
std::unique_ptr<Memory> makeModel(int Kind) {
  ModelMakeConfig C;
  C.MemCfg = bigConfig();
  return modelDescriptor(static_cast<ModelKind>(Kind)).Make(std::move(C));
}

const char *modelName(int Kind) {
  return modelDescriptor(static_cast<ModelKind>(Kind)).ProseName;
}

void BM_AllocateFree(benchmark::State &State) {
  std::unique_ptr<Memory> M = makeModel(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Outcome<Value> P = M->allocate(4);
    benchmark::DoNotOptimize(P.ok());
    (void)M->deallocate(P.value());
  }
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
BENCHMARK(BM_AllocateFree)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_LoadStore(benchmark::State &State) {
  std::unique_ptr<Memory> M = makeModel(static_cast<int>(State.range(0)));
  Value P = M->allocate(64).value();
  Word I = 0;
  for (auto _ : State) {
    Value Slot = P.isPtr() ? Value::makePtr(P.ptr().Block, I % 64)
                           : Value::makeInt(P.intValue() + I % 64);
    (void)M->store(Slot, Value::makeInt(I));
    Outcome<Value> V = M->load(Slot);
    benchmark::DoNotOptimize(V.value());
    ++I;
  }
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
BENCHMARK(BM_LoadStore)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_CastRoundTrip(benchmark::State &State) {
  std::unique_ptr<Memory> M = makeModel(static_cast<int>(State.range(0)));
  Value P = M->allocate(4).value();
  for (auto _ : State) {
    Outcome<Value> I = M->castPtrToInt(P);
    Outcome<Value> Back = M->castIntToPtr(I.value());
    benchmark::DoNotOptimize(Back.ok());
  }
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
// The logical model faults on casts; bench the casting models only (the
// two-phase memory pays its transition on the first iteration and settles
// into phase-2 lookups after that).
BENCHMARK(BM_CastRoundTrip)->Arg(0)->Arg(2)->Arg(4);

void BM_FirstCastRealization(benchmark::State &State) {
  // The quasi-concrete model's distinctive cost: the first cast of each
  // block pays for placement search; later casts are lookups
  // (BM_CastRoundTrip measures those).
  for (auto _ : State) {
    QuasiConcreteMemory M(bigConfig());
    State.PauseTiming();
    std::vector<Value> Ps;
    for (int I = 0; I < 64; ++I)
      Ps.push_back(M.allocate(4).value());
    State.ResumeTiming();
    for (const Value &P : Ps)
      benchmark::DoNotOptimize(M.castPtrToInt(P).ok());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_FirstCastRealization);

void BM_PhaseTransition(benchmark::State &State) {
  // The two-phase model's distinctive cost: the first cast concretizes
  // every live block at once. 64 blocks placed per transition.
  for (auto _ : State) {
    TwoPhaseMemory M(bigConfig());
    State.PauseTiming();
    std::vector<Value> Ps;
    for (int I = 0; I < 64; ++I)
      Ps.push_back(M.allocate(4).value());
    State.ResumeTiming();
    benchmark::DoNotOptimize(M.castPtrToInt(Ps.front()).ok());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_PhaseTransition);

/// The whole-interpreter workload shared by BM_InterpreterThroughput and
/// the --json scenario sweep.
const char *ThroughputSource = R"(
main() {
  var ptr buf, int i, int acc, int tmp;
  buf = malloc(64);
  i = 0;
  while (i == 64) { i = 0; }
  i = 64;
  while (i) {
    i = i - 1;
    *(buf + i) = i * i;
  }
  acc = 0;
  i = 64;
  while (i) {
    i = i - 1;
    tmp = *(buf + i);
    acc = acc + tmp;
  }
  output(acc);
}
)";

void BM_InterpreterThroughput(benchmark::State &State) {
  Vm V;
  std::optional<Program> P = V.compile(ThroughputSource);
  RunConfig C;
  C.Model = static_cast<ModelKind>(State.range(0));
  C.MemConfig.AddressWords = 1u << 20;
  uint64_t Steps = 0;
  ModelStats Stats;
  for (auto _ : State) {
    RunResult R = runProgram(*P, C);
    benchmark::DoNotOptimize(R.Behav.BehaviorKind);
    Steps += R.Steps;
    Stats.accumulate(R.Stats);
  }
  State.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
  State.counters["mem_ops"] = benchmark::Counter(
      static_cast<double>(Stats.totalOperations()),
      benchmark::Counter::kIsRate);
  State.counters["casts"] = benchmark::Counter(
      static_cast<double>(Stats.CastsToInt + Stats.CastsToPtr),
      benchmark::Counter::kIsRate);
  State.counters["realizations"] = benchmark::Counter(
      static_cast<double>(Stats.Realizations), benchmark::Counter::kIsRate);
  State.SetLabel(modelName(static_cast<int>(State.range(0))));
}
BENCHMARK(BM_InterpreterThroughput)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

/// Call- and variable-heavy workload: the interpreter costs QIR removes
/// (name-keyed environments, function lookup by name, tree re-walks)
/// dominate, while memory traffic — identical in both engines — stays
/// modest.
const char *CallHeavySource = R"(
combine(ptr out, int a, int b, int c) {
  var int t0, int t1, int t2;
  t0 = a + b;
  t1 = t0 * 3;
  t2 = t1 + c;
  t0 = t2 - a;
  t1 = t0 & 65535;
  *out = t1;
}

main() {
  var ptr r, int i, int acc, int v;
  r = malloc(1);
  acc = 1;
  i = 400;
  while (i) {
    combine(r, i, acc, 7);
    v = *r;
    acc = acc + v;
    acc = acc & 1048575;
    i = i - 1;
  }
  output(acc);
}
)";

/// Memory-bound scenarios against the raw Memory interface — no
/// interpreter in the loop, so they isolate the data-layout hot paths:
/// address->cell resolution (loadstore_dense), integer->pointer lookup
/// (cast_dense), and placement + first-cast bookkeeping
/// (realization_dense). Each timed section runs Options.Repeat times and
/// the median is reported; counters come from the last repeat (every
/// repeat does identical deterministic work).
int runMemoryScenarios(const qcm_bench::JsonOptions &Options,
                       qcm_bench::JsonReport &Report) {
  // loadstore_dense: 64 live blocks x 64 words, every word stored then
  // loaded back each pass. Every shipped model.
  for (int Kind : {0, 1, 2, 4}) {
    const unsigned Passes = Options.itersOr(60);
    constexpr unsigned NumBlocks = 64, BlockWords = 64;
    uint64_t Ops = 0;
    ModelStats Stats;
    double Seconds = qcm_bench::medianSeconds(Options.Repeat, [&] {
      std::unique_ptr<Memory> M = makeModel(Kind);
      std::vector<Value> Ptrs;
      Ptrs.reserve(NumBlocks);
      for (unsigned B = 0; B < NumBlocks; ++B)
        Ptrs.push_back(M->allocate(BlockWords).value());
      Ops = 0;
      for (unsigned Pass = 0; Pass < Passes; ++Pass) {
        for (unsigned B = 0; B < NumBlocks; ++B) {
          const Value P = Ptrs[B];
          for (unsigned W = 0; W < BlockWords; ++W) {
            Value Slot = P.isPtr()
                             ? Value::makePtr(P.ptr().Block, W)
                             : Value::makeInt(P.intValue() + W);
            (void)M->store(Slot, Value::makeInt(Pass + W));
            benchmark::DoNotOptimize(M->load(Slot).value());
            Ops += 2;
          }
        }
      }
      Stats = M->trace().stats();
    });
    Report.add("loadstore_dense", "memapi", modelName(Kind), Seconds,
               Passes, Ops, Stats);
  }

  // cast_dense: 128 realized blocks, then repeated int->ptr / ptr->int
  // round trips over all of them. The int->ptr direction is the lookup
  // the quasi-concrete model pays per cast. Logical faults on casts.
  for (int Kind : {0, 2, 4}) {
    const unsigned Passes = Options.itersOr(400);
    constexpr unsigned NumBlocks = 128;
    uint64_t Casts = 0;
    ModelStats Stats;
    std::vector<double> Times;
    for (unsigned R = 0; R < Options.Repeat; ++R) {
      std::unique_ptr<Memory> M = makeModel(Kind);
      std::vector<Value> Addrs;
      Addrs.reserve(NumBlocks);
      for (unsigned B = 0; B < NumBlocks; ++B) {
        Value P = M->allocate(4).value();
        Addrs.push_back(M->castPtrToInt(P).value());
      }
      Casts = 0;
      Stopwatch Timer;
      for (unsigned Pass = 0; Pass < Passes; ++Pass) {
        for (unsigned B = 0; B < NumBlocks; ++B) {
          Value Addr = Value::makeInt(Addrs[B].intValue() + (Pass & 3));
          Value P = M->castIntToPtr(Addr).value();
          benchmark::DoNotOptimize(M->castPtrToInt(P).value());
          Casts += 2;
        }
      }
      Times.push_back(Timer.seconds());
      Stats = M->trace().stats();
    }
    Report.add("cast_dense", "memapi", modelName(Kind),
               qcm_bench::medianOf(Times), Passes, Casts, Stats);
  }

  // realization_dense: a fresh quasi-concrete memory per iteration; 64
  // allocations each paying its first-cast placement search. Measures the
  // occupied-range scan that placement performs per realization.
  {
    const unsigned Iters = Options.itersOr(300);
    constexpr unsigned NumBlocks = 64;
    uint64_t Realized = 0;
    ModelStats Stats;
    double Seconds = qcm_bench::medianSeconds(Options.Repeat, [&] {
      Realized = 0;
      Stats = ModelStats();
      for (unsigned I = 0; I < Iters; ++I) {
        QuasiConcreteMemory M(bigConfig());
        std::vector<Value> Ps;
        Ps.reserve(NumBlocks);
        for (unsigned B = 0; B < NumBlocks; ++B)
          Ps.push_back(M.allocate(4).value());
        for (const Value &P : Ps)
          benchmark::DoNotOptimize(M.castPtrToInt(P).ok());
        Realized += NumBlocks;
        Stats.accumulate(M.trace().stats());
      }
    });
    Report.add("realization_dense", "memapi", "quasi-concrete", Seconds,
               Iters, Realized, Stats);
  }

  // transition_dense: the two-phase counterpart of realization_dense — a
  // fresh memory per iteration, 64 live blocks, and ONE cast that pays the
  // whole-world concretization at the phase transition.
  {
    const unsigned Iters = Options.itersOr(300);
    constexpr unsigned NumBlocks = 64;
    uint64_t Realized = 0;
    ModelStats Stats;
    double Seconds = qcm_bench::medianSeconds(Options.Repeat, [&] {
      Realized = 0;
      Stats = ModelStats();
      for (unsigned I = 0; I < Iters; ++I) {
        TwoPhaseMemory M(bigConfig());
        std::vector<Value> Ps;
        Ps.reserve(NumBlocks);
        for (unsigned B = 0; B < NumBlocks; ++B)
          Ps.push_back(M.allocate(4).value());
        benchmark::DoNotOptimize(M.castPtrToInt(Ps.front()).ok());
        Realized += NumBlocks;
        Stats.accumulate(M.trace().stats());
      }
    });
    Report.add("transition_dense", "memapi", "two-phase", Seconds, Iters,
               Realized, Stats);
  }
  return 0;
}

/// --json mode: the repeated-execution scenarios behind the interpreter's
/// perf trajectory. Both scenarios are refinement-shaped work — one program
/// executed many times under the same configuration — measured on the QIR
/// engine (compile once, reuse the module) and on the reference AST walker
/// (re-walks the tree every run).
int runJsonScenarios(const qcm_bench::JsonOptions &Options) {
  struct Scenario {
    const char *Name;
    const char *Source;
    unsigned DefaultIters;
  };
  const Scenario Scenarios[] = {
      {"interp_repeat", ThroughputSource, 300},
      {"call_repeat", CallHeavySource, 300},
  };
  Vm V;
  qcm_bench::JsonReport Report;
  for (const Scenario &S : Scenarios) {
    std::optional<Program> P = V.compile(S.Source);
    if (!P) {
      std::fprintf(stderr, "workload %s does not compile:\n%s", S.Name,
                   V.lastDiagnostics().c_str());
      return 1;
    }
    const unsigned Iters = Options.itersOr(S.DefaultIters);
    std::shared_ptr<const qir::QirModule> Module = qir::compileProgram(*P);
    for (int Kind : {0, 1, 2, 4}) {
      RunConfig C;
      C.Model = static_cast<ModelKind>(Kind);
      C.MemConfig.AddressWords = 1u << 20;

      // Each row is the *fastest* of Options.Repeat timings of the full
      // Iters loop (the work is deterministic, so slower samples are pure
      // scheduler noise); counters come from the last repeat.
      uint64_t Steps = 0;
      ModelStats Stats;
      double Seconds = qcm_bench::bestSeconds(Options.Repeat, [&] {
        Steps = 0;
        Stats = ModelStats();
        for (unsigned I = 0; I < Iters; ++I) {
          RunResult R = runCompiled(Module, C);
          Steps += R.Steps;
          Stats.accumulate(R.Stats);
        }
      });
      Report.add(S.Name, "qir", modelName(Kind), Seconds, Iters, Steps,
                 Stats);

      // Forced switch dispatch on the same shared module: the delta
      // against the qir row is what direct threading buys. In
      // switch-only builds the two rows coincide.
      RunConfig SwitchC = C;
      SwitchC.Interp.Dispatch = DispatchMode::Switch;
      Seconds = qcm_bench::bestSeconds(Options.Repeat, [&] {
        Steps = 0;
        Stats = ModelStats();
        for (unsigned I = 0; I < Iters; ++I) {
          RunResult R = runCompiled(Module, SwitchC);
          Steps += R.Steps;
          Stats.accumulate(R.Stats);
        }
      });
      Report.add(S.Name, "qir-switch", modelName(Kind), Seconds, Iters,
                 Steps, Stats);

      Seconds = qcm_bench::bestSeconds(Options.Repeat, [&] {
        Steps = 0;
        Stats = ModelStats();
        for (unsigned I = 0; I < Iters; ++I) {
          RunResult R = runAstProgram(*P, C);
          Steps += R.Steps;
          Stats.accumulate(R.Stats);
        }
      });
      Report.add(S.Name, "ast", modelName(Kind), Seconds, Iters, Steps,
                 Stats);

      // Fresh compilation per run: what a caller pays when it cannot
      // reuse the module. The delta against the qir row is compile cost.
      Seconds = qcm_bench::bestSeconds(Options.Repeat, [&] {
        Steps = 0;
        Stats = ModelStats();
        for (unsigned I = 0; I < Iters; ++I) {
          RunResult R = runProgram(*P, C);
          Steps += R.Steps;
          Stats.accumulate(R.Stats);
        }
      });
      Report.add(S.Name + std::string("_fresh"), "qir", modelName(Kind),
                 Seconds, Iters, Steps, Stats);
    }
  }
  if (int Err = runMemoryScenarios(Options, Report))
    return Err;
  return Report.write(Options.Path) ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::optional<qcm_bench::JsonOptions> Json =
      qcm_bench::parseJsonOptions(Argc, Argv);
  if (Json)
    return runJsonScenarios(*Json);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
