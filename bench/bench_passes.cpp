//===- bench/bench_passes.cpp - Optimization pass throughput --------------===//
//
// Times the optimizer on synthetically scaled programs: long straight-line
// arithmetic chains, ownership-heavy allocation/store/load sequences, and
// the full pipeline on the paper's running example replicated N times.
//
//===----------------------------------------------------------------------===//

#include "core/Vm.h"
#include "lang/PrettyPrint.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/OwnershipOpt.h"

#include <benchmark/benchmark.h>

using namespace qcm;

namespace {

Program compileOrDie(const std::string &Source) {
  Vm V;
  std::optional<Program> P = V.compile(Source);
  if (!P) {
    std::fprintf(stderr, "bench program does not compile:\n%s\n",
                 V.lastDiagnostics().c_str());
    std::abort();
  }
  return std::move(*P);
}

std::string arithChainProgram(int N) {
  std::string Body = "main() {\n  var int a, int b, int c;\n  a = input();\n"
                     "  b = input();\n  c = 0;\n";
  for (int I = 0; I < N; ++I)
    Body += "  c = c + (a - b) + (2 * b - b) - a + " +
            std::to_string(I % 7) + ";\n";
  Body += "  output(c);\n}\n";
  return Body;
}

std::string ownershipChainProgram(int N) {
  std::string Body = "extern bar();\nmain() {\n  var ptr q, int a, int acc;\n"
                     "  acc = 0;\n";
  for (int I = 0; I < N; ++I) {
    Body += "  q = malloc(1);\n  *q = " + std::to_string(I) +
            ";\n  bar();\n  a = *q;\n  acc = acc + a;\n  free(q);\n";
  }
  Body += "  output(acc);\n}\n";
  return Body;
}

void BM_ArithSimplifyChain(benchmark::State &State) {
  Program P = compileOrDie(arithChainProgram(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    Program Copy = P.clone();
    ArithSimplifyPass Pass;
    for (FunctionDecl &F : Copy.Functions)
      if (!F.isExtern())
        benchmark::DoNotOptimize(Pass.runOnFunction(F, Copy));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ArithSimplifyChain)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_ConstPropChain(benchmark::State &State) {
  Program P = compileOrDie(arithChainProgram(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    Program Copy = P.clone();
    ConstPropPass Pass;
    for (FunctionDecl &F : Copy.Functions)
      if (!F.isExtern())
        benchmark::DoNotOptimize(Pass.runOnFunction(F, Copy));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_ConstPropChain)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_OwnershipOptChain(benchmark::State &State) {
  Program P =
      compileOrDie(ownershipChainProgram(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    Program Copy = P.clone();
    OwnershipOptPass Pass;
    for (FunctionDecl &F : Copy.Functions)
      if (!F.isExtern())
        benchmark::DoNotOptimize(Pass.runOnFunction(F, Copy));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_OwnershipOptChain)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_FullPipeline(benchmark::State &State) {
  Program P =
      compileOrDie(ownershipChainProgram(static_cast<int>(State.range(0))));
  for (auto _ : State) {
    Program Copy = P.clone();
    DceOptions Dce;
    Dce.RemoveDeadAllocs = true;
    PassManager PM;
    PM.add(std::make_unique<OwnershipOptPass>());
    PM.add(std::make_unique<ConstPropPass>());
    PM.add(std::make_unique<ArithSimplifyPass>());
    PM.add(std::make_unique<DeadCodeElimPass>(Dce));
    benchmark::DoNotOptimize(PM.run(Copy, 8));
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_FullPipeline)->Arg(8)->Arg(32)->Arg(128)->Complexity();

void BM_ParseAndTypeCheck(benchmark::State &State) {
  std::string Source = ownershipChainProgram(static_cast<int>(State.range(0)));
  for (auto _ : State) {
    Vm V;
    std::optional<Program> P = V.compile(Source);
    benchmark::DoNotOptimize(P.has_value());
  }
  State.SetBytesProcessed(State.iterations() * Source.size());
}
BENCHMARK(BM_ParseAndTypeCheck)->Arg(8)->Arg(32)->Arg(128);

} // namespace

BENCHMARK_MAIN();
