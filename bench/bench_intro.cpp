//===- bench/bench_intro.cpp - E1: Section 1 introduction example ---------===//
//
// Regenerates the paper's opening claim: constant propagation plus dead
// allocation elimination across an unknown call is valid under the logical
// and quasi-concrete models and invalid under the concrete model.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E1 (Section 1): CP + DAE across an unknown call", {"intro"}, Argc,
      Argv);
}
