//===- bench/bench_casts.cpp - E13: Section 4 cast semantics costs --------===//
//
// Characterizes the quasi-concrete cast machinery: realization cost as the
// number of already-realized blocks grows (placement search), and
// integer-to-pointer resolution cost as the block table grows (preimage
// scan). Also verifies the Section 4 equations stay exact at scale.
//
//===----------------------------------------------------------------------===//

#include "memory/QuasiConcreteMemory.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace qcm;

namespace {

MemoryConfig bigConfig() {
  MemoryConfig C;
  C.AddressWords = 1ull << 32;
  return C;
}

void BM_RealizeWithNPriorBlocks(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    QuasiConcreteMemory M(bigConfig());
    for (int I = 0; I < N; ++I) {
      Value P = M.allocate(2).value();
      (void)M.castPtrToInt(P);
    }
    Value Fresh = M.allocate(2).value();
    State.ResumeTiming();
    benchmark::DoNotOptimize(M.castPtrToInt(Fresh).ok());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_RealizeWithNPriorBlocks)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

void BM_CastIntToPtrWithNBlocks(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  QuasiConcreteMemory M(bigConfig());
  Word LastAddr = 0;
  for (int I = 0; I < N; ++I) {
    Value P = M.allocate(2).value();
    LastAddr = M.castPtrToInt(P).value().intValue();
  }
  for (auto _ : State) {
    Outcome<Value> R = M.castIntToPtr(Value::makeInt(LastAddr));
    benchmark::DoNotOptimize(R.ok());
  }
  State.SetComplexityN(N);
}
BENCHMARK(BM_CastIntToPtrWithNBlocks)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

void BM_RoundTripExactnessSweep(benchmark::State &State) {
  // cast2ptr(cast2int(l, i)) == (l, i) for every block and offset; the
  // benchmark doubles as a large-scale correctness sweep.
  QuasiConcreteMemory M(bigConfig());
  std::vector<Value> Ps;
  for (int I = 0; I < 128; ++I)
    Ps.push_back(M.allocate(8).value());
  uint64_t Checked = 0;
  for (auto _ : State) {
    for (const Value &P : Ps) {
      for (Word Off = 0; Off < 8; ++Off) {
        Value Addr = Value::makePtr(P.ptr().Block, Off);
        Word I = M.castPtrToInt(Addr).value().intValue();
        Value Back = M.castIntToPtr(Value::makeInt(I)).value();
        if (!(Back == Addr)) {
          State.SkipWithError("cast round trip violated");
          return;
        }
        ++Checked;
      }
    }
  }
  State.counters["casts_checked"] = benchmark::Counter(
      static_cast<double>(Checked), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RoundTripExactnessSweep);

} // namespace

int main(int Argc, char **Argv) {
  std::printf("== E13 (Section 4): cast semantics — realization at cast, "
              "unique preimages ==\n\n");
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
