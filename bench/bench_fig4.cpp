//===- bench/bench_fig4.cpp - E5: Figure 4 arithmetic optimization II -----===//

#include "BenchCommon.h"

int main(int Argc, char **Argv) {
  return qcm_bench::runExperimentBench(
      "E5 (Figure 4): reassociation via t = a + b (vs CompCert-style)",
      {"fig4"}, Argc, Argv);
}
