//===- examples/xor_linked_list.cpp - Unsafely derived pointers -----------===//
//
// Section 7: "We allow [unsafely derived pointers] in order to support
// low-level programming idioms such as XOR linked lists". A doubly linked
// list that stores prev XOR next in a single link field needs pointer bit
// manipulation that no purely logical model can express.
//
// The language has & but no ^, so this example uses the equivalent
// *additive* trick (link = prev + next; neighbor = link - other), which
// exercises exactly the same capability: arithmetic on the representation
// of two pointers combined in one integer.
//
// Build & run:  ./build/examples/xor_linked_list
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"

#include <cstdio>

using namespace qcm;

namespace {

const char *Source = R"(
// Node layout: word 0 = payload, word 1 = link (sum of the *addresses* of
// prev and next; 0 stands for the null address). A three-node list
// a <-> b <-> c is built, then traversed forward and backward using only
// the combined link field — each step recovers the next address as
// link - prev_address.

mk_node(ptr store, int payload) {
  var ptr n;
  n = malloc(2);
  *n = payload;
  *store = n;
}

set_link(ptr n, int link) {
  *(n + 1) = link;
}

// Traverses from 'cur' (coming from address 'prev'), outputting payloads.
traverse(int cur, int prev, int steps) {
  var ptr node, int link, int next, int tmp;
  while (steps) {
    node = (ptr) cur;
    tmp = *node;
    output(tmp);
    link = *(node + 1);
    next = link - prev;
    prev = cur;
    cur = next;
    steps = steps - 1;
  }
}

main() {
  var ptr cell, ptr a, ptr b, ptr c, int ia, int ib, int ic;

  cell = malloc(1);
  mk_node(cell, 10);
  a = *cell;
  mk_node(cell, 20);
  b = *cell;
  mk_node(cell, 30);
  c = *cell;

  // Realize all three nodes: their addresses become first-class integers.
  ia = (int) a;
  ib = (int) b;
  ic = (int) c;

  // Links: a.link = 0 + ib; b.link = ia + ic; c.link = ib + 0.
  set_link(a, ib);
  set_link(b, ia + ic);
  set_link(c, ib);

  traverse(ia, 0, 3);   // forward:  10 20 30
  traverse(ic, 0, 3);   // backward: 30 20 10
}
)";

} // namespace

int main() {
  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 Compiler.lastDiagnostics().c_str());
    return 1;
  }

  RunConfig Config;
  Config.Model = ModelKind::QuasiConcrete;
  Config.MemConfig.AddressWords = 1u << 16;

  std::printf("additive-linked list (XOR-list idiom) under the "
              "quasi-concrete model\n");
  RunResult Result = runProgram(*Prog, Config);
  std::printf("trace: %s\n", Result.Behav.toString().c_str());

  std::vector<Event> Expected = {Event::output(10), Event::output(20),
                                 Event::output(30), Event::output(30),
                                 Event::output(20), Event::output(10)};
  bool Ok = Result.Behav == Behavior::terminated(Expected);

  // Cross-check: the identity compilation to the fully concrete model
  // behaves identically (Section 6.6).
  Config.Model = ModelKind::Concrete;
  RunResult Concrete = runProgram(identityCompile(*Prog), Config);
  std::printf("concrete model: %s\n", Concrete.Behav.toString().c_str());
  Ok &= Concrete.Behav == Result.Behav;

  std::printf("\nxor_linked_list %s\n", Ok ? "succeeded" : "FAILED");
  return Ok ? 0 : 1;
}
