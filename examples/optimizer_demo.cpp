//===- examples/optimizer_demo.cpp - The Section 5.1 pipeline, end to end -===//
//
// Takes the paper's running example, applies the optimizer pipeline
// (ownership optimization, constant propagation, dead code elimination),
// prints the before/after programs, and then *checks* the transformation:
// behavior-set refinement over adversarial contexts, and the mechanized
// Section 5 simulation proof.
//
// Build & run:  ./build/examples/optimizer_demo
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"

#include <cstdio>

using namespace qcm;

int main() {
  const PaperExample &Ex = getPaperExample("running");

  Vm Compiler;
  std::optional<Program> Src = Compiler.compile(Ex.SrcSource);
  if (!Src) {
    std::fprintf(stderr, "%s", Compiler.lastDiagnostics().c_str());
    return 1;
  }

  std::printf("--- source (Section 5.1 running example) ---\n%s\n",
              printProgram(*Src).c_str());

  // The clang -O2-like pipeline.
  Program Optimized = Src->clone();
  DceOptions Dce;
  Dce.RemoveDeadAllocs = true;
  PassManager PM;
  PM.add(std::make_unique<OwnershipOptPass>());
  PM.add(std::make_unique<ConstPropPass>());
  PM.add(std::make_unique<ArithSimplifyPass>());
  PM.add(std::make_unique<DeadCodeElimPass>(Dce));
  PM.run(Optimized, 8);

  std::printf("--- optimized (CP + DLE + DSE + DAE) ---\n%s\n",
              printProgram(Optimized).c_str());

  // 1. Behavior-set refinement over a battery of contexts.
  RefinementJob Job;
  Job.Src = &*Src;
  Job.Tgt = &Optimized;
  Job.BaseSrc.Model = Job.BaseTgt.Model = ModelKind::QuasiConcrete;
  Job.BaseSrc.MemConfig.AddressWords = 1u << 12;
  Job.BaseTgt.MemConfig.AddressWords = 1u << 12;
  Job.Contexts = {
      ContextVariant::fromSource("noop", contexts::noop("bar", "ptr x")),
      ContextVariant::fromSource("writer",
                                 contexts::writeThroughArg("bar", 7)),
      ContextVariant::fromSource("reader",
                                 contexts::readArgAndOutput("bar")),
      ContextVariant::fromSource("caster",
                                 contexts::castArgAndOutput("bar")),
  };
  RefinementReport Report = checkRefinement(Job);
  std::printf("--- refinement check over %llu executions ---\n%s\n",
              static_cast<unsigned long long>(Report.RunsPerformed),
              Report.toString().c_str());

  // 2. The mechanized simulation proof (Figure 6's invariants).
  SimulationSetup Setup;
  Setup.Src = &*Src;
  Setup.Tgt = &Optimized;
  Setup.SrcConfig.Model = ModelKind::QuasiConcrete;
  Setup.TgtConfig.Model = ModelKind::QuasiConcrete;
  Setup.SrcConfig.MemConfig.AddressWords = 1u << 12;
  Setup.TgtConfig.MemConfig.AddressWords = 1u << 12;

  SimulationChecker Sim(Setup);
  auto Fail = [](const std::optional<std::string> &Err) {
    if (Err)
      std::printf("simulation proof FAILED: %s\n", Err->c_str());
    return Err.has_value();
  };
  bool ProofOk =
      !Fail(Sim.begin(nullptr)) &&
      !Fail(Sim.expectCall(
          "bar",
          [](MemoryInvariant &Inv, Machine &SrcM,
             Machine &) -> std::optional<std::string> {
            if (!Inv.Alpha.add(1, 1))
              return "could not relate the p blocks";
            return Inv.addPrivateSrc(2, SrcM.memory());
          },
          sim_actions::writeThroughFirstArg(7))) &&
      !Fail(Sim.expectReturn(
          [](MemoryInvariant &Inv, Machine &,
             Machine &) -> std::optional<std::string> {
            Inv.dropPrivateSrc(2);
            return std::nullopt;
          }));
  std::printf("--- simulation proof (Section 5.3 obligations) ---\n");
  std::printf("%s\n", ProofOk ? "all obligations discharged"
                              : "proof failed");

  bool Ok = Report.Refines && ProofOk;
  std::printf("\noptimizer_demo %s\n", Ok ? "succeeded" : "FAILED");
  return Ok ? 0 : 1;
}
