//===- examples/model_comparison.cpp - One program, three models ----------===//
//
// Runs a battery of idioms under all three memory models side by side,
// showing exactly where each model draws the line between defined and
// undefined — the paper's Table-of-the-mind, made executable.
//
// Build & run:  ./build/examples/model_comparison
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"

#include <cstdio>

using namespace qcm;

namespace {

struct Scenario {
  const char *Name;
  const char *Source;
};

const Scenario Scenarios[] = {
    {"plain heap read/write",
     R"(main() {
  var ptr p, int r;
  p = malloc(2);
  *(p + 1) = 5;
  r = *(p + 1);
  output(r);
})"},
    {"cast round trip",
     R"(main() {
  var ptr p, ptr q, int a, int r;
  p = malloc(1);
  *p = 7;
  a = (int) p;
  q = (ptr) a;
  r = *q;
  output(r);
})"},
    {"arithmetic on a cast pointer",
     R"(main() {
  var ptr p, ptr q, int a, int r;
  p = malloc(2);
  *(p + 1) = 9;
  a = (int) p;
  q = (ptr) (a + 1);
  r = *q;
  output(r);
})"},
    {"forging an address from a constant",
     R"(main() {
  var ptr p, ptr forged, int r;
  p = malloc(1);
  *p = 11;
  forged = (ptr) 1;
  r = *forged;
  output(r);
})"},
    {"guessing after realization",
     R"(main() {
  var ptr p, ptr forged, int a, int r;
  p = malloc(1);
  *p = 13;
  a = (int) p;
  forged = (ptr) 1;
  r = *forged;
  output(r);
})"},
    {"out-of-bounds access",
     R"(main() {
  var ptr p, int r;
  p = malloc(2);
  r = *(p + 2);
  output(r);
})"},
    {"use after free",
     R"(main() {
  var ptr p, int r;
  p = malloc(1);
  free(p);
  r = *p;
  output(r);
})"},
};

} // namespace

int main() {
  std::printf("%-36s%-24s%-24s%s\n", "scenario", "concrete", "logical",
              "quasi-concrete");
  std::printf("%s\n", std::string(108, '-').c_str());

  Vm Compiler;
  for (const Scenario &S : Scenarios) {
    std::optional<Program> Prog = Compiler.compile(S.Source);
    if (!Prog) {
      std::fprintf(stderr, "%s: %s", S.Name,
                   Compiler.lastDiagnostics().c_str());
      return 1;
    }
    std::printf("%-36s", S.Name);
    for (ModelKind Model : {ModelKind::Concrete, ModelKind::Logical,
                            ModelKind::QuasiConcrete}) {
      RunConfig Config;
      Config.Model = Model;
      Config.MemConfig.AddressWords = 64;
      RunResult R = runProgram(*Prog, Config);
      std::string Cell = behaviorKindName(R.Behav.BehaviorKind);
      if (R.Behav.BehaviorKind == Behavior::Kind::Terminated &&
          !R.Behav.Events.empty())
        Cell += " " + R.Behav.Events.back().toString();
      std::printf("%-24s", Cell.c_str());
    }
    std::printf("\n");
  }

  std::printf("\nReading guide: the concrete model accepts everything that "
              "lands in allocated\nmemory (even forged addresses); the "
              "logical model rejects every cast; the\nquasi-concrete model "
              "accepts exactly the realized-address idioms while keeping\n"
              "unrealized blocks unforgeable.\n");
  return 0;
}
