//===- examples/compressed_oops.cpp - HotSpot-style compressed pointers ---===//
//
// Section 7 motivation: the quasi-concrete model "allow[s] unsafely derived
// pointers ... to support low-level programming idioms such as ...
// compressed oops in HotSpot JVM."
//
// Compressed oops store heap references as small offsets from a heap base
// instead of full-width pointers. The object table below keeps, for each
// object, the *difference* between its address and the heap base — an
// integer derived from two pointers that no logical model can represent —
// and reconstructs real pointers on access with base + offset arithmetic on
// cast values.
//
// Build & run:  ./build/examples/compressed_oops
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"

#include <cstdio>

using namespace qcm;

namespace {

const char *Source = R"(
// refs[i] holds the compressed reference of object i: its address minus
// the heap base address (0 = null reference).
global refs[8];
global heapbase[1];

// Compresses a pointer: cast both, subtract, store the small delta.
compress(int slot, ptr obj) {
  var int base, int addr, int delta;
  base = *heapbase;
  addr = (int) obj;
  delta = addr - base;
  *(refs + slot) = delta;
}

// Decompresses slot into a pointer and writes v through it.
store_through(int slot, int v) {
  var int base, int delta, ptr obj;
  base = *heapbase;
  delta = *(refs + slot);
  obj = (ptr) (base + delta);
  *obj = v;
}

// Decompresses slot and outputs the pointee.
load_through(int slot) {
  var int base, int delta, int v, ptr obj;
  base = *heapbase;
  delta = *(refs + slot);
  obj = (ptr) (base + delta);
  v = *obj;
  output(v);
}

main() {
  var ptr arena, ptr a, ptr b, ptr c, int basei, int shown;

  // Carve one arena; its start is the heap base. Objects are slices of
  // the arena, so all compressed refs are small (0..arena size).
  arena = malloc(24);
  basei = (int) arena;
  *heapbase = basei;

  a = arena;          // object 0 at offset 0
  b = arena + 8;      // object 1 at offset 8
  c = arena + 16;     // object 2 at offset 16

  compress(0, a);
  compress(1, b);
  compress(2, c);

  // The compressed refs are plain small integers: print them.
  shown = *(refs + 0);
  output(shown);
  shown = *(refs + 1);
  output(shown);
  shown = *(refs + 2);
  output(shown);

  store_through(0, 111);
  store_through(1, 222);
  store_through(2, 333);

  load_through(0);
  load_through(1);
  load_through(2);
}
)";

} // namespace

int main() {
  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 Compiler.lastDiagnostics().c_str());
    return 1;
  }

  RunConfig Config;
  Config.Model = ModelKind::QuasiConcrete;
  Config.MemConfig.AddressWords = 1u << 16;

  std::printf("compressed-oops object table under the quasi-concrete "
              "model\n");
  RunResult Result = runProgram(*Prog, Config);
  std::printf("trace: %s\n", Result.Behav.toString().c_str());

  std::vector<Event> Expected = {
      Event::output(0),   Event::output(8),   Event::output(16),
      Event::output(111), Event::output(222), Event::output(333)};
  bool Ok = Result.Behav == Behavior::terminated(Expected);

  // The compressed refs (0, 8, 16) are placement-independent: check under
  // a different oracle.
  Config.Oracle = [] { return std::make_unique<LastFitOracle>(); };
  RunResult HighPlacement = runProgram(*Prog, Config);
  Ok &= HighPlacement.Behav == Behavior::terminated(Expected);
  std::printf("last-fit placement gives the identical trace: %s\n",
              HighPlacement.Behav == Result.Behav ? "yes" : "NO");

  std::printf("\ncompressed_oops %s\n", Ok ? "succeeded" : "FAILED");
  return Ok ? 0 : 1;
}
