//===- examples/quickstart.cpp - First steps with the library -------------===//
//
// Compiles a small program in the Section 2 language and runs it under the
// quasi-concrete memory model, demonstrating the headline capability:
// arbitrary integer arithmetic on a pointer that has been cast, with the
// pointer surviving the round trip.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"

#include <cstdio>

using namespace qcm;

int main() {
  // A program that stashes a pointer in an integer variable, obfuscates it
  // with arithmetic (think base64 or the XOR trick), recovers it, and
  // dereferences the result. Undefined in CompCert-style logical models;
  // fully defined here.
  const char *Source = R"(
main() {
  var ptr p, ptr q, int a, int masked, int recovered, int r;
  p = malloc(4);
  *(p + 2) = 1234;

  a = (int) p;            // realization: p's block gets a concrete address
  masked = a * 2 + 7;     // any arithmetic at all is fine on the integer
  recovered = (masked - 7) - a;
  q = (ptr) (recovered + a + 2);

  r = *q;                 // reads p[2] through the recovered pointer
  output(r);

  output(q - p);          // same block: pointer subtraction is defined
  free(p);
}
)";

  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 Compiler.lastDiagnostics().c_str());
    return 1;
  }

  std::printf("--- program ---\n%s\n", printProgram(*Prog).c_str());

  RunConfig Config;
  Config.Model = ModelKind::QuasiConcrete;
  Config.MemConfig.AddressWords = 1u << 16;

  RunResult Result = runProgram(*Prog, Config);
  std::printf("--- run under the quasi-concrete model ---\n");
  std::printf("behavior: %s\n", Result.Behav.toString().c_str());
  std::printf("steps:    %llu\n",
              static_cast<unsigned long long>(Result.Steps));

  // Every run carries aggregate memory statistics. Under the
  // quasi-concrete model the `(int) p` cast realized p's block — one
  // realization, visible here.
  std::printf("%s", Result.Stats.toString().c_str());

  // The same program under the strict logical model dies at the first
  // cast: that is the gap the paper closes.
  Config.Model = ModelKind::Logical;
  RunResult Logical = runProgram(*Prog, Config);
  std::printf("\n--- the same program under the logical model ---\n");
  std::printf("behavior: %s\n", Logical.Behav.toString().c_str());
  std::printf("realizations: %llu (the logical model never realizes)\n",
              static_cast<unsigned long long>(Logical.Stats.Realizations));

  bool Ok = Result.Behav.BehaviorKind == Behavior::Kind::Terminated &&
            Logical.Behav.BehaviorKind == Behavior::Kind::Undefined &&
            Result.Stats.Realizations == 1 &&
            Logical.Stats.Realizations == 0;
  std::printf("\nquickstart %s\n", Ok ? "succeeded" : "FAILED");
  return Ok ? 0 : 1;
}
