//===- examples/pointer_keyed_hash.cpp - std::hash-style pointer keys -----===//
//
// The paper's motivating use case from Section 1: "the pointer's bit
// representation is used as a key for indexing into a hash table
// (std::hash); taking a pointer is a cheap way to get a unique key."
//
// A small open-addressing hash table written in the Section 2 language
// stores (pointer-key, value) associations by casting each pointer to an
// integer. Under the quasi-concrete model the casts realize the key blocks
// and everything is well-defined; the strict logical model rejects the
// program at the first cast.
//
// Build & run:  ./build/examples/pointer_keyed_hash
//
//===----------------------------------------------------------------------===//

#include "core/QuasiConcrete.h"

#include <cstdio>

using namespace qcm;

namespace {

const char *Source = R"(
// Open-addressing table with 16 slots: keys[i] in tab[0..15], values in
// tab[16..31]. A key slot holding 0 is empty (no realized address is 0).
global tab[32];

// Inserts (key, v); linear probing on the key's bit representation.
hash_insert(ptr key, int v) {
  var int k, int slot, int probe, int cur, int placed;
  k = (int) key;             // the cheap unique key: the address itself
  slot = k & 15;
  placed = 0;
  probe = 16;                // at most 16 probes
  while (probe) {
    if (placed == 0) {
      cur = *(tab + slot);
      if (cur == 0) {
        *(tab + slot) = k;
        *(tab + slot + 16) = v;
        placed = 1;
      } else {
        if (cur == k) {
          *(tab + slot + 16) = v;   // overwrite existing key
          placed = 1;
        } else {
          slot = (slot + 1) & 15;
        }
      }
    }
    probe = probe - 1;
  }
}

// Looks up key and outputs the stored value (or 4294967295 if absent).
hash_lookup(ptr key) {
  var int k, int slot, int probe, int cur, int found;
  k = (int) key;
  slot = k & 15;
  found = 0;
  probe = 16;
  while (probe) {
    if (found == 0) {
      cur = *(tab + slot);
      if (cur == k) {
        found = 1;
        cur = *(tab + slot + 16);
        output(cur);
      } else {
        slot = (slot + 1) & 15;
      }
    }
    probe = probe - 1;
  }
  if (found == 0) {
    output(4294967295);
  }
}

main() {
  var ptr a, ptr b, ptr c;
  a = malloc(3);
  b = malloc(1);
  c = malloc(2);

  hash_insert(a, 100);
  hash_insert(b, 200);
  hash_insert(c, 300);
  hash_insert(b, 222);    // overwrite b's entry

  hash_lookup(a);         // 100
  hash_lookup(b);         // 222
  hash_lookup(c);         // 300
  hash_lookup(a + 1);     // distinct key (different representation)
}
)";

} // namespace

int main() {
  Vm Compiler;
  std::optional<Program> Prog = Compiler.compile(Source);
  if (!Prog) {
    std::fprintf(stderr, "compilation failed:\n%s",
                 Compiler.lastDiagnostics().c_str());
    return 1;
  }

  RunConfig Config;
  Config.Model = ModelKind::QuasiConcrete;
  Config.MemConfig.AddressWords = 1u << 16;

  std::printf("pointer-keyed hash table under the quasi-concrete model\n");
  std::printf("(expected: 100, 222, 300, %u)\n\n", 0xffffffffu);

  // Different placement oracles give different keys but identical lookup
  // results: the table's observable behavior is placement-independent
  // except for hash collisions resolving in different orders.
  struct NamedOracle {
    const char *Name;
    OracleFactory Factory;
  } Oracles[] = {
      {"first-fit", [] { return std::make_unique<FirstFitOracle>(); }},
      {"last-fit", [] { return std::make_unique<LastFitOracle>(); }},
      {"random(seed=9)", [] { return std::make_unique<RandomOracle>(9); }},
  };

  bool AllGood = true;
  for (const NamedOracle &O : Oracles) {
    Config.Oracle = O.Factory;
    RunResult Result = runProgram(*Prog, Config);
    std::printf("%-16s %s\n", O.Name, Result.Behav.toString().c_str());
    std::vector<Event> Expected = {
        Event::output(100), Event::output(222), Event::output(300),
        Event::output(0xffffffffu)};
    AllGood &= Result.Behav == Behavior::terminated(Expected);
  }

  // The strict logical model cannot express the idiom at all.
  Config.Model = ModelKind::Logical;
  Config.Oracle = nullptr;
  RunResult Logical = runProgram(*Prog, Config);
  std::printf("%-16s %s\n", "logical model", Logical.Behav.toString().c_str());
  AllGood &= Logical.Behav.BehaviorKind == Behavior::Kind::Undefined;

  std::printf("\npointer_keyed_hash %s\n", AllGood ? "succeeded" : "FAILED");
  return AllGood ? 0 : 1;
}
