# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/concrete_memory_test[1]_include.cmake")
include("/root/repo/build/tests/logical_memory_test[1]_include.cmake")
include("/root/repo/build/tests/quasi_memory_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/typecheck_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/behavior_test[1]_include.cmake")
include("/root/repo/build/tests/refinement_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/arith_simplify_test[1]_include.cmake")
include("/root/repo/build/tests/opt_passes_test[1]_include.cmake")
include("/root/repo/build/tests/ownership_opt_test[1]_include.cmake")
include("/root/repo/build/tests/lowering_test[1]_include.cmake")
include("/root/repo/build/tests/eager_quasi_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/loose_discipline_test[1]_include.cmake")
include("/root/repo/build/tests/vm_runner_test[1]_include.cmake")
include("/root/repo/build/tests/section6_proofs_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_negative_test[1]_include.cmake")
