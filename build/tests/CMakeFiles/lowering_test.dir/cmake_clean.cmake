file(REMOVE_RECURSE
  "CMakeFiles/lowering_test.dir/lowering_test.cpp.o"
  "CMakeFiles/lowering_test.dir/lowering_test.cpp.o.d"
  "lowering_test"
  "lowering_test.pdb"
  "lowering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
