# Empty dependencies file for lowering_test.
# This may be replaced when dependencies are built.
