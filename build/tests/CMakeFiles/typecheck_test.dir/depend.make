# Empty dependencies file for typecheck_test.
# This may be replaced when dependencies are built.
