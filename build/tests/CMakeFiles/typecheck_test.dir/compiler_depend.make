# Empty compiler generated dependencies file for typecheck_test.
# This may be replaced when dependencies are built.
