file(REMOVE_RECURSE
  "CMakeFiles/typecheck_test.dir/typecheck_test.cpp.o"
  "CMakeFiles/typecheck_test.dir/typecheck_test.cpp.o.d"
  "typecheck_test"
  "typecheck_test.pdb"
  "typecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
