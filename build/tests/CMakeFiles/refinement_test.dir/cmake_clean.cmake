file(REMOVE_RECURSE
  "CMakeFiles/refinement_test.dir/refinement_test.cpp.o"
  "CMakeFiles/refinement_test.dir/refinement_test.cpp.o.d"
  "refinement_test"
  "refinement_test.pdb"
  "refinement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
