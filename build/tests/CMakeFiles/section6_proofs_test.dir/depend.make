# Empty dependencies file for section6_proofs_test.
# This may be replaced when dependencies are built.
