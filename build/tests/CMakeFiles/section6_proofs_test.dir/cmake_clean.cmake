file(REMOVE_RECURSE
  "CMakeFiles/section6_proofs_test.dir/section6_proofs_test.cpp.o"
  "CMakeFiles/section6_proofs_test.dir/section6_proofs_test.cpp.o.d"
  "section6_proofs_test"
  "section6_proofs_test.pdb"
  "section6_proofs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section6_proofs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
