# Empty dependencies file for simulation_negative_test.
# This may be replaced when dependencies are built.
