file(REMOVE_RECURSE
  "CMakeFiles/simulation_negative_test.dir/simulation_negative_test.cpp.o"
  "CMakeFiles/simulation_negative_test.dir/simulation_negative_test.cpp.o.d"
  "simulation_negative_test"
  "simulation_negative_test.pdb"
  "simulation_negative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
