# Empty compiler generated dependencies file for logical_memory_test.
# This may be replaced when dependencies are built.
