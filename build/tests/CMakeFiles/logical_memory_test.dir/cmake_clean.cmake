file(REMOVE_RECURSE
  "CMakeFiles/logical_memory_test.dir/logical_memory_test.cpp.o"
  "CMakeFiles/logical_memory_test.dir/logical_memory_test.cpp.o.d"
  "logical_memory_test"
  "logical_memory_test.pdb"
  "logical_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
