# Empty compiler generated dependencies file for ownership_opt_test.
# This may be replaced when dependencies are built.
