file(REMOVE_RECURSE
  "CMakeFiles/ownership_opt_test.dir/ownership_opt_test.cpp.o"
  "CMakeFiles/ownership_opt_test.dir/ownership_opt_test.cpp.o.d"
  "ownership_opt_test"
  "ownership_opt_test.pdb"
  "ownership_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ownership_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
