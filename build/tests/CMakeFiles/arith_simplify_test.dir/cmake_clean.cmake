file(REMOVE_RECURSE
  "CMakeFiles/arith_simplify_test.dir/arith_simplify_test.cpp.o"
  "CMakeFiles/arith_simplify_test.dir/arith_simplify_test.cpp.o.d"
  "arith_simplify_test"
  "arith_simplify_test.pdb"
  "arith_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arith_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
