# Empty compiler generated dependencies file for arith_simplify_test.
# This may be replaced when dependencies are built.
