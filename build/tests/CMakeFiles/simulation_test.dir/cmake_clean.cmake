file(REMOVE_RECURSE
  "CMakeFiles/simulation_test.dir/simulation_test.cpp.o"
  "CMakeFiles/simulation_test.dir/simulation_test.cpp.o.d"
  "simulation_test"
  "simulation_test.pdb"
  "simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
