file(REMOVE_RECURSE
  "CMakeFiles/eager_quasi_test.dir/eager_quasi_test.cpp.o"
  "CMakeFiles/eager_quasi_test.dir/eager_quasi_test.cpp.o.d"
  "eager_quasi_test"
  "eager_quasi_test.pdb"
  "eager_quasi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eager_quasi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
