# Empty dependencies file for eager_quasi_test.
# This may be replaced when dependencies are built.
