file(REMOVE_RECURSE
  "CMakeFiles/vm_runner_test.dir/vm_runner_test.cpp.o"
  "CMakeFiles/vm_runner_test.dir/vm_runner_test.cpp.o.d"
  "vm_runner_test"
  "vm_runner_test.pdb"
  "vm_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
