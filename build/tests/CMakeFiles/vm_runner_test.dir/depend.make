# Empty dependencies file for vm_runner_test.
# This may be replaced when dependencies are built.
