# Empty dependencies file for behavior_test.
# This may be replaced when dependencies are built.
