file(REMOVE_RECURSE
  "CMakeFiles/behavior_test.dir/behavior_test.cpp.o"
  "CMakeFiles/behavior_test.dir/behavior_test.cpp.o.d"
  "behavior_test"
  "behavior_test.pdb"
  "behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
