# Empty compiler generated dependencies file for loose_discipline_test.
# This may be replaced when dependencies are built.
