file(REMOVE_RECURSE
  "CMakeFiles/loose_discipline_test.dir/loose_discipline_test.cpp.o"
  "CMakeFiles/loose_discipline_test.dir/loose_discipline_test.cpp.o.d"
  "loose_discipline_test"
  "loose_discipline_test.pdb"
  "loose_discipline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loose_discipline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
