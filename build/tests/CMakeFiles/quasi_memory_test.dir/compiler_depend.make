# Empty compiler generated dependencies file for quasi_memory_test.
# This may be replaced when dependencies are built.
