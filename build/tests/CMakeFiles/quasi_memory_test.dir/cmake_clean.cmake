file(REMOVE_RECURSE
  "CMakeFiles/quasi_memory_test.dir/quasi_memory_test.cpp.o"
  "CMakeFiles/quasi_memory_test.dir/quasi_memory_test.cpp.o.d"
  "quasi_memory_test"
  "quasi_memory_test.pdb"
  "quasi_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasi_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
