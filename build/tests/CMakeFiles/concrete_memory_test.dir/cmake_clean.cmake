file(REMOVE_RECURSE
  "CMakeFiles/concrete_memory_test.dir/concrete_memory_test.cpp.o"
  "CMakeFiles/concrete_memory_test.dir/concrete_memory_test.cpp.o.d"
  "concrete_memory_test"
  "concrete_memory_test.pdb"
  "concrete_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concrete_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
