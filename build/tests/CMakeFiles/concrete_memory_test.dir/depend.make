# Empty dependencies file for concrete_memory_test.
# This may be replaced when dependencies are built.
