# Empty dependencies file for opt_passes_test.
# This may be replaced when dependencies are built.
