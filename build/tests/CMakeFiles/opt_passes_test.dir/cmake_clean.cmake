file(REMOVE_RECURSE
  "CMakeFiles/opt_passes_test.dir/opt_passes_test.cpp.o"
  "CMakeFiles/opt_passes_test.dir/opt_passes_test.cpp.o.d"
  "opt_passes_test"
  "opt_passes_test.pdb"
  "opt_passes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_passes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
