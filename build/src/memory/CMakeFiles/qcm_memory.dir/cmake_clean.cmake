file(REMOVE_RECURSE
  "CMakeFiles/qcm_memory.dir/BlockMemory.cpp.o"
  "CMakeFiles/qcm_memory.dir/BlockMemory.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/ConcreteMemory.cpp.o"
  "CMakeFiles/qcm_memory.dir/ConcreteMemory.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/EagerQuasiMemory.cpp.o"
  "CMakeFiles/qcm_memory.dir/EagerQuasiMemory.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/LogicalMemory.cpp.o"
  "CMakeFiles/qcm_memory.dir/LogicalMemory.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/Memory.cpp.o"
  "CMakeFiles/qcm_memory.dir/Memory.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/Placement.cpp.o"
  "CMakeFiles/qcm_memory.dir/Placement.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/QuasiConcreteMemory.cpp.o"
  "CMakeFiles/qcm_memory.dir/QuasiConcreteMemory.cpp.o.d"
  "CMakeFiles/qcm_memory.dir/Value.cpp.o"
  "CMakeFiles/qcm_memory.dir/Value.cpp.o.d"
  "libqcm_memory.a"
  "libqcm_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
