# Empty compiler generated dependencies file for qcm_memory.
# This may be replaced when dependencies are built.
