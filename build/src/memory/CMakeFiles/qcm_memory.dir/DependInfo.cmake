
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/BlockMemory.cpp" "src/memory/CMakeFiles/qcm_memory.dir/BlockMemory.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/BlockMemory.cpp.o.d"
  "/root/repo/src/memory/ConcreteMemory.cpp" "src/memory/CMakeFiles/qcm_memory.dir/ConcreteMemory.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/ConcreteMemory.cpp.o.d"
  "/root/repo/src/memory/EagerQuasiMemory.cpp" "src/memory/CMakeFiles/qcm_memory.dir/EagerQuasiMemory.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/EagerQuasiMemory.cpp.o.d"
  "/root/repo/src/memory/LogicalMemory.cpp" "src/memory/CMakeFiles/qcm_memory.dir/LogicalMemory.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/LogicalMemory.cpp.o.d"
  "/root/repo/src/memory/Memory.cpp" "src/memory/CMakeFiles/qcm_memory.dir/Memory.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/Memory.cpp.o.d"
  "/root/repo/src/memory/Placement.cpp" "src/memory/CMakeFiles/qcm_memory.dir/Placement.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/Placement.cpp.o.d"
  "/root/repo/src/memory/QuasiConcreteMemory.cpp" "src/memory/CMakeFiles/qcm_memory.dir/QuasiConcreteMemory.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/QuasiConcreteMemory.cpp.o.d"
  "/root/repo/src/memory/Value.cpp" "src/memory/CMakeFiles/qcm_memory.dir/Value.cpp.o" "gcc" "src/memory/CMakeFiles/qcm_memory.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
