file(REMOVE_RECURSE
  "libqcm_memory.a"
)
