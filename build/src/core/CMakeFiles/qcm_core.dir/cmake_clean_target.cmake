file(REMOVE_RECURSE
  "libqcm_core.a"
)
