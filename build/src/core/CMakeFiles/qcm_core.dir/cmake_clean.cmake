file(REMOVE_RECURSE
  "CMakeFiles/qcm_core.dir/Experiments.cpp.o"
  "CMakeFiles/qcm_core.dir/Experiments.cpp.o.d"
  "CMakeFiles/qcm_core.dir/PaperExamples.cpp.o"
  "CMakeFiles/qcm_core.dir/PaperExamples.cpp.o.d"
  "CMakeFiles/qcm_core.dir/Vm.cpp.o"
  "CMakeFiles/qcm_core.dir/Vm.cpp.o.d"
  "libqcm_core.a"
  "libqcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
