# Empty compiler generated dependencies file for qcm_core.
# This may be replaced when dependencies are built.
