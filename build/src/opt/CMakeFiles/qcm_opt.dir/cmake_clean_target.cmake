file(REMOVE_RECURSE
  "libqcm_opt.a"
)
