file(REMOVE_RECURSE
  "CMakeFiles/qcm_opt.dir/Analysis.cpp.o"
  "CMakeFiles/qcm_opt.dir/Analysis.cpp.o.d"
  "CMakeFiles/qcm_opt.dir/ArithSimplify.cpp.o"
  "CMakeFiles/qcm_opt.dir/ArithSimplify.cpp.o.d"
  "CMakeFiles/qcm_opt.dir/ConstProp.cpp.o"
  "CMakeFiles/qcm_opt.dir/ConstProp.cpp.o.d"
  "CMakeFiles/qcm_opt.dir/DeadCodeElim.cpp.o"
  "CMakeFiles/qcm_opt.dir/DeadCodeElim.cpp.o.d"
  "CMakeFiles/qcm_opt.dir/Lowering.cpp.o"
  "CMakeFiles/qcm_opt.dir/Lowering.cpp.o.d"
  "CMakeFiles/qcm_opt.dir/OwnershipOpt.cpp.o"
  "CMakeFiles/qcm_opt.dir/OwnershipOpt.cpp.o.d"
  "CMakeFiles/qcm_opt.dir/Pass.cpp.o"
  "CMakeFiles/qcm_opt.dir/Pass.cpp.o.d"
  "libqcm_opt.a"
  "libqcm_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
