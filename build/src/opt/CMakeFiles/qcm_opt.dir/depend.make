# Empty dependencies file for qcm_opt.
# This may be replaced when dependencies are built.
