
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/Analysis.cpp" "src/opt/CMakeFiles/qcm_opt.dir/Analysis.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/Analysis.cpp.o.d"
  "/root/repo/src/opt/ArithSimplify.cpp" "src/opt/CMakeFiles/qcm_opt.dir/ArithSimplify.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/ArithSimplify.cpp.o.d"
  "/root/repo/src/opt/ConstProp.cpp" "src/opt/CMakeFiles/qcm_opt.dir/ConstProp.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/ConstProp.cpp.o.d"
  "/root/repo/src/opt/DeadCodeElim.cpp" "src/opt/CMakeFiles/qcm_opt.dir/DeadCodeElim.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/DeadCodeElim.cpp.o.d"
  "/root/repo/src/opt/Lowering.cpp" "src/opt/CMakeFiles/qcm_opt.dir/Lowering.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/Lowering.cpp.o.d"
  "/root/repo/src/opt/OwnershipOpt.cpp" "src/opt/CMakeFiles/qcm_opt.dir/OwnershipOpt.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/OwnershipOpt.cpp.o.d"
  "/root/repo/src/opt/Pass.cpp" "src/opt/CMakeFiles/qcm_opt.dir/Pass.cpp.o" "gcc" "src/opt/CMakeFiles/qcm_opt.dir/Pass.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/qcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
