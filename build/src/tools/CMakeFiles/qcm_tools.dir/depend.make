# Empty dependencies file for qcm_tools.
# This may be replaced when dependencies are built.
