file(REMOVE_RECURSE
  "CMakeFiles/qcm_tools.dir/ToolSupport.cpp.o"
  "CMakeFiles/qcm_tools.dir/ToolSupport.cpp.o.d"
  "libqcm_tools.a"
  "libqcm_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
