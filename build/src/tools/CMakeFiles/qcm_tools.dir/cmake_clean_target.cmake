file(REMOVE_RECURSE
  "libqcm_tools.a"
)
