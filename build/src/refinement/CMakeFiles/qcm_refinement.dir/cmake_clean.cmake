file(REMOVE_RECURSE
  "CMakeFiles/qcm_refinement.dir/BehaviorSet.cpp.o"
  "CMakeFiles/qcm_refinement.dir/BehaviorSet.cpp.o.d"
  "CMakeFiles/qcm_refinement.dir/Contexts.cpp.o"
  "CMakeFiles/qcm_refinement.dir/Contexts.cpp.o.d"
  "CMakeFiles/qcm_refinement.dir/Invariant.cpp.o"
  "CMakeFiles/qcm_refinement.dir/Invariant.cpp.o.d"
  "CMakeFiles/qcm_refinement.dir/RefinementChecker.cpp.o"
  "CMakeFiles/qcm_refinement.dir/RefinementChecker.cpp.o.d"
  "CMakeFiles/qcm_refinement.dir/Simulation.cpp.o"
  "CMakeFiles/qcm_refinement.dir/Simulation.cpp.o.d"
  "libqcm_refinement.a"
  "libqcm_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
