
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refinement/BehaviorSet.cpp" "src/refinement/CMakeFiles/qcm_refinement.dir/BehaviorSet.cpp.o" "gcc" "src/refinement/CMakeFiles/qcm_refinement.dir/BehaviorSet.cpp.o.d"
  "/root/repo/src/refinement/Contexts.cpp" "src/refinement/CMakeFiles/qcm_refinement.dir/Contexts.cpp.o" "gcc" "src/refinement/CMakeFiles/qcm_refinement.dir/Contexts.cpp.o.d"
  "/root/repo/src/refinement/Invariant.cpp" "src/refinement/CMakeFiles/qcm_refinement.dir/Invariant.cpp.o" "gcc" "src/refinement/CMakeFiles/qcm_refinement.dir/Invariant.cpp.o.d"
  "/root/repo/src/refinement/RefinementChecker.cpp" "src/refinement/CMakeFiles/qcm_refinement.dir/RefinementChecker.cpp.o" "gcc" "src/refinement/CMakeFiles/qcm_refinement.dir/RefinementChecker.cpp.o.d"
  "/root/repo/src/refinement/Simulation.cpp" "src/refinement/CMakeFiles/qcm_refinement.dir/Simulation.cpp.o" "gcc" "src/refinement/CMakeFiles/qcm_refinement.dir/Simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semantics/CMakeFiles/qcm_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/qcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/qcm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
