# Empty dependencies file for qcm_refinement.
# This may be replaced when dependencies are built.
