file(REMOVE_RECURSE
  "libqcm_refinement.a"
)
