file(REMOVE_RECURSE
  "CMakeFiles/qcm_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/qcm_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/qcm_support.dir/Ints.cpp.o"
  "CMakeFiles/qcm_support.dir/Ints.cpp.o.d"
  "libqcm_support.a"
  "libqcm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
