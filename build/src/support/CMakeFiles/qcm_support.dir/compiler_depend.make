# Empty compiler generated dependencies file for qcm_support.
# This may be replaced when dependencies are built.
