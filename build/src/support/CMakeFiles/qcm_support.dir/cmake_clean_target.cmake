file(REMOVE_RECURSE
  "libqcm_support.a"
)
