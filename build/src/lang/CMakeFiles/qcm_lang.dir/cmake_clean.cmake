file(REMOVE_RECURSE
  "CMakeFiles/qcm_lang.dir/Ast.cpp.o"
  "CMakeFiles/qcm_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/qcm_lang.dir/Lexer.cpp.o"
  "CMakeFiles/qcm_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/qcm_lang.dir/Parser.cpp.o"
  "CMakeFiles/qcm_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/qcm_lang.dir/PrettyPrint.cpp.o"
  "CMakeFiles/qcm_lang.dir/PrettyPrint.cpp.o.d"
  "CMakeFiles/qcm_lang.dir/TypeCheck.cpp.o"
  "CMakeFiles/qcm_lang.dir/TypeCheck.cpp.o.d"
  "libqcm_lang.a"
  "libqcm_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
