# Empty dependencies file for qcm_lang.
# This may be replaced when dependencies are built.
