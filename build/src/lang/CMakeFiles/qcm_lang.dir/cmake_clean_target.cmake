file(REMOVE_RECURSE
  "libqcm_lang.a"
)
