
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/Ast.cpp" "src/lang/CMakeFiles/qcm_lang.dir/Ast.cpp.o" "gcc" "src/lang/CMakeFiles/qcm_lang.dir/Ast.cpp.o.d"
  "/root/repo/src/lang/Lexer.cpp" "src/lang/CMakeFiles/qcm_lang.dir/Lexer.cpp.o" "gcc" "src/lang/CMakeFiles/qcm_lang.dir/Lexer.cpp.o.d"
  "/root/repo/src/lang/Parser.cpp" "src/lang/CMakeFiles/qcm_lang.dir/Parser.cpp.o" "gcc" "src/lang/CMakeFiles/qcm_lang.dir/Parser.cpp.o.d"
  "/root/repo/src/lang/PrettyPrint.cpp" "src/lang/CMakeFiles/qcm_lang.dir/PrettyPrint.cpp.o" "gcc" "src/lang/CMakeFiles/qcm_lang.dir/PrettyPrint.cpp.o.d"
  "/root/repo/src/lang/TypeCheck.cpp" "src/lang/CMakeFiles/qcm_lang.dir/TypeCheck.cpp.o" "gcc" "src/lang/CMakeFiles/qcm_lang.dir/TypeCheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/qcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
