file(REMOVE_RECURSE
  "CMakeFiles/qcm_semantics.dir/Behavior.cpp.o"
  "CMakeFiles/qcm_semantics.dir/Behavior.cpp.o.d"
  "CMakeFiles/qcm_semantics.dir/Interp.cpp.o"
  "CMakeFiles/qcm_semantics.dir/Interp.cpp.o.d"
  "CMakeFiles/qcm_semantics.dir/Runner.cpp.o"
  "CMakeFiles/qcm_semantics.dir/Runner.cpp.o.d"
  "libqcm_semantics.a"
  "libqcm_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
