file(REMOVE_RECURSE
  "libqcm_semantics.a"
)
