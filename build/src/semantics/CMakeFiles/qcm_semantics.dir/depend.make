# Empty dependencies file for qcm_semantics.
# This may be replaced when dependencies are built.
