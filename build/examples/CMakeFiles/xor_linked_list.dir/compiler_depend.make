# Empty compiler generated dependencies file for xor_linked_list.
# This may be replaced when dependencies are built.
