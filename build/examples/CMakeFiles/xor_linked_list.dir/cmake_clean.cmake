file(REMOVE_RECURSE
  "CMakeFiles/xor_linked_list.dir/xor_linked_list.cpp.o"
  "CMakeFiles/xor_linked_list.dir/xor_linked_list.cpp.o.d"
  "xor_linked_list"
  "xor_linked_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xor_linked_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
