file(REMOVE_RECURSE
  "CMakeFiles/model_comparison.dir/model_comparison.cpp.o"
  "CMakeFiles/model_comparison.dir/model_comparison.cpp.o.d"
  "model_comparison"
  "model_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
