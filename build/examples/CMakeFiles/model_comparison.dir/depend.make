# Empty dependencies file for model_comparison.
# This may be replaced when dependencies are built.
