file(REMOVE_RECURSE
  "CMakeFiles/compressed_oops.dir/compressed_oops.cpp.o"
  "CMakeFiles/compressed_oops.dir/compressed_oops.cpp.o.d"
  "compressed_oops"
  "compressed_oops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_oops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
