# Empty compiler generated dependencies file for compressed_oops.
# This may be replaced when dependencies are built.
