# Empty compiler generated dependencies file for pointer_keyed_hash.
# This may be replaced when dependencies are built.
