
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pointer_keyed_hash.cpp" "examples/CMakeFiles/pointer_keyed_hash.dir/pointer_keyed_hash.cpp.o" "gcc" "examples/CMakeFiles/pointer_keyed_hash.dir/pointer_keyed_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/refinement/CMakeFiles/qcm_refinement.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qcm_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/qcm_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/qcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/qcm_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/qcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
