file(REMOVE_RECURSE
  "CMakeFiles/pointer_keyed_hash.dir/pointer_keyed_hash.cpp.o"
  "CMakeFiles/pointer_keyed_hash.dir/pointer_keyed_hash.cpp.o.d"
  "pointer_keyed_hash"
  "pointer_keyed_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_keyed_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
