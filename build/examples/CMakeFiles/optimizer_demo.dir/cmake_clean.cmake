file(REMOVE_RECURSE
  "CMakeFiles/optimizer_demo.dir/optimizer_demo.cpp.o"
  "CMakeFiles/optimizer_demo.dir/optimizer_demo.cpp.o.d"
  "optimizer_demo"
  "optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
