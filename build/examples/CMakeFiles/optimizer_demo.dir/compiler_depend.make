# Empty compiler generated dependencies file for optimizer_demo.
# This may be replaced when dependencies are built.
