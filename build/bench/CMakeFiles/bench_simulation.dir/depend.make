# Empty dependencies file for bench_simulation.
# This may be replaced when dependencies are built.
