file(REMOVE_RECURSE
  "CMakeFiles/bench_simulation.dir/bench_simulation.cpp.o"
  "CMakeFiles/bench_simulation.dir/bench_simulation.cpp.o.d"
  "bench_simulation"
  "bench_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
