# Empty compiler generated dependencies file for bench_compilers.
# This may be replaced when dependencies are built.
