file(REMOVE_RECURSE
  "CMakeFiles/bench_compilers.dir/bench_compilers.cpp.o"
  "CMakeFiles/bench_compilers.dir/bench_compilers.cpp.o.d"
  "bench_compilers"
  "bench_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
