# Empty dependencies file for bench_behaviors.
# This may be replaced when dependencies are built.
