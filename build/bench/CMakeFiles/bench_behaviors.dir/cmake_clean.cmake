file(REMOVE_RECURSE
  "CMakeFiles/bench_behaviors.dir/bench_behaviors.cpp.o"
  "CMakeFiles/bench_behaviors.dir/bench_behaviors.cpp.o.d"
  "bench_behaviors"
  "bench_behaviors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
