# Empty dependencies file for bench_casts.
# This may be replaced when dependencies are built.
