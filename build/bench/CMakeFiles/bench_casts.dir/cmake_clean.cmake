file(REMOVE_RECURSE
  "CMakeFiles/bench_casts.dir/bench_casts.cpp.o"
  "CMakeFiles/bench_casts.dir/bench_casts.cpp.o.d"
  "bench_casts"
  "bench_casts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_casts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
