file(REMOVE_RECURSE
  "CMakeFiles/bench_experiments.dir/bench_experiments.cpp.o"
  "CMakeFiles/bench_experiments.dir/bench_experiments.cpp.o.d"
  "bench_experiments"
  "bench_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
