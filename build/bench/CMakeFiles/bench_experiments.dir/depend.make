# Empty dependencies file for bench_experiments.
# This may be replaced when dependencies are built.
