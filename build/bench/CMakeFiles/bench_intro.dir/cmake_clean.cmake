file(REMOVE_RECURSE
  "CMakeFiles/bench_intro.dir/bench_intro.cpp.o"
  "CMakeFiles/bench_intro.dir/bench_intro.cpp.o.d"
  "bench_intro"
  "bench_intro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
