# Empty compiler generated dependencies file for bench_intro.
# This may be replaced when dependencies are built.
