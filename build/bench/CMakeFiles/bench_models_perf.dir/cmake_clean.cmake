file(REMOVE_RECURSE
  "CMakeFiles/bench_models_perf.dir/bench_models_perf.cpp.o"
  "CMakeFiles/bench_models_perf.dir/bench_models_perf.cpp.o.d"
  "bench_models_perf"
  "bench_models_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_models_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
