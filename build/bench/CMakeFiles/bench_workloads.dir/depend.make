# Empty dependencies file for bench_workloads.
# This may be replaced when dependencies are built.
