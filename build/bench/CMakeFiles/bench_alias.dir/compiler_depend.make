# Empty compiler generated dependencies file for bench_alias.
# This may be replaced when dependencies are built.
