file(REMOVE_RECURSE
  "CMakeFiles/bench_alias.dir/bench_alias.cpp.o"
  "CMakeFiles/bench_alias.dir/bench_alias.cpp.o.d"
  "bench_alias"
  "bench_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
