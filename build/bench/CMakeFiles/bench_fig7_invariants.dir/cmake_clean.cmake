file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_invariants.dir/bench_fig7_invariants.cpp.o"
  "CMakeFiles/bench_fig7_invariants.dir/bench_fig7_invariants.cpp.o.d"
  "bench_fig7_invariants"
  "bench_fig7_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
