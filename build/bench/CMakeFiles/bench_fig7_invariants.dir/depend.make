# Empty dependencies file for bench_fig7_invariants.
# This may be replaced when dependencies are built.
