file(REMOVE_RECURSE
  "CMakeFiles/bench_passes.dir/bench_passes.cpp.o"
  "CMakeFiles/bench_passes.dir/bench_passes.cpp.o.d"
  "bench_passes"
  "bench_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
