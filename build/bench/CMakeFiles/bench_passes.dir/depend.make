# Empty dependencies file for bench_passes.
# This may be replaced when dependencies are built.
