file(REMOVE_RECURSE
  "CMakeFiles/bench_exploration.dir/bench_exploration.cpp.o"
  "CMakeFiles/bench_exploration.dir/bench_exploration.cpp.o.d"
  "bench_exploration"
  "bench_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
