# Empty dependencies file for bench_drawbacks.
# This may be replaced when dependencies are built.
