file(REMOVE_RECURSE
  "CMakeFiles/bench_drawbacks.dir/bench_drawbacks.cpp.o"
  "CMakeFiles/bench_drawbacks.dir/bench_drawbacks.cpp.o.d"
  "bench_drawbacks"
  "bench_drawbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drawbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
