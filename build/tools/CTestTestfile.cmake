# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_run_cast_quasi "/root/repo/build/tools/qcm-run" "--model=quasi" "/root/repo/examples/programs/cast_roundtrip.qcm")
set_tests_properties(tool_run_cast_quasi PROPERTIES  PASS_REGULAR_EXPRESSION "out\\(42\\), term" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_cast_logical "/root/repo/build/tools/qcm-run" "--model=logical" "/root/repo/examples/programs/cast_roundtrip.qcm")
set_tests_properties(tool_run_cast_logical PROPERTIES  PASS_REGULAR_EXPRESSION "undef" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_echo_tape "/root/repo/build/tools/qcm-run" "--input=3,1,4,0" "/root/repo/examples/programs/echo.qcm")
set_tests_properties(tool_run_echo_tape PROPERTIES  PASS_REGULAR_EXPRESSION "in\\(3\\).out\\(9\\).in\\(1\\).out\\(1\\).in\\(4\\).out\\(16\\).in\\(0\\), term" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_run_trace "/root/repo/build/tools/qcm-run" "--trace" "/root/repo/examples/programs/cast_roundtrip.qcm")
set_tests_properties(tool_run_trace PROPERTIES  PASS_REGULAR_EXPRESSION "\\[trace\\]" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_opt_running_example "/root/repo/build/tools/qcm-opt" "--dae" "/root/repo/examples/programs/running_example.qcm")
set_tests_properties(tool_opt_running_example PROPERTIES  PASS_REGULAR_EXPRESSION "\\*p = 123;" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_opt_lowering_removes_dead_cast "/root/repo/build/tools/qcm-opt" "--passes=dce" "--lower" "/root/repo/examples/programs/running_example.qcm")
set_tests_properties(tool_opt_lowering_removes_dead_cast PROPERTIES  PASS_REGULAR_EXPRESSION "foo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_check_identity_refines "/root/repo/build/tools/qcm-check" "/root/repo/examples/programs/running_example.qcm" "/root/repo/examples/programs/running_example.qcm")
set_tests_properties(tool_check_identity_refines PROPERTIES  PASS_REGULAR_EXPRESSION "^REFINES" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;51;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_check_with_context_file "/root/repo/build/tools/qcm-check" "--context=/root/repo/examples/programs/guesser_context.qcm" "/root/repo/examples/programs/running_example.qcm" "/root/repo/examples/programs/running_example.qcm")
set_tests_properties(tool_check_with_context_file PROPERTIES  PASS_REGULAR_EXPRESSION "REFINES" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;58;add_test;/root/repo/tools/CMakeLists.txt;0;")
