# Empty dependencies file for qcm-check.
# This may be replaced when dependencies are built.
