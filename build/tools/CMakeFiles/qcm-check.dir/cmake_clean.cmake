file(REMOVE_RECURSE
  "CMakeFiles/qcm-check.dir/qcm-check.cpp.o"
  "CMakeFiles/qcm-check.dir/qcm-check.cpp.o.d"
  "qcm-check"
  "qcm-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
