# Empty compiler generated dependencies file for qcm-run.
# This may be replaced when dependencies are built.
