file(REMOVE_RECURSE
  "CMakeFiles/qcm-run.dir/qcm-run.cpp.o"
  "CMakeFiles/qcm-run.dir/qcm-run.cpp.o.d"
  "qcm-run"
  "qcm-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
