# Empty compiler generated dependencies file for qcm-opt.
# This may be replaced when dependencies are built.
