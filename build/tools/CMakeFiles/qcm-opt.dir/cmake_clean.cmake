file(REMOVE_RECURSE
  "CMakeFiles/qcm-opt.dir/qcm-opt.cpp.o"
  "CMakeFiles/qcm-opt.dir/qcm-opt.cpp.o.d"
  "qcm-opt"
  "qcm-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcm-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
