//===- lang/PrettyPrint.cpp -----------------------------------------------===//

#include "lang/PrettyPrint.h"

using namespace qcm;

namespace {

/// Operator precedence for minimal parenthesization; higher binds tighter.
unsigned precedence(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
    return 1;
  case BinaryOp::And:
    return 2;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 3;
  case BinaryOp::Mul:
    return 4;
  }
  return 0;
}

std::string printExpPrec(const Exp &E, unsigned Ambient) {
  switch (E.ExpKind) {
  case Exp::Kind::IntLit:
    return wordToString(E.IntValue);
  case Exp::Kind::Var:
  case Exp::Kind::Global:
    return E.Name;
  case Exp::Kind::Binary: {
    unsigned Prec = precedence(E.Op);
    // Left-associative: the right child needs parens at equal precedence.
    std::string Text = printExpPrec(*E.Lhs, Prec) + " " +
                       binaryOpSpelling(E.Op) + " " +
                       printExpPrec(*E.Rhs, Prec + 1);
    if (Prec < Ambient)
      return "(" + Text + ")";
    return Text;
  }
  }
  return "<?>";
}

std::string indentString(unsigned Indent) {
  return std::string(Indent * 2, ' ');
}

} // namespace

std::string qcm::printExp(const Exp &E) { return printExpPrec(E, 0); }

std::string qcm::printRExp(const RExp &R) {
  switch (R.RExpKind) {
  case RExp::Kind::Pure:
    return printExp(*R.Arg);
  case RExp::Kind::Malloc:
    return "malloc(" + printExp(*R.Arg) + ")";
  case RExp::Kind::Free:
    return "free(" + printExp(*R.Arg) + ")";
  case RExp::Kind::Cast:
    return "(" + typeName(R.CastTo) + ") " + printExp(*R.Arg);
  case RExp::Kind::Input:
    return "input()";
  case RExp::Kind::Output:
    return "output(" + printExp(*R.Arg) + ")";
  }
  return "<?>";
}

std::string qcm::printInstr(const Instr &I, unsigned Indent) {
  std::string Pad = indentString(Indent);
  switch (I.InstrKind) {
  case Instr::Kind::Call: {
    std::string Text = Pad + I.Callee + "(";
    for (size_t Idx = 0; Idx < I.Args.size(); ++Idx) {
      if (Idx)
        Text += ", ";
      Text += printExp(*I.Args[Idx]);
    }
    return Text + ");\n";
  }
  case Instr::Kind::Assign:
    if (I.Var.empty())
      return Pad + printRExp(*I.Rhs) + ";\n";
    return Pad + I.Var + " = " + printRExp(*I.Rhs) + ";\n";
  case Instr::Kind::Load:
    return Pad + I.Var + " = *" + printExpPrec(*I.Addr, 5) + ";\n";
  case Instr::Kind::Store:
    return Pad + "*" + printExpPrec(*I.Addr, 5) + " = " +
           printExp(*I.StoreVal) + ";\n";
  case Instr::Kind::If: {
    std::string Text =
        Pad + "if (" + printExp(*I.Cond) + ") {\n";
    Text += printInstr(*I.Then, Indent + 1);
    Text += Pad + "}";
    if (I.Else) {
      Text += " else {\n";
      Text += printInstr(*I.Else, Indent + 1);
      Text += Pad + "}";
    }
    return Text + "\n";
  }
  case Instr::Kind::While: {
    std::string Text = Pad + "while (" + printExp(*I.Cond) + ") {\n";
    Text += printInstr(*I.Body, Indent + 1);
    return Text + Pad + "}\n";
  }
  case Instr::Kind::Seq: {
    // A Seq prints its children at the current level; the enclosing
    // construct provides the braces.
    std::string Text;
    for (const auto &S : I.Stmts)
      Text += printInstr(*S, Indent);
    return Text;
  }
  }
  return Pad + "<?>\n";
}

std::string qcm::printFunction(const FunctionDecl &F) {
  std::string Text = F.isExtern() ? "extern " : "";
  Text += F.Name + "(";
  for (size_t Idx = 0; Idx < F.Params.size(); ++Idx) {
    if (Idx)
      Text += ", ";
    Text += typeName(F.Params[Idx].Ty) + " " + F.Params[Idx].Name;
  }
  Text += ")";
  if (F.isExtern())
    return Text + ";\n";
  Text += " {\n";
  if (!F.Locals.empty()) {
    Text += "  var ";
    for (size_t Idx = 0; Idx < F.Locals.size(); ++Idx) {
      if (Idx)
        Text += ", ";
      Text += typeName(F.Locals[Idx].Ty) + " " + F.Locals[Idx].Name;
    }
    Text += ";\n";
  }
  Text += printInstr(*F.Body, 1);
  return Text + "}\n";
}

std::string qcm::printProgram(const Program &P) {
  std::string Text;
  for (const GlobalDecl &G : P.Globals) {
    Text += "global " + G.Name;
    if (G.SizeWords != 1)
      Text += "[" + wordToString(G.SizeWords) + "]";
    Text += ";\n";
  }
  if (!P.Globals.empty())
    Text += "\n";
  for (const FunctionDecl &F : P.Functions) {
    Text += printFunction(F);
    Text += "\n";
  }
  return Text;
}
