//===- lang/TypeCheck.h - Static int/ptr type discipline --------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static type checker of Section 3.5: "As in the LLVM IR, we use types
/// to ensure that integer variables contain only integer values." Together
/// with the dynamic checks at loads (Section 6.1) this is what validates the
/// full range of integer arithmetic optimizations (Figures 1 and 4).
///
/// Binary operation typing follows Section 4:
///
///   int (+,-,*,&,==) int -> int        ptr + int -> ptr    int + ptr -> ptr
///   ptr - int -> ptr                   ptr - ptr -> int    ptr == ptr -> int
///
/// everything else is a (static) type error.
///
/// The checker also resolves identifiers: names that are neither parameters
/// nor locals but match a global declaration are rewritten from Exp::Var to
/// Exp::Global nodes.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_LANG_TYPECHECK_H
#define QCM_LANG_TYPECHECK_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>

namespace qcm {

/// Type checks \p P in place: annotates every expression with its static
/// type and resolves global references. Returns true on success; reports
/// problems to \p Diags otherwise.
bool typeCheck(Program &P, DiagnosticEngine &Diags);

/// Returns the result type of \p Op applied to operands of types \p L and
/// \p R, or nullopt when the combination is ill-typed (Section 4).
std::optional<Type> binaryResultType(BinaryOp Op, Type L, Type R);

} // namespace qcm

#endif // QCM_LANG_TYPECHECK_H
