//===- lang/Ast.cpp -------------------------------------------------------===//

#include "lang/Ast.h"

#include <cassert>

using namespace qcm;

std::string qcm::typeName(Type Ty) {
  return Ty == Type::Int ? "int" : "ptr";
}

std::string qcm::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::And:
    return "&";
  case BinaryOp::Eq:
    return "==";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Exp
//===----------------------------------------------------------------------===//

std::unique_ptr<Exp> Exp::makeIntLit(Word V, SourceLoc Loc) {
  auto E = std::make_unique<Exp>();
  E->ExpKind = Kind::IntLit;
  E->Loc = Loc;
  E->IntValue = V;
  return E;
}

std::unique_ptr<Exp> Exp::makeVar(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Exp>();
  E->ExpKind = Kind::Var;
  E->Loc = Loc;
  E->Name = std::move(Name);
  return E;
}

std::unique_ptr<Exp> Exp::makeGlobal(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Exp>();
  E->ExpKind = Kind::Global;
  E->Loc = Loc;
  E->Name = std::move(Name);
  E->StaticType = Type::Ptr;
  return E;
}

std::unique_ptr<Exp> Exp::makeBinary(BinaryOp Op, std::unique_ptr<Exp> Lhs,
                                     std::unique_ptr<Exp> Rhs,
                                     SourceLoc Loc) {
  assert(Lhs && Rhs && "binary expression with null operand");
  auto E = std::make_unique<Exp>();
  E->ExpKind = Kind::Binary;
  E->Loc = Loc;
  E->Op = Op;
  E->Lhs = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

std::unique_ptr<Exp> Exp::clone() const {
  auto E = std::make_unique<Exp>();
  E->ExpKind = ExpKind;
  E->Loc = Loc;
  E->IntValue = IntValue;
  E->Name = Name;
  E->Op = Op;
  E->StaticType = StaticType;
  if (Lhs)
    E->Lhs = Lhs->clone();
  if (Rhs)
    E->Rhs = Rhs->clone();
  return E;
}

bool Exp::structurallyEqual(const Exp &A, const Exp &B) {
  if (A.ExpKind != B.ExpKind)
    return false;
  switch (A.ExpKind) {
  case Kind::IntLit:
    return A.IntValue == B.IntValue;
  case Kind::Var:
  case Kind::Global:
    return A.Name == B.Name;
  case Kind::Binary:
    return A.Op == B.Op && structurallyEqual(*A.Lhs, *B.Lhs) &&
           structurallyEqual(*A.Rhs, *B.Rhs);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// RExp
//===----------------------------------------------------------------------===//

std::unique_ptr<RExp> RExp::makePure(std::unique_ptr<Exp> E) {
  assert(E && "pure right-hand side with null expression");
  auto R = std::make_unique<RExp>();
  R->RExpKind = Kind::Pure;
  R->Loc = E->Loc;
  R->Arg = std::move(E);
  return R;
}

std::unique_ptr<RExp> RExp::makeMalloc(std::unique_ptr<Exp> Size,
                                       SourceLoc Loc) {
  auto R = std::make_unique<RExp>();
  R->RExpKind = Kind::Malloc;
  R->Loc = Loc;
  R->Arg = std::move(Size);
  return R;
}

std::unique_ptr<RExp> RExp::makeFree(std::unique_ptr<Exp> Pointer,
                                     SourceLoc Loc) {
  auto R = std::make_unique<RExp>();
  R->RExpKind = Kind::Free;
  R->Loc = Loc;
  R->Arg = std::move(Pointer);
  return R;
}

std::unique_ptr<RExp> RExp::makeCast(Type To, std::unique_ptr<Exp> E,
                                     SourceLoc Loc) {
  auto R = std::make_unique<RExp>();
  R->RExpKind = Kind::Cast;
  R->Loc = Loc;
  R->CastTo = To;
  R->Arg = std::move(E);
  return R;
}

std::unique_ptr<RExp> RExp::makeInput(SourceLoc Loc) {
  auto R = std::make_unique<RExp>();
  R->RExpKind = Kind::Input;
  R->Loc = Loc;
  return R;
}

std::unique_ptr<RExp> RExp::makeOutput(std::unique_ptr<Exp> E,
                                       SourceLoc Loc) {
  auto R = std::make_unique<RExp>();
  R->RExpKind = Kind::Output;
  R->Loc = Loc;
  R->Arg = std::move(E);
  return R;
}

std::unique_ptr<RExp> RExp::clone() const {
  auto R = std::make_unique<RExp>();
  R->RExpKind = RExpKind;
  R->Loc = Loc;
  R->CastTo = CastTo;
  if (Arg)
    R->Arg = Arg->clone();
  return R;
}

//===----------------------------------------------------------------------===//
// Instr
//===----------------------------------------------------------------------===//

std::unique_ptr<Instr>
Instr::makeCall(std::string Callee, std::vector<std::unique_ptr<Exp>> Args,
                SourceLoc Loc) {
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::Call;
  I->Loc = Loc;
  I->Callee = std::move(Callee);
  I->Args = std::move(Args);
  return I;
}

std::unique_ptr<Instr> Instr::makeAssign(std::string Var,
                                         std::unique_ptr<RExp> Rhs,
                                         SourceLoc Loc) {
  assert(Rhs && "assignment with null right-hand side");
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::Assign;
  I->Loc = Loc;
  I->Var = std::move(Var);
  I->Rhs = std::move(Rhs);
  return I;
}

std::unique_ptr<Instr> Instr::makeEffect(std::unique_ptr<RExp> Rhs,
                                         SourceLoc Loc) {
  return makeAssign("", std::move(Rhs), Loc);
}

std::unique_ptr<Instr> Instr::makeLoad(std::string Var,
                                       std::unique_ptr<Exp> Addr,
                                       SourceLoc Loc) {
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::Load;
  I->Loc = Loc;
  I->Var = std::move(Var);
  I->Addr = std::move(Addr);
  return I;
}

std::unique_ptr<Instr> Instr::makeStore(std::unique_ptr<Exp> Addr,
                                        std::unique_ptr<Exp> Val,
                                        SourceLoc Loc) {
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::Store;
  I->Loc = Loc;
  I->Addr = std::move(Addr);
  I->StoreVal = std::move(Val);
  return I;
}

std::unique_ptr<Instr> Instr::makeIf(std::unique_ptr<Exp> Cond,
                                     std::unique_ptr<Instr> Then,
                                     std::unique_ptr<Instr> Else,
                                     SourceLoc Loc) {
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::If;
  I->Loc = Loc;
  I->Cond = std::move(Cond);
  I->Then = std::move(Then);
  I->Else = std::move(Else);
  return I;
}

std::unique_ptr<Instr> Instr::makeWhile(std::unique_ptr<Exp> Cond,
                                        std::unique_ptr<Instr> Body,
                                        SourceLoc Loc) {
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::While;
  I->Loc = Loc;
  I->Cond = std::move(Cond);
  I->Body = std::move(Body);
  return I;
}

std::unique_ptr<Instr>
Instr::makeSeq(std::vector<std::unique_ptr<Instr>> Stmts, SourceLoc Loc) {
  auto I = std::make_unique<Instr>();
  I->InstrKind = Kind::Seq;
  I->Loc = Loc;
  I->Stmts = std::move(Stmts);
  return I;
}

std::unique_ptr<Instr> Instr::clone() const {
  auto I = std::make_unique<Instr>();
  I->InstrKind = InstrKind;
  I->Loc = Loc;
  I->Callee = Callee;
  I->Var = Var;
  for (const auto &A : Args)
    I->Args.push_back(A->clone());
  if (Rhs)
    I->Rhs = Rhs->clone();
  if (Addr)
    I->Addr = Addr->clone();
  if (StoreVal)
    I->StoreVal = StoreVal->clone();
  if (Cond)
    I->Cond = Cond->clone();
  if (Then)
    I->Then = Then->clone();
  if (Else)
    I->Else = Else->clone();
  if (Body)
    I->Body = Body->clone();
  for (const auto &S : Stmts)
    I->Stmts.push_back(S->clone());
  return I;
}

//===----------------------------------------------------------------------===//
// FunctionDecl / Program
//===----------------------------------------------------------------------===//

FunctionDecl FunctionDecl::clone() const {
  FunctionDecl F;
  F.Name = Name;
  F.Params = Params;
  F.Locals = Locals;
  if (Body)
    F.Body = Body->clone();
  return F;
}

const VarDecl *FunctionDecl::findVariable(const std::string &VarName) const {
  for (const VarDecl &P : Params)
    if (P.Name == VarName)
      return &P;
  for (const VarDecl &L : Locals)
    if (L.Name == VarName)
      return &L;
  return nullptr;
}

const FunctionDecl *Program::findFunction(const std::string &Name) const {
  for (const FunctionDecl &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

FunctionDecl *Program::findFunction(const std::string &Name) {
  for (FunctionDecl &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const GlobalDecl *Program::findGlobal(const std::string &Name) const {
  for (const GlobalDecl &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

Program Program::clone() const {
  Program P;
  P.Globals = Globals;
  for (const FunctionDecl &F : Functions)
    P.Functions.push_back(F.clone());
  return P;
}
