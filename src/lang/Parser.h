//===- lang/Parser.h - Recursive-descent parser -----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the surface syntax of the Section 2 language:
///
///   global h;  global tab[16];
///   extern bar(ptr p);
///   foo(ptr p, int n) {
///     var ptr q, int a;
///     q = malloc(n);
///     a = (int) p;
///     *q = 123;
///     a = *q;
///     bar(p);
///     if (a == 0) { output(a); } else { while (a) { a = a - 1; } }
///     free(q);
///   }
///
//===----------------------------------------------------------------------===//

#ifndef QCM_LANG_PARSER_H
#define QCM_LANG_PARSER_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace qcm {

/// Parses \p Source into a Program. Returns nullopt (and fills \p Diags) on
/// syntax errors. The result is not yet type checked; run typeCheck() before
/// interpreting it.
std::optional<Program> parseProgram(const std::string &Source,
                                    DiagnosticEngine &Diags);

/// Parses a single expression; convenience entry point for tests.
std::unique_ptr<Exp> parseExpression(const std::string &Source,
                                     DiagnosticEngine &Diags);

} // namespace qcm

#endif // QCM_LANG_PARSER_H
