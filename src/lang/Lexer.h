//===- lang/Lexer.h - Tokenizer for the C-like language ---------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written tokenizer. Supports // line comments and /* */ block
/// comments.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_LANG_LEXER_H
#define QCM_LANG_LEXER_H

#include "support/Diagnostics.h"
#include "support/Ints.h"

#include <string>
#include <vector>

namespace qcm {

/// One token of the surface syntax.
struct Token {
  enum class Kind {
    Identifier,
    Number,
    // Keywords.
    KwGlobal,
    KwExtern,
    KwVar,
    KwInt,
    KwPtr,
    KwIf,
    KwElse,
    KwWhile,
    KwMalloc,
    KwFree,
    KwInput,
    KwOutput,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Assign,  // =
    EqualEq, // ==
    Plus,
    Minus,
    Star,
    Amp,
    Eof,
  };

  Kind TokenKind = Kind::Eof;
  std::string Spelling;
  Word Number = 0;
  SourceLoc Loc;
};

std::string tokenKindName(Token::Kind Kind);

/// Tokenizes \p Source. Lexical errors are reported to \p Diags; the token
/// stream always ends with an Eof token.
std::vector<Token> tokenize(const std::string &Source,
                            DiagnosticEngine &Diags);

} // namespace qcm

#endif // QCM_LANG_LEXER_H
