//===- lang/PrettyPrint.h - AST to surface-syntax rendering -----*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders ASTs back to the surface syntax accepted by the parser, so that
/// programs survive a parse/print round trip; used for debugging and for
/// showing optimization results.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_LANG_PRETTYPRINT_H
#define QCM_LANG_PRETTYPRINT_H

#include "lang/Ast.h"

#include <string>

namespace qcm {

std::string printExp(const Exp &E);
std::string printRExp(const RExp &R);
std::string printInstr(const Instr &I, unsigned Indent = 0);
std::string printFunction(const FunctionDecl &F);
std::string printProgram(const Program &P);

} // namespace qcm

#endif // QCM_LANG_PRETTYPRINT_H
