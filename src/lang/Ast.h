//===- lang/Ast.h - AST of the paper's C-like language ----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the minimal C-like language of Section 2:
///
///   Typ   ::= int | ptr
///   Bop   ::= + | - | * | && | =
///   Exp   ::= Int | Var | Global | Exp Bop Exp
///   RExp  ::= Exp | malloc(Exp) | free(Exp) | (Typ) Exp
///           | input() | output(Exp)
///   Instr ::= Fid(Exp, ..., Exp); | Var = RExp | Var = *Exp
///           | *Exp = Exp | if (Exp) Instr else Instr | while (Exp) Instr
///   Decl  ::= Fid(Typ Var, ..., Typ Var) { var Typ Var, ...; Instr }
///
/// Functions return values via pointer-valued arguments (the paper omits
/// return instructions). Programs may also declare word-sized global blocks
/// and extern (unknown) functions; externs model the arbitrary contexts the
/// paper quantifies over.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_LANG_AST_H
#define QCM_LANG_AST_H

#include "support/Diagnostics.h"
#include "support/Ints.h"

#include <memory>
#include <string>
#include <vector>

namespace qcm {

/// The two static types of the language (Section 3.5): integer variables
/// contain only integers, pointer variables only logical addresses.
enum class Type { Int, Ptr };

std::string typeName(Type Ty);

/// Binary operators. The paper's "&&" is the bitwise-and used for pointer
/// bit-twiddling idioms (Figure 2), and "=" is the equality test; we spell
/// them "&" and "==" in concrete syntax.
enum class BinaryOp { Add, Sub, Mul, And, Eq };

std::string binaryOpSpelling(BinaryOp Op);

/// A pure expression.
struct Exp {
  enum class Kind {
    IntLit, ///< integer literal
    Var,    ///< local variable or parameter
    Global, ///< name of a global block; evaluates to a pointer to it
    Binary, ///< Lhs Op Rhs
  };

  Kind ExpKind;
  SourceLoc Loc;

  Word IntValue = 0;             // IntLit
  std::string Name;              // Var, Global
  BinaryOp Op = BinaryOp::Add;   // Binary
  std::unique_ptr<Exp> Lhs, Rhs; // Binary

  /// Filled in by the type checker.
  Type StaticType = Type::Int;

  static std::unique_ptr<Exp> makeIntLit(Word V, SourceLoc Loc = {});
  static std::unique_ptr<Exp> makeVar(std::string Name, SourceLoc Loc = {});
  static std::unique_ptr<Exp> makeGlobal(std::string Name,
                                         SourceLoc Loc = {});
  static std::unique_ptr<Exp> makeBinary(BinaryOp Op,
                                         std::unique_ptr<Exp> Lhs,
                                         std::unique_ptr<Exp> Rhs,
                                         SourceLoc Loc = {});

  std::unique_ptr<Exp> clone() const;

  /// Structural equality (ignores locations and inferred types).
  static bool structurallyEqual(const Exp &A, const Exp &B);
};

/// A right-hand side: either a pure expression or one of the effectful
/// operations.
struct RExp {
  enum class Kind {
    Pure,   ///< Exp
    Malloc, ///< malloc(Exp)
    Free,   ///< free(Exp)
    Cast,   ///< (Typ) Exp
    Input,  ///< input()
    Output, ///< output(Exp)
  };

  Kind RExpKind;
  SourceLoc Loc;

  std::unique_ptr<Exp> Arg; ///< operand of Pure/Malloc/Free/Cast/Output
  Type CastTo = Type::Int;  ///< Cast target type

  static std::unique_ptr<RExp> makePure(std::unique_ptr<Exp> E);
  static std::unique_ptr<RExp> makeMalloc(std::unique_ptr<Exp> Size,
                                          SourceLoc Loc = {});
  static std::unique_ptr<RExp> makeFree(std::unique_ptr<Exp> Pointer,
                                        SourceLoc Loc = {});
  static std::unique_ptr<RExp> makeCast(Type To, std::unique_ptr<Exp> E,
                                        SourceLoc Loc = {});
  static std::unique_ptr<RExp> makeInput(SourceLoc Loc = {});
  static std::unique_ptr<RExp> makeOutput(std::unique_ptr<Exp> E,
                                          SourceLoc Loc = {});

  std::unique_ptr<RExp> clone() const;
};

/// An instruction (statement).
struct Instr {
  enum class Kind {
    Call,   ///< Callee(Args...)
    Assign, ///< Var = RExp; Var may be empty for effect-only RExps
    Load,   ///< Var = *Addr
    Store,  ///< *Addr = StoreVal
    If,     ///< if (Cond) Then else Else
    While,  ///< while (Cond) Body
    Seq,    ///< { Stmts... }
  };

  Kind InstrKind;
  SourceLoc Loc;

  std::string Callee;                       // Call
  std::vector<std::unique_ptr<Exp>> Args;   // Call
  std::string Var;                          // Assign, Load
  std::unique_ptr<RExp> Rhs;                // Assign
  std::unique_ptr<Exp> Addr;                // Load, Store
  std::unique_ptr<Exp> StoreVal;            // Store
  std::unique_ptr<Exp> Cond;                // If, While
  std::unique_ptr<Instr> Then, Else;        // If (Else may be null)
  std::unique_ptr<Instr> Body;              // While
  std::vector<std::unique_ptr<Instr>> Stmts; // Seq

  static std::unique_ptr<Instr>
  makeCall(std::string Callee, std::vector<std::unique_ptr<Exp>> Args,
           SourceLoc Loc = {});
  static std::unique_ptr<Instr> makeAssign(std::string Var,
                                           std::unique_ptr<RExp> Rhs,
                                           SourceLoc Loc = {});
  /// Effect-only statement: free(e); or output(e); — an Assign with no
  /// destination.
  static std::unique_ptr<Instr> makeEffect(std::unique_ptr<RExp> Rhs,
                                           SourceLoc Loc = {});
  static std::unique_ptr<Instr> makeLoad(std::string Var,
                                         std::unique_ptr<Exp> Addr,
                                         SourceLoc Loc = {});
  static std::unique_ptr<Instr> makeStore(std::unique_ptr<Exp> Addr,
                                          std::unique_ptr<Exp> Val,
                                          SourceLoc Loc = {});
  static std::unique_ptr<Instr> makeIf(std::unique_ptr<Exp> Cond,
                                       std::unique_ptr<Instr> Then,
                                       std::unique_ptr<Instr> Else,
                                       SourceLoc Loc = {});
  static std::unique_ptr<Instr> makeWhile(std::unique_ptr<Exp> Cond,
                                          std::unique_ptr<Instr> Body,
                                          SourceLoc Loc = {});
  static std::unique_ptr<Instr>
  makeSeq(std::vector<std::unique_ptr<Instr>> Stmts, SourceLoc Loc = {});

  std::unique_ptr<Instr> clone() const;
};

/// A typed formal parameter or local variable.
struct VarDecl {
  Type Ty = Type::Int;
  std::string Name;

  friend bool operator==(const VarDecl &A, const VarDecl &B) {
    return A.Ty == B.Ty && A.Name == B.Name;
  }
};

/// A function declaration. A null Body marks an extern (unknown) function.
struct FunctionDecl {
  std::string Name;
  std::vector<VarDecl> Params;
  std::vector<VarDecl> Locals;
  std::unique_ptr<Instr> Body;

  bool isExtern() const { return Body == nullptr; }

  FunctionDecl clone() const;

  /// Looks up a parameter or local by name; returns nullptr if absent.
  const VarDecl *findVariable(const std::string &VarName) const;
};

/// A global block declaration: a named, word-sized region allocated before
/// the program starts. Globals evaluate to pointers to their block.
struct GlobalDecl {
  std::string Name;
  Word SizeWords = 1;
};

/// A whole program: globals plus functions.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;

  const FunctionDecl *findFunction(const std::string &Name) const;
  FunctionDecl *findFunction(const std::string &Name);
  const GlobalDecl *findGlobal(const std::string &Name) const;

  Program clone() const;
};

} // namespace qcm

#endif // QCM_LANG_AST_H
