//===- lang/Lexer.cpp -----------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <map>

using namespace qcm;

std::string qcm::tokenKindName(Token::Kind Kind) {
  switch (Kind) {
  case Token::Kind::Identifier:
    return "identifier";
  case Token::Kind::Number:
    return "number";
  case Token::Kind::KwGlobal:
    return "'global'";
  case Token::Kind::KwExtern:
    return "'extern'";
  case Token::Kind::KwVar:
    return "'var'";
  case Token::Kind::KwInt:
    return "'int'";
  case Token::Kind::KwPtr:
    return "'ptr'";
  case Token::Kind::KwIf:
    return "'if'";
  case Token::Kind::KwElse:
    return "'else'";
  case Token::Kind::KwWhile:
    return "'while'";
  case Token::Kind::KwMalloc:
    return "'malloc'";
  case Token::Kind::KwFree:
    return "'free'";
  case Token::Kind::KwInput:
    return "'input'";
  case Token::Kind::KwOutput:
    return "'output'";
  case Token::Kind::LParen:
    return "'('";
  case Token::Kind::RParen:
    return "')'";
  case Token::Kind::LBrace:
    return "'{'";
  case Token::Kind::RBrace:
    return "'}'";
  case Token::Kind::LBracket:
    return "'['";
  case Token::Kind::RBracket:
    return "']'";
  case Token::Kind::Comma:
    return "','";
  case Token::Kind::Semicolon:
    return "';'";
  case Token::Kind::Assign:
    return "'='";
  case Token::Kind::EqualEq:
    return "'=='";
  case Token::Kind::Plus:
    return "'+'";
  case Token::Kind::Minus:
    return "'-'";
  case Token::Kind::Star:
    return "'*'";
  case Token::Kind::Amp:
    return "'&'";
  case Token::Kind::Eof:
    return "end of input";
  }
  return "unknown token";
}

namespace {

const std::map<std::string, Token::Kind> &keywordTable() {
  static const std::map<std::string, Token::Kind> Table = {
      {"global", Token::Kind::KwGlobal}, {"extern", Token::Kind::KwExtern},
      {"var", Token::Kind::KwVar},       {"int", Token::Kind::KwInt},
      {"ptr", Token::Kind::KwPtr},       {"if", Token::Kind::KwIf},
      {"else", Token::Kind::KwElse},     {"while", Token::Kind::KwWhile},
      {"malloc", Token::Kind::KwMalloc}, {"free", Token::Kind::KwFree},
      {"input", Token::Kind::KwInput},   {"output", Token::Kind::KwOutput},
  };
  return Table;
}

class LexerState {
public:
  LexerState(const std::string &Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      skipWhitespaceAndComments();
      Token T = lexOne();
      Tokens.push_back(T);
      if (T.TokenKind == Token::Kind::Eof)
        break;
    }
    return Tokens;
  }

private:
  bool atEnd() const { return Pos >= Source.size(); }
  char peek() const { return atEnd() ? '\0' : Source[Pos]; }
  char peekAhead() const {
    return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  SourceLoc here() const { return SourceLoc{Line, Column}; }

  void skipWhitespaceAndComments() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peekAhead() == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peekAhead() == '*') {
        SourceLoc Start = here();
        advance();
        advance();
        bool Closed = false;
        while (!atEnd()) {
          if (peek() == '*' && peekAhead() == '/') {
            advance();
            advance();
            Closed = true;
            break;
          }
          advance();
        }
        if (!Closed)
          Diags.error(Start, "unterminated block comment");
        continue;
      }
      break;
    }
  }

  Token lexOne() {
    Token T;
    T.Loc = here();
    if (atEnd()) {
      T.TokenKind = Token::Kind::Eof;
      return T;
    }
    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifier();
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    advance();
    switch (C) {
    case '(':
      T.TokenKind = Token::Kind::LParen;
      return T;
    case ')':
      T.TokenKind = Token::Kind::RParen;
      return T;
    case '{':
      T.TokenKind = Token::Kind::LBrace;
      return T;
    case '}':
      T.TokenKind = Token::Kind::RBrace;
      return T;
    case '[':
      T.TokenKind = Token::Kind::LBracket;
      return T;
    case ']':
      T.TokenKind = Token::Kind::RBracket;
      return T;
    case ',':
      T.TokenKind = Token::Kind::Comma;
      return T;
    case ';':
      T.TokenKind = Token::Kind::Semicolon;
      return T;
    case '+':
      T.TokenKind = Token::Kind::Plus;
      return T;
    case '-':
      T.TokenKind = Token::Kind::Minus;
      return T;
    case '*':
      T.TokenKind = Token::Kind::Star;
      return T;
    case '&':
      // Accept both '&' and the paper's '&&' spelling for the same bitwise
      // operator.
      if (peek() == '&')
        advance();
      T.TokenKind = Token::Kind::Amp;
      return T;
    case '=':
      if (peek() == '=') {
        advance();
        T.TokenKind = Token::Kind::EqualEq;
      } else {
        T.TokenKind = Token::Kind::Assign;
      }
      return T;
    default:
      Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
      // Resynchronize by skipping the character and lexing again.
      return lexOne();
    }
  }

  Token lexIdentifier() {
    Token T;
    T.Loc = here();
    std::string Text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    auto It = keywordTable().find(Text);
    if (It != keywordTable().end()) {
      T.TokenKind = It->second;
    } else {
      T.TokenKind = Token::Kind::Identifier;
    }
    T.Spelling = std::move(Text);
    return T;
  }

  Token lexNumber() {
    Token T;
    T.Loc = here();
    T.TokenKind = Token::Kind::Number;
    uint64_t V = 0;
    bool Overflow = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      T.Spelling += C;
      V = V * 10 + static_cast<uint64_t>(C - '0');
      if (V > 0xffffffffull) {
        Overflow = true;
        V %= 1ull << 32;
      }
    }
    if (Overflow)
      Diags.error(T.Loc, "integer literal exceeds 32 bits; truncated");
    T.Number = static_cast<Word>(V);
    return T;
  }

  const std::string &Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace

std::vector<Token> qcm::tokenize(const std::string &Source,
                                 DiagnosticEngine &Diags) {
  return LexerState(Source, Diags).run();
}
