//===- lang/TypeCheck.cpp -------------------------------------------------===//

#include "lang/TypeCheck.h"

#include <set>

using namespace qcm;

std::optional<Type> qcm::binaryResultType(BinaryOp Op, Type L, Type R) {
  bool LInt = L == Type::Int, RInt = R == Type::Int;
  switch (Op) {
  case BinaryOp::Add:
    if (LInt && RInt)
      return Type::Int;
    if (!LInt && RInt) // p + a
      return Type::Ptr;
    if (LInt && !RInt) // a + p
      return Type::Ptr;
    return std::nullopt; // p + p is ill-typed
  case BinaryOp::Sub:
    if (LInt && RInt)
      return Type::Int;
    if (!LInt && RInt) // p - a
      return Type::Ptr;
    if (!LInt && !RInt) // p1 - p2
      return Type::Int;
    return std::nullopt; // a - p is ill-typed
  case BinaryOp::Mul:
  case BinaryOp::And:
    if (LInt && RInt)
      return Type::Int;
    return std::nullopt;
  case BinaryOp::Eq:
    if (LInt == RInt) // int == int, or ptr == ptr
      return Type::Int;
    return std::nullopt;
  }
  return std::nullopt;
}

namespace {

/// Per-program checking context.
class Checker {
public:
  Checker(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    bool Ok = checkTopLevelNames();
    for (FunctionDecl &F : P.Functions)
      Ok &= checkFunction(F);
    return Ok;
  }

private:
  bool checkTopLevelNames() {
    bool Ok = true;
    std::set<std::string> Names;
    for (const GlobalDecl &G : P.Globals) {
      if (!Names.insert(G.Name).second) {
        Diags.error({}, "duplicate global '" + G.Name + "'");
        Ok = false;
      }
      if (G.SizeWords == 0) {
        Diags.error({}, "global '" + G.Name + "' has zero size");
        Ok = false;
      }
    }
    for (const FunctionDecl &F : P.Functions)
      if (!Names.insert(F.Name).second) {
        Diags.error({}, "duplicate declaration of '" + F.Name + "'");
        Ok = false;
      }
    return Ok;
  }

  bool checkFunction(FunctionDecl &F) {
    Current = &F;
    bool Ok = true;
    std::set<std::string> Names;
    for (const VarDecl &V : F.Params)
      if (!Names.insert(V.Name).second) {
        Diags.error({}, "duplicate parameter '" + V.Name + "' in '" +
                            F.Name + "'");
        Ok = false;
      }
    for (const VarDecl &V : F.Locals)
      if (!Names.insert(V.Name).second) {
        Diags.error({}, "duplicate local '" + V.Name + "' in '" + F.Name +
                            "'");
        Ok = false;
      }
    if (F.Body)
      Ok &= checkInstr(*F.Body);
    Current = nullptr;
    return Ok;
  }

  /// Looks up the static type of a variable in the current function.
  std::optional<Type> lookupVar(const std::string &Name) const {
    if (const VarDecl *D = Current->findVariable(Name))
      return D->Ty;
    return std::nullopt;
  }

  /// Checks an expression and returns its type; rewrites unresolved names
  /// that match globals into Global nodes.
  std::optional<Type> checkExp(Exp &E) {
    switch (E.ExpKind) {
    case Exp::Kind::IntLit:
      E.StaticType = Type::Int;
      return Type::Int;
    case Exp::Kind::Var: {
      if (std::optional<Type> Ty = lookupVar(E.Name)) {
        E.StaticType = *Ty;
        return Ty;
      }
      if (P.findGlobal(E.Name)) {
        E.ExpKind = Exp::Kind::Global;
        E.StaticType = Type::Ptr;
        return Type::Ptr;
      }
      Diags.error(E.Loc, "use of undeclared name '" + E.Name + "'");
      return std::nullopt;
    }
    case Exp::Kind::Global: {
      if (!P.findGlobal(E.Name)) {
        Diags.error(E.Loc, "use of undeclared global '" + E.Name + "'");
        return std::nullopt;
      }
      E.StaticType = Type::Ptr;
      return Type::Ptr;
    }
    case Exp::Kind::Binary: {
      std::optional<Type> L = checkExp(*E.Lhs);
      std::optional<Type> R = checkExp(*E.Rhs);
      if (!L || !R)
        return std::nullopt;
      std::optional<Type> Result = binaryResultType(E.Op, *L, *R);
      if (!Result) {
        Diags.error(E.Loc, "operator '" + binaryOpSpelling(E.Op) +
                               "' cannot be applied to " + typeName(*L) +
                               " and " + typeName(*R));
        return std::nullopt;
      }
      E.StaticType = *Result;
      return Result;
    }
    }
    return std::nullopt;
  }

  /// Checks a right-hand side and returns the type of the produced value,
  /// or nullopt-with-valid for effect-only RExps (free/output), signaled by
  /// returning Type via the out parameter instead. To keep it simple we
  /// return optional<optional<Type>>: outer nullopt = error; inner nullopt =
  /// no value produced.
  std::optional<std::optional<Type>> checkRExp(RExp &R) {
    using Produced = std::optional<Type>;
    switch (R.RExpKind) {
    case RExp::Kind::Pure: {
      std::optional<Type> Ty = checkExp(*R.Arg);
      if (!Ty)
        return std::nullopt;
      return Produced(*Ty);
    }
    case RExp::Kind::Malloc: {
      std::optional<Type> Ty = checkExp(*R.Arg);
      if (!Ty)
        return std::nullopt;
      if (*Ty != Type::Int) {
        Diags.error(R.Loc, "malloc size must be an int");
        return std::nullopt;
      }
      return Produced(Type::Ptr);
    }
    case RExp::Kind::Free: {
      std::optional<Type> Ty = checkExp(*R.Arg);
      if (!Ty)
        return std::nullopt;
      if (*Ty != Type::Ptr) {
        Diags.error(R.Loc, "free argument must be a ptr");
        return std::nullopt;
      }
      return Produced(std::nullopt);
    }
    case RExp::Kind::Cast: {
      std::optional<Type> Ty = checkExp(*R.Arg);
      if (!Ty)
        return std::nullopt;
      if (R.CastTo == Type::Int && *Ty != Type::Ptr) {
        Diags.error(R.Loc, "(int) cast applies to ptr operands only");
        return std::nullopt;
      }
      if (R.CastTo == Type::Ptr && *Ty != Type::Int) {
        Diags.error(R.Loc, "(ptr) cast applies to int operands only");
        return std::nullopt;
      }
      return Produced(R.CastTo);
    }
    case RExp::Kind::Input:
      return Produced(Type::Int);
    case RExp::Kind::Output: {
      std::optional<Type> Ty = checkExp(*R.Arg);
      if (!Ty)
        return std::nullopt;
      if (*Ty != Type::Int) {
        // Only integers are observable events; pointers have no canonical
        // observable representation before being cast.
        Diags.error(R.Loc, "output argument must be an int");
        return std::nullopt;
      }
      return Produced(std::nullopt);
    }
    }
    return std::nullopt;
  }

  bool checkInstr(Instr &I) {
    switch (I.InstrKind) {
    case Instr::Kind::Call: {
      const FunctionDecl *Callee = P.findFunction(I.Callee);
      if (!Callee) {
        Diags.error(I.Loc, "call to undeclared function '" + I.Callee + "'");
        return false;
      }
      if (Callee->Params.size() != I.Args.size()) {
        Diags.error(I.Loc, "call to '" + I.Callee + "' with " +
                               std::to_string(I.Args.size()) +
                               " arguments; expected " +
                               std::to_string(Callee->Params.size()));
        return false;
      }
      bool Ok = true;
      for (size_t Idx = 0; Idx < I.Args.size(); ++Idx) {
        std::optional<Type> Ty = checkExp(*I.Args[Idx]);
        if (!Ty) {
          Ok = false;
          continue;
        }
        if (*Ty != Callee->Params[Idx].Ty) {
          Diags.error(I.Args[Idx]->Loc,
                      "argument " + std::to_string(Idx + 1) + " of '" +
                          I.Callee + "' must be " +
                          typeName(Callee->Params[Idx].Ty));
          Ok = false;
        }
      }
      return Ok;
    }
    case Instr::Kind::Assign: {
      std::optional<std::optional<Type>> Produced = checkRExp(*I.Rhs);
      if (!Produced)
        return false;
      if (I.Var.empty()) {
        if (*Produced) {
          Diags.error(I.Loc, "expression statement discards a value");
          return false;
        }
        return true;
      }
      if (!*Produced) {
        Diags.error(I.Loc, "right-hand side produces no value");
        return false;
      }
      std::optional<Type> VarTy = lookupVar(I.Var);
      if (!VarTy) {
        Diags.error(I.Loc, "assignment to undeclared variable '" + I.Var +
                               "'");
        return false;
      }
      if (**Produced != *VarTy) {
        Diags.error(I.Loc, "assigning " + typeName(**Produced) + " to " +
                               typeName(*VarTy) + " variable '" + I.Var +
                               "'");
        return false;
      }
      return true;
    }
    case Instr::Kind::Load: {
      std::optional<Type> VarTy = lookupVar(I.Var);
      if (!VarTy) {
        Diags.error(I.Loc, "load into undeclared variable '" + I.Var + "'");
        return false;
      }
      std::optional<Type> AddrTy = checkExp(*I.Addr);
      if (!AddrTy)
        return false;
      if (*AddrTy != Type::Ptr) {
        Diags.error(I.Loc, "load address must be a ptr");
        return false;
      }
      // The loaded value's kind is checked dynamically against the
      // variable's type (Section 6.1); both int and ptr destinations are
      // statically fine.
      return true;
    }
    case Instr::Kind::Store: {
      std::optional<Type> AddrTy = checkExp(*I.Addr);
      std::optional<Type> ValTy = checkExp(*I.StoreVal);
      if (!AddrTy || !ValTy)
        return false;
      if (*AddrTy != Type::Ptr) {
        Diags.error(I.Loc, "store address must be a ptr");
        return false;
      }
      // Memory cells hold arbitrary values; both int and ptr stores are
      // fine.
      return true;
    }
    case Instr::Kind::If: {
      std::optional<Type> CondTy = checkExp(*I.Cond);
      if (!CondTy)
        return false;
      if (*CondTy != Type::Int) {
        Diags.error(I.Loc, "condition must be an int");
        return false;
      }
      bool Ok = checkInstr(*I.Then);
      if (I.Else)
        Ok &= checkInstr(*I.Else);
      return Ok;
    }
    case Instr::Kind::While: {
      std::optional<Type> CondTy = checkExp(*I.Cond);
      if (!CondTy)
        return false;
      if (*CondTy != Type::Int) {
        Diags.error(I.Loc, "condition must be an int");
        return false;
      }
      return checkInstr(*I.Body);
    }
    case Instr::Kind::Seq: {
      bool Ok = true;
      for (auto &S : I.Stmts)
        Ok &= checkInstr(*S);
      return Ok;
    }
    }
    return false;
  }

  Program &P;
  DiagnosticEngine &Diags;
  FunctionDecl *Current = nullptr;
};

} // namespace

bool qcm::typeCheck(Program &P, DiagnosticEngine &Diags) {
  return Checker(P, Diags).run();
}
