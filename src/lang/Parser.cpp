//===- lang/Parser.cpp ----------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"

#include <cassert>

using namespace qcm;

namespace {

/// Recursive-descent parser over the token stream.
class ParserState {
public:
  ParserState(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::optional<Program> parseProgram() {
    Program P;
    while (!at(Token::Kind::Eof)) {
      if (at(Token::Kind::KwGlobal)) {
        if (!parseGlobal(P))
          return std::nullopt;
        continue;
      }
      if (at(Token::Kind::KwExtern)) {
        if (!parseExtern(P))
          return std::nullopt;
        continue;
      }
      if (at(Token::Kind::Identifier)) {
        if (!parseFunction(P))
          return std::nullopt;
        continue;
      }
      error("expected a global, extern, or function declaration");
      return std::nullopt;
    }
    return P;
  }

  std::unique_ptr<Exp> parseExpressionOnly() {
    std::unique_ptr<Exp> E = parseExp();
    if (E && !at(Token::Kind::Eof)) {
      error("trailing tokens after expression");
      return nullptr;
    }
    return E;
  }

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &peekAhead() const {
    return Pos + 1 < Tokens.size() ? Tokens[Pos + 1] : Tokens.back();
  }
  bool at(Token::Kind Kind) const { return peek().TokenKind == Kind; }

  Token advance() {
    Token T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }

  bool expect(Token::Kind Kind, const char *Context) {
    if (at(Kind)) {
      advance();
      return true;
    }
    error(std::string("expected ") + tokenKindName(Kind) + " " + Context +
          ", found " + tokenKindName(peek().TokenKind));
    return false;
  }

  void error(std::string Message) {
    Diags.error(peek().Loc, std::move(Message));
  }

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  bool parseGlobal(Program &P) {
    advance(); // 'global'
    if (!at(Token::Kind::Identifier)) {
      error("expected global name");
      return false;
    }
    GlobalDecl G;
    G.Name = advance().Spelling;
    G.SizeWords = 1;
    if (at(Token::Kind::LBracket)) {
      advance();
      if (!at(Token::Kind::Number)) {
        error("expected a size in the global declaration");
        return false;
      }
      G.SizeWords = advance().Number;
      if (!expect(Token::Kind::RBracket, "after global size"))
        return false;
    }
    if (!expect(Token::Kind::Semicolon, "after global declaration"))
      return false;
    P.Globals.push_back(std::move(G));
    return true;
  }

  bool parseExtern(Program &P) {
    advance(); // 'extern'
    if (!at(Token::Kind::Identifier)) {
      error("expected extern function name");
      return false;
    }
    FunctionDecl F;
    F.Name = advance().Spelling;
    if (!parseParamList(F.Params))
      return false;
    if (!expect(Token::Kind::Semicolon, "after extern declaration"))
      return false;
    P.Functions.push_back(std::move(F));
    return true;
  }

  bool parseFunction(Program &P) {
    FunctionDecl F;
    F.Name = advance().Spelling;
    if (!parseParamList(F.Params))
      return false;
    if (!expect(Token::Kind::LBrace, "to begin function body"))
      return false;
    if (at(Token::Kind::KwVar)) {
      advance();
      if (!parseVarDeclList(F.Locals))
        return false;
      if (!expect(Token::Kind::Semicolon, "after local declarations"))
        return false;
    }
    std::vector<std::unique_ptr<Instr>> Stmts;
    while (!at(Token::Kind::RBrace) && !at(Token::Kind::Eof)) {
      std::unique_ptr<Instr> I = parseInstr();
      if (!I)
        return false;
      Stmts.push_back(std::move(I));
    }
    if (!expect(Token::Kind::RBrace, "to end function body"))
      return false;
    F.Body = Instr::makeSeq(std::move(Stmts));
    P.Functions.push_back(std::move(F));
    return true;
  }

  bool parseParamList(std::vector<VarDecl> &Params) {
    if (!expect(Token::Kind::LParen, "to begin parameter list"))
      return false;
    if (at(Token::Kind::RParen)) {
      advance();
      return true;
    }
    while (true) {
      std::optional<VarDecl> D = parseTypedName();
      if (!D)
        return false;
      Params.push_back(*D);
      if (at(Token::Kind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    return expect(Token::Kind::RParen, "to end parameter list");
  }

  bool parseVarDeclList(std::vector<VarDecl> &Locals) {
    while (true) {
      std::optional<VarDecl> D = parseTypedName();
      if (!D)
        return false;
      Locals.push_back(*D);
      if (at(Token::Kind::Comma)) {
        advance();
        continue;
      }
      return true;
    }
  }

  std::optional<VarDecl> parseTypedName() {
    VarDecl D;
    if (at(Token::Kind::KwInt)) {
      D.Ty = Type::Int;
    } else if (at(Token::Kind::KwPtr)) {
      D.Ty = Type::Ptr;
    } else {
      error("expected 'int' or 'ptr'");
      return std::nullopt;
    }
    advance();
    if (!at(Token::Kind::Identifier)) {
      error("expected a variable name");
      return std::nullopt;
    }
    D.Name = advance().Spelling;
    return D;
  }

  //===--------------------------------------------------------------------===
  // Instructions
  //===--------------------------------------------------------------------===

  std::unique_ptr<Instr> parseInstr() {
    SourceLoc Loc = peek().Loc;
    if (at(Token::Kind::LBrace))
      return parseBlock();
    if (at(Token::Kind::KwIf))
      return parseIf();
    if (at(Token::Kind::KwWhile))
      return parseWhile();
    if (at(Token::Kind::KwFree) || at(Token::Kind::KwOutput))
      return parseEffectStatement();
    if (at(Token::Kind::Star))
      return parseStore();
    if (at(Token::Kind::Identifier)) {
      if (peekAhead().TokenKind == Token::Kind::LParen)
        return parseCallStatement();
      if (peekAhead().TokenKind == Token::Kind::Assign)
        return parseAssignLike();
      error("expected '=' or '(' after identifier");
      return nullptr;
    }
    error("expected an instruction");
    (void)Loc;
    return nullptr;
  }

  std::unique_ptr<Instr> parseBlock() {
    SourceLoc Loc = peek().Loc;
    if (!expect(Token::Kind::LBrace, "to begin block"))
      return nullptr;
    std::vector<std::unique_ptr<Instr>> Stmts;
    while (!at(Token::Kind::RBrace) && !at(Token::Kind::Eof)) {
      std::unique_ptr<Instr> I = parseInstr();
      if (!I)
        return nullptr;
      Stmts.push_back(std::move(I));
    }
    if (!expect(Token::Kind::RBrace, "to end block"))
      return nullptr;
    return Instr::makeSeq(std::move(Stmts), Loc);
  }

  std::unique_ptr<Instr> parseIf() {
    SourceLoc Loc = advance().Loc; // 'if'
    if (!expect(Token::Kind::LParen, "after 'if'"))
      return nullptr;
    std::unique_ptr<Exp> Cond = parseExp();
    if (!Cond)
      return nullptr;
    if (!expect(Token::Kind::RParen, "after condition"))
      return nullptr;
    std::unique_ptr<Instr> Then = parseBlock();
    if (!Then)
      return nullptr;
    std::unique_ptr<Instr> Else;
    if (at(Token::Kind::KwElse)) {
      advance();
      Else = parseBlock();
      if (!Else)
        return nullptr;
    }
    return Instr::makeIf(std::move(Cond), std::move(Then), std::move(Else),
                         Loc);
  }

  std::unique_ptr<Instr> parseWhile() {
    SourceLoc Loc = advance().Loc; // 'while'
    if (!expect(Token::Kind::LParen, "after 'while'"))
      return nullptr;
    std::unique_ptr<Exp> Cond = parseExp();
    if (!Cond)
      return nullptr;
    if (!expect(Token::Kind::RParen, "after condition"))
      return nullptr;
    std::unique_ptr<Instr> Body = parseBlock();
    if (!Body)
      return nullptr;
    return Instr::makeWhile(std::move(Cond), std::move(Body), Loc);
  }

  std::unique_ptr<Instr> parseEffectStatement() {
    SourceLoc Loc = peek().Loc;
    bool IsFree = at(Token::Kind::KwFree);
    advance(); // 'free' or 'output'
    if (!expect(Token::Kind::LParen, "after keyword"))
      return nullptr;
    std::unique_ptr<Exp> E = parseExp();
    if (!E)
      return nullptr;
    if (!expect(Token::Kind::RParen, "after argument"))
      return nullptr;
    if (!expect(Token::Kind::Semicolon, "after statement"))
      return nullptr;
    std::unique_ptr<RExp> R = IsFree ? RExp::makeFree(std::move(E), Loc)
                                     : RExp::makeOutput(std::move(E), Loc);
    return Instr::makeEffect(std::move(R), Loc);
  }

  std::unique_ptr<Instr> parseStore() {
    SourceLoc Loc = advance().Loc; // '*'
    std::unique_ptr<Exp> Addr = parsePrimary();
    if (!Addr)
      return nullptr;
    if (!expect(Token::Kind::Assign, "in store statement"))
      return nullptr;
    std::unique_ptr<Exp> Val = parseExp();
    if (!Val)
      return nullptr;
    if (!expect(Token::Kind::Semicolon, "after store"))
      return nullptr;
    return Instr::makeStore(std::move(Addr), std::move(Val), Loc);
  }

  std::unique_ptr<Instr> parseCallStatement() {
    SourceLoc Loc = peek().Loc;
    std::string Callee = advance().Spelling;
    advance(); // '('
    std::vector<std::unique_ptr<Exp>> Args;
    if (!at(Token::Kind::RParen)) {
      while (true) {
        std::unique_ptr<Exp> A = parseExp();
        if (!A)
          return nullptr;
        Args.push_back(std::move(A));
        if (at(Token::Kind::Comma)) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expect(Token::Kind::RParen, "to end argument list"))
      return nullptr;
    if (!expect(Token::Kind::Semicolon, "after call"))
      return nullptr;
    return Instr::makeCall(std::move(Callee), std::move(Args), Loc);
  }

  std::unique_ptr<Instr> parseAssignLike() {
    SourceLoc Loc = peek().Loc;
    std::string Var = advance().Spelling;
    advance(); // '='
    // Load: x = *e;
    if (at(Token::Kind::Star)) {
      advance();
      std::unique_ptr<Exp> Addr = parsePrimary();
      if (!Addr)
        return nullptr;
      if (!expect(Token::Kind::Semicolon, "after load"))
        return nullptr;
      return Instr::makeLoad(std::move(Var), std::move(Addr), Loc);
    }
    std::unique_ptr<RExp> R = parseRExp();
    if (!R)
      return nullptr;
    if (!expect(Token::Kind::Semicolon, "after assignment"))
      return nullptr;
    return Instr::makeAssign(std::move(Var), std::move(R), Loc);
  }

  //===--------------------------------------------------------------------===
  // Right-hand sides and expressions
  //===--------------------------------------------------------------------===

  std::unique_ptr<RExp> parseRExp() {
    SourceLoc Loc = peek().Loc;
    if (at(Token::Kind::KwMalloc)) {
      advance();
      if (!expect(Token::Kind::LParen, "after 'malloc'"))
        return nullptr;
      std::unique_ptr<Exp> Size = parseExp();
      if (!Size)
        return nullptr;
      if (!expect(Token::Kind::RParen, "after malloc size"))
        return nullptr;
      return RExp::makeMalloc(std::move(Size), Loc);
    }
    if (at(Token::Kind::KwInput)) {
      advance();
      if (!expect(Token::Kind::LParen, "after 'input'"))
        return nullptr;
      if (!expect(Token::Kind::RParen, "after 'input('"))
        return nullptr;
      return RExp::makeInput(Loc);
    }
    if (at(Token::Kind::KwFree)) {
      advance();
      if (!expect(Token::Kind::LParen, "after 'free'"))
        return nullptr;
      std::unique_ptr<Exp> E = parseExp();
      if (!E)
        return nullptr;
      if (!expect(Token::Kind::RParen, "after free argument"))
        return nullptr;
      return RExp::makeFree(std::move(E), Loc);
    }
    // Cast: '(' ('int'|'ptr') ')' exp — distinguished from a parenthesized
    // expression by the type keyword.
    if (at(Token::Kind::LParen) &&
        (peekAhead().TokenKind == Token::Kind::KwInt ||
         peekAhead().TokenKind == Token::Kind::KwPtr)) {
      advance(); // '('
      Type To = at(Token::Kind::KwInt) ? Type::Int : Type::Ptr;
      advance(); // type keyword
      if (!expect(Token::Kind::RParen, "after cast type"))
        return nullptr;
      std::unique_ptr<Exp> E = parseExp();
      if (!E)
        return nullptr;
      return RExp::makeCast(To, std::move(E), Loc);
    }
    std::unique_ptr<Exp> E = parseExp();
    if (!E)
      return nullptr;
    return RExp::makePure(std::move(E));
  }

  std::unique_ptr<Exp> parseExp() { return parseEquality(); }

  std::unique_ptr<Exp> parseEquality() {
    std::unique_ptr<Exp> Lhs = parseAnd();
    if (!Lhs)
      return nullptr;
    while (at(Token::Kind::EqualEq)) {
      SourceLoc Loc = advance().Loc;
      std::unique_ptr<Exp> Rhs = parseAnd();
      if (!Rhs)
        return nullptr;
      Lhs = Exp::makeBinary(BinaryOp::Eq, std::move(Lhs), std::move(Rhs),
                            Loc);
    }
    return Lhs;
  }

  std::unique_ptr<Exp> parseAnd() {
    std::unique_ptr<Exp> Lhs = parseAdditive();
    if (!Lhs)
      return nullptr;
    while (at(Token::Kind::Amp)) {
      SourceLoc Loc = advance().Loc;
      std::unique_ptr<Exp> Rhs = parseAdditive();
      if (!Rhs)
        return nullptr;
      Lhs = Exp::makeBinary(BinaryOp::And, std::move(Lhs), std::move(Rhs),
                            Loc);
    }
    return Lhs;
  }

  std::unique_ptr<Exp> parseAdditive() {
    std::unique_ptr<Exp> Lhs = parseMultiplicative();
    if (!Lhs)
      return nullptr;
    while (at(Token::Kind::Plus) || at(Token::Kind::Minus)) {
      BinaryOp Op =
          at(Token::Kind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      SourceLoc Loc = advance().Loc;
      std::unique_ptr<Exp> Rhs = parseMultiplicative();
      if (!Rhs)
        return nullptr;
      Lhs = Exp::makeBinary(Op, std::move(Lhs), std::move(Rhs), Loc);
    }
    return Lhs;
  }

  std::unique_ptr<Exp> parseMultiplicative() {
    std::unique_ptr<Exp> Lhs = parsePrimary();
    if (!Lhs)
      return nullptr;
    while (at(Token::Kind::Star)) {
      SourceLoc Loc = advance().Loc;
      std::unique_ptr<Exp> Rhs = parsePrimary();
      if (!Rhs)
        return nullptr;
      Lhs = Exp::makeBinary(BinaryOp::Mul, std::move(Lhs), std::move(Rhs),
                            Loc);
    }
    return Lhs;
  }

  std::unique_ptr<Exp> parsePrimary() {
    SourceLoc Loc = peek().Loc;
    if (at(Token::Kind::Number)) {
      Token T = advance();
      return Exp::makeIntLit(T.Number, Loc);
    }
    if (at(Token::Kind::Identifier)) {
      Token T = advance();
      // Globals are resolved (Var -> Global) by the type checker.
      return Exp::makeVar(T.Spelling, Loc);
    }
    if (at(Token::Kind::LParen)) {
      advance();
      std::unique_ptr<Exp> E = parseExp();
      if (!E)
        return nullptr;
      if (!expect(Token::Kind::RParen, "to close parenthesized expression"))
        return nullptr;
      return E;
    }
    error("expected an expression");
    return nullptr;
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

std::optional<Program> qcm::parseProgram(const std::string &Source,
                                         DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = tokenize(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  ParserState Parser(std::move(Tokens), Diags);
  std::optional<Program> P = Parser.parseProgram();
  if (Diags.hasErrors())
    return std::nullopt;
  return P;
}

std::unique_ptr<Exp> qcm::parseExpression(const std::string &Source,
                                          DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = tokenize(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  ParserState Parser(std::move(Tokens), Diags);
  return Parser.parseExpressionOnly();
}
