//===- tools/WorkerMode.cpp -----------------------------------------------===//

#include "tools/WorkerMode.h"

#include "memory/ModelRegistry.h"
#include "refinement/Validate.h"
#include "semantics/ResultCodec.h"
#include "support/Subprocess.h"
#include "support/Telemetry.h"
#include "support/TestingHooks.h"

#include <map>
#include <memory>
#include <utility>

#include <unistd.h>

using namespace qcm;
using namespace qcm_tools;

namespace {

/// Record separator joining forwarded "key=value" options inside the init
/// frame's single "options" string (jsonEscape round-trips it as \u001f).
constexpr char OptionSep = '\x1f';

/// Options NOT forwarded to workers: isolation plumbing (a worker is always
/// a serial thread-backend check), journaling (only the supervisor owns the
/// journal), observability (workers share the supervisor's stderr and must
/// not fight over it), and --context (its *text* ships separately — workers
/// never touch the filesystem).
bool forwardedToWorker(const std::string &Key) {
  return Key != "isolate" && Key != "isolate-retries" && Key != "journal" &&
         Key != "resume" && Key != "journal-sync" && Key != "progress" &&
         Key != "profile" && Key != "metrics-out" && Key != "jobs" &&
         Key != "context";
}

} // namespace

bool qcm_tools::buildCheckJob(CheckJobSetup &S, std::string &Error) {
  const CommandLine &Cmd = *S.Cmd;
  S.Src = S.Compiler.compile(S.SrcText);
  if (!S.Src) {
    Error = "source: " + S.Compiler.lastDiagnostics();
    S.RawError = true;
    return false;
  }
  S.Tgt = S.Compiler.compile(S.TgtText);
  if (!S.Tgt) {
    Error = "target: " + S.Compiler.lastDiagnostics();
    S.RawError = true;
    return false;
  }

  S.Job = RefinementJob{};
  S.Job.Src = &*S.Src;
  S.Job.Tgt = &*S.Tgt;
  if (!Cmd.applyRunOptions(S.Job.BaseSrc, Error))
    return false;
  if (!Cmd.applyExplorationOptions(S.Job.Exec, Error))
    return false;
  if (Cmd.has("sweep"))
    S.Job.ExhaustionSweep = true;
  if (Cmd.has("sweep-cap") &&
      !parseUint(Cmd.get("sweep-cap"), S.Job.SweepMaxPointsPerCell)) {
    Error = "invalid --sweep-cap value '" + Cmd.get("sweep-cap") + "'";
    return false;
  }
  S.Job.BaseTgt = S.Job.BaseSrc;
  if (Cmd.has("tgt-model")) {
    if (std::optional<ModelKind> Kind = parseModelName(Cmd.get("tgt-model"))) {
      S.Job.BaseTgt.Model = *Kind;
    } else {
      Error = unknownModelDiagnostic(Cmd.get("tgt-model"));
      return false;
    }
  }

  // Contexts: explicit one, plus the standard adversaries for parameter-
  // less externs unless suppressed.
  S.Job.Contexts.push_back(ContextVariant::empty());
  if (S.HaveContext)
    S.Job.Contexts.push_back(
        ContextVariant::fromSource(S.ContextName, S.ContextText));
  if (!Cmd.has("no-adversaries"))
    for (ContextVariant &C : standardAdversaryContexts(*S.Src))
      S.Job.Contexts.push_back(std::move(C));
  return true;
}

std::string qcm_tools::buildWorkerInitFrame(const std::string &SrcText,
                                            const std::string &TgtText,
                                            const CommandLine &Cmd,
                                            bool HaveContext,
                                            const std::string &ContextName,
                                            const std::string &ContextText) {
  std::string Options;
  for (const auto &[Key, Value] : Cmd.Options) {
    if (!forwardedToWorker(Key))
      continue;
    if (!Options.empty())
      Options += OptionSep;
    Options += Key + "=" + Value;
  }
  JsonObject O;
  O.field("qcm-worker", static_cast<uint64_t>(1));
  O.field("src", SrcText);
  O.field("tgt", TgtText);
  O.field("options", Options);
  if (HaveContext) {
    O.field("context_name", ContextName);
    O.field("context_text", ContextText);
  }
  return O.str();
}

std::string qcm_tools::currentExecutablePath(const char *Argv0) {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    return Buf;
  }
  return Argv0 && *Argv0 ? Argv0 : "qcm-check";
}

bool qcm_tools::configureProcessIsolation(const CommandLine &Cmd,
                                          const char *Argv0,
                                          std::string InitFrame,
                                          const ExplorationOptions &Exec,
                                          ProcessPool::Config &Out,
                                          std::string &Error) {
  Out.WorkerArgv = {currentExecutablePath(Argv0), "--worker"};
  Out.InitFrame = std::move(InitFrame);
  Out.Workers = Exec.effectiveJobs();
  if (Cmd.has("isolate-retries")) {
    uint64_t Retries = 0;
    if (!parseUint(Cmd.get("isolate-retries"), Retries) || Retries > 1000) {
      Error =
          "invalid --isolate-retries value '" + Cmd.get("isolate-retries") +
          "'";
      return false;
    }
    Out.MaxRetries = static_cast<unsigned>(Retries);
  }
  if (Cmd.has("timeout-ms")) {
    uint64_t TimeoutMs = 0;
    if (parseUint(Cmd.get("timeout-ms"), TimeoutMs) && TimeoutMs)
      // Sized so the in-worker --timeout-ms watchdog always fires first for
      // merely slow cells; only a wedged process (stuck syscall, livelocked
      // dispatch) outlives this and meets the supervisor's SIGKILL.
      Out.ItemTimeoutMs = TimeoutMs * 4 + 5000;
  }
  return true;
}

int qcm_tools::runCheckWorker(int InFd, int OutFd) {
  installSignalHygiene();

  auto Reply = [OutFd](const std::string &Payload) {
    return writeFrameFd(OutFd, Payload);
  };
  auto Fail = [&Reply](const std::string &Msg) {
    JsonObject O;
    O.field("error", Msg);
    Reply(O.str());
    return ExitBadInput;
  };

  std::string Init;
  bool Eof = false;
  if (!readFrameFd(InFd, Init, Eof))
    return ExitBadInput;
  std::string Raw;
  bool IsString = false;
  if (!jsonExtractField(Init, "qcm-worker", Raw, IsString))
    return Fail("malformed init frame");

  CheckJobSetup Setup;
  if (!jsonExtractField(Init, "src", Setup.SrcText, IsString) ||
      !jsonExtractField(Init, "tgt", Setup.TgtText, IsString))
    return Fail("init frame missing program text");
  std::string OptionsBlob;
  jsonExtractField(Init, "options", OptionsBlob, IsString);
  if (jsonExtractField(Init, "context_name", Setup.ContextName, IsString)) {
    Setup.HaveContext = true;
    jsonExtractField(Init, "context_text", Setup.ContextText, IsString);
  }

  // Rebuild the forwarded command line from the \x1f-joined k=v records.
  CommandLine Cmd;
  std::string Record;
  for (size_t I = 0; I <= OptionsBlob.size(); ++I) {
    if (I < OptionsBlob.size() && OptionsBlob[I] != OptionSep) {
      Record += OptionsBlob[I];
      continue;
    }
    if (!Record.empty()) {
      const size_t Eq = Record.find('=');
      if (Eq == std::string::npos)
        Cmd.Options[Record] = "";
      else
        Cmd.Options[Record.substr(0, Eq)] = Record.substr(Eq + 1);
    }
    Record.clear();
  }
  Setup.Cmd = &Cmd;

  std::string Error;
  if (!buildCheckJob(Setup, Error))
    return Fail(Error);

  {
    JsonObject O;
    O.field("ready", static_cast<uint64_t>(1));
    if (!Reply(O.str()))
      return 0; // supervisor went away; nothing left to serve
  }

  // Schedules cached per (source model, target model): plain mode hits one
  // entry forever, matrix mode re-plans once per model pair and then serves
  // every request of that pair from the cache. Planning with the exact same
  // planRefinementGrid the supervisor uses is what makes a request index
  // denote the same module × config on both sides.
  std::map<std::pair<int, int>, std::unique_ptr<GridSchedule>> Schedules;
  auto scheduleFor = [&](ModelKind SrcKind, ModelKind TgtKind) {
    const std::pair<int, int> Key{static_cast<int>(SrcKind),
                                  static_cast<int>(TgtKind)};
    std::unique_ptr<GridSchedule> &Slot = Schedules[Key];
    if (!Slot) {
      Setup.Job.BaseSrc.Model = SrcKind;
      Setup.Job.BaseTgt.Model = TgtKind;
      Slot = std::make_unique<GridSchedule>(planRefinementGrid(Setup.Job));
    }
    return Slot.get();
  };

  // One ExecState for the worker's lifetime: compile-once plus machine and
  // memory storage reuse across every cell this process serves.
  ExecState Exec;
  std::string Request;
  while (readFrameFd(InFd, Request, Eof)) {
    std::string RunKind, SrcModel, TgtModel, IndexText;
    if (!jsonExtractField(Request, "run", RunKind, IsString) ||
        !jsonExtractField(Request, "src_model", SrcModel, IsString) ||
        !jsonExtractField(Request, "tgt_model", TgtModel, IsString) ||
        !jsonExtractField(Request, "index", IndexText, IsString))
      return Fail("malformed request frame");
    uint64_t Index = 0;
    if (!parseUint(IndexText, Index))
      return Fail("malformed request index");
    std::optional<ModelKind> SrcKind = parseModelName(SrcModel);
    std::optional<ModelKind> TgtKind = parseModelName(TgtModel);
    if (!SrcKind || !TgtKind)
      return Fail("unknown model in request");
    GridSchedule *G = scheduleFor(*SrcKind, *TgtKind);

    if (RunKind == "grid") {
      if (Index >= G->Plan.Items.size())
        return Fail("grid request index out of range");
      // The supervisor passes the journal-global cell number alongside the
      // plan index so the QCM_CRASH_AT canary addresses the same cell under
      // either backend.
      uint64_t Cell = Index;
      std::string CellText;
      if (jsonExtractField(Request, "cell", CellText, IsString))
        parseUint(CellText, Cell);
      maybeCrashAtCell(Cell);
      const ExplorationItem &Item = G->Plan.Items[Index];
      RunConfig C = Item.Config;
      if (Item.MakeHandlers)
        C.Handlers = Item.MakeHandlers();
      RunResult R = Exec.run(Item.Module, C);
      std::string Line = encodeRunResult(static_cast<size_t>(Index), R);
      // Splice the protocol's completion marker into the codec line (before
      // the closing brace) instead of sending a second frame.
      Line.insert(Line.size() - 1, ",\"done\":true");
      if (!Reply(Line))
        return 0;
    } else if (RunKind == "sweep") {
      if (Index >= G->SweepCells.size())
        return Fail("sweep request index out of range");
      bool WriteFailed = false;
      SweepProbeSummary Sum = runSweepCellProbes(
          G->SweepCells[Index], Exec, Setup.Job.SweepMaxPointsPerCell,
          [&](uint64_t N, RunResult &Probe) {
            // One frame per probe, streamed as produced: frame arrival
            // refreshes the supervisor's hang watchdog, so a long sweep
            // cell is judged on activity, not total duration.
            if (!Reply(encodeRunResult(static_cast<size_t>(N), Probe)))
              WriteFailed = true;
          });
      if (WriteFailed)
        return 0;
      JsonObject Done;
      Done.field("sweep_done", static_cast<uint64_t>(1));
      Done.field("probes", Sum.Probes);
      Done.fieldBool("capped", Sum.Capped);
      Done.fieldBool("done", true);
      if (!Reply(Done.str()))
        return 0;
    } else {
      return Fail("unknown request kind '" + RunKind + "'");
    }
  }
  // EOF at a frame boundary is the graceful-shutdown signal.
  return Eof ? 0 : ExitBadInput;
}
