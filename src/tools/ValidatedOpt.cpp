//===- tools/ValidatedOpt.cpp ---------------------------------------------===//

#include "tools/ValidatedOpt.h"

#include "lang/Parser.h"
#include "lang/PrettyPrint.h"
#include "lang/TypeCheck.h"
#include "support/DeltaReduce.h"
#include "support/Profiler.h"
#include "support/Telemetry.h"
#include "tools/ToolSupport.h"

using namespace qcm;
using namespace qcm_tools;

namespace {

/// Parses and type checks \p Source; nullopt when it is not a program.
std::optional<Program> compileText(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = parseProgram(Source, Diags);
  if (!Prog || Diags.hasErrors())
    return std::nullopt;
  if (!typeCheck(*Prog, Diags) || Diags.hasErrors())
    return std::nullopt;
  return Prog;
}

/// Runs a fresh instance of pass \p PassName once over every defined
/// function of \p P; returns whether anything changed.
bool applyPassOnce(const std::string &PassName,
                   const PassFactoryOptions &Factory, Program &P) {
  const PassInfo *Info = findPass(PassName);
  if (!Info)
    return false;
  std::unique_ptr<FunctionPass> Pass = Info->Make(Factory);
  bool Changed = false;
  for (FunctionDecl &F : P.Functions)
    if (!F.isExtern())
      Changed |= Pass->runOnFunction(F, P);
  return Changed;
}

/// True when applying \p PassName to the program denoted by \p Source still
/// yields a transformation that fails validation under \p Models — the
/// delta-reduction predicate. Deliberately strict: candidates that fail to
/// compile, or on which the pass fires without effect, do not count.
bool passStillInvalid(const std::string &Source, const std::string &PassName,
                      const PassFactoryOptions &Factory,
                      const std::vector<ModelKind> &Models,
                      const ValidationBudget &Budget) {
  std::optional<Program> Before = compileText(Source);
  if (!Before)
    return false;
  Program After = Before->clone();
  if (!applyPassOnce(PassName, Factory, After))
    return false;
  return !validateTransformation(*Before, After, Models, Budget).AllValid;
}

} // namespace

std::optional<ValidatedOptResult>
qcm_tools::runValidatedPipeline(Program &Prog, const ValidatedOptOptions &Opts,
                                std::string &Error) {
  std::optional<PassPipeline> Pipeline = buildPipeline(
      Opts.Spec, Opts.Factory, Error, Opts.DefaultFixIterations);
  if (!Pipeline)
    return std::nullopt;

  ValidatedOptResult Result;
  std::vector<ModelKind> FailedModels;

  PassValidator Validator;
  if (!Opts.Models.empty()) {
    Validator = [&](const Program &Before, const Program &After,
                    const PassApplication &App)
        -> std::optional<std::string> {
      std::vector<ModelKind> Check;
      for (ModelKind M : Opts.Models) {
        if (passClaimsValidity(App.Pass, M, Opts.Factory))
          Check.push_back(M);
        else
          ++Result.SkippedModelChecks;
      }
      if (Check.empty())
        return std::nullopt;
      ++Result.ValidatedApplications;
      ValidationReport R =
          validateTransformation(Before, After, Check, Opts.Budget);
      Result.ValidationRuns += R.TotalRuns;
      if (R.AllValid)
        return std::nullopt;

      // Capture the failure before the pipeline rolls the program back.
      for (const ModelValidation &V : R.PerModel)
        if (!V.Valid)
          FailedModels.push_back(V.Model);
      Result.FailedModels = R.failedModels();
      Result.FailingInput = printProgram(Before);
      for (const ModelValidation &V : R.PerModel)
        if (!V.Valid)
          return "under model '" + shortModelName(V.Model) + "', context '" +
                 V.ContextName + "': " + V.Detail;
      return std::string("validation failed");
    };
  }

  Result.Pipeline = Pipeline->run(Prog, Validator);

  if (Result.Pipeline.Failed && Opts.Minimize && !FailedModels.empty()) {
    prof::Span Span("minimize", "validate");
    const std::string Pass = Result.Pipeline.Failed->Pass;
    auto StillFails = [&](const std::string &Candidate) {
      return passStillInvalid(Candidate, Pass, Opts.Factory, FailedModels,
                              Opts.Budget);
    };
    // The pretty-printed snapshot reproduces by construction; minimize only
    // if the round trip agrees (a strict predicate keeps ddmin honest).
    if (StillFails(Result.FailingInput))
      Result.MinimizedInput = minimizeLines(Result.FailingInput, StillFails);
  }

  return Result;
}

std::string
qcm_tools::renderOptMetricsDocument(const ValidatedOptResult &Result,
                                    const ValidatedOptOptions &Opts) {
  const PipelineResult &PR = Result.Pipeline;

  JsonObject PipelineObj;
  PipelineObj.field("spec", Opts.Spec.toString());
  PipelineObj.fieldBool("changed", PR.Changed);
  PipelineObj.field("applications", static_cast<uint64_t>(PR.Applications.size()));
  PipelineObj.fieldBool("iteration_bound_hit", PR.HitIterationBound);
  PipelineObj.field("validated_applications", Result.ValidatedApplications);
  PipelineObj.field("skipped_model_checks", Result.SkippedModelChecks);
  PipelineObj.fieldBool("failed", PR.Failed.has_value());
  if (PR.Failed) {
    PipelineObj.field("failed_pass", PR.Failed->Pass);
    PipelineObj.field("failed_element", static_cast<uint64_t>(PR.Failed->Element));
    PipelineObj.field("failed_iteration",
                      static_cast<uint64_t>(PR.Failed->Iteration));
    PipelineObj.field("failed_models", Result.FailedModels);
  }

  std::vector<std::string> PassRows;
  for (const PassMetrics &M : PR.Metrics)
    PassRows.push_back(M.toJson());

  JsonObject Validation;
  std::vector<std::string> Requested;
  for (ModelKind M : Opts.Models)
    Requested.push_back("\"" + jsonEscape(shortModelName(M)) + "\"");
  Validation.fieldRaw("requested", jsonArray(Requested));
  Validation.field("verdict", Opts.Models.empty() ? "off"
                              : PR.Failed        ? "fail"
                                                 : "ok");
  Validation.field("runs", Result.ValidationRuns);

  JsonObject Doc;
  Doc.field("schema", "qcm-metrics-1");
  Doc.field("tool", "qcm-opt");
  Doc.fieldRaw("pipeline", PipelineObj.str());
  Doc.fieldRaw("passes", jsonArray(PassRows));
  Doc.fieldRaw("validation", Validation.str());
  Doc.fieldRaw("process", metricsProcessJson());
  Doc.fieldRaw("profile", metricsProfileJson());
  return Doc.str();
}

bool qcm_tools::writeOptMetricsJson(const std::string &Path,
                                    const ValidatedOptResult &Result,
                                    const ValidatedOptOptions &Opts,
                                    std::string &Error) {
  return writeTextFile(Path, renderOptMetricsDocument(Result, Opts) + "\n",
                       Error);
}
