//===- tools/WorkerMode.h - qcm-check worker-process mode -------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two halves of qcm-check's --isolate=process backend
/// (docs/ISOLATION.md):
///
/// * the supervisor half — building the init frame a worker needs to
///   reconstruct the exact refinement job, and the ProcessPool
///   configuration that spawns `qcm-check --worker` processes;
/// * the worker half — runCheckWorker(), the hidden --worker entry point
///   that rebuilds the job from the init frame, plans the same
///   deterministic grid (refinement/RefinementChecker.h's
///   planRefinementGrid), and serves per-cell execution requests over
///   stdin/stdout frames until EOF.
///
/// Both halves and the plain in-process tool construct their RefinementJob
/// through the one buildCheckJob() helper, so a plan index denotes the same
/// module × config on every side of the process boundary.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_TOOLS_WORKERMODE_H
#define QCM_TOOLS_WORKERMODE_H

#include "core/QuasiConcrete.h"
#include "refinement/ProcessPool.h"
#include "refinement/RefinementChecker.h"
#include "tools/ToolSupport.h"

#include <optional>
#include <string>

namespace qcm_tools {

/// One qcm-check job under construction: the inputs both the tool's main()
/// and the worker's init-frame decoder can supply, and the compiled outputs
/// the RefinementJob borrows. Keep the struct alive as long as the Job.
struct CheckJobSetup {
  // Inputs.
  std::string SrcText, TgtText;
  const CommandLine *Cmd = nullptr;
  /// The --context file, already resolved to text: main() reads it from
  /// disk, the worker receives it inside the init frame (workers never
  /// touch the filesystem).
  bool HaveContext = false;
  std::string ContextName, ContextText;

  // Outputs.
  qcm::Vm Compiler;
  std::optional<qcm::Program> Src, Tgt;
  qcm::RefinementJob Job;
  /// True when the failure Error already carries its own formatting
  /// (compiler diagnostics); print it raw instead of "qcm-check: ...".
  bool RawError = false;
};

/// Compiles both programs and fills Job exactly as qcm-check always has:
/// run options, exploration options, sweep flags, target model, and the
/// context list (empty + explicit + standard adversaries unless
/// --no-adversaries). False with \p Error on any malformed input.
bool buildCheckJob(CheckJobSetup &S, std::string &Error);

/// The init frame replayed to every spawned worker: both program texts, the
/// grid-shaping command-line options (observability, journal, jobs, and
/// isolation flags are stripped — workers are always serial and never
/// journal), and the resolved --context text.
std::string buildWorkerInitFrame(const std::string &SrcText,
                                 const std::string &TgtText,
                                 const CommandLine &Cmd, bool HaveContext,
                                 const std::string &ContextName,
                                 const std::string &ContextText);

/// Fills the --isolate=process pool configuration: worker argv (the running
/// executable + --worker), the init frame, one worker per effective job,
/// the supervisor hang window derived from --timeout-ms (the in-worker
/// watchdog handles slow cells; the supervisor only catches a truly wedged
/// process), and the --isolate-retries budget. False with \p Error on a
/// malformed --isolate-retries value.
bool configureProcessIsolation(const CommandLine &Cmd, const char *Argv0,
                               std::string InitFrame,
                               const qcm::ExplorationOptions &Exec,
                               qcm::ProcessPool::Config &Out,
                               std::string &Error);

/// Best-effort absolute path of the running executable (/proc/self/exe,
/// falling back to \p Argv0) — restarted workers must exec the same binary
/// even after a chdir.
std::string currentExecutablePath(const char *Argv0);

/// The hidden `qcm-check --worker` entry point: reads the init frame from
/// \p InFd, replies {"ready":1} (or {"error":...}), then serves grid and
/// sweep cell requests until EOF on \p InFd. Returns the process exit code
/// (0 on a clean EOF shutdown).
int runCheckWorker(int InFd, int OutFd);

} // namespace qcm_tools

#endif // QCM_TOOLS_WORKERMODE_H
