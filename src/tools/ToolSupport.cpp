//===- tools/ToolSupport.cpp ----------------------------------------------===//

#include "tools/ToolSupport.h"

#include <fstream>
#include <sstream>

using namespace qcm;
using namespace qcm_tools;

bool qcm_tools::readFile(const std::string &Path, std::string &Out,
                         std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

std::string qcm_tools::renderTrace(const std::vector<MemEvent> &Events) {
  std::string Text;
  for (const MemEvent &E : Events) {
    Text += E.toString();
    Text += "\n";
  }
  return Text;
}

bool qcm_tools::writeTraceJsonl(const std::string &Path,
                                const std::vector<MemEvent> &Events,
                                std::string &Error) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  JsonlTraceSink Sink(Out);
  for (const MemEvent &E : Events)
    Sink.onEvent(E);
  Out.flush();
  if (!Out) {
    Error = "error writing '" + Path + "'";
    return false;
  }
  return true;
}

std::string qcm_tools::renderStats(const ModelStats &Stats,
                                   const std::string &ModelName) {
  return "--- memory statistics (" + ModelName + ") ---\n" +
         Stats.toString();
}

bool CommandLine::parse(int Argc, char **Argv, std::string &Error) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq == std::string::npos)
      Options[Body] = "";
    else
      Options[Body.substr(0, Eq)] = Body.substr(Eq + 1);
  }
  Error.clear();
  return true;
}

std::string CommandLine::get(const std::string &Key,
                             const std::string &Default) const {
  auto It = Options.find(Key);
  return It == Options.end() ? Default : It->second;
}

namespace {

std::vector<Word> parseTape(const std::string &Text) {
  std::vector<Word> Tape;
  std::string Current;
  for (char C : Text + ",") {
    if (C == ',') {
      if (!Current.empty())
        Tape.push_back(static_cast<Word>(std::stoull(Current)));
      Current.clear();
    } else {
      Current += C;
    }
  }
  return Tape;
}

} // namespace

bool CommandLine::applyRunOptions(RunConfig &Config,
                                  std::string &Error) const {
  std::string Model = get("model", "quasi");
  if (Model == "concrete") {
    Config.Model = ModelKind::Concrete;
  } else if (Model == "logical") {
    Config.Model = ModelKind::Logical;
  } else if (Model == "quasi") {
    Config.Model = ModelKind::QuasiConcrete;
  } else if (Model == "eager") {
    Config.Model = ModelKind::EagerQuasi;
  } else {
    Error = "unknown model '" + Model + "'";
    return false;
  }

  std::string Oracle = get("oracle", "first");
  if (Oracle == "first") {
    Config.Oracle = [] { return std::make_unique<FirstFitOracle>(); };
  } else if (Oracle == "last") {
    Config.Oracle = [] { return std::make_unique<LastFitOracle>(); };
  } else if (Oracle.rfind("random:", 0) == 0) {
    uint64_t Seed = std::stoull(Oracle.substr(7));
    Config.Oracle = [Seed] { return std::make_unique<RandomOracle>(Seed); };
  } else {
    Error = "unknown oracle '" + Oracle + "'";
    return false;
  }

  Config.Entry = get("entry", "main");
  if (has("input"))
    Config.Interp.InputTape = parseTape(get("input"));
  if (has("words"))
    Config.MemConfig.AddressWords = std::stoull(get("words"));
  if (has("steps"))
    Config.Interp.StepLimit = std::stoull(get("steps"));
  if (has("loose")) {
    Config.Interp.Discipline = TypeDiscipline::Loose;
    Config.LogicalCasts = LogicalMemory::CastBehavior::TransparentNop;
  }
  return true;
}

bool CommandLine::applyExplorationOptions(ExplorationOptions &Exec,
                                          std::string &Error) const {
  if (has("jobs")) {
    std::string Jobs = get("jobs");
    if (Jobs == "auto") {
      Exec.Jobs = 0;
    } else {
      try {
        Exec.Jobs = static_cast<unsigned>(std::stoul(Jobs));
      } catch (const std::exception &) {
        Error = "invalid --jobs value '" + Jobs + "'";
        return false;
      }
    }
  }
  if (has("fail-fast"))
    Exec.FailFast = true;
  return true;
}
