//===- tools/ToolSupport.cpp ----------------------------------------------===//

#include "tools/ToolSupport.h"

#include "memory/ModelRegistry.h"
#include "refinement/RefinementChecker.h"
#include "refinement/Validate.h"
#include "semantics/ResultCodec.h"
#include "support/Profiler.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <csignal>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace qcm;
using namespace qcm_tools;

void qcm_tools::installSignalHygiene() { std::signal(SIGPIPE, SIG_IGN); }

int qcm_tools::exitCodeForBehavior(const Behavior &B) {
  switch (B.BehaviorKind) {
  case Behavior::Kind::Terminated:
    return ExitSuccess;
  case Behavior::Kind::Undefined:
    return ExitUndefined;
  case Behavior::Kind::OutOfMemory:
    return ExitOutOfMemory;
  case Behavior::Kind::StepLimit:
    return ExitTimeout;
  }
  return ExitBadInput;
}

bool qcm_tools::parseUint(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    if (Value > (UINT64_MAX - 9) / 10)
      return false;
    Value = Value * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = Value;
  return true;
}

bool qcm_tools::readFile(const std::string &Path, std::string &Out,
                         std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

std::string qcm_tools::renderTrace(const std::vector<MemEvent> &Events) {
  std::string Text;
  for (const MemEvent &E : Events) {
    Text += E.toString();
    Text += "\n";
  }
  return Text;
}

bool qcm_tools::writeTraceJsonl(const std::string &Path,
                                const std::vector<MemEvent> &Events,
                                std::string &Error) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  JsonlTraceSink Sink(Out);
  for (const MemEvent &E : Events)
    Sink.onEvent(E);
  Out.flush();
  if (!Out) {
    Error = "error writing '" + Path + "'";
    return false;
  }
  return true;
}

std::string qcm_tools::renderStats(const ModelStats &Stats,
                                   const std::string &ModelName) {
  return "--- memory statistics (" + ModelName + ") ---\n" +
         Stats.toString();
}

std::string qcm_tools::metricsAggregateJson(const RefinementReport &Report) {
  JsonObject O;
  O.fieldBool("refines", Report.Refines);
  O.field("contexts", static_cast<uint64_t>(Report.PerContext.size()));
  O.field("runs_performed", Report.RunsPerformed);
  O.field("timed_out_runs", Report.TimedOutRuns);
  O.fieldBool("sweep_ran", Report.SweepRan);
  O.field("injected_runs", Report.InjectedRuns);
  O.field("crashed_runs", Report.CrashedRuns);
  O.field("quarantined_cells", Report.QuarantinedCells);
  O.fieldRaw("stats", Report.AggregateStats.toJson());
  return O.str();
}

std::string qcm_tools::metricsProcessJson() {
  JsonObject Process;
  Process.field("peak_rss_bytes", prof::peakRssBytes());
  return Process.str();
}

std::string qcm_tools::metricsProfileJson() {
  JsonObject Profile;
  Profile.fieldBool("enabled", prof::enabled());
  Profile.field("spans", prof::spanCount());
  std::vector<std::string> Rows;
  for (const prof::CategorySummary &C : prof::categorySummaries())
    Rows.push_back(C.toJson());
  Profile.fieldRaw("categories", jsonArray(Rows));
  JsonObject CounterObj;
  for (const auto &[Name, Value] : prof::counters())
    CounterObj.field(Name, Value);
  Profile.fieldRaw("counters", CounterObj.str());
  return Profile.str();
}

std::string qcm_tools::renderMetricsDocument(const RefinementReport &Report,
                                             const std::string &Tool) {
  JsonObject Doc;
  Doc.field("schema", "qcm-metrics-1");
  Doc.field("tool", Tool);
  Doc.fieldRaw("aggregate", metricsAggregateJson(Report));
  // Like "pool", dispatch telemetry is nondeterministic across --jobs
  // levels (translation and cache-hit counts depend on worker-slot machine
  // reuse), so it lives outside the jobs-stable "aggregate" section.
  Doc.fieldRaw("dispatch", Report.AggregateDispatch.toJson());
  Doc.fieldRaw("pool", Report.Pool.toJson());
  // Supervision counters of the --isolate=process backend; the all-zero
  // thread-backend default documents which backend ran.
  Doc.fieldRaw("isolation", Report.Isolation.toJson());
  Doc.fieldRaw("process", metricsProcessJson());
  Doc.fieldRaw("profile", metricsProfileJson());
  return Doc.str();
}

bool qcm_tools::writeMetricsJson(const std::string &Path,
                                 const RefinementReport &Report,
                                 const std::string &Tool,
                                 std::string &Error) {
  return writeTextFile(Path, renderMetricsDocument(Report, Tool) + "\n",
                       Error);
}

std::string
qcm_tools::renderMatrixMetricsDocument(const MatrixReport &Report,
                                       const std::string &Tool) {
  // The aggregate keeps the single-pair document's field set (so existing
  // consumers parse matrix documents unchanged), with every counter summed
  // over the cells.
  JsonObject Aggregate;
  Aggregate.fieldBool("refines", Report.Refines);
  uint64_t Contexts = 0;
  for (const MatrixCell &C : Report.Cells)
    Contexts += C.Report.PerContext.size();
  Aggregate.field("contexts", Contexts);
  Aggregate.field("runs_performed", Report.RunsPerformed);
  Aggregate.field("timed_out_runs", Report.TimedOutRuns);
  Aggregate.fieldBool("sweep_ran", Report.SweepRan);
  Aggregate.field("injected_runs", Report.InjectedRuns);
  Aggregate.field("crashed_runs", Report.CrashedRuns);
  Aggregate.field("quarantined_cells", Report.QuarantinedCells);
  Aggregate.fieldRaw("stats", Report.AggregateStats.toJson());

  JsonObject Matrix;
  std::vector<std::string> Names;
  for (ModelKind K : Report.Models)
    Names.push_back("\"" +
                    jsonEscape(modelDescriptor(K).ShortName) + "\"");
  Matrix.fieldRaw("models", jsonArray(Names));
  std::vector<std::string> CellRows;
  for (const MatrixCell &C : Report.Cells) {
    JsonObject Row;
    Row.field("src", modelDescriptor(C.SrcModel).ShortName);
    Row.field("tgt", modelDescriptor(C.TgtModel).ShortName);
    Row.fieldBool("ran", C.Ran);
    Row.fieldBool("refines", C.Ran && C.Report.Refines);
    Row.field("runs_performed", C.Report.RunsPerformed);
    Row.field("timed_out_runs", C.Report.TimedOutRuns);
    Row.field("injected_runs", C.Report.InjectedRuns);
    Row.fieldBool("sweep_ran", C.Report.SweepRan);
    Row.field("quarantined_cells", C.Report.QuarantinedCells);
    CellRows.push_back(Row.str());
  }
  Matrix.fieldRaw("cells", jsonArray(CellRows));
  Matrix.fieldBool("refines", Report.Refines);

  JsonObject Doc;
  Doc.field("schema", "qcm-metrics-1");
  Doc.field("tool", Tool);
  Doc.fieldRaw("aggregate", Aggregate.str());
  Doc.fieldRaw("matrix", Matrix.str());
  // Nondeterministic across --jobs, like "pool"; see the single-pair
  // document for the rationale.
  Doc.fieldRaw("dispatch", Report.AggregateDispatch.toJson());
  Doc.fieldRaw("pool", Report.Pool.toJson());
  Doc.fieldRaw("isolation", Report.Isolation.toJson());
  Doc.fieldRaw("process", metricsProcessJson());
  Doc.fieldRaw("profile", metricsProfileJson());
  return Doc.str();
}

bool qcm_tools::writeMatrixMetricsJson(const std::string &Path,
                                       const MatrixReport &Report,
                                       const std::string &Tool,
                                       std::string &Error) {
  return writeTextFile(Path, renderMatrixMetricsDocument(Report, Tool) + "\n",
                       Error);
}

void qcm_tools::applyProfileOption(const CommandLine &Cmd) {
  if (!Cmd.has("profile"))
    return;
  prof::setEnabled(true);
  prof::setThreadName("main");
}

bool qcm_tools::finishProfile(const CommandLine &Cmd, std::string &Error) {
  if (!Cmd.has("profile"))
    return true;
  std::string Path = Cmd.get("profile");
  if (Path.empty()) {
    Error = "--profile requires a file path (--profile=FILE)";
    return false;
  }
  return prof::writeChromeTrace(Path, Error);
}

bool CommandLine::parse(int Argc, char **Argv, std::string &Error) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq == std::string::npos)
      Options[Body] = "";
    else
      Options[Body.substr(0, Eq)] = Body.substr(Eq + 1);
  }
  Error.clear();
  return true;
}

std::string CommandLine::get(const std::string &Key,
                             const std::string &Default) const {
  auto It = Options.find(Key);
  return It == Options.end() ? Default : It->second;
}

namespace {

bool parseTape(const std::string &Text, std::vector<Word> &Tape,
               std::string &Error) {
  if (Text.empty())
    return true;
  std::string Current;
  for (char C : Text + ",") {
    if (C != ',') {
      Current += C;
      continue;
    }
    uint64_t V = 0;
    if (!parseUint(Current, V)) {
      Error = "malformed input tape entry '" + Current +
              "' (expected comma-separated unsigned integers)";
      return false;
    }
    Tape.push_back(static_cast<Word>(V));
    Current.clear();
  }
  return true;
}

} // namespace

std::string qcm_tools::unknownModelDiagnostic(const std::string &Name) {
  std::string Text = "unknown model '" + Name + "'";
  std::vector<std::string> Suggestions = suggestModelNames(Name);
  if (!Suggestions.empty()) {
    Text += " (did you mean ";
    for (size_t I = 0; I < Suggestions.size(); ++I)
      Text += (I ? " or '" : "'") + Suggestions[I] + "'";
    Text += "?)";
  } else {
    Text += " (expected " + allModelShortNames() + ")";
  }
  return Text;
}

bool CommandLine::applyRunOptions(RunConfig &Config,
                                  std::string &Error) const {
  std::string Model = get("model", "quasi");
  if (std::optional<ModelKind> Kind = parseModelName(Model)) {
    Config.Model = *Kind;
  } else {
    Error = unknownModelDiagnostic(Model);
    return false;
  }

  std::string Oracle = get("oracle", "first");
  if (Oracle == "first") {
    Config.Oracle = [] { return std::make_unique<FirstFitOracle>(); };
  } else if (Oracle == "last") {
    Config.Oracle = [] { return std::make_unique<LastFitOracle>(); };
  } else if (Oracle.rfind("random:", 0) == 0) {
    uint64_t Seed = 0;
    if (!parseUint(Oracle.substr(7), Seed)) {
      Error = "malformed oracle seed in '" + Oracle + "'";
      return false;
    }
    Config.Oracle = [Seed] { return std::make_unique<RandomOracle>(Seed); };
  } else {
    Error = "unknown oracle '" + Oracle + "'";
    return false;
  }

  Config.Entry = get("entry", "main");
  if (has("input")) {
    Config.Interp.InputTape.clear();
    if (!parseTape(get("input"), Config.Interp.InputTape, Error))
      return false;
  }
  if (has("words")) {
    if (!parseUint(get("words"), Config.MemConfig.AddressWords) ||
        Config.MemConfig.AddressWords < 3) {
      Error = "invalid --words value '" + get("words") +
              "' (expected an integer >= 3)";
      return false;
    }
  }
  if (has("steps")) {
    if (!parseUint(get("steps"), Config.Interp.StepLimit)) {
      Error = "invalid --steps value '" + get("steps") + "'";
      return false;
    }
  }
  if (has("timeout-ms")) {
    if (!parseUint(get("timeout-ms"), Config.Interp.WallTimeoutMs)) {
      Error = "invalid --timeout-ms value '" + get("timeout-ms") + "'";
      return false;
    }
  }
  if (has("inject")) {
    std::string PlanError;
    std::optional<FaultPlan> Plan = FaultPlan::parse(get("inject"), PlanError);
    if (!Plan) {
      Error = "invalid --inject plan: " + PlanError;
      return false;
    }
    Config.Inject = *Plan;
  }
  if (has("loose")) {
    Config.Interp.Discipline = TypeDiscipline::Loose;
    Config.LogicalCasts = LogicalMemory::CastBehavior::TransparentNop;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// CheckpointJournal
//===----------------------------------------------------------------------===//

namespace {

std::string journalHeader(const std::string &JobKey) {
  return JsonObject()
      .field("qcm-journal", uint64_t{1})
      .field("job", JobKey)
      .str();
}

} // namespace

bool CheckpointJournal::open(const std::string &Path,
                             const std::string &JobKey, bool Resume,
                             std::string &Error) {
  prof::Span Span("journal-open", "io");
  Span.argBool("resume", Resume);
  close();
  Cells.clear();
  if (Resume) {
    std::ifstream In(Path);
    if (In) {
      std::string Line;
      if (!std::getline(In, Line)) {
        // Empty file: treat as fresh.
      } else {
        std::string Raw;
        bool IsString = false;
        if (!jsonExtractField(Line, "qcm-journal", Raw, IsString) ||
            !jsonExtractField(Line, "job", Raw, IsString) || !IsString) {
          Error = "'" + Path + "' is not a qcm-check journal";
          return false;
        }
        if (Raw != JobKey) {
          Error = "journal '" + Path +
                  "' was written for a different job (programs or "
                  "grid-shaping options changed); refusing to resume";
          return false;
        }
        while (std::getline(In, Line)) {
          size_t Index = 0;
          RunResult R;
          if (!decodeRunResult(Line, Index, R))
            break; // truncated tail from a killed run: replay what we have
          Cells[Index] = std::move(R);
        }
      }
    }
    // (Missing file: nothing to replay, start journaling from scratch.)
  }
  // Rewrite rather than append — a killed run can leave a torn final line —
  // and rewrite *atomically*: contents go to PATH.tmp and rename over PATH
  // once synced, so a crash during open never destroys the previous
  // generation of the journal. Cells merge in plan order, so replaying them
  // in index order reproduces an uninterrupted journal byte-for-byte.
  std::string TmpPath = Path + ".tmp";
  Out = std::fopen(TmpPath.c_str(), "w");
  if (!Out) {
    Error = "cannot open journal '" + TmpPath + "' for writing";
    return false;
  }
  std::string Contents = journalHeader(JobKey) + "\n";
  for (const auto &[Index, R] : Cells)
    Contents += encodeRunResult(Index, R) + "\n";
  if (std::fwrite(Contents.data(), 1, Contents.size(), Out) !=
          Contents.size() ||
      std::fflush(Out) != 0) {
    Error = "error writing journal '" + TmpPath + "'";
    close();
    return false;
  }
  // The rename must not land before the data: sync the tmp file first (in
  // sync mode and, cheaply, also without — open happens once per run).
  ::fsync(::fileno(Out));
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    Error = "cannot rename '" + TmpPath + "' to '" + Path + "'";
    close();
    return false;
  }
  UnsyncedRecords = 0;
  Span.arg("replayed", static_cast<uint64_t>(Cells.size()));
  return true;
}

const RunResult *CheckpointJournal::cached(size_t Index) const {
  auto It = Cells.find(Index);
  return It == Cells.end() ? nullptr : &It->second;
}

void CheckpointJournal::record(size_t Index, const RunResult &R) {
  if (!Out || Cells.count(Index))
    return;
  std::string Line = encodeRunResult(Index, R) + "\n";
  std::fwrite(Line.data(), 1, Line.size(), Out);
  // Always flush to the OS — a process crash loses at most the in-progress
  // line. In sync mode, additionally fsync in batches so a *machine* crash
  // loses at most SyncBatch records.
  std::fflush(Out);
  if (Sync && ++UnsyncedRecords >= SyncBatch) {
    ::fsync(::fileno(Out));
    UnsyncedRecords = 0;
    prof::counterAdd("journal.fsyncs", 1);
  }
  // A span per record would swamp the trace; a counter keeps journal write
  // volume visible in the metrics document instead.
  prof::counterAdd("journal.records", 1);
}

void CheckpointJournal::close() {
  if (!Out)
    return;
  std::fflush(Out);
  if (Sync && UnsyncedRecords > 0) {
    ::fsync(::fileno(Out));
    UnsyncedRecords = 0;
  }
  std::fclose(Out);
  Out = nullptr;
}

bool CommandLine::applyExplorationOptions(ExplorationOptions &Exec,
                                          std::string &Error) const {
  if (has("jobs")) {
    std::string Jobs = get("jobs");
    if (Jobs == "auto") {
      Exec.Jobs = 0;
    } else {
      try {
        Exec.Jobs = static_cast<unsigned>(std::stoul(Jobs));
      } catch (const std::exception &) {
        Error = "invalid --jobs value '" + Jobs + "'";
        return false;
      }
      // An explicit worker count is a deliberate request: honor it even on
      // grids below the small-grid inline threshold. Only --jobs=auto and
      // the default leave the heuristic in charge.
      if (Exec.Jobs > 1)
        Exec.InlineThreshold = 0;
    }
  }
  if (has("fail-fast"))
    Exec.FailFast = true;
  return true;
}
