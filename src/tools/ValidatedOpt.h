//===- tools/ValidatedOpt.h - Translation-validated pipelines ---*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The glue that makes qcm-opt a translation-validated optimizer: build a
/// pipeline from a PipelineSpec, run it with a validator that hands every
/// pass application to refinement/Validate.h under the requested models,
/// and on rejection capture the provenance (pass, element, iteration,
/// functions), the refuting model/context/counterexample, and a
/// delta-reduced reproducer of the program the pass mis-transformed.
///
/// Model filtering happens here: an application is checked only under the
/// models its pass *claims* validity for (PassInfo::ValidUnder). Requested
/// models a pass does not claim are counted as skipped, not failed — `dae`
/// under --validate=concrete is the paper's own counterexample, not a
/// compiler bug.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_TOOLS_VALIDATEDOPT_H
#define QCM_TOOLS_VALIDATEDOPT_H

#include "opt/PipelineSpec.h"
#include "refinement/Validate.h"

#include <optional>
#include <string>
#include <vector>

namespace qcm_tools {

/// What to run and how hard to check it.
struct ValidatedOptOptions {
  qcm::PipelineSpec Spec;
  qcm::PassFactoryOptions Factory;
  /// Bound for plain fix(...) groups (the --iterations flag).
  unsigned DefaultFixIterations = 8;
  /// Models to validate every application under; empty = no validation.
  std::vector<qcm::ModelKind> Models;
  qcm::ValidationBudget Budget;
  /// Delta-reduce a failing application's input program to a minimal
  /// reproducer (costs extra validation runs on failure only).
  bool Minimize = true;
};

/// Everything the tool reports afterwards.
struct ValidatedOptResult {
  qcm::PipelineResult Pipeline;
  /// Applications that changed the program and were checked.
  uint64_t ValidatedApplications = 0;
  /// Requested model x application combinations skipped because the pass
  /// does not claim validity under that model.
  uint64_t SkippedModelChecks = 0;
  /// Executions spent across all validations.
  uint64_t ValidationRuns = 0;

  /// Failure capture, meaningful when Pipeline.Failed is set.
  std::string FailedModels; ///< comma-separated short names
  /// The program the failing pass was handed (pretty-printed), and its
  /// delta-reduced minimal version that still makes the pass produce an
  /// invalid transformation ("" when minimization is off).
  std::string FailingInput;
  std::string MinimizedInput;
};

/// Builds the pipeline from \p Opts.Spec and runs it over \p Prog,
/// validating as configured. Returns nullopt with \p Error on a build
/// failure (unknown pass name — the caller's usage error, exit 2). A
/// *validation* failure is not an error here: it is reported through
/// Result.Pipeline.Failed and the failure fields.
std::optional<ValidatedOptResult> runValidatedPipeline(
    qcm::Program &Prog, const ValidatedOptOptions &Opts, std::string &Error);

/// The qcm-opt --metrics-out document (schema "qcm-metrics-1", tool
/// "qcm-opt"): a "pipeline" section (spec, application counts, validation
/// tallies, failure provenance), per-pass metrics rows, a "validation"
/// section (requested models, verdict, runs), and the shared
/// process/profile sections.
std::string renderOptMetricsDocument(const ValidatedOptResult &Result,
                                     const ValidatedOptOptions &Opts);

/// Writes renderOptMetricsDocument() to \p Path; false with \p Error on
/// failure.
bool writeOptMetricsJson(const std::string &Path,
                         const ValidatedOptResult &Result,
                         const ValidatedOptOptions &Opts, std::string &Error);

} // namespace qcm_tools

#endif // QCM_TOOLS_VALIDATEDOPT_H
