//===- tools/ToolSupport.h - Shared CLI plumbing ----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Option parsing and file loading shared by the command-line tools
/// (qcm-run, qcm-opt, qcm-check).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_TOOLS_TOOLSUPPORT_H
#define QCM_TOOLS_TOOLSUPPORT_H

#include "refinement/Exploration.h"
#include "semantics/Runner.h"

#include <map>
#include <string>
#include <vector>

namespace qcm_tools {

/// Reads a whole file into \p Out; false with \p Error on failure.
bool readFile(const std::string &Path, std::string &Out, std::string &Error);

/// Renders a collected memory-event trace, one human-readable line per
/// event.
std::string renderTrace(const std::vector<qcm::MemEvent> &Events);

/// Writes \p Events to \p Path as JSONL (one JSON object per line); false
/// with \p Error on failure.
bool writeTraceJsonl(const std::string &Path,
                     const std::vector<qcm::MemEvent> &Events,
                     std::string &Error);

/// Renders run statistics under a "--- memory statistics (<model>) ---"
/// header.
std::string renderStats(const qcm::ModelStats &Stats,
                        const std::string &ModelName);

/// Minimal --key=value / --flag command line.
struct CommandLine {
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;

  bool parse(int Argc, char **Argv, std::string &Error);

  bool has(const std::string &Key) const { return Options.count(Key) != 0; }
  std::string get(const std::string &Key,
                  const std::string &Default = "") const;

  /// Applies the shared run options (--model, --oracle, --entry, --input,
  /// --words, --steps, --loose) to \p Config.
  bool applyRunOptions(qcm::RunConfig &Config, std::string &Error) const;

  /// Applies the shared exploration options: --jobs=N (N worker threads;
  /// "auto" or 0 means one per hardware thread) and --fail-fast.
  bool applyExplorationOptions(qcm::ExplorationOptions &Exec,
                               std::string &Error) const;
};

} // namespace qcm_tools

#endif // QCM_TOOLS_TOOLSUPPORT_H
