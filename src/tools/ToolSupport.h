//===- tools/ToolSupport.h - Shared CLI plumbing ----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Option parsing and file loading shared by the command-line tools
/// (qcm-run, qcm-opt, qcm-check).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_TOOLS_TOOLSUPPORT_H
#define QCM_TOOLS_TOOLSUPPORT_H

#include "refinement/Exploration.h"
#include "semantics/Runner.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qcm {
struct MatrixReport;
struct RefinementReport;
} // namespace qcm

namespace qcm_tools {

/// Documented exit codes shared by the command-line tools, so scripts can
/// dispatch on the *fault class* of a run (see docs/FAULT_INJECTION.md):
///
///   0  success — the program terminated / the target refines the source
///   1  refinement failure (qcm-check) or other checked negative verdict
///   2  bad input — usage errors, unreadable files, parse/type errors,
///      malformed option values
///   3  the execution hit undefined behavior
///   4  the execution ran out of (concrete) address space — the paper's
///      "no behavior"; injected exhaustion exits the same way
///   5  the execution was cut short: step budget or --timeout-ms watchdog
///   6  the refinement verdict is positive but incomplete: one or more grid
///      cells were quarantined after repeated worker crashes under
///      --isolate=process, so the verdict covers the surviving cells only
///      (a negative verdict still exits 1 — counterexamples outrank gaps)
enum ExitCode : int {
  ExitSuccess = 0,
  ExitCheckFailed = 1,
  ExitBadInput = 2,
  ExitUndefined = 3,
  ExitOutOfMemory = 4,
  ExitTimeout = 5,
  ExitQuarantined = 6,
};

/// Process-wide signal hygiene for the tools, installed first thing in every
/// main(): SIGPIPE is ignored so writes to a dead pipe peer (a crashed
/// --isolate=process worker, a closed stdout consumer like `head`) surface
/// as EPIPE write errors instead of killing the process. Idempotent.
void installSignalHygiene();

/// The exit code classifying one run's behavior.
int exitCodeForBehavior(const qcm::Behavior &B);

/// Parses a nonempty all-digit string into \p Out, rejecting garbage and
/// overflow (unlike std::stoull, never throws).
bool parseUint(const std::string &Text, uint64_t &Out);

/// Reads a whole file into \p Out; false with \p Error on failure.
bool readFile(const std::string &Path, std::string &Out, std::string &Error);

/// Renders a collected memory-event trace, one human-readable line per
/// event.
std::string renderTrace(const std::vector<qcm::MemEvent> &Events);

/// Writes \p Events to \p Path as JSONL (one JSON object per line); false
/// with \p Error on failure.
bool writeTraceJsonl(const std::string &Path,
                     const std::vector<qcm::MemEvent> &Events,
                     std::string &Error);

/// Renders run statistics under a "--- memory statistics (<model>) ---"
/// header.
std::string renderStats(const qcm::ModelStats &Stats,
                        const std::string &ModelName);

/// The deterministic half of the metrics document: one JSON object with the
/// report's verdict, run counters, and aggregate ModelStats. Everything in
/// it derives from the merged report only, so it is byte-identical at every
/// --jobs level (covered by exploration_test).
std::string metricsAggregateJson(const qcm::RefinementReport &Report);

/// The tool-independent sections every "qcm-metrics-1" document shares:
/// process facts (peak RSS) and the span-profiler summary (enabled flag,
/// span count, per-category histograms, counters — zero/empty when
/// profiling is off or compiled out). Both qcm-check's and qcm-opt's
/// metrics documents embed these verbatim.
std::string metricsProcessJson();
std::string metricsProfileJson();

/// The full --metrics-out document (schema "qcm-metrics-1"): the aggregate
/// object above, the nondeterministic pool-timing section
/// (PoolMetrics::toJson), process facts (peak RSS), and a summary of the
/// span profiler (enabled flag, span count, per-category histograms,
/// counters — all zero/empty when profiling is off or compiled out).
std::string renderMetricsDocument(const qcm::RefinementReport &Report,
                                  const std::string &Tool);

/// Writes renderMetricsDocument() to \p Path; false with \p Error on
/// failure.
bool writeMetricsJson(const std::string &Path,
                      const qcm::RefinementReport &Report,
                      const std::string &Tool, std::string &Error);

/// The matrix-mode (--models) metrics document: the same "qcm-metrics-1"
/// envelope with the aggregate and pool sections summed over every cell,
/// plus a "matrix" section — the model list (registry short names) and one
/// verdict row per cell in source-major cell order. Everything except the
/// pool section is byte-identical at every --jobs level.
std::string renderMatrixMetricsDocument(const qcm::MatrixReport &Report,
                                        const std::string &Tool);

/// Writes renderMatrixMetricsDocument() to \p Path; false with \p Error on
/// failure.
bool writeMatrixMetricsJson(const std::string &Path,
                            const qcm::MatrixReport &Report,
                            const std::string &Tool, std::string &Error);

/// The exit-2 diagnostic for an unknown model name: "unknown model '...'"
/// plus either a did-you-mean list (edit distance <= 2 against every short
/// name and alias in the registry) or, when nothing is close, the full list
/// of accepted short names. Shared by every tool that parses a model flag.
std::string unknownModelDiagnostic(const std::string &Name);

/// Minimal --key=value / --flag command line.
struct CommandLine {
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;

  bool parse(int Argc, char **Argv, std::string &Error);

  bool has(const std::string &Key) const { return Options.count(Key) != 0; }
  std::string get(const std::string &Key,
                  const std::string &Default = "") const;

  /// Applies the shared run options (--model, --oracle, --entry, --input,
  /// --words, --steps, --loose, --inject, --timeout-ms) to \p Config.
  /// Malformed values (non-numeric counts, bad tape syntax, unknown fault
  /// plans) fail with a diagnostic instead of throwing.
  bool applyRunOptions(qcm::RunConfig &Config, std::string &Error) const;

  /// Applies the shared exploration options: --jobs=N (N worker threads;
  /// "auto" or 0 means one per hardware thread) and --fail-fast.
  bool applyExplorationOptions(qcm::ExplorationOptions &Exec,
                               std::string &Error) const;
};

/// Shared --profile=FILE handling, front half: when the flag is present,
/// turns span recording on and names the calling thread "main". Call before
/// any instrumented work. A no-op (recording stays off) without the flag,
/// and effectively a no-op when profiling is compiled out.
void applyProfileOption(const CommandLine &Cmd);

/// Shared --profile=FILE handling, back half: writes the Chrome trace to
/// the flag's path. True when the flag is absent (nothing to do) or the
/// write succeeded; false with \p Error on I/O failure. In a compiled-out
/// build the file is still written — a valid, empty trace — so scripted
/// pipelines need no build-flavor conditionals.
bool finishProfile(const CommandLine &Cmd, std::string &Error);

/// JSONL journal of completed refinement-grid cells, the persistence half
/// of qcm-check's --journal/--resume. Line 1 is a header binding the
/// journal to one job (a caller-computed key over the programs and the
/// grid-shaping options); each further line is one cell's RunResult
/// (semantics/ResultCodec.h), in whatever order cells merged. Every record
/// is flushed as written, so a killed run loses at most its in-progress
/// line — load() tolerates a truncated tail. Replayed through
/// ExplorationPlan::Cached, journaled cells skip execution entirely, and
/// because the grid is deterministic the resumed report is byte-identical
/// to an uninterrupted run's.
///
/// Durability: the (re)written journal is created atomically — contents go
/// to PATH.tmp, fsync, then rename over PATH — so a crash mid-open never
/// destroys the previous journal generation. Appends always flush to the
/// OS; with setSync(true) (--journal-sync) they additionally fsync in
/// batches of SyncBatch records (and at close), bounding data loss across
/// a machine crash — not just a process crash — to one batch.
class CheckpointJournal {
public:
  CheckpointJournal() = default;
  ~CheckpointJournal() { close(); }
  CheckpointJournal(const CheckpointJournal &) = delete;
  CheckpointJournal &operator=(const CheckpointJournal &) = delete;

  /// Records per fsync when sync mode is on.
  static constexpr unsigned SyncBatch = 16;

  /// Durable-append mode (--journal-sync); call before open().
  void setSync(bool On) { Sync = On; }

  /// Opens \p Path. With \p Resume, an existing journal is first loaded
  /// (its header's job key must equal \p JobKey), then the file is
  /// rewritten from the loaded cells — dropping any torn final line a
  /// killed run left behind — and further cells append after it. Without
  /// \p Resume the file is started fresh. Missing file + Resume is not an
  /// error: there is simply nothing to replay.
  bool open(const std::string &Path, const std::string &JobKey, bool Resume,
            std::string &Error);

  /// The journaled result for cell \p Index, or null.
  const qcm::RunResult *cached(size_t Index) const;

  /// Appends cell \p Index unless it was loaded from the journal already
  /// (replayed cells must not duplicate their lines), then flushes.
  void record(size_t Index, const qcm::RunResult &R);

  /// Final flush (+fsync in sync mode) and close. Idempotent; the
  /// destructor calls it.
  void close();

  size_t cachedCount() const { return Cells.size(); }

private:
  std::map<size_t, qcm::RunResult> Cells;
  std::FILE *Out = nullptr;
  bool Sync = false;
  unsigned UnsyncedRecords = 0;
};

} // namespace qcm_tools

#endif // QCM_TOOLS_TOOLSUPPORT_H
