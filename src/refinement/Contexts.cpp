//===- refinement/Contexts.cpp --------------------------------------------===//

#include "refinement/Contexts.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"

using namespace qcm;

std::optional<Program>
qcm::instantiateContext(const Program &Base, const std::string &ContextSource,
                        DiagnosticEngine &Diags) {
  std::optional<Program> Ctx = parseProgram(ContextSource, Diags);
  if (!Ctx)
    return std::nullopt;
  Program Result = Base.clone();
  for (const GlobalDecl &G : Ctx->Globals) {
    if (Result.findGlobal(G.Name)) {
      Diags.error({}, "context global '" + G.Name +
                          "' clashes with a program global");
      return std::nullopt;
    }
    Result.Globals.push_back(G);
  }
  for (FunctionDecl &F : Ctx->Functions) {
    FunctionDecl *Extern = Result.findFunction(F.Name);
    if (!Extern) {
      // A helper function private to the context.
      Result.Functions.push_back(F.clone());
      continue;
    }
    if (!Extern->isExtern()) {
      Diags.error({}, "context function '" + F.Name +
                          "' collides with a defined program function");
      return std::nullopt;
    }
    bool TypesMatch = Extern->Params.size() == F.Params.size();
    for (size_t Idx = 0; TypesMatch && Idx < F.Params.size(); ++Idx)
      TypesMatch = Extern->Params[Idx].Ty == F.Params[Idx].Ty;
    if (!TypesMatch) {
      Diags.error({}, "context function '" + F.Name +
                          "' parameter list does not match the extern");
      return std::nullopt;
    }
    *Extern = F.clone();
  }
  if (!typeCheck(Result, Diags))
    return std::nullopt;
  return Result;
}

//===----------------------------------------------------------------------===//
// Standard contexts
//===----------------------------------------------------------------------===//

std::string qcm::contexts::noop(const std::string &FnName,
                                const std::string &Params) {
  return FnName + "(" + Params + ") { var int unused_zero;\n"
                                 "  unused_zero = 0;\n}\n";
}

std::string qcm::contexts::addressGuesserWriter(const std::string &FnName,
                                                Word GuessAddress,
                                                Word ValueToWrite,
                                                const std::string &Params) {
  return FnName + "(" + Params + ") { var ptr forged;\n" +
         "  forged = (ptr) " + wordToString(GuessAddress) + ";\n" +
         "  *forged = " + wordToString(ValueToWrite) + ";\n}\n";
}

std::string qcm::contexts::addressGuesserReader(const std::string &FnName,
                                                Word GuessAddress,
                                                const std::string &Params) {
  return FnName + "(" + Params + ") { var ptr forged, int leaked;\n" +
         "  forged = (ptr) " + wordToString(GuessAddress) + ";\n" +
         "  leaked = *forged;\n" + "  output(leaked);\n}\n";
}

std::string qcm::contexts::memoryExhauster(const std::string &FnName,
                                           Word Blocks,
                                           const std::string &Params) {
  return FnName + "(" + Params +
         ") { var int n, int a, ptr hog;\n"
         "  n = " +
         wordToString(Blocks) +
         ";\n"
         "  while (n) {\n"
         "    hog = malloc(1);\n"
         "    a = (int) hog;\n"
         "    n = n - 1;\n"
         "  }\n}\n";
}

std::string qcm::contexts::exhaustThenMark(const std::string &FnName,
                                           Word Blocks, Word Marker,
                                           const std::string &Params) {
  return FnName + "(" + Params +
         ") { var int n, int a, ptr hog;\n"
         "  n = " +
         wordToString(Blocks) +
         ";\n"
         "  while (n) {\n"
         "    hog = malloc(1);\n"
         "    a = (int) hog;\n"
         "    n = n - 1;\n"
         "  }\n"
         "  output(" +
         wordToString(Marker) + ");\n}\n";
}

std::string qcm::contexts::allocateThenMark(const std::string &FnName,
                                            Word Blocks, Word Marker,
                                            const std::string &Params) {
  return FnName + "(" + Params +
         ") { var int n, ptr hog;\n"
         "  n = " +
         wordToString(Blocks) +
         ";\n"
         "  while (n) {\n"
         "    hog = malloc(1);\n"
         "    n = n - 1;\n"
         "  }\n"
         "  output(" +
         wordToString(Marker) + ");\n}\n";
}

std::string qcm::contexts::outputMarker(const std::string &FnName,
                                        Word Marker,
                                        const std::string &Params) {
  return FnName + "(" + Params + ") { var int unused_zero;\n" +
         "  unused_zero = 0;\n  output(" + wordToString(Marker) + ");\n}\n";
}

std::string qcm::contexts::writeThroughArg(const std::string &FnName,
                                           Word V) {
  return FnName + "(ptr ctx_p) { var int unused_zero;\n  unused_zero = 0;\n" +
         "  *ctx_p = " + wordToString(V) + ";\n}\n";
}

std::string qcm::contexts::readArgAndOutput(const std::string &FnName) {
  return FnName + "(ptr ctx_p) { var int ctx_v;\n"
                  "  ctx_v = *ctx_p;\n"
                  "  output(ctx_v);\n}\n";
}

std::string qcm::contexts::castArgAndOutput(const std::string &FnName) {
  return FnName + "(ptr ctx_p) { var int ctx_a;\n"
                  "  ctx_a = (int) ctx_p;\n"
                  "  output(ctx_a);\n}\n";
}
