//===- refinement/Simulation.h - Local simulation checking ------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mechanized analogue of the paper's local simulation proofs
/// (Section 5.3). A proof is a script: the author states which invariant
/// holds at the function entry, at each unknown (extern) call, and at the
/// return; the checker co-executes the source and target machines between
/// those sync points and discharges the proof obligations mechanically:
///
///   entry:        beta_s holds; arguments equivalent w.r.t. alpha;
///   at each call: both executions stop at the *same* unknown call with the
///                 same event trace; the author's beta_c holds on the
///                 current memories; beta_prev |= beta_c (future
///                 invariant); call arguments are equivalent;
///   call return:  the (concretely instantiated) unknown function ran; the
///                 same beta_c must hold again — i.e. the public memories
///                 evolved equivalently and the private memories are
///                 untouched (beta_c =prv beta_r is enforced because the
///                 invariant stores the private contents);
///   return:       beta_e holds, beta_prev |= beta_e, and beta_s =prv
///                 beta_e — the function hands back the private memories it
///                 was given.
///
/// Undefined behavior in the source discharges the whole proof (the source
/// admits everything); out-of-memory in the target likewise (its partial
/// behavior is admitted because the traces are synchronized). Undefined
/// behavior in the target, or desynchronized traces, fail the proof.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_SIMULATION_H
#define QCM_REFINEMENT_SIMULATION_H

#include "refinement/Exploration.h"
#include "refinement/Invariant.h"
#include "semantics/Runner.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace qcm {

/// Author callback manipulating the invariant at a sync point. May extend
/// the bijection, move blocks between private and public sections, or drop
/// private blocks. Returns an explanation to abort the proof.
using InvariantUpdate = std::function<std::optional<std::string>(
    MemoryInvariant &Inv, Machine &Src, Machine &Tgt)>;

/// Concrete instantiation of an unknown function's effect, applied to both
/// executions at a synchronized call. Receives the (already equivalent)
/// argument vectors. Returns an explanation to abort the proof.
using ContextAction = std::function<std::optional<std::string>(
    Machine &Src, const std::vector<Value> &SrcArgs, Machine &Tgt,
    const std::vector<Value> &TgtArgs)>;

/// Configuration of one simulation proof.
struct SimulationSetup {
  const Program *Src = nullptr;
  const Program *Tgt = nullptr;
  RunConfig SrcConfig;
  RunConfig TgtConfig;
};

/// The proof driver. Use begin(), then expectCall() per unknown call, then
/// expectReturn(). Every method returns nullopt on success or a description
/// of the violated obligation.
class SimulationChecker {
public:
  explicit SimulationChecker(const SimulationSetup &Setup);
  ~SimulationChecker();

  /// Sets up globals and entry arguments on both sides, establishes the
  /// initial invariant via \p Init (which should relate globals and
  /// argument blocks), and checks it together with entry-argument
  /// equivalence.
  std::optional<std::string> begin(InvariantUpdate Init);

  /// Runs both executions to the next sync point, which must be a call to
  /// extern \p Callee. Discharges the call obligations with the invariant
  /// produced by \p Update, then applies \p Action (nullptr: the do-nothing
  /// context) and re-checks the invariant on return.
  std::optional<std::string> expectCall(const std::string &Callee,
                                        InvariantUpdate Update,
                                        ContextAction Action = nullptr);

  /// Runs both executions to completion and discharges the return
  /// obligations with the invariant produced by \p Update.
  std::optional<std::string> expectReturn(InvariantUpdate Update);

  /// True once the proof is discharged trivially (source undefined
  /// behavior, or target out-of-memory).
  bool discharged() const { return Discharged; }

  /// Why the proof was discharged early, when discharged().
  const std::string &dischargeReason() const { return DischargeReason; }

  Machine &src() { return *SrcMachine; }
  Machine &tgt() { return *TgtMachine; }

  /// Entry argument values, as materialized on each side.
  const std::vector<Value> &srcArgs() const { return SrcArgs; }
  const std::vector<Value> &tgtArgs() const { return TgtArgs; }

private:
  struct SyncPoint {
    enum class Kind { Call, Finished, SrcDischarge, TgtDischarge };
    Kind PointKind = Kind::Finished;
    std::string Callee;
    std::vector<Value> SrcCallArgs, TgtCallArgs;
  };

  /// Runs both machines to their next signal and classifies the pair.
  std::optional<SyncPoint> advanceBoth(std::string &Error);

  /// Common obligation block: invariant holds, evolution from the previous
  /// checkpoint is legal; pushes the new checkpoint.
  std::optional<std::string> establish(MemoryInvariant Inv);

  bool valueEquivAtCall(const Value &S, const Value &T) const;

  const SimulationSetup &Setup;
  std::unique_ptr<Machine> SrcMachine;
  std::unique_ptr<Machine> TgtMachine;
  std::vector<Value> SrcArgs, TgtArgs;

  std::vector<InvariantCheckpoint> Checkpoints; // [0] is the entry beta_s
  bool Begun = false;
  bool NeedsResume = false;
  bool Discharged = false;
  std::string DischargeReason;
};

//===----------------------------------------------------------------------===//
// Option exploration
//===----------------------------------------------------------------------===//

/// A complete proof script: drives one SimulationChecker through begin /
/// expectCall* / expectReturn and returns the first violated obligation, or
/// nullopt when the proof is discharged. Scripts passed to
/// checkSimulationOptions() run concurrently on different checkers when
/// Jobs > 1, so they must not touch shared mutable state — the author
/// callbacks they install (InvariantUpdate, ContextAction) included.
using SimulationScript =
    std::function<std::optional<std::string>(SimulationChecker &)>;

/// One option variant of a proof: the same script checked under a different
/// configuration (placement oracle, address-space size, model pairing, ...).
struct SimulationOption {
  std::string Name;
  SimulationSetup Setup;
};

/// Verdict for one option.
struct SimulationOptionResult {
  std::string Name;
  bool Holds = false;
  /// The proof was settled early (source undefined behavior / target OOM).
  bool Discharged = false;
  /// Violated obligation when !Holds; discharge reason when Discharged.
  std::string Detail;
};

/// Verdict of a sweep.
struct SimulationSweepReport {
  bool AllHold = true;
  std::vector<SimulationOptionResult> PerOption;
  /// Options merged into the report (deterministic across thread counts;
  /// see RefinementReport::RunsPerformed for the same convention).
  uint64_t OptionsChecked = 0;

  std::string toString() const;
};

/// Runs \p Script once per option through the exploration engine. Options
/// are independent — each gets its own checker, machines, and memories —
/// so Exec.Jobs > 1 checks them concurrently; results are merged in option
/// order and Exec.FailFast cancels outstanding options once one fails.
SimulationSweepReport
checkSimulationOptions(const std::vector<SimulationOption> &Options,
                       const SimulationScript &Script,
                       const ExplorationOptions &Exec = {});

/// Convenience: the same SimulationSetup swept across a set of placement
/// oracles (applied to both sides), named by \p OracleNames.
std::vector<SimulationOption>
oracleOptions(const SimulationSetup &Base,
              const std::vector<std::pair<std::string, OracleFactory>>
                  &NamedOracles);

/// Library of reusable context actions.
namespace sim_actions {

/// Stores \p V through the first argument (which must be an equivalent
/// pointer pair) on both sides.
ContextAction writeThroughFirstArg(Word V);

/// Casts the first pointer argument to an integer on both sides (the
/// hash_put effect of Figure 3: publication realizes the block).
ContextAction castFirstArg();

} // namespace sim_actions

} // namespace qcm

#endif // QCM_REFINEMENT_SIMULATION_H
