//===- refinement/Invariant.h - Memory invariants of Section 5 --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reasoning-principle data structures of Section 5.2:
///
/// * value equivalence w.r.t. a bijection alpha between block identifiers;
/// * memory equivalence m_src ~alpha m_tgt for the public sections, with the
///   concrete/logical case matrix of Figure 7 (source-concrete requires
///   target-concrete at the same address; target-concrete with
///   source-logical is allowed);
/// * memory invariants beta = (alpha, m_prv:src, m_prv:tgt), where private
///   source blocks must be logical;
/// * the future-invariant relation beta_s |= beta_c (alpha non-decreasing;
///   per-block: size unchanged, no resurrection, no concrete->logical), and
/// * private-section preservation beta_c =prv beta_r.
///
/// Cross-model simulations (quasi-concrete source against fully concrete
/// target, Section 6.5) are supported by extending value equivalence: a
/// source logical address is equivalent to the target integer that reifies
/// it in the corresponding (necessarily concrete) target block.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_INVARIANT_H
#define QCM_REFINEMENT_INVARIANT_H

#include "memory/Memory.h"

#include <map>
#include <set>
#include <string>

namespace qcm {

/// An id-indexed view of a memory's blocks, built from Memory::snapshot();
/// gives uniform access across all three models.
class BlockView {
public:
  explicit BlockView(const Memory &Mem);

  const Block *find(BlockId Id) const;
  const std::map<BlockId, Block> &blocks() const { return Table; }

private:
  std::map<BlockId, Block> Table;
};

/// A partial bijection between source and target block identifiers.
class Bijection {
public:
  Bijection();

  /// Relates source block \p S to target block \p T. Returns false (and
  /// changes nothing) if either side is already related differently.
  bool add(BlockId S, BlockId T);

  std::optional<BlockId> toTarget(BlockId S) const;
  std::optional<BlockId> toSource(BlockId T) const;

  /// True if every pair of \p Other is also a pair of *this.
  bool includes(const Bijection &Other) const;

  const std::map<BlockId, BlockId> &forward() const { return Fwd; }
  size_t size() const { return Fwd.size(); }

private:
  std::map<BlockId, BlockId> Fwd;
  std::map<BlockId, BlockId> Bwd;
};

/// Value equivalence w.r.t. \p Alpha (Section 5.2). \p TgtView resolves the
/// cross-model case (source pointer vs. target integer); pass nullptr to
/// restrict to the same-model rules.
bool valuesEquivalent(const Bijection &Alpha, const Value &Src,
                      const Value &Tgt, const BlockView *TgtView);

/// A memory invariant beta = (alpha, m_prv:src, m_prv:tgt). The private
/// sections store full expected block states, so that "the private memories
/// are untouched" is checkable.
class MemoryInvariant {
public:
  Bijection Alpha;
  std::map<BlockId, Block> PrivateSrc;
  std::map<BlockId, Block> PrivateTgt;

  /// Marks source block \p Id private, recording its current state from
  /// \p Mem. Fails (returns an explanation) if the block is concrete —
  /// private source blocks must be logical (Figure 7) — or already public
  /// in Alpha.
  std::optional<std::string> addPrivateSrc(BlockId Id, const Memory &Mem);

  /// Marks target block \p Id private (any realization state is allowed).
  std::optional<std::string> addPrivateTgt(BlockId Id, const Memory &Mem);

  /// Removes a block from the private source section (e.g. to transfer
  /// ownership to the public section or to discard it).
  void dropPrivateSrc(BlockId Id) { PrivateSrc.erase(Id); }
  void dropPrivateTgt(BlockId Id) { PrivateTgt.erase(Id); }

  /// Checks that the invariant holds on (\p SrcMem, \p TgtMem): the private
  /// sections are present and unchanged (and source-private blocks still
  /// logical), the sections are disjoint from the public domain of Alpha,
  /// and all Alpha-related block pairs are equivalent. Returns the first
  /// violation, or nullopt.
  std::optional<std::string> holdsOn(const Memory &SrcMem,
                                     const Memory &TgtMem) const;

  /// The =prv relation: same private sections with identical contents.
  bool samePrivateAs(const MemoryInvariant &Other) const;
};

/// A checkpoint: an invariant together with the memories it was checked
/// against, for evolution (future-invariant) checking.
struct InvariantCheckpoint {
  MemoryInvariant Inv;
  BlockView SrcView;
  BlockView TgtView;

  InvariantCheckpoint(MemoryInvariant Inv, const Memory &SrcMem,
                      const Memory &TgtMem)
      : Inv(std::move(Inv)), SrcView(SrcMem), TgtView(TgtMem) {}
};

/// The future-invariant relation Earlier |= Later (Section 5.3). Checks
/// alpha inclusion and, for each publicly related block of Earlier, the
/// per-block evolution conditions on both sides: size unchanged, invalid
/// blocks stay invalid, concrete blocks stay concrete. Returns the first
/// violation, or nullopt.
std::optional<std::string>
checkFutureInvariant(const InvariantCheckpoint &Earlier,
                     const InvariantCheckpoint &Later);

/// Checks the block-pair equivalence conditions of Section 5.2 for one
/// alpha-related pair: same size and validity; source-concrete implies
/// target-concrete at the same address (unless \p TgtFullyConcrete, where
/// realization on the target side is vacuous); equivalent contents when
/// valid.
std::optional<std::string>
blocksEquivalent(const Bijection &Alpha, BlockId SrcId, const Block &Src,
                 BlockId TgtId, const Block &Tgt, const BlockView &TgtView,
                 bool TgtFullyConcrete);

} // namespace qcm

#endif // QCM_REFINEMENT_INVARIANT_H
