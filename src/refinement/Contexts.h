//===- refinement/Contexts.h - Program contexts -----------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper quantifies compiler correctness over arbitrary program
/// contexts — the unknown functions (g, bar, gee, hash_put, ...) its
/// examples call. We model a context as language-level source text defining
/// bodies for a program's extern functions; instantiating a context splices
/// those bodies in. Because contexts are ordinary programs, they have
/// exactly the capabilities the paper grants them: they can allocate, do
/// arithmetic, cast integers to pointers (and thereby "guess" addresses —
/// well-defined in the concrete model, undefined in the quasi-concrete model
/// unless the guess reifies a valid realized address), and perform I/O. They
/// cannot forge logical addresses, which is precisely the ownership
/// guarantee of the logical models.
///
/// A small library of standard adversaries used throughout the experiments
/// is provided.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_CONTEXTS_H
#define QCM_REFINEMENT_CONTEXTS_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace qcm {

/// Splices the functions defined by \p ContextSource into \p Base: each
/// context function replaces the extern declaration of the same name (whose
/// parameter list must match); context globals are appended. The result is
/// type checked. Returns nullopt and reports to \p Diags on any mismatch.
std::optional<Program> instantiateContext(const Program &Base,
                                          const std::string &ContextSource,
                                          DiagnosticEngine &Diags);

/// Standard contexts. Each returns source text defining one or more
/// functions; adapt the function name to the extern it instantiates.
namespace contexts {

/// A context that does nothing.
std::string noop(const std::string &FnName,
                 const std::string &Params = "");

/// The address guesser of Section 1: casts the integer \p GuessAddress to a
/// pointer and stores \p ValueToWrite through it. In the concrete model the
/// cast always succeeds and the store hits whatever lives there; in the
/// quasi-concrete model the cast is undefined behavior unless the guess
/// reifies a valid (realized) address.
std::string addressGuesserWriter(const std::string &FnName, Word GuessAddress,
                                 Word ValueToWrite,
                                 const std::string &Params = "");

/// Reads through a guessed address and outputs the value — leaks
/// supposedly-private memory into the observable trace.
std::string addressGuesserReader(const std::string &FnName, Word GuessAddress,
                                 const std::string &Params = "");

/// Allocates \p Blocks fresh one-word blocks and casts each to an integer,
/// consuming concrete address space; exercises out-of-memory behavior and
/// the dead-allocation-elimination arguments.
std::string memoryExhauster(const std::string &FnName, Word Blocks,
                            const std::string &Params = "");

/// Emits output(\p Marker): makes the call observable, separating event
/// prefixes before and after the call.
std::string outputMarker(const std::string &FnName, Word Marker,
                         const std::string &Params = "");

/// Exhausts \p Blocks one-word realized blocks, then outputs \p Marker.
/// The sharpest probe of address-space consumption: an execution that dies
/// realizing the blocks never reaches the marker (partial behavior), one
/// that survives emits it — distinguishing programs that differ only in
/// how much concrete space they hold (Figure 5, Section 3.7).
std::string exhaustThenMark(const std::string &FnName, Word Blocks,
                            Word Marker, const std::string &Params = "");

/// Allocates \p Blocks one-word blocks WITHOUT casting any of them, then
/// outputs \p Marker. A pure allocator: in models where uncast allocations
/// never fail (logical memory, the two-phase infinite phase) it always
/// reaches the marker, so it observes exactly whether someone else's cast
/// already made memory finite.
std::string allocateThenMark(const std::string &FnName, Word Blocks,
                             Word Marker, const std::string &Params = "");

/// For externs taking one ptr parameter: stores \p V through it.
std::string writeThroughArg(const std::string &FnName, Word V);

/// For externs taking one ptr parameter: loads through it (as an int) and
/// outputs the value.
std::string readArgAndOutput(const std::string &FnName);

/// For externs taking one ptr parameter: casts it to an integer and outputs
/// the resulting address — observes the pointer's concrete representation.
std::string castArgAndOutput(const std::string &FnName);

} // namespace contexts

} // namespace qcm

#endif // QCM_REFINEMENT_CONTEXTS_H
