//===- refinement/BehaviorSet.h - Behavior-set inclusion --------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioral refinement (Section 2.3): the target's behavior set must be
/// included in the source's. The inclusion rules implemented here:
///
/// * a source behavior (es, undef) stands for *all* behaviors extending es,
///   so it admits any target behavior whose events extend es;
/// * a terminating target behavior (es, term) is admitted by an identical
///   terminating source behavior;
/// * a partial target behavior (es, partial) — out-of-memory, following
///   CompCertTSO, or our step-limit approximation of divergence — is
///   admitted whenever the source can produce an extension of es;
/// * an undefined target behavior requires source undefined behavior on a
///   prefix.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_BEHAVIORSET_H
#define QCM_REFINEMENT_BEHAVIORSET_H

#include "semantics/Behavior.h"

#include <string>
#include <vector>

namespace qcm {

/// A set of observed behaviors (deduplicated).
class BehaviorSet {
public:
  /// Inserts \p B if not already present.
  void insert(Behavior B);

  const std::vector<Behavior> &behaviors() const { return Behaviors; }
  bool empty() const { return Behaviors.empty(); }
  size_t size() const { return Behaviors.size(); }

  /// True if this set contains a behavior satisfying the given predicate
  /// kind.
  bool containsKind(Behavior::Kind Kind) const;

  std::string toString() const;

private:
  std::vector<Behavior> Behaviors;
};

/// True if \p Tgt is admitted by the source behavior set \p Src under the
/// Section 2.3 rules.
bool behaviorAdmitted(const Behavior &Tgt, const BehaviorSet &Src);

/// Strict Section 2.3 admission for a *partial* target behavior (es,
/// partial), as produced by out-of-memory truncation. Under the literal
/// behavior-set inclusion of the paper, a partial behavior is an element of
/// the set like any other: the target's (es, partial) is admitted only if
/// the source set contains an out-of-memory behavior with exactly the same
/// events, or an undefined behavior whose events are a prefix of es (UB
/// stands for all extensions). This is deliberately stronger than
/// behaviorAdmitted's CompCertTSO-style rule — which admits any partial
/// whose events some source behavior extends, and under which out-of-memory
/// truncation can never produce a new counterexample — and is what the
/// exhaustion sweep checks: it makes a transformation that moves an
/// observable event across a possibly-exhausting operation detectable.
bool partialAdmittedStrict(const Behavior &Tgt, const BehaviorSet &Src);

/// Result of a behavior-set inclusion check.
struct InclusionResult {
  bool Included = true;
  /// First target behavior that the source does not admit, when !Included.
  Behavior Counterexample;

  explicit operator bool() const { return Included; }
};

/// Checks that every behavior of \p Tgt is admitted by \p Src.
InclusionResult behaviorsIncluded(const BehaviorSet &Tgt,
                                  const BehaviorSet &Src);

} // namespace qcm

#endif // QCM_REFINEMENT_BEHAVIORSET_H
