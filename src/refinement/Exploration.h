//===- refinement/Exploration.h - Parallel exploration engine ---*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exploration engine behind the refinement checker and the simulation
/// option sweep. The checkers' quantification over contexts, placement
/// oracles, and input tapes is a grid of *independent* executions; this
/// layer turns that grid into a declarative ExplorationPlan and executes it
/// on a support/ThreadPool.h worker pool with three guarantees:
///
/// * **Determinism.** Results are merged on the calling thread in plan
///   order, never completion order, so reports, BehaviorSet contents, and
///   run counters are byte-identical at any --jobs level (including 1).
/// * **Cancellation.** The merge callback may return ExploreStep::Stop
///   (counterexample found, instantiation error, fail-fast); workers then
///   stop claiming items, and in-flight items finish but are discarded.
/// * **Confinement.** Every work item builds its own Machine, Memory,
///   placement oracle, and handler map on the worker that runs it; the
///   shared inputs (QirModule, the source Program it aliases, factories)
///   are read-only during execution. See docs/EXPLORATION.md for the full
///   thread-confinement contract.
///
/// The generic core, exploreIndexed(), fans N index-addressed tasks out and
/// merges them in index order; explorePlan() layers the module×config work
/// items of the behavior explorer on top of it.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_EXPLORATION_H
#define QCM_REFINEMENT_EXPLORATION_H

#include "semantics/Runner.h"
#include "support/ThreadPool.h"

#include <functional>
#include <vector>

namespace qcm {

/// Degree-of-parallelism and early-exit policy of one exploration.
struct ExplorationOptions {
  /// Worker threads; 1 (the default) runs everything on the calling thread
  /// with zero threading overhead, 0 means one per hardware thread.
  unsigned Jobs = 1;
  /// Stop the whole exploration at the first failure (first behavior not
  /// admitted, first failing simulation option). Without it the engine
  /// still stops early on instantiation errors, but explores every grid
  /// point so reports show complete behavior sets.
  bool FailFast = false;
  /// Explorations with fewer items than this run on the calling thread even
  /// when Jobs > 1: paper-scale grids finish in tens of milliseconds, where
  /// thread startup and the in-order merge handoff cost more than the work
  /// (on a single-core host, strictly more). Reports are byte-identical
  /// either way — the serial path is the same merge in the same order — and
  /// PoolMetrics.Jobs records 1 so the inlining is visible in metrics.
  /// 0 disables inlining (tests that pin pool behavior set this).
  size_t InlineThreshold = 1024;

  /// Jobs with 0 resolved to the hardware default.
  unsigned effectiveJobs() const {
    return Jobs ? Jobs : ThreadPool::defaultConcurrency();
  }
};

/// Merge-callback verdict: keep merging or cancel the remaining items.
enum class ExploreStep { Continue, Stop };

/// Timing of one worker slot of an exploration.
struct WorkerMetrics {
  /// Wall time the slot spent inside RunItem, in microseconds.
  uint64_t BusyUs = 0;
  /// Items the slot executed (speculative in-flight items included, so
  /// this may exceed the merged count after an early stop).
  uint64_t Items = 0;
};

/// Pool-level timing of one exploration. Everything here is wall-clock and
/// therefore *nondeterministic* — it feeds the --metrics-out "pool"
/// section, never the byte-identical reports. Collected only when the span
/// profiler is compiled in (QCM_PROFILE_ENABLED); all-zero otherwise, with
/// Jobs still filled in.
struct PoolMetrics {
  /// Worker threads actually used (1 for the serial fast path).
  unsigned Jobs = 0;
  /// Wall time of the whole exploration, in microseconds.
  uint64_t WallUs = 0;
  /// Time the merging thread spent waiting for the next in-order result —
  /// the queue-wait cost of deterministic merging, in microseconds.
  uint64_t MergeWaitUs = 0;
  std::vector<WorkerMetrics> Workers;

  /// Folds \p Other in (summing scalars, concatenating workers); lets the
  /// checker combine its main-grid and sweep explorations into one view.
  void accumulate(const PoolMetrics &Other);

  /// {"jobs":N,"wall_us":...,"merge_wait_us":...,"workers":[
  ///  {"busy_us":...,"items":...},...]}
  std::string toJson() const;
};

/// Supervision counters of the process-isolation backend
/// (refinement/ProcessPool.h). Like PoolMetrics this is wall-clock-flavored
/// bookkeeping that feeds the --metrics-out "isolation" section, never the
/// byte-identical reports (the deterministic crash/quarantine *verdicts*
/// live in the report counters instead). A thread-backend run reports the
/// all-zero default with ProcessBackend=false.
struct IsolationStats {
  /// True when the run used --isolate=process.
  bool ProcessBackend = false;
  /// Worker processes forked over the run's lifetime (restarts included).
  uint64_t WorkersSpawned = 0;
  /// Respawns after a worker death (WorkersSpawned minus first launches).
  uint64_t WorkerRestarts = 0;
  /// Worker deaths observed: killed by a signal, nonzero exit, or a
  /// corrupt/foreclosed protocol stream.
  uint64_t WorkerCrashes = 0;
  /// Workers killed by the supervisor's per-item watchdog.
  uint64_t WorkerHangs = 0;
  /// Cells re-dispatched after their worker died mid-cell.
  uint64_t CellRetries = 0;
  /// Cells abandoned after exhausting the retry budget.
  uint64_t QuarantinedCells = 0;
  /// Cells executed in-process after worker spawning degraded.
  uint64_t LocalFallbackCells = 0;
  /// Total restart backoff scheduled, in milliseconds.
  uint64_t BackoffMsTotal = 0;

  void accumulate(const IsolationStats &Other);

  /// {"backend":"process","workers_spawned":...,...} — the metrics
  /// document's "isolation" section.
  std::string toJson() const;
};

/// What an exploration did.
struct ExplorationSummary {
  /// Items whose results were merged (delivered in plan order). This — not
  /// the number of speculative executions — is the deterministic notion of
  /// work the reports expose as RunsPerformed.
  uint64_t ItemsMerged = 0;
  /// True when the merge callback returned Stop.
  bool Cancelled = false;
  /// Nondeterministic pool timing of this exploration.
  PoolMetrics Pool;
};

/// Generic deterministic fan-out/merge over \p Count index-addressed tasks.
///
/// \p RunItem is invoked once per index on some worker thread (on the
/// calling thread when effectiveJobs() == 1) and must stash its result in
/// caller-owned, index-private storage. \p MergeItem is invoked on the
/// calling thread, strictly in index order, after RunItem(I) completed;
/// the engine's internal synchronization makes RunItem(I)'s writes visible
/// to MergeItem(I). Returning ExploreStep::Stop cancels all unclaimed
/// items; claimed ones finish on their workers but are never merged.
ExplorationSummary
exploreIndexed(size_t Count, const ExplorationOptions &Options,
               const std::function<void(size_t)> &RunItem,
               const std::function<ExploreStep(size_t)> &MergeItem);

/// Slot-aware variant: \p RunItem additionally receives a worker slot in
/// [0, min(effectiveJobs(), Count)), stable for the lifetime of the worker
/// that runs the item (the serial path always passes slot 0). Slots let
/// callers keep per-worker reusable state — most importantly an ExecState
/// per slot, so machine and memory storage is recycled across the items a
/// worker executes — without any synchronization: no two concurrently
/// running items ever share a slot.
ExplorationSummary
exploreIndexed(size_t Count, const ExplorationOptions &Options,
               const std::function<void(size_t, unsigned)> &RunItem,
               const std::function<ExploreStep(size_t)> &MergeItem);

/// One work item of the behavior explorer: run a compiled module under a
/// fully specified configuration (oracle and input tape already set).
struct ExplorationItem {
  std::shared_ptr<const qir::QirModule> Module;
  RunConfig Config;
  /// Invoked on the worker immediately before the run when non-null, so
  /// stateful handlers are fresh per execution and never shared between
  /// threads. Config.Handlers is ignored when this is set.
  std::function<std::map<std::string, ExternalHandler>()> MakeHandlers;
};

/// The full grid, in the order results must be merged.
struct ExplorationPlan {
  std::vector<ExplorationItem> Items;
  /// Checkpoint/resume hook: when non-null, consulted per index before the
  /// item runs; a non-null result is used verbatim (copied) instead of
  /// executing the item. This is how a resumed qcm-check replays journaled
  /// grid cells — merge order and report bytes are unchanged because the
  /// cached result flows through the same in-order merge. Must be safe to
  /// call from worker threads (a loaded journal is read-only).
  std::function<const RunResult *(size_t)> Cached;
  /// Offset from plan indices to the caller's global cell numbering (the
  /// journal index space; nonzero for matrix cells). Purely observational:
  /// it feeds the QCM_CRASH_AT testing hook and span labels, so the thread
  /// and process backends agree on which global cell a canary kills.
  size_t IndexBase = 0;
};

/// Executes \p Plan under \p Options. \p OnResult receives each item's
/// RunResult on the calling thread, in plan order (it may consume the
/// result destructively).
ExplorationSummary
explorePlan(const ExplorationPlan &Plan, const ExplorationOptions &Options,
            const std::function<ExploreStep(size_t, RunResult &)> &OnResult);

} // namespace qcm

#endif // QCM_REFINEMENT_EXPLORATION_H
