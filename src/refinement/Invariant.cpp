//===- refinement/Invariant.cpp -------------------------------------------===//

#include "refinement/Invariant.h"

#include "memory/ModelRegistry.h"

using namespace qcm;

//===----------------------------------------------------------------------===//
// BlockView
//===----------------------------------------------------------------------===//

BlockView::BlockView(const Memory &Mem) {
  for (auto &[Id, B] : Mem.snapshot())
    Table.emplace(Id, std::move(B));
}

const Block *BlockView::find(BlockId Id) const {
  auto It = Table.find(Id);
  if (It == Table.end())
    return nullptr;
  return &It->second;
}

//===----------------------------------------------------------------------===//
// Bijection
//===----------------------------------------------------------------------===//

Bijection::Bijection() {
  // The NULL blocks always correspond (Section 4 gives both sides block 0).
  Fwd.emplace(0, 0);
  Bwd.emplace(0, 0);
}

bool Bijection::add(BlockId S, BlockId T) {
  auto FwdIt = Fwd.find(S);
  if (FwdIt != Fwd.end())
    return FwdIt->second == T;
  auto BwdIt = Bwd.find(T);
  if (BwdIt != Bwd.end())
    return BwdIt->second == S;
  Fwd.emplace(S, T);
  Bwd.emplace(T, S);
  return true;
}

std::optional<BlockId> Bijection::toTarget(BlockId S) const {
  auto It = Fwd.find(S);
  if (It == Fwd.end())
    return std::nullopt;
  return It->second;
}

std::optional<BlockId> Bijection::toSource(BlockId T) const {
  auto It = Bwd.find(T);
  if (It == Bwd.end())
    return std::nullopt;
  return It->second;
}

bool Bijection::includes(const Bijection &Other) const {
  for (const auto &[S, T] : Other.Fwd) {
    auto It = Fwd.find(S);
    if (It == Fwd.end() || It->second != T)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Value equivalence
//===----------------------------------------------------------------------===//

bool qcm::valuesEquivalent(const Bijection &Alpha, const Value &Src,
                           const Value &Tgt, const BlockView *TgtView) {
  if (Src.isInt() && Tgt.isInt())
    return Src.intValue() == Tgt.intValue();
  if (Src.isPtr() && Tgt.isPtr()) {
    std::optional<BlockId> Mapped = Alpha.toTarget(Src.ptr().Block);
    return Mapped && *Mapped == Tgt.ptr().Block &&
           Src.ptr().Offset == Tgt.ptr().Offset;
  }
  // Cross-model case (Section 6.5): a source logical address corresponds to
  // the target integer it reifies to in the related target block.
  if (Src.isPtr() && Tgt.isInt() && TgtView) {
    std::optional<BlockId> Mapped = Alpha.toTarget(Src.ptr().Block);
    if (!Mapped)
      return false;
    const Block *TgtBlock = TgtView->find(*Mapped);
    if (!TgtBlock || !TgtBlock->Base)
      return false;
    return Tgt.intValue() == wrapAdd(*TgtBlock->Base, Src.ptr().Offset);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Block-pair equivalence
//===----------------------------------------------------------------------===//

std::optional<std::string>
qcm::blocksEquivalent(const Bijection &Alpha, BlockId SrcId, const Block &Src,
                      BlockId TgtId, const Block &Tgt,
                      const BlockView &TgtView, bool TgtFullyConcrete) {
  auto Describe = [&](const std::string &What) {
    return "blocks " + std::to_string(SrcId) + " ~ " +
           std::to_string(TgtId) + ": " + What;
  };
  if (Src.Valid != Tgt.Valid)
    return Describe("validity differs");
  if (Src.Size != Tgt.Size)
    return Describe("size differs");
  // The Figure 7 case matrix: source-concrete requires target-concrete at
  // the coinciding address; target-concrete with source-logical is allowed
  // (the target may have realized more than the source, never less).
  if (Src.Base) {
    if (!Tgt.Base)
      return Describe("source is concrete but target is logical");
    if (*Src.Base != *Tgt.Base)
      return Describe("concrete addresses differ (" +
                      wordToString(*Src.Base) + " vs " +
                      wordToString(*Tgt.Base) + ")");
  }
  if (!Src.Valid)
    return std::nullopt; // Freed blocks are inaccessible; contents ignored.
  for (Word Off = 0; Off < Src.Size; ++Off)
    if (!valuesEquivalent(Alpha, Src.Contents[Off], Tgt.Contents[Off],
                          TgtFullyConcrete ? &TgtView : nullptr))
      return Describe("contents differ at offset " + wordToString(Off) +
                      " (" + Src.Contents[Off].toString() + " vs " +
                      Tgt.Contents[Off].toString() + ")");
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// MemoryInvariant
//===----------------------------------------------------------------------===//

std::optional<std::string>
MemoryInvariant::addPrivateSrc(BlockId Id, const Memory &Mem) {
  BlockView View(Mem);
  const Block *B = View.find(Id);
  if (!B)
    return "source block " + std::to_string(Id) + " does not exist";
  if (B->Base)
    return "source block " + std::to_string(Id) +
           " is concrete; private source blocks must be logical";
  if (Alpha.toTarget(Id))
    return "source block " + std::to_string(Id) + " is already public";
  PrivateSrc[Id] = *B;
  return std::nullopt;
}

std::optional<std::string>
MemoryInvariant::addPrivateTgt(BlockId Id, const Memory &Mem) {
  BlockView View(Mem);
  const Block *B = View.find(Id);
  if (!B)
    return "target block " + std::to_string(Id) + " does not exist";
  if (Alpha.toSource(Id))
    return "target block " + std::to_string(Id) + " is already public";
  PrivateTgt[Id] = *B;
  return std::nullopt;
}

std::optional<std::string>
MemoryInvariant::holdsOn(const Memory &SrcMem, const Memory &TgtMem) const {
  BlockView SrcView(SrcMem);
  BlockView TgtView(TgtMem);
  bool TgtFullyConcrete = modelDescriptor(TgtMem.kind()).ValuesFullyConcrete;

  // Private source blocks: present, unchanged, still logical.
  for (const auto &[Id, Expected] : PrivateSrc) {
    const Block *Actual = SrcView.find(Id);
    if (!Actual)
      return "private source block " + std::to_string(Id) + " vanished";
    if (Actual->Base)
      return "private source block " + std::to_string(Id) +
             " became concrete";
    if (!(*Actual == Expected))
      return "private source block " + std::to_string(Id) + " was modified";
    if (Alpha.toTarget(Id))
      return "block " + std::to_string(Id) +
             " is both private and public on the source side";
  }

  // Private target blocks: present and unchanged.
  for (const auto &[Id, Expected] : PrivateTgt) {
    const Block *Actual = TgtView.find(Id);
    if (!Actual)
      return "private target block " + std::to_string(Id) + " vanished";
    if (!(*Actual == Expected))
      return "private target block " + std::to_string(Id) + " was modified";
    if (Alpha.toSource(Id))
      return "block " + std::to_string(Id) +
             " is both private and public on the target side";
  }

  // Public sections: every alpha-related pair is equivalent. The NULL
  // blocks (0, 0) are related definitionally — the concrete model has no
  // explicit block 0 — so they are skipped.
  for (const auto &[S, T] : Alpha.forward()) {
    if (S == 0 && T == 0)
      continue;
    const Block *SrcBlock = SrcView.find(S);
    const Block *TgtBlock = TgtView.find(T);
    if (!SrcBlock)
      return "public source block " + std::to_string(S) + " does not exist";
    if (!TgtBlock)
      return "public target block " + std::to_string(T) + " does not exist";
    if (auto Err = blocksEquivalent(Alpha, S, *SrcBlock, T, *TgtBlock,
                                    TgtView, TgtFullyConcrete))
      return Err;
  }
  return std::nullopt;
}

bool MemoryInvariant::samePrivateAs(const MemoryInvariant &Other) const {
  return PrivateSrc == Other.PrivateSrc && PrivateTgt == Other.PrivateTgt;
}

//===----------------------------------------------------------------------===//
// Future invariants
//===----------------------------------------------------------------------===//

namespace {

/// The per-block evolution conditions of Section 5.3 between two points in
/// time on one side of the simulation.
std::optional<std::string> checkBlockEvolution(BlockId Id,
                                               const Block &Earlier,
                                               const Block &Later,
                                               const char *Side) {
  auto Describe = [&](const std::string &What) {
    return std::string(Side) + " block " + std::to_string(Id) + ": " + What;
  };
  if (Earlier.Size != Later.Size)
    return Describe("size changed");
  if (!Earlier.Valid && Later.Valid)
    return Describe("freed block became valid again");
  if (Earlier.Base) {
    if (!Later.Base)
      return Describe("concrete block became logical");
    if (*Earlier.Base != *Later.Base)
      return Describe("concrete address changed");
  }
  return std::nullopt;
}

} // namespace

std::optional<std::string>
qcm::checkFutureInvariant(const InvariantCheckpoint &Earlier,
                          const InvariantCheckpoint &Later) {
  if (!Later.Inv.Alpha.includes(Earlier.Inv.Alpha))
    return "bijection shrank: logical blocks cannot be un-related";
  for (const auto &[S, T] : Earlier.Inv.Alpha.forward()) {
    if (S == 0 && T == 0)
      continue; // The NULL pair is definitional.
    const Block *SrcEarlier = Earlier.SrcView.find(S);
    const Block *SrcLater = Later.SrcView.find(S);
    if (!SrcEarlier || !SrcLater)
      return "public source block " + std::to_string(S) + " vanished";
    if (auto Err = checkBlockEvolution(S, *SrcEarlier, *SrcLater, "source"))
      return Err;
    const Block *TgtEarlier = Earlier.TgtView.find(T);
    const Block *TgtLater = Later.TgtView.find(T);
    if (!TgtEarlier || !TgtLater)
      return "public target block " + std::to_string(T) + " vanished";
    if (auto Err = checkBlockEvolution(T, *TgtEarlier, *TgtLater, "target"))
      return Err;
  }
  return std::nullopt;
}
