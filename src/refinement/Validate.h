//===- refinement/Validate.h - Translation validation -----------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation: one call that decides, by bounded exploration,
/// whether a single program transformation is a behavioral refinement under
/// each requested memory model. This is the seam between the optimizer and
/// the refinement checker — qcm-opt hands every pass application (before
/// program, after program) to validateTransformation and rejects the
/// application if any requested model exhibits a counterexample.
///
/// The verdict inherits the refinement checker's asymmetry: a *failure* is
/// sound (an explicit context/oracle/tape under which the target shows a
/// behavior the source cannot), while a *pass* is evidence by exploration
/// within the budget, not a proof — the sound counterpart for validity is
/// the SimulationChecker with authored invariants.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_VALIDATE_H
#define QCM_REFINEMENT_VALIDATE_H

#include "refinement/RefinementChecker.h"

#include <optional>
#include <string>
#include <vector>

namespace qcm {

/// How much exploration one validation may spend. The defaults keep a
/// per-application check in the low milliseconds on the generator's
/// programs while still covering the classic attack surfaces (address
/// guessing, exhaustion, input variation).
struct ValidationBudget {
  /// Concrete address space per run; small spaces make exhaustion and
  /// address-guessing contexts bite quickly.
  uint64_t AddressWords = 1ull << 10;
  /// Interpreter fuel per run.
  uint64_t StepLimit = 100'000;
  /// Seeded random placement oracles, in addition to first-fit/last-fit.
  unsigned RandomOracles = 2;
  /// Input tapes to vary input() events over.
  std::vector<std::vector<Word>> InputTapes = {{}, {5, 7, 9}};
  /// Quantify over the standard adversary battery for every parameterless
  /// extern (standardAdversaryContexts) in addition to the empty context.
  bool Adversaries = true;
  /// Worker threads for the underlying exploration grids.
  unsigned Jobs = 1;
};

/// Verdict for one model.
struct ModelValidation {
  ModelKind Model = ModelKind::QuasiConcrete;
  bool Valid = true;
  /// Executions the model's grid performed.
  uint64_t Runs = 0;
  /// When !Valid: the refuting context and a rendering of the
  /// counterexample behavior (or the instantiation error).
  std::string ContextName;
  std::string Detail;
};

/// Verdict over all requested models.
struct ValidationReport {
  bool AllValid = true;
  std::vector<ModelValidation> PerModel;
  uint64_t TotalRuns = 0;

  /// The failing models' names, comma-separated ("" when AllValid).
  std::string failedModels() const;
  std::string toString() const;
};

/// Checks that \p Tgt refines \p Src under every model in \p Models, each
/// within \p Budget. Context quantification per model: the empty context
/// plus (when Budget.Adversaries) the standard adversary battery over
/// \p Src's externs. Emits one "validate:<model>" profiler span per model.
ValidationReport validateTransformation(const Program &Src,
                                        const Program &Tgt,
                                        const std::vector<ModelKind> &Models,
                                        const ValidationBudget &Budget = {});

/// The standard adversary battery qcm-check quantifies over: for every
/// parameterless extern F of \p P, a marker-printing context (does calling
/// F at all change observable order?), an address-guessing writer (the
/// Section 1 concrete-model attack), and an exhaust-then-mark context
/// (resource-exhaustion observations). Parameterful externs are skipped —
/// the battery's bodies take no arguments.
std::vector<ContextVariant> standardAdversaryContexts(const Program &P);

/// The CLI-stable short name for a model: "concrete", "logical", "quasi",
/// "eager" (modelKindName() is the prose name; this one is for flags,
/// metrics documents, and span labels). modelFromShortName also accepts
/// the prose aliases "quasi-concrete" and "eager-quasi".
std::string shortModelName(ModelKind Model);
std::optional<ModelKind> modelFromShortName(const std::string &Name);

} // namespace qcm

#endif // QCM_REFINEMENT_VALIDATE_H
