//===- refinement/BehaviorSet.cpp -----------------------------------------===//

#include "refinement/BehaviorSet.h"

#include <algorithm>

using namespace qcm;

void BehaviorSet::insert(Behavior B) {
  if (std::find(Behaviors.begin(), Behaviors.end(), B) != Behaviors.end())
    return;
  Behaviors.push_back(std::move(B));
}

bool BehaviorSet::containsKind(Behavior::Kind Kind) const {
  for (const Behavior &B : Behaviors)
    if (B.BehaviorKind == Kind)
      return true;
  return false;
}

std::string BehaviorSet::toString() const {
  std::string Text;
  for (const Behavior &B : Behaviors) {
    Text += "  ";
    Text += B.toString();
    Text += '\n';
  }
  if (Text.empty())
    Text = "  <empty>\n";
  return Text;
}

bool qcm::behaviorAdmitted(const Behavior &Tgt, const BehaviorSet &Src) {
  for (const Behavior &S : Src.behaviors()) {
    // Source undefined behavior admits everything extending its prefix.
    if (S.BehaviorKind == Behavior::Kind::Undefined &&
        isEventPrefix(S.Events, Tgt.Events))
      return true;
    switch (Tgt.BehaviorKind) {
    case Behavior::Kind::Terminated:
      if (S.BehaviorKind == Behavior::Kind::Terminated &&
          S.Events == Tgt.Events)
        return true;
      break;
    case Behavior::Kind::OutOfMemory:
    case Behavior::Kind::StepLimit:
      // Partial behaviors: the target performed a prefix of events the
      // source could have performed.
      if (isEventPrefix(Tgt.Events, S.Events))
        return true;
      break;
    case Behavior::Kind::Undefined:
      // Only source undefined behavior (handled above) admits target
      // undefined behavior.
      break;
    }
  }
  return false;
}

bool qcm::partialAdmittedStrict(const Behavior &Tgt, const BehaviorSet &Src) {
  for (const Behavior &S : Src.behaviors()) {
    if (S.BehaviorKind == Behavior::Kind::Undefined &&
        isEventPrefix(S.Events, Tgt.Events))
      return true;
    if (S.BehaviorKind == Behavior::Kind::OutOfMemory &&
        S.Events == Tgt.Events)
      return true;
  }
  return false;
}

InclusionResult qcm::behaviorsIncluded(const BehaviorSet &Tgt,
                                       const BehaviorSet &Src) {
  for (const Behavior &T : Tgt.behaviors())
    if (!behaviorAdmitted(T, Src)) {
      InclusionResult R;
      R.Included = false;
      R.Counterexample = T;
      return R;
    }
  return InclusionResult{};
}
