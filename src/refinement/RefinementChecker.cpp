//===- refinement/RefinementChecker.cpp -----------------------------------===//

#include "refinement/RefinementChecker.h"

#include "ir/Compile.h"
#include "memory/ModelRegistry.h"
#include "refinement/Contexts.h"
#include "support/Profiler.h"
#include "support/Progress.h"

#include <algorithm>
#include <cassert>

using namespace qcm;

std::string ContextReport::toString() const {
  std::string Text = "context '" + ContextName + "': ";
  Text += Refines ? "refines\n" : "REFINEMENT FAILS\n";
  if (!InstantiationError.empty())
    return Text + " context instantiation failed:\n" + InstantiationError;
  Text += " source behaviors:\n" + SrcBehaviors.toString();
  Text += " target behaviors:\n" + TgtBehaviors.toString();
  if (!Refines)
    Text += " counterexample: " + Counterexample.toString() + "\n";
  if (TimedOutRuns)
    Text += " timed-out executions: " + std::to_string(TimedOutRuns) + "\n";
  if (SweepRan) {
    Text += " exhaustion sweep: ";
    Text += SweepRefines ? "refines\n" : "REFINEMENT FAILS UNDER INJECTION\n";
    Text += " source injected partials:\n" + SrcInjectedPartials.toString();
    Text += " target injected partials:\n" + TgtInjectedPartials.toString();
    if (!SweepRefines)
      Text +=
          " sweep counterexample: " + SweepCounterexample.toString() + "\n";
    if (SweepCapped)
      Text += " sweep truncated at the per-cell injection-point cap\n";
  }
  return Text;
}

std::string RefinementReport::toString() const {
  std::string Text = Refines ? "REFINES" : "DOES NOT REFINE";
  Text += " (" + std::to_string(RunsPerformed) + " executions";
  if (SweepRan)
    Text += " + " + std::to_string(InjectedRuns) + " injected";
  if (TimedOutRuns)
    Text += ", " + std::to_string(TimedOutRuns) + " timed out";
  Text += ")\n";
  for (const ContextReport &C : PerContext)
    Text += C.toString();
  return Text;
}

namespace {

/// Per-context state threaded from plan construction to the merge phase.
struct ContextWork {
  ContextReport CR;
  /// Keep instantiated programs alive for the whole exploration: the
  /// compiled modules alias their ASTs.
  std::optional<Program> SrcInst, TgtInst;
  /// The once-compiled modules, kept for the exhaustion sweep's probes.
  std::shared_ptr<const qir::QirModule> SrcModule, TgtModule;
  /// False for contexts skipped by a fail-fast planning stop.
  bool Planned = false;
};

/// Which fault-plan trigger the exhaustion sweep schedules.
enum class InjectKind { Allocation, Cast };

/// The injection points a model can genuinely reach: the sweep only forces
/// exhaustion where the model's own semantics can exhaust, so every
/// injected behavior is one the model could exhibit under some (possibly
/// tiny) address space. The registry's capability flags record exactly
/// this — concrete memory exhausts at allocation (Section 2.1),
/// quasi-concrete at realization, i.e. pointer-to-integer cast
/// (Section 3.4), the eager variant and the two-phase model at both, the
/// logical model never.
std::vector<InjectKind> injectionKindsFor(ModelKind Model) {
  const ModelDescriptor &D = modelDescriptor(Model);
  std::vector<InjectKind> Kinds;
  if (D.InjectAllocation)
    Kinds.push_back(InjectKind::Allocation);
  if (D.InjectCast)
    Kinds.push_back(InjectKind::Cast);
  return Kinds;
}

/// One sweep cell: a main-grid cell times one injection kind. The adaptive
/// ordinal loop lives inside the cell's RunItem, so a cell is one
/// exploration task regardless of how many injection points it discovers.
struct SweepCell {
  size_t CtxIdx = 0;
  bool IsTgt = false;
  InjectKind Kind = InjectKind::Allocation;
  std::shared_ptr<const qir::QirModule> Module;
  RunConfig Config;
  std::function<std::map<std::string, ExternalHandler>()> MakeHandlers;
};

/// A sweep cell's worker-side output, merged in cell order.
struct SweepCellResult {
  /// Behaviors of the probes whose plan actually fired, in ordinal order.
  std::vector<Behavior> Fired;
  uint64_t Probes = 0;
  uint64_t TimedOut = 0;
  bool Capped = false;
  ModelStats Stats;
  qir::DispatchStats Dispatch;
};

void runExhaustionSweep(const RefinementJob &Job,
                        const std::vector<ContextVariant> &Contexts,
                        std::vector<ContextWork> &Work,
                        const std::vector<OracleFactory> &Oracles,
                        const std::vector<std::vector<Word>> &Tapes,
                        RefinementReport &Report) {
  Report.SweepRan = true;

  // Cell order mirrors the main grid — context-major, source side before
  // target, then kind, oracle, tape — so in-order merging guarantees a
  // context's complete source partial set is assembled before its first
  // target probe is judged.
  std::vector<SweepCell> Cells;
  for (size_t CtxIdx = 0; CtxIdx < Contexts.size(); ++CtxIdx) {
    ContextWork &W = Work[CtxIdx];
    if (!W.Planned || !W.CR.InstantiationError.empty() || !W.SrcModule)
      continue;
    W.CR.SweepRan = true;
    for (int Side = 0; Side < 2; ++Side) {
      const bool IsTgt = Side == 1;
      const RunConfig &Base = IsTgt ? Job.BaseTgt : Job.BaseSrc;
      for (InjectKind Kind : injectionKindsFor(Base.Model)) {
        for (const OracleFactory &Oracle : Oracles) {
          for (const std::vector<Word> &Tape : Tapes) {
            SweepCell Cell;
            Cell.CtxIdx = CtxIdx;
            Cell.IsTgt = IsTgt;
            Cell.Kind = Kind;
            Cell.Module = IsTgt ? W.TgtModule : W.SrcModule;
            Cell.Config = Base;
            Cell.Config.Oracle = Oracle;
            Cell.Config.Interp.InputTape = Tape;
            if (Contexts[CtxIdx].MakeHandlers)
              Cell.MakeHandlers = Contexts[CtxIdx].MakeHandlers;
            Cells.push_back(std::move(Cell));
          }
        }
      }
    }
  }

  std::vector<SweepCellResult> Results(Cells.size());
  std::vector<ExecState> Slots(std::max<size_t>(
      1, std::min<size_t>(Job.Exec.effectiveJobs(), Cells.size())));
  if (Job.Progress)
    Job.Progress->beginPhase("sweep", Cells.size());
  ExplorationSummary Summary = exploreIndexed(
      Cells.size(), Job.Exec,
      [&](size_t I, unsigned Slot) {
        const SweepCell &Cell = Cells[I];
        SweepCellResult &Out = Results[I];
        prof::Span Span("sweep-cell", "explore");
        Span.arg("index", static_cast<uint64_t>(I));
        Span.arg("model", modelKindName(Cell.Config.Model));
        Span.arg("inject",
                 Cell.Kind == InjectKind::Allocation ? "alloc" : "cast");
        // Adaptive injection-point discovery: probe ordinal N until a probe
        // no longer fires — the first non-firing N is one past the number
        // of targeted operations the cell's execution performs, because a
        // plan targeting an operation that never happens leaves the run
        // untouched. Detection is by fault reason ("injected ..."), which
        // works with tracing compiled out.
        for (uint64_t N = 1;; ++N) {
          if (N > Job.SweepMaxPointsPerCell) {
            Out.Capped = true;
            break;
          }
          RunConfig C = Cell.Config;
          C.Inject = Cell.Kind == InjectKind::Allocation
                         ? FaultPlan::failAllocation(N)
                         : FaultPlan::failCast(N);
          if (Cell.MakeHandlers)
            C.Handlers = Cell.MakeHandlers();
          RunResult R = Slots[Slot].run(Cell.Module, C);
          ++Out.Probes;
          Out.Stats.accumulate(R.Stats);
          Out.Dispatch.accumulate(R.Dispatch);
          if (R.TimedOut)
            ++Out.TimedOut;
          const bool FiredNow =
              R.Behav.BehaviorKind == Behavior::Kind::OutOfMemory &&
              R.Behav.Reason.starts_with("injected");
          if (!FiredNow)
            break;
          Out.Fired.push_back(std::move(R.Behav));
        }
        Span.arg("probes", Out.Probes);
        if (Out.Capped)
          Span.argBool("capped", true);
        if (Out.TimedOut)
          Span.arg("timed_out", Out.TimedOut);
      },
      [&](size_t I) {
        const SweepCell &Cell = Cells[I];
        SweepCellResult &Out = Results[I];
        ContextWork &W = Work[Cell.CtxIdx];
        Report.InjectedRuns += Out.Probes;
        Report.AggregateStats.accumulate(Out.Stats);
        Report.AggregateDispatch.accumulate(Out.Dispatch);
        Report.TimedOutRuns += Out.TimedOut;
        W.CR.TimedOutRuns += Out.TimedOut;
        if (Out.Capped)
          W.CR.SweepCapped = true;
        bool FailedHere = false;
        for (Behavior &B : Out.Fired) {
          if (!Cell.IsTgt) {
            W.CR.SrcInjectedPartials.insert(std::move(B));
            continue;
          }
          // Strict Section 2.3: an OOM-truncated target prefix must be a
          // behavior the source set (injected partials plus the main
          // grid's naturally observed behaviors) actually contains.
          bool Admitted =
              partialAdmittedStrict(B, W.CR.SrcInjectedPartials) ||
              partialAdmittedStrict(B, W.CR.SrcBehaviors);
          if (!Admitted && W.CR.SweepRefines) {
            W.CR.SweepRefines = false;
            W.CR.SweepCounterexample = B;
            Report.Refines = false;
            FailedHere = true;
          }
          W.CR.TgtInjectedPartials.insert(std::move(B));
        }
        if (Job.Progress)
          Job.Progress->advance(1, FailedHere ? 1 : 0, Out.TimedOut, 0);
        return FailedHere && Job.Exec.FailFast ? ExploreStep::Stop
                                               : ExploreStep::Continue;
      });
  if (Job.Progress)
    Job.Progress->finish();
  Report.Pool.accumulate(Summary.Pool);
}

} // namespace

RefinementReport qcm::checkRefinement(const RefinementJob &Job) {
  assert(Job.Src && Job.Tgt && "refinement job requires both programs");
  std::vector<ContextVariant> Contexts = Job.Contexts;
  if (Contexts.empty())
    Contexts.push_back(ContextVariant::empty());
  std::vector<OracleFactory> Oracles = Job.Oracles;
  if (Oracles.empty()) {
    Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
    Oracles.push_back([] { return std::make_unique<LastFitOracle>(); });
  }
  std::vector<std::vector<Word>> Tapes = Job.InputTapes;
  if (Tapes.empty())
    // The base config's tape, not unconditionally the empty one: a tape
    // set on BaseSrc (qcm-check --input=...) would otherwise be silently
    // overwritten by the grid's per-item tape assignment.
    Tapes.push_back(Job.BaseSrc.Interp.InputTape);

  RefinementReport Report;

  // Phase 1 (calling thread): instantiate every context and lower each
  // (program, instantiated context) pair to QIR exactly once, building the
  // declarative plan — one work item per module × oracle × tape, in the
  // exact order the old serial loop executed them (context-major, source
  // before target, oracle-major, tape-minor). Everything the workers later
  // share — modules, the programs they alias, factories — is read-only from
  // here on.
  std::vector<ContextWork> Work(Contexts.size());
  ExplorationPlan Plan;
  struct ItemOrigin {
    size_t ContextIdx;
    bool IsTgt;
  };
  std::vector<ItemOrigin> Origins;
  // The full grid size is known up front: contexts x {src,tgt} x oracles x
  // tapes (a fail-fast planning stop can only make it smaller).
  Plan.Items.reserve(Contexts.size() * 2 * Oracles.size() * Tapes.size());
  Origins.reserve(Plan.Items.capacity());
  bool StopPlanning = false;

  std::optional<prof::Span> PlanSpan;
  PlanSpan.emplace("plan", "check");
  PlanSpan->arg("contexts", static_cast<uint64_t>(Contexts.size()));
  for (size_t CtxIdx = 0; CtxIdx < Contexts.size() && !StopPlanning;
       ++CtxIdx) {
    const ContextVariant &Context = Contexts[CtxIdx];
    prof::Span CtxSpan("plan-context", "check");
    CtxSpan.arg("context", Context.Name);
    ContextWork &W = Work[CtxIdx];
    W.CR.ContextName = Context.Name;
    W.Planned = true;
    // Instantiate language-level context functions over the externs.
    const Program *SrcProg = Job.Src;
    const Program *TgtProg = Job.Tgt;
    if (!Context.ContextSource.empty()) {
      DiagnosticEngine Diags;
      W.SrcInst = instantiateContext(*Job.Src, Context.ContextSource, Diags);
      W.TgtInst = instantiateContext(*Job.Tgt, Context.ContextSource, Diags);
      if (!W.SrcInst || !W.TgtInst) {
        W.CR.Refines = false;
        W.CR.InstantiationError = Diags.toString();
        Report.Refines = false;
        // An author error in a context is a failure of the whole job;
        // fail-fast skips the remaining contexts entirely.
        if (Job.Exec.FailFast)
          StopPlanning = true;
        continue;
      }
      SrcProg = &*W.SrcInst;
      TgtProg = &*W.TgtInst;
    }
    std::shared_ptr<const qir::QirModule> SrcModule =
        qir::compileProgram(*SrcProg);
    std::shared_ptr<const qir::QirModule> TgtModule =
        qir::compileProgram(*TgtProg);
    W.SrcModule = SrcModule;
    W.TgtModule = TgtModule;
    for (int Side = 0; Side < 2; ++Side) {
      const bool IsTgt = Side == 1;
      for (const OracleFactory &Oracle : Oracles) {
        for (const std::vector<Word> &Tape : Tapes) {
          ExplorationItem Item;
          Item.Module = IsTgt ? TgtModule : SrcModule;
          Item.Config = IsTgt ? Job.BaseTgt : Job.BaseSrc;
          Item.Config.Oracle = Oracle;
          Item.Config.Interp.InputTape = Tape;
          // Hoisted per-context: handler-less contexts (the common case)
          // skip the factory on every grid point. Contexts that do carry
          // host handlers stay per-run-fresh — the factory runs on the
          // worker for each item, because a stateful handler shared across
          // runs would leak state between grid points (and, with Jobs > 1,
          // race between threads).
          if (Context.MakeHandlers)
            Item.MakeHandlers = Context.MakeHandlers;
          Plan.Items.push_back(std::move(Item));
          Origins.push_back({CtxIdx, IsTgt});
        }
      }
    }
  }
  PlanSpan->arg("cells", static_cast<uint64_t>(Plan.Items.size()));
  PlanSpan.reset();

  // Phase 2: execute the plan. Results are merged here, on the calling
  // thread, in plan order — so behavior sets fill in the serial loop's
  // order and the report is byte-identical at any Jobs level. A target
  // behavior can be judged the moment it arrives: its context's complete
  // source set merged strictly earlier in the plan.
  Plan.Cached = Job.CachedCell;
  size_t LastMergedCtx = 0;
  if (Job.Progress)
    Job.Progress->beginPhase("grid", Plan.Items.size());
  ExplorationSummary Summary = explorePlan(
      Plan, Job.Exec, [&](size_t I, RunResult &R) {
        if (Job.OnCellMerged)
          Job.OnCellMerged(I, R);
        const ItemOrigin &Origin = Origins[I];
        ContextWork &W = Work[Origin.ContextIdx];
        LastMergedCtx = Origin.ContextIdx;
        Report.AggregateStats.accumulate(R.Stats);
        Report.AggregateDispatch.accumulate(R.Dispatch);
        const bool Oom =
            R.Behav.BehaviorKind == Behavior::Kind::OutOfMemory;
        if (R.TimedOut) {
          ++W.CR.TimedOutRuns;
          ++Report.TimedOutRuns;
        }
        if (!Origin.IsTgt) {
          if (Job.Progress)
            Job.Progress->advance(1, 0, R.TimedOut ? 1 : 0, Oom ? 1 : 0);
          W.CR.SrcBehaviors.insert(std::move(R.Behav));
          return ExploreStep::Continue;
        }
        bool Admitted = behaviorAdmitted(R.Behav, W.CR.SrcBehaviors);
        if (!Admitted && W.CR.Refines) {
          W.CR.Refines = false;
          W.CR.Counterexample = R.Behav;
          Report.Refines = false;
        }
        if (Job.Progress)
          Job.Progress->advance(1, Admitted ? 0 : 1, R.TimedOut ? 1 : 0,
                                Oom ? 1 : 0);
        W.CR.TgtBehaviors.insert(std::move(R.Behav));
        return !Admitted && Job.Exec.FailFast ? ExploreStep::Stop
                                              : ExploreStep::Continue;
      });
  if (Job.Progress)
    Job.Progress->finish();
  Report.RunsPerformed = Summary.ItemsMerged;
  Report.Pool.accumulate(Summary.Pool);

  // Phase 3 (optional): the exhaustion sweep. Every grid cell is re-run
  // with out-of-memory injected at each reachable injection point of that
  // side's model, and the truncated target prefixes are judged under the
  // strict Section 2.3 partial rule. Cells are explored with the same
  // deterministic engine: source cells of a context precede its target
  // cells in sweep-plan order, so by the time a target probe is judged the
  // context's full source partial set has merged. Skipped after a
  // cancelled main grid: its source sets are incomplete.
  if (Job.ExhaustionSweep && !Summary.Cancelled)
    runExhaustionSweep(Job, Contexts, Work, Oracles, Tapes, Report);

  // Assemble per-context verdicts in context order. After an early stop,
  // contexts beyond the stopping point were never explored; they are
  // omitted rather than reported as vacuously refining.
  size_t ReportedContexts = Contexts.size();
  if (Summary.Cancelled) {
    ReportedContexts = LastMergedCtx + 1;
  } else if (StopPlanning) {
    // Planning stopped at an instantiation error; report every context
    // that was planned (the erroring one included).
    ReportedContexts = 0;
    for (size_t CtxIdx = 0; CtxIdx < Contexts.size(); ++CtxIdx)
      if (Work[CtxIdx].Planned)
        ReportedContexts = CtxIdx + 1;
  }
  for (size_t CtxIdx = 0; CtxIdx < ReportedContexts; ++CtxIdx)
    Report.PerContext.push_back(std::move(Work[CtxIdx].CR));
  return Report;
}

std::string MatrixReport::toString() const {
  const size_t N = Models.size();
  // Column width: the longest short name, but never narrower than the
  // verdict tokens.
  size_t Width = 4; // "FAIL"
  for (ModelKind M : Models)
    Width = std::max(Width, std::string(modelDescriptor(M).ShortName).size());
  auto Pad = [Width](const std::string &S) {
    return std::string(Width > S.size() ? Width - S.size() : 0, ' ') + S;
  };

  std::string Text = "cross-model refinement matrix (" + std::to_string(N) +
                     " models, " + std::to_string(N * N) + " cells)\n";
  std::string Header = Pad("src\\tgt");
  for (ModelKind M : Models)
    Header += "  " + Pad(modelDescriptor(M).ShortName);
  Text += " " + Header + "\n";
  for (size_t SrcIdx = 0; SrcIdx < N; ++SrcIdx) {
    std::string Row = Pad(modelDescriptor(Models[SrcIdx]).ShortName);
    for (size_t TgtIdx = 0; TgtIdx < N; ++TgtIdx) {
      const MatrixCell &Cell = Cells[SrcIdx * N + TgtIdx];
      Row += "  " + Pad(!Cell.Ran           ? "-"
                        : Cell.Report.Refines ? "ok"
                                              : "FAIL");
    }
    Text += " " + Row + "\n";
  }

  uint64_t Explored = 0, Failing = 0;
  for (const MatrixCell &Cell : Cells) {
    Explored += Cell.Ran ? 1 : 0;
    Failing += Cell.Ran && !Cell.Report.Refines ? 1 : 0;
  }
  Text += Refines ? "MATRIX REFINES" : "MATRIX DOES NOT REFINE";
  Text += " (" + std::to_string(Explored - Failing) + "/" +
          std::to_string(N * N) + " cells refine, " +
          std::to_string(RunsPerformed) + " executions";
  if (SweepRan)
    Text += " + " + std::to_string(InjectedRuns) + " injected";
  if (TimedOutRuns)
    Text += ", " + std::to_string(TimedOutRuns) + " timed out";
  Text += ")\n";

  // Full detail only for the failing cells: a green matrix stays one
  // screen, a red one pinpoints its counterexamples.
  for (const MatrixCell &Cell : Cells) {
    if (!Cell.Ran || Cell.Report.Refines)
      continue;
    Text += "--- cell " +
            std::string(modelDescriptor(Cell.SrcModel).ShortName) + " -> " +
            std::string(modelDescriptor(Cell.TgtModel).ShortName) + " ---\n";
    Text += Cell.Report.toString();
  }
  return Text;
}

uint64_t qcm::matrixCellCapacity(const RefinementJob &Base) {
  // Mirrors checkRefinement's defaulting: no contexts means the empty one,
  // no oracles means {first-fit, last-fit}, no tapes means the base tape.
  const uint64_t Contexts = std::max<uint64_t>(1, Base.Contexts.size());
  const uint64_t Oracles = std::max<uint64_t>(2, Base.Oracles.size());
  const uint64_t Tapes = std::max<uint64_t>(1, Base.InputTapes.size());
  return Contexts * 2 * Oracles * Tapes;
}

MatrixReport qcm::checkRefinementMatrix(const RefinementJob &Base,
                                        const std::vector<ModelKind> &Models) {
  assert(!Models.empty() && "matrix needs at least one model");
  prof::Span Span("matrix", "check");
  Span.arg("models", static_cast<uint64_t>(Models.size()));

  MatrixReport M;
  M.Models = Models;
  M.Cells.resize(Models.size() * Models.size());
  const uint64_t Capacity = matrixCellCapacity(Base);
  bool Stop = false;
  for (size_t SrcIdx = 0; SrcIdx < Models.size() && !Stop; ++SrcIdx) {
    for (size_t TgtIdx = 0; TgtIdx < Models.size() && !Stop; ++TgtIdx) {
      const size_t CellIdx = SrcIdx * Models.size() + TgtIdx;
      MatrixCell &Cell = M.Cells[CellIdx];
      Cell.SrcModel = Models[SrcIdx];
      Cell.TgtModel = Models[TgtIdx];

      RefinementJob Job = Base;
      Job.BaseSrc.Model = Cell.SrcModel;
      Job.BaseTgt.Model = Cell.TgtModel;
      // Rebase the journal hooks: cell K owns plan indices
      // [K*Capacity, (K+1)*Capacity), so one journal spans the matrix and
      // a resumed run replays exactly the cells (and cell prefixes) that
      // finished.
      const size_t Offset = CellIdx * Capacity;
      if (Base.CachedCell)
        Job.CachedCell = [&Base, Offset](size_t I) {
          return Base.CachedCell(I + Offset);
        };
      if (Base.OnCellMerged)
        Job.OnCellMerged = [&Base, Offset](size_t I, const RunResult &R) {
          Base.OnCellMerged(I + Offset, R);
        };

      prof::Span CellSpan("matrix-cell", "check");
      CellSpan.arg("src", std::string(modelDescriptor(Cell.SrcModel).ShortName));
      CellSpan.arg("tgt", std::string(modelDescriptor(Cell.TgtModel).ShortName));
      Cell.Report = checkRefinement(Job);
      Cell.Ran = true;
      CellSpan.argBool("refines", Cell.Report.Refines);

      M.RunsPerformed += Cell.Report.RunsPerformed;
      M.TimedOutRuns += Cell.Report.TimedOutRuns;
      M.SweepRan |= Cell.Report.SweepRan;
      M.InjectedRuns += Cell.Report.InjectedRuns;
      M.AggregateStats.accumulate(Cell.Report.AggregateStats);
      M.Pool.accumulate(Cell.Report.Pool);
      M.AggregateDispatch.accumulate(Cell.Report.AggregateDispatch);
      if (!Cell.Report.Refines) {
        M.Refines = false;
        if (Base.Exec.FailFast)
          Stop = true;
      }
    }
  }
  // A fail-fast stop leaves unexplored cells; the matrix cannot claim
  // refinement for them.
  if (Stop)
    M.Refines = false;
  return M;
}

std::vector<OracleFactory> qcm::sampledOracles(unsigned RandomCount,
                                               uint64_t SeedBase) {
  std::vector<OracleFactory> Oracles;
  Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
  Oracles.push_back([] { return std::make_unique<LastFitOracle>(); });
  for (unsigned I = 0; I < RandomCount; ++I) {
    uint64_t Seed = SeedBase + I;
    Oracles.push_back(
        [Seed] { return std::make_unique<RandomOracle>(Seed); });
  }
  return Oracles;
}

std::vector<OracleFactory> qcm::enumeratedOracles(uint64_t AddressWords,
                                                  unsigned Decisions,
                                                  std::string *Error) {
  assert(AddressWords >= 3 && "address space too small");
  prof::Span Span("enumerate-oracles", "check");
  Span.arg("address_words", AddressWords);
  Span.arg("decisions", static_cast<uint64_t>(Decisions));
  const Word Low = 1;
  const uint64_t BaseCount = AddressWords - 2; // bases in [1, AddressWords-1)
  // Overflow-checked grid size BaseCount^Decisions against the sanity cap.
  uint64_t Total = 1;
  bool TooLarge = false;
  for (unsigned D = 0; D < Decisions && !TooLarge; ++D) {
    if (Total > MaxEnumeratedOracles / BaseCount)
      TooLarge = true;
    else
      Total *= BaseCount;
  }
  if (TooLarge || Total > MaxEnumeratedOracles) {
    if (Error)
      *Error = "enumerated oracle grid (" + std::to_string(AddressWords - 2) +
               "^" + std::to_string(Decisions) + ") exceeds the cap of " +
               std::to_string(MaxEnumeratedOracles) +
               " oracles; shrink the address space or the decision depth, "
               "or sample with sampledOracles()";
    return {};
  }
  std::vector<OracleFactory> Oracles;
  Oracles.reserve(Total);
  for (uint64_t Index = 0; Index < Total; ++Index) {
    // Each factory decodes its sequence on demand from the grid index —
    // digit D of Index in base BaseCount, first decision most significant,
    // matching the order the old eager enumeration produced.
    Oracles.push_back([Index, BaseCount, Decisions, Low] {
      std::vector<Word> Seq(Decisions);
      uint64_t Rest = Index;
      for (unsigned D = Decisions; D-- > 0;) {
        Seq[D] = static_cast<Word>(Low + Rest % BaseCount);
        Rest /= BaseCount;
      }
      return std::make_unique<FixedSequenceOracle>(std::move(Seq));
    });
  }
  return Oracles;
}
