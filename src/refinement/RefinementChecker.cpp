//===- refinement/RefinementChecker.cpp -----------------------------------===//

#include "refinement/RefinementChecker.h"

#include "ir/Compile.h"
#include "refinement/Contexts.h"

#include <cassert>

using namespace qcm;

std::string ContextReport::toString() const {
  std::string Text = "context '" + ContextName + "': ";
  Text += Refines ? "refines\n" : "REFINEMENT FAILS\n";
  if (!InstantiationError.empty())
    return Text + " context instantiation failed:\n" + InstantiationError;
  Text += " source behaviors:\n" + SrcBehaviors.toString();
  Text += " target behaviors:\n" + TgtBehaviors.toString();
  if (!Refines)
    Text += " counterexample: " + Counterexample.toString() + "\n";
  return Text;
}

std::string RefinementReport::toString() const {
  std::string Text = Refines ? "REFINES" : "DOES NOT REFINE";
  Text += " (" + std::to_string(RunsPerformed) + " executions)\n";
  for (const ContextReport &C : PerContext)
    Text += C.toString();
  return Text;
}

namespace {

/// Collects the behavior set of one compiled program over the oracle/tape
/// grid within one context. The caller lowered the program to QIR exactly
/// once; every grid point reuses that module.
BehaviorSet
collectBehaviors(const std::shared_ptr<const qir::QirModule> &Module,
                 const RunConfig &Base, const ContextVariant &Context,
                 const std::vector<OracleFactory> &Oracles,
                 const std::vector<std::vector<Word>> &Tapes,
                 uint64_t &RunsPerformed, ModelStats &AggregateStats) {
  BehaviorSet Set;
  for (const OracleFactory &Oracle : Oracles) {
    for (const std::vector<Word> &Tape : Tapes) {
      RunConfig Config = Base;
      Config.Oracle = Oracle;
      Config.Interp.InputTape = Tape;
      if (Context.MakeHandlers)
        Config.Handlers = Context.MakeHandlers();
      RunResult R = runCompiled(Module, Config);
      ++RunsPerformed;
      AggregateStats.accumulate(R.Stats);
      Set.insert(std::move(R.Behav));
    }
  }
  return Set;
}

} // namespace

RefinementReport qcm::checkRefinement(const RefinementJob &Job) {
  assert(Job.Src && Job.Tgt && "refinement job requires both programs");
  std::vector<ContextVariant> Contexts = Job.Contexts;
  if (Contexts.empty())
    Contexts.push_back(ContextVariant::empty());
  std::vector<OracleFactory> Oracles = Job.Oracles;
  if (Oracles.empty()) {
    Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
    Oracles.push_back([] { return std::make_unique<LastFitOracle>(); });
  }
  std::vector<std::vector<Word>> Tapes = Job.InputTapes;
  if (Tapes.empty())
    Tapes.push_back({});

  RefinementReport Report;
  for (const ContextVariant &Context : Contexts) {
    ContextReport CR;
    CR.ContextName = Context.Name;
    // Instantiate language-level context functions over the externs.
    const Program *SrcProg = Job.Src;
    const Program *TgtProg = Job.Tgt;
    std::optional<Program> SrcInst, TgtInst;
    if (!Context.ContextSource.empty()) {
      DiagnosticEngine Diags;
      SrcInst = instantiateContext(*Job.Src, Context.ContextSource, Diags);
      TgtInst = instantiateContext(*Job.Tgt, Context.ContextSource, Diags);
      if (!SrcInst || !TgtInst) {
        CR.Refines = false;
        CR.InstantiationError = Diags.toString();
        Report.Refines = false;
        Report.PerContext.push_back(std::move(CR));
        continue;
      }
      SrcProg = &*SrcInst;
      TgtProg = &*TgtInst;
    }
    // Compile once per (program, instantiated context) pair; the whole
    // oracle/tape exploration below executes the two modules.
    CR.SrcBehaviors = collectBehaviors(qir::compileProgram(*SrcProg),
                                       Job.BaseSrc, Context, Oracles, Tapes,
                                       Report.RunsPerformed,
                                       Report.AggregateStats);
    CR.TgtBehaviors = collectBehaviors(qir::compileProgram(*TgtProg),
                                       Job.BaseTgt, Context, Oracles, Tapes,
                                       Report.RunsPerformed,
                                       Report.AggregateStats);
    InclusionResult Inc =
        behaviorsIncluded(CR.TgtBehaviors, CR.SrcBehaviors);
    CR.Refines = Inc.Included;
    if (!Inc.Included) {
      CR.Counterexample = Inc.Counterexample;
      Report.Refines = false;
    }
    Report.PerContext.push_back(std::move(CR));
  }
  return Report;
}

std::vector<OracleFactory> qcm::sampledOracles(unsigned RandomCount,
                                               uint64_t SeedBase) {
  std::vector<OracleFactory> Oracles;
  Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
  Oracles.push_back([] { return std::make_unique<LastFitOracle>(); });
  for (unsigned I = 0; I < RandomCount; ++I) {
    uint64_t Seed = SeedBase + I;
    Oracles.push_back(
        [Seed] { return std::make_unique<RandomOracle>(Seed); });
  }
  return Oracles;
}

std::vector<OracleFactory> qcm::enumeratedOracles(uint64_t AddressWords,
                                                  unsigned Decisions) {
  assert(AddressWords >= 3 && "address space too small");
  const Word Low = 1;
  const Word High = static_cast<Word>(AddressWords - 1); // exclusive
  std::vector<std::vector<Word>> Sequences;
  Sequences.push_back({});
  for (unsigned D = 0; D < Decisions; ++D) {
    std::vector<std::vector<Word>> Next;
    for (const std::vector<Word> &Seq : Sequences) {
      for (Word Base = Low; Base < High; ++Base) {
        std::vector<Word> Extended = Seq;
        Extended.push_back(Base);
        Next.push_back(std::move(Extended));
      }
    }
    Sequences = std::move(Next);
  }
  std::vector<OracleFactory> Oracles;
  Oracles.reserve(Sequences.size());
  for (std::vector<Word> &Seq : Sequences) {
    Oracles.push_back([Seq] {
      return std::make_unique<FixedSequenceOracle>(Seq);
    });
  }
  return Oracles;
}
