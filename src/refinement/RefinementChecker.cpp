//===- refinement/RefinementChecker.cpp -----------------------------------===//

#include "refinement/RefinementChecker.h"

#include "ir/Compile.h"
#include "memory/ModelRegistry.h"
#include "refinement/Contexts.h"
#include "refinement/ProcessPool.h"
#include "semantics/ResultCodec.h"
#include "support/Profiler.h"
#include "support/Progress.h"
#include "support/Telemetry.h"
#include "support/TestingHooks.h"

#include <algorithm>
#include <cassert>

using namespace qcm;

std::string ContextReport::toString() const {
  std::string Text = "context '" + ContextName + "': ";
  Text += Refines ? "refines\n" : "REFINEMENT FAILS\n";
  if (!InstantiationError.empty())
    return Text + " context instantiation failed:\n" + InstantiationError;
  Text += " source behaviors:\n" + SrcBehaviors.toString();
  Text += " target behaviors:\n" + TgtBehaviors.toString();
  if (!Refines)
    Text += " counterexample: " + Counterexample.toString() + "\n";
  if (TimedOutRuns)
    Text += " timed-out executions: " + std::to_string(TimedOutRuns) + "\n";
  if (CrashedRuns)
    Text += " crashed worker executions: " + std::to_string(CrashedRuns) +
            "\n";
  if (QuarantinedRuns)
    Text += " quarantined cells: " + std::to_string(QuarantinedRuns) + "\n";
  if (SweepRan) {
    Text += " exhaustion sweep: ";
    Text += SweepRefines ? "refines\n" : "REFINEMENT FAILS UNDER INJECTION\n";
    Text += " source injected partials:\n" + SrcInjectedPartials.toString();
    Text += " target injected partials:\n" + TgtInjectedPartials.toString();
    if (!SweepRefines)
      Text +=
          " sweep counterexample: " + SweepCounterexample.toString() + "\n";
    if (SweepCapped)
      Text += " sweep truncated at the per-cell injection-point cap\n";
  }
  return Text;
}

std::string RefinementReport::toString() const {
  std::string Text = Refines ? "REFINES" : "DOES NOT REFINE";
  Text += " (" + std::to_string(RunsPerformed) + " executions";
  if (SweepRan)
    Text += " + " + std::to_string(InjectedRuns) + " injected";
  if (TimedOutRuns)
    Text += ", " + std::to_string(TimedOutRuns) + " timed out";
  if (CrashedRuns)
    Text += ", " + std::to_string(CrashedRuns) + " crashed";
  if (QuarantinedCells)
    Text += ", " + std::to_string(QuarantinedCells) + " quarantined";
  Text += ")\n";
  // A positive verdict with quarantined cells is incomplete evidence; say so
  // right under the headline (and qcm-check exits ExitQuarantined).
  if (QuarantinedCells)
    Text += "QUARANTINED: " + std::to_string(QuarantinedCells) +
            " cell(s) skipped after repeated worker crashes; the verdict "
            "covers the surviving cells only\n";
  for (const ContextReport &C : PerContext)
    Text += C.toString();
  return Text;
}

namespace {

/// The injection points a model can genuinely reach: the sweep only forces
/// exhaustion where the model's own semantics can exhaust, so every
/// injected behavior is one the model could exhibit under some (possibly
/// tiny) address space. The registry's capability flags record exactly
/// this — concrete memory exhausts at allocation (Section 2.1),
/// quasi-concrete at realization, i.e. pointer-to-integer cast
/// (Section 3.4), the eager variant and the two-phase model at both, the
/// logical model never.
std::vector<SweepInjectKind> injectionKindsFor(ModelKind Model) {
  const ModelDescriptor &D = modelDescriptor(Model);
  std::vector<SweepInjectKind> Kinds;
  if (D.InjectAllocation)
    Kinds.push_back(SweepInjectKind::Allocation);
  if (D.InjectCast)
    Kinds.push_back(SweepInjectKind::Cast);
  return Kinds;
}

/// A sweep cell's worker-side output, merged in cell order.
struct SweepCellResult {
  /// Behaviors of the probes whose plan actually fired, in ordinal order.
  std::vector<Behavior> Fired;
  uint64_t Probes = 0;
  uint64_t TimedOut = 0;
  bool Capped = false;
  ModelStats Stats;
  qir::DispatchStats Dispatch;
};

void runExhaustionSweep(const RefinementJob &Job, GridSchedule &G,
                        RefinementReport &Report) {
  Report.SweepRan = true;
  // A context is sweep-eligible exactly when it contributed sweep cells:
  // planned, instantiated, compiled.
  for (GridSchedule::ContextSlot &Slot : G.PerContext)
    if (Slot.Planned && Slot.Report.InstantiationError.empty() &&
        Slot.SrcModule)
      Slot.Report.SweepRan = true;

  std::vector<SweepCell> &Cells = G.SweepCells;

  // Shared merge body of both backends: invoked strictly in cell order on
  // the calling thread, exactly like the main grid's, so sweep reports are
  // byte-identical across --jobs levels and across --isolate backends.
  auto MergeSweep = [&](size_t I, SweepCellResult &Out, uint32_t Crashes,
                        bool Quarantined) -> ExploreStep {
    const SweepCell &Cell = Cells[I];
    GridSchedule::ContextSlot &W = G.PerContext[Cell.CtxIdx];
    if (Crashes) {
      W.Report.CrashedRuns += Crashes;
      Report.CrashedRuns += Crashes;
    }
    if (Quarantined) {
      // The cell's probes are lost; the sweep verdict covers the surviving
      // cells only (the headline QUARANTINED banner says so).
      ++W.Report.QuarantinedRuns;
      ++Report.QuarantinedCells;
      if (Job.Progress)
        Job.Progress->advance(1, 0, 0, 0);
      return ExploreStep::Continue;
    }
    Report.InjectedRuns += Out.Probes;
    Report.AggregateStats.accumulate(Out.Stats);
    Report.AggregateDispatch.accumulate(Out.Dispatch);
    Report.TimedOutRuns += Out.TimedOut;
    W.Report.TimedOutRuns += Out.TimedOut;
    if (Out.Capped)
      W.Report.SweepCapped = true;
    bool FailedHere = false;
    for (Behavior &B : Out.Fired) {
      if (!Cell.IsTgt) {
        W.Report.SrcInjectedPartials.insert(std::move(B));
        continue;
      }
      // Strict Section 2.3: an OOM-truncated target prefix must be a
      // behavior the source set (injected partials plus the main grid's
      // naturally observed behaviors) actually contains.
      bool Admitted = partialAdmittedStrict(B, W.Report.SrcInjectedPartials) ||
                      partialAdmittedStrict(B, W.Report.SrcBehaviors);
      if (!Admitted && W.Report.SweepRefines) {
        W.Report.SweepRefines = false;
        W.Report.SweepCounterexample = B;
        Report.Refines = false;
        FailedHere = true;
      }
      W.Report.TgtInjectedPartials.insert(std::move(B));
    }
    if (Job.Progress)
      Job.Progress->advance(1, FailedHere ? 1 : 0, Out.TimedOut, 0);
    return FailedHere && Job.Exec.FailFast ? ExploreStep::Stop
                                           : ExploreStep::Continue;
  };

  if (Job.Progress)
    Job.Progress->beginPhase("sweep", Cells.size());

  ExplorationSummary Summary;
  if (Job.Isolate) {
    prof::Span Span("process-explore", "isolate");
    Span.arg("phase", "sweep");
    Span.arg("cells", static_cast<uint64_t>(Cells.size()));
    const std::string SrcName(modelDescriptor(Job.BaseSrc.Model).ShortName);
    const std::string TgtName(modelDescriptor(Job.BaseTgt.Model).ShortName);
    ExecState LocalExec;
    Summary = Job.Isolate->explore(
        Cells.size(),
        [&](size_t I) -> std::optional<std::string> {
          // Sweep cells are never journaled, so none are cached.
          JsonObject O;
          O.field("run", "sweep");
          O.field("src_model", SrcName);
          O.field("tgt_model", TgtName);
          O.field("index", static_cast<uint64_t>(I));
          return O.str();
        },
        [&](size_t I, RemoteOutcome &Out) -> ExploreStep {
          // Frames: one encodeRunResult line per probe (ordinal order),
          // then the {"sweep_done":...} frame carrying the cap flag.
          SweepCellResult R;
          bool Quarantined = Out.Quarantined;
          if (!Quarantined) {
            bool Ok = !Out.Frames.empty();
            for (size_t F = 0; Ok && F + 1 < Out.Frames.size(); ++F) {
              size_t Ordinal = 0;
              RunResult Probe;
              if (!decodeRunResult(Out.Frames[F], Ordinal, Probe)) {
                Ok = false;
                break;
              }
              ++R.Probes;
              R.Stats.accumulate(Probe.Stats);
              if (Probe.TimedOut)
                ++R.TimedOut;
              if (sweepProbeFired(Probe))
                R.Fired.push_back(std::move(Probe.Behav));
            }
            if (Ok) {
              std::string Raw;
              bool IsString = false;
              if (!jsonExtractField(Out.Frames.back(), "sweep_done", Raw,
                                    IsString))
                Ok = false;
              else if (jsonExtractField(Out.Frames.back(), "capped", Raw,
                                        IsString))
                R.Capped = Raw == "true";
            }
            if (!Ok) {
              // A worker that answers garbage is as untrustworthy as one
              // that dies; treat the cell like a quarantined one.
              R = SweepCellResult();
              Quarantined = true;
              Out.CrashReason = "undecodable worker response";
            }
          }
          return MergeSweep(I, R, Out.WorkerCrashes, Quarantined);
        },
        [&](size_t I) {
          // In-process fallback after spawn degradation: produce the exact
          // frame sequence a healthy worker would have sent.
          std::vector<std::string> Frames;
          SweepProbeSummary Sum = runSweepCellProbes(
              Cells[I], LocalExec, Job.SweepMaxPointsPerCell,
              [&](uint64_t N, RunResult &Probe) {
                Frames.push_back(
                    encodeRunResult(static_cast<size_t>(N), Probe));
              });
          JsonObject Done;
          Done.field("sweep_done", static_cast<uint64_t>(1));
          Done.field("probes", Sum.Probes);
          Done.fieldBool("capped", Sum.Capped);
          Done.fieldBool("done", true);
          Frames.push_back(Done.str());
          return Frames;
        });
  } else {
    std::vector<SweepCellResult> Results(Cells.size());
    std::vector<ExecState> Slots(std::max<size_t>(
        1, std::min<size_t>(Job.Exec.effectiveJobs(), Cells.size())));
    Summary = exploreIndexed(
        Cells.size(), Job.Exec,
        [&](size_t I, unsigned Slot) {
          const SweepCell &Cell = Cells[I];
          SweepCellResult &Out = Results[I];
          prof::Span Span("sweep-cell", "explore");
          Span.arg("index", static_cast<uint64_t>(I));
          Span.arg("model", modelKindName(Cell.Config.Model));
          Span.arg("inject", Cell.Kind == SweepInjectKind::Allocation
                                 ? "alloc"
                                 : "cast");
          SweepProbeSummary Sum = runSweepCellProbes(
              Cell, Slots[Slot], Job.SweepMaxPointsPerCell,
              [&](uint64_t, RunResult &Probe) {
                Out.Stats.accumulate(Probe.Stats);
                Out.Dispatch.accumulate(Probe.Dispatch);
                if (Probe.TimedOut)
                  ++Out.TimedOut;
                if (sweepProbeFired(Probe))
                  Out.Fired.push_back(std::move(Probe.Behav));
              });
          Out.Probes = Sum.Probes;
          Out.Capped = Sum.Capped;
          Span.arg("probes", Out.Probes);
          if (Out.Capped)
            Span.argBool("capped", true);
          if (Out.TimedOut)
            Span.arg("timed_out", Out.TimedOut);
        },
        [&](size_t I) { return MergeSweep(I, Results[I], 0, false); });
  }
  if (Job.Progress)
    Job.Progress->finish();
  Report.Pool.accumulate(Summary.Pool);
}

} // namespace

bool qcm::sweepProbeFired(const RunResult &R) {
  return R.Behav.BehaviorKind == Behavior::Kind::OutOfMemory &&
         R.Behav.Reason.starts_with("injected");
}

SweepProbeSummary
qcm::runSweepCellProbes(const SweepCell &Cell, ExecState &Exec,
                        uint64_t MaxPoints,
                        const std::function<void(uint64_t, RunResult &)> &OnProbe) {
  // Adaptive injection-point discovery: probe ordinal N until a probe no
  // longer fires — the first non-firing N is one past the number of
  // targeted operations the cell's execution performs, because a plan
  // targeting an operation that never happens leaves the run untouched.
  // Detection is by fault reason ("injected ..."), which works with tracing
  // compiled out.
  SweepProbeSummary Sum;
  for (uint64_t N = 1;; ++N) {
    if (N > MaxPoints) {
      Sum.Capped = true;
      break;
    }
    RunConfig C = Cell.Config;
    C.Inject = Cell.Kind == SweepInjectKind::Allocation
                   ? FaultPlan::failAllocation(N)
                   : FaultPlan::failCast(N);
    if (Cell.MakeHandlers)
      C.Handlers = Cell.MakeHandlers();
    RunResult R = Exec.run(Cell.Module, C);
    ++Sum.Probes;
    const bool FiredNow = sweepProbeFired(R);
    OnProbe(N, R);
    if (!FiredNow)
      break;
  }
  return Sum;
}

GridSchedule qcm::planRefinementGrid(const RefinementJob &Job) {
  assert(Job.Src && Job.Tgt && "refinement job requires both programs");
  GridSchedule G;
  G.Contexts = Job.Contexts;
  if (G.Contexts.empty())
    G.Contexts.push_back(ContextVariant::empty());
  G.Oracles = Job.Oracles;
  if (G.Oracles.empty()) {
    G.Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
    G.Oracles.push_back([] { return std::make_unique<LastFitOracle>(); });
  }
  G.Tapes = Job.InputTapes;
  if (G.Tapes.empty())
    // The base config's tape, not unconditionally the empty one: a tape
    // set on BaseSrc (qcm-check --input=...) would otherwise be silently
    // overwritten by the grid's per-item tape assignment.
    G.Tapes.push_back(Job.BaseSrc.Interp.InputTape);

  // Instantiate every context and lower each (program, instantiated
  // context) pair to QIR exactly once, building the declarative plan — one
  // work item per module × oracle × tape, in the exact order the old serial
  // loop executed them (context-major, source before target, oracle-major,
  // tape-minor). Everything later shared — modules, the programs they
  // alias, factories — is read-only from here on.
  G.PerContext.resize(G.Contexts.size());
  // The full grid size is known up front: contexts x {src,tgt} x oracles x
  // tapes (a fail-fast planning stop can only make it smaller).
  G.Plan.Items.reserve(G.Contexts.size() * 2 * G.Oracles.size() *
                       G.Tapes.size());
  G.Origins.reserve(G.Plan.Items.capacity());

  std::optional<prof::Span> PlanSpan;
  PlanSpan.emplace("plan", "check");
  PlanSpan->arg("contexts", static_cast<uint64_t>(G.Contexts.size()));
  for (size_t CtxIdx = 0; CtxIdx < G.Contexts.size() && !G.StoppedPlanning;
       ++CtxIdx) {
    const ContextVariant &Context = G.Contexts[CtxIdx];
    prof::Span CtxSpan("plan-context", "check");
    CtxSpan.arg("context", Context.Name);
    GridSchedule::ContextSlot &W = G.PerContext[CtxIdx];
    W.Report.ContextName = Context.Name;
    W.Planned = true;
    // Instantiate language-level context functions over the externs.
    const Program *SrcProg = Job.Src;
    const Program *TgtProg = Job.Tgt;
    if (!Context.ContextSource.empty()) {
      DiagnosticEngine Diags;
      W.SrcInst = instantiateContext(*Job.Src, Context.ContextSource, Diags);
      W.TgtInst = instantiateContext(*Job.Tgt, Context.ContextSource, Diags);
      if (!W.SrcInst || !W.TgtInst) {
        W.Report.Refines = false;
        W.Report.InstantiationError = Diags.toString();
        // An author error in a context is a failure of the whole job;
        // fail-fast skips the remaining contexts entirely.
        if (Job.Exec.FailFast)
          G.StoppedPlanning = true;
        continue;
      }
      SrcProg = &*W.SrcInst;
      TgtProg = &*W.TgtInst;
    }
    W.SrcModule = qir::compileProgram(*SrcProg);
    W.TgtModule = qir::compileProgram(*TgtProg);
    for (int Side = 0; Side < 2; ++Side) {
      const bool IsTgt = Side == 1;
      for (const OracleFactory &Oracle : G.Oracles) {
        for (const std::vector<Word> &Tape : G.Tapes) {
          ExplorationItem Item;
          Item.Module = IsTgt ? W.TgtModule : W.SrcModule;
          Item.Config = IsTgt ? Job.BaseTgt : Job.BaseSrc;
          Item.Config.Oracle = Oracle;
          Item.Config.Interp.InputTape = Tape;
          // Hoisted per-context: handler-less contexts (the common case)
          // skip the factory on every grid point. Contexts that do carry
          // host handlers stay per-run-fresh — the factory runs on the
          // worker for each item, because a stateful handler shared across
          // runs would leak state between grid points (and, with Jobs > 1,
          // race between threads).
          if (Context.MakeHandlers)
            Item.MakeHandlers = Context.MakeHandlers;
          G.Plan.Items.push_back(std::move(Item));
          G.Origins.push_back({CtxIdx, IsTgt});
        }
      }
    }
  }
  PlanSpan->arg("cells", static_cast<uint64_t>(G.Plan.Items.size()));
  PlanSpan.reset();

  if (!Job.ExhaustionSweep)
    return G;

  // Sweep-cell order mirrors the main grid — context-major, source side
  // before target, then kind, oracle, tape — so in-order merging guarantees
  // a context's complete source partial set is assembled before its first
  // target probe is judged.
  for (size_t CtxIdx = 0; CtxIdx < G.Contexts.size(); ++CtxIdx) {
    GridSchedule::ContextSlot &W = G.PerContext[CtxIdx];
    if (!W.Planned || !W.Report.InstantiationError.empty() || !W.SrcModule)
      continue;
    for (int Side = 0; Side < 2; ++Side) {
      const bool IsTgt = Side == 1;
      const RunConfig &Base = IsTgt ? Job.BaseTgt : Job.BaseSrc;
      for (SweepInjectKind Kind : injectionKindsFor(Base.Model)) {
        for (const OracleFactory &Oracle : G.Oracles) {
          for (const std::vector<Word> &Tape : G.Tapes) {
            SweepCell Cell;
            Cell.CtxIdx = CtxIdx;
            Cell.IsTgt = IsTgt;
            Cell.Kind = Kind;
            Cell.Module = IsTgt ? W.TgtModule : W.SrcModule;
            Cell.Config = Base;
            Cell.Config.Oracle = Oracle;
            Cell.Config.Interp.InputTape = Tape;
            if (G.Contexts[CtxIdx].MakeHandlers)
              Cell.MakeHandlers = G.Contexts[CtxIdx].MakeHandlers;
            G.SweepCells.push_back(std::move(Cell));
          }
        }
      }
    }
  }
  return G;
}

RefinementReport qcm::checkRefinement(const RefinementJob &Job) {
  assert(Job.Src && Job.Tgt && "refinement job requires both programs");
  GridSchedule G = planRefinementGrid(Job);

  RefinementReport Report;
  for (const GridSchedule::ContextSlot &Slot : G.PerContext)
    if (!Slot.Report.InstantiationError.empty())
      Report.Refines = false;

  // Execute the plan. Results are merged here, on the calling thread, in
  // plan order — so behavior sets fill in the serial loop's order and the
  // report is byte-identical at any Jobs level *and across isolation
  // backends*. A target behavior can be judged the moment it arrives: its
  // context's complete source set merged strictly earlier in the plan.
  G.Plan.Cached = Job.CachedCell;
  G.Plan.IndexBase = Job.CellIndexBase;
  size_t LastMergedCtx = 0;
  uint64_t GridQuarantinedMerged = 0;

  // Shared merge body of both backends (and of journal replay under
  // either): strictly in plan order, on this thread.
  auto MergeCell = [&](size_t I, RunResult &R) -> ExploreStep {
    // Journal first: quarantined cells are journaled too, so a --resume
    // never re-executes a cell already known to kill its worker.
    if (Job.OnCellMerged)
      Job.OnCellMerged(I, R);
    const GridSchedule::Origin &Origin = G.Origins[I];
    GridSchedule::ContextSlot &W = G.PerContext[Origin.ContextIdx];
    LastMergedCtx = Origin.ContextIdx;
    if (R.WorkerCrashes) {
      W.Report.CrashedRuns += R.WorkerCrashes;
      Report.CrashedRuns += R.WorkerCrashes;
    }
    if (R.Quarantined) {
      // No behavior, no stats: the cell never completed anywhere. The
      // verdict covers the surviving cells (headline banner + exit code 6).
      ++W.Report.QuarantinedRuns;
      ++Report.QuarantinedCells;
      ++GridQuarantinedMerged;
      if (Job.Progress)
        Job.Progress->advance(1, 0, 0, 0);
      return ExploreStep::Continue;
    }
    Report.AggregateStats.accumulate(R.Stats);
    Report.AggregateDispatch.accumulate(R.Dispatch);
    const bool Oom = R.Behav.BehaviorKind == Behavior::Kind::OutOfMemory;
    if (R.TimedOut) {
      ++W.Report.TimedOutRuns;
      ++Report.TimedOutRuns;
    }
    if (!Origin.IsTgt) {
      if (Job.Progress)
        Job.Progress->advance(1, 0, R.TimedOut ? 1 : 0, Oom ? 1 : 0);
      W.Report.SrcBehaviors.insert(std::move(R.Behav));
      return ExploreStep::Continue;
    }
    bool Admitted = behaviorAdmitted(R.Behav, W.Report.SrcBehaviors);
    if (!Admitted && W.Report.Refines) {
      W.Report.Refines = false;
      W.Report.Counterexample = R.Behav;
      Report.Refines = false;
    }
    if (Job.Progress)
      Job.Progress->advance(1, Admitted ? 0 : 1, R.TimedOut ? 1 : 0,
                            Oom ? 1 : 0);
    W.Report.TgtBehaviors.insert(std::move(R.Behav));
    return !Admitted && Job.Exec.FailFast ? ExploreStep::Stop
                                          : ExploreStep::Continue;
  };

  if (Job.Progress)
    Job.Progress->beginPhase("grid", G.Plan.Items.size());
  ExplorationSummary Summary;
  if (Job.Isolate) {
    prof::Span Span("process-explore", "isolate");
    Span.arg("phase", "grid");
    Span.arg("cells", static_cast<uint64_t>(G.Plan.Items.size()));
    const std::string SrcName(modelDescriptor(Job.BaseSrc.Model).ShortName);
    const std::string TgtName(modelDescriptor(Job.BaseTgt.Model).ShortName);
    ExecState LocalExec;
    Summary = Job.Isolate->explore(
        G.Plan.Items.size(),
        [&](size_t I) -> std::optional<std::string> {
          if (G.Plan.Cached && G.Plan.Cached(I))
            return std::nullopt;
          JsonObject O;
          O.field("run", "grid");
          O.field("src_model", SrcName);
          O.field("tgt_model", TgtName);
          O.field("index", static_cast<uint64_t>(I));
          O.field("cell", static_cast<uint64_t>(G.Plan.IndexBase + I));
          return O.str();
        },
        [&](size_t I, RemoteOutcome &Out) -> ExploreStep {
          RunResult R;
          if (Out.Cached) {
            R = *G.Plan.Cached(I);
          } else if (Out.Quarantined) {
            R.Quarantined = true;
            R.WorkerCrashes = Out.WorkerCrashes;
            R.Behav.Reason = Out.CrashReason;
          } else {
            size_t DecodedIdx = 0;
            if (Out.Frames.empty() ||
                !decodeRunResult(Out.Frames.back(), DecodedIdx, R)) {
              // Garbage from a live worker is as bad as a dead worker.
              R = RunResult();
              R.Quarantined = true;
              R.WorkerCrashes = Out.WorkerCrashes;
              R.Behav.Reason = "undecodable worker response";
            } else {
              // A cell that crashed a worker and then succeeded on retry
              // still reports its crashes.
              R.WorkerCrashes += Out.WorkerCrashes;
            }
          }
          return MergeCell(I, R);
        },
        [&](size_t I) {
          // In-process fallback after spawn degradation: same canary hook,
          // same codec as the worker, so the frame stream is
          // indistinguishable from a healthy worker's.
          maybeCrashAtCell(G.Plan.IndexBase + I);
          const ExplorationItem &Item = G.Plan.Items[I];
          RunConfig C = Item.Config;
          if (Item.MakeHandlers)
            C.Handlers = Item.MakeHandlers();
          RunResult R = LocalExec.run(Item.Module, C);
          return std::vector<std::string>{encodeRunResult(I, R)};
        });
  } else {
    Summary = explorePlan(G.Plan, Job.Exec, MergeCell);
  }
  if (Job.Progress)
    Job.Progress->finish();
  // Quarantined cells merged but never executed; RunsPerformed counts
  // executions, identically under either backend and across a resume.
  Report.RunsPerformed = Summary.ItemsMerged - GridQuarantinedMerged;
  Report.Pool.accumulate(Summary.Pool);

  // Optional exhaustion sweep. Every grid cell is re-run with out-of-memory
  // injected at each reachable injection point of that side's model, and
  // the truncated target prefixes are judged under the strict Section 2.3
  // partial rule. Cells are explored with the same deterministic engine:
  // source cells of a context precede its target cells in sweep-plan order,
  // so by the time a target probe is judged the context's full source
  // partial set has merged. Skipped after a cancelled main grid: its source
  // sets are incomplete.
  if (Job.ExhaustionSweep && !Summary.Cancelled)
    runExhaustionSweep(Job, G, Report);

  // Attribute the pool's supervision counters to this exploration (one
  // matrix cell shares the pool with its siblings).
  if (Job.Isolate) {
    Report.Isolation = Job.Isolate->takeStatsDelta();
    Report.Isolation.ProcessBackend = true;
  }

  // Assemble per-context verdicts in context order. After an early stop,
  // contexts beyond the stopping point were never explored; they are
  // omitted rather than reported as vacuously refining.
  size_t ReportedContexts = G.Contexts.size();
  if (Summary.Cancelled) {
    ReportedContexts = LastMergedCtx + 1;
  } else if (G.StoppedPlanning) {
    // Planning stopped at an instantiation error; report every context
    // that was planned (the erroring one included).
    ReportedContexts = 0;
    for (size_t CtxIdx = 0; CtxIdx < G.Contexts.size(); ++CtxIdx)
      if (G.PerContext[CtxIdx].Planned)
        ReportedContexts = CtxIdx + 1;
  }
  for (size_t CtxIdx = 0; CtxIdx < ReportedContexts; ++CtxIdx)
    Report.PerContext.push_back(std::move(G.PerContext[CtxIdx].Report));
  return Report;
}

std::string MatrixReport::toString() const {
  const size_t N = Models.size();
  // Column width: the longest short name, but never narrower than the
  // verdict tokens.
  size_t Width = 4; // "FAIL"
  for (ModelKind M : Models)
    Width = std::max(Width, std::string(modelDescriptor(M).ShortName).size());
  auto Pad = [Width](const std::string &S) {
    return std::string(Width > S.size() ? Width - S.size() : 0, ' ') + S;
  };

  std::string Text = "cross-model refinement matrix (" + std::to_string(N) +
                     " models, " + std::to_string(N * N) + " cells)\n";
  std::string Header = Pad("src\\tgt");
  for (ModelKind M : Models)
    Header += "  " + Pad(modelDescriptor(M).ShortName);
  Text += " " + Header + "\n";
  for (size_t SrcIdx = 0; SrcIdx < N; ++SrcIdx) {
    std::string Row = Pad(modelDescriptor(Models[SrcIdx]).ShortName);
    for (size_t TgtIdx = 0; TgtIdx < N; ++TgtIdx) {
      const MatrixCell &Cell = Cells[SrcIdx * N + TgtIdx];
      Row += "  " + Pad(!Cell.Ran           ? "-"
                        : Cell.Report.Refines ? "ok"
                                              : "FAIL");
    }
    Text += " " + Row + "\n";
  }

  uint64_t Explored = 0, Failing = 0;
  for (const MatrixCell &Cell : Cells) {
    Explored += Cell.Ran ? 1 : 0;
    Failing += Cell.Ran && !Cell.Report.Refines ? 1 : 0;
  }
  Text += Refines ? "MATRIX REFINES" : "MATRIX DOES NOT REFINE";
  Text += " (" + std::to_string(Explored - Failing) + "/" +
          std::to_string(N * N) + " cells refine, " +
          std::to_string(RunsPerformed) + " executions";
  if (SweepRan)
    Text += " + " + std::to_string(InjectedRuns) + " injected";
  if (TimedOutRuns)
    Text += ", " + std::to_string(TimedOutRuns) + " timed out";
  if (CrashedRuns)
    Text += ", " + std::to_string(CrashedRuns) + " crashed";
  if (QuarantinedCells)
    Text += ", " + std::to_string(QuarantinedCells) + " quarantined";
  Text += ")\n";
  if (QuarantinedCells)
    Text += "QUARANTINED: " + std::to_string(QuarantinedCells) +
            " cell(s) skipped after repeated worker crashes; the verdict "
            "covers the surviving cells only\n";

  // Full detail only for the failing cells: a green matrix stays one
  // screen, a red one pinpoints its counterexamples.
  for (const MatrixCell &Cell : Cells) {
    if (!Cell.Ran || Cell.Report.Refines)
      continue;
    Text += "--- cell " +
            std::string(modelDescriptor(Cell.SrcModel).ShortName) + " -> " +
            std::string(modelDescriptor(Cell.TgtModel).ShortName) + " ---\n";
    Text += Cell.Report.toString();
  }
  return Text;
}

uint64_t qcm::matrixCellCapacity(const RefinementJob &Base) {
  // Mirrors checkRefinement's defaulting: no contexts means the empty one,
  // no oracles means {first-fit, last-fit}, no tapes means the base tape.
  const uint64_t Contexts = std::max<uint64_t>(1, Base.Contexts.size());
  const uint64_t Oracles = std::max<uint64_t>(2, Base.Oracles.size());
  const uint64_t Tapes = std::max<uint64_t>(1, Base.InputTapes.size());
  return Contexts * 2 * Oracles * Tapes;
}

MatrixReport qcm::checkRefinementMatrix(const RefinementJob &Base,
                                        const std::vector<ModelKind> &Models) {
  assert(!Models.empty() && "matrix needs at least one model");
  prof::Span Span("matrix", "check");
  Span.arg("models", static_cast<uint64_t>(Models.size()));

  MatrixReport M;
  M.Models = Models;
  M.Cells.resize(Models.size() * Models.size());
  const uint64_t Capacity = matrixCellCapacity(Base);
  bool Stop = false;
  for (size_t SrcIdx = 0; SrcIdx < Models.size() && !Stop; ++SrcIdx) {
    for (size_t TgtIdx = 0; TgtIdx < Models.size() && !Stop; ++TgtIdx) {
      const size_t CellIdx = SrcIdx * Models.size() + TgtIdx;
      MatrixCell &Cell = M.Cells[CellIdx];
      Cell.SrcModel = Models[SrcIdx];
      Cell.TgtModel = Models[TgtIdx];

      RefinementJob Job = Base;
      Job.BaseSrc.Model = Cell.SrcModel;
      Job.BaseTgt.Model = Cell.TgtModel;
      // Rebase the journal hooks: cell K owns plan indices
      // [K*Capacity, (K+1)*Capacity), so one journal spans the matrix and
      // a resumed run replays exactly the cells (and cell prefixes) that
      // finished. CellIndexBase makes the same global numbering visible to
      // the QCM_CRASH_AT hook under either isolation backend.
      const size_t Offset = CellIdx * Capacity;
      Job.CellIndexBase = Offset;
      if (Base.CachedCell)
        Job.CachedCell = [&Base, Offset](size_t I) {
          return Base.CachedCell(I + Offset);
        };
      if (Base.OnCellMerged)
        Job.OnCellMerged = [&Base, Offset](size_t I, const RunResult &R) {
          Base.OnCellMerged(I + Offset, R);
        };

      prof::Span CellSpan("matrix-cell", "check");
      CellSpan.arg("src", std::string(modelDescriptor(Cell.SrcModel).ShortName));
      CellSpan.arg("tgt", std::string(modelDescriptor(Cell.TgtModel).ShortName));
      Cell.Report = checkRefinement(Job);
      Cell.Ran = true;
      CellSpan.argBool("refines", Cell.Report.Refines);

      M.RunsPerformed += Cell.Report.RunsPerformed;
      M.TimedOutRuns += Cell.Report.TimedOutRuns;
      M.SweepRan |= Cell.Report.SweepRan;
      M.InjectedRuns += Cell.Report.InjectedRuns;
      M.CrashedRuns += Cell.Report.CrashedRuns;
      M.QuarantinedCells += Cell.Report.QuarantinedCells;
      M.AggregateStats.accumulate(Cell.Report.AggregateStats);
      M.Pool.accumulate(Cell.Report.Pool);
      M.AggregateDispatch.accumulate(Cell.Report.AggregateDispatch);
      M.Isolation.accumulate(Cell.Report.Isolation);
      if (!Cell.Report.Refines) {
        M.Refines = false;
        if (Base.Exec.FailFast)
          Stop = true;
      }
    }
  }
  // A fail-fast stop leaves unexplored cells; the matrix cannot claim
  // refinement for them.
  if (Stop)
    M.Refines = false;
  return M;
}

std::vector<OracleFactory> qcm::sampledOracles(unsigned RandomCount,
                                               uint64_t SeedBase) {
  std::vector<OracleFactory> Oracles;
  Oracles.push_back([] { return std::make_unique<FirstFitOracle>(); });
  Oracles.push_back([] { return std::make_unique<LastFitOracle>(); });
  for (unsigned I = 0; I < RandomCount; ++I) {
    uint64_t Seed = SeedBase + I;
    Oracles.push_back(
        [Seed] { return std::make_unique<RandomOracle>(Seed); });
  }
  return Oracles;
}

std::vector<OracleFactory> qcm::enumeratedOracles(uint64_t AddressWords,
                                                  unsigned Decisions,
                                                  std::string *Error) {
  assert(AddressWords >= 3 && "address space too small");
  prof::Span Span("enumerate-oracles", "check");
  Span.arg("address_words", AddressWords);
  Span.arg("decisions", static_cast<uint64_t>(Decisions));
  const Word Low = 1;
  const uint64_t BaseCount = AddressWords - 2; // bases in [1, AddressWords-1)
  // Overflow-checked grid size BaseCount^Decisions against the sanity cap.
  uint64_t Total = 1;
  bool TooLarge = false;
  for (unsigned D = 0; D < Decisions && !TooLarge; ++D) {
    if (Total > MaxEnumeratedOracles / BaseCount)
      TooLarge = true;
    else
      Total *= BaseCount;
  }
  if (TooLarge || Total > MaxEnumeratedOracles) {
    if (Error)
      *Error = "enumerated oracle grid (" + std::to_string(AddressWords - 2) +
               "^" + std::to_string(Decisions) + ") exceeds the cap of " +
               std::to_string(MaxEnumeratedOracles) +
               " oracles; shrink the address space or the decision depth, "
               "or sample with sampledOracles()";
    return {};
  }
  std::vector<OracleFactory> Oracles;
  Oracles.reserve(Total);
  for (uint64_t Index = 0; Index < Total; ++Index) {
    // Each factory decodes its sequence on demand from the grid index —
    // digit D of Index in base BaseCount, first decision most significant,
    // matching the order the old eager enumeration produced.
    Oracles.push_back([Index, BaseCount, Decisions, Low] {
      std::vector<Word> Seq(Decisions);
      uint64_t Rest = Index;
      for (unsigned D = Decisions; D-- > 0;) {
        Seq[D] = static_cast<Word>(Low + Rest % BaseCount);
        Rest /= BaseCount;
      }
      return std::make_unique<FixedSequenceOracle>(std::move(Seq));
    });
  }
  return Oracles;
}
