//===- refinement/Exploration.cpp -----------------------------------------===//

#include "refinement/Exploration.h"

#include "support/Profiler.h"
#include "support/Telemetry.h"
#include "support/TestingHooks.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

using namespace qcm;

void IsolationStats::accumulate(const IsolationStats &Other) {
  ProcessBackend |= Other.ProcessBackend;
  WorkersSpawned += Other.WorkersSpawned;
  WorkerRestarts += Other.WorkerRestarts;
  WorkerCrashes += Other.WorkerCrashes;
  WorkerHangs += Other.WorkerHangs;
  CellRetries += Other.CellRetries;
  QuarantinedCells += Other.QuarantinedCells;
  LocalFallbackCells += Other.LocalFallbackCells;
  BackoffMsTotal += Other.BackoffMsTotal;
}

std::string IsolationStats::toJson() const {
  return JsonObject()
      .field("backend", ProcessBackend ? "process" : "thread")
      .field("workers_spawned", WorkersSpawned)
      .field("worker_restarts", WorkerRestarts)
      .field("worker_crashes", WorkerCrashes)
      .field("worker_hangs", WorkerHangs)
      .field("cell_retries", CellRetries)
      .field("quarantined_cells", QuarantinedCells)
      .field("local_fallback_cells", LocalFallbackCells)
      .field("backoff_ms_total", BackoffMsTotal)
      .str();
}

void PoolMetrics::accumulate(const PoolMetrics &Other) {
  Jobs = std::max(Jobs, Other.Jobs);
  WallUs += Other.WallUs;
  MergeWaitUs += Other.MergeWaitUs;
  Workers.insert(Workers.end(), Other.Workers.begin(), Other.Workers.end());
}

std::string PoolMetrics::toJson() const {
  std::vector<std::string> Rows;
  Rows.reserve(Workers.size());
  for (const WorkerMetrics &W : Workers)
    Rows.push_back(
        JsonObject().field("busy_us", W.BusyUs).field("items", W.Items).str());
  return JsonObject()
      .field("jobs", static_cast<uint64_t>(Jobs))
      .field("wall_us", WallUs)
      .field("merge_wait_us", MergeWaitUs)
      .fieldRaw("workers", jsonArray(Rows))
      .str();
}

namespace {

/// Microseconds since \p Clock started, collected only in profiler-enabled
/// builds — compiled-out builds must add zero instructions to the
/// exploration hot path, so their pool metrics stay zero.
inline uint64_t elapsedUs(const Stopwatch &Clock) {
#if QCM_PROFILE_ENABLED
  return static_cast<uint64_t>(Clock.seconds() * 1e6);
#else
  (void)Clock;
  return 0;
#endif
}

} // namespace

ExplorationSummary
qcm::exploreIndexed(size_t Count, const ExplorationOptions &Options,
                    const std::function<void(size_t)> &RunItem,
                    const std::function<ExploreStep(size_t)> &MergeItem) {
  return exploreIndexed(
      Count, Options, [&](size_t I, unsigned) { RunItem(I); }, MergeItem);
}

ExplorationSummary
qcm::exploreIndexed(size_t Count, const ExplorationOptions &Options,
                    const std::function<void(size_t, unsigned)> &RunItem,
                    const std::function<ExploreStep(size_t)> &MergeItem) {
  ExplorationSummary Summary;
  if (Count == 0)
    return Summary;

  unsigned Jobs = static_cast<unsigned>(
      std::min<size_t>(Options.effectiveJobs(), Count));
  // Small grids run inline regardless of the requested parallelism: below
  // the threshold the pool's startup and merge-handoff costs dominate the
  // work itself. Same items, same merge order — only the timing sections of
  // the metrics can tell the difference.
  if (Count < Options.InlineThreshold)
    Jobs = 1;
  Summary.Pool.Jobs = std::max(1u, Jobs);
  Summary.Pool.Workers.resize(Summary.Pool.Jobs);
  Stopwatch Wall;
  if (Jobs <= 1) {
    // Serial fast path: no pool, no locks; run and merge interleaved so a
    // Stop skips the remaining items entirely.
    WorkerMetrics &Me = Summary.Pool.Workers[0];
    for (size_t I = 0; I < Count; ++I) {
      Stopwatch Busy;
      RunItem(I, /*Slot=*/0);
      Me.BusyUs += elapsedUs(Busy);
      ++Me.Items;
      ++Summary.ItemsMerged;
      if (MergeItem(I) == ExploreStep::Stop) {
        Summary.Cancelled = true;
        break;
      }
    }
    Summary.Pool.WallUs = elapsedUs(Wall);
    return Summary;
  }

  // Parallel path. Workers claim indices in plan order from NextItem and
  // mark them done; the calling thread merges strictly in plan order. The
  // Done handoff under Mutex is what publishes RunItem(I)'s writes to
  // MergeItem(I). Each worker owns Workers[W] of the pool metrics for the
  // pool's lifetime; the joins in ~ThreadPool publish them to the caller.
  std::mutex Mutex;
  std::condition_variable Ready;
  std::vector<char> Done(Count, 0);
  std::atomic<size_t> NextItem{0};
  CancellationToken Cancel;

  {
    ThreadPool Pool(Jobs);
    for (unsigned W = 0; W < Jobs; ++W)
      Pool.submit([&, W] {
        WorkerMetrics &Me = Summary.Pool.Workers[W];
        for (;;) {
          if (Cancel.cancelled())
            return;
          size_t I = NextItem.fetch_add(1, std::memory_order_relaxed);
          if (I >= Count)
            return;
          // W doubles as the slot: per-slot caller state is touched only
          // by this worker for the pool's whole lifetime.
          Stopwatch Busy;
          RunItem(I, W);
          Me.BusyUs += elapsedUs(Busy);
          ++Me.Items;
          {
            std::lock_guard<std::mutex> Lock(Mutex);
            Done[I] = 1;
          }
          Ready.notify_all();
        }
      });

    for (size_t I = 0; I < Count; ++I) {
      {
        Stopwatch WaitClock;
        std::unique_lock<std::mutex> Lock(Mutex);
        Ready.wait(Lock, [&] { return Done[I] != 0; });
        Summary.Pool.MergeWaitUs += elapsedUs(WaitClock);
      }
      ++Summary.ItemsMerged;
      if (MergeItem(I) == ExploreStep::Stop) {
        Summary.Cancelled = true;
        Cancel.cancel();
        break;
      }
    }
    // ~ThreadPool drains: claimed in-flight items finish on their workers
    // (their results are simply never merged), unclaimed ones are skipped.
  }
  Summary.Pool.WallUs = elapsedUs(Wall);
  return Summary;
}

ExplorationSummary
qcm::explorePlan(const ExplorationPlan &Plan,
                 const ExplorationOptions &Options,
                 const std::function<ExploreStep(size_t, RunResult &)>
                     &OnResult) {
  std::vector<RunResult> Results(Plan.Items.size());
  // One reusable execution state per worker slot. Grid items overwhelmingly
  // share a model and address space, so after a slot's first item its
  // machine and memory run with steady-state storage: block tables, slab
  // chunks, frame stacks, and event buffers are reset, not reallocated.
  std::vector<ExecState> Slots(std::max<size_t>(
      1, std::min<size_t>(Options.effectiveJobs(), Plan.Items.size())));
  return exploreIndexed(
      Plan.Items.size(), Options,
      [&](size_t I, unsigned Slot) {
        const ExplorationItem &Item = Plan.Items[I];
        prof::Span Cell("cell", "explore");
        Cell.arg("index", static_cast<uint64_t>(I));
        Cell.arg("model", modelKindName(Item.Config.Model));
        if (!Item.Config.Inject.empty())
          Cell.arg("fault_plan", Item.Config.Inject.toString());
        if (Plan.Cached) {
          if (const RunResult *Hit = Plan.Cached(I)) {
            Results[I] = *Hit;
            Cell.argBool("cached", true);
            Cell.arg("outcome",
                     behaviorKindName(Results[I].Behav.BehaviorKind));
            return;
          }
        }
        // The crash canary fires on the global cell index, after the cache
        // check: a resumed (or quarantined) cell replays from the journal
        // without re-entering the killer code path.
        maybeCrashAtCell(Plan.IndexBase + I);
        RunConfig Config = Item.Config;
        // Handler-bearing items materialize a fresh handler map on the
        // worker so stateful handlers are never shared across runs or
        // threads.
        if (Item.MakeHandlers)
          Config.Handlers = Item.MakeHandlers();
        Results[I] = Slots[Slot].run(Item.Module, Config);
        Cell.arg("outcome", behaviorKindName(Results[I].Behav.BehaviorKind));
        if (Results[I].TimedOut)
          Cell.argBool("timed_out", true);
      },
      [&](size_t I) { return OnResult(I, Results[I]); });
}
