//===- refinement/Exploration.cpp -----------------------------------------===//

#include "refinement/Exploration.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

using namespace qcm;

ExplorationSummary
qcm::exploreIndexed(size_t Count, const ExplorationOptions &Options,
                    const std::function<void(size_t)> &RunItem,
                    const std::function<ExploreStep(size_t)> &MergeItem) {
  return exploreIndexed(
      Count, Options, [&](size_t I, unsigned) { RunItem(I); }, MergeItem);
}

ExplorationSummary
qcm::exploreIndexed(size_t Count, const ExplorationOptions &Options,
                    const std::function<void(size_t, unsigned)> &RunItem,
                    const std::function<ExploreStep(size_t)> &MergeItem) {
  ExplorationSummary Summary;
  if (Count == 0)
    return Summary;

  unsigned Jobs = static_cast<unsigned>(
      std::min<size_t>(Options.effectiveJobs(), Count));
  if (Jobs <= 1) {
    // Serial fast path: no pool, no locks; run and merge interleaved so a
    // Stop skips the remaining items entirely.
    for (size_t I = 0; I < Count; ++I) {
      RunItem(I, /*Slot=*/0);
      ++Summary.ItemsMerged;
      if (MergeItem(I) == ExploreStep::Stop) {
        Summary.Cancelled = true;
        return Summary;
      }
    }
    return Summary;
  }

  // Parallel path. Workers claim indices in plan order from NextItem and
  // mark them done; the calling thread merges strictly in plan order. The
  // Done handoff under Mutex is what publishes RunItem(I)'s writes to
  // MergeItem(I).
  std::mutex Mutex;
  std::condition_variable Ready;
  std::vector<char> Done(Count, 0);
  std::atomic<size_t> NextItem{0};
  CancellationToken Cancel;

  {
    ThreadPool Pool(Jobs);
    for (unsigned W = 0; W < Jobs; ++W)
      Pool.submit([&, W] {
        for (;;) {
          if (Cancel.cancelled())
            return;
          size_t I = NextItem.fetch_add(1, std::memory_order_relaxed);
          if (I >= Count)
            return;
          // W doubles as the slot: per-slot caller state is touched only
          // by this worker for the pool's whole lifetime.
          RunItem(I, W);
          {
            std::lock_guard<std::mutex> Lock(Mutex);
            Done[I] = 1;
          }
          Ready.notify_all();
        }
      });

    for (size_t I = 0; I < Count; ++I) {
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        Ready.wait(Lock, [&] { return Done[I] != 0; });
      }
      ++Summary.ItemsMerged;
      if (MergeItem(I) == ExploreStep::Stop) {
        Summary.Cancelled = true;
        Cancel.cancel();
        break;
      }
    }
    // ~ThreadPool drains: claimed in-flight items finish on their workers
    // (their results are simply never merged), unclaimed ones are skipped.
  }
  return Summary;
}

ExplorationSummary
qcm::explorePlan(const ExplorationPlan &Plan,
                 const ExplorationOptions &Options,
                 const std::function<ExploreStep(size_t, RunResult &)>
                     &OnResult) {
  std::vector<RunResult> Results(Plan.Items.size());
  // One reusable execution state per worker slot. Grid items overwhelmingly
  // share a model and address space, so after a slot's first item its
  // machine and memory run with steady-state storage: block tables, slab
  // chunks, frame stacks, and event buffers are reset, not reallocated.
  std::vector<ExecState> Slots(std::max<size_t>(
      1, std::min<size_t>(Options.effectiveJobs(), Plan.Items.size())));
  return exploreIndexed(
      Plan.Items.size(), Options,
      [&](size_t I, unsigned Slot) {
        const ExplorationItem &Item = Plan.Items[I];
        if (Plan.Cached) {
          if (const RunResult *Hit = Plan.Cached(I)) {
            Results[I] = *Hit;
            return;
          }
        }
        RunConfig Config = Item.Config;
        // Handler-bearing items materialize a fresh handler map on the
        // worker so stateful handlers are never shared across runs or
        // threads.
        if (Item.MakeHandlers)
          Config.Handlers = Item.MakeHandlers();
        Results[I] = Slots[Slot].run(Item.Module, Config);
      },
      [&](size_t I) { return OnResult(I, Results[I]); });
}
