//===- refinement/ProcessPool.h - Crash-quarantining process pool -*- C++ -*-=//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-isolated exploration backend (--isolate=process): a
/// supervisor that shards plan items across N long-lived worker processes
/// and keeps the deterministic in-order merge contract of
/// refinement/Exploration.h while surviving anything a cell can do to its
/// process — SIGSEGV, SIGABRT, a wedged interpreter loop, a corrupt stream.
///
/// Policy (docs/ISOLATION.md):
/// * **Death detection.** A worker that closes its stdout (EOF/POLLHUP) or
///   corrupts the frame stream is reaped and classified by waitpid —
///   exit code vs. terminating signal.
/// * **Hang detection.** With an item timeout configured, a busy worker
///   that produces no frame within the window is SIGKILLed and handled as
///   a death (the in-worker --timeout-ms watchdog fires first for ordinary
///   slow cells; the supervisor-level window only catches a truly wedged
///   process). Frame arrival refreshes the deadline, so multi-frame
///   (sweep) items are judged on activity, not total duration.
/// * **Restart with backoff.** Dead workers respawn after an exponential
///   backoff (BackoffBaseMs << consecutive-failures, capped).
/// * **Retry, then quarantine.** The in-flight item of a dead worker is
///   re-dispatched up to MaxRetries times; past that it is *quarantined* —
///   delivered to the merge callback as a failed RemoteOutcome instead of
///   taking down the run.
/// * **Graceful degradation.** When workers die before ever completing the
///   handshake often enough (SpawnFailureLimit consecutive pre-ready
///   deaths per slot), the pool stops forking and runs the remaining items
///   through the caller's in-process fallback.
///
/// The pool is protocol-agnostic: requests and responses are opaque frame
/// payloads; completion is signaled by a frame whose payload contains the
/// top-level `"done":true` marker (qcm::JsonObject never emits that byte
/// sequence inside a string value, so substring detection is exact).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_PROCESSPOOL_H
#define QCM_REFINEMENT_PROCESSPOOL_H

#include "refinement/Exploration.h"
#include "support/Subprocess.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qcm {

/// One item's outcome as seen by the merge callback.
struct RemoteOutcome {
  /// The worker's response frames for this item, in arrival order, the
  /// "done"-marked frame last. Empty when Cached or Quarantined.
  std::vector<std::string> Frames;
  /// The request callback returned nullopt: the caller already has the
  /// result (journal replay) and the item never touched a worker.
  bool Cached = false;
  /// The item exhausted its retry budget; Frames is empty and CrashReason
  /// describes the last death.
  bool Quarantined = false;
  /// The item ran through the in-process fallback after spawn degradation.
  bool LocalFallback = false;
  /// Worker deaths attributed to this item (>0 with Quarantined, but also
  /// for items that crashed and then succeeded on retry).
  uint32_t WorkerCrashes = 0;
  /// Last death/hang description ("killed by signal 11 (SIGSEGV)", "no
  /// frame within 2000 ms", ...).
  std::string CrashReason;
};

/// The supervisor. One instance spans a whole qcm-check run — grid, sweep,
/// and every matrix cell reuse the same long-lived workers — so explore()
/// may be called repeatedly; stats() accumulate across calls and
/// takeStatsDelta() slices them per exploration.
class ProcessPool {
public:
  struct Config {
    /// Worker command line; argv[0] is the executable. The same init frame
    /// is (re)played to every spawned worker before any request.
    std::vector<std::string> WorkerArgv;
    std::string InitFrame;
    /// Worker process count (>= 1).
    unsigned Workers = 1;
    /// Re-dispatches of one item after a worker death before quarantine.
    unsigned MaxRetries = 2;
    /// Exponential respawn backoff: BackoffBaseMs << consecutiveFailures,
    /// capped at BackoffMaxMs.
    unsigned BackoffBaseMs = 25;
    unsigned BackoffMaxMs = 2000;
    /// Supervisor watchdog: a busy worker producing no frame for this long
    /// is killed and handled as a death. 0 disables (matching the thread
    /// backend, which cannot interrupt a wedged cell either).
    uint64_t ItemTimeoutMs = 0;
    /// Consecutive never-became-ready worker deaths (pool-wide, reset by
    /// any completed handshake) before the pool stops forking and degrades
    /// to the in-process fallback.
    unsigned SpawnFailureLimit = 3;
  };

  explicit ProcessPool(Config C);
  ~ProcessPool();
  ProcessPool(const ProcessPool &) = delete;
  ProcessPool &operator=(const ProcessPool &) = delete;

  /// Builds item \p I's request frame; nullopt marks the item cached (it
  /// is merged immediately as RemoteOutcome::Cached without worker I/O).
  using RequestFn = std::function<std::optional<std::string>(size_t)>;
  /// Merge callback, invoked on the calling thread strictly in item order.
  using MergeFn = std::function<ExploreStep(size_t, RemoteOutcome &)>;
  /// In-process fallback executor: returns the response frames a healthy
  /// worker would have sent for item \p I. Used after spawn degradation;
  /// null disables degradation (items are quarantined instead).
  using LocalRunFn = std::function<std::vector<std::string>(size_t)>;

  /// Runs items [0, Count) across the pool: dispatches in item order to
  /// idle workers, collects out-of-order completions, merges strictly in
  /// order. Returns like explorePlan — ItemsMerged, Cancelled, and pool
  /// timing (Workers rows count per-process busy time and items).
  ExplorationSummary explore(size_t Count, const RequestFn &RequestFor,
                             const MergeFn &Merge,
                             const LocalRunFn &LocalRun = nullptr);

  /// Cumulative supervision counters since construction.
  const IsolationStats &stats() const { return Stats; }

  /// The counters accumulated since the previous takeStatsDelta() call —
  /// how one exploration (one matrix cell) attributes shared-pool activity
  /// without double counting.
  IsolationStats takeStatsDelta();

private:
  struct Worker;
  struct ExploreState;

  void spawnWorker(Worker &W, bool IsRestart);
  void handleWorkerDeath(Worker &W, ExploreState &S, const std::string &Why,
                         bool Hang);
  void killWorker(Worker &W);

  Config Cfg;
  IsolationStats Stats;
  IsolationStats StatsAtLastDelta;
  std::vector<std::unique_ptr<Worker>> Pool;
  bool Degraded = false;
  unsigned ConsecutivePreReadyDeaths = 0;
};

} // namespace qcm

#endif // QCM_REFINEMENT_PROCESSPOOL_H
