//===- refinement/RefinementChecker.h - Refinement by exploration -*- C++ -*-=//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks behavioral refinement between a source and a target program by
/// exhaustive/sampled exploration:
///
/// * contexts — instantiations of the programs' extern functions — model
///   the universal quantification over program contexts. Refinement must
///   hold per context: for every context C, behaviors(C[tgt]) is included
///   in behaviors(C[src]);
/// * placement oracles enumerate or sample the nondeterministic choice of
///   concrete addresses (allocation in the concrete model, realization in
///   the quasi-concrete model);
/// * input tapes vary the input() events.
///
/// Paper *invalidity* results are established soundly here: the checker
/// exhibits an explicit context/oracle/tape under which the target shows a
/// behavior the source cannot. *Validity* results are evidence by
/// exploration; their sound counterpart is the SimulationChecker.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_REFINEMENTCHECKER_H
#define QCM_REFINEMENT_REFINEMENTCHECKER_H

#include "refinement/BehaviorSet.h"
#include "refinement/Exploration.h"
#include "semantics/Runner.h"

#include <functional>
#include <string>
#include <vector>

namespace qcm {

class ProgressSink;
class ProcessPool;

/// One context under which refinement is checked. Preferred form: language
/// source text defining bodies for the programs' extern functions (see
/// refinement/Contexts.h), which confines the context to exactly the
/// capabilities the paper grants it. Host-level handlers may additionally
/// be supplied for externs left uninstantiated; a factory keeps runs
/// independent when handlers carry state.
struct ContextVariant {
  std::string Name = "empty";
  /// Language-level context functions spliced over the externs.
  std::string ContextSource;
  /// Host handlers for externs not covered by ContextSource.
  std::function<std::map<std::string, ExternalHandler>()> MakeHandlers;

  static ContextVariant empty() { return ContextVariant{}; }

  static ContextVariant fromSource(std::string Name, std::string Source) {
    ContextVariant C;
    C.Name = std::move(Name);
    C.ContextSource = std::move(Source);
    return C;
  }
};

/// A refinement check job.
struct RefinementJob {
  const Program *Src = nullptr;
  const Program *Tgt = nullptr;
  /// Base run configurations; Handlers fields are overwritten per context.
  /// Source and target may use different models (e.g. quasi-concrete source
  /// against concrete target for the Section 6.5 lowering).
  RunConfig BaseSrc;
  RunConfig BaseTgt;
  /// Contexts to quantify over; empty means just the empty context.
  std::vector<ContextVariant> Contexts;
  /// Placement oracles; empty means {first-fit, last-fit}.
  std::vector<OracleFactory> Oracles;
  /// Input tapes; empty means one empty tape.
  std::vector<std::vector<Word>> InputTapes;
  /// Parallelism and early-exit policy. The report is byte-identical at
  /// every Jobs level; FailFast stops the grid at the first counterexample
  /// or context-instantiation error (the report then covers only the grid
  /// prefix up to the failure, still deterministically).
  ExplorationOptions Exec;
  /// Exhaustion-sweep mode: after the main grid, re-run every grid cell
  /// with out-of-memory injected at each reachable injection point of that
  /// side's model — allocations in the concrete model, pointer-to-integer
  /// casts (realization, Section 3.4) in the quasi-concrete model, both in
  /// the eager variant, nothing in the logical model — and check the
  /// truncated target prefixes against the source's under the *strict*
  /// Section 2.3 partial-behavior rule (partialAdmittedStrict). Injection
  /// ordinals are discovered adaptively: ordinal N is probed until a probe
  /// no longer fires, i.e. until N exceeds the cell's operation count.
  bool ExhaustionSweep = false;
  /// Safety cap on injection ordinals probed per sweep cell; cells whose
  /// executions perform more target operations than this are truncated and
  /// flagged in the report (SweepCapped).
  uint64_t SweepMaxPointsPerCell = 512;
  /// Checkpoint hooks (see tools/ToolSupport.h's CheckpointJournal).
  /// CachedCell, when non-null, supplies a previously journaled result for
  /// a main-grid plan index (null = execute the cell); OnCellMerged is
  /// invoked on the merging thread, in plan order, with each main-grid
  /// cell's result before it is consumed. Sweep probes are derived
  /// deterministically from the grid and are not journaled.
  std::function<const RunResult *(size_t)> CachedCell;
  std::function<void(size_t, const RunResult &)> OnCellMerged;
  /// Live progress reporting (support/Progress.h): when non-null, the
  /// checker announces each exploration phase ("grid", then "sweep" when
  /// enabled) with its cell count and advances the sink once per merged
  /// cell, with that cell's failure/timeout/OOM tallies. Calls happen on
  /// the merging thread only. Purely observational — reports are unchanged.
  ProgressSink *Progress = nullptr;
  /// Process-isolation backend (--isolate=process): when non-null, grid and
  /// sweep cells execute in this pool's worker processes instead of worker
  /// threads. The merge contract is identical — in plan order, on the
  /// calling thread — so crash-free reports are byte-identical to the
  /// thread backend's at every jobs level. Cells whose worker keeps dying
  /// are quarantined (ContextReport::QuarantinedRuns) instead of taking the
  /// run down.
  ProcessPool *Isolate = nullptr;
  /// Offset from this job's plan indices to the global journal cell
  /// numbering (matrixCellCapacity-rebased for matrix cells; 0 otherwise).
  /// Feeds ExplorationPlan::IndexBase and the process-backend wire
  /// requests, so the QCM_CRASH_AT testing hook addresses the same cell
  /// under either backend.
  size_t CellIndexBase = 0;
};

/// Verdict for one context.
struct ContextReport {
  std::string ContextName;
  bool Refines = true;
  BehaviorSet SrcBehaviors;
  BehaviorSet TgtBehaviors;
  Behavior Counterexample; // meaningful when !Refines
  /// Set when the context could not even be instantiated (author error).
  std::string InstantiationError;
  /// Executions of this context's cells stopped by the wall-clock watchdog
  /// (InterpConfig.WallTimeoutMs). Their behaviors are in the sets above as
  /// step-limit partials; this counts them so a grid with hung cells
  /// reports *which contexts* timed out instead of hanging the whole run.
  uint64_t TimedOutRuns = 0;
  /// Worker-process deaths attributed to this context's cells under
  /// --isolate=process (cells that crashed and then succeeded on retry
  /// count too). Deterministic given the same crash pattern, and zero on a
  /// crash-free run, so the printed report stays backend-identical.
  uint64_t CrashedRuns = 0;
  /// Cells of this context abandoned after exhausting the crash-retry
  /// budget. Their results are excluded from the behavior sets; the
  /// context's verdict covers the surviving cells only.
  uint64_t QuarantinedRuns = 0;

  /// Exhaustion sweep (RefinementJob::ExhaustionSweep). SweepRan marks the
  /// section as meaningful; the partial sets hold the OOM-truncated
  /// behaviors observed under injection, per side.
  bool SweepRan = false;
  bool SweepRefines = true;
  bool SweepCapped = false;
  BehaviorSet SrcInjectedPartials;
  BehaviorSet TgtInjectedPartials;
  Behavior SweepCounterexample; // meaningful when !SweepRefines

  std::string toString() const;
};

/// Overall verdict.
struct RefinementReport {
  bool Refines = true;
  std::vector<ContextReport> PerContext;
  /// Total number of executions merged into the report. With Jobs > 1 and
  /// an early stop, a few additional in-flight executions may have run and
  /// been discarded; this counter is the deterministic, thread-count-
  /// independent one.
  uint64_t RunsPerformed = 0;
  /// Memory-event statistics summed over every execution (source and
  /// target, all contexts/oracles/tapes); lets benchmarks report event
  /// counts alongside timings.
  ModelStats AggregateStats;
  /// Executions stopped by the wall-clock watchdog, over all contexts.
  uint64_t TimedOutRuns = 0;
  /// Exhaustion sweep: whether it ran, and how many injected probe
  /// executions it performed. RunsPerformed stays the main grid's counter;
  /// probe executions are counted here, separately and deterministically.
  bool SweepRan = false;
  uint64_t InjectedRuns = 0;
  /// Worker-process deaths and quarantined cells over all contexts
  /// (--isolate=process; always zero under the thread backend). Both are
  /// deterministic report counters — printed only when nonzero, so
  /// crash-free reports are byte-identical across backends.
  uint64_t CrashedRuns = 0;
  uint64_t QuarantinedCells = 0;
  /// Wall-clock pool timing over the check's explorations (main grid plus
  /// sweep). Nondeterministic, so deliberately *not* part of toString():
  /// the printed report stays byte-identical across --jobs levels; this
  /// feeds the --metrics-out "pool" section instead.
  PoolMetrics Pool;
  /// Dispatch-engine telemetry (blocks translated, cache hits, fused ops)
  /// summed over every execution. Unlike AggregateStats this is NOT
  /// deterministic across --jobs levels — translation and cache-hit counts
  /// depend on which worker slot's reused machine ran each cell — so, like
  /// Pool, it feeds the metrics document and never toString(). Under
  /// --isolate=process, worker-executed cells contribute nothing here (the
  /// wire codec deliberately omits DispatchStats); only local-fallback
  /// cells do.
  qir::DispatchStats AggregateDispatch;
  /// Supervision counters of the process backend (all-zero, thread-flagged
  /// under --isolate=thread). Wall-clock-flavored like Pool: feeds the
  /// metrics document's "isolation" section, never toString().
  IsolationStats Isolation;

  std::string toString() const;
};

/// Runs the job.
RefinementReport checkRefinement(const RefinementJob &Job);

/// Which fault-plan trigger one exhaustion-sweep cell schedules: forced
/// allocation failure or forced realization (pointer-to-integer cast)
/// failure. Which kinds a model reaches comes from the registry's
/// capability flags (see planRefinementGrid).
enum class SweepInjectKind { Allocation, Cast };

/// One sweep cell: a main-grid cell times one injection kind. The adaptive
/// ordinal loop (runSweepCellProbes) lives inside the cell's work item, so
/// a cell is one exploration task regardless of how many injection points
/// it discovers.
struct SweepCell {
  size_t CtxIdx = 0;
  bool IsTgt = false;
  SweepInjectKind Kind = SweepInjectKind::Allocation;
  std::shared_ptr<const qir::QirModule> Module;
  RunConfig Config;
  std::function<std::map<std::string, ExternalHandler>()> MakeHandlers;
};

/// The fully planned, deterministic schedule of one refinement job: the
/// post-defaulting grid axes, each context instantiated and compiled
/// exactly once, the main-grid ExplorationPlan in merge order, and (when
/// the job sweeps) the sweep cells in their merge order.
///
/// This is the single source of truth for *what cell N means*: both the
/// in-process backends and the --isolate=process worker protocol plan with
/// this function, so a plan index (or its CellIndexBase-offset journal
/// index) denotes the same module × config on every side of a process
/// boundary and across a resume.
struct GridSchedule {
  /// The grid axes after checkRefinement's defaulting rules (empty
  /// contexts -> the empty context; empty oracles -> {first-fit,
  /// last-fit}; empty tapes -> the base config's tape).
  std::vector<ContextVariant> Contexts;
  std::vector<OracleFactory> Oracles;
  std::vector<std::vector<Word>> Tapes;

  /// Per-context planning products, in context order.
  struct ContextSlot {
    /// Seeded report: name, and the instantiation error when the context's
    /// source failed to splice (Planned stays true for the erroring
    /// context; later contexts are unplanned under fail-fast).
    ContextReport Report;
    /// Keep instantiated programs alive for the whole exploration: the
    /// compiled modules alias their ASTs.
    std::optional<Program> SrcInst, TgtInst;
    /// The once-compiled modules, shared by grid items and sweep cells.
    std::shared_ptr<const qir::QirModule> SrcModule, TgtModule;
    /// False for contexts skipped by a fail-fast planning stop.
    bool Planned = false;
  };
  std::vector<ContextSlot> PerContext;

  /// The main grid, in merge order (context-major, source side before
  /// target, oracle-major, tape-minor).
  ExplorationPlan Plan;
  /// Each plan item's provenance, parallel to Plan.Items.
  struct Origin {
    size_t ContextIdx = 0;
    bool IsTgt = false;
  };
  std::vector<Origin> Origins;
  /// True when a fail-fast instantiation error stopped planning early.
  bool StoppedPlanning = false;
  /// Sweep cells in merge order (built only when Job.ExhaustionSweep);
  /// contexts with instantiation errors contribute none.
  std::vector<SweepCell> SweepCells;
};

/// Phase 1 of checkRefinement, exposed for the worker side of the process
/// backend: applies the defaulting rules, instantiates and compiles every
/// context, and lays out the deterministic grid (and sweep) plan.
GridSchedule planRefinementGrid(const RefinementJob &Job);

/// Whether one sweep probe's forced fault actually fired: the run ended out
/// of memory with an "injected ..." fault reason. Works with tracing
/// compiled out; shared by the sweep's adaptive ordinal loop and the
/// process backend's frame decoder.
bool sweepProbeFired(const RunResult &R);

/// What runSweepCellProbes did.
struct SweepProbeSummary {
  uint64_t Probes = 0;
  bool Capped = false;
};

/// The adaptive injection-point loop of one sweep cell: probes ordinal
/// N = 1, 2, ... until a probe no longer fires (the first non-firing N is
/// one past the cell's targeted-operation count) or \p MaxPoints is
/// exceeded. \p OnProbe sees every probe's ordinal and (mutable) result,
/// fired or not, in ordinal order. Runs on the calling thread against
/// \p Exec; both backends and the worker protocol execute sweep cells
/// through this one loop, so probe sequences agree everywhere.
SweepProbeSummary
runSweepCellProbes(const SweepCell &Cell, ExecState &Exec, uint64_t MaxPoints,
                   const std::function<void(uint64_t, RunResult &)> &OnProbe);

/// One cell of the cross-model refinement matrix: the full refinement
/// report for one (source model, target model) pair.
struct MatrixCell {
  ModelKind SrcModel = ModelKind::Concrete;
  ModelKind TgtModel = ModelKind::Concrete;
  /// False for cells never explored: a fail-fast matrix stops after the
  /// first failing cell, leaving later cells unexplored rather than
  /// reported as vacuously refining.
  bool Ran = false;
  RefinementReport Report;
};

/// Verdict matrix of checkRefinementMatrix: one refinement check per
/// ordered (source model, target model) pair over the same two programs.
struct MatrixReport {
  /// The models, in the order the caller gave them; rows and columns of
  /// the matrix alike.
  std::vector<ModelKind> Models;
  /// Models.size()^2 cells, source-major, target-minor — the exact order
  /// the checks ran in, so per-cell merge callbacks stream in this order.
  std::vector<MatrixCell> Cells;
  /// True when every explored cell refines and no cell was skipped.
  bool Refines = true;
  /// Sums of the per-cell counters, for the metrics document's aggregate
  /// section. Deterministic like their per-cell counterparts.
  uint64_t RunsPerformed = 0;
  uint64_t TimedOutRuns = 0;
  bool SweepRan = false;
  uint64_t InjectedRuns = 0;
  /// Worker crashes / quarantined cells summed over the cells
  /// (--isolate=process; zero under the thread backend).
  uint64_t CrashedRuns = 0;
  uint64_t QuarantinedCells = 0;
  ModelStats AggregateStats;
  /// Nondeterministic pool timing, summed; not part of toString().
  PoolMetrics Pool;
  /// Dispatch telemetry summed over the cells; nondeterministic like Pool.
  qir::DispatchStats AggregateDispatch;
  /// Process-backend supervision counters, accumulated; metrics-only.
  IsolationStats Isolation;

  /// The verdict table ("ok" / "FAIL" / "-" for unexplored cells) followed
  /// by a summary line and the full report of every failing cell.
  /// Byte-identical at every Jobs level, like RefinementReport::toString.
  std::string toString() const;
};

/// The number of main-grid plan slots one matrix cell can occupy:
/// contexts x {src,tgt} x oracles x tapes after checkRefinement's
/// defaulting rules. Cell K's journal indices are offset by K times this,
/// so one journal file covers the whole matrix and --resume replays each
/// cell's finished prefix. Sweep probes are derived deterministically and
/// never journaled, exactly as in the single-pair check.
uint64_t matrixCellCapacity(const RefinementJob &Base);

/// Runs the N x N cross-model matrix: for every ordered pair of \p Models,
/// a full checkRefinement of \p Base with the pair's models substituted
/// for BaseSrc/BaseTgt. Cells run source-major, target-minor; each cell's
/// CachedCell/OnCellMerged indices are rebased by matrixCellCapacity so
/// the base job's journal hooks span the whole matrix. With
/// Base.Exec.FailFast the matrix stops after the first failing cell.
MatrixReport checkRefinementMatrix(const RefinementJob &Base,
                                   const std::vector<ModelKind> &Models);

/// Convenience: a sampling oracle set — first-fit, last-fit, and
/// \p RandomCount seeded random oracles.
std::vector<OracleFactory> sampledOracles(unsigned RandomCount,
                                          uint64_t SeedBase = 0x5eed);

/// Largest oracle grid enumeratedOracles() will build. Each oracle is a
/// small closure that decodes its base-address sequence on demand, so the
/// cap bounds the factory vector itself, not Decisions-sized sequences.
inline constexpr uint64_t MaxEnumeratedOracles = 1u << 20;

/// Exhaustive placement enumeration for tiny address spaces: every sequence
/// of \p Decisions base addresses drawn from the usable space
/// [1, AddressWords - 1), i.e. (AddressWords - 2)^Decisions oracles, in
/// lexicographic order with the first decision most significant. Sequences
/// are decoded lazily from the oracle's grid index when the factory is
/// invoked; nothing of size Decisions is materialized up front. A grid
/// larger than MaxEnumeratedOracles is rejected: the function returns an
/// empty vector and, when \p Error is non-null, a diagnosis naming the
/// offending grid size.
std::vector<OracleFactory> enumeratedOracles(uint64_t AddressWords,
                                             unsigned Decisions,
                                             std::string *Error = nullptr);

} // namespace qcm

#endif // QCM_REFINEMENT_REFINEMENTCHECKER_H
