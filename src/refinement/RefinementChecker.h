//===- refinement/RefinementChecker.h - Refinement by exploration -*- C++ -*-=//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks behavioral refinement between a source and a target program by
/// exhaustive/sampled exploration:
///
/// * contexts — instantiations of the programs' extern functions — model
///   the universal quantification over program contexts. Refinement must
///   hold per context: for every context C, behaviors(C[tgt]) is included
///   in behaviors(C[src]);
/// * placement oracles enumerate or sample the nondeterministic choice of
///   concrete addresses (allocation in the concrete model, realization in
///   the quasi-concrete model);
/// * input tapes vary the input() events.
///
/// Paper *invalidity* results are established soundly here: the checker
/// exhibits an explicit context/oracle/tape under which the target shows a
/// behavior the source cannot. *Validity* results are evidence by
/// exploration; their sound counterpart is the SimulationChecker.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_REFINEMENT_REFINEMENTCHECKER_H
#define QCM_REFINEMENT_REFINEMENTCHECKER_H

#include "refinement/BehaviorSet.h"
#include "refinement/Exploration.h"
#include "semantics/Runner.h"

#include <functional>
#include <string>
#include <vector>

namespace qcm {

class ProgressSink;

/// One context under which refinement is checked. Preferred form: language
/// source text defining bodies for the programs' extern functions (see
/// refinement/Contexts.h), which confines the context to exactly the
/// capabilities the paper grants it. Host-level handlers may additionally
/// be supplied for externs left uninstantiated; a factory keeps runs
/// independent when handlers carry state.
struct ContextVariant {
  std::string Name = "empty";
  /// Language-level context functions spliced over the externs.
  std::string ContextSource;
  /// Host handlers for externs not covered by ContextSource.
  std::function<std::map<std::string, ExternalHandler>()> MakeHandlers;

  static ContextVariant empty() { return ContextVariant{}; }

  static ContextVariant fromSource(std::string Name, std::string Source) {
    ContextVariant C;
    C.Name = std::move(Name);
    C.ContextSource = std::move(Source);
    return C;
  }
};

/// A refinement check job.
struct RefinementJob {
  const Program *Src = nullptr;
  const Program *Tgt = nullptr;
  /// Base run configurations; Handlers fields are overwritten per context.
  /// Source and target may use different models (e.g. quasi-concrete source
  /// against concrete target for the Section 6.5 lowering).
  RunConfig BaseSrc;
  RunConfig BaseTgt;
  /// Contexts to quantify over; empty means just the empty context.
  std::vector<ContextVariant> Contexts;
  /// Placement oracles; empty means {first-fit, last-fit}.
  std::vector<OracleFactory> Oracles;
  /// Input tapes; empty means one empty tape.
  std::vector<std::vector<Word>> InputTapes;
  /// Parallelism and early-exit policy. The report is byte-identical at
  /// every Jobs level; FailFast stops the grid at the first counterexample
  /// or context-instantiation error (the report then covers only the grid
  /// prefix up to the failure, still deterministically).
  ExplorationOptions Exec;
  /// Exhaustion-sweep mode: after the main grid, re-run every grid cell
  /// with out-of-memory injected at each reachable injection point of that
  /// side's model — allocations in the concrete model, pointer-to-integer
  /// casts (realization, Section 3.4) in the quasi-concrete model, both in
  /// the eager variant, nothing in the logical model — and check the
  /// truncated target prefixes against the source's under the *strict*
  /// Section 2.3 partial-behavior rule (partialAdmittedStrict). Injection
  /// ordinals are discovered adaptively: ordinal N is probed until a probe
  /// no longer fires, i.e. until N exceeds the cell's operation count.
  bool ExhaustionSweep = false;
  /// Safety cap on injection ordinals probed per sweep cell; cells whose
  /// executions perform more target operations than this are truncated and
  /// flagged in the report (SweepCapped).
  uint64_t SweepMaxPointsPerCell = 512;
  /// Checkpoint hooks (see tools/ToolSupport.h's CheckpointJournal).
  /// CachedCell, when non-null, supplies a previously journaled result for
  /// a main-grid plan index (null = execute the cell); OnCellMerged is
  /// invoked on the merging thread, in plan order, with each main-grid
  /// cell's result before it is consumed. Sweep probes are derived
  /// deterministically from the grid and are not journaled.
  std::function<const RunResult *(size_t)> CachedCell;
  std::function<void(size_t, const RunResult &)> OnCellMerged;
  /// Live progress reporting (support/Progress.h): when non-null, the
  /// checker announces each exploration phase ("grid", then "sweep" when
  /// enabled) with its cell count and advances the sink once per merged
  /// cell, with that cell's failure/timeout/OOM tallies. Calls happen on
  /// the merging thread only. Purely observational — reports are unchanged.
  ProgressSink *Progress = nullptr;
};

/// Verdict for one context.
struct ContextReport {
  std::string ContextName;
  bool Refines = true;
  BehaviorSet SrcBehaviors;
  BehaviorSet TgtBehaviors;
  Behavior Counterexample; // meaningful when !Refines
  /// Set when the context could not even be instantiated (author error).
  std::string InstantiationError;
  /// Executions of this context's cells stopped by the wall-clock watchdog
  /// (InterpConfig.WallTimeoutMs). Their behaviors are in the sets above as
  /// step-limit partials; this counts them so a grid with hung cells
  /// reports *which contexts* timed out instead of hanging the whole run.
  uint64_t TimedOutRuns = 0;

  /// Exhaustion sweep (RefinementJob::ExhaustionSweep). SweepRan marks the
  /// section as meaningful; the partial sets hold the OOM-truncated
  /// behaviors observed under injection, per side.
  bool SweepRan = false;
  bool SweepRefines = true;
  bool SweepCapped = false;
  BehaviorSet SrcInjectedPartials;
  BehaviorSet TgtInjectedPartials;
  Behavior SweepCounterexample; // meaningful when !SweepRefines

  std::string toString() const;
};

/// Overall verdict.
struct RefinementReport {
  bool Refines = true;
  std::vector<ContextReport> PerContext;
  /// Total number of executions merged into the report. With Jobs > 1 and
  /// an early stop, a few additional in-flight executions may have run and
  /// been discarded; this counter is the deterministic, thread-count-
  /// independent one.
  uint64_t RunsPerformed = 0;
  /// Memory-event statistics summed over every execution (source and
  /// target, all contexts/oracles/tapes); lets benchmarks report event
  /// counts alongside timings.
  ModelStats AggregateStats;
  /// Executions stopped by the wall-clock watchdog, over all contexts.
  uint64_t TimedOutRuns = 0;
  /// Exhaustion sweep: whether it ran, and how many injected probe
  /// executions it performed. RunsPerformed stays the main grid's counter;
  /// probe executions are counted here, separately and deterministically.
  bool SweepRan = false;
  uint64_t InjectedRuns = 0;
  /// Wall-clock pool timing over the check's explorations (main grid plus
  /// sweep). Nondeterministic, so deliberately *not* part of toString():
  /// the printed report stays byte-identical across --jobs levels; this
  /// feeds the --metrics-out "pool" section instead.
  PoolMetrics Pool;
  /// Dispatch-engine telemetry (blocks translated, cache hits, fused ops)
  /// summed over every execution. Unlike AggregateStats this is NOT
  /// deterministic across --jobs levels — translation and cache-hit counts
  /// depend on which worker slot's reused machine ran each cell — so, like
  /// Pool, it feeds the metrics document and never toString().
  qir::DispatchStats AggregateDispatch;

  std::string toString() const;
};

/// Runs the job.
RefinementReport checkRefinement(const RefinementJob &Job);

/// One cell of the cross-model refinement matrix: the full refinement
/// report for one (source model, target model) pair.
struct MatrixCell {
  ModelKind SrcModel = ModelKind::Concrete;
  ModelKind TgtModel = ModelKind::Concrete;
  /// False for cells never explored: a fail-fast matrix stops after the
  /// first failing cell, leaving later cells unexplored rather than
  /// reported as vacuously refining.
  bool Ran = false;
  RefinementReport Report;
};

/// Verdict matrix of checkRefinementMatrix: one refinement check per
/// ordered (source model, target model) pair over the same two programs.
struct MatrixReport {
  /// The models, in the order the caller gave them; rows and columns of
  /// the matrix alike.
  std::vector<ModelKind> Models;
  /// Models.size()^2 cells, source-major, target-minor — the exact order
  /// the checks ran in, so per-cell merge callbacks stream in this order.
  std::vector<MatrixCell> Cells;
  /// True when every explored cell refines and no cell was skipped.
  bool Refines = true;
  /// Sums of the per-cell counters, for the metrics document's aggregate
  /// section. Deterministic like their per-cell counterparts.
  uint64_t RunsPerformed = 0;
  uint64_t TimedOutRuns = 0;
  bool SweepRan = false;
  uint64_t InjectedRuns = 0;
  ModelStats AggregateStats;
  /// Nondeterministic pool timing, summed; not part of toString().
  PoolMetrics Pool;
  /// Dispatch telemetry summed over the cells; nondeterministic like Pool.
  qir::DispatchStats AggregateDispatch;

  /// The verdict table ("ok" / "FAIL" / "-" for unexplored cells) followed
  /// by a summary line and the full report of every failing cell.
  /// Byte-identical at every Jobs level, like RefinementReport::toString.
  std::string toString() const;
};

/// The number of main-grid plan slots one matrix cell can occupy:
/// contexts x {src,tgt} x oracles x tapes after checkRefinement's
/// defaulting rules. Cell K's journal indices are offset by K times this,
/// so one journal file covers the whole matrix and --resume replays each
/// cell's finished prefix. Sweep probes are derived deterministically and
/// never journaled, exactly as in the single-pair check.
uint64_t matrixCellCapacity(const RefinementJob &Base);

/// Runs the N x N cross-model matrix: for every ordered pair of \p Models,
/// a full checkRefinement of \p Base with the pair's models substituted
/// for BaseSrc/BaseTgt. Cells run source-major, target-minor; each cell's
/// CachedCell/OnCellMerged indices are rebased by matrixCellCapacity so
/// the base job's journal hooks span the whole matrix. With
/// Base.Exec.FailFast the matrix stops after the first failing cell.
MatrixReport checkRefinementMatrix(const RefinementJob &Base,
                                   const std::vector<ModelKind> &Models);

/// Convenience: a sampling oracle set — first-fit, last-fit, and
/// \p RandomCount seeded random oracles.
std::vector<OracleFactory> sampledOracles(unsigned RandomCount,
                                          uint64_t SeedBase = 0x5eed);

/// Largest oracle grid enumeratedOracles() will build. Each oracle is a
/// small closure that decodes its base-address sequence on demand, so the
/// cap bounds the factory vector itself, not Decisions-sized sequences.
inline constexpr uint64_t MaxEnumeratedOracles = 1u << 20;

/// Exhaustive placement enumeration for tiny address spaces: every sequence
/// of \p Decisions base addresses drawn from the usable space
/// [1, AddressWords - 1), i.e. (AddressWords - 2)^Decisions oracles, in
/// lexicographic order with the first decision most significant. Sequences
/// are decoded lazily from the oracle's grid index when the factory is
/// invoked; nothing of size Decisions is materialized up front. A grid
/// larger than MaxEnumeratedOracles is rejected: the function returns an
/// empty vector and, when \p Error is non-null, a diagnosis naming the
/// offending grid size.
std::vector<OracleFactory> enumeratedOracles(uint64_t AddressWords,
                                             unsigned Decisions,
                                             std::string *Error = nullptr);

} // namespace qcm

#endif // QCM_REFINEMENT_REFINEMENTCHECKER_H
