//===- refinement/Simulation.cpp ------------------------------------------===//

#include "refinement/Simulation.h"

#include "ir/Compile.h"
#include "memory/ModelRegistry.h"

#include <cassert>

using namespace qcm;

namespace {

/// Materializes entry arguments exactly like the Runner does.
Outcome<Value> materializeArg(const ArgSpec &Spec, Memory &Mem) {
  if (Spec.ArgKind == ArgSpec::Kind::Int)
    return Outcome<Value>::success(Value::makeInt(Spec.IntValue));
  Outcome<Value> P = Mem.allocate(Spec.Size);
  if (!P)
    return P;
  for (size_t Idx = 0; Idx < Spec.Init.size(); ++Idx) {
    Value Slot = P.value().isPtr()
                     ? Value::makePtr(P.value().ptr().Block,
                                      P.value().ptr().Offset +
                                          static_cast<Word>(Idx))
                     : Value::makeInt(P.value().intValue() +
                                      static_cast<Word>(Idx));
    Outcome<Unit> Stored = Mem.store(Slot, Value::makeInt(Spec.Init[Idx]));
    if (!Stored)
      return Stored.propagate<Value>();
  }
  return P;
}

} // namespace

SimulationChecker::SimulationChecker(const SimulationSetup &Setup)
    : Setup(Setup) {
  assert(Setup.Src && Setup.Tgt && "simulation requires both programs");
  // One compilation per side; the machines share the modules (and a future
  // multi-argument exploration would reuse them across machines).
  SrcMachine = std::make_unique<Machine>(qir::compileProgram(*Setup.Src),
                                         makeMemory(Setup.SrcConfig),
                                         Setup.SrcConfig.Interp);
  TgtMachine = std::make_unique<Machine>(qir::compileProgram(*Setup.Tgt),
                                         makeMemory(Setup.TgtConfig),
                                         Setup.TgtConfig.Interp);
}

SimulationChecker::~SimulationChecker() = default;

std::optional<std::string> SimulationChecker::begin(InvariantUpdate Init) {
  assert(!Begun && "begin() called twice");
  Begun = true;

  if (Outcome<Unit> G = SrcMachine->setupGlobals(); !G)
    return "source global setup failed: " + G.fault().Reason;
  if (Outcome<Unit> G = TgtMachine->setupGlobals(); !G)
    return "target global setup failed: " + G.fault().Reason;

  for (const ArgSpec &Spec : Setup.SrcConfig.Args) {
    Outcome<Value> V = materializeArg(Spec, SrcMachine->memory());
    if (!V)
      return "source argument setup failed: " + V.fault().Reason;
    SrcArgs.push_back(V.value());
  }
  for (const ArgSpec &Spec : Setup.TgtConfig.Args) {
    Outcome<Value> V = materializeArg(Spec, TgtMachine->memory());
    if (!V)
      return "target argument setup failed: " + V.fault().Reason;
    TgtArgs.push_back(V.value());
  }

  if (Outcome<Unit> S =
          SrcMachine->start(Setup.SrcConfig.Entry, SrcArgs);
      !S)
    return "source start failed: " + S.fault().Reason;
  if (Outcome<Unit> S =
          TgtMachine->start(Setup.TgtConfig.Entry, TgtArgs);
      !S)
    return "target start failed: " + S.fault().Reason;

  MemoryInvariant Inv;
  if (Init)
    if (auto Err = Init(Inv, *SrcMachine, *TgtMachine))
      return "initial invariant construction failed: " + *Err;
  if (auto Err = establish(std::move(Inv)))
    return "entry invariant does not hold: " + *Err;

  // Entry arguments must be equivalent w.r.t. the entry bijection
  // (Section 5.1, "equivalent arguments").
  if (SrcArgs.size() != TgtArgs.size())
    return "entry argument counts differ";
  for (size_t Idx = 0; Idx < SrcArgs.size(); ++Idx)
    if (!valueEquivAtCall(SrcArgs[Idx], TgtArgs[Idx]))
      return "entry argument " + std::to_string(Idx + 1) +
             " is not equivalent (" + SrcArgs[Idx].toString() + " vs " +
             TgtArgs[Idx].toString() + ")";
  return std::nullopt;
}

bool SimulationChecker::valueEquivAtCall(const Value &S,
                                         const Value &T) const {
  assert(!Checkpoints.empty());
  const Bijection &Alpha = Checkpoints.back().Inv.Alpha;
  BlockView TgtView(TgtMachine->memory());
  bool CrossModel =
      modelDescriptor(TgtMachine->memory().kind()).ValuesFullyConcrete;
  return valuesEquivalent(Alpha, S, T, CrossModel ? &TgtView : nullptr);
}

std::optional<std::string>
SimulationChecker::establish(MemoryInvariant Inv) {
  if (auto Err = Inv.holdsOn(SrcMachine->memory(), TgtMachine->memory()))
    return Err;
  InvariantCheckpoint CP(std::move(Inv), SrcMachine->memory(),
                         TgtMachine->memory());
  if (!Checkpoints.empty())
    if (auto Err = checkFutureInvariant(Checkpoints.back(), CP))
      return "illegal invariant evolution: " + *Err;
  Checkpoints.push_back(std::move(CP));
  return std::nullopt;
}

std::optional<SimulationChecker::SyncPoint>
SimulationChecker::advanceBoth(std::string &Error) {
  Signal SrcSig =
      NeedsResume ? SrcMachine->finishExternalCall() : SrcMachine->run();
  Signal TgtSig =
      NeedsResume ? TgtMachine->finishExternalCall() : TgtMachine->run();
  NeedsResume = false;

  // Source-side outcomes that settle the proof early.
  if (SrcSig.SignalKind == Signal::Kind::Faulted) {
    if (SrcSig.FaultInfo.isUndefined()) {
      SyncPoint P;
      P.PointKind = SyncPoint::Kind::SrcDischarge;
      return P;
    }
    Error = "source ran out of memory under the chosen oracle: " +
            SrcSig.FaultInfo.Reason;
    return std::nullopt;
  }
  if (SrcSig.SignalKind == Signal::Kind::StepLimitReached) {
    Error = "source exhausted its step budget";
    return std::nullopt;
  }

  // Target-side outcomes.
  if (TgtSig.SignalKind == Signal::Kind::Faulted) {
    if (TgtSig.FaultInfo.isOutOfMemory()) {
      // The target may run out of memory even when the source does not
      // (Section 2.3); its partial trace is synchronized with the source's.
      if (!isEventPrefix(TgtMachine->events(), SrcMachine->events()) &&
          !isEventPrefix(SrcMachine->events(), TgtMachine->events())) {
        Error = "target out-of-memory with desynchronized events";
        return std::nullopt;
      }
      SyncPoint P;
      P.PointKind = SyncPoint::Kind::TgtDischarge;
      return P;
    }
    Error = "target exhibits a fault the source does not: " +
            TgtSig.FaultInfo.Reason;
    return std::nullopt;
  }
  if (TgtSig.SignalKind == Signal::Kind::StepLimitReached) {
    Error = "target exhausted its step budget";
    return std::nullopt;
  }

  if (!(SrcMachine->events() == TgtMachine->events())) {
    Error = "event traces desynchronized: source " +
            eventsToString(SrcMachine->events()) + " vs target " +
            eventsToString(TgtMachine->events());
    return std::nullopt;
  }

  if (SrcSig.SignalKind == Signal::Kind::ExternalCall &&
      TgtSig.SignalKind == Signal::Kind::ExternalCall) {
    if (SrcSig.Callee != TgtSig.Callee) {
      Error = "executions stopped at different unknown calls: '" +
              SrcSig.Callee + "' vs '" + TgtSig.Callee + "'";
      return std::nullopt;
    }
    SyncPoint P;
    P.PointKind = SyncPoint::Kind::Call;
    P.Callee = SrcSig.Callee;
    P.SrcCallArgs = SrcSig.Args;
    P.TgtCallArgs = TgtSig.Args;
    return P;
  }
  if (SrcSig.SignalKind == Signal::Kind::Finished &&
      TgtSig.SignalKind == Signal::Kind::Finished) {
    SyncPoint P;
    P.PointKind = SyncPoint::Kind::Finished;
    return P;
  }
  Error = "executions desynchronized: one stopped at an unknown call, the "
          "other finished";
  return std::nullopt;
}

std::optional<std::string>
SimulationChecker::expectCall(const std::string &Callee,
                              InvariantUpdate Update, ContextAction Action) {
  assert(Begun && "expectCall() before begin()");
  if (Discharged)
    return std::nullopt;

  std::string Error;
  std::optional<SyncPoint> Point = advanceBoth(Error);
  if (!Point)
    return Error;
  if (Point->PointKind == SyncPoint::Kind::SrcDischarge) {
    Discharged = true;
    DischargeReason = "source undefined behavior admits all target behaviors";
    return std::nullopt;
  }
  if (Point->PointKind == SyncPoint::Kind::TgtDischarge) {
    Discharged = true;
    DischargeReason = "target out of memory: partial behavior admitted";
    return std::nullopt;
  }
  if (Point->PointKind != SyncPoint::Kind::Call)
    return "expected a call to '" + Callee +
           "' but both executions finished";
  if (Point->Callee != Callee)
    return "expected a call to '" + Callee + "' but reached '" +
           Point->Callee + "'";

  // Obligation: the author's invariant holds here and legally evolved.
  MemoryInvariant Inv = Checkpoints.back().Inv;
  if (Update)
    if (auto Err = Update(Inv, *SrcMachine, *TgtMachine))
      return "invariant update failed at call to '" + Callee + "': " + *Err;
  if (auto Err = establish(Inv))
    return "invariant does not hold at call to '" + Callee + "': " + *Err;

  // Obligation: equivalent arguments (Section 5.1, "guarantee").
  if (Point->SrcCallArgs.size() != Point->TgtCallArgs.size())
    return "call argument counts differ at '" + Callee + "'";
  for (size_t Idx = 0; Idx < Point->SrcCallArgs.size(); ++Idx)
    if (!valueEquivAtCall(Point->SrcCallArgs[Idx], Point->TgtCallArgs[Idx]))
      return "argument " + std::to_string(Idx + 1) + " of '" + Callee +
             "' is not equivalent (" + Point->SrcCallArgs[Idx].toString() +
             " vs " + Point->TgtCallArgs[Idx].toString() + ")";

  // Run the instantiated unknown function.
  if (Action)
    if (auto Err = Action(*SrcMachine, Point->SrcCallArgs, *TgtMachine,
                          Point->TgtCallArgs))
      return "context action failed at '" + Callee + "': " + *Err;

  // Obligation (Section 5.1, "assume" after the call): the invariant holds
  // again — public memories evolved equivalently, private memories are
  // untouched (=prv is implied because the invariant stores the private
  // contents).
  if (auto Err = establish(std::move(Inv)))
    return "invariant violated by the unknown call to '" + Callee +
           "': " + *Err;

  NeedsResume = true;
  return std::nullopt;
}

std::optional<std::string>
SimulationChecker::expectReturn(InvariantUpdate Update) {
  assert(Begun && "expectReturn() before begin()");
  if (Discharged)
    return std::nullopt;

  std::string Error;
  std::optional<SyncPoint> Point = advanceBoth(Error);
  if (!Point)
    return Error;
  if (Point->PointKind == SyncPoint::Kind::SrcDischarge) {
    Discharged = true;
    DischargeReason = "source undefined behavior admits all target behaviors";
    return std::nullopt;
  }
  if (Point->PointKind == SyncPoint::Kind::TgtDischarge) {
    Discharged = true;
    DischargeReason = "target out of memory: partial behavior admitted";
    return std::nullopt;
  }
  if (Point->PointKind != SyncPoint::Kind::Finished)
    return "expected both executions to finish, but they stopped at a call "
           "to '" +
           Point->Callee + "'";

  MemoryInvariant Inv = Checkpoints.back().Inv;
  if (Update)
    if (auto Err = Update(Inv, *SrcMachine, *TgtMachine))
      return "final invariant update failed: " + *Err;
  if (auto Err = establish(Inv))
    return "final invariant does not hold: " + *Err;

  // Obligation: beta_s =prv beta_e — return with the private memories the
  // function was given (Section 5.3).
  if (!Inv.samePrivateAs(Checkpoints.front().Inv))
    return "private memories at return differ from the entry invariant";
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Option exploration
//===----------------------------------------------------------------------===//

std::string SimulationSweepReport::toString() const {
  std::string Text = AllHold ? "SIMULATION HOLDS" : "SIMULATION FAILS";
  Text += " (" + std::to_string(OptionsChecked) + " options)\n";
  for (const SimulationOptionResult &R : PerOption) {
    Text += " option '" + R.Name + "': ";
    if (!R.Holds)
      Text += "FAILS: " + R.Detail + "\n";
    else if (R.Discharged)
      Text += "holds (discharged: " + R.Detail + ")\n";
    else
      Text += "holds\n";
  }
  return Text;
}

SimulationSweepReport
qcm::checkSimulationOptions(const std::vector<SimulationOption> &Options,
                            const SimulationScript &Script,
                            const ExplorationOptions &Exec) {
  SimulationSweepReport Report;
  std::vector<SimulationOptionResult> Results(Options.size());
  exploreIndexed(
      Options.size(), Exec,
      [&](size_t I) {
        // Worker-confined: the checker, both machines, and both memories
        // live and die on this thread; the script only sees this option's
        // checker.
        SimulationChecker Checker(Options[I].Setup);
        std::optional<std::string> Err = Script(Checker);
        SimulationOptionResult &R = Results[I];
        R.Name = Options[I].Name;
        R.Holds = !Err.has_value();
        R.Discharged = Checker.discharged();
        R.Detail = Err ? *Err : Checker.dischargeReason();
      },
      [&](size_t I) {
        ++Report.OptionsChecked;
        Report.PerOption.push_back(std::move(Results[I]));
        if (!Report.PerOption.back().Holds) {
          Report.AllHold = false;
          if (Exec.FailFast)
            return ExploreStep::Stop;
        }
        return ExploreStep::Continue;
      });
  return Report;
}

std::vector<SimulationOption>
qcm::oracleOptions(const SimulationSetup &Base,
                   const std::vector<std::pair<std::string, OracleFactory>>
                       &NamedOracles) {
  std::vector<SimulationOption> Options;
  Options.reserve(NamedOracles.size());
  for (const auto &[Name, Oracle] : NamedOracles) {
    SimulationOption O;
    O.Name = Name;
    O.Setup = Base;
    O.Setup.SrcConfig.Oracle = Oracle;
    O.Setup.TgtConfig.Oracle = Oracle;
    Options.push_back(std::move(O));
  }
  return Options;
}

//===----------------------------------------------------------------------===//
// Context action library
//===----------------------------------------------------------------------===//

ContextAction qcm::sim_actions::writeThroughFirstArg(Word V) {
  return [V](Machine &Src, const std::vector<Value> &SrcArgs, Machine &Tgt,
             const std::vector<Value> &TgtArgs)
             -> std::optional<std::string> {
    if (SrcArgs.empty() || TgtArgs.empty())
      return "call has no arguments to write through";
    if (Outcome<Unit> R = Src.memory().store(SrcArgs[0], Value::makeInt(V));
        !R)
      return "source store failed: " + R.fault().Reason;
    if (Outcome<Unit> R = Tgt.memory().store(TgtArgs[0], Value::makeInt(V));
        !R)
      return "target store failed: " + R.fault().Reason;
    return std::nullopt;
  };
}

ContextAction qcm::sim_actions::castFirstArg() {
  return [](Machine &Src, const std::vector<Value> &SrcArgs, Machine &Tgt,
            const std::vector<Value> &TgtArgs)
             -> std::optional<std::string> {
    if (SrcArgs.empty() || TgtArgs.empty())
      return "call has no arguments to cast";
    if (Outcome<Value> R = Src.memory().castPtrToInt(SrcArgs[0]); !R)
      return "source cast failed: " + R.fault().Reason;
    if (Outcome<Value> R = Tgt.memory().castPtrToInt(TgtArgs[0]); !R)
      return "target cast failed: " + R.fault().Reason;
    return std::nullopt;
  };
}
