//===- refinement/ProcessPool.cpp -----------------------------------------===//

#include "refinement/ProcessPool.h"

#include "support/Profiler.h"
#include "support/Telemetry.h"

#include <chrono>
#include <csignal>
#include <deque>
#include <poll.h>

using namespace qcm;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t msUntil(Clock::time_point Now, Clock::time_point Then) {
  if (Then <= Now)
    return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Then - Now)
          .count());
}

/// Per-item busy time, profiler-gated like PoolMetrics everywhere else.
uint64_t elapsedUs(const Stopwatch &Busy) {
#if QCM_PROFILE_ENABLED
  return static_cast<uint64_t>(Busy.seconds() * 1e6);
#else
  (void)Busy;
  return 0;
#endif
}

/// Completion marker detection. qcm::jsonEscape escapes '"' inside string
/// values, so the byte sequence "done":true can only appear as a top-level
/// field of the (flat, JsonObject-produced) payload.
bool isDoneFrame(const std::string &Payload) {
  return Payload.find("\"done\":true") != std::string::npos;
}

} // namespace

/// One worker slot: the live process (when any), its supervision state, and
/// the restart bookkeeping that survives the process itself.
struct ProcessPool::Worker {
  enum class St { Dead, Starting, Idle, Busy };

  std::unique_ptr<Subprocess> Proc;
  St State = St::Dead;
  /// The in-flight item while Busy.
  size_t Item = 0;
  /// Consecutive deaths feeding the backoff exponent; reset by a completed
  /// item.
  unsigned ConsecutiveFailures = 0;
  /// Earliest time the slot may respawn; epoch (default) = immediately.
  Clock::time_point RestartAt{};
  /// Last frame (or dispatch) time; the hang watchdog measures from here.
  Clock::time_point LastActivity{};
  /// True once any process in this slot completed the init handshake.
  bool EverReady = false;
  /// Per-item timer for pool metrics.
  Stopwatch BusyClock;
};

/// Everything scoped to one explore() call.
struct ProcessPool::ExploreState {
  std::vector<std::optional<std::string>> Requests;
  std::vector<RemoteOutcome> Outcomes;
  std::vector<char> Completed;
  std::deque<size_t> Pending;
};

ProcessPool::ProcessPool(Config C) : Cfg(std::move(C)) {
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  Stats.ProcessBackend = true;
  StatsAtLastDelta.ProcessBackend = true;
  // The supervisor writes to pipes whose far end may have just died; a
  // write-after-death must surface as EPIPE, not SIGPIPE. The tools install
  // this too (installSignalHygiene) — this is defense in depth for other
  // embedders.
  std::signal(SIGPIPE, SIG_IGN);
  Pool.reserve(Cfg.Workers);
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    Pool.push_back(std::make_unique<Worker>());
}

ProcessPool::~ProcessPool() {
  // Graceful shutdown: EOF on stdin asks a protocol-following worker to
  // exit 0; awaitExit escalates to SIGKILL for anything that lingers.
  for (auto &W : Pool)
    if (W->Proc)
      W->Proc->closeStdin();
  for (auto &W : Pool)
    if (W->Proc)
      W->Proc->awaitExit(/*GraceMs=*/200);
}

IsolationStats ProcessPool::takeStatsDelta() {
  IsolationStats Delta = Stats;
  Delta.WorkersSpawned -= StatsAtLastDelta.WorkersSpawned;
  Delta.WorkerRestarts -= StatsAtLastDelta.WorkerRestarts;
  Delta.WorkerCrashes -= StatsAtLastDelta.WorkerCrashes;
  Delta.WorkerHangs -= StatsAtLastDelta.WorkerHangs;
  Delta.CellRetries -= StatsAtLastDelta.CellRetries;
  Delta.QuarantinedCells -= StatsAtLastDelta.QuarantinedCells;
  Delta.LocalFallbackCells -= StatsAtLastDelta.LocalFallbackCells;
  Delta.BackoffMsTotal -= StatsAtLastDelta.BackoffMsTotal;
  StatsAtLastDelta = Stats;
  return Delta;
}

void ProcessPool::spawnWorker(Worker &W, bool IsRestart) {
  prof::Span Sp("worker-spawn", "isolate");
  W.Proc = std::make_unique<Subprocess>();
  std::string Error;
  if (!W.Proc->start(Cfg.WorkerArgv, Error) ||
      !W.Proc->writeFrame(Cfg.InitFrame)) {
    // Spawn/handshake-write failure: count it as a pre-ready death so
    // repeated failures degrade the pool instead of spinning forever.
    W.Proc.reset();
    ++Stats.WorkerCrashes;
    ++ConsecutivePreReadyDeaths;
    if (ConsecutivePreReadyDeaths >= Cfg.SpawnFailureLimit)
      Degraded = true;
    uint64_t BackoffMs =
        std::min<uint64_t>(static_cast<uint64_t>(Cfg.BackoffBaseMs)
                               << std::min(W.ConsecutiveFailures, 16u),
                           Cfg.BackoffMaxMs);
    ++W.ConsecutiveFailures;
    Stats.BackoffMsTotal += BackoffMs;
    W.RestartAt = Clock::now() + std::chrono::milliseconds(BackoffMs);
    W.State = Worker::St::Dead;
    return;
  }
  ++Stats.WorkersSpawned;
  if (IsRestart)
    ++Stats.WorkerRestarts;
  prof::counterAdd("isolate.spawns", 1);
  W.State = Worker::St::Starting;
  W.LastActivity = Clock::now();
  Sp.arg("pid", static_cast<uint64_t>(W.Proc->pid()));
}

void ProcessPool::killWorker(Worker &W) {
  if (!W.Proc)
    return;
  W.Proc->terminate(SIGKILL);
  W.Proc->awaitExit(/*GraceMs=*/0);
  W.Proc.reset();
}

void ProcessPool::handleWorkerDeath(Worker &W, ExploreState &S,
                                    const std::string &Why, bool Hang) {
  std::string Desc = Why;
  if (W.Proc) {
    Subprocess::ExitStatus St = W.Proc->awaitExit(/*GraceMs=*/Hang ? 0 : 100);
    if (Desc.empty())
      Desc = St.describe();
    else if (St.Known && !St.Exited)
      Desc += " (" + St.describe() + ")";
    W.Proc.reset();
  }
  if (Hang)
    ++Stats.WorkerHangs;
  else
    ++Stats.WorkerCrashes;
  prof::counterAdd(Hang ? "isolate.hangs" : "isolate.crashes", 1);

  if (W.State == Worker::St::Busy) {
    RemoteOutcome &Out = S.Outcomes[W.Item];
    ++Out.WorkerCrashes;
    Out.CrashReason = Desc;
    // Partial frames from the dead worker (a sweep cell's first probes)
    // must not survive into a retry or the quarantine record.
    Out.Frames.clear();
    if (Out.WorkerCrashes > Cfg.MaxRetries) {
      Out.Quarantined = true;
      S.Completed[W.Item] = 1;
      ++Stats.QuarantinedCells;
      prof::counterAdd("isolate.quarantined", 1);
    } else {
      ++Stats.CellRetries;
      S.Pending.push_front(W.Item);
    }
  } else if (W.State == Worker::St::Starting) {
    ++ConsecutivePreReadyDeaths;
    if (ConsecutivePreReadyDeaths >= Cfg.SpawnFailureLimit)
      Degraded = true;
  }

  uint64_t BackoffMs =
      std::min<uint64_t>(static_cast<uint64_t>(Cfg.BackoffBaseMs)
                             << std::min(W.ConsecutiveFailures, 16u),
                         Cfg.BackoffMaxMs);
  ++W.ConsecutiveFailures;
  Stats.BackoffMsTotal += BackoffMs;
  W.RestartAt = Clock::now() + std::chrono::milliseconds(BackoffMs);
  W.State = Worker::St::Dead;
}

ExplorationSummary ProcessPool::explore(size_t Count,
                                        const RequestFn &RequestFor,
                                        const MergeFn &Merge,
                                        const LocalRunFn &LocalRun) {
  ExplorationSummary Summary;
  Summary.Pool.Jobs = Cfg.Workers;
  Summary.Pool.Workers.resize(Cfg.Workers);
  if (Count == 0)
    return Summary;

  prof::Span Sp("process-explore", "isolate");
  Sp.arg("items", static_cast<uint64_t>(Count));
  Stopwatch Wall;

  ExploreState S;
  S.Requests.resize(Count);
  S.Outcomes.resize(Count);
  S.Completed.assign(Count, 0);
  for (size_t I = 0; I < Count; ++I) {
    S.Requests[I] = RequestFor(I);
    if (!S.Requests[I]) {
      S.Outcomes[I].Cached = true;
      S.Completed[I] = 1;
    } else {
      S.Pending.push_back(I);
    }
  }

  size_t NextMerge = 0;
  bool Stopped = false;
  auto MergeReady = [&] {
    while (NextMerge < Count && S.Completed[NextMerge]) {
      ++Summary.ItemsMerged;
      ExploreStep Step = Merge(NextMerge, S.Outcomes[NextMerge]);
      ++NextMerge;
      if (Step == ExploreStep::Stop) {
        Stopped = true;
        return;
      }
    }
  };

  auto RunLocally = [&](size_t I) {
    RemoteOutcome &Out = S.Outcomes[I];
    if (LocalRun) {
      Out.Frames = LocalRun(I);
      Out.LocalFallback = true;
      ++Stats.LocalFallbackCells;
      prof::counterAdd("isolate.local_fallback", 1);
    } else {
      Out.Quarantined = true;
      if (Out.CrashReason.empty())
        Out.CrashReason = "worker pool degraded after repeated spawn failures";
      ++Stats.QuarantinedCells;
      prof::counterAdd("isolate.quarantined", 1);
    }
    S.Completed[I] = 1;
  };

  MergeReady(); // an all-cached prefix (full resume) may finish or stop here

  while (!Stopped && NextMerge < Count) {
    Clock::time_point Now = Clock::now();

    // Degraded mode: no more forking; everything still pending runs through
    // the in-process fallback. Busy workers (if any survive) are left to
    // finish their in-flight items normally.
    if (Degraded && !S.Pending.empty()) {
      while (!S.Pending.empty()) {
        size_t I = S.Pending.front();
        S.Pending.pop_front();
        RunLocally(I);
      }
      MergeReady();
      continue;
    }

    // Dispatch pending items to idle workers, in slot order.
    for (unsigned Slot = 0; Slot < Pool.size() && !S.Pending.empty();
         ++Slot) {
      Worker &W = *Pool[Slot];
      if (W.State != Worker::St::Idle)
        continue;
      size_t I = S.Pending.front();
      // A fresh dispatch of a previously crashed item must not accumulate
      // frames from the earlier attempt (already cleared on death — this
      // guards the retry-after-retry path).
      S.Outcomes[I].Frames.clear();
      if (!W.Proc->writeFrame(*S.Requests[I])) {
        // The item stays pending; the dead worker is classified below.
        handleWorkerDeath(W, S, "request write failed", /*Hang=*/false);
        continue;
      }
      S.Pending.pop_front();
      W.Item = I;
      W.State = Worker::St::Busy;
      W.LastActivity = Clock::now();
      W.BusyClock.reset();
    }

    // Respawn dead slots while spawning is still trusted and there is more
    // pending work than live capacity.
    if (!Degraded && !S.Pending.empty()) {
      size_t Capacity = 0;
      for (auto &WPtr : Pool)
        if (WPtr->State == Worker::St::Idle ||
            WPtr->State == Worker::St::Starting)
          ++Capacity;
      for (auto &WPtr : Pool) {
        if (Capacity >= S.Pending.size() || Degraded)
          break;
        Worker &W = *WPtr;
        if (W.State != Worker::St::Dead || Now < W.RestartAt)
          continue;
        spawnWorker(W, /*IsRestart=*/W.EverReady || W.ConsecutiveFailures > 0);
        if (W.State == Worker::St::Starting)
          ++Capacity;
      }
      if (Degraded)
        continue; // drain pending locally at the top of the loop
    }

    // Assemble the poll set: every live worker's stdout (a ready frame or a
    // death can arrive in any state, idle included).
    std::vector<pollfd> Fds;
    std::vector<unsigned> FdSlot;
    for (unsigned Slot = 0; Slot < Pool.size(); ++Slot) {
      Worker &W = *Pool[Slot];
      if (W.Proc && W.Proc->readFd() >= 0) {
        Fds.push_back({W.Proc->readFd(), POLLIN, 0});
        FdSlot.push_back(Slot);
      }
    }

    // Timeout: the nearest busy-worker hang deadline or dead-slot restart
    // time, bounded so supervision stays responsive.
    uint64_t TimeoutMs = 250;
    for (auto &WPtr : Pool) {
      Worker &W = *WPtr;
      if (W.State == Worker::St::Busy && Cfg.ItemTimeoutMs)
        TimeoutMs = std::min(
            TimeoutMs,
            msUntil(Now, W.LastActivity +
                             std::chrono::milliseconds(Cfg.ItemTimeoutMs)));
      else if (W.State == Worker::St::Dead && !S.Pending.empty())
        TimeoutMs = std::min(TimeoutMs, msUntil(Now, W.RestartAt));
    }

    if (Fds.empty()) {
      // All slots dead and in backoff: sleep until the nearest restart.
      ::poll(nullptr, 0,
             static_cast<int>(std::max<uint64_t>(std::min<uint64_t>(
                                                     TimeoutMs, 250),
                                                 1)));
      continue;
    }

    int N = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()),
                   static_cast<int>(std::max<uint64_t>(TimeoutMs, 1)));
    if (N > 0) {
      for (size_t FdI = 0; FdI < Fds.size(); ++FdI) {
        if (!(Fds[FdI].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        unsigned Slot = FdSlot[FdI];
        Worker &W = *Pool[Slot];
        if (W.State == Worker::St::Dead || !W.Proc)
          continue;
        bool Alive = W.Proc->pumpReadable();
        std::string Payload;
        while (W.State != Worker::St::Dead && W.Proc &&
               W.Proc->popFrame(Payload)) {
          W.LastActivity = Clock::now();
          switch (W.State) {
          case Worker::St::Starting:
            if (Payload.find("\"ready\":") != std::string::npos) {
              W.State = Worker::St::Idle;
              W.EverReady = true;
              ConsecutivePreReadyDeaths = 0;
            } else {
              // An init error ({"error":"..."}) is deterministic — every
              // respawn would fail the same way. Count it as a pre-ready
              // death; repeats degrade the pool to the local fallback.
              killWorker(W);
              handleWorkerDeath(W, S, "worker init failed: " + Payload,
                                /*Hang=*/false);
            }
            break;
          case Worker::St::Busy: {
            RemoteOutcome &Out = S.Outcomes[W.Item];
            Out.Frames.push_back(Payload);
            if (isDoneFrame(Payload)) {
              S.Completed[W.Item] = 1;
              W.State = Worker::St::Idle;
              W.ConsecutiveFailures = 0;
              Summary.Pool.Workers[Slot].BusyUs += elapsedUs(W.BusyClock);
              ++Summary.Pool.Workers[Slot].Items;
            }
            break;
          }
          case Worker::St::Idle:
            // A frame with no request outstanding: protocol violation,
            // treated like stream corruption.
            killWorker(W);
            handleWorkerDeath(W, S, "unexpected frame from idle worker",
                              /*Hang=*/false);
            break;
          case Worker::St::Dead:
            break;
          }
        }
        if (!Alive && W.State != Worker::St::Dead) {
          std::string Why;
          if (W.Proc && W.Proc->corrupted())
            Why = "corrupt frame stream";
          handleWorkerDeath(W, S, Why, /*Hang=*/false);
        }
      }
    }

    // Hang watchdog: a busy worker with no frame inside the window is
    // killed and handled as a death.
    if (Cfg.ItemTimeoutMs) {
      Now = Clock::now();
      for (auto &WPtr : Pool) {
        Worker &W = *WPtr;
        if (W.State != Worker::St::Busy ||
            Now - W.LastActivity <
                std::chrono::milliseconds(Cfg.ItemTimeoutMs))
          continue;
        killWorker(W);
        handleWorkerDeath(W, S,
                          "no frame within " +
                              std::to_string(Cfg.ItemTimeoutMs) + " ms",
                          /*Hang=*/true);
      }
    }

    MergeReady();
  }

  if (Stopped) {
    Summary.Cancelled = true;
    // Kill in-flight workers: their stale frames must not leak into the
    // next explore() (grid -> sweep -> matrix cells share the pool).
    for (auto &WPtr : Pool) {
      Worker &W = *WPtr;
      if (W.State == Worker::St::Busy || W.State == Worker::St::Starting) {
        killWorker(W);
        W.State = Worker::St::Dead;
        W.RestartAt = Clock::now(); // not a failure: no backoff
      }
    }
  }

  Summary.Pool.WallUs = elapsedUs(Wall);
  return Summary;
}
