//===- refinement/Validate.cpp --------------------------------------------===//

#include "refinement/Validate.h"

#include "memory/ModelRegistry.h"
#include "refinement/Contexts.h"
#include "support/Profiler.h"

using namespace qcm;

std::string qcm::shortModelName(ModelKind Model) {
  return modelDescriptor(Model).ShortName;
}

std::optional<ModelKind> qcm::modelFromShortName(const std::string &Name) {
  return parseModelName(Name);
}

std::vector<ContextVariant> qcm::standardAdversaryContexts(const Program &P) {
  std::vector<ContextVariant> Out;
  for (const FunctionDecl &F : P.Functions) {
    if (!F.isExtern() || !F.Params.empty())
      continue;
    Out.push_back(ContextVariant::fromSource(
        F.Name + ":marker", contexts::outputMarker(F.Name, 5000)));
    Out.push_back(ContextVariant::fromSource(
        F.Name + ":guess-write", contexts::addressGuesserWriter(F.Name, 1, 77)));
    Out.push_back(ContextVariant::fromSource(
        F.Name + ":exhaust", contexts::exhaustThenMark(F.Name, 4, 42)));
  }
  return Out;
}

std::string ValidationReport::failedModels() const {
  std::string Out;
  for (const ModelValidation &V : PerModel) {
    if (V.Valid)
      continue;
    if (!Out.empty())
      Out += ",";
    Out += shortModelName(V.Model);
  }
  return Out;
}

std::string ValidationReport::toString() const {
  std::string Out;
  for (const ModelValidation &V : PerModel) {
    Out += shortModelName(V.Model) + ": " + (V.Valid ? "valid" : "INVALID") +
           " (" + std::to_string(V.Runs) + " runs)";
    if (!V.Valid) {
      Out += " context '" + V.ContextName + "'";
      if (!V.Detail.empty())
        Out += ": " + V.Detail;
    }
    Out += "\n";
  }
  Out += std::string("verdict: ") + (AllValid ? "valid" : "INVALID") + " (" +
         std::to_string(TotalRuns) + " total runs)";
  return Out;
}

ValidationReport qcm::validateTransformation(const Program &Src,
                                             const Program &Tgt,
                                             const std::vector<ModelKind> &Models,
                                             const ValidationBudget &Budget) {
  ValidationReport Report;
  for (ModelKind Model : Models) {
    prof::Span Span("validate:" + shortModelName(Model), "validate");

    RefinementJob Job;
    Job.Src = &Src;
    Job.Tgt = &Tgt;
    Job.BaseSrc.Model = Model;
    Job.BaseSrc.MemConfig.AddressWords = Budget.AddressWords;
    Job.BaseSrc.Interp.StepLimit = Budget.StepLimit;
    Job.BaseTgt = Job.BaseSrc;
    Job.Contexts.push_back(ContextVariant::empty());
    if (Budget.Adversaries) {
      std::vector<ContextVariant> Advs = standardAdversaryContexts(Src);
      for (ContextVariant &C : Advs)
        Job.Contexts.push_back(std::move(C));
    }
    Job.Oracles = sampledOracles(Budget.RandomOracles);
    Job.InputTapes = Budget.InputTapes;
    Job.Exec.Jobs = Budget.Jobs;
    Job.Exec.FailFast = true;

    RefinementReport R = checkRefinement(Job);
    Span.arg("runs", R.RunsPerformed);

    ModelValidation V;
    V.Model = Model;
    V.Valid = R.Refines;
    V.Runs = R.RunsPerformed;
    if (!R.Refines) {
      for (const ContextReport &C : R.PerContext) {
        if (C.Refines && C.InstantiationError.empty())
          continue;
        V.ContextName = C.ContextName;
        V.Detail = !C.InstantiationError.empty()
                       ? "context instantiation failed: " + C.InstantiationError
                       : "target behavior not admitted by source: " +
                             C.Counterexample.toString();
        break;
      }
      Report.AllValid = false;
    }
    Report.TotalRuns += V.Runs;
    Report.PerModel.push_back(std::move(V));
  }
  return Report;
}
