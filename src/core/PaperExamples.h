//===- core/PaperExamples.h - The paper's example catalog -------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable catalog of every source/target transformation example
/// in the paper, written in the Section 2 language. Tests, benches, and
/// EXPERIMENTS.md generation all pull from this single definition so the
/// experiments cannot drift apart.
///
/// Each example is a closed driver program (entry `main`) plus extern
/// declarations standing for the unknown functions the paper's examples
/// call; contexts instantiate those externs during checking.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_CORE_PAPEREXAMPLES_H
#define QCM_CORE_PAPEREXAMPLES_H

#include "semantics/Runner.h"

#include <string>
#include <vector>

namespace qcm {

/// One paper example: a transformation from SrcSource to TgtSource.
struct PaperExample {
  /// Stable identifier, e.g. "fig1".
  std::string Id;
  /// Where it appears in the paper, e.g. "Figure 1".
  std::string PaperRef;
  std::string Description;
  std::string SrcSource;
  std::string TgtSource;
  std::string Entry = "main";
  std::vector<ArgSpec> Args;
};

/// The full catalog.
const std::vector<PaperExample> &paperExamples();

/// Looks up an example by Id; aborts on unknown ids (programming error).
const PaperExample &getPaperExample(const std::string &Id);

} // namespace qcm

#endif // QCM_CORE_PAPEREXAMPLES_H
