//===- core/QuasiConcrete.h - Umbrella header -------------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: pulls in the full public API.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_CORE_QUASICONCRETE_H
#define QCM_CORE_QUASICONCRETE_H

#include "core/PaperExamples.h"
#include "core/Vm.h"
#include "lang/Ast.h"
#include "lang/Parser.h"
#include "lang/PrettyPrint.h"
#include "lang/TypeCheck.h"
#include "memory/ConcreteMemory.h"
#include "memory/LogicalMemory.h"
#include "memory/QuasiConcreteMemory.h"
#include "opt/ArithSimplify.h"
#include "opt/ConstProp.h"
#include "opt/DeadCodeElim.h"
#include "opt/Lowering.h"
#include "opt/OwnershipOpt.h"
#include "refinement/Contexts.h"
#include "refinement/RefinementChecker.h"
#include "refinement/Simulation.h"
#include "semantics/Runner.h"

#endif // QCM_CORE_QUASICONCRETE_H
