//===- core/Vm.cpp --------------------------------------------------------===//

#include "core/Vm.h"

#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "support/Profiler.h"

using namespace qcm;

std::optional<Program> Vm::compile(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> P;
  {
    prof::Span Span("parse", "frontend");
    Span.arg("bytes", static_cast<uint64_t>(Source.size()));
    P = parseProgram(Source, Diags);
  }
  if (P) {
    prof::Span Span("typecheck", "frontend");
    if (!typeCheck(*P, Diags))
      P.reset();
  }
  Diagnostics = Diags.toString();
  return P;
}

std::optional<RunResult> Vm::compileAndRun(const std::string &Source,
                                           const RunConfig &Config) {
  std::optional<Program> P = compile(Source);
  if (!P)
    return std::nullopt;
  return runProgram(*P, Config);
}
