//===- core/Experiments.cpp -----------------------------------------------===//

#include "core/Experiments.h"

#include "core/Vm.h"
#include "refinement/Contexts.h"

#include <cassert>

using namespace qcm;

namespace {

using namespace qcm::contexts;

ContextVariant ctx(std::string Name, std::string Source) {
  return ContextVariant::fromSource(std::move(Name), std::move(Source));
}

/// Deterministic allocation, as the Section 1 concrete-model argument
/// assumes.
std::vector<OracleFactory> firstFitOnly() {
  return {[] { return std::make_unique<FirstFitOracle>(); }};
}

/// The standard adversary battery for an extern `Fn(Params)`: do-nothing,
/// observable marker, address guess (write and read), and space exhaustion.
std::vector<ContextVariant> adversaries(const std::string &Fn,
                                        const std::string &Params,
                                        Word GuessAddress) {
  return {
      ctx("noop", noop(Fn, Params)),
      ctx("marker", outputMarker(Fn, 5000, Params)),
      ctx("guess-write", addressGuesserWriter(Fn, GuessAddress, 77, Params)),
      ctx("guess-read", addressGuesserReader(Fn, GuessAddress, Params)),
      ctx("exhaust", exhaustThenMark(Fn, 3, 4242, Params)),
  };
}

std::vector<ExperimentSpec> buildMatrix() {
  std::vector<ExperimentSpec> M;

  auto add = [&M](ExperimentSpec Spec) { M.push_back(std::move(Spec)); };

  // E1 — Section 1 intro: CP + DAE across g().
  {
    ExperimentSpec S;
    S.ExampleId = "intro";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "no context can forge the logical address of a";
    S.Contexts = adversaries("g", "", /*GuessAddress=*/1);
    add(S);

    S.ScenarioName = "logical";
    S.SrcModel = S.TgtModel = ModelKind::Logical;
    S.PaperNote = "the logical model justifies it the same way";
    add(S);

    S.ScenarioName = "concrete";
    S.SrcModel = S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = false;
    S.PaperNote = "g can guess a's address and corrupt/observe it";
    S.Oracles = firstFitOnly();
    add(S);

    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.PaperRefines = true;
    S.PaperNote = "no cast ever happens: both runs stay in the infinite "
                  "phase (Beck et al.)";
    S.Oracles = {};
    add(S);
  }

  // E2 — Figure 1: arithmetic optimization I.
  {
    ExperimentSpec S;
    S.ExampleId = "fig1";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "int variables hold machine integers (Section 3.5)";
    add(S);

    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.PaperNote = "casts produce machine integers in phase 2 as well";
    add(S);
  }

  // E3 — Figure 2: DCE of a read-only call.
  {
    ExperimentSpec S;
    S.ExampleId = "fig2";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "realization happens at the cast, kept in both programs";
    S.Contexts = adversaries("bar", "", /*GuessAddress=*/1);
    add(S);

    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.PaperNote = "the kept cast transitions both programs identically";
    add(S);
  }

  // E4 — Figure 3: ownership transfer.
  {
    ExperimentSpec S;
    S.ExampleId = "fig3";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "block is logical/private until hash_put's cast";
    // Globals h[8] take block 1; p's realized block lands first-fit at 1.
    S.Contexts = adversaries("bar", "", /*GuessAddress=*/1);
    add(S);

    S.ScenarioName = "concrete";
    S.SrcModel = S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = false;
    S.PaperNote = "bar can guess p's concrete address";
    // Concrete layout: h occupies [1,9), p lands at 9.
    S.Contexts = adversaries("bar", "", /*GuessAddress=*/9);
    S.Oracles = firstFitOnly();
    add(S);
  }

  // E5 — Figure 4: arithmetic optimization II.
  {
    ExperimentSpec S;
    S.ExampleId = "fig4";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "typed ints make reassociation unconditional";
    add(S);

    S.ScenarioName = "compcert-logical";
    S.SrcModel = S.TgtModel = ModelKind::Logical;
    S.Casts = LogicalMemory::CastBehavior::TransparentNop;
    S.Discipline = TypeDiscipline::Loose;
    S.PaperRefines = false;
    S.PaperNote = "t = a + b adds two logical addresses: undefined";
    add(S);

    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.Casts = LogicalMemory::CastBehavior::Error;
    S.Discipline = TypeDiscipline::Static;
    S.PaperRefines = true;
    S.PaperNote = "typed ints: reassociation is sound in either phase";
    add(S);
  }

  // E6 — Figure 5: dead cast + dead allocation via dead call elimination.
  {
    ExperimentSpec S;
    S.ExampleId = "fig5";
    S.AddressWords = 4; // usable space: 2 words
    S.Contexts = {ctx("exhaust-2", exhaustThenMark("bar", 2, 42)),
                  ctx("exhaust-1", exhaustThenMark("bar", 1, 42))};

    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = false;
    S.PaperNote = "the eliminated cast realized p's block (Section 3.6)";
    add(S);

    S.ScenarioName = "concrete";
    S.SrcModel = S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = false;
    S.PaperNote = "the eliminated allocation consumed space (Section 3.6)";
    add(S);

    S.ScenarioName = "quasi->concrete";
    S.SrcModel = ModelKind::QuasiConcrete;
    S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = true;
    S.PaperNote = "valid when lowering to the concrete model (Section 6.5)";
    add(S);

    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.PaperRefines = false;
    S.PaperNote = "the eliminated cast was the source's phase transition: "
                  "the target never leaves infinite memory";
    add(S);
  }

  // E7 — Section 3.7 first drawback: foo casts its own fresh block.
  {
    ExperimentSpec S;
    S.ExampleId = "drawbacks_a";
    S.AddressWords = 4;
    S.Contexts = {ctx("exhaust-2", exhaustThenMark("bar", 2, 42))};

    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = false;
    S.PaperNote = "the local block became concrete; not eliminable";
    add(S);

    S.ScenarioName = "quasi->concrete";
    S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = false;
    S.PaperNote = "not even lowering justifies it (Section 3.7)";
    add(S);
  }

  // E8 — Section 3.7 second drawback: CP across bar() after an early cast.
  {
    ExperimentSpec S;
    S.ExampleId = "drawbacks_b_early";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = false;
    S.PaperNote = "bar can forge the realized address (cast before bar)";
    // h[8] is logical; p realizes first-fit at address 1. The behavioral
    // counterexample needs deterministic realization so the guess is
    // reliable (see EXPERIMENTS.md); at the proof level the invalidity is
    // the failed privatization shown in simulation_test.
    S.Contexts = adversaries("bar", "", /*GuessAddress=*/1);
    S.Oracles = firstFitOnly();
    add(S);

    S.ExampleId = "drawbacks_b_late";
    S.PaperRefines = true;
    S.PaperNote = "cast moved after bar: the block is private again";
    add(S);
  }

  // E9 — Section 5.1 running example.
  {
    ExperimentSpec S;
    S.ExampleId = "running";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "the paper's flagship CP+DLE+DSE+DAE verification";
    S.Contexts = {
        ctx("noop", noop("bar", "ptr x")),
        ctx("write-through-arg", writeThroughArg("bar", 7)),
        ctx("read-arg", readArgAndOutput("bar")),
        ctx("guess-write", addressGuesserWriter("bar", 2, 77, "ptr x")),
    };
    add(S);

    S.ScenarioName = "concrete";
    S.SrcModel = S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = false;
    S.PaperNote = "the guessing context reaches foo's q block";
    S.Oracles = firstFitOnly();
    add(S);
  }

  // E11 — Section 6.6: dead cast elimination.
  {
    ExperimentSpec S;
    S.ExampleId = "deadcast";
    S.AddressWords = 4;
    S.Contexts = {ctx("exhaust-2", exhaustThenMark("bar", 2, 42)),
                  ctx("exhaust-1", exhaustThenMark("bar", 1, 42))};

    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = false;
    S.PaperNote = "casts are effectful in the quasi-concrete model";
    add(S);

    S.ScenarioName = "quasi->concrete";
    S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = true;
    S.PaperNote = "casts are no-ops in the concrete target (Section 3.6)";
    add(S);

    // The cast-exhausting contexts above cannot tell the difference: their
    // own first cast transitions the target too, and the live blocks (the
    // malloc is kept) then place identically. A pure allocator can: it only
    // fails once the source's dead cast has made memory finite.
    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.Contexts.push_back(ctx("alloc-3", allocateThenMark("bar", 3, 42)));
    S.PaperRefines = false;
    S.PaperNote = "a pure-allocator context observes the phase transition "
                  "the dead cast performed";
    add(S);
  }

  // E12 — Section 7: freshness-based alias analysis.
  {
    ExperimentSpec S;
    S.ExampleId = "alias_fresh";
    S.ScenarioName = "quasi-concrete";
    S.PaperRefines = true;
    S.PaperNote = "q stays a distinct block even after realization";
    add(S);

    S.ScenarioName = "concrete";
    S.SrcModel = S.TgtModel = ModelKind::Concrete;
    S.PaperRefines = true;
    S.PaperNote = "disjoint ranges: freshness holds concretely too";
    add(S);

    S.ScenarioName = "two-phase";
    S.SrcModel = S.TgtModel = ModelKind::TwoPhase;
    S.PaperRefines = true;
    S.PaperNote = "blocks stay distinct through the phase transition";
    add(S);
  }

  return M;
}

} // namespace

const std::vector<ExperimentSpec> &qcm::experimentMatrix() {
  static const std::vector<ExperimentSpec> Matrix = buildMatrix();
  return Matrix;
}

ExperimentOutcome qcm::runExperiment(const ExperimentSpec &Spec) {
  const PaperExample &Ex = getPaperExample(Spec.ExampleId);
  Vm V;
  std::optional<Program> Src = V.compile(Ex.SrcSource);
  assert(Src && "paper example source does not compile");
  std::optional<Program> Tgt = V.compile(Ex.TgtSource);
  assert(Tgt && "paper example target does not compile");

  auto MakeConfig = [&Spec, &Ex](ModelKind Model) {
    RunConfig C;
    C.Model = Model;
    C.MemConfig.AddressWords = Spec.AddressWords;
    C.Interp.Discipline = Spec.Discipline;
    C.LogicalCasts = Spec.Casts;
    C.Entry = Ex.Entry;
    C.Args = Ex.Args;
    return C;
  };

  RefinementJob Job;
  Job.Src = &*Src;
  Job.Tgt = &*Tgt;
  Job.BaseSrc = MakeConfig(Spec.SrcModel);
  Job.BaseTgt = MakeConfig(Spec.TgtModel);
  Job.Contexts = Spec.Contexts;
  Job.Oracles = Spec.Oracles;

  ExperimentOutcome Outcome;
  Outcome.Spec = &Spec;
  Outcome.Report = checkRefinement(Job);
  Outcome.MeasuredRefines = Outcome.Report.Refines;
  Outcome.MatchesPaper = Outcome.MeasuredRefines == Spec.PaperRefines;
  return Outcome;
}

std::string qcm::formatExperimentRow(const ExperimentOutcome &Outcome) {
  const ExperimentSpec &S = *Outcome.Spec;
  std::string Row = S.ExampleId;
  Row.resize(20, ' ');
  std::string Scenario = S.ScenarioName;
  Scenario.resize(20, ' ');
  Row += Scenario;
  Row += S.PaperRefines ? "paper=refines   " : "paper=fails     ";
  Row += Outcome.MeasuredRefines ? "measured=refines   "
                                 : "measured=fails     ";
  Row += Outcome.MatchesPaper ? "[OK]" : "[MISMATCH]";
  return Row;
}
