//===- core/Vm.h - Public facade --------------------------------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop public API: compile (parse + type check) source text and
/// run it under any of the three memory models. Downstream users who just
/// want "a C-like language with a quasi-concrete memory" start here; the
/// lower-level libraries (memory/, semantics/, refinement/, opt/) remain
/// available for fine-grained control.
///
/// \code
///   qcm::Vm Vm;
///   auto Prog = Vm.compile("main() { var int x; x = 1 + 1; output(x); }");
///   qcm::RunConfig Config;
///   Config.Model = qcm::ModelKind::QuasiConcrete;
///   qcm::RunResult R = qcm::runProgram(*Prog, Config);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef QCM_CORE_VM_H
#define QCM_CORE_VM_H

#include "lang/Ast.h"
#include "semantics/Runner.h"

#include <optional>
#include <string>

namespace qcm {

/// Compiler + runner facade.
class Vm {
public:
  /// Parses and type checks \p Source. On failure returns nullopt;
  /// lastDiagnostics() explains why.
  std::optional<Program> compile(const std::string &Source);

  /// Compiles and runs in one step with \p Config.
  std::optional<RunResult> compileAndRun(const std::string &Source,
                                         const RunConfig &Config);

  /// Diagnostics of the most recent compile() call.
  const std::string &lastDiagnostics() const { return Diagnostics; }

private:
  std::string Diagnostics;
};

} // namespace qcm

#endif // QCM_CORE_VM_H
