//===- core/PaperExamples.cpp ---------------------------------------------===//

#include "core/PaperExamples.h"

#include <cassert>

using namespace qcm;

namespace {

std::vector<PaperExample> buildCatalog() {
  std::vector<PaperExample> Catalog;

  // E1 — Section 1: constant propagation and dead allocation elimination
  // across an unknown call. Valid in the logical-family models (g cannot
  // forge the block's address), invalid in the concrete model (g can guess
  // it).
  Catalog.push_back(PaperExample{
      "intro",
      "Section 1",
      "constant propagation + dead allocation elimination across g()",
      R"(extern g();
main() {
  var ptr a, int r;
  a = malloc(1);
  *a = 0;
  g();
  r = *a;
  output(r);
}
)",
      R"(extern g();
main() {
  var ptr a, int r;
  g();
  output(0);
}
)",
      "main",
      {}});

  // E2 — Figure 1: arithmetic optimization I. The identity
  // (a - b) + (2*b - b) == a holds because int variables hold machine
  // integers (Section 3.5); a model carrying permissions through casts
  // would reject it (Section 3.2).
  Catalog.push_back(PaperExample{
      "fig1",
      "Figure 1",
      "arithmetic optimization I: a = (a - b) + (2*b - b) removed",
      R"(f(int a, int b) {
  var ptr q;
  a = (a - b) + (2 * b - b);
  q = (ptr) a;
  *q = 123;
}
main() {
  var ptr p, int a, int r;
  p = malloc(1);
  a = (int) p;
  f(a, a);
  r = *p;
  output(r);
}
)",
      R"(f(int a, int b) {
  var ptr q;
  q = (ptr) a;
  *q = 123;
}
main() {
  var ptr p, int a, int r;
  p = malloc(1);
  a = (int) p;
  f(a, a);
  r = *p;
  output(r);
}
)",
      "main",
      {}});

  // E3 — Figure 2: dead code elimination of a read-only call. Valid under
  // realize-at-cast (the cast in main realizes the block in source and
  // target alike); the rejected realize-at-use design would break it.
  Catalog.push_back(PaperExample{
      "fig2",
      "Figure 2",
      "dead code elimination of the read-only call foo(a)",
      R"(extern bar();
foo(int a) {
  var int b;
  b = a & 123;
}
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  foo(a);
  bar();
  output(a);
}
)",
      R"(extern bar();
foo(int a) {
  var int b;
  b = a & 123;
}
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  bar();
  output(a);
}
)",
      "main",
      {}});

  // E4 — Figure 3: ownership transfer. The block is private until its
  // address is cast inside hash_put, so the load after bar() still sees
  // 123. hash_put outputs the stored value to make the table contents
  // observable.
  Catalog.push_back(PaperExample{
      "fig3",
      "Figure 3",
      "constant propagation before ownership transfer to hash_put",
      R"(global h[8];
extern bar();
hash_put(ptr t, ptr key, int v) {
  var int k, int slot;
  k = (int) key;
  slot = k & 7;
  *(t + slot) = v;
  output(v);
}
main() {
  var ptr p, int a;
  p = malloc(1);
  *p = 123;
  bar();
  a = *p;
  hash_put(h, p, a);
}
)",
      R"(global h[8];
extern bar();
hash_put(ptr t, ptr key, int v) {
  var int k, int slot;
  k = (int) key;
  slot = k & 7;
  *(t + slot) = v;
  output(v);
}
main() {
  var ptr p, int a;
  p = malloc(1);
  *p = 123;
  bar();
  a = *p;
  hash_put(h, p, 123);
}
)",
      "main",
      {}});

  // E5 — Figure 4: arithmetic optimization II (reassociation introducing
  // t = a + b). Valid under the typed discipline; invalid under the
  // CompCert-style treatment where cast pointers flow into int variables
  // and ptr + ptr is undefined.
  Catalog.push_back(PaperExample{
      "fig4",
      "Figure 4",
      "arithmetic optimization II: reassociation via t = a + b",
      R"(f(int a, int b, int c1, int c2) {
  var int d1, int d2;
  d1 = a + (b - c1);
  d2 = a + (b - c2);
  output(d1 == d2);
}
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  f(a, a, a, a);
}
)",
      R"(f(int a, int b, int c1, int c2) {
  var int t, int d1, int d2;
  t = a + b;
  d1 = t - c1;
  d2 = t - c2;
  output(d1 == d2);
}
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  f(a, a, a, a);
}
)",
      "main",
      {}});

  // E6 — Figure 5: dead cast + dead allocation elimination. Invalid
  // quasi-to-quasi (the removed cast realized p's block), invalid
  // concrete-to-concrete (the removed allocation consumed space), valid
  // quasi-to-concrete (Section 6.5).
  Catalog.push_back(PaperExample{
      "fig5",
      "Figure 5",
      "dead call elimination: foo contains a dead cast and allocation",
      R"(extern bar();
foo(ptr p, int n) {
  var ptr q, int a, int r;
  q = malloc(n);
  a = (int) p;
  r = a * 123;
}
main() {
  var ptr p;
  p = malloc(1);
  foo(p, 1);
  bar();
}
)",
      R"(extern bar();
foo(ptr p, int n) {
  var ptr q, int a, int r;
  q = malloc(n);
  a = (int) p;
  r = a * 123;
}
main() {
  var ptr p;
  p = malloc(1);
  bar();
}
)",
      "main",
      {}});

  // E7 — Section 3.7 (first drawback): like Figure 5 but casting the fresh
  // local block q. Its realization is observable (address-space
  // consumption), so the removal is not even valid quasi-to-concrete: the
  // paper accepts this as a (harmless) limitation.
  Catalog.push_back(PaperExample{
      "drawbacks_a",
      "Section 3.7 (local cast)",
      "dead call elimination where foo casts its own fresh block",
      R"(extern bar();
foo(int n) {
  var ptr q, int a, int r;
  q = malloc(n);
  a = (int) q;
  r = a * 123;
}
main() {
  foo(1);
  bar();
}
)",
      R"(extern bar();
foo(int n) {
  var ptr q, int a, int r;
  q = malloc(n);
  a = (int) q;
  r = a * 123;
}
main() {
  bar();
}
)",
      "main",
      {}});

  // E8 — Section 3.7 (second drawback): constant propagation across bar()
  // after the block's address was already cast. Invalid: bar() can forge
  // the realized address. The _late variant moves the cast after bar(),
  // restoring validity — exactly the paper's remark.
  Catalog.push_back(PaperExample{
      "drawbacks_b_early",
      "Section 3.7 (early cast)",
      "constant propagation across bar() after an early cast",
      R"(global h[8];
extern bar();
hash_put(ptr t, int key, int v) {
  var int slot;
  slot = key & 7;
  *(t + slot) = v;
  output(v);
}
main() {
  var ptr p, int a, int b;
  p = malloc(1);
  *p = 123;
  b = (int) p;
  bar();
  a = *p;
  hash_put(h, b, a);
}
)",
      R"(global h[8];
extern bar();
hash_put(ptr t, int key, int v) {
  var int slot;
  slot = key & 7;
  *(t + slot) = v;
  output(v);
}
main() {
  var ptr p, int a, int b;
  p = malloc(1);
  *p = 123;
  b = (int) p;
  bar();
  a = *p;
  hash_put(h, b, 123);
}
)",
      "main",
      {}});

  Catalog.push_back(PaperExample{
      "drawbacks_b_late",
      "Section 3.7 (late cast)",
      "the same propagation with the cast moved after bar(): valid again",
      R"(global h[8];
extern bar();
hash_put(ptr t, int key, int v) {
  var int slot;
  slot = key & 7;
  *(t + slot) = v;
  output(v);
}
main() {
  var ptr p, int a, int b;
  p = malloc(1);
  *p = 123;
  bar();
  b = (int) p;
  a = *p;
  hash_put(h, b, a);
}
)",
      R"(global h[8];
extern bar();
hash_put(ptr t, int key, int v) {
  var int slot;
  slot = key & 7;
  *(t + slot) = v;
  output(v);
}
main() {
  var ptr p, int a, int b;
  p = malloc(1);
  *p = 123;
  bar();
  b = (int) p;
  a = *p;
  hash_put(h, b, 123);
}
)",
      "main",
      {}});

  // E9 — Section 5.1 running example: CP + DLE + DSE + DAE through an
  // unknown call, the paper's flagship verification target.
  Catalog.push_back(PaperExample{
      "running",
      "Section 5.1 / Figure 6",
      "running example: four optimizations at once through bar(p)",
      R"(extern bar(ptr x);
foo(ptr p) {
  var ptr q, int a;
  q = malloc(1);
  *q = 123;
  bar(p);
  a = *q;
  *p = a;
}
main() {
  var ptr p, int r;
  p = malloc(1);
  foo(p);
  r = *p;
  output(r);
}
)",
      R"(extern bar(ptr x);
foo(ptr p) {
  bar(p);
  *p = 123;
}
main() {
  var ptr p, int r;
  p = malloc(1);
  foo(p);
  r = *p;
  output(r);
}
)",
      "main",
      {}});

  // E11 — Section 6.6: a dead cast whose elimination is the lowering
  // compiler's one optimization.
  Catalog.push_back(PaperExample{
      "deadcast",
      "Section 6.6",
      "dead pointer-to-integer cast, removable only when lowering",
      R"(extern bar();
main() {
  var ptr p, int a;
  p = malloc(1);
  a = (int) p;
  bar();
  output(7);
}
)",
      R"(extern bar();
main() {
  var ptr p, int a;
  p = malloc(1);
  bar();
  output(7);
}
)",
      "main",
      {}});

  // E12 — Section 7: freshness-based alias analysis. q is fresh, so even
  // after (int) q realizes it, *q = 123 cannot touch *p.
  Catalog.push_back(PaperExample{
      "alias_fresh",
      "Section 7 (freshness)",
      "constant propagation of r = *p past a store through fresh q",
      R"(foo(ptr p) {
  var ptr q, int a, int b, int r;
  q = malloc(1);
  a = (int) q;
  b = *p;
  *q = 123;
  r = *p;
  output(r);
}
main() {
  var ptr p;
  p = malloc(1);
  *p = 9;
  foo(p);
}
)",
      R"(foo(ptr p) {
  var ptr q, int a, int b, int r;
  q = malloc(1);
  a = (int) q;
  b = *p;
  *q = 123;
  r = b;
  output(r);
}
main() {
  var ptr p;
  p = malloc(1);
  *p = 9;
  foo(p);
}
)",
      "main",
      {}});

  return Catalog;
}

} // namespace

const std::vector<PaperExample> &qcm::paperExamples() {
  static const std::vector<PaperExample> Catalog = buildCatalog();
  return Catalog;
}

const PaperExample &qcm::getPaperExample(const std::string &Id) {
  for (const PaperExample &E : paperExamples())
    if (E.Id == Id)
      return E;
  assert(false && "unknown paper example id");
  static PaperExample Empty;
  return Empty;
}
