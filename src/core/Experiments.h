//===- core/Experiments.h - The paper's experiment matrix -------*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment matrix: for every paper example (core/PaperExamples.h)
/// and every relevant memory-model scenario, the paper's claimed verdict
/// ("this transformation is/is not a refinement under this model") together
/// with everything needed to measure it with the refinement checker. Tests
/// assert measured == paper; the benches time the checks and print the
/// rows; EXPERIMENTS.md records the outcomes.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_CORE_EXPERIMENTS_H
#define QCM_CORE_EXPERIMENTS_H

#include "core/PaperExamples.h"
#include "refinement/RefinementChecker.h"

#include <string>
#include <vector>

namespace qcm {

/// One (example, scenario) cell of the matrix.
struct ExperimentSpec {
  std::string ExampleId;
  /// Scenario label, e.g. "quasi-concrete", "concrete",
  /// "compcert-logical", "quasi->concrete".
  std::string ScenarioName;
  /// The paper's claim for this cell.
  bool PaperRefines = true;
  /// Where the claim comes from / why.
  std::string PaperNote;

  ModelKind SrcModel = ModelKind::QuasiConcrete;
  ModelKind TgtModel = ModelKind::QuasiConcrete;
  TypeDiscipline Discipline = TypeDiscipline::Static;
  LogicalMemory::CastBehavior Casts = LogicalMemory::CastBehavior::Error;
  uint64_t AddressWords = 1u << 12;
  std::vector<ContextVariant> Contexts;
  /// Placement oracles; empty means the checker's default (first-fit and
  /// last-fit). The concrete-model invalidity scenarios pin a single
  /// deterministic oracle, mirroring the paper's Section 1 premise that
  /// the concrete semantics "allocates memory deterministically" so a
  /// context can set up a correct guess.
  std::vector<OracleFactory> Oracles;
};

/// Outcome of one cell.
struct ExperimentOutcome {
  const ExperimentSpec *Spec = nullptr;
  RefinementReport Report;
  bool MeasuredRefines = false;
  bool MatchesPaper = false;
};

/// The full matrix, in paper order.
const std::vector<ExperimentSpec> &experimentMatrix();

/// Compiles the example's programs and runs the refinement check for one
/// cell.
ExperimentOutcome runExperiment(const ExperimentSpec &Spec);

/// Renders one row of the results table:
///   fig5  quasi->concrete  paper=refines  measured=refines  [OK]
std::string formatExperimentRow(const ExperimentOutcome &Outcome);

} // namespace qcm

#endif // QCM_CORE_EXPERIMENTS_H
