//===- memory/Value.cpp ---------------------------------------------------===//

#include "memory/Value.h"

using namespace qcm;

std::string Ptr::toString() const {
  if (isNull())
    return "NULL";
  return "(" + std::to_string(Block) + ", " + std::to_string(Offset) + ")";
}

std::string Value::toString() const {
  if (isPtr())
    return ptr().toString();
  return wordToString(intValue());
}
