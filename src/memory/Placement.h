//===- memory/Placement.h - Concrete address placement oracles --*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// All nondeterminism about *where* a block lands in the concrete address
/// space — allocation in the concrete model (Section 2.1), realization at
/// pointer-to-integer cast time in the quasi-concrete model (Section 3.4) —
/// is factored into PlacementOracle objects. This makes behavior sets
/// enumerable (FixedSequenceOracle), sampleable (RandomOracle), and runs
/// reproducible.
///
/// The usable address space is [1, AddressWords - 1): the paper requires
/// allocated ranges to avoid both address 0 and the maximum address
/// (Section 2.1: nonempty [p, p+n) contained in (0, 2^32 - 1)).
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_PLACEMENT_H
#define QCM_MEMORY_PLACEMENT_H

#include "support/Ints.h"
#include "support/Rng.h"

#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace qcm {

/// A half-open interval [Begin, End) of free addresses.
struct FreeInterval {
  Word Begin = 0;
  Word End = 0;

  uint64_t length() const {
    return static_cast<uint64_t>(End) - static_cast<uint64_t>(Begin);
  }

  friend bool operator==(const FreeInterval &A, const FreeInterval &B) {
    return A.Begin == B.Begin && A.End == B.End;
  }
};

/// Computes the free intervals of the usable space [1, AddressWords - 1)
/// given the currently occupied ranges (base -> size, in words). Occupied
/// ranges must lie within the usable space and be disjoint.
std::vector<FreeInterval>
computeFreeIntervals(const std::map<Word, Word> &Occupied,
                     uint64_t AddressWords);

/// The same computation over any base-sorted sequence of disjoint ranges
/// exposing .Base and .Size members (the models' live allocation tables and
/// the AddressIndex), so the hot realization path never materializes an
/// intermediate std::map per query.
template <typename RangeT>
std::vector<FreeInterval>
computeFreeIntervalsSorted(const std::vector<RangeT> &Ranges,
                           uint64_t AddressWords) {
  assert(AddressWords >= 2 && "address space too small to be usable");
  std::vector<FreeInterval> Free;
  Free.reserve(Ranges.size() + 1);
  // Usable space is [1, AddressWords - 1).
  uint64_t Cursor = 1;
  const uint64_t Limit = AddressWords - 1;
  for (const RangeT &R : Ranges) {
    assert(R.Base >= 1 && "occupied range includes address 0");
    assert(static_cast<uint64_t>(R.Base) + R.Size <= Limit &&
           "occupied range includes the maximum address");
    if (R.Base > Cursor)
      Free.push_back(
          FreeInterval{static_cast<Word>(Cursor), static_cast<Word>(R.Base)});
    Cursor = static_cast<uint64_t>(R.Base) + R.Size;
  }
  if (Cursor < Limit)
    Free.push_back(
        FreeInterval{static_cast<Word>(Cursor), static_cast<Word>(Limit)});
  return Free;
}

/// Counts how many distinct base addresses could host a block of \p Size
/// words given \p Free.
uint64_t countPlacements(const std::vector<FreeInterval> &Free, Word Size);

/// Strategy object deciding the base address for a new concrete range.
///
/// choose() must return a base address B such that [B, B + Size) fits
/// entirely inside one of the free intervals, or std::nullopt to signal that
/// the oracle declines (out of memory from the program's point of view).
class PlacementOracle {
public:
  virtual ~PlacementOracle();

  virtual std::optional<Word> choose(Word Size,
                                     const std::vector<FreeInterval> &Free) = 0;

  /// Deep copy preserving the oracle's internal state, so that cloned
  /// memories continue the same deterministic decision stream.
  virtual std::unique_ptr<PlacementOracle> clone() const = 0;

  /// Rewinds the oracle to its freshly-constructed decision stream; part of
  /// the reset-and-reuse protocol for execution state. Stateless oracles
  /// need not override.
  virtual void reset() {}
};

/// Places each block at the lowest possible address. Deterministic; the
/// default oracle.
class FirstFitOracle : public PlacementOracle {
public:
  std::optional<Word> choose(Word Size,
                             const std::vector<FreeInterval> &Free) override;
  std::unique_ptr<PlacementOracle> clone() const override;
};

/// Places each block at the highest possible address. Deterministic; useful
/// as a second point in behavior-set sampling.
class LastFitOracle : public PlacementOracle {
public:
  std::optional<Word> choose(Word Size,
                             const std::vector<FreeInterval> &Free) override;
  std::unique_ptr<PlacementOracle> clone() const override;
};

/// Places each block at a base chosen uniformly at random among all bases
/// that fit, driven by a deterministic seeded generator.
class RandomOracle : public PlacementOracle {
public:
  explicit RandomOracle(uint64_t Seed) : Seed(Seed), Generator(Seed) {}

  std::optional<Word> choose(Word Size,
                             const std::vector<FreeInterval> &Free) override;
  std::unique_ptr<PlacementOracle> clone() const override;
  void reset() override { Generator = Rng(Seed); }

private:
  uint64_t Seed;
  Rng Generator;
};

/// Plays back a predetermined sequence of base addresses; used for
/// exhaustive enumeration of placements and for adversarial scenarios. A
/// requested base that does not fit, or exhaustion of the sequence, makes
/// the oracle decline (out of memory).
class FixedSequenceOracle : public PlacementOracle {
public:
  explicit FixedSequenceOracle(std::vector<Word> Bases)
      : Bases(std::move(Bases)) {}

  std::optional<Word> choose(Word Size,
                             const std::vector<FreeInterval> &Free) override;
  std::unique_ptr<PlacementOracle> clone() const override;
  void reset() override { Next = 0; }

  /// Number of decisions already consumed.
  size_t decisionsUsed() const { return Next; }

private:
  std::vector<Word> Bases;
  size_t Next = 0;
};

/// An oracle that always declines; models a machine whose concrete address
/// space is exhausted (used to exercise the out-of-memory behavior class).
class ExhaustedOracle : public PlacementOracle {
public:
  std::optional<Word> choose(Word Size,
                             const std::vector<FreeInterval> &Free) override;
  std::unique_ptr<PlacementOracle> clone() const override;
};

} // namespace qcm

#endif // QCM_MEMORY_PLACEMENT_H
