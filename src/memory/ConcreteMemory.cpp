//===- memory/ConcreteMemory.cpp ------------------------------------------===//

#include "memory/ConcreteMemory.h"

#include <algorithm>
#include <cassert>

using namespace qcm;

ConcreteMemory::ConcreteMemory(MemoryConfig Config,
                               std::unique_ptr<PlacementOracle> Oracle)
    : Memory(Config), Oracle(std::move(Oracle)) {
  if (!this->Oracle)
    this->Oracle = std::make_unique<FirstFitOracle>();
}

std::map<Word, Word> ConcreteMemory::occupiedRanges() const {
  std::map<Word, Word> Ranges;
  for (const auto &[Base, Info] : Allocations)
    Ranges.emplace(Base, Info.Size);
  return Ranges;
}

const std::pair<const Word, ConcreteMemory::AllocationInfo> *
ConcreteMemory::findContaining(Word Address) const {
  // The allocation containing Address, if any, is the one with the greatest
  // base <= Address.
  auto It = Allocations.upper_bound(Address);
  if (It == Allocations.begin())
    return nullptr;
  --It;
  uint64_t End = static_cast<uint64_t>(It->first) + It->second.Size;
  if (Address < End)
    return &*It;
  return nullptr;
}

bool ConcreteMemory::isAllocatedAddress(Word Address) const {
  return findContaining(Address) != nullptr;
}

Outcome<Value> ConcreteMemory::allocate(Word NumWords) {
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  std::vector<FreeInterval> Free =
      computeFreeIntervals(occupiedRanges(), config().AddressWords);
  std::optional<Word> Base = Oracle->choose(NumWords, Free);
  if (!Base) {
    Trace.noteAllocFailure(NumWords);
    return Outcome<Value>::outOfMemory(
        "no concrete placement for allocation of " +
        std::to_string(NumWords) + " words");
  }
  Allocations.emplace(*Base, AllocationInfo{NumWords, NextId});
  Trace.noteAlloc(NextId, NumWords, *Base);
  ++NextId;
  // Fresh memory reads as integer 0; nothing to materialize in the sparse
  // store, but stale cells from a previous tenant must not leak through.
  for (Word I = 0; I < NumWords; ++I)
    Cells.erase(*Base + I);
  return Outcome<Value>::success(Value::makeInt(*Base));
}

Outcome<Unit> ConcreteMemory::deallocate(Value Pointer) {
  if (!Pointer.isInt())
    return Outcome<Unit>::undefined(
        "logical address reached the concrete model");
  Word Address = Pointer.intValue();
  if (Address == 0)
    return Outcome<Unit>::success(Unit{}); // free(NULL) is a no-op.
  auto It = Allocations.find(Address);
  if (It == Allocations.end())
    return Outcome<Unit>::undefined(
        "free of address " + wordToString(Address) +
        " which is not the start of a live allocation");
  // Retire the block for snapshot purposes, then drop its cells.
  Block Retiring;
  Retiring.Valid = false;
  Retiring.Base = Address;
  Retiring.Size = It->second.Size;
  Retired.emplace_back(It->second.Id, std::move(Retiring));
  Trace.noteFree(It->second.Id, It->second.Size, /*WasRealized=*/true,
                 Address);
  for (Word I = 0; I < It->second.Size; ++I)
    Cells.erase(Address + I);
  Allocations.erase(It);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> ConcreteMemory::load(Value Address) {
  if (!Address.isInt())
    return Outcome<Value>::undefined(
        "logical address reached the concrete model");
  Word A = Address.intValue();
  if (!isAllocatedAddress(A))
    return Outcome<Value>::undefined("load from unallocated address " +
                                     wordToString(A));
  Trace.noteLoad(std::nullopt, std::nullopt, A);
  auto It = Cells.find(A);
  if (It == Cells.end())
    return Outcome<Value>::success(Value::makeInt(0));
  return Outcome<Value>::success(It->second);
}

Outcome<Unit> ConcreteMemory::store(Value Address, Value V) {
  if (!Address.isInt() || !V.isInt())
    return Outcome<Unit>::undefined(
        "logical address reached the concrete model");
  Word A = Address.intValue();
  if (!isAllocatedAddress(A))
    return Outcome<Unit>::undefined("store to unallocated address " +
                                    wordToString(A));
  Cells[A] = V;
  Trace.noteStore(std::nullopt, std::nullopt, A);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> ConcreteMemory::castPtrToInt(Value Pointer) {
  // Pointers already are integers: the cast is a no-op (Section 3.6). Never
  // a realization: every allocation was born at a concrete address.
  if (!Pointer.isInt())
    return Outcome<Value>::undefined(
        "logical address reached the concrete model");
  Trace.noteCastToInt(std::nullopt, std::nullopt, Pointer.intValue(),
                      /*RealizedNow=*/false);
  return Outcome<Value>::success(Pointer);
}

Outcome<Value> ConcreteMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "logical address reached the concrete model");
  Trace.noteCastToPtr(std::nullopt, std::nullopt, Integer.intValue());
  return Outcome<Value>::success(Integer);
}

bool ConcreteMemory::isValidAddress(const Ptr &) const {
  // Concrete values carry no block identifiers.
  return false;
}

std::vector<std::pair<BlockId, Block>> ConcreteMemory::snapshot() const {
  std::vector<std::pair<BlockId, Block>> Result = Retired;
  for (const auto &[Base, Info] : Allocations) {
    Block B;
    B.Valid = true;
    B.Base = Base;
    B.Size = Info.Size;
    B.Contents.reserve(Info.Size);
    for (Word I = 0; I < Info.Size; ++I) {
      auto It = Cells.find(Base + I);
      B.Contents.push_back(It == Cells.end() ? Value::makeInt(0) : It->second);
    }
    Result.emplace_back(Info.Id, std::move(B));
  }
  std::sort(Result.begin(), Result.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Result;
}

std::unique_ptr<Memory> ConcreteMemory::clone() const {
  auto Copy = std::make_unique<ConcreteMemory>(config(), Oracle->clone());
  Copy->Allocations = Allocations;
  Copy->Cells = Cells;
  Copy->Retired = Retired;
  Copy->NextId = NextId;
  return Copy;
}

std::optional<std::string> ConcreteMemory::checkConsistency() const {
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  for (const auto &[Base, Info] : Allocations) {
    if (Info.Size == 0)
      return "allocation at " + wordToString(Base) + " has zero size";
    if (Base == 0)
      return "allocation includes address 0";
    uint64_t End = static_cast<uint64_t>(Base) + Info.Size;
    if (End > Limit)
      return "allocation at " + wordToString(Base) +
             " includes the maximum address";
    if (Base < PrevEnd)
      return "allocations overlap at " + wordToString(Base);
    PrevEnd = End;
  }
  for (const auto &[Address, V] : Cells) {
    if (!isAllocatedAddress(Address))
      return "stray cell at unallocated address " + wordToString(Address);
    if (!V.isInt())
      return "concrete cell holds a logical address";
  }
  return std::nullopt;
}
