//===- memory/ConcreteMemory.cpp ------------------------------------------===//

#include "memory/ConcreteMemory.h"

#include <algorithm>
#include <cassert>

using namespace qcm;

ConcreteMemory::ConcreteMemory(MemoryConfig Config,
                               std::unique_ptr<PlacementOracle> Oracle)
    : Memory(Config), Oracle(std::move(Oracle)) {
  if (!this->Oracle)
    this->Oracle = std::make_unique<FirstFitOracle>();
}

void ConcreteMemory::reset(std::unique_ptr<PlacementOracle> NewOracle) {
  Allocations.clear();
  Retired.clear();
  LastHit = 0;
  Slab.reset();
  NextId = 1;
  if (NewOracle)
    Oracle = std::move(NewOracle);
  else
    Oracle->reset();
  resetTraceForReuse();
}

const ConcreteMemory::Allocation *
ConcreteMemory::findContaining(Word Address) const {
  // MRU hint first: accesses overwhelmingly walk one allocation before
  // moving to the next, so the previous hit answers most lookups without
  // the binary search. A stale index (the vector shifted under it) is
  // harmless — the bounds and containment checks decide correctness, the
  // hint only decides where to look first.
  if (LastHit < Allocations.size() &&
      Allocations[LastHit].contains(Address))
    return &Allocations[LastHit];
  // The allocation containing Address, if any, is the one with the greatest
  // base <= Address.
  auto It = std::upper_bound(
      Allocations.begin(), Allocations.end(), Address,
      [](Word A, const Allocation &R) { return A < R.Base; });
  if (It == Allocations.begin())
    return nullptr;
  --It;
  if (!It->contains(Address))
    return nullptr;
  LastHit = static_cast<size_t>(It - Allocations.begin());
  return &*It;
}

bool ConcreteMemory::isAllocatedAddress(Word Address) const {
  return findContaining(Address) != nullptr;
}

Outcome<Value> ConcreteMemory::allocate(Word NumWords) {
  if (NumWords == 0)
    return Outcome<Value>::undefined("malloc of zero words");
  std::vector<FreeInterval> Free =
      computeFreeIntervalsSorted(Allocations, config().AddressWords);
  std::optional<Word> Base = Oracle->choose(NumWords, Free);
  if (!Base) {
    Trace.noteAllocFailure(NumWords);
    return Outcome<Value>::outOfMemory(
        "no concrete placement for allocation of " +
        std::to_string(NumWords) + " words");
  }
  Allocation A;
  A.Base = *Base;
  A.Size = NumWords;
  A.Id = NextId;
  A.Data = Slab.allocate(NumWords);
  // Fresh memory reads as integer 0; a recycled span must not leak the
  // previous tenant's words.
  std::fill(A.Data, A.Data + NumWords, Value::makeInt(0));
  auto It = std::lower_bound(
      Allocations.begin(), Allocations.end(), A.Base,
      [](const Allocation &R, Word B) { return R.Base < B; });
  Allocations.insert(It, A);
  Trace.noteAlloc(NextId, NumWords, *Base);
  ++NextId;
  return Outcome<Value>::success(Value::makeInt(*Base));
}

Outcome<Unit> ConcreteMemory::deallocate(Value Pointer) {
  if (!Pointer.isInt())
    return Outcome<Unit>::undefined(
        "logical address reached the concrete model");
  Word Address = Pointer.intValue();
  if (Address == 0)
    return Outcome<Unit>::success(Unit{}); // free(NULL) is a no-op.
  auto It = std::lower_bound(
      Allocations.begin(), Allocations.end(), Address,
      [](const Allocation &R, Word B) { return R.Base < B; });
  if (It == Allocations.end() || It->Base != Address)
    return Outcome<Unit>::undefined(
        "free of address " + wordToString(Address) +
        " which is not the start of a live allocation");
  // Retire the block for snapshot purposes, then recycle its span.
  Block Retiring;
  Retiring.Valid = false;
  Retiring.Base = Address;
  Retiring.Size = It->Size;
  Retired.emplace_back(It->Id, std::move(Retiring));
  Trace.noteFree(It->Id, It->Size, /*WasRealized=*/true, Address);
  Slab.recycle(It->Data, It->Size);
  Allocations.erase(It);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> ConcreteMemory::load(Value Address) {
  if (!Address.isInt())
    return Outcome<Value>::undefined(
        "logical address reached the concrete model");
  Word A = Address.intValue();
  const Allocation *R = findContaining(A);
  if (!R)
    return Outcome<Value>::undefined("load from unallocated address " +
                                     wordToString(A));
  Trace.noteLoad(std::nullopt, std::nullopt, A);
  return Outcome<Value>::success(R->Data[A - R->Base]);
}

Outcome<Unit> ConcreteMemory::store(Value Address, Value V) {
  if (!Address.isInt() || !V.isInt())
    return Outcome<Unit>::undefined(
        "logical address reached the concrete model");
  Word A = Address.intValue();
  const Allocation *R = findContaining(A);
  if (!R)
    return Outcome<Unit>::undefined("store to unallocated address " +
                                    wordToString(A));
  R->Data[A - R->Base] = V;
  Trace.noteStore(std::nullopt, std::nullopt, A);
  return Outcome<Unit>::success(Unit{});
}

Outcome<Value> ConcreteMemory::castPtrToInt(Value Pointer) {
  // Pointers already are integers: the cast is a no-op (Section 3.6). Never
  // a realization: every allocation was born at a concrete address.
  if (!Pointer.isInt())
    return Outcome<Value>::undefined(
        "logical address reached the concrete model");
  Trace.noteCastToInt(std::nullopt, std::nullopt, Pointer.intValue(),
                      /*RealizedNow=*/false);
  return Outcome<Value>::success(Pointer);
}

Outcome<Value> ConcreteMemory::castIntToPtr(Value Integer) {
  if (!Integer.isInt())
    return Outcome<Value>::undefined(
        "logical address reached the concrete model");
  Trace.noteCastToPtr(std::nullopt, std::nullopt, Integer.intValue());
  return Outcome<Value>::success(Integer);
}

bool ConcreteMemory::isValidAddress(const Ptr &) const {
  // Concrete values carry no block identifiers.
  return false;
}

std::vector<std::pair<BlockId, Block>> ConcreteMemory::snapshot() const {
  // One ordered traversal of the live table — the spans are contiguous, so
  // materializing contents is a block copy, not a per-cell lookup.
  std::vector<std::pair<BlockId, Block>> Result;
  Result.reserve(Retired.size() + Allocations.size());
  Result = Retired;
  for (const Allocation &A : Allocations) {
    Block B;
    B.Valid = true;
    B.Base = A.Base;
    B.Size = A.Size;
    B.Contents.assign(A.Data, A.Data + A.Size);
    Result.emplace_back(A.Id, std::move(B));
  }
  std::sort(Result.begin(), Result.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Result;
}

std::unique_ptr<Memory> ConcreteMemory::clone() const {
  auto Copy = std::make_unique<ConcreteMemory>(config(), Oracle->clone());
  Copy->Allocations = Allocations;
  for (size_t I = 0; I < Allocations.size(); ++I) {
    const Allocation &Src = Allocations[I];
    Allocation &Dst = Copy->Allocations[I];
    Dst.Data = Copy->Slab.allocate(Src.Size);
    std::copy(Src.Data, Src.Data + Src.Size, Dst.Data);
  }
  Copy->Retired = Retired;
  Copy->NextId = NextId;
  return Copy;
}

std::optional<std::string> ConcreteMemory::checkConsistency() const {
  const uint64_t Limit = config().AddressWords - 1;
  uint64_t PrevEnd = 0;
  for (const Allocation &A : Allocations) {
    if (A.Size == 0)
      return "allocation at " + wordToString(A.Base) + " has zero size";
    if (A.Base == 0)
      return "allocation includes address 0";
    uint64_t End = static_cast<uint64_t>(A.Base) + A.Size;
    if (End > Limit)
      return "allocation at " + wordToString(A.Base) +
             " includes the maximum address";
    if (A.Base < PrevEnd)
      return "allocations overlap at " + wordToString(A.Base);
    PrevEnd = End;
    if (!A.Data)
      return "allocation at " + wordToString(A.Base) + " has no storage";
    for (Word I = 0; I < A.Size; ++I)
      if (!A.Data[I].isInt())
        return "concrete cell holds a logical address";
  }
  return std::nullopt;
}
