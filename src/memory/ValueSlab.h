//===- memory/ValueSlab.h - Slab allocator for block contents ---*- C++ -*-===//
//
// Part of the intptrcast project: an executable reproduction of the
// quasi-concrete C memory model (Kang et al., PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A slab (arena) allocator for the Value spans backing block contents.
/// Each Memory instance owns one slab, so steady-state allocation of block
/// storage is a bump-pointer increment instead of a heap round trip, and
/// resetting a memory for reuse rewinds the arena without returning pages
/// to the system.
///
/// Spans handed out by allocate() stay valid until reset() or destruction —
/// the block models keep freed blocks' contents observable in snapshots, so
/// a span must outlive its block's deallocation. recycle() is opt-in for
/// models (the concrete one) whose freed contents are *not* observable:
/// recycled spans are reissued to later allocations of the same size, which
/// keeps alloc/free churn from growing the arena without bound.
///
//===----------------------------------------------------------------------===//

#ifndef QCM_MEMORY_VALUESLAB_H
#define QCM_MEMORY_VALUESLAB_H

#include "memory/Value.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace qcm {

/// Chunked arena of Value words with an optional size-keyed free list.
class ValueSlab {
public:
  /// Returns an uninitialized span of \p NumWords values. The caller fills
  /// it (block storage is always zero-filled or copied into on creation).
  Value *allocate(Word NumWords) {
    if (NumWords == 0)
      return nullptr;
    auto Free = FreeLists.find(NumWords);
    if (Free != FreeLists.end() && !Free->second.empty()) {
      Value *Span = Free->second.back();
      Free->second.pop_back();
      return Span;
    }
    while (Active < Chunks.size()) {
      Chunk &C = Chunks[Active];
      if (C.Capacity - C.Used >= NumWords) {
        Value *Span = C.Data.get() + C.Used;
        C.Used += NumWords;
        return Span;
      }
      ++Active;
    }
    size_t Capacity = std::max<size_t>(MinChunkWords, NumWords);
    Chunks.push_back(Chunk{std::make_unique<Value[]>(Capacity), Capacity,
                           static_cast<size_t>(NumWords)});
    Active = Chunks.size() - 1;
    return Chunks.back().Data.get();
  }

  /// Returns a span for reuse by a later allocation of the same size. Only
  /// call when no snapshot can observe the span anymore.
  void recycle(Value *Span, Word NumWords) {
    if (Span)
      FreeLists[NumWords].push_back(Span);
  }

  /// Invalidates every span and rewinds the arena, keeping the chunk memory
  /// for the next tenant. O(#chunks + #free-list buckets).
  void reset() {
    for (Chunk &C : Chunks)
      C.Used = 0;
    Active = 0;
    FreeLists.clear();
  }

  /// Total words currently parked on recycle free lists (test hook).
  size_t recycledWords() const {
    size_t Total = 0;
    for (const auto &[Size, Spans] : FreeLists)
      Total += static_cast<size_t>(Size) * Spans.size();
    return Total;
  }

  /// Number of backing chunks allocated from the heap (test hook).
  size_t numChunks() const { return Chunks.size(); }

private:
  /// Large enough that typical test/bench workloads live in one chunk;
  /// oversized blocks get a dedicated chunk of exactly their size.
  static constexpr size_t MinChunkWords = 1 << 14;

  struct Chunk {
    std::unique_ptr<Value[]> Data;
    size_t Capacity = 0;
    size_t Used = 0;
  };

  std::vector<Chunk> Chunks;
  /// First chunk worth trying for a bump allocation; chunks before it are
  /// full (modulo recycled spans, which bypass the bump pointer).
  size_t Active = 0;
  /// Size-keyed free lists of recycled spans.
  std::unordered_map<Word, std::vector<Value *>> FreeLists;
};

} // namespace qcm

#endif // QCM_MEMORY_VALUESLAB_H
